# Empty dependencies file for fig8_suci.
# This may be replaced when dependencies are built.
