file(REMOVE_RECURSE
  "CMakeFiles/fig8_suci.dir/fig8_suci.cpp.o"
  "CMakeFiles/fig8_suci.dir/fig8_suci.cpp.o.d"
  "fig8_suci"
  "fig8_suci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_suci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
