# Empty compiler generated dependencies file for fig6_efu_cores.
# This may be replaced when dependencies are built.
