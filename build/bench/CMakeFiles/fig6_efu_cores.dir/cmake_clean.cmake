file(REMOVE_RECURSE
  "CMakeFiles/fig6_efu_cores.dir/fig6_efu_cores.cpp.o"
  "CMakeFiles/fig6_efu_cores.dir/fig6_efu_cores.cpp.o.d"
  "fig6_efu_cores"
  "fig6_efu_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_efu_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
