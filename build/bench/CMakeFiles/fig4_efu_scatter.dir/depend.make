# Empty dependencies file for fig4_efu_scatter.
# This may be replaced when dependencies are built.
