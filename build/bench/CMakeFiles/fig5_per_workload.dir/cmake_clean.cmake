file(REMOVE_RECURSE
  "CMakeFiles/fig5_per_workload.dir/fig5_per_workload.cpp.o"
  "CMakeFiles/fig5_per_workload.dir/fig5_per_workload.cpp.o.d"
  "fig5_per_workload"
  "fig5_per_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_per_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
