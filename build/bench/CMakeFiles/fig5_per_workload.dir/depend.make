# Empty dependencies file for fig5_per_workload.
# This may be replaced when dependencies are built.
