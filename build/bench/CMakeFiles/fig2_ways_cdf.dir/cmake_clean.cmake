file(REMOVE_RECURSE
  "CMakeFiles/fig2_ways_cdf.dir/fig2_ways_cdf.cpp.o"
  "CMakeFiles/fig2_ways_cdf.dir/fig2_ways_cdf.cpp.o.d"
  "fig2_ways_cdf"
  "fig2_ways_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ways_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
