# Empty compiler generated dependencies file for fig2_ways_cdf.
# This may be replaced when dependencies are built.
