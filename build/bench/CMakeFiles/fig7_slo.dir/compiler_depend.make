# Empty compiler generated dependencies file for fig7_slo.
# This may be replaced when dependencies are built.
