file(REMOVE_RECURSE
  "CMakeFiles/fig7_slo.dir/fig7_slo.cpp.o"
  "CMakeFiles/fig7_slo.dir/fig7_slo.cpp.o.d"
  "fig7_slo"
  "fig7_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
