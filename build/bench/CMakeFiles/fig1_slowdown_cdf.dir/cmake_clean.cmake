file(REMOVE_RECURSE
  "CMakeFiles/fig1_slowdown_cdf.dir/fig1_slowdown_cdf.cpp.o"
  "CMakeFiles/fig1_slowdown_cdf.dir/fig1_slowdown_cdf.cpp.o.d"
  "fig1_slowdown_cdf"
  "fig1_slowdown_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_slowdown_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
