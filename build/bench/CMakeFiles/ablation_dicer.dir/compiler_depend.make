# Empty compiler generated dependencies file for ablation_dicer.
# This may be replaced when dependencies are built.
