file(REMOVE_RECURSE
  "CMakeFiles/ablation_dicer.dir/ablation_dicer.cpp.o"
  "CMakeFiles/ablation_dicer.dir/ablation_dicer.cpp.o.d"
  "ablation_dicer"
  "ablation_dicer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dicer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
