
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_static_sweep.cpp" "bench/CMakeFiles/fig3_static_sweep.dir/fig3_static_sweep.cpp.o" "gcc" "bench/CMakeFiles/fig3_static_sweep.dir/fig3_static_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dicer_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/dicer_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dicer_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/rdt/CMakeFiles/dicer_rdt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dicer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dicer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
