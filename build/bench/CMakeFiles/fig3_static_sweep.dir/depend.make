# Empty dependencies file for fig3_static_sweep.
# This may be replaced when dependencies are built.
