file(REMOVE_RECURSE
  "CMakeFiles/controller_trace.dir/controller_trace.cpp.o"
  "CMakeFiles/controller_trace.dir/controller_trace.cpp.o.d"
  "controller_trace"
  "controller_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
