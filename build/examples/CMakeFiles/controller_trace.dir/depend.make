# Empty dependencies file for controller_trace.
# This may be replaced when dependencies are built.
