file(REMOVE_RECURSE
  "CMakeFiles/rdt_test.dir/rdt/cat_test.cpp.o"
  "CMakeFiles/rdt_test.dir/rdt/cat_test.cpp.o.d"
  "CMakeFiles/rdt_test.dir/rdt/mba_test.cpp.o"
  "CMakeFiles/rdt_test.dir/rdt/mba_test.cpp.o.d"
  "CMakeFiles/rdt_test.dir/rdt/monitor_test.cpp.o"
  "CMakeFiles/rdt_test.dir/rdt/monitor_test.cpp.o.d"
  "rdt_test"
  "rdt_test.pdb"
  "rdt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
