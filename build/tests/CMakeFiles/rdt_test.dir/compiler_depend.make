# Empty compiler generated dependencies file for rdt_test.
# This may be replaced when dependencies are built.
