
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/policy/admission_test.cpp" "tests/CMakeFiles/policy_test.dir/policy/admission_test.cpp.o" "gcc" "tests/CMakeFiles/policy_test.dir/policy/admission_test.cpp.o.d"
  "/root/repo/tests/policy/baselines_test.cpp" "tests/CMakeFiles/policy_test.dir/policy/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/policy_test.dir/policy/baselines_test.cpp.o.d"
  "/root/repo/tests/policy/dicer_test.cpp" "tests/CMakeFiles/policy_test.dir/policy/dicer_test.cpp.o" "gcc" "tests/CMakeFiles/policy_test.dir/policy/dicer_test.cpp.o.d"
  "/root/repo/tests/policy/extensions_test.cpp" "tests/CMakeFiles/policy_test.dir/policy/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/policy_test.dir/policy/extensions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dicer_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/dicer_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dicer_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/rdt/CMakeFiles/dicer_rdt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dicer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dicer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
