file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/address_stream_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/address_stream_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/app_profile_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/app_profile_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/catalog_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/catalog_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/machine_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/machine_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/memory_link_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/memory_link_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/mrc_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/mrc_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/occupancy_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/occupancy_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/set_assoc_cache_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/set_assoc_cache_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/way_mask_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/way_mask_test.cpp.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
