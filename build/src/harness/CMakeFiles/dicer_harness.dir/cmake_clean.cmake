file(REMOVE_RECURSE
  "CMakeFiles/dicer_harness.dir/consolidation.cpp.o"
  "CMakeFiles/dicer_harness.dir/consolidation.cpp.o.d"
  "CMakeFiles/dicer_harness.dir/solo.cpp.o"
  "CMakeFiles/dicer_harness.dir/solo.cpp.o.d"
  "CMakeFiles/dicer_harness.dir/sweep.cpp.o"
  "CMakeFiles/dicer_harness.dir/sweep.cpp.o.d"
  "CMakeFiles/dicer_harness.dir/workloads.cpp.o"
  "CMakeFiles/dicer_harness.dir/workloads.cpp.o.d"
  "libdicer_harness.a"
  "libdicer_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dicer_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
