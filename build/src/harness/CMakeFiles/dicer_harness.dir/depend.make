# Empty dependencies file for dicer_harness.
# This may be replaced when dependencies are built.
