file(REMOVE_RECURSE
  "libdicer_harness.a"
)
