file(REMOVE_RECURSE
  "libdicer_util.a"
)
