# Empty dependencies file for dicer_util.
# This may be replaced when dependencies are built.
