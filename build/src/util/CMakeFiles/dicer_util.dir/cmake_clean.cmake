file(REMOVE_RECURSE
  "CMakeFiles/dicer_util.dir/cli.cpp.o"
  "CMakeFiles/dicer_util.dir/cli.cpp.o.d"
  "CMakeFiles/dicer_util.dir/csv.cpp.o"
  "CMakeFiles/dicer_util.dir/csv.cpp.o.d"
  "CMakeFiles/dicer_util.dir/log.cpp.o"
  "CMakeFiles/dicer_util.dir/log.cpp.o.d"
  "CMakeFiles/dicer_util.dir/rng.cpp.o"
  "CMakeFiles/dicer_util.dir/rng.cpp.o.d"
  "CMakeFiles/dicer_util.dir/stats.cpp.o"
  "CMakeFiles/dicer_util.dir/stats.cpp.o.d"
  "CMakeFiles/dicer_util.dir/table.cpp.o"
  "CMakeFiles/dicer_util.dir/table.cpp.o.d"
  "libdicer_util.a"
  "libdicer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dicer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
