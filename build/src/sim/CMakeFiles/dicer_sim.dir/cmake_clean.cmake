file(REMOVE_RECURSE
  "CMakeFiles/dicer_sim.dir/cache/address_stream.cpp.o"
  "CMakeFiles/dicer_sim.dir/cache/address_stream.cpp.o.d"
  "CMakeFiles/dicer_sim.dir/cache/mrc.cpp.o"
  "CMakeFiles/dicer_sim.dir/cache/mrc.cpp.o.d"
  "CMakeFiles/dicer_sim.dir/cache/mrc_profiler.cpp.o"
  "CMakeFiles/dicer_sim.dir/cache/mrc_profiler.cpp.o.d"
  "CMakeFiles/dicer_sim.dir/cache/occupancy_model.cpp.o"
  "CMakeFiles/dicer_sim.dir/cache/occupancy_model.cpp.o.d"
  "CMakeFiles/dicer_sim.dir/cache/set_assoc_cache.cpp.o"
  "CMakeFiles/dicer_sim.dir/cache/set_assoc_cache.cpp.o.d"
  "CMakeFiles/dicer_sim.dir/cache/way_mask.cpp.o"
  "CMakeFiles/dicer_sim.dir/cache/way_mask.cpp.o.d"
  "CMakeFiles/dicer_sim.dir/core/app_profile.cpp.o"
  "CMakeFiles/dicer_sim.dir/core/app_profile.cpp.o.d"
  "CMakeFiles/dicer_sim.dir/core/catalog.cpp.o"
  "CMakeFiles/dicer_sim.dir/core/catalog.cpp.o.d"
  "CMakeFiles/dicer_sim.dir/machine.cpp.o"
  "CMakeFiles/dicer_sim.dir/machine.cpp.o.d"
  "CMakeFiles/dicer_sim.dir/mem/memory_link.cpp.o"
  "CMakeFiles/dicer_sim.dir/mem/memory_link.cpp.o.d"
  "libdicer_sim.a"
  "libdicer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dicer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
