
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache/address_stream.cpp" "src/sim/CMakeFiles/dicer_sim.dir/cache/address_stream.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/cache/address_stream.cpp.o.d"
  "/root/repo/src/sim/cache/mrc.cpp" "src/sim/CMakeFiles/dicer_sim.dir/cache/mrc.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/cache/mrc.cpp.o.d"
  "/root/repo/src/sim/cache/mrc_profiler.cpp" "src/sim/CMakeFiles/dicer_sim.dir/cache/mrc_profiler.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/cache/mrc_profiler.cpp.o.d"
  "/root/repo/src/sim/cache/occupancy_model.cpp" "src/sim/CMakeFiles/dicer_sim.dir/cache/occupancy_model.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/cache/occupancy_model.cpp.o.d"
  "/root/repo/src/sim/cache/set_assoc_cache.cpp" "src/sim/CMakeFiles/dicer_sim.dir/cache/set_assoc_cache.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/cache/set_assoc_cache.cpp.o.d"
  "/root/repo/src/sim/cache/way_mask.cpp" "src/sim/CMakeFiles/dicer_sim.dir/cache/way_mask.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/cache/way_mask.cpp.o.d"
  "/root/repo/src/sim/core/app_profile.cpp" "src/sim/CMakeFiles/dicer_sim.dir/core/app_profile.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/core/app_profile.cpp.o.d"
  "/root/repo/src/sim/core/catalog.cpp" "src/sim/CMakeFiles/dicer_sim.dir/core/catalog.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/core/catalog.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/dicer_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/mem/memory_link.cpp" "src/sim/CMakeFiles/dicer_sim.dir/mem/memory_link.cpp.o" "gcc" "src/sim/CMakeFiles/dicer_sim.dir/mem/memory_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dicer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
