# Empty dependencies file for dicer_sim.
# This may be replaced when dependencies are built.
