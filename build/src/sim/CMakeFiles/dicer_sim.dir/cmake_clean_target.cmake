file(REMOVE_RECURSE
  "libdicer_sim.a"
)
