# Empty compiler generated dependencies file for dicer_policy.
# This may be replaced when dependencies are built.
