
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/admission.cpp" "src/policy/CMakeFiles/dicer_policy.dir/admission.cpp.o" "gcc" "src/policy/CMakeFiles/dicer_policy.dir/admission.cpp.o.d"
  "/root/repo/src/policy/baselines.cpp" "src/policy/CMakeFiles/dicer_policy.dir/baselines.cpp.o" "gcc" "src/policy/CMakeFiles/dicer_policy.dir/baselines.cpp.o.d"
  "/root/repo/src/policy/dicer.cpp" "src/policy/CMakeFiles/dicer_policy.dir/dicer.cpp.o" "gcc" "src/policy/CMakeFiles/dicer_policy.dir/dicer.cpp.o.d"
  "/root/repo/src/policy/extensions.cpp" "src/policy/CMakeFiles/dicer_policy.dir/extensions.cpp.o" "gcc" "src/policy/CMakeFiles/dicer_policy.dir/extensions.cpp.o.d"
  "/root/repo/src/policy/factory.cpp" "src/policy/CMakeFiles/dicer_policy.dir/factory.cpp.o" "gcc" "src/policy/CMakeFiles/dicer_policy.dir/factory.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/policy/CMakeFiles/dicer_policy.dir/policy.cpp.o" "gcc" "src/policy/CMakeFiles/dicer_policy.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdt/CMakeFiles/dicer_rdt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dicer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dicer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
