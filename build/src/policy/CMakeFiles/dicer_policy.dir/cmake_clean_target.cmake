file(REMOVE_RECURSE
  "libdicer_policy.a"
)
