file(REMOVE_RECURSE
  "CMakeFiles/dicer_policy.dir/admission.cpp.o"
  "CMakeFiles/dicer_policy.dir/admission.cpp.o.d"
  "CMakeFiles/dicer_policy.dir/baselines.cpp.o"
  "CMakeFiles/dicer_policy.dir/baselines.cpp.o.d"
  "CMakeFiles/dicer_policy.dir/dicer.cpp.o"
  "CMakeFiles/dicer_policy.dir/dicer.cpp.o.d"
  "CMakeFiles/dicer_policy.dir/extensions.cpp.o"
  "CMakeFiles/dicer_policy.dir/extensions.cpp.o.d"
  "CMakeFiles/dicer_policy.dir/factory.cpp.o"
  "CMakeFiles/dicer_policy.dir/factory.cpp.o.d"
  "CMakeFiles/dicer_policy.dir/policy.cpp.o"
  "CMakeFiles/dicer_policy.dir/policy.cpp.o.d"
  "libdicer_policy.a"
  "libdicer_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dicer_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
