# Empty compiler generated dependencies file for dicer_metrics.
# This may be replaced when dependencies are built.
