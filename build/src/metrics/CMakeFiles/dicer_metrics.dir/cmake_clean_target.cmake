file(REMOVE_RECURSE
  "libdicer_metrics.a"
)
