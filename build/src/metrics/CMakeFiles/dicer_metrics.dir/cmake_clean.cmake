file(REMOVE_RECURSE
  "CMakeFiles/dicer_metrics.dir/metrics.cpp.o"
  "CMakeFiles/dicer_metrics.dir/metrics.cpp.o.d"
  "libdicer_metrics.a"
  "libdicer_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dicer_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
