# Empty dependencies file for dicer_rdt.
# This may be replaced when dependencies are built.
