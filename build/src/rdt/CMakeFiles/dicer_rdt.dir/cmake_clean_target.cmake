file(REMOVE_RECURSE
  "libdicer_rdt.a"
)
