file(REMOVE_RECURSE
  "CMakeFiles/dicer_rdt.dir/cat.cpp.o"
  "CMakeFiles/dicer_rdt.dir/cat.cpp.o.d"
  "CMakeFiles/dicer_rdt.dir/mba.cpp.o"
  "CMakeFiles/dicer_rdt.dir/mba.cpp.o.d"
  "CMakeFiles/dicer_rdt.dir/monitor.cpp.o"
  "CMakeFiles/dicer_rdt.dir/monitor.cpp.o.d"
  "libdicer_rdt.a"
  "libdicer_rdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dicer_rdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
