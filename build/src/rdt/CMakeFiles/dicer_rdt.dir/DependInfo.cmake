
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdt/cat.cpp" "src/rdt/CMakeFiles/dicer_rdt.dir/cat.cpp.o" "gcc" "src/rdt/CMakeFiles/dicer_rdt.dir/cat.cpp.o.d"
  "/root/repo/src/rdt/mba.cpp" "src/rdt/CMakeFiles/dicer_rdt.dir/mba.cpp.o" "gcc" "src/rdt/CMakeFiles/dicer_rdt.dir/mba.cpp.o.d"
  "/root/repo/src/rdt/monitor.cpp" "src/rdt/CMakeFiles/dicer_rdt.dir/monitor.cpp.o" "gcc" "src/rdt/CMakeFiles/dicer_rdt.dir/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dicer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dicer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
