#include "harness/solo.hpp"

#include <gtest/gtest.h>

#include "sim/core/catalog.hpp"

namespace dicer::harness {
namespace {

const sim::AppProfile& app(const char* name) {
  return sim::default_catalog().by_name(name);
}

TEST(SoloSteadyState, ValidatesWayCount) {
  const sim::MachineConfig mc;
  EXPECT_THROW(solo_steady_state(app("namd1"), 0, mc), std::invalid_argument);
  EXPECT_THROW(solo_steady_state(app("namd1"), 21, mc), std::invalid_argument);
}

TEST(SoloSteadyState, MoreCacheNeverHurtsAlone) {
  const sim::MachineConfig mc;
  for (const char* name : {"gcc_base3", "mcf1", "namd1", "milc1", "Xalan1"}) {
    double prev = 0.0;
    for (unsigned w = 1; w <= 20; ++w) {
      const double ipc = solo_steady_state(app(name), w, mc).ipc;
      EXPECT_GE(ipc, prev * 0.999) << name << " at " << w << " ways";
      prev = ipc;
    }
  }
}

TEST(SoloSteadyState, CacheSensitiveAppGainsFromWays) {
  const sim::MachineConfig mc;
  const double one = solo_steady_state(app("omnetpp1"), 1, mc).ipc;
  const double twenty = solo_steady_state(app("omnetpp1"), 20, mc).ipc;
  EXPECT_GT(twenty, 1.3 * one);
}

TEST(SoloSteadyState, StreamingAppIndifferentToWays) {
  const sim::MachineConfig mc;
  const double two = solo_steady_state(app("lbm1"), 2, mc).ipc;
  const double twenty = solo_steady_state(app("lbm1"), 20, mc).ipc;
  EXPECT_LT(twenty / two, 1.10);
}

TEST(SoloSteadyState, TimeMatchesInstructionsOverIps) {
  const sim::MachineConfig mc;
  const auto& a = app("povray1");
  const auto res = solo_steady_state(a, 20, mc);
  EXPECT_NEAR(res.time_sec,
              a.total_instructions() / (res.ipc * mc.freq_hz), 1e-6);
}

TEST(SoloSteadyState, BandwidthWithinLink) {
  const sim::MachineConfig mc;
  for (const char* name : {"lbm1", "libquantum1", "milc1"}) {
    const auto res = solo_steady_state(app(name), 20, mc);
    EXPECT_LE(res.mem_bw_bytes_per_sec,
              mc.link.capacity_bytes_per_sec * 1.0001) << name;
    EXPECT_GT(res.mem_bw_bytes_per_sec, 0.0) << name;
  }
}

TEST(MinWaysForFraction, ValidatesFraction) {
  const sim::MachineConfig mc;
  EXPECT_THROW(min_ways_for_fraction(app("namd1"), 0.0, mc),
               std::invalid_argument);
  EXPECT_THROW(min_ways_for_fraction(app("namd1"), 1.5, mc),
               std::invalid_argument);
}

TEST(MinWaysForFraction, MonotoneInFraction) {
  const sim::MachineConfig mc;
  for (const char* name : {"gcc_base3", "omnetpp1", "namd1"}) {
    const unsigned w90 = min_ways_for_fraction(app(name), 0.90, mc);
    const unsigned w95 = min_ways_for_fraction(app(name), 0.95, mc);
    const unsigned w99 = min_ways_for_fraction(app(name), 0.99, mc);
    EXPECT_LE(w90, w95) << name;
    EXPECT_LE(w95, w99) << name;
  }
}

TEST(MinWaysForFraction, FullFractionAlwaysReachable) {
  const sim::MachineConfig mc;
  EXPECT_LE(min_ways_for_fraction(app("mcf1"), 1.0, mc), 20u);
}

// The steady-state fast path agrees with the quantum-stepped machine —
// the cross-validation that justifies using the fast path everywhere.
class SteadyStateAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(SteadyStateAgreement, MatchesSimulatedMachine) {
  sim::MachineConfig mc;
  mc.quantum_sec = 0.05;
  const auto& a = app(GetParam());
  const auto fast = solo_steady_state(a, 20, mc);
  const auto slow = solo_simulated(a, 20, mc);
  EXPECT_NEAR(fast.ipc, slow.ipc, 0.03 * slow.ipc) << GetParam();
  EXPECT_NEAR(fast.time_sec, slow.time_sec, 0.05 * slow.time_sec + mc.quantum_sec)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Apps, SteadyStateAgreement,
                         ::testing::Values("gcc_base3", "milc1", "namd1",
                                           "mcf1", "lbm1", "GemsFDTD1",
                                           "canneal1"));

}  // namespace
}  // namespace dicer::harness
