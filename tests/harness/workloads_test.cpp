#include "harness/workloads.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace dicer::harness {
namespace {

TEST(WorkloadSpec, Label) {
  WorkloadSpec s{"milc1", "gcc_base3"};
  EXPECT_EQ(s.label(), "milc1 gcc_base3");
}

TEST(AllPairs, FullCross) {
  const auto pairs = all_pairs(sim::default_catalog());
  EXPECT_EQ(pairs.size(), 3481u);  // 59 x 59, the paper's workload count
  EXPECT_EQ(pairs.front().hp, pairs.front().be);  // first is (a0, a0)
}

BaselineEntry entry(const char* hp, const char* be, double alone, double um,
                    double ct) {
  BaselineEntry e;
  e.spec = {hp, be};
  e.hp_alone_ipc = alone;
  e.be_alone_ipc = 1.0;
  e.um_hp_ipc = um;
  e.ct_hp_ipc = ct;
  e.um_be_ipc = 0.8;
  e.ct_be_ipc = 0.5;
  e.um_efu = 0.8;
  e.ct_efu = 0.6;
  return e;
}

TEST(BaselineEntry, SlowdownsAndClassification) {
  const auto e = entry("a", "b", 1.0, 0.8, 0.9);
  EXPECT_DOUBLE_EQ(e.um_slowdown(), 1.25);
  EXPECT_NEAR(e.ct_slowdown(), 1.111, 0.001);
  EXPECT_TRUE(e.ct_favoured());  // 0.9 > 0.8 * 1.03
}

TEST(BaselineEntry, TieIsCtThwarted) {
  // "No improvement" counts as CT-Thwarted (paper 2.3.3), including
  // improvements inside the noise margin.
  EXPECT_FALSE(entry("a", "b", 1.0, 0.8, 0.8).ct_favoured());
  EXPECT_FALSE(entry("a", "b", 1.0, 0.8, 0.81).ct_favoured());
  EXPECT_FALSE(entry("a", "b", 1.0, 0.9, 0.7).ct_favoured());
}

BaselineStudy synthetic_study(std::size_t n_apps = 59) {
  BaselineStudy study;
  const auto& catalog = sim::default_catalog();
  for (std::size_t i = 0; i < n_apps; ++i) {
    for (std::size_t j = 0; j < n_apps; ++j) {
      const double um = 0.4 + 0.5 * static_cast<double>((i * 59 + j) % 100) / 100.0;
      const double ct = (i + j) % 2 ? um * 1.2 : um * 0.95;
      study.entries.push_back(entry(catalog.at(i).name.c_str(),
                                    catalog.at(j).name.c_str(), 1.0, um, ct));
    }
  }
  return study;
}

TEST(BaselineStudy, CtFractionCounts) {
  const auto study = synthetic_study();
  EXPECT_EQ(study.count_ct_favoured(), 1740u);  // (i+j) odd cells
  EXPECT_NEAR(study.fraction_ct_thwarted(), 1.0 - 1740.0 / 3481.0, 1e-12);
}

TEST(BaselineCache, RoundTripsExactly) {
  const std::string path = ::testing::TempDir() + "/baseline_cache_test.csv";
  const auto& catalog = sim::default_catalog();
  auto study = synthetic_study();
  study.config = ConsolidationConfig{};
  save_baseline_cache(path, study, catalog);
  const auto loaded = load_baseline_cache(path, catalog, study.config);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->entries.size(), study.entries.size());
  for (std::size_t i = 0; i < study.entries.size(); i += 97) {
    EXPECT_EQ(loaded->entries[i].spec.hp, study.entries[i].spec.hp);
    EXPECT_NEAR(loaded->entries[i].um_hp_ipc, study.entries[i].um_hp_ipc,
                1e-5);
    EXPECT_NEAR(loaded->entries[i].ct_efu, study.entries[i].ct_efu, 1e-5);
  }
  std::remove(path.c_str());
}

TEST(BaselineCache, StaleKeyRejected) {
  const std::string path = ::testing::TempDir() + "/baseline_stale_test.csv";
  const auto& catalog = sim::default_catalog();
  auto study = synthetic_study();
  study.config = ConsolidationConfig{};
  save_baseline_cache(path, study, catalog);
  // A different machine geometry must invalidate the cache.
  ConsolidationConfig other;
  other.machine.llc.ways = 16;
  EXPECT_FALSE(load_baseline_cache(path, catalog, other).has_value());
  std::remove(path.c_str());
}

TEST(BaselineCache, MissingFileIsNullopt) {
  EXPECT_FALSE(load_baseline_cache("/no/such/file.csv",
                                   sim::default_catalog(),
                                   ConsolidationConfig{})
                   .has_value());
}

TEST(RepresentativeSample, PaperCompositionFiftySeventy) {
  const auto study = synthetic_study();
  const auto sample = representative_sample(study, 50, 70);
  EXPECT_EQ(sample.size(), 120u);
  std::size_t ctf = 0;
  for (const auto& e : sample) ctf += e.ct_favoured() ? 1u : 0u;
  EXPECT_EQ(ctf, 50u);
}

TEST(RepresentativeSample, DeterministicForSeed) {
  const auto study = synthetic_study();
  const auto a = representative_sample(study, 50, 70, 42);
  const auto b = representative_sample(study, 50, 70, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.label(), b[i].spec.label());
  }
}

TEST(RepresentativeSample, NoDuplicates) {
  const auto study = synthetic_study();
  const auto sample = representative_sample(study, 50, 70);
  std::set<std::string> labels;
  for (const auto& e : sample) {
    EXPECT_TRUE(labels.insert(e.spec.label()).second) << e.spec.label();
  }
}

TEST(RepresentativeSample, SpansSlowdownRange) {
  // Stratification: the sample's slowdown range covers most of the pool's.
  const auto study = synthetic_study();
  const auto sample = representative_sample(study, 50, 70);
  double lo = 1e9, hi = 0.0;
  for (const auto& e : sample) {
    lo = std::min(lo, e.um_slowdown());
    hi = std::max(hi, e.um_slowdown());
  }
  EXPECT_LT(lo, 1.2);
  EXPECT_GT(hi, 2.0);
}

TEST(RepresentativeSample, RequestMoreThanPoolGetsPool) {
  BaselineStudy tiny;
  tiny.entries.push_back(entry("a", "b", 1.0, 0.8, 0.9));   // CT-F
  tiny.entries.push_back(entry("c", "d", 1.0, 0.8, 0.78));  // CT-T
  const auto sample = representative_sample(tiny, 5, 5);
  EXPECT_EQ(sample.size(), 2u);
}

// --- malformed-cache hardening: every defect is diagnosed, none aborts --

/// Writes a valid cache, then rewrites data line `row` (1-based within the
/// data section) via `mutate`, returning the path.
std::string corrupted_cache(const std::string& name,
                            const std::function<std::string(std::string)>&
                                mutate,
                            std::size_t row = 1) {
  const std::string path = ::testing::TempDir() + "/" + name;
  const auto& catalog = sim::default_catalog();
  auto study = synthetic_study();
  study.config = ConsolidationConfig{};
  save_baseline_cache(path, study, catalog);

  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  lines.at(1 + row) = mutate(lines.at(1 + row));  // key + header precede

  std::ofstream out(path);
  for (const auto& l : lines) out << l << '\n';
  return path;
}

TEST(BaselineCache, BadNumberCellIsDiagnosedNotFatal) {
  // The historical bug: a non-numeric cell escaped as an uncaught
  // std::stod exception and killed the whole bench.
  const auto path = corrupted_cache("baseline_badnum_test.csv",
                                    [](std::string l) {
                                      const auto comma = l.rfind(',');
                                      return l.substr(0, comma + 1) + "oops";
                                    });
  EXPECT_FALSE(load_baseline_cache(path, sim::default_catalog(),
                                   ConsolidationConfig{})
                   .has_value());
  std::remove(path.c_str());
}

TEST(BaselineCache, PartialNumberCellIsDiagnosedNotFatal) {
  // "0.8x" must not silently truncate to 0.8.
  const auto path = corrupted_cache("baseline_partial_test.csv",
                                    [](std::string l) { return l + "x"; });
  EXPECT_FALSE(load_baseline_cache(path, sim::default_catalog(),
                                   ConsolidationConfig{})
                   .has_value());
  std::remove(path.c_str());
}

TEST(BaselineCache, TruncatedRowIsDiagnosedNotFatal) {
  const auto path = corrupted_cache(
      "baseline_truncated_test.csv",
      [](std::string l) { return l.substr(0, l.rfind(',')); }, 7);
  EXPECT_FALSE(load_baseline_cache(path, sim::default_catalog(),
                                   ConsolidationConfig{})
                   .has_value());
  std::remove(path.c_str());
}

TEST(BaselineCache, TrailingColumnsAreDiagnosedNotFatal) {
  const auto path = corrupted_cache("baseline_trailing_test.csv",
                                    [](std::string l) { return l + ",0.5"; });
  EXPECT_FALSE(load_baseline_cache(path, sim::default_catalog(),
                                   ConsolidationConfig{})
                   .has_value());
  std::remove(path.c_str());
}

TEST(DefaultCacheDir, EnvOverride) {
  setenv("DICER_CACHE_DIR", "/tmp/somewhere", 1);
  EXPECT_EQ(default_cache_dir(), "/tmp/somewhere");
  unsetenv("DICER_CACHE_DIR");
  EXPECT_EQ(default_cache_dir(), ".");
}

}  // namespace
}  // namespace dicer::harness
