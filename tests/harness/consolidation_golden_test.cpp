// Golden equivalence pins for full consolidation runs under the three
// headline policies. Values harvested (printf %.17g) from the
// implementation BEFORE the allocation-free hot-path optimisation
// (commit 0d2c1dc); exact double equality proves the optimised simulator
// commits byte-identical telemetry through a complete control loop —
// periodic DICER mask/actuator churn included. Re-harvest only for an
// intentional model change, and say so in the PR.
#include "harness/consolidation.hpp"

#include <gtest/gtest.h>

#include "policy/factory.hpp"
#include "sim/core/catalog.hpp"

namespace dicer::harness {
namespace {

struct Golden {
  const char* policy;
  double window_sec;
  double hp_ipc;
  double be_ipc_mean;
  double avg_rho;
  std::uint64_t hp_completions;
  std::uint64_t be_completions;
};

class ConsolidationGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(ConsolidationGolden, ByteIdenticalToPreOptimisationRun) {
  const Golden& g = GetParam();
  ConsolidationConfig cc;
  cc.cores_used = 6;
  const auto& catalog = sim::default_catalog();
  const auto policy = policy::make_policy(g.policy);
  const auto res = run_consolidation(catalog.by_name("omnetpp1"),
                                     catalog.by_name("gcc_base3"), *policy, cc);
  EXPECT_EQ(res.window_sec, g.window_sec);
  EXPECT_EQ(res.hp_ipc, g.hp_ipc);
  EXPECT_EQ(res.be_ipc_mean, g.be_ipc_mean);
  EXPECT_EQ(res.avg_link_utilisation, g.avg_rho);
  EXPECT_EQ(res.hp_completions, g.hp_completions);
  EXPECT_EQ(res.be_completions, g.be_completions);
  EXPECT_FALSE(res.window_capped);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ConsolidationGolden,
    ::testing::Values(
        Golden{"UM", 30.00000000000189, 0.48042371584825494,
               0.970606987790123, 0.1292360100539349, 1, 10},
        Golden{"CT", 25.000000000001108, 0.64880425069902459,
               0.60447643165641174, 0.32537733470257513, 1, 5},
        Golden{"DICER", 23.000000000000796, 0.60597962445880016,
               0.81160430320839227, 0.24385622432166271, 1, 5}),
    [](const ::testing::TestParamInfo<Golden>& param_info) {
      return std::string(param_info.param.policy);
    });

}  // namespace
}  // namespace dicer::harness
