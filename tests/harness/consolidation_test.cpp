#include "harness/consolidation.hpp"

#include <gtest/gtest.h>

#include "harness/solo.hpp"
#include "policy/baselines.hpp"
#include "policy/factory.hpp"
#include "sim/core/catalog.hpp"

namespace dicer::harness {
namespace {

const sim::AppProfile& app(const char* name) {
  return sim::default_catalog().by_name(name);
}

TEST(Consolidation, ValidatesCoreCount) {
  policy::Unmanaged um;
  ConsolidationConfig cfg;
  cfg.cores_used = 1;
  EXPECT_THROW(run_consolidation(app("namd1"), app("namd1"), um, cfg),
               std::invalid_argument);
  cfg.cores_used = 11;
  EXPECT_THROW(run_consolidation(app("namd1"), app("namd1"), um, cfg),
               std::invalid_argument);
}

TEST(Consolidation, ResultFieldsPopulated) {
  policy::Unmanaged um;
  ConsolidationConfig cfg;
  cfg.cores_used = 4;
  const auto res = run_consolidation(app("gcc_base3"), app("namd1"), um, cfg);
  EXPECT_EQ(res.policy, "UM");
  EXPECT_EQ(res.be_ipcs.size(), 3u);
  EXPECT_GT(res.hp_ipc, 0.0);
  EXPECT_GT(res.be_ipc_mean, 0.0);
  EXPECT_GE(res.window_sec, cfg.min_window_sec);
  EXPECT_GE(res.hp_completions, 1u);
  EXPECT_GE(res.be_completions, 3u);
  EXPECT_FALSE(res.window_capped);
  EXPECT_GE(res.avg_link_utilisation, 0.0);
  EXPECT_LE(res.avg_link_utilisation, 1.0);
}

TEST(Consolidation, EveryoneExecutesAtLeastOnce) {
  // The paper's restart-until-everyone-finishes methodology (4.1).
  policy::CacheTakeover ct;
  ConsolidationConfig cfg;
  cfg.cores_used = 10;
  const auto res = run_consolidation(app("milc1"), app("gcc_base3"), ct, cfg);
  EXPECT_GE(res.hp_completions, 1u);
  EXPECT_GE(res.be_completions, 9u);
}

TEST(Consolidation, WindowCapTriggersOnStarvedBes) {
  policy::CacheTakeover ct;
  ConsolidationConfig cfg;
  cfg.cores_used = 10;
  cfg.max_window_sec = 5.0;  // nothing finishes in five seconds
  const auto res = run_consolidation(app("milc1"), app("gcc_base3"), ct, cfg);
  EXPECT_TRUE(res.window_capped);
  EXPECT_NEAR(res.window_sec, 5.0, 6.0);  // first policy interval may overrun
}

TEST(Consolidation, IpcPairsLayout) {
  ConsolidationResult res;
  res.hp_ipc = 0.8;
  res.be_ipcs = {0.5, 0.6};
  const auto pairs = res.ipc_pairs(1.0, 1.2);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_DOUBLE_EQ(pairs[0].alone, 1.0);
  EXPECT_DOUBLE_EQ(pairs[0].colocated, 0.8);
  EXPECT_DOUBLE_EQ(pairs[1].alone, 1.2);
  EXPECT_DOUBLE_EQ(pairs[2].colocated, 0.6);
}

TEST(Consolidation, CoLocatedIpcNeverBeatsSoloByMuch) {
  const ConsolidationConfig cfg;
  const double hp_alone =
      solo_steady_state(app("omnetpp1"), 20, cfg.machine).ipc;
  policy::Unmanaged um;
  const auto res = run_consolidation(app("omnetpp1"), app("gcc_base3"), um, cfg);
  EXPECT_LE(res.hp_ipc, hp_alone * 1.02);
}

TEST(Consolidation, IdenticalBesGetIdenticalIpc) {
  policy::Unmanaged um;
  ConsolidationConfig cfg;
  cfg.cores_used = 6;
  const auto res = run_consolidation(app("milc1"), app("bzip22"), um, cfg);
  for (double be : res.be_ipcs) {
    EXPECT_NEAR(be, res.be_ipc_mean, 0.01 * res.be_ipc_mean);
  }
}

TEST(Consolidation, BatchMatchesSerialExactly) {
  // run_consolidation_batch is the sweep's chunked fast path: every lane's
  // result must equal run_consolidation's bit for bit — IPCs, window,
  // completions, link utilisation and the full solver-stat vector —
  // across mixed policies and core counts in one batch.
  struct Spec {
    const char* hp;
    const char* be;
    const char* policy;
    unsigned cores;
  };
  const std::vector<Spec> specs = {
      {"milc1", "gcc_base3", "UM", 4},
      {"omnetpp1", "gcc_base3", "DICER", 6},
      {"namd1", "bzip22", "CT", 3},
      {"milc1", "gcc_base3", "DICER", 4},
  };
  ConsolidationConfig base;
  base.cores_used = 0;  // ignored: every task overrides

  std::vector<std::unique_ptr<policy::Policy>> policies;
  std::vector<BatchConsolidationTask> tasks;
  for (const auto& s : specs) {
    policies.push_back(policy::make_policy(s.policy));
    tasks.push_back({&app(s.hp), &app(s.be), policies.back().get(), s.cores});
  }
  const auto batched = run_consolidation_batch(tasks, base);

  ASSERT_EQ(batched.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& s = specs[i];
    ConsolidationConfig cfg = base;
    cfg.cores_used = s.cores;
    const auto pol = policy::make_policy(s.policy);
    const auto serial = run_consolidation(app(s.hp), app(s.be), *pol, cfg);
    const auto& b = batched[i];
    EXPECT_EQ(b.policy, serial.policy) << "lane " << i;
    EXPECT_EQ(b.window_sec, serial.window_sec) << "lane " << i;
    EXPECT_EQ(b.window_capped, serial.window_capped) << "lane " << i;
    EXPECT_EQ(b.hp_ipc, serial.hp_ipc) << "lane " << i;
    EXPECT_EQ(b.be_ipc_mean, serial.be_ipc_mean) << "lane " << i;
    EXPECT_EQ(b.be_ipcs, serial.be_ipcs) << "lane " << i;
    EXPECT_EQ(b.hp_completions, serial.hp_completions) << "lane " << i;
    EXPECT_EQ(b.be_completions, serial.be_completions) << "lane " << i;
    EXPECT_EQ(b.avg_link_utilisation, serial.avg_link_utilisation)
        << "lane " << i;
    EXPECT_EQ(b.solver.quanta, serial.solver.quanta) << "lane " << i;
    EXPECT_EQ(b.solver.replays, serial.solver.replays) << "lane " << i;
    EXPECT_EQ(b.solver.solves, serial.solver.solves) << "lane " << i;
    EXPECT_EQ(b.solver.stable_solves, serial.solver.stable_solves)
        << "lane " << i;
    EXPECT_EQ(b.solver.invalidations_actuator,
              serial.solver.invalidations_actuator)
        << "lane " << i;
    EXPECT_EQ(b.solver.invalidations_fingerprint,
              serial.solver.invalidations_fingerprint)
        << "lane " << i;
  }
}

TEST(Consolidation, BatchValidatesTasks) {
  policy::Unmanaged um;
  const auto& hp = app("milc1");
  const auto& be = app("gcc_base3");
  EXPECT_THROW(run_consolidation_batch({{nullptr, &be, &um, 4}}, {}),
               std::invalid_argument);
  EXPECT_THROW(run_consolidation_batch({{&hp, &be, nullptr, 4}}, {}),
               std::invalid_argument);
  EXPECT_THROW(run_consolidation_batch({{&hp, &be, &um, 1}}, {}),
               std::invalid_argument);
  EXPECT_TRUE(run_consolidation_batch({}, {}).empty());
}

TEST(Consolidation, DeterministicRepeats) {
  ConsolidationConfig cfg;
  cfg.cores_used = 5;
  policy::CacheTakeover a, b;
  const auto r1 = run_consolidation(app("soplex1"), app("gcc_base2"), a, cfg);
  const auto r2 = run_consolidation(app("soplex1"), app("gcc_base2"), b, cfg);
  EXPECT_DOUBLE_EQ(r1.hp_ipc, r2.hp_ipc);
  EXPECT_DOUBLE_EQ(r1.be_ipc_mean, r2.be_ipc_mean);
  EXPECT_DOUBLE_EQ(r1.window_sec, r2.window_sec);
}

TEST(Consolidation, MbaPlatformFlagWiresController) {
  ConsolidationConfig cfg;
  cfg.cores_used = 4;
  cfg.enable_mba = true;
  const auto pol = policy::make_policy("DICER+MBA");
  EXPECT_NO_THROW(run_consolidation(app("milc1"), app("lbm1"), *pol, cfg));
  // And without the flag the MBA policy must fail loudly.
  cfg.enable_mba = false;
  const auto pol2 = policy::make_policy("DICER+MBA");
  EXPECT_THROW(run_consolidation(app("milc1"), app("lbm1"), *pol2, cfg),
               std::invalid_argument);
}

// The paper's three-policy comparison on a known CT-Favoured workload:
// CT and DICER must protect the HP better than UM, and DICER must give the
// BEs more than CT does.
TEST(Consolidation, PolicyOrderingOnCtFavouredWorkload) {
  ConsolidationConfig cfg;
  const auto um = run_consolidation(app("omnetpp1"), app("gcc_base3"),
                                    *policy::make_policy("UM"), cfg);
  const auto ct = run_consolidation(app("omnetpp1"), app("gcc_base3"),
                                    *policy::make_policy("CT"), cfg);
  const auto dicer = run_consolidation(app("omnetpp1"), app("gcc_base3"),
                                       *policy::make_policy("DICER"), cfg);
  EXPECT_GT(ct.hp_ipc, um.hp_ipc);
  EXPECT_GT(dicer.hp_ipc, um.hp_ipc);
  EXPECT_GT(dicer.be_ipc_mean, ct.be_ipc_mean);
}

// And on the paper's CT-Thwarted example (Fig 3): CT must hurt the HP
// relative to UM, and DICER must avoid CT's mistake.
TEST(Consolidation, PolicyOrderingOnCtThwartedWorkload) {
  ConsolidationConfig cfg;
  const auto um = run_consolidation(app("milc1"), app("gcc_base3"),
                                    *policy::make_policy("UM"), cfg);
  const auto ct = run_consolidation(app("milc1"), app("gcc_base3"),
                                    *policy::make_policy("CT"), cfg);
  const auto dicer = run_consolidation(app("milc1"), app("gcc_base3"),
                                       *policy::make_policy("DICER"), cfg);
  EXPECT_LT(ct.hp_ipc, um.hp_ipc);
  EXPECT_GT(dicer.hp_ipc, ct.hp_ipc);
}

}  // namespace
}  // namespace dicer::harness
