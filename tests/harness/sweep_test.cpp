#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace dicer::harness {
namespace {

BaselineEntry sample_entry(const char* hp, const char* be) {
  BaselineEntry e;
  e.spec = {hp, be};
  e.hp_alone_ipc = 3.0;  // generous solo IPC: normalised values < 1
  e.be_alone_ipc = 3.0;
  e.um_hp_ipc = 2.7;
  e.ct_hp_ipc = 2.85;
  return e;
}

SweepConfig small_config() {
  SweepConfig sc;
  sc.policies = {"UM", "CT"};
  sc.cores = {2, 4};
  return sc;
}

TEST(PolicySweep, ProducesFullGrid) {
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3"), sample_entry("namd1", "bzip22")};
  const auto rows = policy_sweep(sim::default_catalog(), sample,
                                 small_config(), /*cache_path=*/"");
  EXPECT_EQ(rows.size(), 2u * 2u * 2u);
  for (const auto& r : rows) {
    EXPECT_GT(r.hp_ipc, 0.0);
    EXPECT_GT(r.be_ipc, 0.0);
    EXPECT_GT(r.efu, 0.0);
    EXPECT_LE(r.efu, 1.0);
    EXPECT_GT(r.hp_norm(), 0.0);
  }
}

TEST(PolicySweep, FilterSelectsCell) {
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  const auto rows = policy_sweep(sim::default_catalog(), sample,
                                 small_config(), "");
  const auto cell = filter(rows, "CT", 4);
  ASSERT_EQ(cell.size(), 1u);
  EXPECT_EQ(cell[0].policy, "CT");
  EXPECT_EQ(cell[0].cores, 4u);
}

TEST(PolicySweep, CacheRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sweep_cache_test.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  const auto cfg = small_config();
  const auto rows = policy_sweep(sim::default_catalog(), sample, cfg, path);
  const auto again = policy_sweep(sim::default_catalog(), sample, cfg, path);
  ASSERT_EQ(again.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(again[i].policy, rows[i].policy);
    EXPECT_EQ(again[i].cores, rows[i].cores);
    EXPECT_NEAR(again[i].hp_ipc, rows[i].hp_ipc, 1e-5);
    EXPECT_NEAR(again[i].efu, rows[i].efu, 1e-5);
  }
  std::remove(path.c_str());
}

TEST(PolicySweep, CacheKeyedBySample) {
  const std::string path = ::testing::TempDir() + "/sweep_key_test.csv";
  std::remove(path.c_str());
  const auto cfg = small_config();
  const std::vector<BaselineEntry> s1 = {sample_entry("milc1", "gcc_base3")};
  const std::vector<BaselineEntry> s2 = {sample_entry("namd1", "bzip22")};
  policy_sweep(sim::default_catalog(), s1, cfg, path);
  // Different sample -> cache miss -> rows describe the new sample.
  const auto rows = policy_sweep(sim::default_catalog(), s2, cfg, path);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].hp, "namd1");
  std::remove(path.c_str());
}

TEST(PolicySweep, CtFavouredFlagPropagated) {
  std::vector<BaselineEntry> sample = {sample_entry("milc1", "gcc_base3")};
  sample[0].ct_hp_ipc = 2.95;  // force CT-F classification
  const auto rows =
      policy_sweep(sim::default_catalog(), sample, small_config(), "");
  for (const auto& r : rows) EXPECT_TRUE(r.ct_favoured);
}

}  // namespace
}  // namespace dicer::harness
