#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace dicer::harness {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const auto& l : lines) out << l << "\n";
}

/// Rewrite every data row's hp cell to "tampered", keeping the key and
/// header intact. A subsequent policy_sweep that *hits* the cache returns
/// "tampered" rows; one that correctly treats the cache as stale
/// recomputes and returns real workload names.
void tamper_hp_names(const std::string& path) {
  auto lines = read_lines(path);
  for (std::size_t i = 2; i < lines.size(); ++i) {
    lines[i] = "tampered" + lines[i].substr(lines[i].find(','));
  }
  write_lines(path, lines);
}

void expect_rows_identical(const std::vector<SweepRow>& a,
                           const std::vector<SweepRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].hp, b[i].hp) << "row " << i;
    EXPECT_EQ(a[i].be, b[i].be) << "row " << i;
    EXPECT_EQ(a[i].policy, b[i].policy) << "row " << i;
    EXPECT_EQ(a[i].cores, b[i].cores) << "row " << i;
    EXPECT_EQ(a[i].ct_favoured, b[i].ct_favoured) << "row " << i;
    // Bitwise equality, not NEAR: cached and parallel sweeps must be
    // byte-identical to the serial sweep.
    EXPECT_EQ(a[i].hp_alone, b[i].hp_alone) << "row " << i;
    EXPECT_EQ(a[i].be_alone, b[i].be_alone) << "row " << i;
    EXPECT_EQ(a[i].hp_ipc, b[i].hp_ipc) << "row " << i;
    EXPECT_EQ(a[i].be_ipc, b[i].be_ipc) << "row " << i;
    EXPECT_EQ(a[i].efu, b[i].efu) << "row " << i;
  }
}

BaselineEntry sample_entry(const char* hp, const char* be) {
  BaselineEntry e;
  e.spec = {hp, be};
  e.hp_alone_ipc = 3.0;  // generous solo IPC: normalised values < 1
  e.be_alone_ipc = 3.0;
  e.um_hp_ipc = 2.7;
  e.ct_hp_ipc = 2.85;
  return e;
}

SweepConfig small_config() {
  SweepConfig sc;
  sc.policies = {"UM", "CT"};
  sc.cores = {2, 4};
  return sc;
}

TEST(PolicySweep, ProducesFullGrid) {
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3"), sample_entry("namd1", "bzip22")};
  const auto rows = policy_sweep(sim::default_catalog(), sample,
                                 small_config(), /*cache_path=*/"");
  EXPECT_EQ(rows.size(), 2u * 2u * 2u);
  for (const auto& r : rows) {
    EXPECT_GT(r.hp_ipc, 0.0);
    EXPECT_GT(r.be_ipc, 0.0);
    EXPECT_GT(r.efu, 0.0);
    EXPECT_LE(r.efu, 1.0);
    EXPECT_GT(r.hp_norm(), 0.0);
  }
}

TEST(PolicySweep, FilterSelectsCell) {
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  const auto rows = policy_sweep(sim::default_catalog(), sample,
                                 small_config(), "");
  const auto cell = filter(rows, "CT", 4);
  ASSERT_EQ(cell.size(), 1u);
  EXPECT_EQ(cell[0].policy, "CT");
  EXPECT_EQ(cell[0].cores, 4u);
}

TEST(PolicySweep, CacheRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sweep_cache_test.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  const auto cfg = small_config();
  const auto rows = policy_sweep(sim::default_catalog(), sample, cfg, path);
  const auto again = policy_sweep(sim::default_catalog(), sample, cfg, path);
  ASSERT_EQ(again.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(again[i].policy, rows[i].policy);
    EXPECT_EQ(again[i].cores, rows[i].cores);
    EXPECT_NEAR(again[i].hp_ipc, rows[i].hp_ipc, 1e-5);
    EXPECT_NEAR(again[i].efu, rows[i].efu, 1e-5);
  }
  std::remove(path.c_str());
}

TEST(PolicySweep, CacheKeyedBySample) {
  const std::string path = ::testing::TempDir() + "/sweep_key_test.csv";
  std::remove(path.c_str());
  const auto cfg = small_config();
  const std::vector<BaselineEntry> s1 = {sample_entry("milc1", "gcc_base3")};
  const std::vector<BaselineEntry> s2 = {sample_entry("namd1", "bzip22")};
  policy_sweep(sim::default_catalog(), s1, cfg, path);
  // Different sample -> cache miss -> rows describe the new sample.
  const auto rows = policy_sweep(sim::default_catalog(), s2, cfg, path);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].hp, "namd1");
  std::remove(path.c_str());
}

TEST(PolicySweep, CorruptNumericCellFallsBackToRecompute) {
  const std::string path = ::testing::TempDir() + "/sweep_corrupt_cell.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  const auto cfg = small_config();
  const auto rows = policy_sweep(sim::default_catalog(), sample, cfg, path);

  auto lines = read_lines(path);
  ASSERT_GT(lines.size(), 2u);
  // Garbage in the cores column ("12abc" has trailing junk stoul would
  // silently accept) and pure garbage in a float column.
  lines[2].replace(lines[2].find(",2,"), 3, ",12abc,");
  lines.back().replace(lines.back().rfind(','), std::string::npos,
                       ",notanumber");
  write_lines(path, lines);

  const auto again = policy_sweep(sim::default_catalog(), sample, cfg, path);
  expect_rows_identical(again, rows);
  // The recompute must have repaired the cache in place.
  tamper_hp_names(path);
  const auto hit = policy_sweep(sim::default_catalog(), sample, cfg, path);
  ASSERT_FALSE(hit.empty());
  EXPECT_EQ(hit[0].hp, "tampered");
  std::remove(path.c_str());
}

TEST(PolicySweep, TruncatedRowFallsBackToRecompute) {
  const std::string path = ::testing::TempDir() + "/sweep_truncated.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  const auto cfg = small_config();
  const auto rows = policy_sweep(sim::default_catalog(), sample, cfg, path);

  auto lines = read_lines(path);
  ASSERT_GT(lines.size(), 2u);
  // Chop the last row mid-way, as an interrupted writer would have.
  lines.back() = lines.back().substr(0, lines.back().find(',') + 3);
  write_lines(path, lines);

  const auto again = policy_sweep(sim::default_catalog(), sample, cfg, path);
  expect_rows_identical(again, rows);
  std::remove(path.c_str());
}

TEST(PolicySweep, WrongColumnHeaderFallsBackToRecompute) {
  const std::string path = ::testing::TempDir() + "/sweep_bad_header.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  const auto cfg = small_config();
  const auto rows = policy_sweep(sim::default_catalog(), sample, cfg, path);

  auto lines = read_lines(path);
  ASSERT_GT(lines.size(), 2u);
  lines[1] = "hp,be,policy,bogus";
  write_lines(path, lines);

  const auto again = policy_sweep(sim::default_catalog(), sample, cfg, path);
  expect_rows_identical(again, rows);
  std::remove(path.c_str());
}

TEST(PolicySweep, ExtraColumnsFallBackToRecompute) {
  const std::string path = ::testing::TempDir() + "/sweep_extra_cols.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  const auto cfg = small_config();
  const auto rows = policy_sweep(sim::default_catalog(), sample, cfg, path);

  auto lines = read_lines(path);
  lines[2] += ",0.5";
  write_lines(path, lines);

  const auto again = policy_sweep(sim::default_catalog(), sample, cfg, path);
  expect_rows_identical(again, rows);
  std::remove(path.c_str());
}

TEST(PolicySweep, KeyInvalidatedByMinWindow) {
  const std::string path = ::testing::TempDir() + "/sweep_key_minwin.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  auto cfg = small_config();
  policy_sweep(sim::default_catalog(), sample, cfg, path);
  tamper_hp_names(path);

  // Control: unchanged config hits the (tampered) cache.
  const auto hit = policy_sweep(sim::default_catalog(), sample, cfg, path);
  ASSERT_FALSE(hit.empty());
  EXPECT_EQ(hit[0].hp, "tampered");

  auto changed = cfg;
  changed.base.min_window_sec = cfg.base.min_window_sec / 2;
  const auto miss =
      policy_sweep(sim::default_catalog(), sample, changed, path);
  ASSERT_FALSE(miss.empty());
  EXPECT_EQ(miss[0].hp, "milc1") << "stale cache reused across "
                                    "min_window_sec change";
  std::remove(path.c_str());
}

TEST(PolicySweep, KeyInvalidatedByEnableMba) {
  const std::string path = ::testing::TempDir() + "/sweep_key_mba.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  auto cfg = small_config();
  policy_sweep(sim::default_catalog(), sample, cfg, path);
  tamper_hp_names(path);

  auto changed = cfg;
  changed.base.enable_mba = !cfg.base.enable_mba;
  const auto miss =
      policy_sweep(sim::default_catalog(), sample, changed, path);
  ASSERT_FALSE(miss.empty());
  EXPECT_EQ(miss[0].hp, "milc1")
      << "stale cache reused across enable_mba change";
  std::remove(path.c_str());
}

TEST(PolicySweep, KeyInvalidatedByMachineGeometry) {
  const std::string path = ::testing::TempDir() + "/sweep_key_machine.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  auto cfg = small_config();
  policy_sweep(sim::default_catalog(), sample, cfg, path);
  tamper_hp_names(path);

  auto more_cores = cfg;
  more_cores.base.machine.num_cores = cfg.base.machine.num_cores + 2;
  const auto miss1 =
      policy_sweep(sim::default_catalog(), sample, more_cores, path);
  ASSERT_FALSE(miss1.empty());
  EXPECT_EQ(miss1[0].hp, "milc1")
      << "stale cache reused across num_cores change";

  tamper_hp_names(path);
  auto faster = more_cores;
  faster.base.machine.freq_hz = cfg.base.machine.freq_hz * 1.5;
  const auto miss2 =
      policy_sweep(sim::default_catalog(), sample, faster, path);
  ASSERT_FALSE(miss2.empty());
  EXPECT_EQ(miss2[0].hp, "milc1")
      << "stale cache reused across freq_hz change";
  std::remove(path.c_str());
}

TEST(PolicySweep, ParallelMatchesSerialByteIdentical) {
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3"), sample_entry("namd1", "bzip22"),
      sample_entry("milc1", "bzip22")};
  auto serial_cfg = small_config();
  serial_cfg.policies = {"UM", "CT", "DICER"};
  serial_cfg.jobs = 1;
  auto parallel_cfg = serial_cfg;
  parallel_cfg.jobs = 4;

  const auto serial =
      policy_sweep(sim::default_catalog(), sample, serial_cfg, "");
  const auto parallel =
      policy_sweep(sim::default_catalog(), sample, parallel_cfg, "");
  expect_rows_identical(parallel, serial);
}

TEST(PolicySweep, ParallelCacheFileByteIdenticalToSerial) {
  const std::string serial_path =
      ::testing::TempDir() + "/sweep_serial_cache.csv";
  const std::string parallel_path =
      ::testing::TempDir() + "/sweep_parallel_cache.csv";
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3"), sample_entry("namd1", "bzip22")};
  auto serial_cfg = small_config();
  serial_cfg.jobs = 1;
  auto parallel_cfg = small_config();
  parallel_cfg.jobs = 4;
  policy_sweep(sim::default_catalog(), sample, serial_cfg, serial_path);
  policy_sweep(sim::default_catalog(), sample, parallel_cfg, parallel_path);
  // No stray temp file left behind by the atomic rename.
  EXPECT_FALSE(std::ifstream(parallel_path + ".tmp").good());
  // The cache a parallel sweep writes is byte-identical to the serial
  // one (same key — jobs is excluded — same order, same values).
  EXPECT_EQ(read_lines(parallel_path), read_lines(serial_path));
  // And re-loading it reproduces the rows to serialisation precision.
  const auto cached = policy_sweep(sim::default_catalog(), sample,
                                   parallel_cfg, parallel_path);
  const auto fresh =
      policy_sweep(sim::default_catalog(), sample, parallel_cfg, "");
  ASSERT_EQ(cached.size(), fresh.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].policy, fresh[i].policy);
    EXPECT_NEAR(cached[i].hp_ipc, fresh[i].hp_ipc, 1e-5);
    EXPECT_NEAR(cached[i].efu, fresh[i].efu, 1e-5);
  }
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());
}

TEST(PolicySweep, ConcurrentSaversNeverCorruptTheCache) {
  // Two sweeps force-recomputing into the same cache path (two bench
  // processes sharing a cache dir) must not clobber each other's temp
  // file mid-write: each save streams into a unique temp name and the
  // last atomic rename wins with a complete file.
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/sweep_concurrent_save.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  auto cfg = small_config();
  cfg.jobs = 1;
  const auto expected =
      policy_sweep(sim::default_catalog(), sample, cfg, "");

  std::vector<std::thread> writers;
  for (int i = 0; i < 4; ++i) {
    writers.emplace_back([&] {
      policy_sweep(sim::default_catalog(), sample, cfg, path,
                   /*force_recompute=*/true);
    });
  }
  for (auto& t : writers) t.join();

  // Whatever interleaving happened, the installed cache is complete: a
  // plain (non-forced) sweep hits it and returns the full grid (to
  // serialisation precision — the hit path reads the CSV back).
  const auto cached = policy_sweep(sim::default_catalog(), sample, cfg, path);
  ASSERT_EQ(cached.size(), expected.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].policy, expected[i].policy);
    EXPECT_EQ(cached[i].cores, expected[i].cores);
    EXPECT_NEAR(cached[i].hp_ipc, expected[i].hp_ipc, 1e-5);
    EXPECT_NEAR(cached[i].efu, expected[i].efu, 1e-5);
  }
  // And no temp droppings were left next to it.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(path + ".tmp"), std::string::npos)
        << "stray temp file: " << entry.path();
  }
  std::remove(path.c_str());
}

TEST(ResolveSweepJobs, ExplicitRequestWins) {
  EXPECT_EQ(resolve_sweep_jobs(3), 3u);
  EXPECT_GE(resolve_sweep_jobs(0), 1u);
}

TEST(PolicySweep, CtFavouredFlagPropagated) {
  std::vector<BaselineEntry> sample = {sample_entry("milc1", "gcc_base3")};
  sample[0].ct_hp_ipc = 2.95;  // force CT-F classification
  const auto rows =
      policy_sweep(sim::default_catalog(), sample, small_config(), "");
  for (const auto& r : rows) EXPECT_TRUE(r.ct_favoured);
}

TEST(PolicySweep, KeyInvalidatedBySolverKnobs) {
  // Regression: the v5 key omitted fixed_point_rounds/fixed_point_damping,
  // so changing either solver knob silently served rows computed with the
  // old convergence behaviour.
  const std::string path = ::testing::TempDir() + "/sweep_key_solver.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  auto cfg = small_config();
  policy_sweep(sim::default_catalog(), sample, cfg, path);
  tamper_hp_names(path);

  // Control: unchanged config hits the (tampered) cache.
  const auto hit = policy_sweep(sim::default_catalog(), sample, cfg, path);
  ASSERT_FALSE(hit.empty());
  EXPECT_EQ(hit[0].hp, "tampered");

  auto more_rounds = cfg;
  more_rounds.base.machine.fixed_point_rounds =
      cfg.base.machine.fixed_point_rounds + 4;
  const auto miss1 =
      policy_sweep(sim::default_catalog(), sample, more_rounds, path);
  ASSERT_FALSE(miss1.empty());
  EXPECT_EQ(miss1[0].hp, "milc1")
      << "stale cache reused across fixed_point_rounds change";

  tamper_hp_names(path);
  auto stiffer = more_rounds;
  stiffer.base.machine.fixed_point_damping =
      cfg.base.machine.fixed_point_damping * 0.5;
  const auto miss2 =
      policy_sweep(sim::default_catalog(), sample, stiffer, path);
  ASSERT_FALSE(miss2.empty());
  EXPECT_EQ(miss2[0].hp, "milc1")
      << "stale cache reused across fixed_point_damping change";
  std::remove(path.c_str());
}

TEST(PolicySweep, CorruptBoolCellFallsBackToRecompute) {
  // Regression: the loader used to parse ctf with `cell == "1"`, so a
  // garbage cell ("2", "x") silently became false instead of rejecting
  // the cache.
  const std::string path = ::testing::TempDir() + "/sweep_corrupt_bool.csv";
  std::remove(path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3")};
  const auto cfg = small_config();
  const auto rows = policy_sweep(sim::default_catalog(), sample, cfg, path);

  for (const char* garbage : {"2", "x"}) {
    auto lines = read_lines(path);
    ASSERT_GT(lines.size(), 2u);
    // Replace the ctf cell (5th column) of the first data row.
    std::size_t pos = 0;
    for (int commas = 0; commas < 4; ++commas) {
      pos = lines[2].find(',', pos) + 1;
    }
    const std::size_t end = lines[2].find(',', pos);
    lines[2].replace(pos, end - pos, garbage);
    write_lines(path, lines);

    const auto again = policy_sweep(sim::default_catalog(), sample, cfg, path);
    expect_rows_identical(again, rows);
  }
  std::remove(path.c_str());
}

TEST(PolicySweep, CacheFileByteIdenticalAcrossSolverShortcuts) {
  // The solver shortcuts (steady-state replay + bit-stable early exit) are
  // byte-identical by construction, so they are excluded from the cache
  // key, and a sweep with them disabled must produce the exact same cache
  // file — any divergence means the replay path changed results.
  const std::string on_path =
      ::testing::TempDir() + "/sweep_shortcuts_on.csv";
  const std::string off_path =
      ::testing::TempDir() + "/sweep_shortcuts_off.csv";
  std::remove(on_path.c_str());
  std::remove(off_path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3"), sample_entry("namd1", "bzip22")};
  auto on_cfg = small_config();
  on_cfg.policies = {"UM", "CT", "DICER"};
  auto off_cfg = on_cfg;
  off_cfg.base.machine.solver_shortcuts = false;
  off_cfg.jobs = 4;  // and at a different worker count, for good measure
  policy_sweep(sim::default_catalog(), sample, on_cfg, on_path);
  policy_sweep(sim::default_catalog(), sample, off_cfg, off_path);
  const auto on_lines = read_lines(on_path);
  const auto off_lines = read_lines(off_path);
  ASSERT_GT(on_lines.size(), 2u);
  EXPECT_EQ(on_lines, off_lines);
  std::remove(on_path.c_str());
  std::remove(off_path.c_str());
}

TEST(PolicySweep, CacheFileByteIdenticalAcrossBatchStepping) {
  // Batched stepping (MachineBatch fused replay + cell chunking) is
  // byte-identical by construction, so batch_stepping and batch_cells are
  // excluded from the cache key and a sweep with batching fully disabled
  // must produce the exact same cache file — no dicer-sweep-v7 bump, and
  // any divergence means the fused path changed results.
  const std::string on_path = ::testing::TempDir() + "/sweep_batch_on.csv";
  const std::string off_path = ::testing::TempDir() + "/sweep_batch_off.csv";
  std::remove(on_path.c_str());
  std::remove(off_path.c_str());
  const std::vector<BaselineEntry> sample = {
      sample_entry("milc1", "gcc_base3"), sample_entry("namd1", "bzip22")};
  auto on_cfg = small_config();
  on_cfg.policies = {"UM", "CT", "DICER"};
  on_cfg.batch_cells = 4;
  auto off_cfg = on_cfg;
  off_cfg.base.machine.batch_stepping = false;
  off_cfg.batch_cells = 1;
  off_cfg.jobs = 4;  // and at a different worker count, for good measure
  policy_sweep(sim::default_catalog(), sample, on_cfg, on_path);
  policy_sweep(sim::default_catalog(), sample, off_cfg, off_path);
  const auto on_lines = read_lines(on_path);
  const auto off_lines = read_lines(off_path);
  ASSERT_GT(on_lines.size(), 2u);
  EXPECT_EQ(on_lines, off_lines);
  std::remove(on_path.c_str());
  std::remove(off_path.c_str());
}

TEST(ResolveSweepJobs, EnvEdgeCases) {
  // resolve_sweep_jobs delegates to the one shared implementation
  // (util::ThreadPool::resolve_jobs) — these pin the strict
  // $DICER_SWEEP_JOBS parse so the two callers can never drift apart
  // again.
  const unsigned hw = util::ThreadPool::hardware_workers();

  // "2" never trips the 4x-hardware clamp (cap >= 4 even on 1 thread).
  ASSERT_EQ(setenv("DICER_SWEEP_JOBS", "2", 1), 0);
  EXPECT_EQ(resolve_sweep_jobs(0), 2u);
  EXPECT_EQ(resolve_sweep_jobs(3), 3u);  // explicit request beats the env

  // Not a worker count: fall back to hardware concurrency, never 0.
  ASSERT_EQ(setenv("DICER_SWEEP_JOBS", "0", 1), 0);
  EXPECT_EQ(resolve_sweep_jobs(0), hw);

  // Partial parses must not silently truncate ("4x" is not 4).
  ASSERT_EQ(setenv("DICER_SWEEP_JOBS", "4x", 1), 0);
  EXPECT_EQ(resolve_sweep_jobs(0), hw);

  // Negative values must not wrap to a huge unsigned.
  ASSERT_EQ(setenv("DICER_SWEEP_JOBS", "-1", 1), 0);
  EXPECT_EQ(resolve_sweep_jobs(0), hw);

  ASSERT_EQ(setenv("DICER_SWEEP_JOBS", "", 1), 0);
  EXPECT_EQ(resolve_sweep_jobs(0), hw);

  // Oversubscription by orders of magnitude clamps to 4x hardware.
  ASSERT_EQ(setenv("DICER_SWEEP_JOBS", "999999", 1), 0);
  EXPECT_EQ(resolve_sweep_jobs(0), 4u * hw);

  unsetenv("DICER_SWEEP_JOBS");
  EXPECT_EQ(resolve_sweep_jobs(0), hw);
}

}  // namespace
}  // namespace dicer::harness
