#include "sim/core/trace_apps.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace dicer::sim {
namespace {

constexpr double MB = 1024.0 * 1024.0;

/// Fast profiling config for tests: small 20-way geometry, short windows.
MrcProfilerConfig test_config() {
  MrcProfilerConfig config;
  config.geometry = {.size_bytes = static_cast<std::uint64_t>(5 * MB / 2),
                     .ways = 20,
                     .line_bytes = 64};
  config.warmup_accesses = 30'000;
  config.measure_accesses = 60'000;
  config.mode = MrcProfilerMode::kSampled;
  config.sampling = {.mode = ShardsMode::kFixedRate, .rate = 0.25};
  return config;
}

TEST(FitMrc, ExactOnConvexTable) {
  // A perfectly linear (hence convex) table: one uniform-reuse component.
  const EmpiricalMrc table({{1 * MB, 0.75},
                            {2 * MB, 0.50},
                            {3 * MB, 0.25},
                            {4 * MB, 0.00}});
  const auto fit = fit_mrc(table);
  EXPECT_NEAR(fit.ceiling(), 1.0, 1e-9);
  EXPECT_NEAR(fit.floor(), 0.0, 1e-9);
  for (const auto& [bytes, miss] : table.points()) {
    EXPECT_NEAR(fit.at(bytes), miss, 1e-9);
  }
  EXPECT_NEAR(fit.at(1.5 * MB), 0.625, 1e-9);
}

TEST(FitMrc, ConvexTwoSlopeTableReproduced) {
  // Steep early segment, shallow tail — convex, so the fit is exact at
  // every breakpoint.
  const EmpiricalMrc table({{1 * MB, 0.40},
                            {2 * MB, 0.20},
                            {3 * MB, 0.15},
                            {4 * MB, 0.10}});
  const auto fit = fit_mrc(table);
  for (const auto& [bytes, miss] : table.points()) {
    EXPECT_NEAR(fit.at(bytes), miss, 1e-9);
  }
  EXPECT_NEAR(fit.floor(), 0.10, 1e-9);
}

TEST(FitMrc, FlatTableIsPureStreaming) {
  const EmpiricalMrc table({{1 * MB, 0.9}, {2 * MB, 0.9}, {3 * MB, 0.9}});
  const auto fit = fit_mrc(table);
  EXPECT_NEAR(fit.floor(), 0.9, 1e-12);
  EXPECT_NEAR(fit.ceiling(), 0.9, 1e-12);
  EXPECT_NEAR(fit.stream_fraction(), 1.0, 1e-12);
  EXPECT_TRUE(fit.components().empty());
}

TEST(FitMrc, BumpyTableYieldsValidMonotoneCurve) {
  // Upward bumps (profiling noise) must not break the curve invariants.
  const EmpiricalMrc table({{1 * MB, 0.50},
                            {2 * MB, 0.55},
                            {3 * MB, 0.20},
                            {4 * MB, 0.25}});
  const auto fit = fit_mrc(table);
  EXPECT_LE(fit.ceiling(), 1.0 + 1e-12);
  EXPECT_NEAR(fit.floor(), 0.25, 1e-12);
  double prev = fit.at(0.0);
  for (double b = 0.0; b <= 5 * MB; b += MB / 4) {
    const double m = fit.at(b);
    EXPECT_LE(m, prev + 1e-12);
    prev = m;
  }
}

TEST(FitMrc, SinglePointTable) {
  const auto fit = fit_mrc(EmpiricalMrc({{2 * MB, 0.3}}));
  EXPECT_NEAR(fit.floor(), 0.3, 1e-12);
  EXPECT_NEAR(fit.at(0.0), 0.3, 1e-12);
}

TEST(FitMrc, EmptyTableThrows) {
  EXPECT_THROW(fit_mrc(EmpiricalMrc{}), std::invalid_argument);
}

TEST(TraceApps, DefaultSpecsCoverEveryPattern) {
  const auto specs = default_trace_apps();
  ASSERT_EQ(specs.size(), 4u);
  bool seen[4] = {};
  for (const auto& s : specs) seen[static_cast<int>(s.pattern)] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(TraceApps, ProfiledAppShapesMatchTheirStreams) {
  const auto specs = default_trace_apps();
  const auto config = test_config();
  for (const auto& spec : specs) {
    SCOPED_TRACE(spec.name);
    const AppProfile app = profile_trace_app(spec, config);
    ASSERT_EQ(app.phases.size(), 1u);
    EXPECT_EQ(app.suite, "TRACE");
    const auto& mrc = app.phases[0].mrc;
    EXPECT_GE(mrc.floor(), 0.0);
    EXPECT_LE(mrc.ceiling(), 1.0 + 1e-9);
    if (spec.pattern == TracePattern::kStreaming) {
      // No reuse: flat and high everywhere.
      EXPECT_GT(mrc.floor(), 0.9);
      EXPECT_GT(mrc.stream_fraction(), 0.9);
    }
    if (spec.pattern == TracePattern::kMixed) {
      // The reuse component must buy a real miss-ratio drop across the
      // profiled range.
      EXPECT_LT(mrc.at(static_cast<double>(config.geometry.size_bytes)),
                mrc.ceiling() - 0.1);
    }
  }
}

TEST(TraceApps, DefaultProfileConfigIsUsable) {
  // The default geometry must satisfy the profiler's power-of-two set
  // constraint (the paper's literal 25 MB / 20-way / 64 B would not:
  // 20480 sets). Regression test for the catalog's out-of-the-box path.
  const auto config = default_trace_profile_config();
  EXPECT_EQ(config.geometry.ways, 20u);
  const auto app = profile_trace_app(default_trace_apps()[0], config);
  ASSERT_EQ(app.phases.size(), 1u);
  EXPECT_LE(app.phases[0].mrc.ceiling(), 1.0 + 1e-9);
}

TEST(TraceApps, AugmentedCatalogContainsBaseAndTraceApps) {
  const auto catalog =
      trace_augmented_catalog("", default_trace_apps(), test_config());
  EXPECT_EQ(catalog.size(), 59u + 4u);
  EXPECT_TRUE(catalog.contains("mcf1"));  // base catalog still intact
  for (const auto& spec : default_trace_apps()) {
    ASSERT_TRUE(catalog.contains(spec.name));
    EXPECT_EQ(catalog.by_name(spec.name).app_class, spec.app_class);
  }
}

TEST(TraceApps, ProfileCacheRoundTripsByteIdentical) {
  const std::string path =
      ::testing::TempDir() + "/trace_profile_roundtrip.csv";
  std::remove(path.c_str());
  const auto specs = default_trace_apps();
  const auto config = test_config();
  const auto first = trace_augmented_catalog(path, specs, config);
  ASSERT_TRUE(std::ifstream(path).good());
  const auto second = trace_augmented_catalog(path, specs, config);
  for (const auto& spec : specs) {
    const auto& a = first.by_name(spec.name).phases[0].mrc;
    const auto& b = second.by_name(spec.name).phases[0].mrc;
    EXPECT_EQ(a.floor(), b.floor());
    ASSERT_EQ(a.components().size(), b.components().size());
    for (std::size_t i = 0; i < a.components().size(); ++i) {
      EXPECT_EQ(a.components()[i].weight, b.components()[i].weight);
      EXPECT_EQ(a.components()[i].ws_bytes, b.components()[i].ws_bytes);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceApps, CorruptProfileCacheIsRecomputedNotFatal) {
  const std::string path = ::testing::TempDir() + "/trace_profile_corrupt.csv";
  const auto specs = default_trace_apps();
  const auto config = test_config();
  const auto clean = trace_augmented_catalog(path, specs, config);
  {
    // Clobber a numeric cell while keeping the key line intact.
    std::ifstream in(path);
    std::string key_line, header;
    std::getline(in, key_line);
    std::getline(in, header);
    in.close();
    std::ofstream out(path, std::ios::trunc);
    out << key_line << "\n" << header << "\n";
    out << "trace_stream1,not_a_number,0.5\n";
  }
  const auto recovered = trace_augmented_catalog(path, specs, config);
  for (const auto& spec : specs) {
    EXPECT_EQ(clean.by_name(spec.name).phases[0].mrc.floor(),
              recovered.by_name(spec.name).phases[0].mrc.floor());
  }
  std::remove(path.c_str());
}

TEST(TraceApps, StaleKeyTriggersReprofile) {
  const std::string path = ::testing::TempDir() + "/trace_profile_stale.csv";
  std::remove(path.c_str());
  const auto specs = default_trace_apps();
  auto config = test_config();
  trace_augmented_catalog(path, specs, config);
  std::string old_key;
  {
    std::ifstream in(path);
    std::getline(in, old_key);
  }
  config.sampling.seed ^= 1;  // result-shaping knob -> new key
  trace_augmented_catalog(path, specs, config);
  std::string new_key;
  {
    std::ifstream in(path);
    std::getline(in, new_key);
  }
  EXPECT_NE(old_key, new_key);
  std::remove(path.c_str());
}

TEST(TraceApps, CatalogAddRejectsDuplicatesAndEmpties) {
  AppCatalog catalog;
  AppProfile p;
  EXPECT_THROW(catalog.add(p), std::invalid_argument);  // empty
  p = catalog.at(0);
  EXPECT_THROW(catalog.add(p), std::invalid_argument);  // duplicate name
  p.name = "trace_unique_name";
  catalog.add(p);
  EXPECT_EQ(catalog.size(), 60u);
  EXPECT_TRUE(catalog.contains("trace_unique_name"));
}

}  // namespace
}  // namespace dicer::sim
