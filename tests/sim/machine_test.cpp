#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "sim/core/catalog.hpp"

namespace dicer::sim {
namespace {

const AppProfile& app(const char* name) {
  return default_catalog().by_name(name);
}

TEST(Machine, ValidatesConfig) {
  MachineConfig c;
  c.num_cores = 0;
  EXPECT_THROW(Machine{c}, std::invalid_argument);
  c = MachineConfig{};
  c.quantum_sec = 0.0;
  EXPECT_THROW(Machine{c}, std::invalid_argument);
  c = MachineConfig{};
  c.freq_hz = -1.0;
  EXPECT_THROW(Machine{c}, std::invalid_argument);
  c = MachineConfig{};
  c.llc.ways = 0;
  EXPECT_THROW(Machine{c}, std::invalid_argument);
}

TEST(Machine, AttachDetachLifecycle) {
  Machine m{MachineConfig{}};
  EXPECT_FALSE(m.occupied(0));
  m.attach(0, &app("namd1"));
  EXPECT_TRUE(m.occupied(0));
  EXPECT_THROW(m.attach(0, &app("namd1")), std::logic_error);
  m.detach(0);
  EXPECT_FALSE(m.occupied(0));
  m.detach(0);  // idempotent
  EXPECT_THROW(m.attach(10, &app("namd1")), std::out_of_range);
}

TEST(Machine, DetachResetsActuatorState) {
  // Regression: detach used to leave the departing tenant's fill mask and
  // MBA throttle in place, so the next attach on the core silently
  // inherited the previous tenant's partition.
  Machine m{MachineConfig{}};
  m.attach(3, &app("omnetpp1"));
  m.set_fill_mask(3, WayMask::low(2));
  m.set_mem_throttle(3, 0.25);
  m.detach(3);
  EXPECT_EQ(m.fill_mask(3), WayMask::full(m.num_ways()));
  EXPECT_DOUBLE_EQ(m.mem_throttle(3), 1.0);

  // A new tenant on the reclaimed core runs unthrottled on the full LLC:
  // byte-identical to attaching it to a never-used machine.
  auto run = [](Machine& machine) {
    machine.attach(3, &app("milc1"));
    machine.run_for(1.0);
    return machine.telemetry(3).last_quantum_ipc;
  };
  Machine fresh{MachineConfig{}};
  EXPECT_EQ(run(m), run(fresh));
}

TEST(Machine, RuntimeAccess) {
  Machine m{MachineConfig{}};
  EXPECT_THROW(m.runtime(0), std::logic_error);
  m.attach(0, &app("namd1"));
  EXPECT_EQ(m.runtime(0).profile().name, "namd1");
}

TEST(Machine, FillMaskValidation) {
  Machine m{MachineConfig{}};
  EXPECT_THROW(m.set_fill_mask(0, WayMask()), std::invalid_argument);
  EXPECT_THROW(m.set_fill_mask(0, WayMask::span(15, 10)),
               std::invalid_argument);
  m.set_fill_mask(0, WayMask::low(5));
  EXPECT_EQ(m.fill_mask(0), WayMask::low(5));
}

TEST(Machine, MemThrottleValidation) {
  Machine m{MachineConfig{}};
  EXPECT_THROW(m.set_mem_throttle(0, 0.0), std::invalid_argument);
  EXPECT_THROW(m.set_mem_throttle(0, 1.5), std::invalid_argument);
  m.set_mem_throttle(0, 0.4);
  EXPECT_DOUBLE_EQ(m.mem_throttle(0), 0.4);
}

TEST(Machine, TimeAdvancesPerQuantum) {
  Machine m{MachineConfig{}};
  m.step();
  EXPECT_DOUBLE_EQ(m.time_sec(), m.config().quantum_sec);
  m.run_for(1.0);
  EXPECT_NEAR(m.time_sec(), 1.0 + m.config().quantum_sec, 1e-9);
}

TEST(Machine, IdleMachineAccumulatesNothing) {
  Machine m{MachineConfig{}};
  m.run_for(1.0);
  EXPECT_DOUBLE_EQ(m.telemetry(0).instructions, 0.0);
  EXPECT_DOUBLE_EQ(m.last_link_traffic(), 0.0);
}

TEST(Machine, TelemetryAccumulates) {
  Machine m{MachineConfig{}};
  m.attach(0, &app("gcc_base3"));
  m.run_for(1.0);
  const auto& t = m.telemetry(0);
  EXPECT_GT(t.instructions, 0.0);
  EXPECT_NEAR(t.active_cycles, m.config().freq_hz * 1.0, 1.0);
  EXPECT_GT(t.mem_bytes, 0.0);
  EXPECT_GT(t.occupancy_bytes, 0.0);
  EXPECT_GT(t.last_quantum_ipc, 0.0);
}

TEST(Machine, SoloIpcIsSane) {
  Machine m{MachineConfig{}};
  m.attach(0, &app("povray1"));
  m.run_for(2.0);
  const auto& t = m.telemetry(0);
  const double ipc = t.instructions / t.active_cycles;
  EXPECT_GT(ipc, 1.0);  // povray is compute bound
  EXPECT_LT(ipc, 2.5);
}

TEST(Machine, CompletionsCountWholeRuns) {
  Machine m{MachineConfig{}};
  m.attach(0, &app("milc1"));
  while (m.telemetry(0).completions == 0 && m.time_sec() < 200.0) m.step();
  EXPECT_GE(m.telemetry(0).completions, 1u);
  EXPECT_LT(m.time_sec(), 200.0) << "milc1 never completed";
}

TEST(Machine, AchievedTrafficNeverExceedsLinkCapacity) {
  Machine m{MachineConfig{}};
  for (unsigned c = 0; c < 10; ++c) m.attach(c, &app("lbm1"));
  m.run_for(3.0);  // past lbm's init phase, into the streaming solver
  EXPECT_LE(m.last_link_traffic(),
            m.config().link.capacity_bytes_per_sec * 1.001);
  EXPECT_GT(m.last_link_utilisation(), 1.0);  // 10x lbm oversubscribes
}

TEST(Machine, ContentionSlowsEveryoneDown) {
  MachineConfig cfg;
  Machine solo{cfg};
  solo.attach(0, &app("omnetpp1"));
  solo.run_for(2.0);
  const double ipc_solo =
      solo.telemetry(0).instructions / solo.telemetry(0).active_cycles;

  Machine crowded{cfg};
  crowded.attach(0, &app("omnetpp1"));
  for (unsigned c = 1; c < 10; ++c) crowded.attach(c, &app("gcc_base3"));
  crowded.run_for(2.0);
  const double ipc_crowded =
      crowded.telemetry(0).instructions / crowded.telemetry(0).active_cycles;

  EXPECT_LT(ipc_crowded, ipc_solo);
}

TEST(Machine, PartitionProtectsCacheSensitiveApp) {
  // Isolating omnetpp behind a 19-way partition must beat being squeezed
  // in the unmanaged melee with nine gcc instances.
  MachineConfig cfg;
  auto run = [&](bool partitioned) {
    Machine m{cfg};
    m.attach(0, &app("omnetpp1"));
    for (unsigned c = 1; c < 10; ++c) m.attach(c, &app("gcc_base3"));
    if (partitioned) {
      m.set_fill_mask(0, WayMask::high(19, 20));
      for (unsigned c = 1; c < 10; ++c) m.set_fill_mask(c, WayMask::low(1));
    }
    m.run_for(3.0);
    return m.telemetry(0).instructions / m.telemetry(0).active_cycles;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(Machine, SqueezedNeighboursRaiseLinkUtilisation) {
  // CT's side effect (paper 2.3.2): containing BEs in one way multiplies
  // their miss traffic.
  MachineConfig cfg;
  auto rho = [&](bool squeezed) {
    Machine m{cfg};
    for (unsigned c = 0; c < 10; ++c) m.attach(c, &app("gcc_base3"));
    if (squeezed) {
      m.set_fill_mask(0, WayMask::high(19, 20));
      for (unsigned c = 1; c < 10; ++c) m.set_fill_mask(c, WayMask::low(1));
    }
    m.run_for(2.0);
    return m.last_link_utilisation();
  };
  EXPECT_GT(rho(true), rho(false));
}

TEST(Machine, MemThrottleSlowsMemoryBoundApp) {
  MachineConfig cfg;
  auto ipc_with_throttle = [&](double t) {
    Machine m{cfg};
    m.attach(0, &app("lbm1"));
    m.set_mem_throttle(0, t);
    m.run_for(2.0);
    return m.telemetry(0).instructions / m.telemetry(0).active_cycles;
  };
  EXPECT_LT(ipc_with_throttle(0.2), 0.8 * ipc_with_throttle(1.0));
}

TEST(Machine, MaskChangeTakesEffect) {
  // Shrinking a cache-hungry app's partition lowers its quantum IPC.
  Machine m{MachineConfig{}};
  m.attach(0, &app("omnetpp1"));
  m.set_fill_mask(0, WayMask::full(20));
  m.run_for(1.0);
  const double ipc_big = m.telemetry(0).last_quantum_ipc;
  m.set_fill_mask(0, WayMask::low(1));
  m.run_for(1.0);
  const double ipc_small = m.telemetry(0).last_quantum_ipc;
  EXPECT_LT(ipc_small, ipc_big);
}

TEST(Machine, DeterministicAcrossRuns) {
  auto run = []() {
    Machine m{MachineConfig{}};
    m.attach(0, &app("milc1"));
    m.attach(1, &app("gcc_base3"));
    m.run_for(1.0);
    return m.telemetry(0).instructions;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

class MachineCoreCount : public ::testing::TestWithParam<unsigned> {};

TEST_P(MachineCoreCount, MoreNeighboursNeverHelp) {
  const unsigned n = GetParam();
  MachineConfig cfg;
  Machine m{cfg};
  m.attach(0, &app("soplex1"));
  for (unsigned c = 1; c < n; ++c) m.attach(c, &app("bzip22"));
  m.run_for(2.0);
  const double ipc = m.telemetry(0).instructions / m.telemetry(0).active_cycles;

  Machine more{cfg};
  more.attach(0, &app("soplex1"));
  for (unsigned c = 1; c < n + 1; ++c) more.attach(c, &app("bzip22"));
  more.run_for(2.0);
  const double ipc_more =
      more.telemetry(0).instructions / more.telemetry(0).active_cycles;

  EXPECT_LE(ipc_more, ipc * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Cores, MachineCoreCount,
                         ::testing::Values(2u, 4u, 6u, 9u));

TEST(Machine, SolverStatsAccountForEveryQuantum) {
  Machine m{MachineConfig{}};
  m.attach(0, &app("milc1"));
  m.attach(1, &app("gcc_base3"));
  m.run_for(5.0);
  const auto& s = m.solver_stats();
  EXPECT_EQ(s.quanta, 500u);
  EXPECT_EQ(s.replays + s.solves, s.quanta);
  EXPECT_EQ(s.stable_solves + s.unstable_solves, s.solves);
  EXPECT_GT(s.replays, 0u) << "a 5 s settle must reach steady-state replay";
  std::uint64_t hist_sum = 0;
  for (auto h : s.rounds_hist) hist_sum += h;
  EXPECT_EQ(hist_sum, s.solves);
  EXPECT_GE(s.total_rounds(), s.solves);

  // Actuator changes must drop an armed replay cache (and count as such).
  const auto inv_before = s.invalidations_actuator;
  m.set_fill_mask(0, WayMask::low(10));
  m.run_for(1.0);
  EXPECT_GT(m.solver_stats().invalidations_actuator, inv_before);
}

TEST(Machine, SolverStatsMergeAccumulates) {
  SolverStats a, b;
  a.quanta = 10;
  a.rounds_hist = {4, 3};
  b.quanta = 5;
  b.rounds_hist = {1, 1, 1};
  a.merge(b);
  EXPECT_EQ(a.quanta, 15u);
  ASSERT_EQ(a.rounds_hist.size(), 3u);
  EXPECT_EQ(a.rounds_hist[0], 5u);
  EXPECT_EQ(a.rounds_hist[1], 4u);
  EXPECT_EQ(a.rounds_hist[2], 1u);
  EXPECT_EQ(a.total_rounds(), 5u * 1 + 4u * 2 + 1u * 3);
}

}  // namespace
}  // namespace dicer::sim
