#include "sim/mem/memory_link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dicer::sim {
namespace {

TEST(MemoryLink, DefaultsMatchPaperTable1) {
  MemoryLink link;
  EXPECT_NEAR(link.config().capacity_bytes_per_sec * 8.0 / 1e9, 68.3, 1e-9);
}

TEST(MemoryLink, ValidationRejectsBadConfig) {
  MemoryLinkConfig c;
  c.capacity_bytes_per_sec = 0.0;
  EXPECT_THROW(MemoryLink{c}, std::invalid_argument);
  c = MemoryLinkConfig{};
  c.base_latency_cycles = -1.0;
  EXPECT_THROW(MemoryLink{c}, std::invalid_argument);
  c = MemoryLinkConfig{};
  c.congestion_exponent = 0.0;
  EXPECT_THROW(MemoryLink{c}, std::invalid_argument);
  c = MemoryLinkConfig{};
  c.congestion_linear = -0.1;
  EXPECT_THROW(MemoryLink{c}, std::invalid_argument);
}

TEST(MemoryLink, LatencyAtZeroIsBase) {
  MemoryLink link;
  EXPECT_DOUBLE_EQ(link.latency_at(0.0), link.config().base_latency_cycles);
}

TEST(MemoryLink, LatencyMonotoneInUtilisation) {
  MemoryLink link;
  double prev = 0.0;
  for (double rho = 0.0; rho <= 2.0; rho += 0.05) {
    const double lat = link.latency_at(rho);
    EXPECT_GE(lat, prev);
    prev = lat;
  }
}

TEST(MemoryLink, KneeIsSharpNearSaturation) {
  // The rise from 70% to 100% utilisation dwarfs the rise from 0% to 70% —
  // that's what makes the paper's 50 Gbps threshold a sensible trip point.
  MemoryLink link;
  const double low_rise = link.latency_at(0.7) - link.latency_at(0.0);
  const double high_rise = link.latency_at(1.0) - link.latency_at(0.7);
  EXPECT_GT(high_rise, low_rise);
}

TEST(MemoryLink, OversubscriptionStretchesLinearly) {
  MemoryLink link;
  const double at1 = link.latency_at(1.0);
  EXPECT_NEAR(link.latency_at(2.0), 2.0 * at1, 1e-9);
  EXPECT_NEAR(link.latency_at(3.0), 3.0 * at1, 1e-9);
}

TEST(MemoryLink, ArbitrationUnderCapacity) {
  MemoryLink link;
  const std::vector<double> demand = {1e9, 2e9};
  const auto arb = link.arbitrate(demand);
  EXPECT_DOUBLE_EQ(arb.throttle, 1.0);
  EXPECT_DOUBLE_EQ(arb.achieved_bytes_per_sec[0], 1e9);
  EXPECT_DOUBLE_EQ(arb.achieved_bytes_per_sec[1], 2e9);
  EXPECT_NEAR(arb.raw_utilisation, 3e9 / link.config().capacity_bytes_per_sec,
              1e-12);
}

TEST(MemoryLink, ArbitrationOverCapacityThrottlesProportionally) {
  MemoryLinkConfig c;
  c.capacity_bytes_per_sec = 10e9;
  MemoryLink link(c);
  const std::vector<double> demand = {15e9, 5e9};
  const auto arb = link.arbitrate(demand);
  EXPECT_DOUBLE_EQ(arb.raw_utilisation, 2.0);
  EXPECT_DOUBLE_EQ(arb.throttle, 0.5);
  EXPECT_DOUBLE_EQ(arb.achieved_bytes_per_sec[0], 7.5e9);
  EXPECT_DOUBLE_EQ(arb.achieved_bytes_per_sec[1], 2.5e9);
  // Achieved traffic never exceeds capacity.
  EXPECT_NEAR(arb.achieved_bytes_per_sec[0] + arb.achieved_bytes_per_sec[1],
              10e9, 1.0);
}

TEST(MemoryLink, ArbitrationEmptyDemand) {
  MemoryLink link;
  const auto arb = link.arbitrate(std::vector<double>{});
  EXPECT_DOUBLE_EQ(arb.utilisation, 0.0);
  EXPECT_TRUE(arb.achieved_bytes_per_sec.empty());
  EXPECT_DOUBLE_EQ(arb.total_achieved_bytes_per_sec, 0.0);
}

TEST(MemoryLink, TotalAchievedMatchesOrderedSum) {
  // The machine's telemetry uses the pre-accumulated total; it must equal
  // the per-requester vector summed in requester order, bit for bit.
  MemoryLinkConfig c;
  c.capacity_bytes_per_sec = 10e9;
  MemoryLink link(c);
  const std::vector<double> demand = {7.3e9, 1.1e9, 5.77e9, 0.0, 2.9e9};
  const auto arb = link.arbitrate(demand);
  double sum = 0.0;
  for (double a : arb.achieved_bytes_per_sec) sum += a;
  EXPECT_EQ(arb.total_achieved_bytes_per_sec, sum);
}

TEST(MemoryLink, NegativeDemandThrows) {
  MemoryLink link;
  EXPECT_THROW(link.arbitrate(std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(MemoryLink, UtilisationClampedAtOne) {
  MemoryLinkConfig c;
  c.capacity_bytes_per_sec = 1e9;
  MemoryLink link(c);
  const auto arb = link.arbitrate(std::vector<double>{5e9});
  EXPECT_DOUBLE_EQ(arb.utilisation, 1.0);
  EXPECT_DOUBLE_EQ(arb.raw_utilisation, 5.0);
}

class LinkConservation : public ::testing::TestWithParam<double> {};

TEST_P(LinkConservation, AchievedNeverExceedsCapacity) {
  MemoryLinkConfig c;
  c.capacity_bytes_per_sec = 8.5e9;
  MemoryLink link(c);
  const double scale = GetParam();
  const std::vector<double> demand = {1e9 * scale, 2e9 * scale, 0.0,
                                      0.5e9 * scale};
  const auto arb = link.arbitrate(demand);
  double achieved = 0.0;
  for (double a : arb.achieved_bytes_per_sec) achieved += a;
  EXPECT_LE(achieved, c.capacity_bytes_per_sec * 1.0001);
  for (std::size_t i = 0; i < demand.size(); ++i) {
    EXPECT_LE(arb.achieved_bytes_per_sec[i], demand[i] + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(DemandScales, LinkConservation,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 20.0));

}  // namespace
}  // namespace dicer::sim
