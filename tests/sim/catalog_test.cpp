#include "sim/core/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

#include "harness/solo.hpp"

namespace dicer::sim {
namespace {

TEST(AppCatalog, HasThePapersFiftyNineWorkloads) {
  EXPECT_EQ(default_catalog().size(), 59u);
}

TEST(AppCatalog, SuiteSplitMatchesPaper) {
  // 50 SPEC CPU 2006 workloads (25 apps, 8 with multiple inputs) + 9 PARSEC.
  std::size_t spec = 0, parsec = 0;
  for (const auto& p : default_catalog().profiles()) {
    if (p.suite == "SPEC CPU 2006") ++spec;
    else if (p.suite == "PARSEC 3.0") ++parsec;
  }
  EXPECT_EQ(spec, 50u);
  EXPECT_EQ(parsec, 9u);
}

TEST(AppCatalog, NamesUnique) {
  std::set<std::string> names;
  for (const auto& p : default_catalog().profiles()) {
    EXPECT_TRUE(names.insert(p.name).second) << p.name;
  }
}

TEST(AppCatalog, PaperFigureWorkloadsPresent) {
  const auto& c = default_catalog();
  // Names that appear in the paper's figures.
  for (const char* name :
       {"milc1", "gcc_base3", "gcc_base9", "mcf1", "lbm1", "libquantum1",
        "GemsFDTD1", "omnetpp1", "Xalan1", "leslie3d1", "bwaves1", "soplex2",
        "astar1", "namd1", "povray1", "gobmk4", "bzip26", "h264ref3",
        "hmmer2", "perlbench2", "canneal1", "dedup1", "streamcluster1",
        "blackscholes1", "swaptions1", "bodytrack1", "fluidanimate1",
        "sphinx1", "zeusmp1", "tonto1", "calculix1", "sjeng1", "gromacs1"}) {
    EXPECT_TRUE(c.contains(name)) << name;
  }
}

TEST(AppCatalog, LookupByNameThrowsOnUnknown) {
  EXPECT_THROW(default_catalog().by_name("doom3"), std::out_of_range);
}

TEST(AppCatalog, AllBehaviourClassesRepresented) {
  const auto& c = default_catalog();
  EXPECT_GE(c.of_class(AppClass::kStreaming).size(), 5u);
  EXPECT_GE(c.of_class(AppClass::kCacheHungry).size(), 5u);
  EXPECT_GE(c.of_class(AppClass::kCacheFriendly).size(), 10u);
  EXPECT_GE(c.of_class(AppClass::kComputeBound).size(), 10u);
}

TEST(AppCatalog, DeterministicForSameSeed) {
  AppCatalog a(7), b(7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).name, b.at(i).name);
    EXPECT_DOUBLE_EQ(a.at(i).total_instructions(),
                     b.at(i).total_instructions());
    EXPECT_DOUBLE_EQ(a.at(i).mean_api(), b.at(i).mean_api());
  }
}

TEST(AppCatalog, SeedVariesMultiInputFamilies) {
  AppCatalog a(7), b(8);
  // Jittered families differ across seeds.
  EXPECT_NE(a.by_name("gcc_base3").mean_api(), b.by_name("gcc_base3").mean_api());
}

TEST(AppCatalog, MultiInputFamiliesDiffer) {
  const auto& c = default_catalog();
  EXPECT_NE(c.by_name("gcc_base1").mean_api(), c.by_name("gcc_base9").mean_api());
  EXPECT_NE(c.by_name("bzip21").total_instructions(),
            c.by_name("bzip26").total_instructions());
}

class CatalogEntryCheck : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CatalogEntryCheck, ParametersWellFormed) {
  const auto& app = default_catalog().at(GetParam());
  EXPECT_FALSE(app.phases.empty());
  for (const auto& ph : app.phases) {
    EXPECT_GT(ph.instructions, 0.0) << app.name;
    EXPECT_GT(ph.cpi_core, 0.0) << app.name;
    EXPECT_GE(ph.api, 0.0) << app.name;
    EXPECT_LE(ph.api, 0.1) << app.name;
    EXPECT_GE(ph.wb_ratio, 0.0) << app.name;
    EXPECT_LE(ph.wb_ratio, 1.0) << app.name;
    EXPECT_GE(ph.mlp, 1.0) << app.name;
    EXPECT_LE(ph.mrc.ceiling(), 1.0) << app.name;
    EXPECT_GE(ph.mrc.floor(), 0.0) << app.name;
  }
}

TEST_P(CatalogEntryCheck, SoloIpcInPlausibleRange) {
  const auto& app = default_catalog().at(GetParam());
  const sim::MachineConfig mc;
  const auto solo = harness::solo_steady_state(app, mc.llc.ways, mc);
  EXPECT_GT(solo.ipc, 0.1) << app.name;
  EXPECT_LT(solo.ipc, 3.0) << app.name;
  // Solo runtimes land in a window the consolidation harness can handle.
  EXPECT_GT(solo.time_sec, 4.0) << app.name;
  EXPECT_LT(solo.time_sec, 120.0) << app.name;
}

TEST_P(CatalogEntryCheck, StreamingClassHasStreamingTraffic) {
  const auto& app = default_catalog().at(GetParam());
  if (app.app_class != AppClass::kStreaming) return;
  const sim::MachineConfig mc;
  const auto solo = harness::solo_steady_state(app, mc.llc.ways, mc);
  // A streaming app alone should consume at least ~1 GB/s of the link.
  EXPECT_GT(solo.mem_bw_bytes_per_sec, 1e9) << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, CatalogEntryCheck,
                         ::testing::Range<std::size_t>(0, 59));

}  // namespace
}  // namespace dicer::sim
