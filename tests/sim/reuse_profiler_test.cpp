#include "sim/cache/reuse_profiler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "sim/cache/address_stream.hpp"
#include "sim/cache/mrc_profiler.hpp"
#include "util/rng.hpp"

namespace dicer::sim {
namespace {

constexpr std::uint64_t MB = 1024 * 1024;

// 20-way geometry with 2048 sets: small enough for fast tests, deep
// enough to exercise every way count of the paper's LLC associativity.
CacheGeometry small20() {
  return {.size_bytes = 5 * MB / 2, .ways = 20, .line_bytes = 64};
}

using StreamFactory = std::function<std::unique_ptr<AddressStream>()>;

std::vector<std::pair<const char*, StreamFactory>> stream_families() {
  return {
      {"working_set",
       [] {
         return std::make_unique<WorkingSetStream>(MB, 0,
                                                   util::Xoshiro256(11));
       }},
      {"streaming",
       [] { return std::make_unique<StreamingStream>(64 * MB, 64, 0); }},
      {"bimodal",
       [] {
         return std::make_unique<BimodalStream>(MB / 2, 4 * MB, 0.8, 0,
                                                util::Xoshiro256(12));
       }},
      {"mixed",
       [] {
         return std::make_unique<MixedStream>(MB, 0.7, 0,
                                              util::Xoshiro256(13));
       }},
  };
}

MrcProfilerConfig base_config(MrcProfilerMode mode) {
  MrcProfilerConfig config;
  config.geometry = small20();
  config.warmup_accesses = 50'000;
  config.measure_accesses = 100'000;
  config.mode = mode;
  return config;
}

TEST(ReuseProfiler, SinglePassMatchesExactReplayBitForBit) {
  for (const auto& [name, make_stream] : stream_families()) {
    SCOPED_TRACE(name);
    auto exact_cfg = base_config(MrcProfilerMode::kExactReplay);
    const auto exact = profile_mrc(exact_cfg, make_stream);
    const auto fast =
        profile_mrc(base_config(MrcProfilerMode::kSinglePass), make_stream);
    ASSERT_EQ(exact.size(), fast.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(exact.points()[i].first, fast.points()[i].first);
      // Byte-identical, not merely close: per-set LRU stack distances
      // reproduce the replay oracle's integer miss counts exactly.
      EXPECT_EQ(exact.points()[i].second, fast.points()[i].second);
    }
  }
}

TEST(ReuseProfiler, ExactReplayByteIdenticalAtAnyWorkerCount) {
  for (const auto& [name, make_stream] : stream_families()) {
    SCOPED_TRACE(name);
    auto serial_cfg = base_config(MrcProfilerMode::kExactReplay);
    serial_cfg.jobs = 1;
    auto parallel_cfg = serial_cfg;
    parallel_cfg.jobs = 4;
    const auto serial = profile_mrc(serial_cfg, make_stream);
    const auto parallel = profile_mrc(parallel_cfg, make_stream);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial.points()[i].first, parallel.points()[i].first);
      EXPECT_EQ(serial.points()[i].second, parallel.points()[i].second);
    }
  }
}

TEST(ReuseProfiler, FixedRateSamplingWithinTolerance) {
  for (const auto& [name, make_stream] : stream_families()) {
    SCOPED_TRACE(name);
    const auto exact =
        profile_mrc(base_config(MrcProfilerMode::kSinglePass), make_stream);
    auto cfg = base_config(MrcProfilerMode::kSampled);
    cfg.sampling = {.mode = ShardsMode::kFixedRate, .rate = 0.125};
    const auto sampled = profile_mrc(cfg, make_stream);
    ASSERT_EQ(exact.size(), sampled.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(exact.points()[i].second, sampled.points()[i].second, 0.02);
    }
  }
}

TEST(ReuseProfiler, FixedSizeSamplingWithinTolerance) {
  for (const auto& [name, make_stream] : stream_families()) {
    SCOPED_TRACE(name);
    const auto exact =
        profile_mrc(base_config(MrcProfilerMode::kSinglePass), make_stream);
    auto cfg = base_config(MrcProfilerMode::kSampled);
    cfg.sampling = {.mode = ShardsMode::kFixedSize,
                    .max_tracked_blocks = 4096};
    const auto sampled = profile_mrc(cfg, make_stream);
    ASSERT_EQ(exact.size(), sampled.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(exact.points()[i].second, sampled.points()[i].second, 0.02);
    }
  }
}

TEST(ReuseProfiler, FixedSizeRespectsBudgetAndAdaptsRate) {
  ReuseProfiler profiler(
      small20(),
      {.mode = ShardsMode::kFixedSize, .max_tracked_blocks = 2048});
  WorkingSetStream stream(MB, 0, util::Xoshiro256(21));
  for (int i = 0; i < 50'000; ++i) profiler.access(stream.next());
  profiler.begin_measurement();
  for (int i = 0; i < 100'000; ++i) profiler.access(stream.next());
  const auto st = profiler.stats();
  // A 1 MB working set holds ~16k blocks, far over the 2048 budget: the
  // profiler must have evicted sets and lowered the sampling rate.
  EXPECT_LE(st.distinct_blocks, 2048u);
  EXPECT_GT(st.evicted_sets, 0u);
  EXPECT_LT(st.sample_rate, 1.0);
  EXPECT_GE(st.sampled_sets, 1u);
}

TEST(ReuseProfiler, SamplingIsDeterministic) {
  auto cfg = base_config(MrcProfilerMode::kSampled);
  cfg.sampling = {.mode = ShardsMode::kFixedRate, .rate = 0.125, .seed = 99};
  auto make_stream = [] {
    return std::make_unique<MixedStream>(MB, 0.6, 0, util::Xoshiro256(31));
  };
  const auto a = profile_mrc(cfg, make_stream);
  const auto b = profile_mrc(cfg, make_stream);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points()[i].second, b.points()[i].second);
  }
}

TEST(ReuseProfiler, UnsampledHistogramAccountsEveryMeasuredAccess) {
  ReuseProfiler profiler(small20());
  WorkingSetStream stream(MB, 0, util::Xoshiro256(41));
  for (int i = 0; i < 10'000; ++i) profiler.access(stream.next());
  profiler.begin_measurement();
  for (int i = 0; i < 20'000; ++i) profiler.access(stream.next());
  const auto st = profiler.stats();
  EXPECT_EQ(st.accesses, 30'000u);
  EXPECT_EQ(st.measured, 20'000u);
  EXPECT_EQ(st.sampled, 20'000u);  // every set sampled
  EXPECT_EQ(st.sample_rate, 1.0);
  const auto hist = profiler.histogram();
  double total = 0.0;
  for (double h : hist) total += h;
  EXPECT_DOUBLE_EQ(total, 20'000.0);
}

TEST(ReuseProfiler, WarmupOnlyBuildsStateNotCounts) {
  ReuseProfiler profiler(small20());
  WorkingSetStream stream(MB, 0, util::Xoshiro256(42));
  for (int i = 0; i < 10'000; ++i) profiler.access(stream.next());
  // Never began measurement: histogram must be all zero.
  for (double h : profiler.histogram()) EXPECT_EQ(h, 0.0);
  EXPECT_EQ(profiler.stats().measured, 0u);
}

TEST(ReuseProfiler, RejectsBadConfigs) {
  EXPECT_THROW(ReuseProfiler(small20(), {.mode = ShardsMode::kFixedRate,
                                         .rate = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ReuseProfiler(small20(), {.mode = ShardsMode::kFixedRate,
                                         .rate = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(ReuseProfiler(small20(), {.mode = ShardsMode::kFixedSize,
                                         .max_tracked_blocks = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      ReuseProfiler({.size_bytes = MB, .ways = 33, .line_bytes = 64}),
      std::invalid_argument);
  EXPECT_THROW(
      ReuseProfiler({.size_bytes = MB, .ways = 4, .line_bytes = 48}),
      std::invalid_argument);
}

TEST(ReuseProfiler, TinyRateStillSamplesAtLeastOneSet) {
  ReuseProfiler profiler(small20(), {.mode = ShardsMode::kFixedRate,
                                     .rate = 1e-12});
  WorkingSetStream stream(MB, 0, util::Xoshiro256(43));
  for (int i = 0; i < 1'000; ++i) profiler.access(stream.next());
  profiler.begin_measurement();
  for (int i = 0; i < 50'000; ++i) profiler.access(stream.next());
  EXPECT_GE(profiler.stats().sampled_sets, 1u);
  // The curve is still a valid MRC (degenerate but in range).
  const auto mrc = profiler.mrc();
  for (const auto& [bytes, miss] : mrc.points()) {
    EXPECT_GE(miss, 0.0);
    EXPECT_LE(miss, 1.0);
  }
}

// --- FullyAssociativeProfiler ---------------------------------------------

std::vector<double> grid_mb(std::initializer_list<double> mbs) {
  std::vector<double> out;
  for (double m : mbs) out.push_back(m * MB);
  return out;
}

TEST(FullyAssociativeProfiler, WorkingSetCurveHasTheRightKnee) {
  FullyAssociativeProfiler profiler(
      64, grid_mb({0.25, 0.5, 0.75, 1.0, 1.25}));
  WorkingSetStream stream(MB, 0, util::Xoshiro256(51));
  for (int i = 0; i < 100'000; ++i) profiler.access(stream.next());
  profiler.begin_measurement();
  for (int i = 0; i < 200'000; ++i) profiler.access(stream.next());
  const auto mrc = profiler.mrc();
  ASSERT_EQ(mrc.size(), 5u);
  // Uniform reuse over 1 MB: holding a fraction c of it hits with
  // probability ~c, so miss(0.25 MB) ~ 0.75 etc., and ~0 past the set.
  EXPECT_NEAR(mrc.points()[0].second, 0.75, 0.03);
  EXPECT_NEAR(mrc.points()[1].second, 0.50, 0.03);
  EXPECT_NEAR(mrc.points()[3].second, 0.0, 0.02);
  EXPECT_NEAR(mrc.points()[4].second, 0.0, 0.02);
  EXPECT_LE(mrc.monotonicity_violation(), 1e-12);
}

TEST(FullyAssociativeProfiler, StreamingMissesAtEveryCapacity) {
  FullyAssociativeProfiler profiler(64, grid_mb({0.5, 1.0, 2.0}));
  StreamingStream stream(64 * MB, 64, 0);
  for (int i = 0; i < 20'000; ++i) profiler.access(stream.next());
  profiler.begin_measurement();
  for (int i = 0; i < 100'000; ++i) profiler.access(stream.next());
  const auto mrc = profiler.mrc();
  for (const auto& [bytes, miss] : mrc.points()) {
    EXPECT_GT(miss, 0.99);
  }
}

TEST(FullyAssociativeProfiler, SampledCurveTracksExact) {
  const auto grid = grid_mb({0.25, 0.5, 0.75, 1.0, 1.25});
  auto run = [&](const ShardsConfig& sampling) {
    FullyAssociativeProfiler profiler(64, grid, sampling);
    BimodalStream stream(MB / 2, 2 * MB, 0.8, 0, util::Xoshiro256(52));
    for (int i = 0; i < 100'000; ++i) profiler.access(stream.next());
    profiler.begin_measurement();
    for (int i = 0; i < 200'000; ++i) profiler.access(stream.next());
    return profiler.mrc();
  };
  const auto exact = run({});
  const auto sampled =
      run({.mode = ShardsMode::kFixedRate, .rate = 0.125, .seed = 7});
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(exact.points()[i].second, sampled.points()[i].second, 0.05);
  }
}

TEST(FullyAssociativeProfiler, FixedSizeBoundsTrackedBlocks) {
  FullyAssociativeProfiler profiler(
      64, grid_mb({0.5, 1.0}),
      {.mode = ShardsMode::kFixedSize, .max_tracked_blocks = 1024});
  WorkingSetStream stream(4 * MB, 0, util::Xoshiro256(53));
  for (int i = 0; i < 50'000; ++i) profiler.access(stream.next());
  profiler.begin_measurement();
  for (int i = 0; i < 100'000; ++i) profiler.access(stream.next());
  EXPECT_LE(profiler.distinct_blocks(), 1024u);
  EXPECT_LT(profiler.sample_rate(), 1.0);
}

TEST(FullyAssociativeProfiler, RejectsBadGrids) {
  EXPECT_THROW(FullyAssociativeProfiler(64, {}), std::invalid_argument);
  EXPECT_THROW(FullyAssociativeProfiler(64, {1.0 * MB, 0.5 * MB}),
               std::invalid_argument);
  EXPECT_THROW(FullyAssociativeProfiler(48, {1.0 * MB}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dicer::sim
