#include "sim/cache/address_stream.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dicer::sim {
namespace {

TEST(WorkingSetStream, StaysInsideWorkingSet) {
  WorkingSetStream s(4096, 1 << 20, util::Xoshiro256(1));
  for (int i = 0; i < 10000; ++i) {
    const auto a = s.next();
    EXPECT_GE(a, 1u << 20);
    EXPECT_LT(a, (1u << 20) + 4096u);
    EXPECT_EQ(a % 64, 0u);  // line aligned
  }
}

TEST(WorkingSetStream, CoversAllLines) {
  WorkingSetStream s(8 * 64, 0, util::Xoshiro256(2));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(s.next());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(WorkingSetStream, TooSmallThrows) {
  EXPECT_THROW(WorkingSetStream(32, 0, util::Xoshiro256(3)),
               std::invalid_argument);
}

TEST(StreamingStream, SequentialWithWrap) {
  StreamingStream s(256, 64, 1000);
  EXPECT_EQ(s.next(), 1000u);
  EXPECT_EQ(s.next(), 1064u);
  EXPECT_EQ(s.next(), 1128u);
  EXPECT_EQ(s.next(), 1192u);
  EXPECT_EQ(s.next(), 1000u);  // wrapped
}

TEST(StreamingStream, NeverRepeatsWithinRegion) {
  StreamingStream s(1 << 20, 64, 0);
  std::set<std::uint64_t> seen;
  const int lines = (1 << 20) / 64;
  for (int i = 0; i < lines; ++i) EXPECT_TRUE(seen.insert(s.next()).second);
}

TEST(StreamingStream, BadConfigThrows) {
  EXPECT_THROW(StreamingStream(64, 0, 0), std::invalid_argument);
  EXPECT_THROW(StreamingStream(32, 64, 0), std::invalid_argument);
}

TEST(BimodalStream, RespectsHotFraction) {
  BimodalStream s(4096, 1 << 20, 0.8, 0, util::Xoshiro256(4));
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (s.next() < 4096u) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.8, 0.02);
}

TEST(BimodalStream, ColdRegionDisjointFromHot) {
  BimodalStream s(4096, 1 << 16, 0.5, 0, util::Xoshiro256(5));
  for (int i = 0; i < 10000; ++i) {
    const auto a = s.next();
    EXPECT_TRUE(a < 4096u || a >= (1ull << 40));
  }
}

TEST(MixedStream, ReuseFractionRespected) {
  MixedStream s(4096, 0.6, 0, util::Xoshiro256(6));
  int reuse = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (s.next() < 4096u) ++reuse;
  }
  EXPECT_NEAR(static_cast<double>(reuse) / n, 0.6, 0.02);
}

TEST(Streams, DeterministicForSameSeed) {
  WorkingSetStream a(1 << 16, 0, util::Xoshiro256(9));
  WorkingSetStream b(1 << 16, 0, util::Xoshiro256(9));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace dicer::sim
