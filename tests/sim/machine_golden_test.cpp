// Golden equivalence tests for the allocation-free simulator hot path.
//
// The pinned values were harvested (printf %.17g) from the implementation
// BEFORE the scratch-state / cached-region-decomposition / warm-started
// occupancy optimisation (commit 0d2c1dc), so these tests prove the
// optimised step() is byte-identical to the original, not merely close:
// every comparison is exact double equality. If an intentional model
// change ever lands, re-harvest the constants and say so in the PR.
//
// The companion invalidation tests pin the *caching contract*: the region
// decomposition cache must track every actuator path (set_fill_mask,
// attach, detach) exactly, and stale occupancy memos must never survive a
// mask change.
#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "sim/cache/occupancy_model.hpp"
#include "sim/core/catalog.hpp"

namespace dicer::sim {
namespace {

const AppProfile& app(const char* name) {
  return default_catalog().by_name(name);
}

struct GoldenCore {
  unsigned core;
  double instructions;
  double mem_bytes;
  double occupancy_bytes;
  double last_quantum_ipc;
};

void expect_core_exact(const Machine& m, const GoldenCore& g) {
  const auto& t = m.telemetry(g.core);
  EXPECT_EQ(t.instructions, g.instructions) << "core " << g.core;
  EXPECT_EQ(t.mem_bytes, g.mem_bytes) << "core " << g.core;
  EXPECT_EQ(t.occupancy_bytes, g.occupancy_bytes) << "core " << g.core;
  EXPECT_EQ(t.last_quantum_ipc, g.last_quantum_ipc) << "core " << g.core;
}

TEST(MachineGolden, UnmanagedMelee) {
  // milc1 + 9x gcc_base3, 2 s, no masks: the paper's UM baseline shape.
  Machine m{MachineConfig{}};
  m.attach(0, &app("milc1"));
  for (unsigned c = 1; c < 10; ++c) m.attach(c, &app("gcc_base3"));
  m.run_for(2.0);
  EXPECT_EQ(m.last_link_utilisation(), 0.36069474369418336);
  EXPECT_EQ(m.last_link_traffic(), 3079431374.2890906);
  expect_core_exact(m, {0, 3048611021.7973833, 2814776797.2703452,
                        4458868.2008231971, 0.58665361631917234});
  expect_core_exact(m, {1, 4380012910.6687689, 257193222.4759258,
                        2417281.31105211, 0.99324046284042189});
}

TEST(MachineGolden, StaticPartition) {
  // CT-shaped layout: omnetpp1 isolated on 19 ways, 9x gcc_base3 on 1.
  Machine m{MachineConfig{}};
  m.attach(0, &app("omnetpp1"));
  for (unsigned c = 1; c < 10; ++c) m.attach(c, &app("gcc_base3"));
  m.set_fill_mask(0, WayMask::high(19, 20));
  for (unsigned c = 1; c < 10; ++c) m.set_fill_mask(c, WayMask::low(1));
  m.run_for(2.0);
  EXPECT_EQ(m.last_link_utilisation(), 0.50350295374425835);
  EXPECT_EQ(m.last_link_traffic(), 4298656467.5916061);
  expect_core_exact(m, {0, 2798924466.9815516, 175308532.90655601,
                        24903680.000757858, 0.63612087502571435});
  expect_core_exact(m, {1, 2758351674.0736752, 935777981.83065259,
                        145635.55479047901, 0.62689815397691273});
}

TEST(MachineGolden, ActuatorChurnMidRun) {
  // Every actuator path mid-run: repartition, throttle, detach, re-attach.
  Machine m{MachineConfig{}};
  m.attach(0, &app("omnetpp1"));
  m.attach(1, &app("lbm1"));
  m.attach(2, &app("gcc_base3"));
  m.run_for(0.5);
  m.set_fill_mask(0, WayMask::high(10, 20));
  m.set_fill_mask(1, WayMask::low(10));
  m.set_mem_throttle(1, 0.5);
  m.run_for(0.5);
  m.detach(2);
  m.run_for(0.5);
  m.attach(2, &app("bzip22"));
  m.set_fill_mask(2, WayMask::low(10));
  m.run_for(0.5);
  EXPECT_EQ(m.last_link_utilisation(), 0.2955982826177817);
  EXPECT_EQ(m.last_link_traffic(), 2523670337.8493114);
  expect_core_exact(m, {0, 2567348417.4336491, 499999584.98168129,
                        13107199.999590229, 0.58959061167503035});
  expect_core_exact(m, {1, 2685244867.9547515, 3473035175.2660871,
                        9758438.9078741409, 0.34332902824700767});
  expect_core_exact(m, {2, 3302820926.7428303, 180285069.36649564,
                        3348761.0930942418, 0.93985270422186939});
}

// --- region-decomposition cache invalidation ------------------------------

/// The oracle: decompose the active cores' masks from scratch and require
/// the machine's cached decomposition to match it exactly.
void expect_regions_fresh(Machine& m) {
  std::vector<WayMask> masks;
  for (unsigned c = 0; c < m.num_cores(); ++c) {
    if (m.occupied(c)) masks.push_back(m.fill_mask(c));
  }
  const auto fresh = decompose_regions(masks, m.num_ways(),
                                       m.config().way_bytes());
  const auto& cached = m.current_regions();
  ASSERT_EQ(cached.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(cached[i].capacity_bytes, fresh[i].capacity_bytes) << i;
    EXPECT_EQ(cached[i].sharers, fresh[i].sharers) << i;
  }
}

TEST(MachineRegionCache, TracksEveryActuatorPath) {
  Machine m{MachineConfig{}};
  expect_regions_fresh(m);  // empty machine: no regions

  m.attach(0, &app("omnetpp1"));
  expect_regions_fresh(m);
  m.attach(1, &app("gcc_base3"));
  m.attach(2, &app("gcc_base3"));
  expect_regions_fresh(m);
  m.step();

  m.set_fill_mask(0, WayMask::high(15, 20));
  expect_regions_fresh(m);
  m.step();
  m.set_fill_mask(1, WayMask::low(5));
  m.set_fill_mask(2, WayMask::low(5));
  expect_regions_fresh(m);
  m.step();

  // No-op mask write: still consistent (and must not disturb results).
  m.set_fill_mask(1, WayMask::low(5));
  expect_regions_fresh(m);
  m.step();

  m.detach(1);
  expect_regions_fresh(m);
  m.step();
  m.attach(1, &app("lbm1"));
  expect_regions_fresh(m);
  m.step();
  m.detach(0);
  m.detach(2);
  expect_regions_fresh(m);
  m.step();
  expect_regions_fresh(m);
}

TEST(MachineRegionCache, StaleOccupancyNeverSurvivesShrink) {
  // Drive a cache-hungry app to a large steady-state occupancy, then
  // shrink its partition: the next quanta must confine it to the new
  // region's capacity. A stale decomposition or occupancy memo would keep
  // reporting the old ~20 MB holding.
  Machine m{MachineConfig{}};
  m.attach(0, &app("omnetpp1"));
  m.run_for(1.0);
  const double way = m.config().way_bytes();
  EXPECT_GT(m.telemetry(0).occupancy_bytes, 4 * way);
  m.set_fill_mask(0, WayMask::low(2));
  m.run_for(0.2);
  EXPECT_LE(m.telemetry(0).occupancy_bytes, 2 * way * 1.001);
}

TEST(MachineRegionCache, RedundantMaskWritesDoNotChangeResults) {
  // A controller that re-asserts the same masks every period must produce
  // exactly the run it would with a single write.
  auto run = [](bool redundant_writes) {
    Machine m{MachineConfig{}};
    m.attach(0, &app("omnetpp1"));
    for (unsigned c = 1; c < 6; ++c) m.attach(c, &app("gcc_base3"));
    m.set_fill_mask(0, WayMask::high(15, 20));
    for (unsigned c = 1; c < 6; ++c) m.set_fill_mask(c, WayMask::low(5));
    for (int period = 0; period < 5; ++period) {
      if (redundant_writes) {
        m.set_fill_mask(0, WayMask::high(15, 20));
        for (unsigned c = 1; c < 6; ++c) m.set_fill_mask(c, WayMask::low(5));
      }
      m.run_for(0.2);
    }
    return m.telemetry(0).instructions;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace dicer::sim
