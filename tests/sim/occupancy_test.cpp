#include "sim/cache/occupancy_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace dicer::sim {
namespace {

constexpr double MB = 1024.0 * 1024.0;
constexpr double GBs = 1024.0 * 1024.0 * 1024.0;

double total(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(DecomposeRegions, SingleSharedRegion) {
  std::vector<WayMask> masks(3, WayMask::full(20));
  const auto regions = decompose_regions(masks, 20, MB);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_DOUBLE_EQ(regions[0].capacity_bytes, 20 * MB);
  EXPECT_EQ(regions[0].sharers, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(DecomposeRegions, DisjointPartitions) {
  std::vector<WayMask> masks = {WayMask::high(19, 20), WayMask::low(1),
                                WayMask::low(1)};
  const auto regions = decompose_regions(masks, 20, MB);
  ASSERT_EQ(regions.size(), 2u);
  // Region order: by sharer bitmask value — BE region {1,2} has mask 0b110,
  // HP region {0} has mask 0b001.
  double hp_cap = 0.0, be_cap = 0.0;
  for (const auto& r : regions) {
    if (r.sharers == std::vector<std::size_t>{0}) hp_cap = r.capacity_bytes;
    if (r.sharers == (std::vector<std::size_t>{1, 2})) {
      be_cap = r.capacity_bytes;
    }
  }
  EXPECT_DOUBLE_EQ(hp_cap, 19 * MB);
  EXPECT_DOUBLE_EQ(be_cap, 1 * MB);
}

TEST(DecomposeRegions, OverlappingMasksSplit) {
  // App 0: ways 0-9; app 1: ways 5-14 -> three regions.
  std::vector<WayMask> masks = {WayMask::span(0, 10), WayMask::span(5, 10)};
  const auto regions = decompose_regions(masks, 20, MB);
  ASSERT_EQ(regions.size(), 3u);
  double cap_sum = 0.0;
  for (const auto& r : regions) cap_sum += r.capacity_bytes;
  EXPECT_DOUBLE_EQ(cap_sum, 15 * MB);  // ways 15-19 unused, dropped
}

TEST(DecomposeRegions, UnusedWaysDropped) {
  std::vector<WayMask> masks = {WayMask::low(4)};
  const auto regions = decompose_regions(masks, 20, MB);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_DOUBLE_EQ(regions[0].capacity_bytes, 4 * MB);
}

TEST(DecomposeRegions, TooManyAppsThrows) {
  std::vector<WayMask> masks(65, WayMask::full(20));
  EXPECT_THROW(decompose_regions(masks, 20, MB), std::invalid_argument);
}

CacheDemand reuse_app(double rate, double footprint) {
  CacheDemand d;
  d.reuse = {{rate, footprint}};
  return d;
}

CacheDemand stream_app(double rate) {
  CacheDemand d;
  d.stream_bytes_per_sec = rate;
  return d;
}

TEST(SolveOccupancy, LoneStreamerFillsRegion) {
  std::vector<WayMask> masks = {WayMask::full(20)};
  const auto regions = decompose_regions(masks, 20, MB);
  const auto occ = solve_occupancy(regions, 1, {stream_app(1 * GBs)});
  EXPECT_NEAR(occ[0], 20 * MB, 0.01 * MB);
}

TEST(SolveOccupancy, LoneSmallFootprintDoesNotFill) {
  std::vector<WayMask> masks = {WayMask::full(20)};
  const auto regions = decompose_regions(masks, 20, MB);
  const auto occ = solve_occupancy(regions, 1, {reuse_app(1 * GBs, 3 * MB)});
  EXPECT_NEAR(occ[0], 3 * MB, 0.01 * MB);
}

TEST(SolveOccupancy, CapacityConserved) {
  std::vector<WayMask> masks(4, WayMask::full(20));
  const auto regions = decompose_regions(masks, 20, MB);
  std::vector<CacheDemand> demand = {
      stream_app(2 * GBs), reuse_app(1 * GBs, 40 * MB),
      reuse_app(0.5 * GBs, 10 * MB), stream_app(1 * GBs)};
  const auto occ = solve_occupancy(regions, 4, demand);
  EXPECT_NEAR(total(occ), 20 * MB, 0.05 * MB);
  for (double o : occ) EXPECT_GE(o, 0.0);
}

TEST(SolveOccupancy, HotSmallSetStaysResidentNextToStorm) {
  // The physics that makes CT-Thwarted workloads exist: an L2-resident
  // victim keeps its working set even next to nine streaming aggressors.
  std::vector<WayMask> masks(10, WayMask::full(20));
  const auto regions = decompose_regions(masks, 20, MB);
  std::vector<CacheDemand> demand;
  demand.push_back(reuse_app(0.5 * GBs, 1 * MB));  // hot victim
  for (int i = 0; i < 9; ++i) demand.push_back(stream_app(3 * GBs));
  const auto occ = solve_occupancy(regions, 10, demand);
  EXPECT_GT(occ[0], 0.3 * MB);  // victim retains a useful fraction
}

TEST(SolveOccupancy, HigherRateEarnsMoreCache) {
  std::vector<WayMask> masks(2, WayMask::full(20));
  const auto regions = decompose_regions(masks, 20, MB);
  const auto occ = solve_occupancy(
      regions, 2, {reuse_app(4 * GBs, 100 * MB), reuse_app(1 * GBs, 100 * MB)});
  EXPECT_GT(occ[0], occ[1]);
  EXPECT_NEAR(occ[0] / occ[1], 4.0, 0.2);
}

TEST(SolveOccupancy, IsolatedPartitionUnaffectedByNeighbourStorm) {
  std::vector<WayMask> masks = {WayMask::high(19, 20), WayMask::low(1)};
  const auto regions = decompose_regions(masks, 20, MB);
  const auto occ = solve_occupancy(
      regions, 2, {reuse_app(1 * GBs, 5 * MB), stream_app(50 * GBs)});
  EXPECT_NEAR(occ[0], 5 * MB, 0.05 * MB);  // full footprint, protected
  EXPECT_NEAR(occ[1], 1 * MB, 0.05 * MB);  // storm confined to one way
}

TEST(SolveOccupancy, ZeroDemandGetsZero) {
  std::vector<WayMask> masks(2, WayMask::full(20));
  const auto regions = decompose_regions(masks, 20, MB);
  const auto occ =
      solve_occupancy(regions, 2, {reuse_app(1 * GBs, 50 * MB), CacheDemand{}});
  EXPECT_DOUBLE_EQ(occ[1], 0.0);
}

TEST(SolveOccupancy, DemandSizeMismatchThrows) {
  std::vector<WayMask> masks(2, WayMask::full(20));
  const auto regions = decompose_regions(masks, 20, MB);
  EXPECT_THROW(solve_occupancy(regions, 2, {CacheDemand{}}),
               std::invalid_argument);
}

TEST(SolveOccupancy, MultiComponentHotFillsBeforeTail) {
  std::vector<WayMask> masks(2, WayMask::full(4));
  const auto regions = decompose_regions(masks, 4, MB);  // 4 MB total
  CacheDemand app;
  app.reuse = {{1 * GBs, 1 * MB},      // hot: covered fast
               {0.05 * GBs, 20 * MB}}; // lukewarm tail
  const auto occ =
      solve_occupancy(regions, 2, {app, stream_app(2 * GBs)});
  // The hot MB should be (nearly) fully covered despite the streamer.
  EXPECT_GT(occ[0], 0.9 * MB);
}

// --- scratch / warm-start solver ------------------------------------------

std::vector<double> solve_with_scratch(const std::vector<CacheRegion>& regions,
                                       const std::vector<CacheDemand>& demand,
                                       OccupancyScratch& scratch) {
  std::vector<double> occ;
  solve_occupancy(regions, demand, OccupancySolverConfig{}, scratch, occ);
  return occ;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(OccupancyScratchSolver, MatchesAllocatingSolverBitwise) {
  std::vector<WayMask> masks = {WayMask::high(19, 20), WayMask::low(1),
                                WayMask::low(1)};
  const auto regions = decompose_regions(masks, 20, MB);
  OccupancyScratch scratch;
  // A sequence of changing demands through one reused scratch must be
  // byte-identical to fresh allocating solves at every step.
  for (int it = 0; it < 5; ++it) {
    std::vector<CacheDemand> demand = {
        reuse_app((1.0 + 0.3 * it) * GBs, 5 * MB),
        stream_app((2.0 + it) * GBs),
        reuse_app(0.5 * GBs, (10.0 + it) * MB)};
    expect_bitwise_equal(solve_with_scratch(regions, demand, scratch),
                         solve_occupancy(regions, 3, demand));
  }
}

TEST(OccupancyScratchSolver, MemoHitReproducesColdSolve) {
  std::vector<WayMask> masks(4, WayMask::full(20));
  const auto regions = decompose_regions(masks, 20, MB);
  const std::vector<CacheDemand> demand = {
      stream_app(2 * GBs), reuse_app(1 * GBs, 40 * MB),
      reuse_app(0.5 * GBs, 10 * MB), stream_app(1 * GBs)};
  OccupancyScratch scratch;
  const auto cold = solve_with_scratch(regions, demand, scratch);
  // Second call with identical inputs takes the warm-start path.
  expect_bitwise_equal(solve_with_scratch(regions, demand, scratch), cold);
  // A one-ulp nudge of a single rate must defeat the memo: the result has
  // to match a fresh solve of the nudged demand, not the stale one.
  auto nudged = demand;
  nudged[1].reuse[0].rate_bytes_per_sec =
      std::nextafter(nudged[1].reuse[0].rate_bytes_per_sec, 2e18);
  expect_bitwise_equal(solve_with_scratch(regions, nudged, scratch),
                       solve_occupancy(regions, 4, nudged));
}

TEST(OccupancyScratchSolver, InvalidateTracksLayoutChange) {
  OccupancyScratch scratch;
  const std::vector<CacheDemand> demand = {reuse_app(1 * GBs, 30 * MB),
                                           stream_app(5 * GBs)};
  // Same region count, same app count, different capacities: the scratch
  // cannot auto-detect this — invalidate() is the caller's contract.
  std::vector<WayMask> shared = {WayMask::high(19, 20), WayMask::low(1)};
  std::vector<WayMask> even = {WayMask::high(10, 20), WayMask::low(10)};
  const auto regions_a = decompose_regions(shared, 20, MB);
  const auto regions_b = decompose_regions(even, 20, MB);
  expect_bitwise_equal(solve_with_scratch(regions_a, demand, scratch),
                       solve_occupancy(regions_a, 2, demand));
  scratch.invalidate();
  expect_bitwise_equal(solve_with_scratch(regions_b, demand, scratch),
                       solve_occupancy(regions_b, 2, demand));
}

TEST(OccupancyScratchSolver, ShapeChangeDetectedWithoutInvalidate) {
  // Region-count and app-count changes are auto-detected even if the
  // caller forgets invalidate().
  OccupancyScratch scratch;
  std::vector<WayMask> one = {WayMask::full(20)};
  std::vector<WayMask> three = {WayMask::high(19, 20), WayMask::low(1),
                                WayMask::low(1)};
  const auto regions_one = decompose_regions(one, 20, MB);
  const auto regions_three = decompose_regions(three, 20, MB);
  const std::vector<CacheDemand> d1 = {stream_app(1 * GBs)};
  const std::vector<CacheDemand> d3 = {reuse_app(1 * GBs, 5 * MB),
                                       stream_app(2 * GBs),
                                       stream_app(3 * GBs)};
  expect_bitwise_equal(solve_with_scratch(regions_one, d1, scratch),
                       solve_occupancy(regions_one, 1, d1));
  expect_bitwise_equal(solve_with_scratch(regions_three, d3, scratch),
                       solve_occupancy(regions_three, 3, d3));
}

// Conservation holds across arbitrary mask layouts.
class OccupancyConservation : public ::testing::TestWithParam<int> {};

TEST_P(OccupancyConservation, NeverExceedsEligibleCapacity) {
  const int layout = GetParam();
  std::vector<WayMask> masks;
  switch (layout) {
    case 0: masks = {WayMask::full(20), WayMask::full(20)}; break;
    case 1: masks = {WayMask::high(19, 20), WayMask::low(1)}; break;
    case 2: masks = {WayMask::span(0, 10), WayMask::span(5, 10)}; break;
    default: masks = {WayMask::low(2), WayMask::span(2, 2)}; break;
  }
  const auto regions = decompose_regions(masks, 20, MB);
  double capacity = 0.0;
  for (const auto& r : regions) capacity += r.capacity_bytes;
  const auto occ = solve_occupancy(
      regions, 2, {stream_app(20 * GBs), stream_app(10 * GBs)});
  EXPECT_LE(total(occ), capacity * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Layouts, OccupancyConservation,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace dicer::sim
