#include "sim/cache/set_assoc_cache.hpp"

#include <gtest/gtest.h>

namespace dicer::sim {
namespace {

// A tiny cache: 4 sets x 4 ways x 64 B = 1 KiB.
CacheGeometry tiny() { return {.size_bytes = 1024, .ways = 4, .line_bytes = 64}; }

std::uint64_t addr(std::uint64_t set, std::uint64_t tag) {
  return set * 64 + tag * 64 * 4;
}

TEST(CacheGeometry, DerivedQuantities) {
  const auto g = tiny();
  EXPECT_EQ(g.num_sets(), 4u);
  EXPECT_EQ(g.way_bytes(), 256u);
  CacheGeometry paper{25ull * 1024 * 1024, 20, 64};
  EXPECT_EQ(paper.num_sets(), 20480u);
  EXPECT_EQ(paper.way_bytes(), 1310720u);
}

TEST(SetAssocCache, RejectsDegenerateGeometry) {
  EXPECT_THROW(SetAssocCache({1024, 0, 64}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache({1024, 33, 64}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache({1024, 4, 0}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache({1024, 4, 48}), std::invalid_argument);
  // 3 sets is not a power of two: 4 ways * 64 B * 3.
  EXPECT_THROW(SetAssocCache({768, 4, 64}), std::invalid_argument);
}

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache c(tiny());
  const auto full = WayMask::full(4);
  EXPECT_FALSE(c.access(addr(0, 1), 0, full).hit);
  EXPECT_TRUE(c.access(addr(0, 1), 0, full).hit);
  EXPECT_EQ(c.stats(0).accesses, 2u);
  EXPECT_EQ(c.stats(0).misses, 1u);
}

TEST(SetAssocCache, SameLineDifferentByteOffsetsHit) {
  SetAssocCache c(tiny());
  const auto full = WayMask::full(4);
  c.access(addr(0, 1), 0, full);
  EXPECT_TRUE(c.access(addr(0, 1) + 63, 0, full).hit);
}

TEST(SetAssocCache, LruEvictionOrder) {
  SetAssocCache c(tiny());
  const auto full = WayMask::full(4);
  for (std::uint64_t t = 0; t < 4; ++t) c.access(addr(0, t), 0, full);
  // Touch tag 0 so tag 1 becomes LRU.
  c.access(addr(0, 0), 0, full);
  // Insert a fifth tag: must evict tag 1, not tag 0.
  EXPECT_TRUE(c.access(addr(0, 4), 0, full).evicted);
  EXPECT_TRUE(c.access(addr(0, 0), 0, full).hit);
  EXPECT_FALSE(c.access(addr(0, 1), 0, full).hit);
}

TEST(SetAssocCache, FillsRestrictedToMask) {
  SetAssocCache c(tiny());
  const auto way0 = WayMask::low(1);
  // With one allowed way, a second distinct tag evicts the first.
  c.access(addr(0, 1), 0, way0);
  c.access(addr(0, 2), 0, way0);
  EXPECT_FALSE(c.access(addr(0, 1), 0, way0).hit);
  // Lines in other ways are untouched: only 1 line valid per set.
  EXPECT_EQ(c.valid_lines(), 1u);
}

TEST(SetAssocCache, HitsAllowedOutsideMask) {
  // CAT semantics: the mask restricts fills, not lookups (paper 3.3: on
  // allocation change, resident contents stay until evicted).
  SetAssocCache c(tiny());
  c.access(addr(0, 1), 0, WayMask::low(2));
  // Now restrict owner to the high ways: its old line still hits.
  EXPECT_TRUE(c.access(addr(0, 1), 0, WayMask::span(2, 2)).hit);
}

TEST(SetAssocCache, VictimOwnerReported) {
  SetAssocCache c(tiny(), 2);
  const auto way0 = WayMask::low(1);
  c.access(addr(0, 1), 0, way0);
  const auto res = c.access(addr(0, 2), 1, way0);
  EXPECT_TRUE(res.evicted);
  EXPECT_EQ(res.victim_owner, 0u);
  EXPECT_EQ(c.stats(0).evictions_suffered, 1u);
}

TEST(SetAssocCache, OccupancyTracksResidency) {
  SetAssocCache c(tiny(), 2);
  const auto full = WayMask::full(4);
  c.access(addr(0, 1), 0, full);
  c.access(addr(1, 1), 0, full);
  c.access(addr(2, 1), 1, full);
  EXPECT_EQ(c.occupancy_bytes(0), 128u);
  EXPECT_EQ(c.occupancy_bytes(1), 64u);
  EXPECT_EQ(c.valid_lines(), 3u);
}

TEST(SetAssocCache, HitMigratesOwnership) {
  SetAssocCache c(tiny(), 2);
  const auto full = WayMask::full(4);
  c.access(addr(0, 1), 0, full);
  c.access(addr(0, 1), 1, full);  // owner 1 touches owner 0's line
  EXPECT_EQ(c.occupancy_bytes(0), 0u);
  EXPECT_EQ(c.occupancy_bytes(1), 64u);
}

TEST(SetAssocCache, EmptyMaskThrows) {
  SetAssocCache c(tiny());
  EXPECT_THROW(c.access(0, 0, WayMask()), std::invalid_argument);
}

TEST(SetAssocCache, MaskBeyondCacheWaysThrows) {
  SetAssocCache c(tiny());
  EXPECT_THROW(c.access(0, 0, WayMask::span(8, 2)), std::invalid_argument);
}

TEST(SetAssocCache, BadOwnerThrows) {
  SetAssocCache c(tiny(), 2);
  EXPECT_THROW(c.access(0, 5, WayMask::full(4)), std::out_of_range);
  EXPECT_THROW(c.stats(2), std::out_of_range);
}

TEST(SetAssocCache, ResetStatsKeepsResidency) {
  SetAssocCache c(tiny());
  const auto full = WayMask::full(4);
  c.access(addr(0, 1), 0, full);
  c.reset_stats();
  EXPECT_EQ(c.stats(0).accesses, 0u);
  EXPECT_EQ(c.stats(0).misses, 0u);
  EXPECT_EQ(c.occupancy_bytes(0), 64u);  // line still resident
  EXPECT_TRUE(c.access(addr(0, 1), 0, full).hit);
}

TEST(SetAssocCache, FlushInvalidatesEverything) {
  SetAssocCache c(tiny());
  const auto full = WayMask::full(4);
  c.access(addr(0, 1), 0, full);
  c.flush();
  EXPECT_EQ(c.valid_lines(), 0u);
  EXPECT_EQ(c.occupancy_bytes(0), 0u);
  EXPECT_FALSE(c.access(addr(0, 1), 0, full).hit);
}

TEST(SetAssocCache, MissRatioHelper) {
  SetAssocCache c(tiny());
  const auto full = WayMask::full(4);
  c.access(addr(0, 1), 0, full);
  c.access(addr(0, 1), 0, full);
  c.access(addr(0, 1), 0, full);
  c.access(addr(0, 2), 0, full);
  EXPECT_DOUBLE_EQ(c.stats(0).miss_ratio(), 0.5);
}

// Partition isolation: an aggressor confined to one way can never evict a
// victim's lines in the other ways — the CAT guarantee DICER relies on.
class PartitionIsolation : public ::testing::TestWithParam<unsigned> {};

TEST_P(PartitionIsolation, VictimLinesSurviveAggressorStorm) {
  const unsigned victim_ways = GetParam();
  SetAssocCache c({.size_bytes = 4096, .ways = 8, .line_bytes = 64}, 2);
  const auto victim_mask = WayMask::high(victim_ways, 8);
  const auto aggressor_mask = WayMask::low(8 - victim_ways);

  // Victim fills its partition in every set.
  const std::uint64_t sets = 8;
  for (std::uint64_t s = 0; s < sets; ++s) {
    for (unsigned t = 0; t < victim_ways; ++t) {
      c.access((1ull << 30) + s * 64 + t * 64 * sets, 0, victim_mask);
    }
  }
  const auto victim_occ = c.occupancy_bytes(0);

  // Aggressor storms through far more lines than the cache holds.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    c.access(i * 64, 1, aggressor_mask);
  }
  EXPECT_EQ(c.occupancy_bytes(0), victim_occ);
  EXPECT_EQ(c.stats(0).evictions_suffered, 0u);
}

INSTANTIATE_TEST_SUITE_P(VictimWays, PartitionIsolation,
                         ::testing::Values(1u, 2u, 4u, 7u));

TEST(SetAssocCache, InvalidAllowedWayBeatsOlderValidLines) {
  // Fill ways 0..2 (way 3 stays invalid), then miss with a full mask: the
  // victim must be the invalid way 3, not the older valid line in way 0 —
  // the merged lookup/victim scan must prefer invalid ways regardless of
  // where valid candidates appeared in mask order.
  SetAssocCache c(tiny());
  const auto low3 = WayMask::low(3);
  for (std::uint64_t t = 0; t < 3; ++t) c.access(addr(0, t), 0, low3);
  const auto res = c.access(addr(0, 9), 0, WayMask::full(4));
  EXPECT_FALSE(res.hit);
  EXPECT_FALSE(res.evicted);  // filled the invalid way, evicted nothing
  // All three previously-resident tags still hit.
  for (std::uint64_t t = 0; t < 3; ++t) {
    EXPECT_TRUE(c.access(addr(0, t), 0, WayMask::full(4)).hit);
  }
}

TEST(SetAssocCache, FirstInvalidAllowedWayWins) {
  // Two invalid allowed ways: the scan must take the first one in way
  // order (the original early-break semantics), leaving the second
  // invalid until the next miss.
  SetAssocCache c(tiny());
  const auto full = WayMask::full(4);
  c.access(addr(0, 0), 0, full);  // way 0
  c.access(addr(0, 1), 0, full);  // way 1
  c.access(addr(0, 2), 0, full);  // way 2
  EXPECT_FALSE(c.access(addr(0, 3), 0, full).evicted);  // fills way 3
  // The set is now full; the next miss evicts true-LRU tag 0.
  EXPECT_TRUE(c.access(addr(0, 4), 0, full).evicted);
  EXPECT_FALSE(c.access(addr(0, 0), 0, full).hit);
}

TEST(SetAssocCache, HitOutsideAllocMaskStaysAHit) {
  // CAT semantics: the mask restricts fills, not lookups. A line resident
  // in way 0 must hit even when the requester may only allocate way 3.
  SetAssocCache c(tiny(), 2);
  c.access(addr(0, 5), 0, WayMask::low(1));  // fills way 0
  const auto res = c.access(addr(0, 5), 1, WayMask::high(1, 4));
  EXPECT_TRUE(res.hit);
  // The hit migrated ownership to the toucher.
  EXPECT_EQ(c.occupancy_bytes(1), 64u);
  EXPECT_EQ(c.occupancy_bytes(0), 0u);
}

}  // namespace
}  // namespace dicer::sim
