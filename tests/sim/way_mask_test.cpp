#include "sim/cache/way_mask.hpp"

#include <gtest/gtest.h>

namespace dicer::sim {
namespace {

TEST(WayMask, DefaultIsEmpty) {
  WayMask m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.count(), 0u);
  EXPECT_FALSE(m.contiguous());
}

TEST(WayMask, SpanBasics) {
  const auto m = WayMask::span(1, 19);
  EXPECT_EQ(m.bits(), 0xffffeu);
  EXPECT_EQ(m.count(), 19u);
  EXPECT_EQ(m.lowest(), 1u);
  EXPECT_EQ(m.highest(), 19u);
  EXPECT_TRUE(m.contiguous());
}

TEST(WayMask, LowAndHigh) {
  EXPECT_EQ(WayMask::low(1).bits(), 0x1u);
  EXPECT_EQ(WayMask::high(1, 20).bits(), 0x80000u);
  EXPECT_EQ(WayMask::high(19, 20).bits(), 0xffffeu);
  EXPECT_EQ(WayMask::full(20).bits(), 0xfffffu);
}

TEST(WayMask, SpanZeroCountIsEmpty) {
  EXPECT_TRUE(WayMask::span(3, 0).empty());
}

TEST(WayMask, SpanOutOfRangeThrows) {
  EXPECT_THROW(WayMask::span(30, 4), std::out_of_range);
  EXPECT_THROW(WayMask::span(0, 33), std::out_of_range);
}

TEST(WayMask, HighTooManyThrows) {
  EXPECT_THROW(WayMask::high(21, 20), std::out_of_range);
}

TEST(WayMask, Full32Ways) {
  EXPECT_EQ(WayMask::full(32).bits(), 0xffffffffu);
  EXPECT_EQ(WayMask::full(32).count(), 32u);
}

TEST(WayMask, TestIndividualWays) {
  const auto m = WayMask::span(2, 3);  // ways 2,3,4
  EXPECT_FALSE(m.test(1));
  EXPECT_TRUE(m.test(2));
  EXPECT_TRUE(m.test(4));
  EXPECT_FALSE(m.test(5));
  EXPECT_FALSE(m.test(40));  // out of range is simply false
}

TEST(WayMask, ContiguityDetection) {
  EXPECT_TRUE(WayMask(0b0110).contiguous());
  EXPECT_TRUE(WayMask(0b1).contiguous());
  EXPECT_FALSE(WayMask(0b0101).contiguous());
  EXPECT_FALSE(WayMask(0).contiguous());
}

TEST(WayMask, SetOperations) {
  const WayMask a = WayMask::low(4);         // 0..3
  const WayMask b = WayMask::span(2, 4);     // 2..5
  EXPECT_EQ((a & b).bits(), 0b1100u);
  EXPECT_EQ((a | b).bits(), 0b111111u);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(WayMask::low(2).overlaps(WayMask::span(2, 2)));
}

TEST(WayMask, Contains) {
  EXPECT_TRUE(WayMask::full(20).contains(WayMask::span(5, 3)));
  EXPECT_FALSE(WayMask::low(4).contains(WayMask::span(3, 2)));
  EXPECT_TRUE(WayMask::low(4).contains(WayMask()));  // empty always contained
}

TEST(WayMask, Equality) {
  EXPECT_EQ(WayMask::low(3), WayMask(0b111));
  EXPECT_NE(WayMask::low(3), WayMask::low(2));
}

TEST(WayMask, ToStringContiguous) {
  EXPECT_EQ(WayMask::span(1, 19).to_string(), "0xffffe (ways 1-19, 19 ways)");
  EXPECT_EQ(WayMask().to_string(), "0x0 (empty)");
}

TEST(WayMask, ToStringNonContiguous) {
  EXPECT_NE(WayMask(0b101).to_string().find("non-contiguous"),
            std::string::npos);
}

// CT's split never overlaps and always covers the cache.
class SplitProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SplitProperty, HpBePartitionIsExact) {
  const unsigned hp_ways = GetParam();
  const unsigned total = 20;
  const auto be = WayMask::low(total - hp_ways);
  const auto hp = WayMask::high(hp_ways, total);
  EXPECT_FALSE(hp.overlaps(be));
  EXPECT_EQ((hp | be), WayMask::full(total));
  EXPECT_EQ(hp.count() + be.count(), total);
  EXPECT_TRUE(hp.contiguous());
  EXPECT_TRUE(be.contiguous());
}

INSTANTIATE_TEST_SUITE_P(AllSplits, SplitProperty,
                         ::testing::Range(1u, 20u));

}  // namespace
}  // namespace dicer::sim
