// MachineBatch contract tests: a lane stepped through a batch must be
// bit-indistinguishable from the same machine stepped serially — for every
// telemetry field, every quantum, under randomized actuator churn — while
// actually taking the fused path (a batch that never fuses would pass
// equivalence vacuously). Mirrors the solver-shortcut equivalence suite:
// exact floating-point equality, never NEAR, because the sweep cache and
// the fleet exports pin bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "sim/cache/way_mask.hpp"
#include "sim/core/catalog.hpp"
#include "sim/machine.hpp"
#include "sim/machine_batch.hpp"
#include "util/rng.hpp"

namespace dicer::sim {
namespace {

void expect_machines_identical(Machine& a, Machine& b, std::uint64_t step) {
  ASSERT_EQ(a.time_sec(), b.time_sec()) << "step " << step;
  EXPECT_EQ(a.last_link_utilisation(), b.last_link_utilisation())
      << "step " << step;
  EXPECT_EQ(a.last_link_traffic(), b.last_link_traffic()) << "step " << step;
  for (unsigned c = 0; c < a.num_cores(); ++c) {
    const auto& ta = a.telemetry(c);
    const auto& tb = b.telemetry(c);
    EXPECT_EQ(ta.instructions, tb.instructions)
        << "core " << c << " step " << step;
    EXPECT_EQ(ta.active_cycles, tb.active_cycles)
        << "core " << c << " step " << step;
    EXPECT_EQ(ta.mem_bytes, tb.mem_bytes) << "core " << c << " step " << step;
    EXPECT_EQ(ta.occupancy_bytes, tb.occupancy_bytes)
        << "core " << c << " step " << step;
    EXPECT_EQ(ta.completions, tb.completions)
        << "core " << c << " step " << step;
    EXPECT_EQ(ta.last_quantum_ipc, tb.last_quantum_ipc)
        << "core " << c << " step " << step;
  }
}

void expect_solver_stats_equal(const SolverStats& sa, const SolverStats& sb) {
  EXPECT_EQ(sa.quanta, sb.quanta);
  EXPECT_EQ(sa.replays, sb.replays);
  EXPECT_EQ(sa.solves, sb.solves);
  EXPECT_EQ(sa.stable_solves, sb.stable_solves);
  EXPECT_EQ(sa.invalidations_actuator, sb.invalidations_actuator);
  EXPECT_EQ(sa.invalidations_fingerprint, sb.invalidations_fingerprint);
  EXPECT_EQ(sa.rounds_hist, sb.rounds_hist);
}

std::vector<AppProfile> single_phase_profiles() {
  const auto& catalog = default_catalog();
  std::vector<AppProfile> ps;
  for (unsigned c = 0; c < 10; ++c) {
    AppProfile p = catalog.at(c * 5);
    p.phases.resize(1);
    ps.push_back(std::move(p));
  }
  return ps;
}

TEST(MachineBatch, SteadyStateFusesAndStaysBitIdentical) {
  // Single-phase apps settle into permanent replay: nearly every batched
  // quantum must take the fused path, and every byte must still match the
  // serially-stepped twin.
  const auto profiles = single_phase_profiles();
  Machine a{MachineConfig{}};
  Machine b{MachineConfig{}};
  MachineBatch batch;
  for (unsigned c = 0; c < 10; ++c) {
    a.attach(c, &profiles[c]);
    b.attach(c, &profiles[c]);
  }
  const unsigned lane = batch.add(a);

  for (std::uint64_t q = 1; q <= 600; ++q) {
    batch.step(lane);
    b.step();
    expect_machines_identical(a, b, q);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
  }
  expect_solver_stats_equal(a.solver_stats(), b.solver_stats());
  EXPECT_GT(batch.stats().fused_quanta, 500u);
  EXPECT_GT(batch.stats().snapshots, 0u);
  // One PhaseConst per distinct phase, not per core.
  EXPECT_EQ(batch.shared_phase_count(), 10u);
}

TEST(MachineBatch, TwoLanesShareThePhaseTable) {
  // Two lanes running the same apps resolve through one PhaseConst each —
  // the dedup the shared table exists for — and both replay serially.
  const auto profiles = single_phase_profiles();
  Machine a{MachineConfig{}}, b{MachineConfig{}};
  Machine ra{MachineConfig{}}, rb{MachineConfig{}};
  MachineBatch batch;
  for (unsigned c = 0; c < 10; ++c) {
    a.attach(c, &profiles[c]);
    ra.attach(c, &profiles[c]);
    b.attach(c, &profiles[(c + 3) % 10]);
    rb.attach(c, &profiles[(c + 3) % 10]);
  }
  const unsigned la = batch.add(a);
  const unsigned lb = batch.add(b);

  // Interleave the lanes — batches don't require lane-major driving.
  for (std::uint64_t q = 1; q <= 300; ++q) {
    batch.step(la);
    batch.step(lb);
    ra.step();
    rb.step();
    expect_machines_identical(a, ra, q);
    expect_machines_identical(b, rb, q);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
  }
  // 10 distinct phases across 20 lane-cores.
  EXPECT_EQ(batch.shared_phase_count(), 10u);
  EXPECT_GT(batch.stats().fused_quanta, 0u);
}

TEST(MachineBatch, BitIdenticalUnderRandomActuatorChurn) {
  // The satellite suite's core property: a batched machine and a serial
  // machine driven through the same randomized attach/detach, mask and MBA
  // churn schedule agree on every telemetry field every quantum, and on
  // the full solver-stat vector at the end. Multi-phase catalog apps keep
  // phases drifting underneath, so snapshots keep going stale and being
  // retaken; churn keeps disarming the solve cache, so the fallback path
  // is exercised too.
  const auto& catalog = default_catalog();
  Machine a{MachineConfig{}};
  Machine b{MachineConfig{}};
  MachineBatch batch;
  const unsigned lane = batch.add(a);
  const unsigned cores = a.num_cores();
  const unsigned ways = a.num_ways();

  util::Xoshiro256 rng(0xBA7C42ULL);
  std::vector<bool> occupied(cores, false);
  for (unsigned c = 0; c < 4; ++c) {
    const AppProfile* app = &catalog.at(c * 7);
    a.attach(c, app);
    b.attach(c, app);
    occupied[c] = true;
  }

  std::uint64_t steps = 0;
  for (int round = 0; round < 40; ++round) {
    const unsigned core = static_cast<unsigned>(rng.below(cores));
    switch (rng.below(4)) {
      case 0: {  // attach or detach
        if (occupied[core]) {
          a.detach(core);
          b.detach(core);
          occupied[core] = false;
        } else {
          const AppProfile* app =
              &catalog.at(static_cast<std::size_t>(rng.below(59)));
          a.attach(core, app);
          b.attach(core, app);
          occupied[core] = true;
        }
        break;
      }
      case 1: {  // repartition
        const unsigned width = 1 + static_cast<unsigned>(rng.below(ways));
        const unsigned shift =
            static_cast<unsigned>(rng.below(ways - width + 1));
        const WayMask mask = WayMask::span(shift, width);
        a.set_fill_mask(core, mask);
        b.set_fill_mask(core, mask);
        break;
      }
      case 2: {  // MBA throttle
        const double fraction =
            rng.below(3) == 0 ? 1.0 : rng.uniform(0.2, 1.0);
        a.set_mem_throttle(core, fraction);
        b.set_mem_throttle(core, fraction);
        break;
      }
      default:
        break;  // extra-long settle stretch
    }

    const std::uint64_t quanta = 50 + rng.below(250);
    for (std::uint64_t q = 0; q < quanta; ++q) {
      batch.step(lane);
      b.step();
      ++steps;
      expect_machines_identical(a, b, steps);
      if (::testing::Test::HasFatalFailure() ||
          ::testing::Test::HasNonfatalFailure()) {
        return;  // first divergence pinpoints the step; don't spam
      }
    }
  }

  expect_solver_stats_equal(a.solver_stats(), b.solver_stats());
  // The schedule must have exercised both batch paths.
  EXPECT_GT(batch.stats().fused_quanta, 0u);
  EXPECT_GT(batch.stats().fallback_steps, 0u);
  EXPECT_GT(batch.stats().snapshots, 1u);
}

TEST(MachineBatch, ConfigOffNeverFusesAndStaysIdentical) {
  // batch_stepping = false is the escape hatch: every batched step must
  // delegate to Machine::step (fused_quanta stays 0) and remain identical.
  const auto profiles = single_phase_profiles();
  MachineConfig off{};
  off.batch_stepping = false;
  Machine a{off}, b{off};
  MachineBatch batch;
  for (unsigned c = 0; c < 10; ++c) {
    a.attach(c, &profiles[c]);
    b.attach(c, &profiles[c]);
  }
  const unsigned lane = batch.add(a);
  for (std::uint64_t q = 1; q <= 300; ++q) {
    batch.step(lane);
    b.step();
    expect_machines_identical(a, b, q);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
  }
  EXPECT_EQ(batch.stats().fused_quanta, 0u);
  EXPECT_EQ(batch.stats().snapshots, 0u);
  EXPECT_EQ(batch.stats().fallback_steps, 300u);
  expect_solver_stats_equal(a.solver_stats(), b.solver_stats());
}

TEST(MachineBatch, EnvEscapeHatchDisablesBatchStepping) {
  ASSERT_EQ(setenv("DICER_NO_BATCH", "1", 1), 0);
  MachineConfig config{};
  EXPECT_FALSE(batch_stepping_enabled(config));
  Machine m{config};
  unsetenv("DICER_NO_BATCH");
  EXPECT_FALSE(m.config().batch_stepping);

  // "" and "0" mean "not disabled", mirroring DICER_NO_SOLVER_SHORTCUTS.
  ASSERT_EQ(setenv("DICER_NO_BATCH", "0", 1), 0);
  EXPECT_TRUE(batch_stepping_enabled(config));
  Machine still_on{config};
  unsetenv("DICER_NO_BATCH");
  EXPECT_TRUE(still_on.config().batch_stepping);
  EXPECT_TRUE(batch_stepping_enabled(config));
}

TEST(MachineBatch, AddingAMachineTwiceThrows) {
  Machine m{MachineConfig{}};
  MachineBatch batch;
  batch.add(m);
  EXPECT_THROW(batch.add(m), std::logic_error);
  MachineBatch other;
  EXPECT_THROW(other.add(m), std::logic_error);
}

TEST(MachineBatch, MachineIsReusableAfterBatchDies) {
  // The destructor unhooks the shared phase table: the machine must keep
  // stepping (and keep matching a serial twin) after its batch is gone.
  const auto profiles = single_phase_profiles();
  Machine a{MachineConfig{}}, b{MachineConfig{}};
  for (unsigned c = 0; c < 10; ++c) {
    a.attach(c, &profiles[c]);
    b.attach(c, &profiles[c]);
  }
  {
    MachineBatch batch;
    const unsigned lane = batch.add(a);
    for (int q = 0; q < 100; ++q) {
      batch.step(lane);
      b.step();
    }
  }
  MachineBatch second;
  const unsigned lane = second.add(a);  // re-enrollable once unhooked
  for (std::uint64_t q = 1; q <= 100; ++q) {
    second.step(lane);
    b.step();
    expect_machines_identical(a, b, q);
  }
  // Enrolled mid-life with an armed cache: fuses without a fallback step.
  EXPECT_EQ(second.stats().fused_quanta, 100u);
}

TEST(MachineBatch, BulkIntervalCommitsMatchSerialExactly) {
  // run_for/run_until commit whole within-budget chunks through fused_run
  // (register-resident accumulators, no per-quantum boundary checks) — the
  // call shape both the sweep and the fleet data plane drive. A batched
  // machine advanced one control interval at a time must match a serial
  // machine advanced identically, across phase boundaries, whole-run
  // restarts and interval-edge actuations, bit for bit.
  const auto& catalog = default_catalog();
  Machine a{MachineConfig{}};
  Machine b{MachineConfig{}};
  MachineBatch batch;
  const unsigned lane = batch.add(a);
  const unsigned ways = a.num_ways();
  for (unsigned c = 0; c < a.num_cores(); ++c) {
    const AppProfile* app = &catalog.at((c * 3) % 59);
    a.attach(c, app);
    b.attach(c, app);
  }

  util::Xoshiro256 rng(0x0B51D1AULL);
  const double intervals[] = {0.1, 1.0, 0.05, 0.37, 2.5};
  for (int it = 0; it < 120; ++it) {
    const double interval = intervals[it % 5];
    batch.run_for(lane, interval);
    b.run_for(interval);
    expect_machines_identical(a, b, static_cast<std::uint64_t>(it));
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
    if (it % 9 == 0) {  // policies actuate between intervals, not within
      const unsigned core = static_cast<unsigned>(rng.below(a.num_cores()));
      const unsigned width = 1 + static_cast<unsigned>(rng.below(ways));
      const WayMask mask = WayMask::span(0, width);
      a.set_fill_mask(core, mask);
      b.set_fill_mask(core, mask);
    }
  }
  // run_until across the same machinery, to an interval-unaligned target.
  const double target = a.time_sec() + 3.33;
  batch.run_until(lane, target);
  b.run_until(target);
  expect_machines_identical(a, b, 999);
  expect_solver_stats_equal(a.solver_stats(), b.solver_stats());
  // The schedule must actually ride the fused fast path (multi-phase
  // catalog apps plus interval-edge actuations keep the fallback path
  // busy too, so this is a floor, not a ratio).
  EXPECT_GT(batch.stats().fused_quanta, 1000u);
}

TEST(MachineBatch, RunForAndRunUntilMatchSerialRounding) {
  const auto profiles = single_phase_profiles();
  Machine a{MachineConfig{}}, b{MachineConfig{}};
  MachineBatch batch;
  for (unsigned c = 0; c < 10; ++c) {
    a.attach(c, &profiles[c]);
    b.attach(c, &profiles[c]);
  }
  const unsigned lane = batch.add(a);

  // Fractional / sub-quantum / exact spans all round like Machine::run_for.
  for (const double span : {0.25, 0.001, 0.10000000000000001, 1.0}) {
    batch.run_for(lane, span);
    b.run_for(span);
    ASSERT_EQ(a.time_sec(), b.time_sec()) << "span " << span;
    ASSERT_EQ(a.solver_stats().quanta, b.solver_stats().quanta)
        << "span " << span;
  }
  // run_until never overshoots; a boundary already reached is a no-op.
  for (const double t :
       {a.time_sec() + 0.5, a.time_sec() + 0.5, a.time_sec() + 0.123}) {
    batch.run_until(lane, t);
    b.run_until(t);
    ASSERT_EQ(a.time_sec(), b.time_sec()) << "t " << t;
  }
  expect_machines_identical(a, b, a.solver_stats().quanta);
}

}  // namespace
}  // namespace dicer::sim
