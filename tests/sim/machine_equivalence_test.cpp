// Property test for the convergence shortcuts: a Machine with the
// steady-state replay + bit-stable early exit enabled must be
// bit-indistinguishable from one with them disabled, under arbitrary
// actuator churn. Two machines are driven through the same randomized
// schedule of attach/detach, fill-mask changes, MBA throttles and long
// settle stretches (so phases drift underneath), and every quantum's
// telemetry is compared with exact floating-point equality — not NEAR:
// the shortcuts' contract is byte-identity, and the sweep cache and
// golden figures depend on it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/cache/way_mask.hpp"
#include "sim/core/catalog.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace dicer::sim {
namespace {

void expect_machines_identical(Machine& a, Machine& b, std::uint64_t step) {
  ASSERT_EQ(a.time_sec(), b.time_sec()) << "step " << step;
  EXPECT_EQ(a.last_link_utilisation(), b.last_link_utilisation())
      << "step " << step;
  EXPECT_EQ(a.last_link_traffic(), b.last_link_traffic()) << "step " << step;
  for (unsigned c = 0; c < a.num_cores(); ++c) {
    const auto& ta = a.telemetry(c);
    const auto& tb = b.telemetry(c);
    EXPECT_EQ(ta.instructions, tb.instructions)
        << "core " << c << " step " << step;
    EXPECT_EQ(ta.active_cycles, tb.active_cycles)
        << "core " << c << " step " << step;
    EXPECT_EQ(ta.mem_bytes, tb.mem_bytes) << "core " << c << " step " << step;
    EXPECT_EQ(ta.occupancy_bytes, tb.occupancy_bytes)
        << "core " << c << " step " << step;
    EXPECT_EQ(ta.completions, tb.completions)
        << "core " << c << " step " << step;
    EXPECT_EQ(ta.last_quantum_ipc, tb.last_quantum_ipc)
        << "core " << c << " step " << step;
  }
}

TEST(MachineEquivalence, ShortcutsAreBitIdenticalUnderRandomChurn) {
  const auto& catalog = default_catalog();
  MachineConfig with{}, without{};
  without.solver_shortcuts = false;
  Machine a{with}, b{without};
  const unsigned cores = a.num_cores();
  const unsigned ways = a.num_ways();

  util::Xoshiro256 rng(0xD1CE2024ULL);
  std::vector<bool> occupied(cores, false);

  // Start with a few tenants so the first settle stretch has work.
  for (unsigned c = 0; c < 4; ++c) {
    const AppProfile* app = &catalog.at(c * 7);
    a.attach(c, app);
    b.attach(c, app);
    occupied[c] = true;
  }

  std::uint64_t steps = 0;
  for (int round = 0; round < 60; ++round) {
    // One random actuator mutation, applied to both machines.
    const unsigned core = static_cast<unsigned>(rng.below(cores));
    switch (rng.below(4)) {
      case 0: {  // attach or detach
        if (occupied[core]) {
          a.detach(core);
          b.detach(core);
          occupied[core] = false;
        } else {
          const AppProfile* app =
              &catalog.at(static_cast<std::size_t>(rng.below(59)));
          a.attach(core, app);
          b.attach(core, app);
          occupied[core] = true;
        }
        break;
      }
      case 1: {  // repartition: a contiguous mask somewhere in the cache
        const unsigned width = 1 + static_cast<unsigned>(rng.below(ways));
        const unsigned shift =
            static_cast<unsigned>(rng.below(ways - width + 1));
        const WayMask mask = WayMask::span(shift, width);
        a.set_fill_mask(core, mask);
        b.set_fill_mask(core, mask);
        break;
      }
      case 2: {  // MBA throttle (sometimes releasing it entirely)
        const double fraction =
            rng.below(3) == 0 ? 1.0 : rng.uniform(0.2, 1.0);
        a.set_mem_throttle(core, fraction);
        b.set_mem_throttle(core, fraction);
        break;
      }
      default:
        break;  // no mutation: an extra-long settle stretch
    }

    // Settle long enough for the fixed point to go bit-stable and the
    // replay cache to arm and serve (phase changes keep breaking it).
    const std::uint64_t quanta = 50 + rng.below(250);
    for (std::uint64_t q = 0; q < quanta; ++q) {
      a.step();
      b.step();
      ++steps;
      expect_machines_identical(a, b, steps);
      if (::testing::Test::HasFatalFailure() ||
          ::testing::Test::HasNonfatalFailure()) {
        return;  // first divergence pinpoints the step; don't spam
      }
    }
  }

  // The schedule must actually have exercised both paths: the shortcut
  // machine replayed and invalidated, the reference machine never did.
  const auto& sa = a.solver_stats();
  const auto& sb = b.solver_stats();
  EXPECT_GT(sa.replays, 0u);
  EXPECT_GT(sa.stable_solves, 0u);
  EXPECT_GT(sa.invalidations_actuator, 0u);
  EXPECT_GT(sa.invalidations_fingerprint, 0u);
  EXPECT_EQ(sb.replays, 0u);
  EXPECT_EQ(sa.quanta, sb.quanta);
  EXPECT_EQ(sb.solves, sb.quanta);
}

TEST(MachineEquivalence, EnvEscapeHatchDisablesShortcuts) {
  // DICER_NO_SOLVER_SHORTCUTS (any value but "" or "0") must force the
  // solve path even when the config asks for shortcuts — it is the knob
  // the equivalence harness and bisection sessions reach for.
  ASSERT_EQ(setenv("DICER_NO_SOLVER_SHORTCUTS", "1", 1), 0);
  Machine m{MachineConfig{}};
  unsetenv("DICER_NO_SOLVER_SHORTCUTS");
  EXPECT_FALSE(m.config().solver_shortcuts);

  const auto& catalog = default_catalog();
  m.attach(0, &catalog.at(0));
  for (int i = 0; i < 500; ++i) m.step();
  EXPECT_EQ(m.solver_stats().replays, 0u);
  EXPECT_EQ(m.solver_stats().solves, m.solver_stats().quanta);

  ASSERT_EQ(setenv("DICER_NO_SOLVER_SHORTCUTS", "0", 1), 0);
  Machine still_on{MachineConfig{}};
  unsetenv("DICER_NO_SOLVER_SHORTCUTS");
  EXPECT_TRUE(still_on.config().solver_shortcuts);
}

}  // namespace
}  // namespace dicer::sim
