#include "sim/core/app_profile.hpp"

#include <gtest/gtest.h>

namespace dicer::sim {
namespace {

AppProfile two_phase() {
  AppProfile a;
  a.name = "test";
  AppPhase p1;
  p1.name = "first";
  p1.instructions = 100.0;
  p1.api = 0.01;
  AppPhase p2;
  p2.name = "second";
  p2.instructions = 300.0;
  p2.api = 0.02;
  a.phases = {p1, p2};
  return a;
}

TEST(AppProfile, TotalInstructions) {
  EXPECT_DOUBLE_EQ(two_phase().total_instructions(), 400.0);
}

TEST(AppProfile, MeanApiWeightedByLength) {
  // (0.01*100 + 0.02*300) / 400 = 0.0175
  EXPECT_DOUBLE_EQ(two_phase().mean_api(), 0.0175);
}

TEST(AppRuntime, RequiresPhases) {
  AppProfile empty;
  EXPECT_THROW(AppRuntime{&empty}, std::invalid_argument);
  EXPECT_THROW(AppRuntime{nullptr}, std::invalid_argument);
}

TEST(AppRuntime, RejectsNonPositivePhase) {
  AppProfile a;
  AppPhase p;
  p.instructions = 0.0;
  a.phases = {p};
  EXPECT_THROW(AppRuntime{&a}, std::invalid_argument);
}

TEST(AppRuntime, AdvancesWithinPhase) {
  const auto profile = two_phase();
  AppRuntime rt(&profile);
  EXPECT_EQ(rt.advance(50.0), 0u);
  EXPECT_EQ(rt.phase_index(), 0u);
  EXPECT_DOUBLE_EQ(rt.run_progress(), 0.125);
}

TEST(AppRuntime, CrossesPhaseBoundary) {
  const auto profile = two_phase();
  AppRuntime rt(&profile);
  rt.advance(150.0);
  EXPECT_EQ(rt.phase_index(), 1u);
  EXPECT_EQ(rt.current_phase().name, "second");
  EXPECT_DOUBLE_EQ(rt.run_progress(), 150.0 / 400.0);
}

TEST(AppRuntime, ExactBoundaryEntersNextPhase) {
  const auto profile = two_phase();
  AppRuntime rt(&profile);
  rt.advance(100.0);
  EXPECT_EQ(rt.phase_index(), 1u);
  EXPECT_DOUBLE_EQ(rt.run_progress(), 0.25);
}

TEST(AppRuntime, CompletesAndRestarts) {
  const auto profile = two_phase();
  AppRuntime rt(&profile);
  EXPECT_EQ(rt.advance(400.0), 1u);
  EXPECT_EQ(rt.completions(), 1u);
  EXPECT_EQ(rt.phase_index(), 0u);
  EXPECT_DOUBLE_EQ(rt.run_progress(), 0.0);
}

TEST(AppRuntime, MultipleCompletionsInOneAdvance) {
  const auto profile = two_phase();
  AppRuntime rt(&profile);
  EXPECT_EQ(rt.advance(1000.0), 2u);
  EXPECT_EQ(rt.completions(), 2u);
  // 1000 = 2*400 + 200: phase 1, 100 instructions in.
  EXPECT_EQ(rt.phase_index(), 1u);
  EXPECT_DOUBLE_EQ(rt.run_progress(), 0.5);
}

TEST(AppRuntime, TotalRetiredAccumulates) {
  const auto profile = two_phase();
  AppRuntime rt(&profile);
  rt.advance(123.0);
  rt.advance(456.0);
  EXPECT_DOUBLE_EQ(rt.instructions_retired_total(), 579.0);
}

TEST(AppRuntime, ResetRestoresInitialState) {
  const auto profile = two_phase();
  AppRuntime rt(&profile);
  rt.advance(450.0);
  rt.reset();
  EXPECT_EQ(rt.completions(), 0u);
  EXPECT_EQ(rt.phase_index(), 0u);
  EXPECT_DOUBLE_EQ(rt.instructions_retired_total(), 0.0);
  EXPECT_DOUBLE_EQ(rt.run_progress(), 0.0);
}

TEST(AppClass, Names) {
  EXPECT_STREQ(to_string(AppClass::kComputeBound), "compute-bound");
  EXPECT_STREQ(to_string(AppClass::kCacheFriendly), "cache-friendly");
  EXPECT_STREQ(to_string(AppClass::kCacheHungry), "cache-hungry");
  EXPECT_STREQ(to_string(AppClass::kStreaming), "streaming");
}

class AdvanceGranularity : public ::testing::TestWithParam<double> {};

TEST_P(AdvanceGranularity, ProgressIndependentOfStepSize) {
  // Retiring N instructions in many small steps lands in the same place as
  // one big step — the property the quantum-stepped machine relies on.
  const auto profile = two_phase();
  AppRuntime fine(&profile), coarse(&profile);
  const double step = GetParam();
  const double target = 950.0;
  double done = 0.0;
  while (done + step <= target) {
    fine.advance(step);
    done += step;
  }
  fine.advance(target - done);
  coarse.advance(target);
  EXPECT_EQ(fine.completions(), coarse.completions());
  EXPECT_EQ(fine.phase_index(), coarse.phase_index());
  EXPECT_NEAR(fine.run_progress(), coarse.run_progress(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Steps, AdvanceGranularity,
                         ::testing::Values(1.0, 7.0, 33.0, 399.0));

}  // namespace
}  // namespace dicer::sim
