#include "sim/cache/mrc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dicer::sim {
namespace {

constexpr double MB = 1024.0 * 1024.0;

TEST(MissRatioCurve, DefaultIsZeroMiss) {
  MissRatioCurve mrc;
  EXPECT_DOUBLE_EQ(mrc.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(mrc.floor(), 0.0);
  EXPECT_DOUBLE_EQ(mrc.ceiling(), 0.0);
}

TEST(MissRatioCurve, CeilingAtZeroBytes) {
  const auto mrc = MissRatioCurve::single_knee(0.6, 2 * MB, 0.1);
  EXPECT_DOUBLE_EQ(mrc.at(0.0), 0.7);
  EXPECT_DOUBLE_EQ(mrc.ceiling(), 0.7);
}

TEST(MissRatioCurve, FloorAtFullCoverage) {
  const auto mrc = MissRatioCurve::single_knee(0.6, 2 * MB, 0.1);
  EXPECT_DOUBLE_EQ(mrc.at(2 * MB), 0.1);
  EXPECT_DOUBLE_EQ(mrc.at(100 * MB), 0.1);
}

TEST(MissRatioCurve, UniformReuseIsLinear) {
  const auto mrc = MissRatioCurve(0.0, {{1.0, 10 * MB, 1.0}});
  EXPECT_NEAR(mrc.at(5 * MB), 0.5, 1e-12);
  EXPECT_NEAR(mrc.at(2.5 * MB), 0.75, 1e-12);
}

TEST(MissRatioCurve, SkewedReuseGainsEarly) {
  const auto uniform = MissRatioCurve(0.0, {{1.0, 10 * MB, 1.0}});
  const auto skewed = MissRatioCurve(0.0, {{1.0, 10 * MB, 2.0}});
  // At half coverage the skewed curve has already dropped further.
  EXPECT_LT(skewed.at(5 * MB), uniform.at(5 * MB));
}

TEST(MissRatioCurve, NegativeBytesTreatedAsZero) {
  const auto mrc = MissRatioCurve::single_knee(0.5, MB);
  EXPECT_DOUBLE_EQ(mrc.at(-1.0), mrc.at(0.0));
}

TEST(MissRatioCurve, DoubleKneeOrdering) {
  const auto mrc = MissRatioCurve::double_knee(0.3, 2 * MB, 0.4, 20 * MB, 0.05);
  // Covering the small set removes its mass; the big set still misses.
  EXPECT_NEAR(mrc.at(2 * MB), 0.05 + 0.4 * std::pow(0.9, 1.5), 1e-9);
  EXPECT_DOUBLE_EQ(mrc.at(20 * MB), 0.05);
}

TEST(MissRatioCurve, StreamingIsNearlyFlat) {
  const auto mrc = MissRatioCurve::streaming(0.9);
  EXPECT_GE(mrc.at(0.0), 0.9);
  EXPECT_GE(mrc.at(25 * MB), 0.9);
  EXPECT_LE(mrc.at(25 * MB) - mrc.floor(), 1e-9);
}

TEST(MissRatioCurve, ValidationRejectsBadInput) {
  EXPECT_THROW(MissRatioCurve(-0.1, {}), std::invalid_argument);
  EXPECT_THROW(MissRatioCurve(1.1, {}), std::invalid_argument);
  EXPECT_THROW(MissRatioCurve(0.0, {{-0.1, MB, 1.0}}), std::invalid_argument);
  EXPECT_THROW(MissRatioCurve(0.0, {{0.5, 0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(MissRatioCurve(0.0, {{0.5, MB, 0.0}}), std::invalid_argument);
  EXPECT_THROW(MissRatioCurve(0.5, {{0.6, MB, 1.0}}), std::invalid_argument);
}

TEST(MissRatioCurve, MassExactlyOneAccepted) {
  EXPECT_NO_THROW(MissRatioCurve(0.4, {{0.6, MB, 1.0}}));
}

TEST(MissRatioCurve, BytesForMissRatioInverts) {
  const auto mrc = MissRatioCurve::single_knee(0.6, 8 * MB, 0.05, 1.0);
  const double target = 0.25;
  const double bytes = mrc.bytes_for_miss_ratio(target, 32 * MB);
  EXPECT_NEAR(mrc.at(bytes), target, 1e-6);
}

TEST(MissRatioCurve, BytesForMissRatioEdgeCases) {
  const auto mrc = MissRatioCurve::single_knee(0.6, 8 * MB, 0.05);
  // Already satisfied at zero.
  EXPECT_DOUBLE_EQ(mrc.bytes_for_miss_ratio(0.9, 32 * MB), 0.0);
  // Unreachable below the floor.
  EXPECT_DOUBLE_EQ(mrc.bytes_for_miss_ratio(0.01, 32 * MB), 32 * MB);
}

TEST(MissRatioCurve, FootprintSumsComponents) {
  const auto mrc = MissRatioCurve::double_knee(0.3, 2 * MB, 0.4, 20 * MB);
  EXPECT_DOUBLE_EQ(mrc.footprint_bytes(), 22 * MB);
}

TEST(MissRatioCurve, StreamFraction) {
  const auto mrc = MissRatioCurve::single_knee(0.6, MB, 0.2);
  EXPECT_NEAR(mrc.stream_fraction(), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(MissRatioCurve().stream_fraction(), 0.0);
}

struct CurveCase {
  const char* name;
  MissRatioCurve mrc;
};

class MrcProperty : public ::testing::TestWithParam<int> {
 public:
  static std::vector<MissRatioCurve> curves() {
    return {
        MissRatioCurve::streaming(0.92),
        MissRatioCurve::single_knee(0.6, 3 * MB, 0.03),
        MissRatioCurve::single_knee(0.77, 0.5 * MB, 0.03, 2.0),
        MissRatioCurve::double_knee(0.28, 3.5 * MB, 0.42, 48 * MB, 0.02),
        MissRatioCurve(0.1, {{0.2, MB, 1.0}, {0.3, 4 * MB, 1.5},
                             {0.1, 20 * MB, 2.5}}),
    };
  }
};

TEST_P(MrcProperty, MonotoneNonIncreasingAndBounded) {
  const auto mrc = curves()[static_cast<std::size_t>(GetParam())];
  double prev = 1.1;
  for (double x = 0.0; x <= 64 * MB; x += 0.25 * MB) {
    const double m = mrc.at(x);
    EXPECT_LE(m, prev + 1e-12) << "at " << x;
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
    prev = m;
  }
  EXPECT_NEAR(mrc.at(1e15), mrc.floor(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Curves, MrcProperty, ::testing::Range(0, 5));

TEST(EmpiricalMrc, InterpolatesLinearly) {
  EmpiricalMrc mrc({{0.0, 1.0}, {10.0, 0.5}, {20.0, 0.1}});
  EXPECT_DOUBLE_EQ(mrc.at(5.0), 0.75);
  EXPECT_DOUBLE_EQ(mrc.at(15.0), 0.3);
}

TEST(EmpiricalMrc, ClampsToEndpoints) {
  EmpiricalMrc mrc({{10.0, 0.8}, {20.0, 0.2}});
  EXPECT_DOUBLE_EQ(mrc.at(0.0), 0.8);
  EXPECT_DOUBLE_EQ(mrc.at(100.0), 0.2);
}

TEST(EmpiricalMrc, EmptyMissesEverything) {
  EmpiricalMrc mrc;
  EXPECT_TRUE(mrc.empty());
  EXPECT_DOUBLE_EQ(mrc.at(5.0), 1.0);
}

TEST(EmpiricalMrc, RejectsUnsortedOrOutOfRange) {
  EXPECT_THROW(EmpiricalMrc({{10.0, 0.5}, {5.0, 0.6}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalMrc({{0.0, 1.5}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalMrc({{-1.0, 0.5}}), std::invalid_argument);
}

TEST(EmpiricalMrc, MonotonicityViolationMeasured) {
  EmpiricalMrc good({{0.0, 0.9}, {1.0, 0.5}});
  EXPECT_DOUBLE_EQ(good.monotonicity_violation(), 0.0);
  EmpiricalMrc bad({{0.0, 0.5}, {1.0, 0.7}});
  EXPECT_NEAR(bad.monotonicity_violation(), 0.2, 1e-12);
}

TEST(EmpiricalMrc, SinglePointIsConstantEverywhere) {
  EmpiricalMrc mrc({{10.0, 0.4}});
  EXPECT_EQ(mrc.size(), 1u);
  EXPECT_DOUBLE_EQ(mrc.at(0.0), 0.4);
  EXPECT_DOUBLE_EQ(mrc.at(10.0), 0.4);
  EXPECT_DOUBLE_EQ(mrc.at(1e18), 0.4);
  EXPECT_DOUBLE_EQ(mrc.monotonicity_violation(), 0.0);
}

TEST(EmpiricalMrc, DuplicateXValuesDoNotDivideByZero) {
  // A vertical step: duplicate x is legal (sorted, not strictly), and
  // queries at the shared x must return a finite value from the step, not
  // a 0/0 interpolation.
  EmpiricalMrc mrc({{0.0, 1.0}, {10.0, 0.8}, {10.0, 0.4}, {20.0, 0.2}});
  const double at_step = mrc.at(10.0);
  EXPECT_TRUE(std::isfinite(at_step));
  EXPECT_GE(at_step, 0.4);
  EXPECT_LE(at_step, 0.8);
  // Either side of the step interpolates against the matching endpoint.
  EXPECT_DOUBLE_EQ(mrc.at(5.0), 0.9);
  EXPECT_DOUBLE_EQ(mrc.at(15.0), 0.3);
}

TEST(EmpiricalMrc, QueriesBeyondTheTableClampNotExtrapolate) {
  EmpiricalMrc mrc({{10.0, 0.8}, {20.0, 0.2}});
  // Below the first point: the steep first segment must NOT extrapolate
  // above the first value.
  EXPECT_DOUBLE_EQ(mrc.at(9.999), 0.8);
  EXPECT_DOUBLE_EQ(mrc.at(-5.0), 0.8);
  // Above the last point likewise.
  EXPECT_DOUBLE_EQ(mrc.at(20.001), 0.2);
}

TEST(EmpiricalMrc, MonotonicityViolationPicksTheWorstBump) {
  EmpiricalMrc bumpy({{0.0, 0.6},
                      {1.0, 0.7},    // +0.1
                      {2.0, 0.3},
                      {3.0, 0.55},   // +0.25  <- worst
                      {4.0, 0.5}});
  EXPECT_NEAR(bumpy.monotonicity_violation(), 0.25, 1e-12);
}

}  // namespace
}  // namespace dicer::sim
