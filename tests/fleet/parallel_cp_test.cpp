// The parallel control plane is a speed knob, never a result knob: with
// sharded candidate scoring and the optimistic arrival pipeline on, every
// decision, the placement log and every export must be byte-identical to
// the serial scorer at any --cp-jobs — including under adversarial
// arrival bursts where most of an epoch's speculative scores go stale.
// (Suite name `ParallelCp` is pinned by the TSan CI shard's test regex.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/cluster.hpp"
#include "fleet/placement.hpp"
#include "fleet/placement_index.hpp"
#include "sim/core/catalog.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace_counter_sink.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

#include "../../examples/fleet_common.hpp"

namespace dicer::fleet {
namespace {

/// Scoped setenv/unsetenv (same idiom as the thread-pool tests).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

FleetConfig churny_config(const std::string& placement) {
  FleetConfig fc;
  fc.num_machines = 64;  // 4 shards at kMinMachinesPerShard = 16
  fc.cores_used = 4;
  fc.placement = placement;
  fc.migrate_after = 1;  // migrations exercise place_indexed mid-epoch
  fc.churn.arrival_rate_per_sec = 30.0;  // multi-arrival epochs: the
  fc.churn.mean_lifetime_sec = 3.0;      // pipeline sees real queues
  fc.churn.seed = 17;
  fc.seed = 11;
  fc.jobs = 1;  // data plane serial: the pool exists for the CP alone
  return fc;
}

std::string log_string(const std::vector<PlacementRecord>& log) {
  std::string out;
  for (const auto& r : log) {
    out += std::to_string(r.tenant_id) + ',' + std::to_string(r.epoch) +
           ',' + r.app + ',' + (r.accepted ? '1' : '0') + ',' +
           (r.migration ? '1' : '0') + ',' + std::to_string(r.machine) +
           ',' + std::to_string(r.core) + '\n';
  }
  return out;
}

struct RunOutput {
  std::string csv;
  std::string log;
  std::string prometheus;
  std::string jsonl;
  std::vector<EpochMetrics> rows;
};

RunOutput run_config(FleetConfig fc, std::uint64_t epochs = 5) {
  trace::Tracer tracer;
  telemetry::Registry registry;
  auto sink = std::make_shared<telemetry::TraceCounterSink>(registry);
  tracer.add_sink(sink);
  fc.tracer = &tracer;
  fc.metrics = &registry;
  Cluster cluster(fc, sim::default_catalog());
  RunOutput out;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    out.rows.push_back(cluster.step_epoch());
    out.csv += epoch_csv_row(out.rows.back()) + "\n";
    out.jsonl += epoch_jsonl_row(out.rows.back()) + "\n";
  }
  tracer.remove_sink(sink);
  out.log = log_string(cluster.placement_log());
  out.prometheus = telemetry::to_prometheus(registry);
  return out;
}

void expect_same_output(const RunOutput& a, const RunOutput& b,
                        const std::string& what) {
  EXPECT_EQ(a.csv, b.csv) << what;
  EXPECT_EQ(a.log, b.log) << what;
  EXPECT_EQ(a.prometheus, b.prometheus) << what;
  EXPECT_EQ(a.jsonl, b.jsonl) << what;
}

// The headline equivalence: for every engine, CSV rows, the placement log
// (decision-by-decision, migrations included) and both metrics exports are
// byte-identical across cp_jobs 1 / 2 / 8 and with the feature off.
TEST(ParallelCp, ByteIdenticalAcrossCpJobsAllEngines) {
  for (const auto& engine : known_placements()) {
    FleetConfig ref_cfg = churny_config(engine);
    ref_cfg.parallel_control_plane = false;
    const RunOutput ref = run_config(ref_cfg);
    EXPECT_FALSE(ref.log.empty()) << engine;

    for (const unsigned cp_jobs : {1u, 2u, 8u}) {
      FleetConfig fc = churny_config(engine);
      fc.cp_jobs = cp_jobs;
      expect_same_output(ref, run_config(fc),
                         engine + " cp_jobs=" + std::to_string(cp_jobs));
    }
  }
}

// Adversarial pipeline stress: arrivals far beyond capacity on a tiny
// fleet, so machines fill and close mid-queue, rejections occur, and
// nearly every commit invalidates later speculative scores. The committed
// sequence must still replay the serial path byte for byte.
TEST(ParallelCp, HighConflictArrivalBurstsStayByteIdentical) {
  FleetConfig fc = churny_config("mrc");
  fc.num_machines = 48;  // 3 shards
  fc.cores_used = 3;     // 96 BE slots fleet-wide
  fc.churn.arrival_rate_per_sec = 400.0;
  fc.churn.mean_lifetime_sec = 2.0;
  fc.cp_jobs = 8;

  FleetConfig off = fc;
  off.parallel_control_plane = false;

  const RunOutput par = run_config(fc, 4);
  const RunOutput ser = run_config(off, 4);
  expect_same_output(par, ser, "high-conflict burst");

  std::uint64_t rejected = 0;
  for (const auto& r : par.rows) rejected += r.rejected;
  EXPECT_GT(rejected, 0u) << "stress config admitted everything — no "
                             "close-mid-queue conflicts exercised";
}

// The escape hatch: DICER_NO_PARALLEL_CP forces serial scoring no matter
// what the config asks for, and (being a pure speed knob) changes nothing.
TEST(ParallelCp, EnvHatchForcesSerialAndMatches) {
  FleetConfig fc = churny_config("mrc");
  fc.cp_jobs = 8;
  RunOutput hatched;
  {
    EnvGuard guard("DICER_NO_PARALLEL_CP", "1");
    hatched = run_config(fc);
  }
  FleetConfig off = churny_config("mrc");
  off.parallel_control_plane = false;
  expect_same_output(hatched, run_config(off), "env hatch");
}

// Shadow oracle for the speculative-score invalidation machinery: drive a
// parallel engine and a serial engine over two identical indexes through
// randomized detach churn, arrival bursts (place_arrivals) and interleaved
// single decisions with an exclude — decisions and resulting occupancy
// must track exactly.
TEST(ParallelCp, PipelineMatchesSequentialUnderRandomChurn) {
  const auto& catalog = sim::default_catalog();
  const AppDirectory dir(catalog, sim::MachineConfig{});
  constexpr unsigned kMachines = 96;
  constexpr unsigned kBeSlots = 3;

  PlacementIndex par_index(dir, kBeSlots);
  PlacementIndex seq_index(dir, kBeSlots);
  util::Xoshiro256 boot_rng(99);
  for (unsigned m = 0; m < kMachines; ++m) {
    const auto* hp = &catalog.at(boot_rng.below(catalog.size()));
    par_index.add_machine(hp);
    seq_index.add_machine(hp);
  }

  util::ThreadPool pool(4);
  MrcBestFitPlacement par_engine(dir);
  par_engine.set_parallel(&pool, 4);
  MrcBestFitPlacement seq_engine(dir);

  // Occupancy mirrored outside the indexes so detach churn can pick busy
  // cores and commits can admit at the lowest free core.
  auto lowest_free = [&](const PlacementIndex& index, unsigned m) {
    for (unsigned c = 1; c <= kBeSlots; ++c) {
      if (index.tenant(m, c) == nullptr) return c;
    }
    throw std::logic_error("no free core on accepted machine");
  };
  auto admit_commit = [&](PlacementIndex& index,
                          std::vector<std::optional<unsigned>>& decisions) {
    return [&](std::size_t, std::optional<unsigned> dest) {
      decisions.push_back(dest);
      if (dest) index.admit(*dest, lowest_free(index, *dest), &catalog.at(0));
    };
  };

  util::Xoshiro256 rng(4242);
  for (int round = 0; round < 25; ++round) {
    // Random detaches (same on both indexes) reopen machines.
    for (int d = 0; d < 8; ++d) {
      const auto m = static_cast<unsigned>(rng.below(kMachines));
      const auto c = 1 + static_cast<unsigned>(rng.below(kBeSlots));
      if (par_index.tenant(m, c) != nullptr) {
        par_index.detach(m, c);
        seq_index.detach(m, c);
      }
    }

    // A burst through the pipeline vs the sequential reference loop.
    const std::size_t burst = rng.below(12);
    std::vector<const sim::AppProfile*> apps;
    for (std::size_t j = 0; j < burst; ++j) {
      apps.push_back(&catalog.at(rng.below(catalog.size())));
    }
    std::vector<std::optional<unsigned>> par_dec, seq_dec;
    par_engine.place_arrivals(apps, par_index,
                              admit_commit(par_index, par_dec));
    auto seq_commit = admit_commit(seq_index, seq_dec);
    for (std::size_t j = 0; j < apps.size(); ++j) {
      seq_commit(j, seq_engine.place_indexed(*apps[j], seq_index,
                                             std::nullopt));
    }
    ASSERT_EQ(par_dec, seq_dec) << "round " << round;

    // An interleaved excluded decision (the migration shape).
    const auto excl = static_cast<unsigned>(rng.below(kMachines));
    const auto* app = &catalog.at(rng.below(catalog.size()));
    EXPECT_EQ(par_engine.place_indexed(*app, par_index, excl),
              seq_engine.place_indexed(*app, seq_index, excl))
        << "round " << round;

    for (unsigned m = 0; m < kMachines; ++m) {
      ASSERT_EQ(par_index.free_cores(m), seq_index.free_cores(m))
          << "round " << round << " machine " << m;
    }
  }
}

// The commit contract is audited, not assumed: a callback that accepts a
// tenant but fails to admit it (or admits twice) would silently invalidate
// later speculative scores — the pipeline must throw instead.
TEST(ParallelCp, PipelineAuditsCommitContract) {
  const auto& catalog = sim::default_catalog();
  const AppDirectory dir(catalog, sim::MachineConfig{});
  PlacementIndex index(dir, 2);
  for (unsigned m = 0; m < 64; ++m) {
    index.add_machine(&catalog.at(m % catalog.size()));
  }
  util::ThreadPool pool(2);
  MrcBestFitPlacement engine(dir);
  engine.set_parallel(&pool, 4);

  const std::vector<const sim::AppProfile*> apps{&catalog.at(1),
                                                 &catalog.at(2)};
  // Accepting commit that never admits: one mutation short.
  EXPECT_THROW(
      engine.place_arrivals(apps, index,
                            [&](std::size_t, std::optional<unsigned>) {}),
      std::logic_error);
  // Over-eager commit: admits the tenant and a stowaway.
  EXPECT_THROW(engine.place_arrivals(
                   apps, index,
                   [&](std::size_t, std::optional<unsigned> dest) {
                     if (dest) {
                       index.admit(*dest, 1, &catalog.at(3));
                       index.admit(*dest, 2, &catalog.at(4));
                     }
                   }),
               std::logic_error);
}

// --p2c-d is a real knob: every fan-out stays cp_jobs-invariant, and d = 1
// must behave exactly like one seeded draw per decision.
TEST(ParallelCp, P2cChoicesStayJobsInvariant) {
  for (const unsigned d : {1u, 5u, 16u}) {
    FleetConfig ref_cfg = churny_config("mrc-p2c");
    ref_cfg.p2c_choices = d;
    ref_cfg.parallel_control_plane = false;
    const RunOutput ref = run_config(ref_cfg, 4);
    for (const unsigned cp_jobs : {1u, 8u}) {
      FleetConfig fc = churny_config("mrc-p2c");
      fc.p2c_choices = d;
      fc.cp_jobs = cp_jobs;
      expect_same_output(ref, run_config(fc, 4),
                         "d=" + std::to_string(d) +
                             " cp_jobs=" + std::to_string(cp_jobs));
    }
  }
}

TEST(ParallelCp, P2cValidatesChoices) {
  const auto& catalog = sim::default_catalog();
  const AppDirectory dir(catalog, sim::MachineConfig{});
  EXPECT_THROW(MrcP2cPlacement(dir, 7, 0), std::invalid_argument);
  EXPECT_THROW(make_placement("mrc-p2c", dir, 7, 0), std::invalid_argument);
  EXPECT_NO_THROW(make_placement("mrc-p2c", dir, 7, 1));
  // Engines that ignore the knob accept any value, including 0.
  EXPECT_NO_THROW(make_placement("mrc", dir, 7, 0));
}

TEST(ParallelCp, CliFlagsParseAndValidate) {
  {
    const char* argv[] = {"fleet_sim", "--cp-jobs", "8", "--p2c-d", "7",
                          "--parallel-cp", "false"};
    const util::CliArgs args(7, argv);
    const FleetConfig fc = examples::fleet_config_from(args);
    EXPECT_EQ(fc.cp_jobs, 8u);
    EXPECT_EQ(fc.p2c_choices, 7u);
    EXPECT_FALSE(fc.parallel_control_plane);
  }
  {
    const char* argv[] = {"fleet_sim"};
    const util::CliArgs args(1, argv);
    const FleetConfig fc = examples::fleet_config_from(args);
    EXPECT_EQ(fc.cp_jobs, 0u);
    EXPECT_EQ(fc.p2c_choices, MrcP2cPlacement::kChoices);
    EXPECT_TRUE(fc.parallel_control_plane);
  }
  for (const char* bad : {"0", "-3"}) {
    const char* argv[] = {"fleet_sim", "--p2c-d", bad};
    const util::CliArgs args(3, argv);
    EXPECT_THROW(examples::fleet_config_from(args), util::CliError)
        << "--p2c-d " << bad;
  }
}

// The split control-plane timers: the parent scope survives (profile
// continuity) and the three phase children record alongside it.
TEST(ParallelCp, PhaseTimersRecorded) {
  auto count_of = [](const std::string& label) {
    for (const auto& [name, stat] : trace::TimerRegistry::global().snapshot()) {
      if (name == label) return stat.count;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t parent = count_of("fleet.placement");
  const std::uint64_t departures = count_of("fleet.departures");
  const std::uint64_t migrations = count_of("fleet.migrations");
  const std::uint64_t arrivals = count_of("fleet.arrivals");

  FleetConfig fc = churny_config("mrc");
  fc.num_machines = 16;
  Cluster cluster(fc, sim::default_catalog());
  cluster.step_epoch();

  EXPECT_EQ(count_of("fleet.placement"), parent + 1);
  EXPECT_EQ(count_of("fleet.departures"), departures + 1);
  EXPECT_EQ(count_of("fleet.migrations"), migrations + 1);
  EXPECT_EQ(count_of("fleet.arrivals"), arrivals + 1);
}

}  // namespace
}  // namespace dicer::fleet
