#include "fleet/placement_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/cluster.hpp"
#include "fleet/placement.hpp"
#include "sim/core/catalog.hpp"
#include "util/rng.hpp"

namespace dicer::fleet {
namespace {

FleetConfig small_config() {
  FleetConfig fc;
  fc.num_machines = 16;
  fc.cores_used = 4;
  fc.churn.arrival_rate_per_sec = 6.0;
  fc.churn.mean_lifetime_sec = 4.0;
  fc.churn.seed = 17;
  fc.seed = 11;
  fc.jobs = 1;
  return fc;
}

/// Brute-force shadow of the index: the same tenant grid kept as plain
/// vectors, every derived quantity recomputed from scratch.
struct Shadow {
  unsigned be_slots = 0;
  std::vector<std::vector<const sim::AppProfile*>> grid;  ///< [machine][core]

  unsigned free_cores(unsigned m) const {
    unsigned n = 0;
    for (unsigned c = 1; c <= be_slots; ++c) n += grid[m][c] ? 0u : 1u;
    return n;
  }
  std::vector<unsigned> open() const {
    std::vector<unsigned> out;
    for (unsigned m = 0; m < grid.size(); ++m) {
      if (free_cores(m) > 0) out.push_back(m);
    }
    return out;
  }
  std::optional<unsigned> least_loaded(std::optional<unsigned> excl) const {
    std::optional<unsigned> best;
    unsigned best_free = 0;
    for (unsigned m = 0; m < grid.size(); ++m) {
      if (excl && *excl == m) continue;
      const unsigned f = free_cores(m);
      if (f == 0) continue;
      if (!best || f > best_free) {
        best = m;
        best_free = f;
      }
    }
    return best;
  }
};

/// Every queryable fact of `index` against the scratch rebuild `shadow`.
void expect_matches(const PlacementIndex& index, const Shadow& shadow) {
  ASSERT_EQ(index.size(), shadow.grid.size());
  const auto open = shadow.open();
  EXPECT_EQ(index.open_count(), open.size());
  std::uint64_t rank = 0;
  for (unsigned m = 0; m < shadow.grid.size(); ++m) {
    EXPECT_EQ(index.free_cores(m), shadow.free_cores(m)) << "machine " << m;
    EXPECT_EQ(index.is_open(m), shadow.free_cores(m) > 0);
    EXPECT_EQ(index.open_rank(m), rank) << "machine " << m;
    if (shadow.free_cores(m) > 0) ++rank;
    for (unsigned c = 1; c <= shadow.be_slots; ++c) {
      EXPECT_EQ(index.tenant(m, c), shadow.grid[m][c]);
    }
  }
  for (std::uint64_t k = 0; k < open.size(); ++k) {
    EXPECT_EQ(index.nth_open(k), open[k]) << "rank " << k;
  }
  EXPECT_EQ(index.least_loaded(), shadow.least_loaded(std::nullopt));
  if (!shadow.grid.empty()) {
    EXPECT_EQ(index.least_loaded(0u), shadow.least_loaded(0u));
    const auto last = static_cast<unsigned>(shadow.grid.size() - 1);
    EXPECT_EQ(index.least_loaded(last), shadow.least_loaded(last));
  }
}

// The core oracle: a randomized admit/detach churn where, after *every*
// mutation, the incrementally-maintained index agrees with a from-scratch
// rebuild on every machine's tenants, the open-set order statistics and
// the least-loaded winner.
TEST(PlacementIndex, MatchesScratchRebuildUnderRandomChurn) {
  const auto& catalog = sim::default_catalog();
  const sim::MachineConfig mc;
  const AppDirectory dir(catalog, mc);
  constexpr unsigned kMachines = 23;
  constexpr unsigned kBeSlots = 3;

  PlacementIndex index(dir, kBeSlots);
  Shadow shadow;
  shadow.be_slots = kBeSlots;
  util::Xoshiro256 rng(12345);
  for (unsigned m = 0; m < kMachines; ++m) {
    const auto* hp = &catalog.at(rng.below(catalog.size()));
    EXPECT_EQ(index.add_machine(hp), m);
    EXPECT_EQ(index.hp(m), hp);
    shadow.grid.emplace_back(kBeSlots + 1, nullptr);
    expect_matches(index, shadow);
  }

  for (int step = 0; step < 600; ++step) {
    const auto m = static_cast<unsigned>(rng.below(kMachines));
    const auto c = 1 + static_cast<unsigned>(rng.below(kBeSlots));
    if (shadow.grid[m][c]) {
      index.detach(m, c);
      shadow.grid[m][c] = nullptr;
    } else {
      const auto* app = &catalog.at(rng.below(catalog.size()));
      index.admit(m, c, app);
      shadow.grid[m][c] = app;
    }
    expect_matches(index, shadow);
  }
}

TEST(PlacementIndex, ValidatesArguments) {
  const auto& catalog = sim::default_catalog();
  const AppDirectory dir(catalog, sim::MachineConfig{});
  EXPECT_THROW(PlacementIndex(dir, 0), std::invalid_argument);

  PlacementIndex index(dir, 2);
  index.add_machine(&catalog.at(0));
  EXPECT_THROW(index.free_cores(1), std::out_of_range);
  EXPECT_THROW(index.admit(0, 0, &catalog.at(1)), std::logic_error);
  EXPECT_THROW(index.admit(0, 3, &catalog.at(1)), std::logic_error);
  EXPECT_THROW(index.detach(0, 1), std::logic_error);  // core already free
  index.admit(0, 1, &catalog.at(1));
  EXPECT_THROW(index.admit(0, 1, &catalog.at(2)), std::logic_error);
  EXPECT_THROW(index.nth_open(1), std::out_of_range);
}

TEST(PlacementIndex, TenantSignalsAreCoreOrdered) {
  const auto& catalog = sim::default_catalog();
  const AppDirectory dir(catalog, sim::MachineConfig{});
  PlacementIndex index(dir, 3);
  index.add_machine(&catalog.at(0));
  // Admit out of core order; the signal list must come back in core order
  // (the operand order the MRC scorer's float sums depend on).
  index.admit(0, 3, &catalog.at(5));
  index.admit(0, 1, &catalog.at(9));
  std::vector<const AppSignal*> sigs;
  index.tenant_signals(0, sigs);
  ASSERT_EQ(sigs.size(), 2u);
  EXPECT_EQ(sigs[0], &dir.signal(catalog.at(9).name));
  EXPECT_EQ(sigs[1], &dir.signal(catalog.at(5).name));
}

// Version stamps: mutations must invalidate the cached scores; untouched
// machines must keep theirs.
TEST(PlacementIndex, DirtyScoreProtocolInvalidatesOnMutation) {
  const auto& catalog = sim::default_catalog();
  const AppDirectory dir(catalog, sim::MachineConfig{});
  PlacementIndex index(dir, 2);
  index.add_machine(&catalog.at(0));
  index.add_machine(&catalog.at(1));

  EXPECT_FALSE(index.has_before(0));
  index.set_before(0, 0.75);
  index.set_before(1, 0.5);
  index.set_delta(0, 3, -0.01);
  EXPECT_TRUE(index.has_before(0));
  EXPECT_TRUE(index.has_delta(0, 3));
  EXPECT_FALSE(index.has_delta(0, 4));
  EXPECT_DOUBLE_EQ(index.before(0), 0.75);
  EXPECT_DOUBLE_EQ(index.delta(0, 3), -0.01);

  index.admit(0, 1, &catalog.at(2));
  EXPECT_FALSE(index.has_before(0));
  EXPECT_FALSE(index.has_delta(0, 3));
  EXPECT_TRUE(index.has_before(1));  // machine 1 untouched

  index.set_before(0, 0.6);
  EXPECT_TRUE(index.has_before(0));
  index.detach(0, 1);
  EXPECT_FALSE(index.has_before(0));
}

// A long cluster churn run: after every epoch the live index must agree
// with Cluster::views() (the scratch rebuild the historical control plane
// used), and the O(1) tenants_running counter with the per-core scan.
TEST(PlacementIndex, TracksClusterStateAcross200Epochs) {
  FleetConfig fc = small_config();
  fc.churn.arrival_rate_per_sec = 10.0;
  fc.churn.mean_lifetime_sec = 3.0;
  fc.migrate_after = 2;  // exercise the migration path too
  Cluster cluster(fc, sim::default_catalog());
  const PlacementIndex* index = cluster.placement_index();
  ASSERT_NE(index, nullptr);
  for (int e = 0; e < 200; ++e) {
    cluster.step_epoch();
    const auto vs = cluster.views();
    const auto iv = index_views(*index);
    ASSERT_EQ(iv.size(), vs.size());
    std::uint64_t scanned = 0;
    for (std::size_t m = 0; m < vs.size(); ++m) {
      EXPECT_EQ(iv[m].index, vs[m].index);
      EXPECT_EQ(iv[m].hp, vs[m].hp);
      EXPECT_EQ(iv[m].tenants, vs[m].tenants) << "machine " << m;
      EXPECT_EQ(iv[m].free_cores, vs[m].free_cores) << "machine " << m;
      scanned += vs[m].tenants.size();
    }
    EXPECT_EQ(cluster.tenants_running(), scanned);
  }
}

struct RunResult {
  std::string csv;
  std::vector<PlacementRecord> log;
};

RunResult run_fleet(const FleetConfig& fc, std::uint64_t epochs) {
  Cluster cluster(fc, sim::default_catalog());
  RunResult r;
  r.csv = epoch_csv_header() + "\n";
  for (const auto& row : cluster.run(epochs)) {
    r.csv += epoch_csv_row(row) + "\n";
  }
  r.log = cluster.placement_log();
  return r;
}

void expect_same_log(const std::vector<PlacementRecord>& a,
                     const std::vector<PlacementRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant_id, b[i].tenant_id) << "decision " << i;
    EXPECT_EQ(a[i].epoch, b[i].epoch) << "decision " << i;
    EXPECT_EQ(a[i].app, b[i].app) << "decision " << i;
    EXPECT_EQ(a[i].accepted, b[i].accepted) << "decision " << i;
    EXPECT_EQ(a[i].migration, b[i].migration) << "decision " << i;
    EXPECT_EQ(a[i].machine, b[i].machine) << "decision " << i;
    EXPECT_EQ(a[i].core, b[i].core) << "decision " << i;
  }
}

// The tentpole byte-equality contract: for every engine, the placement
// log and the per-epoch CSV are identical with the index on and off —
// same decisions, same tie-breaks, same RNG consumption.
TEST(PlacementIndex, IndexOnOffIsByteIdenticalForEveryEngine) {
  for (const auto& name : known_placements()) {
    FleetConfig fc = small_config();
    fc.placement = name;
    fc.migrate_after = 2;  // the exclude path must match too
    fc.churn.arrival_rate_per_sec = 12.0;
    fc.placement_index = true;
    const RunResult on = run_fleet(fc, 12);
    fc.placement_index = false;
    const RunResult off = run_fleet(fc, 12);
    EXPECT_EQ(on.csv, off.csv) << "engine " << name;
    expect_same_log(on.log, off.log);
  }
}

// mrc-p2c decisions live on the single-threaded control plane: any worker
// count replays the identical log and CSV.
TEST(PlacementIndex, MrcP2cIsDeterministicAtAnyJobs) {
  FleetConfig fc = small_config();
  fc.placement = "mrc-p2c";
  fc.churn.arrival_rate_per_sec = 12.0;
  fc.jobs = 1;
  const RunResult serial = run_fleet(fc, 10);
  fc.jobs = 8;
  const RunResult sharded = run_fleet(fc, 10);
  EXPECT_EQ(serial.csv, sharded.csv);
  expect_same_log(serial.log, sharded.log);
  // And a rebuilt same-config fleet replays the same sampled candidates.
  fc.jobs = 3;
  const RunResult again = run_fleet(fc, 10);
  EXPECT_EQ(serial.csv, again.csv);
  expect_same_log(serial.log, again.log);
}

// mrc-p2c places sensibly: it admits tenants and its decisions stay
// inside the fleet.
TEST(PlacementIndex, MrcP2cPlacesWithinBounds) {
  FleetConfig fc = small_config();
  fc.placement = "mrc-p2c";
  fc.churn.arrival_rate_per_sec = 12.0;
  Cluster cluster(fc, sim::default_catalog());
  cluster.run(8);
  std::uint64_t accepted = 0;
  for (const auto& rec : cluster.placement_log()) {
    if (!rec.accepted) continue;
    ++accepted;
    EXPECT_LT(rec.machine, cluster.num_machines());
    EXPECT_GE(rec.core, 1u);
    EXPECT_LT(rec.core, fc.cores_used);
  }
  EXPECT_GT(accepted, 0u);
}

// The config flag alone (no env var) must also disable the index.
TEST(PlacementIndex, ConfigFlagDisablesIndex) {
  FleetConfig fc = small_config();
  fc.placement_index = false;
  Cluster cluster(fc, sim::default_catalog());
  EXPECT_EQ(cluster.placement_index(), nullptr);
  FleetConfig on = small_config();
  Cluster with(on, sim::default_catalog());
  EXPECT_NE(with.placement_index(), nullptr);
}

}  // namespace
}  // namespace dicer::fleet
