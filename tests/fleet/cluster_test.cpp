#include "fleet/cluster.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/core/catalog.hpp"

namespace dicer::fleet {
namespace {

FleetConfig small_config() {
  FleetConfig fc;
  fc.num_machines = 16;
  fc.cores_used = 4;
  fc.churn.arrival_rate_per_sec = 6.0;
  fc.churn.mean_lifetime_sec = 4.0;
  fc.churn.seed = 17;
  fc.seed = 11;
  fc.jobs = 1;
  return fc;
}

std::string run_csv(const FleetConfig& fc, std::uint64_t epochs) {
  Cluster cluster(fc, sim::default_catalog());
  std::string csv = epoch_csv_header() + "\n";
  for (const auto& row : cluster.run(epochs)) {
    csv += epoch_csv_row(row) + "\n";
  }
  return csv;
}

TEST(Cluster, ValidatesConfig) {
  const auto& catalog = sim::default_catalog();
  FleetConfig fc = small_config();
  fc.num_machines = 0;
  EXPECT_THROW(Cluster(fc, catalog), std::invalid_argument);
  fc = small_config();
  fc.cores_used = 1;  // no room for any BE
  EXPECT_THROW(Cluster(fc, catalog), std::invalid_argument);
  fc = small_config();
  fc.cores_used = 99;  // more than the machine has
  EXPECT_THROW(Cluster(fc, catalog), std::invalid_argument);
  fc = small_config();
  fc.epoch_sec = 0.001;  // shorter than one 10 ms quantum
  EXPECT_THROW(Cluster(fc, catalog), std::invalid_argument);
  fc = small_config();
  fc.placement = "bogus";
  EXPECT_THROW(Cluster(fc, catalog), std::invalid_argument);
}

TEST(Cluster, EpochInvariants) {
  Cluster cluster(small_config(), sim::default_catalog());
  std::uint64_t placed = 0, rejected = 0, departed = 0;
  for (int e = 0; e < 6; ++e) {
    const auto m = cluster.step_epoch();
    EXPECT_EQ(m.epoch, static_cast<std::uint64_t>(e));
    EXPECT_DOUBLE_EQ(m.t_sec, (e + 1) * small_config().epoch_sec);
    EXPECT_LE(m.rejected, m.arrivals);
    EXPECT_LE(m.occupied_machines, cluster.num_machines());
    EXPECT_GT(m.fleet_efu, 0.0);
    // Normalised IPCs can transiently top 1 (warm-up vs the steady-state
    // solo reference), so the bound is loose, not exactly 1.
    EXPECT_LT(m.fleet_efu, 1.5);
    EXPECT_GT(m.hp_norm_mean, 0.0);
    EXPECT_LE(m.slo_violation_rate, 1.0);
    placed += m.arrivals - m.rejected;
    rejected += m.rejected;
    departed += m.departures;
    // Conservation: everyone placed either departed or is still running.
    EXPECT_EQ(cluster.tenants_running(), placed - departed);
  }
  EXPECT_EQ(cluster.epochs_done(), 6u);
  // The per-BE-core capacity bounds what can ever run at once.
  EXPECT_LE(cluster.tenants_running(),
            cluster.num_machines() * (small_config().cores_used - 1));
}

TEST(Cluster, PlacementLogMatchesMetrics) {
  Cluster cluster(small_config(), sim::default_catalog());
  std::uint64_t arrivals = 0, migrations = 0;
  for (int e = 0; e < 6; ++e) {
    const auto m = cluster.step_epoch();
    arrivals += m.arrivals;
    migrations += m.migrations;
  }
  std::uint64_t log_arrivals = 0, log_migrations = 0;
  for (const auto& rec : cluster.placement_log()) {
    if (rec.migration) {
      log_migrations += rec.accepted ? 1u : 0u;
    } else {
      ++log_arrivals;
      if (rec.accepted) {
        EXPECT_LT(rec.machine, cluster.num_machines());
        EXPECT_GE(rec.core, 1u);
        EXPECT_LT(rec.core, small_config().cores_used);
      }
    }
  }
  EXPECT_EQ(log_arrivals, arrivals);
  EXPECT_EQ(log_migrations, migrations);
}

// The tentpole determinism contract: same (config, seed) => byte-identical
// per-epoch CSV at any worker count.
TEST(Cluster, CsvIsByteIdenticalAcrossJobCounts) {
  FleetConfig fc = small_config();
  fc.jobs = 1;
  const std::string serial = run_csv(fc, 5);
  fc.jobs = 8;
  const std::string sharded = run_csv(fc, 5);
  EXPECT_EQ(serial, sharded);
  fc.jobs = 3;
  EXPECT_EQ(serial, run_csv(fc, 5));
}

// The same contract across the batched data plane: batch_stepping and
// batch_machines are speed knobs, never result knobs.
TEST(Cluster, CsvIsByteIdenticalAcrossBatchStepping) {
  FleetConfig fc = small_config();
  const std::string batched = run_csv(fc, 5);
  fc.machine.batch_stepping = false;
  const std::string unbatched = run_csv(fc, 5);
  EXPECT_EQ(batched, unbatched);
  fc = small_config();
  fc.batch_machines = 5;  // uneven slices: 16 machines -> 5,5,5,1
  fc.jobs = 8;
  EXPECT_EQ(batched, run_csv(fc, 5));
  fc.batch_machines = 1;  // one machine per batch, degenerate chunking
  EXPECT_EQ(batched, run_csv(fc, 5));
}

// Churn replay: a fixed seed pins every placement decision, so two fleets
// built from the same config agree on the full decision log.
TEST(Cluster, ChurnReplayPinsPlacementDecisions) {
  const auto& catalog = sim::default_catalog();
  FleetConfig fc = small_config();
  Cluster a(fc, catalog);
  fc.jobs = 4;  // worker count must not leak into decisions either
  Cluster b(fc, catalog);
  a.run(5);
  b.run(5);
  const auto& la = a.placement_log();
  const auto& lb = b.placement_log();
  ASSERT_EQ(la.size(), lb.size());
  ASSERT_GT(la.size(), 0u);
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].tenant_id, lb[i].tenant_id);
    EXPECT_EQ(la[i].epoch, lb[i].epoch);
    EXPECT_EQ(la[i].app, lb[i].app);
    EXPECT_EQ(la[i].accepted, lb[i].accepted);
    EXPECT_EQ(la[i].migration, lb[i].migration);
    EXPECT_EQ(la[i].machine, lb[i].machine);
    EXPECT_EQ(la[i].core, lb[i].core);
  }
}

TEST(Cluster, SeedChangesTheFleet) {
  FleetConfig fc = small_config();
  const std::string a = run_csv(fc, 3);
  fc.seed = fc.seed + 1;
  fc.churn.seed = fc.churn.seed + 1;
  const std::string b = run_csv(fc, 3);
  EXPECT_NE(a, b);
}

// The headline acceptance check: MRC-aware placement beats random on
// aggregate EFU under a load where placement quality matters.
TEST(Cluster, MrcPlacementBeatsRandomOnFleetEfu) {
  const auto& catalog = sim::default_catalog();
  FleetConfig fc = small_config();
  fc.num_machines = 32;
  fc.cores_used = 6;
  fc.churn.arrival_rate_per_sec = 25.0;
  fc.churn.mean_lifetime_sec = 8.0;

  fc.placement = "random";
  Cluster random_fleet(fc, catalog);
  const double random_efu = Cluster::mean_efu(random_fleet.run(10));

  fc.placement = "mrc";
  Cluster mrc_fleet(fc, catalog);
  const double mrc_efu = Cluster::mean_efu(mrc_fleet.run(10));

  EXPECT_GT(mrc_efu, random_efu);
}

TEST(Cluster, RejectsWhenEveryCoreIsBusy) {
  FleetConfig fc = small_config();
  fc.num_machines = 2;
  fc.cores_used = 2;  // one BE slot per machine
  fc.churn.arrival_rate_per_sec = 20.0;
  fc.churn.mean_lifetime_sec = 60.0;  // effectively nobody leaves
  Cluster cluster(fc, sim::default_catalog());
  std::uint64_t rejected = 0;
  for (int e = 0; e < 3; ++e) rejected += cluster.step_epoch().rejected;
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(cluster.tenants_running(), 2u);
}

TEST(Cluster, CsvRowRoundTripsShape) {
  EpochMetrics m;
  m.epoch = 3;
  m.t_sec = 4.0;
  m.fleet_efu = 0.875;
  const auto row = epoch_csv_row(m);
  // Same column count as the header.
  const auto count = [](const std::string& s) {
    std::size_t n = 1;
    for (char c : s) n += c == ',' ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count(row), count(epoch_csv_header()));
  EXPECT_EQ(row.substr(0, 4), "3,4,");
}

}  // namespace
}  // namespace dicer::fleet
