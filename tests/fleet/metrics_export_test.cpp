// Jobs-invariance of the observability exports: the same fleet run must
// produce byte-identical Prometheus text and per-epoch JSONL at any worker
// count — the CSV determinism contract extended to the metrics layer.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fleet/cluster.hpp"
#include "sim/core/catalog.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace_counter_sink.hpp"
#include "util/trace.hpp"

namespace dicer::fleet {
namespace {

FleetConfig small_config() {
  FleetConfig fc;
  fc.num_machines = 16;
  fc.cores_used = 4;
  fc.churn.arrival_rate_per_sec = 6.0;
  fc.churn.mean_lifetime_sec = 4.0;
  fc.churn.seed = 17;
  fc.seed = 11;
  fc.jobs = 1;
  return fc;
}

struct RunOutput {
  std::string prometheus;
  std::string jsonl;
  std::vector<EpochMetrics> rows;
};

RunOutput run_config_with_metrics(FleetConfig fc, std::uint64_t epochs = 5) {
  // A run-local tracer + counter sink: actuation counters come from the
  // policies' existing event emission, fully isolated from other tests.
  trace::Tracer tracer;
  telemetry::Registry registry;
  auto sink = std::make_shared<telemetry::TraceCounterSink>(registry);
  tracer.add_sink(sink);
  fc.tracer = &tracer;
  fc.metrics = &registry;
  Cluster cluster(fc, sim::default_catalog());
  RunOutput out;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    out.rows.push_back(cluster.step_epoch());
    out.jsonl += epoch_jsonl_row(out.rows.back()) + "\n";
  }
  tracer.remove_sink(sink);
  out.prometheus = telemetry::to_prometheus(registry);
  return out;
}

RunOutput run_with_metrics(unsigned jobs, std::uint64_t epochs = 5) {
  FleetConfig fc = small_config();
  fc.jobs = jobs;
  return run_config_with_metrics(fc, epochs);
}

TEST(FleetMetricsExport, ByteIdenticalAcrossWorkerCounts) {
  const RunOutput serial = run_with_metrics(1);
  const RunOutput parallel8 = run_with_metrics(8);
  EXPECT_EQ(serial.prometheus, parallel8.prometheus);
  EXPECT_EQ(serial.jsonl, parallel8.jsonl);
  // The registry actually saw the run (not trivially-empty equality).
  EXPECT_NE(serial.prometheus.find("dicer_fleet_machine_efu_count"),
            std::string::npos);
  EXPECT_NE(serial.prometheus.find("dicer_events_period_total"),
            std::string::npos);
}

TEST(FleetMetricsExport, ByteIdenticalAcrossBatchStepping) {
  // The batched data plane (MachineBatch shards) must leave every export —
  // Prometheus text (including the dicer_solver_* counters the fused path
  // feeds) and per-epoch JSONL — byte-identical to the per-machine plane,
  // at any batch size.
  FleetConfig batched = small_config();
  const RunOutput on = run_config_with_metrics(batched);

  FleetConfig off_cfg = small_config();
  off_cfg.machine.batch_stepping = false;
  off_cfg.jobs = 8;  // and across worker counts, for good measure
  const RunOutput off = run_config_with_metrics(off_cfg);
  EXPECT_EQ(on.prometheus, off.prometheus);
  EXPECT_EQ(on.jsonl, off.jsonl);

  FleetConfig chunky = small_config();
  chunky.batch_machines = 3;  // uneven ranges: 16 machines -> 3,3,3,3,3,1
  chunky.jobs = 2;
  const RunOutput uneven = run_config_with_metrics(chunky);
  EXPECT_EQ(on.prometheus, uneven.prometheus);
  EXPECT_EQ(on.jsonl, uneven.jsonl);

  // The fused path actually carried quanta (not a vacuous comparison).
  EXPECT_NE(on.prometheus.find("dicer_solver_replays_total"),
            std::string::npos);
}

TEST(FleetMetricsExport, ByteIdenticalAcrossPlacementIndex) {
  // The placement index is a speed knob, never a result knob: with it off
  // the control plane rebuilds MachineViews per arrival, and every export
  // — Prometheus text and per-epoch JSONL — stays byte-identical.
  FleetConfig on_cfg = small_config();
  on_cfg.churn.arrival_rate_per_sec = 12.0;
  on_cfg.migrate_after = 2;
  const RunOutput on = run_config_with_metrics(on_cfg, 8);

  FleetConfig off_cfg = on_cfg;
  off_cfg.placement_index = false;
  off_cfg.jobs = 8;  // and across worker counts, for good measure
  const RunOutput off = run_config_with_metrics(off_cfg, 8);
  EXPECT_EQ(on.prometheus, off.prometheus);
  EXPECT_EQ(on.jsonl, off.jsonl);
  EXPECT_NE(on.prometheus.find("dicer_fleet_arrivals_total"),
            std::string::npos);
}

TEST(FleetMetricsExport, SolverCountersAccumulate) {
  trace::Tracer tracer;
  telemetry::Registry registry;
  FleetConfig fc = small_config();
  fc.tracer = &tracer;
  fc.metrics = &registry;
  Cluster cluster(fc, sim::default_catalog());
  cluster.run(3);
  // Every machine steps ~epoch/quantum times per epoch; the folded deltas
  // must reflect that scale, and solves + replays partition the quanta.
  const auto quanta = registry.counter("dicer_solver_quanta_total").value();
  const auto solves = registry.counter("dicer_solver_solves_total").value();
  const auto replays = registry.counter("dicer_solver_replays_total").value();
  EXPECT_GT(quanta, 0u);
  EXPECT_EQ(quanta, solves + replays);
  EXPECT_EQ(registry.counter("dicer_fleet_epochs_total").value(), 3u);
}

TEST(FleetMetricsExport, PercentileColumnsAreOrderedAndPresent) {
  FleetConfig fc = small_config();
  Cluster cluster(fc, sim::default_catalog());
  const auto rows = cluster.run(4);
  for (const auto& m : rows) {
    EXPECT_LE(m.efu_p50, m.efu_p95 + 1e-12);
    EXPECT_LE(m.efu_p95, m.efu_p99 + 1e-12);
    EXPECT_LE(m.hp_slowdown_p50, m.hp_slowdown_p95 + 1e-12);
    EXPECT_LE(m.hp_slowdown_p95, m.hp_slowdown_p99 + 1e-12);
    EXPECT_LE(m.hp_slowdown_p99, m.hp_slowdown_max + 1e-12);
    EXPECT_GT(m.efu_p50, 0.0);
    EXPECT_GE(m.slo_violation_rate_occupied, 0.0);
    EXPECT_LE(m.slo_violation_rate_occupied, 1.0);
  }
}

TEST(FleetMetricsExport, CsvAndJsonlShapesAgree) {
  FleetConfig fc = small_config();
  Cluster cluster(fc, sim::default_catalog());
  const EpochMetrics m = cluster.step_epoch();

  const std::string header = epoch_csv_header();
  const std::string row = epoch_csv_row(m);
  const auto count_ch = [](const std::string& s, char c) {
    std::size_t n = 0;
    for (char x : s) n += x == c;
    return n;
  };
  // Same column count in header and row, and the new columns are there.
  EXPECT_EQ(count_ch(header, ','), count_ch(row, ','));
  EXPECT_NE(header.find("efu_p99"), std::string::npos);
  EXPECT_NE(header.find("hp_slowdown_max"), std::string::npos);
  EXPECT_NE(header.find("slo_violation_rate_occupied"), std::string::npos);
  // Historical columns stay (comparability with pre-existing CSVs).
  EXPECT_NE(header.find("slo_violation_rate,"), std::string::npos);

  // The JSONL row carries exactly the CSV columns as keys.
  const std::string json = epoch_jsonl_row(m);
  std::istringstream cols(header);
  std::string col;
  while (std::getline(cols, col, ',')) {
    EXPECT_NE(json.find("\"" + col + "\":"), std::string::npos) << col;
  }
}

TEST(FleetMetricsExport, LastEpochStatsMatchRow) {
  FleetConfig fc = small_config();
  Cluster cluster(fc, sim::default_catalog());
  EXPECT_TRUE(cluster.last_epoch_stats().empty());
  const EpochMetrics m = cluster.step_epoch();
  const auto& stats = cluster.last_epoch_stats();
  ASSERT_EQ(stats.size(), cluster.num_machines());
  double efu_sum = 0.0;
  std::uint64_t violations = 0, occupied = 0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].machine, static_cast<unsigned>(i));
    EXPECT_NE(stats[i].hp, nullptr);
    efu_sum += stats[i].efu;
    violations += stats[i].slo_violated;
    occupied += stats[i].tenants > 0;
  }
  EXPECT_DOUBLE_EQ(m.fleet_efu,
                   efu_sum / static_cast<double>(stats.size()));
  EXPECT_EQ(m.slo_violations, violations);
  EXPECT_EQ(m.occupied_machines, occupied);
}

}  // namespace
}  // namespace dicer::fleet
