#include "fleet/churn.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/core/catalog.hpp"

namespace dicer::fleet {
namespace {

ChurnConfig fast_config() {
  ChurnConfig c;
  c.arrival_rate_per_sec = 10.0;
  c.mean_lifetime_sec = 5.0;
  c.seed = 99;
  return c;
}

TEST(ChurnGenerator, ValidatesConfig) {
  const auto& catalog = sim::default_catalog();
  ChurnConfig bad = fast_config();
  bad.arrival_rate_per_sec = 0.0;
  EXPECT_THROW(ChurnGenerator(bad, catalog), std::invalid_argument);
  bad = fast_config();
  bad.mean_lifetime_sec = -1.0;
  EXPECT_THROW(ChurnGenerator(bad, catalog), std::invalid_argument);
}

TEST(ChurnGenerator, ArrivalsAreOrderedAndDistinct) {
  ChurnGenerator gen(fast_config(), sim::default_catalog());
  double last_t = 0.0;
  std::uint64_t last_id = 0;
  for (int i = 0; i < 200; ++i) {
    const auto a = gen.next();
    EXPECT_GT(a.t_sec, last_t);
    if (i > 0) {
      EXPECT_EQ(a.id, last_id + 1);
    }
    EXPECT_GE(a.lifetime_sec, fast_config().min_lifetime_sec);
    ASSERT_NE(a.app, nullptr);
    last_t = a.t_sec;
    last_id = a.id;
  }
}

TEST(ChurnGenerator, DeterministicForSeed) {
  const auto& catalog = sim::default_catalog();
  ChurnGenerator a(fast_config(), catalog);
  ChurnGenerator b(fast_config(), catalog);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    const auto y = b.next();
    EXPECT_DOUBLE_EQ(x.t_sec, y.t_sec);
    EXPECT_DOUBLE_EQ(x.lifetime_sec, y.lifetime_sec);
    EXPECT_EQ(x.app, y.app);
  }
}

TEST(ChurnGenerator, SeedChangesTheSequence) {
  const auto& catalog = sim::default_catalog();
  ChurnGenerator a(fast_config(), catalog);
  ChurnConfig other = fast_config();
  other.seed = 100;
  ChurnGenerator b(other, catalog);
  bool any_diff = false;
  for (int i = 0; i < 32 && !any_diff; ++i) {
    any_diff = a.next().t_sec != b.next().t_sec;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ChurnGenerator, DrainUntilSplitsAtBoundaries) {
  const auto& catalog = sim::default_catalog();
  ChurnGenerator whole(fast_config(), catalog);
  ChurnGenerator split(fast_config(), catalog);
  const auto all = whole.drain_until(10.0);
  auto first = split.drain_until(4.0);
  const auto rest = split.drain_until(10.0);
  first.insert(first.end(), rest.begin(), rest.end());
  ASSERT_EQ(first.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].t_sec, all[i].t_sec);
    EXPECT_EQ(first[i].id, all[i].id);
  }
  for (const auto& a : first) EXPECT_LT(a.t_sec, 10.0);
}

TEST(ChurnGenerator, MeanRateRoughlyMatches) {
  ChurnGenerator gen(fast_config(), sim::default_catalog());
  const auto arrivals = gen.drain_until(100.0);
  // 10/s over 100 s => ~1000; Poisson sd ~32, allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 1000.0, 160.0);
}

}  // namespace
}  // namespace dicer::fleet
