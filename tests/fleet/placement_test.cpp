#include "fleet/placement.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fleet/directory.hpp"
#include "sim/core/catalog.hpp"
#include "sim/machine.hpp"

namespace dicer::fleet {
namespace {

const AppDirectory& shared_directory() {
  static const AppDirectory dir(sim::default_catalog(), sim::MachineConfig{});
  return dir;
}

std::vector<MachineView> three_machines(unsigned free0, unsigned free1,
                                        unsigned free2) {
  const auto& catalog = sim::default_catalog();
  std::vector<MachineView> views(3);
  const unsigned frees[] = {free0, free1, free2};
  for (unsigned i = 0; i < 3; ++i) {
    views[i].index = i;
    views[i].hp = &catalog.at(i);
    views[i].free_cores = frees[i];
  }
  return views;
}

TEST(AppDirectory, SignalsAreSane) {
  const auto& dir = shared_directory();
  const auto& catalog = sim::default_catalog();
  EXPECT_EQ(dir.size(), catalog.size());
  const auto& sig = dir.signal(catalog.at(0).name);
  ASSERT_EQ(sig.ipc_by_ways.size(), dir.machine().llc.ways);
  // More ways never hurts a solo app.
  for (std::size_t w = 1; w < sig.ipc_by_ways.size(); ++w) {
    EXPECT_GE(sig.ipc_by_ways[w], sig.ipc_by_ways[w - 1] - 1e-12);
  }
  EXPECT_DOUBLE_EQ(sig.ipc_alone, sig.ipc_by_ways.back());
  EXPECT_GE(sig.ways_needed, 1u);
  EXPECT_LE(sig.ways_needed, dir.machine().llc.ways);
  // Interpolation hits the table at integer points and stays inside it.
  EXPECT_DOUBLE_EQ(sig.ipc_at_ways(3.0), sig.ipc_by_ways[2]);
  EXPECT_DOUBLE_EQ(sig.ipc_at_ways(0.5), sig.ipc_by_ways[0]);
  EXPECT_DOUBLE_EQ(sig.ipc_at_ways(99.0), sig.ipc_by_ways.back());
  const double mid = sig.ipc_at_ways(3.5);
  EXPECT_GE(mid, sig.ipc_by_ways[2] - 1e-12);
  EXPECT_LE(mid, sig.ipc_by_ways[3] + 1e-12);
}

TEST(AppDirectory, UnknownAppThrows) {
  EXPECT_THROW(shared_directory().signal("no_such_app"), std::out_of_range);
}

TEST(RandomPlacement, OnlyPicksMachinesWithFreeCores) {
  RandomPlacement engine(7);
  const auto& app = sim::default_catalog().at(5);
  auto views = three_machines(0, 2, 0);
  for (int i = 0; i < 32; ++i) {
    const auto m = engine.place(app, views);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, 1u);
  }
}

TEST(RandomPlacement, RejectsWhenFull) {
  RandomPlacement engine(7);
  auto views = three_machines(0, 0, 0);
  EXPECT_FALSE(engine.place(sim::default_catalog().at(0), views).has_value());
}

TEST(RandomPlacement, DeterministicForSeed) {
  const auto& app = sim::default_catalog().at(5);
  auto views = three_machines(1, 1, 1);
  RandomPlacement a(7), b(7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.place(app, views), b.place(app, views));
  }
}

TEST(LeastLoadedPlacement, PicksFewestTenantsLowestIndex) {
  LeastLoadedPlacement engine;
  const auto& catalog = sim::default_catalog();
  auto views = three_machines(1, 2, 2);
  views[0].tenants = {&catalog.at(3), &catalog.at(4)};
  views[1].tenants = {&catalog.at(3)};
  views[2].tenants = {&catalog.at(3)};
  const auto m = engine.place(catalog.at(5), views);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 1u);  // ties at one tenant; lowest index wins
}

TEST(MrcBestFitPlacement, ScoreDropsWithCrowding) {
  const auto& dir = shared_directory();
  const auto& catalog = sim::default_catalog();
  MrcBestFitPlacement engine(dir);
  auto views = three_machines(8, 8, 8);
  const auto& app = catalog.by_name("milc1");
  const double empty_score = engine.score(app, views[0]);
  // Pile four copies of a cache-hungry app onto the same machine.
  for (int i = 0; i < 4; ++i) views[0].tenants.push_back(&app);
  const double crowded_score = engine.score(app, views[0]);
  EXPECT_GT(empty_score, 0.0);
  EXPECT_LT(crowded_score, empty_score);
}

TEST(MrcBestFitPlacement, AvoidsTheCrowdedMachine) {
  const auto& dir = shared_directory();
  const auto& catalog = sim::default_catalog();
  MrcBestFitPlacement engine(dir);
  // Identical HPs so the only difference is the tenant load.
  auto views = three_machines(4, 4, 4);
  views[1].hp = views[0].hp;
  views[2].hp = views[0].hp;
  const auto& hungry = catalog.by_name("milc1");
  views[0].tenants = {&hungry, &hungry, &hungry};
  views[2].tenants = {&hungry, &hungry, &hungry};
  const auto m = engine.place(hungry, views);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 1u);
}

TEST(MakePlacement, KnownNamesAndErrors) {
  const auto& dir = shared_directory();
  for (const auto& name : known_placements()) {
    EXPECT_EQ(make_placement(name, dir, 1)->name(), name);
  }
  EXPECT_THROW(make_placement("bogus", dir, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dicer::fleet
