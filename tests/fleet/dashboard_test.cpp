#include "fleet/dashboard.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/core/catalog.hpp"

namespace dicer::fleet {
namespace {

TEST(Sparkline, ScalesToBlocks) {
  const std::vector<double> ramp{0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  const std::string s = sparkline(ramp);
  EXPECT_EQ(s, "▁▂▃▄▅▆▇█");
  // Flat input renders the lowest block, not a divide-by-zero artifact.
  const std::vector<double> flat{1.0, 1.0, 1.0};
  EXPECT_EQ(sparkline(flat), "▁▁▁");
  EXPECT_EQ(sparkline({}), "");
}

TEST(Dashboard, BurnRateMath) {
  DashboardConfig dc;
  dc.burn_window = 4;
  dc.slo_budget = 0.10;
  dc.burn_alert = 2.0;
  Dashboard dash(dc);
  EpochMetrics m;
  // Two healthy epochs: burn 0, no alert.
  m.slo_violation_rate_occupied = 0.0;
  dash.render(m, {});
  dash.render(m, {});
  EXPECT_DOUBLE_EQ(dash.burn_rate(), 0.0);
  EXPECT_FALSE(dash.alert_active());
  // One hot epoch: window mean (0+0+0.9)/3 = 0.3 -> burn 3x, alert fires.
  m.slo_violation_rate_occupied = 0.9;
  dash.render(m, {});
  EXPECT_NEAR(dash.burn_rate(), 3.0, 1e-9);
  EXPECT_TRUE(dash.alert_active());
  EXPECT_EQ(dash.alerts_fired(), 1u);
  // The alert stays active while the hot epoch remains inside the sliding
  // window (3 more renders at window 4), then clears once it slides out.
  m.slo_violation_rate_occupied = 0.0;
  dash.render(m, {});
  dash.render(m, {});
  dash.render(m, {});
  EXPECT_TRUE(dash.alert_active());
  dash.render(m, {});
  EXPECT_DOUBLE_EQ(dash.burn_rate(), 0.0);
  EXPECT_FALSE(dash.alert_active());
  EXPECT_EQ(dash.alerts_fired(), 4u);
}

// An overloaded seeded scenario must actually light the dashboard up:
// p99 slowdown rendered, worst machines ranked, and the burn-rate alert
// firing at least once — the acceptance demo as a test.
TEST(Dashboard, OverloadScenarioFiresAlertAndRanksWorst) {
  FleetConfig fc;
  fc.num_machines = 24;
  fc.cores_used = 4;
  fc.churn.arrival_rate_per_sec = 30.0;  // heavy churn: machines pack full
  fc.churn.mean_lifetime_sec = 12.0;
  fc.churn.seed = 17;
  fc.seed = 11;
  fc.jobs = 1;
  fc.slo_norm = 0.97;  // tight SLO: contention violates it readily
  Cluster cluster(fc, sim::default_catalog());

  DashboardConfig dc;
  dc.top_k = 3;
  dc.burn_window = 3;
  dc.slo_budget = 0.02;
  dc.burn_alert = 2.0;
  Dashboard dash(dc);

  std::string last;
  for (int e = 0; e < 8; ++e) {
    const EpochMetrics m = cluster.step_epoch();
    last = dash.render(m, cluster.last_epoch_stats());
  }
  EXPECT_GE(dash.alerts_fired(), 1u);
  EXPECT_NE(last.find("p99"), std::string::npos);
  EXPECT_NE(last.find("worst machines"), std::string::npos);
  EXPECT_NE(last.find("ALERT"), std::string::npos);
  EXPECT_NE(last.find("burn"), std::string::npos);
  // Plain mode: no ANSI escapes in the frame.
  EXPECT_EQ(last.find("\x1b["), std::string::npos);

  // The worst-K table is ranked: parse the slowdown column back out and
  // check it is non-increasing.
  const auto table = last.substr(last.find("worst machines"));
  std::vector<double> slowdowns;
  std::size_t pos = 0;
  int lines = 0;
  while ((pos = table.find('\n', pos)) != std::string::npos && lines < 6) {
    ++pos;
    ++lines;
  }
  const auto& stats = cluster.last_epoch_stats();
  std::vector<double> sorted;
  for (const auto& s : stats) sorted.push_back(s.hp_slowdown);
  std::sort(sorted.rbegin(), sorted.rend());
  // The frame's top entry must be the true fleet-wide max slowdown.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", sorted[0]);
  EXPECT_NE(table.find(buf), std::string::npos);
}

TEST(Dashboard, AnsiModeEmitsColour) {
  DashboardConfig dc;
  dc.ansi = true;
  dc.burn_window = 1;
  dc.slo_budget = 0.01;
  dc.burn_alert = 1.0;
  Dashboard dash(dc);
  EpochMetrics m;
  m.slo_violation_rate_occupied = 1.0;  // instant alert
  const std::string frame = dash.render(m, {});
  EXPECT_NE(frame.find("\x1b[1m"), std::string::npos);  // bold header
  EXPECT_NE(frame.find("\x1b[31m"), std::string::npos);  // red alert
  EXPECT_TRUE(dash.alert_active());
}

}  // namespace
}  // namespace dicer::fleet
