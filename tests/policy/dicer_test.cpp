#include "policy/dicer.hpp"

#include <gtest/gtest.h>

#include "rdt/capability.hpp"
#include "sim/core/catalog.hpp"

namespace dicer::policy {
namespace {

// Drives a live consolidation under DICER, the way the harness does.
struct DicerFixture : ::testing::Test {
  sim::Machine machine{sim::MachineConfig{}};
  rdt::Capability cap = rdt::Capability::probe(machine);
  rdt::CatController cat{machine, cap};
  rdt::Monitor monitor{machine, cap};
  PolicyContext ctx;

  void wire(const char* hp, const char* be, unsigned cores = 10) {
    ctx.machine = &machine;
    ctx.cat = &cat;
    ctx.monitor = &monitor;
    ctx.hp_core = 0;
    const auto& catalog = sim::default_catalog();
    machine.attach(0, &catalog.by_name(hp));
    for (unsigned c = 1; c < cores; ++c) {
      ctx.be_cores.push_back(c);
      machine.attach(c, &catalog.by_name(be));
    }
  }

  void drive(Dicer& dicer, double seconds) {
    const double t_end = machine.time_sec() + seconds;
    while (machine.time_sec() < t_end) {
      machine.run_for(dicer.interval_sec());
      dicer.act(ctx);
    }
  }
};

TEST_F(DicerFixture, ConfigValidation) {
  DicerConfig c;
  c.period_sec = 0.0;
  EXPECT_THROW(Dicer{c}, std::invalid_argument);
  c = DicerConfig{};
  c.alpha = 0.0;
  EXPECT_THROW(Dicer{c}, std::invalid_argument);
  c = DicerConfig{};
  c.alpha = 1.0;
  EXPECT_THROW(Dicer{c}, std::invalid_argument);
  c = DicerConfig{};
  c.phase_threshold = 0.0;
  EXPECT_THROW(Dicer{c}, std::invalid_argument);
  c = DicerConfig{};
  c.sample_stride = 0;
  EXPECT_THROW(Dicer{c}, std::invalid_argument);
  c = DicerConfig{};
  c.min_hp_ways = 0;
  EXPECT_THROW(Dicer{c}, std::invalid_argument);
}

TEST_F(DicerFixture, PaperDefaults) {
  Dicer dicer;
  EXPECT_EQ(dicer.name(), "DICER");
  EXPECT_DOUBLE_EQ(dicer.config().period_sec, 1.0);
  EXPECT_NEAR(dicer.config().membw_threshold_bytes_per_sec * 8.0 / 1e9, 50.0,
              1e-9);
  EXPECT_DOUBLE_EQ(dicer.config().phase_threshold, 0.30);
  EXPECT_DOUBLE_EQ(dicer.config().alpha, 0.05);
}

TEST_F(DicerFixture, StartsLikeCacheTakeover) {
  wire("omnetpp1", "gcc_base3");
  Dicer dicer;
  dicer.setup(ctx);
  EXPECT_EQ(dicer.hp_ways(), 19u);
  EXPECT_TRUE(dicer.ct_favoured());
  EXPECT_EQ(machine.fill_mask(0), sim::WayMask::high(19, 20));
  EXPECT_EQ(machine.fill_mask(1), sim::WayMask::low(1));
}

TEST_F(DicerFixture, IntervalIsMonitoringPeriodInSteadyState) {
  wire("omnetpp1", "gcc_base3");
  Dicer dicer;
  dicer.setup(ctx);
  EXPECT_DOUBLE_EQ(dicer.interval_sec(), 1.0);
}

TEST_F(DicerFixture, DonatesWaysWhileStable) {
  // omnetpp vs compute-light BEs: no saturation, stable IPC -> DICER keeps
  // shrinking HP's partition and donating to the BEs (Listing 2).
  wire("omnetpp1", "namd1");
  Dicer dicer;
  dicer.setup(ctx);
  drive(dicer, 8.0);
  EXPECT_LT(dicer.hp_ways(), 19u);
  EXPECT_GT(dicer.stats().way_donations, 0u);
  EXPECT_TRUE(dicer.ct_favoured());
  EXPECT_EQ(dicer.stats().samplings, 0u);
  // BEs received the donated ways.
  EXPECT_EQ(machine.fill_mask(1),
            sim::WayMask::low(20 - dicer.hp_ways()));
}

TEST_F(DicerFixture, SamplesWhenLinkSaturates) {
  // Nine lbm BEs saturate the link far beyond 50 Gbps: first monitoring
  // period must reclassify the workload CT-Thwarted and sample.
  wire("milc1", "lbm1");
  Dicer dicer;
  dicer.setup(ctx);
  drive(dicer, 10.0);
  EXPECT_FALSE(dicer.ct_favoured());
  EXPECT_GE(dicer.stats().samplings, 1u);
  EXPECT_GT(dicer.stats().sampling_steps, 0u);
}

TEST_F(DicerFixture, SamplingPicksLargeAllocationForCacheHungryHp) {
  // Force the sampling path (threshold ~ 0) on a workload where the HP
  // demonstrably wants cache: the argmax must land on a fat allocation.
  DicerConfig cfg;
  cfg.membw_threshold_bytes_per_sec = 1.0;
  cfg.resample_cooldown_periods = 1000;  // sample exactly once
  wire("omnetpp1", "gcc_base3");
  Dicer dicer(cfg);
  dicer.setup(ctx);
  drive(dicer, 10.0);
  EXPECT_FALSE(dicer.ct_favoured());
  EXPECT_GE(dicer.stats().samplings, 1u);
  EXPECT_GE(dicer.hp_ways(), 11u);
}

TEST_F(DicerFixture, SamplingPicksSmallAllocationForStreamingHp) {
  // ...and for a phase-stable streaming HP (bwaves) that gains nothing
  // beyond its small working set while its gcc neighbours convert extra
  // cache into less traffic, the argmax must land on a lean allocation.
  // (milc would also work qualitatively, but its warm->solver phase
  // transition can fall inside the sampling window and bias the argmax —
  // a real limitation of IPC-based sampling the paper does not address.)
  DicerConfig cfg;
  cfg.membw_threshold_bytes_per_sec = 3e9;  // bwaves+9gcc trips this at CT
  cfg.resample_cooldown_periods = 1000;
  wire("bwaves1", "gcc_base3");
  Dicer dicer(cfg);
  dicer.setup(ctx);
  drive(dicer, 10.0);
  EXPECT_FALSE(dicer.ct_favoured());
  EXPECT_GE(dicer.stats().samplings, 1u);
  EXPECT_LE(dicer.hp_ways(), 9u);
}

TEST_F(DicerFixture, SamplingIntervalUsedDuringSampling) {
  DicerConfig cfg;
  cfg.membw_threshold_bytes_per_sec = 1.0;  // any traffic saturates
  wire("milc1", "lbm1");
  Dicer dicer(cfg);
  dicer.setup(ctx);
  machine.run_for(dicer.interval_sec());
  dicer.act(ctx);  // warmup period: saturation detected, sampling starts
  EXPECT_DOUBLE_EQ(dicer.interval_sec(), dicer.config().sample_interval_sec);
}

TEST_F(DicerFixture, SamplingPlanRespectsMinimumWays) {
  DicerConfig cfg;
  cfg.min_hp_ways = 3;
  wire("milc1", "lbm1");
  Dicer dicer(cfg);
  dicer.setup(ctx);
  drive(dicer, 12.0);
  EXPECT_GE(dicer.hp_ways(), 3u);
}

TEST_F(DicerFixture, PhaseChangeTriggersReset) {
  // GemsFDTD has a quiet setup phase followed by bandwidth-hungry solver
  // phases: the Eq. 2 detector must fire at least once across restarts.
  wire("GemsFDTD1", "namd1");
  Dicer dicer;
  dicer.setup(ctx);
  drive(dicer, 60.0);
  EXPECT_GT(dicer.stats().phase_resets, 0u);
}

TEST_F(DicerFixture, StatsPeriodsCounted) {
  wire("omnetpp1", "namd1");
  Dicer dicer;
  dicer.setup(ctx);
  drive(dicer, 5.0);
  EXPECT_GE(dicer.stats().periods, 5u);
}

TEST_F(DicerFixture, NeverViolatesPartitionInvariants) {
  wire("mcf1", "gcc_base5");
  Dicer dicer;
  dicer.setup(ctx);
  for (int i = 0; i < 40; ++i) {
    machine.run_for(dicer.interval_sec());
    dicer.act(ctx);
    const auto hp = machine.fill_mask(0);
    const auto be = machine.fill_mask(1);
    EXPECT_FALSE(hp.overlaps(be));
    EXPECT_TRUE(hp.contiguous());
    EXPECT_TRUE(be.contiguous());
    EXPECT_EQ(hp.count() + be.count(), 20u);
    EXPECT_GE(hp.count(), dicer.config().min_hp_ways);
    EXPECT_GE(be.count(), dicer.config().min_be_ways);
  }
}

TEST_F(DicerFixture, ResampleCooldownLimitsSamplingRate) {
  // Permanently saturated workload: the literal listing resamples every
  // period; the cooldown caps that.
  wire("lbm1", "lbm1");
  DicerConfig with_cooldown;
  with_cooldown.resample_cooldown_periods = 5;
  Dicer dicer(with_cooldown);
  dicer.setup(ctx);
  drive(dicer, 20.0);
  const auto sampled = dicer.stats().samplings;
  EXPECT_GE(sampled, 1u);
  EXPECT_LE(sampled, 6u);
}

TEST_F(DicerFixture, LiteralListingResamplesMore) {
  auto run_variant = [&](unsigned cooldown) {
    sim::Machine m{sim::MachineConfig{}};
    const auto c = rdt::Capability::probe(m);
    rdt::CatController cat2(m, c);
    rdt::Monitor mon2(m, c);
    PolicyContext ctx2;
    ctx2.machine = &m;
    ctx2.cat = &cat2;
    ctx2.monitor = &mon2;
    ctx2.hp_core = 0;
    const auto& catalog = sim::default_catalog();
    m.attach(0, &catalog.by_name("lbm1"));
    for (unsigned core = 1; core < 10; ++core) {
      ctx2.be_cores.push_back(core);
      m.attach(core, &catalog.by_name("lbm1"));
    }
    DicerConfig cfg;
    cfg.resample_cooldown_periods = cooldown;
    Dicer d(cfg);
    d.setup(ctx2);
    const double t_end = 20.0;
    while (m.time_sec() < t_end) {
      m.run_for(d.interval_sec());
      d.act(ctx2);
    }
    return d.stats().samplings;
  };
  EXPECT_GT(run_variant(0), run_variant(5));
}

TEST_F(DicerFixture, MinWaysExceedingCacheRejectedAtSetup) {
  DicerConfig cfg;
  cfg.min_hp_ways = 15;
  cfg.min_be_ways = 10;
  wire("omnetpp1", "namd1");
  Dicer dicer(cfg);
  EXPECT_THROW(dicer.setup(ctx), std::invalid_argument);
}

class DicerCoreSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DicerCoreSweep, RunsCleanlyAtAnyCoreCount) {
  sim::Machine machine{sim::MachineConfig{}};
  const auto cap = rdt::Capability::probe(machine);
  rdt::CatController cat(machine, cap);
  rdt::Monitor monitor(machine, cap);
  PolicyContext ctx;
  ctx.machine = &machine;
  ctx.cat = &cat;
  ctx.monitor = &monitor;
  ctx.hp_core = 0;
  const auto& catalog = sim::default_catalog();
  machine.attach(0, &catalog.by_name("soplex1"));
  for (unsigned c = 1; c < GetParam(); ++c) {
    ctx.be_cores.push_back(c);
    machine.attach(c, &catalog.by_name("bzip22"));
  }
  Dicer dicer;
  dicer.setup(ctx);
  for (int i = 0; i < 10; ++i) {
    machine.run_for(dicer.interval_sec());
    dicer.act(ctx);
  }
  EXPECT_GE(dicer.hp_ways(), 1u);
  EXPECT_LE(dicer.hp_ways(), 19u);
}

INSTANTIATE_TEST_SUITE_P(Cores, DicerCoreSweep,
                         ::testing::Values(2u, 3u, 5u, 7u, 10u));

}  // namespace
}  // namespace dicer::policy
