#include "policy/baselines.hpp"

#include <gtest/gtest.h>

#include "rdt/capability.hpp"
#include "sim/core/catalog.hpp"

namespace dicer::policy {
namespace {

struct PolicyFixture : ::testing::Test {
  sim::Machine machine{sim::MachineConfig{}};
  rdt::Capability cap = rdt::Capability::probe(machine);
  rdt::CatController cat{machine, cap};
  rdt::Monitor monitor{machine, cap};
  PolicyContext ctx;

  void SetUp() override {
    ctx.machine = &machine;
    ctx.cat = &cat;
    ctx.monitor = &monitor;
    ctx.hp_core = 0;
    for (unsigned c = 1; c < 10; ++c) ctx.be_cores.push_back(c);
    const auto& catalog = sim::default_catalog();
    machine.attach(0, &catalog.by_name("omnetpp1"));
    for (unsigned c = 1; c < 10; ++c) {
      machine.attach(c, &catalog.by_name("gcc_base3"));
    }
  }
};

TEST_F(PolicyFixture, UnmanagedLeavesFullMasks) {
  Unmanaged um;
  um.setup(ctx);
  EXPECT_EQ(um.name(), "UM");
  for (unsigned c = 0; c < 10; ++c) {
    EXPECT_EQ(machine.fill_mask(c), sim::WayMask::full(20));
  }
  // All cores monitored.
  for (unsigned c = 0; c < 10; ++c) EXPECT_TRUE(monitor.tracked(c));
}

TEST_F(PolicyFixture, UnmanagedActIsHarmless) {
  Unmanaged um;
  um.setup(ctx);
  machine.run_for(um.interval_sec());
  um.act(ctx);
  for (unsigned c = 0; c < 10; ++c) {
    EXPECT_EQ(machine.fill_mask(c), sim::WayMask::full(20));
  }
}

TEST_F(PolicyFixture, CacheTakeoverSplitsNineteenToOne) {
  CacheTakeover ct;
  ct.setup(ctx);
  EXPECT_EQ(ct.name(), "CT");
  EXPECT_EQ(machine.fill_mask(0), sim::WayMask::high(19, 20));
  for (unsigned c = 1; c < 10; ++c) {
    EXPECT_EQ(machine.fill_mask(c), sim::WayMask::low(1));
  }
}

TEST_F(PolicyFixture, CtUsesDistinctClos) {
  CacheTakeover ct;
  ct.setup(ctx);
  EXPECT_EQ(cat.clos_of(0), kHpClos);
  for (unsigned c = 1; c < 10; ++c) EXPECT_EQ(cat.clos_of(c), kBeClos);
}

TEST_F(PolicyFixture, StaticPartitionArbitrarySplit) {
  StaticPartition pol(6);
  pol.setup(ctx);
  EXPECT_EQ(pol.name(), "Static(6)");
  EXPECT_EQ(pol.hp_ways(), 6u);
  EXPECT_EQ(machine.fill_mask(0), sim::WayMask::high(6, 20));
  EXPECT_EQ(machine.fill_mask(1), sim::WayMask::low(14));
}

TEST_F(PolicyFixture, ApplySplitValidatesRange) {
  EXPECT_THROW(apply_split(ctx, 0), std::invalid_argument);
  EXPECT_THROW(apply_split(ctx, 20), std::invalid_argument);
  EXPECT_NO_THROW(apply_split(ctx, 19));
}

TEST_F(PolicyFixture, ContextRequiresWiring) {
  PolicyContext empty;
  EXPECT_THROW(associate_and_track(empty), std::invalid_argument);
}

class StaticSplitSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(StaticSplitSweep, PartitionsNeverOverlap) {
  sim::Machine machine{sim::MachineConfig{}};
  const auto cap = rdt::Capability::probe(machine);
  rdt::CatController cat(machine, cap);
  rdt::Monitor monitor(machine, cap);
  PolicyContext ctx;
  ctx.machine = &machine;
  ctx.cat = &cat;
  ctx.monitor = &monitor;
  ctx.hp_core = 0;
  ctx.be_cores = {1, 2, 3};
  const auto& catalog = sim::default_catalog();
  machine.attach(0, &catalog.at(0));
  for (unsigned c = 1; c < 4; ++c) machine.attach(c, &catalog.at(c));

  StaticPartition pol(GetParam());
  pol.setup(ctx);
  const auto hp = machine.fill_mask(0);
  const auto be = machine.fill_mask(1);
  EXPECT_FALSE(hp.overlaps(be));
  EXPECT_EQ(hp.count() + be.count(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Splits, StaticSplitSweep,
                         ::testing::Values(1u, 5u, 10u, 19u));

}  // namespace
}  // namespace dicer::policy
