#include "policy/extensions.hpp"

#include <gtest/gtest.h>

#include "policy/factory.hpp"
#include "rdt/capability.hpp"
#include "sim/core/catalog.hpp"

namespace dicer::policy {
namespace {

struct ExtFixture : ::testing::Test {
  sim::Machine machine{sim::MachineConfig{}};
  rdt::Capability cap = rdt::Capability::probe(machine, /*enable_mba=*/true);
  rdt::CatController cat{machine, cap};
  rdt::Monitor monitor{machine, cap};
  rdt::MbaController mba{machine, cap};
  PolicyContext ctx;

  void wire(const char* hp, const char* be, bool with_mba = true) {
    ctx.machine = &machine;
    ctx.cat = &cat;
    ctx.monitor = &monitor;
    ctx.mba = with_mba ? &mba : nullptr;
    ctx.hp_core = 0;
    const auto& catalog = sim::default_catalog();
    machine.attach(0, &catalog.by_name(hp));
    for (unsigned c = 1; c < 10; ++c) {
      ctx.be_cores.push_back(c);
      machine.attach(c, &catalog.by_name(be));
    }
  }

  template <typename P>
  void drive(P& pol, double seconds) {
    const double t_end = machine.time_sec() + seconds;
    while (machine.time_sec() < t_end) {
      machine.run_for(pol.interval_sec());
      pol.act(ctx);
    }
  }
};

TEST_F(ExtFixture, NoBwNeverSamples) {
  // Even with the link saturated by nine lbm BEs, the DCP-QoS-style
  // variant must never enter the sampling path.
  wire("milc1", "lbm1");
  DicerNoBw pol;
  pol.setup(ctx);
  drive(pol, 15.0);
  EXPECT_EQ(pol.stats().samplings, 0u);
  EXPECT_TRUE(pol.ct_favoured());
  EXPECT_EQ(pol.name(), "DICER-noBW");
}

TEST_F(ExtFixture, MbaRequiresController) {
  wire("milc1", "lbm1", /*with_mba=*/false);
  DicerMba pol;
  EXPECT_THROW(pol.setup(ctx), std::invalid_argument);
}

TEST_F(ExtFixture, MbaThrottlesBesUnderSaturation) {
  wire("milc1", "lbm1");
  DicerMba pol;
  pol.setup(ctx);
  EXPECT_EQ(pol.be_throttle_pct(), 100u);
  drive(pol, 10.0);
  EXPECT_LT(pol.be_throttle_pct(), 100u);
  // The throttle reached the machine through the MBA CLOS plumbing.
  EXPECT_LT(machine.mem_throttle(1), 1.0);
  EXPECT_DOUBLE_EQ(machine.mem_throttle(0), 1.0);  // HP never throttled
}

TEST_F(ExtFixture, MbaReleasesWhenQuiet) {
  wire("povray1", "namd1");  // almost no memory traffic
  DicerMba pol;
  pol.setup(ctx);
  drive(pol, 6.0);
  EXPECT_EQ(pol.be_throttle_pct(), 100u);
}

TEST_F(ExtFixture, MbaRespectsFloor) {
  wire("lbm1", "lbm1");  // hopelessly saturated
  DicerMbaConfig cfg;
  cfg.min_throttle_pct = 30;
  DicerMba pol(cfg);
  pol.setup(ctx);
  drive(pol, 30.0);
  EXPECT_GE(pol.be_throttle_pct(), 30u);
}

TEST_F(ExtFixture, MbaConfigValidation) {
  DicerMbaConfig cfg;
  cfg.release_fraction = 0.0;
  EXPECT_THROW(DicerMba{cfg}, std::invalid_argument);
  cfg.release_fraction = 1.0;
  EXPECT_THROW(DicerMba{cfg}, std::invalid_argument);
}

TEST(PolicyFactory, KnownNames) {
  EXPECT_EQ(make_policy("UM")->name(), "UM");
  EXPECT_EQ(make_policy("CT")->name(), "CT");
  EXPECT_EQ(make_policy("DICER")->name(), "DICER");
  EXPECT_EQ(make_policy("DICER-noBW")->name(), "DICER-noBW");
  EXPECT_EQ(make_policy("DICER+MBA")->name(), "DICER+MBA");
  EXPECT_EQ(make_policy("Static(7)")->name(), "Static(7)");
}

TEST(PolicyFactory, RejectsUnknownOrMalformed) {
  EXPECT_THROW(make_policy("HAL9000"), std::invalid_argument);
  EXPECT_THROW(make_policy("Static(0)"), std::invalid_argument);
  EXPECT_THROW(make_policy("Static(x)"), std::invalid_argument);
}

TEST(PolicyFactory, ListsKnownPolicies) {
  const auto names = known_policies();
  EXPECT_GE(names.size(), 5u);
}

}  // namespace
}  // namespace dicer::policy
