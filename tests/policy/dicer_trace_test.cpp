// Golden trace tests: the controller's decision sequence, observed through
// the dicer::trace subsystem, must match its DicerStats counters exactly —
// every counter increment is one typed event — and serialise to
// byte-identical JSONL across repetitions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/consolidation.hpp"
#include "policy/dicer.hpp"
#include "rdt/capability.hpp"
#include "sim/core/catalog.hpp"
#include "util/trace.hpp"

namespace dicer::policy {
namespace {

std::size_t count_kind(const std::vector<trace::Event>& events,
                       trace::Kind kind) {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::size_t count_validate_outcome(const std::vector<trace::Event>& events,
                                   const std::string& outcome) {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.kind == trace::Kind::kResetValidate &&
        trace::field_string(e, "outcome") == outcome) {
      ++n;
    }
  }
  return n;
}

struct ScenarioResult {
  std::vector<trace::Event> events;
  DicerStats stats;
  unsigned final_hp_ways = 0;
  bool ct_favoured = true;
};

/// Drive one scripted consolidation with a private tracer capturing every
/// default-mask event the controller emits.
ScenarioResult run_scenario(const char* hp, const char* be, double seconds,
                            const DicerConfig& cfg = {}) {
  trace::Tracer tracer;
  auto sink = std::make_shared<trace::MemorySink>();
  tracer.add_sink(sink);

  sim::Machine machine{sim::MachineConfig{}};
  const auto cap = rdt::Capability::probe(machine);
  rdt::CatController cat(machine, cap);
  rdt::Monitor monitor(machine, cap);
  PolicyContext ctx;
  ctx.machine = &machine;
  ctx.cat = &cat;
  ctx.monitor = &monitor;
  ctx.hp_core = 0;
  ctx.tracer = &tracer;
  const auto& catalog = sim::default_catalog();
  machine.attach(0, &catalog.by_name(hp));
  for (unsigned c = 1; c < 10; ++c) {
    ctx.be_cores.push_back(c);
    machine.attach(c, &catalog.by_name(be));
  }

  Dicer dicer(cfg);
  dicer.setup(ctx);
  while (machine.time_sec() < seconds) {
    machine.run_for(dicer.interval_sec());
    dicer.act(ctx);
  }
  tracer.remove_sink(sink);
  return {sink->take(), dicer.stats(), dicer.hp_ways(), dicer.ct_favoured()};
}

std::string serialize(const std::vector<trace::Event>& events) {
  std::string out;
  for (const auto& e : events) out += trace::to_jsonl(e) + '\n';
  return out;
}

TEST(DicerTrace, SetupEmitsOneSetupEventFirst) {
  const auto r = run_scenario("omnetpp1", "namd1", 2.0);
  ASSERT_FALSE(r.events.empty());
  const auto& e = r.events.front();
  EXPECT_EQ(e.kind, trace::Kind::kSetup);
  EXPECT_EQ(trace::field_string(e, "policy"), "DICER");
  EXPECT_EQ(trace::field_uint(e, "hp_ways"), 19u);
  EXPECT_EQ(trace::field_uint(e, "total_ways"), 20u);
  EXPECT_DOUBLE_EQ(trace::field_double(e, "period_sec"), 1.0);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kSetup), 1u);
  // The first period snapshot is interpreted in the warmup state.
  const auto& p = r.events[1];
  ASSERT_EQ(p.kind, trace::Kind::kPeriod);
  EXPECT_EQ(trace::field_uint(p, "period"), 1u);
  EXPECT_EQ(trace::field_string(p, "state"), "warmup");
  EXPECT_EQ(trace::field_string(p, "class"), "CT-F");
}

// CT-Favoured scripted scenario (omnetpp vs compute-light namd): stable
// IPC, no saturation — the controller donates ways. Every DicerStats
// counter increment must appear as exactly one typed event.
TEST(DicerTrace, CtFavouredEventCountsMatchStats) {
  const auto r = run_scenario("omnetpp1", "namd1", 8.0);
  EXPECT_TRUE(r.ct_favoured);
  EXPECT_GT(r.stats.way_donations, 0u);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kPeriod), r.stats.periods);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kDonation),
            r.stats.way_donations);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kSamplingStart),
            r.stats.samplings);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kSamplingStep),
            r.stats.sampling_steps);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kPhaseReset),
            r.stats.phase_resets);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kPerfReset),
            r.stats.perf_resets);
  EXPECT_EQ(count_validate_outcome(r.events, "rollback"), r.stats.rollbacks);
}

// CT-Thwarted scripted scenario (milc vs nine lbm): the link saturates,
// the controller reclassifies and samples.
TEST(DicerTrace, CtThwartedEventCountsMatchStats) {
  const auto r = run_scenario("milc1", "lbm1", 10.0);
  EXPECT_FALSE(r.ct_favoured);
  ASSERT_GE(r.stats.samplings, 1u);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kPeriod), r.stats.periods);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kSamplingStart),
            r.stats.samplings);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kSamplingStep),
            r.stats.sampling_steps);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kPhaseReset),
            r.stats.phase_resets);
  EXPECT_EQ(count_kind(r.events, trace::Kind::kPerfReset),
            r.stats.perf_resets);
  EXPECT_EQ(count_validate_outcome(r.events, "rollback"), r.stats.rollbacks);
  // Completed plans report their optimum; a sampling can only finish once.
  EXPECT_LE(count_kind(r.events, trace::Kind::kSamplingDone),
            r.stats.samplings);
  // The first sampling announces the full descending plan from CT ways.
  for (const auto& e : r.events) {
    if (e.kind != trace::Kind::kSamplingStart) continue;
    EXPECT_EQ(trace::field_uint(e, "sampling"), 1u);
    EXPECT_EQ(trace::field_string(e, "plan").substr(0, 2), "19");
    break;
  }
}

// Allocation events are a complete, gap-free account of every way change:
// each event's `from` is the previous event's `to`, starting at the setup
// allocation and ending at the controller's final allocation.
TEST(DicerTrace, AllocationEventsChainWithoutGaps) {
  const auto r = run_scenario("milc1", "lbm1", 10.0);
  std::uint64_t current = trace::field_uint(r.events.front(), "hp_ways");
  std::size_t changes = 0;
  for (const auto& e : r.events) {
    if (e.kind != trace::Kind::kAllocation) continue;
    EXPECT_EQ(trace::field_uint(e, "from"), current) << "gap in chain";
    current = trace::field_uint(e, "to");
    EXPECT_NE(trace::field_uint(e, "from"), current) << "no-op allocation";
    ++changes;
  }
  EXPECT_GT(changes, 0u);
  EXPECT_EQ(current, r.final_hp_ways);
}

// Every donation is materialised: a kDonation is followed by the
// kAllocation that applies it.
TEST(DicerTrace, DonationsAreApplied) {
  const auto r = run_scenario("omnetpp1", "namd1", 8.0);
  for (std::size_t i = 0; i < r.events.size(); ++i) {
    if (r.events[i].kind != trace::Kind::kDonation) continue;
    ASSERT_LT(i + 1, r.events.size());
    const auto& next = r.events[i + 1];
    ASSERT_EQ(next.kind, trace::Kind::kAllocation);
    EXPECT_EQ(trace::field_uint(next, "from"),
              trace::field_uint(r.events[i], "from"));
    EXPECT_EQ(trace::field_uint(next, "to"),
              trace::field_uint(r.events[i], "to"));
  }
}

// The acceptance bar for --trace: identical runs serialise to
// byte-identical JSONL (events carry simulated time only).
TEST(DicerTrace, JsonlByteIdenticalAcrossRuns) {
  const auto a = run_scenario("milc1", "lbm1", 6.0);
  const auto b = run_scenario("milc1", "lbm1", 6.0);
  const std::string ja = serialize(a.events);
  const std::string jb = serialize(b.events);
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, jb);
  const auto c = run_scenario("omnetpp1", "namd1", 6.0);
  const auto d = run_scenario("omnetpp1", "namd1", 6.0);
  EXPECT_EQ(serialize(c.events), serialize(d.events));
}

// Tracing must observe, never perturb: the controller's decisions are
// identical with and without a sink attached.
TEST(DicerTrace, TracingDoesNotChangeControllerBehaviour) {
  auto run_untraced = [] {
    sim::Machine machine{sim::MachineConfig{}};
    const auto cap = rdt::Capability::probe(machine);
    rdt::CatController cat(machine, cap);
    rdt::Monitor monitor(machine, cap);
    PolicyContext ctx;
    ctx.machine = &machine;
    ctx.cat = &cat;
    ctx.monitor = &monitor;
    ctx.hp_core = 0;
    const auto& catalog = sim::default_catalog();
    machine.attach(0, &catalog.by_name("milc1"));
    for (unsigned c = 1; c < 10; ++c) {
      ctx.be_cores.push_back(c);
      machine.attach(c, &catalog.by_name("lbm1"));
    }
    Dicer dicer;
    dicer.setup(ctx);
    while (machine.time_sec() < 8.0) {
      machine.run_for(dicer.interval_sec());
      dicer.act(ctx);
    }
    return dicer.stats();
  };
  const auto traced = run_scenario("milc1", "lbm1", 8.0);
  const auto plain = run_untraced();
  EXPECT_EQ(traced.stats.periods, plain.periods);
  EXPECT_EQ(traced.stats.samplings, plain.samplings);
  EXPECT_EQ(traced.stats.sampling_steps, plain.sampling_steps);
  EXPECT_EQ(traced.stats.way_donations, plain.way_donations);
  EXPECT_EQ(traced.stats.phase_resets, plain.phase_resets);
  EXPECT_EQ(traced.stats.perf_resets, plain.perf_resets);
  EXPECT_EQ(traced.stats.rollbacks, plain.rollbacks);
}

// Harness integration: run_consolidation brackets the policy's events
// with run_begin/run_end carrying the workload and the results.
TEST(DicerTrace, ConsolidationRunIsBracketed) {
  trace::Tracer tracer;
  auto sink = std::make_shared<trace::MemorySink>();
  tracer.add_sink(sink);
  const auto& catalog = sim::default_catalog();
  Dicer dicer;
  harness::ConsolidationConfig cfg;
  cfg.cores_used = 4;
  cfg.tracer = &tracer;
  const auto res = harness::run_consolidation(
      catalog.by_name("omnetpp1"), catalog.by_name("namd1"), dicer, cfg);
  tracer.remove_sink(sink);
  const auto events = sink->take();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().kind, trace::Kind::kRunBegin);
  EXPECT_EQ(trace::field_string(events.front(), "hp"), "omnetpp1");
  EXPECT_EQ(trace::field_uint(events.front(), "cores"), 4u);
  EXPECT_EQ(events.back().kind, trace::Kind::kRunEnd);
  EXPECT_DOUBLE_EQ(trace::field_double(events.back(), "hp_ipc"), res.hp_ipc);
  EXPECT_EQ(events[1].kind, trace::Kind::kSetup);
  EXPECT_EQ(count_kind(events, trace::Kind::kPeriod), dicer.stats().periods);
}

}  // namespace
}  // namespace dicer::policy
