#include "policy/admission.hpp"

#include <gtest/gtest.h>

#include "policy/factory.hpp"
#include "rdt/capability.hpp"
#include "sim/core/catalog.hpp"

namespace dicer::policy {
namespace {

struct AdmFixture : ::testing::Test {
  sim::Machine machine{sim::MachineConfig{}};
  rdt::Capability cap = rdt::Capability::probe(machine);
  rdt::CatController cat{machine, cap};
  rdt::Monitor monitor{machine, cap};
  PolicyContext ctx;

  void wire(const char* hp, const char* be, unsigned cores = 10) {
    ctx.machine = &machine;
    ctx.cat = &cat;
    ctx.monitor = &monitor;
    ctx.hp_core = 0;
    const auto& catalog = sim::default_catalog();
    machine.attach(0, &catalog.by_name(hp));
    for (unsigned c = 1; c < cores; ++c) {
      ctx.be_cores.push_back(c);
      machine.attach(c, &catalog.by_name(be));
    }
  }

  void drive(Dicer& pol, double seconds) {
    const double t_end = machine.time_sec() + seconds;
    while (machine.time_sec() < t_end) {
      machine.run_for(pol.interval_sec());
      pol.act(ctx);
    }
  }
};

TEST_F(AdmFixture, ConfigValidation) {
  AdmissionConfig cfg;
  cfg.park_after_saturated_periods = 0;
  EXPECT_THROW(DicerAdmission{cfg}, std::invalid_argument);
  cfg = AdmissionConfig{};
  cfg.readmit_fraction = 1.0;
  EXPECT_THROW(DicerAdmission{cfg}, std::invalid_argument);
}

TEST_F(AdmFixture, FactoryKnowsIt) {
  EXPECT_EQ(make_policy("DICER+ADM")->name(), "DICER+ADM");
}

TEST_F(AdmFixture, StartsWithAllBesRunning) {
  wire("namd1", "gcc_base3");
  DicerAdmission pol;
  pol.setup(ctx);
  EXPECT_EQ(pol.running_bes(), 9u);
  EXPECT_EQ(pol.parked_bes(), 0u);
}

TEST_F(AdmFixture, NeverParksOnQuietWorkload) {
  wire("omnetpp1", "namd1");
  DicerAdmission pol;
  pol.setup(ctx);
  drive(pol, 15.0);
  EXPECT_EQ(pol.parks(), 0u);
  EXPECT_EQ(pol.running_bes(), 9u);
}

TEST_F(AdmFixture, ParksBesUnderHopelessSaturation) {
  // Nine lbm BEs keep the link saturated at every allocation: cache
  // partitioning cannot help, so admission control must shed load.
  wire("milc1", "lbm1");
  DicerAdmission pol;
  pol.setup(ctx);
  drive(pol, 40.0);
  EXPECT_GT(pol.parks(), 0u);
  EXPECT_LT(pol.running_bes(), 9u);
  // Parked cores are genuinely descheduled.
  EXPECT_FALSE(machine.occupied(9));
}

TEST_F(AdmFixture, ParkingImprovesHpOverPlainDicer) {
  auto hp_ipc_with = [&](bool admission) {
    sim::Machine m{sim::MachineConfig{}};
    const auto c = rdt::Capability::probe(m);
    rdt::CatController cat2(m, c);
    rdt::Monitor mon2(m, c);
    PolicyContext ctx2;
    ctx2.machine = &m;
    ctx2.cat = &cat2;
    ctx2.monitor = &mon2;
    ctx2.hp_core = 0;
    const auto& catalog = sim::default_catalog();
    m.attach(0, &catalog.by_name("milc1"));
    for (unsigned core = 1; core < 10; ++core) {
      ctx2.be_cores.push_back(core);
      m.attach(core, &catalog.by_name("lbm1"));
    }
    std::unique_ptr<Dicer> pol;
    if (admission) pol = std::make_unique<DicerAdmission>();
    else pol = std::make_unique<Dicer>();
    pol->setup(ctx2);
    while (m.time_sec() < 50.0) {
      m.run_for(pol->interval_sec());
      pol->act(ctx2);
    }
    return m.telemetry(0).instructions / m.telemetry(0).active_cycles;
  };
  EXPECT_GT(hp_ipc_with(true), 1.1 * hp_ipc_with(false));
}

TEST_F(AdmFixture, RespectsMinimumRunningBes) {
  AdmissionConfig cfg;
  cfg.min_running_bes = 7;
  wire("milc1", "lbm1");
  DicerAdmission pol(cfg);
  pol.setup(ctx);
  drive(pol, 60.0);
  EXPECT_GE(pol.running_bes(), 7u);
}

TEST_F(AdmFixture, ReadmitsWhenLoadLightens) {
  // Force quick parking, then verify the quiet-streak path re-admits: use
  // a BE whose phases alternate between heavy and light demand... the
  // catalog's GemsFDTD (quiet setup, loud solver) gives the machine-level
  // variation; with aggressive thresholds the policy must both park and
  // readmit at least once over a long window.
  AdmissionConfig cfg;
  cfg.park_after_saturated_periods = 2;
  cfg.readmit_after_quiet_periods = 2;
  cfg.readmit_fraction = 0.9;
  wire("namd1", "GemsFDTD1");
  DicerAdmission pol(cfg);
  pol.setup(ctx);
  drive(pol, 90.0);
  if (pol.parks() > 0) {
    EXPECT_GT(pol.readmissions(), 0u);
  }
}

}  // namespace
}  // namespace dicer::policy
