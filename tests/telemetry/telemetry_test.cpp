#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/exposition.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace_counter_sink.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

namespace dicer::telemetry {
namespace {

TEST(TelemetryHistogram, BoundariesAreGeometric) {
  HistogramSpec spec;
  spec.first_bound = 0.5;
  spec.growth = 2.0;
  spec.buckets = 4;
  Histogram h(spec);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 0.5);
  EXPECT_DOUBLE_EQ(h.upper_bound(1), 1.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(2), 2.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(3), 4.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(4)));
  EXPECT_EQ(h.num_buckets(), 4u);
}

TEST(TelemetryHistogram, RejectsInvalidSpec) {
  HistogramSpec bad;
  bad.growth = 1.0;  // must be > 1
  EXPECT_THROW(Histogram{bad}, std::invalid_argument);
  bad = HistogramSpec{};
  bad.first_bound = 0.0;
  EXPECT_THROW(Histogram{bad}, std::invalid_argument);
  bad = HistogramSpec{};
  bad.buckets = 0;
  EXPECT_THROW(Histogram{bad}, std::invalid_argument);
}

TEST(TelemetryHistogram, LeSemanticsMatchPrometheus) {
  HistogramSpec spec;
  spec.first_bound = 1.0;
  spec.growth = 2.0;
  spec.buckets = 3;  // bounds 1, 2, 4, +Inf
  Histogram h(spec);
  h.record(1.0);  // le="1": on the boundary lands below it
  h.record(1.5);  // le="2"
  h.record(4.0);  // le="4"
  h.record(5.0);  // +Inf
  h.record(0.1);  // le="1"
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 11.6);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(TelemetryHistogram, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

// The histogram answers percentile queries from bucket counts alone, so it
// can only be exact to a bucket's width — but the rank convention matches
// util::stats::percentile, so on a dense sample the two agree to within
// one bucket's relative resolution.
TEST(TelemetryHistogram, PercentileTracksExactStats) {
  HistogramSpec spec;
  spec.first_bound = 0.02;
  spec.growth = 1.06;
  spec.buckets = 100;
  Histogram h(spec);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    // Smooth monotone ramp over [0.1, ~2.1].
    const double v = 0.1 + 2.0 * static_cast<double>(i) / 999.0;
    xs.push_back(v);
    h.record(v);
  }
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = util::percentile(xs, p);
    const double approx = h.percentile(p);
    // One bucket's relative width (growth - 1) plus interpolation slack.
    EXPECT_NEAR(approx, exact, exact * (spec.growth - 1.0) + 1e-9)
        << "p" << p;
  }
  // The extremes clamp to the observed min/max exactly.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.max());
}

TEST(TelemetryHistogram, MergeIsAssociativeOnCounts) {
  HistogramSpec spec;
  spec.first_bound = 0.1;
  spec.growth = 1.5;
  spec.buckets = 16;
  Histogram a(spec), b(spec), c(spec);
  Histogram ab_c(spec), a_bc(spec);
  const std::vector<double> va{0.05, 0.2, 1.7};
  const std::vector<double> vb{0.9, 0.9, 44.0};
  const std::vector<double> vc{0.3};
  for (double v : va) a.record(v);
  for (double v : vb) b.record(v);
  for (double v : vc) c.record(v);

  // (a + b) + c
  ab_c.merge_from(a);
  ab_c.merge_from(b);
  ab_c.merge_from(c);
  // a + (b + c)
  Histogram bc(spec);
  bc.merge_from(b);
  bc.merge_from(c);
  a_bc.merge_from(a);
  a_bc.merge_from(bc);

  for (unsigned i = 0; i <= spec.buckets; ++i) {
    EXPECT_EQ(ab_c.bucket_count(i), a_bc.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(ab_c.count(), 7u);
  EXPECT_EQ(a_bc.count(), 7u);
  EXPECT_DOUBLE_EQ(ab_c.min(), 0.05);
  EXPECT_DOUBLE_EQ(ab_c.max(), 44.0);
  // FP sums agree to rounding (not necessarily bit-equal across orders).
  EXPECT_NEAR(ab_c.sum(), a_bc.sum(), 1e-9);
}

TEST(TelemetryHistogram, MergeRejectsSpecMismatch) {
  Histogram a;  // default spec
  HistogramSpec other;
  other.buckets = 7;
  Histogram b(other);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(TelemetryHistogram, ResetZeroesEverything) {
  Histogram h;
  h.record(0.5);
  h.record(2.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  for (unsigned i = 0; i <= h.num_buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0u);
  }
}

TEST(TelemetryRegistry, RegisterOrFetchIsIdempotent) {
  Registry r;
  Counter& c1 = r.counter("dicer_x_total", "help");
  Counter& c2 = r.counter("dicer_x_total");
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  EXPECT_EQ(c2.value(), 3u);
  Gauge& g1 = r.gauge("dicer_g");
  EXPECT_EQ(&g1, &r.gauge("dicer_g"));
  Histogram& h1 = r.histogram("dicer_h");
  EXPECT_EQ(&h1, &r.histogram("dicer_h"));
  EXPECT_EQ(r.size(), 3u);
}

TEST(TelemetryRegistry, TypeConflictThrows) {
  Registry r;
  r.counter("dicer_x");
  EXPECT_THROW(r.gauge("dicer_x"), std::invalid_argument);
  EXPECT_THROW(r.histogram("dicer_x"), std::invalid_argument);
  r.histogram("dicer_h");
  HistogramSpec other;
  other.buckets = 5;
  EXPECT_THROW(r.histogram("dicer_h", other), std::invalid_argument);
}

TEST(TelemetryRegistry, BadNameThrows) {
  Registry r;
  EXPECT_THROW(r.counter(""), std::invalid_argument);
  EXPECT_THROW(r.counter("9starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(r.counter("has-dash"), std::invalid_argument);
  EXPECT_THROW(r.counter("has space"), std::invalid_argument);
  r.counter("ok_name:with_colon_0");  // full Prometheus charset
}

TEST(TelemetryRegistry, EntriesAreNameSorted) {
  Registry r;
  r.counter("zzz_total");
  r.gauge("aaa");
  r.histogram("mmm");
  const auto entries = r.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "aaa");
  EXPECT_EQ(entries[1].name, "mmm");
  EXPECT_EQ(entries[2].name, "zzz_total");
  EXPECT_NE(entries[0].gauge, nullptr);
  EXPECT_NE(entries[1].histogram, nullptr);
  EXPECT_NE(entries[2].counter, nullptr);
}

TEST(TelemetryRegistry, MergeFoldsShards) {
  Registry total, shard;
  total.counter("events_total").inc(2);
  shard.counter("events_total").inc(5);
  shard.gauge("level").set(1.5);
  shard.histogram("dist").record(0.4);
  total.merge_from(shard);
  EXPECT_EQ(total.counter("events_total").value(), 7u);
  EXPECT_DOUBLE_EQ(total.gauge("level").value(), 1.5);
  EXPECT_EQ(total.histogram("dist").count(), 1u);
}

TEST(TelemetryExposition, PrometheusFormat) {
  Registry r;
  r.counter("dicer_ops_total", "operations").inc(42);
  r.gauge("dicer_level").set(0.5);
  HistogramSpec spec;
  spec.first_bound = 1.0;
  spec.growth = 2.0;
  spec.buckets = 2;  // bounds 1, 2, +Inf
  auto& h = r.histogram("dicer_lat", spec, "latency");
  h.record(0.5);
  h.record(3.0);
  const std::string text = to_prometheus(r);
  EXPECT_NE(text.find("# HELP dicer_ops_total operations\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dicer_ops_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dicer_ops_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dicer_level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dicer_lat histogram\n"), std::string::npos);
  // Cumulative buckets: le="1" holds 1, le="2" still 1, +Inf all 2.
  EXPECT_NE(text.find("dicer_lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("dicer_lat_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("dicer_lat_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("dicer_lat_sum 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("dicer_lat_count 2\n"), std::string::npos);
  // Name order: dicer_lat block comes before dicer_level before ops.
  EXPECT_LT(text.find("dicer_lat_bucket"), text.find("dicer_level"));
  EXPECT_LT(text.find("dicer_level"), text.find("dicer_ops_total 42"));
}

TEST(TelemetryExposition, JsonSnapshot) {
  Registry r;
  r.counter("c_total").inc(7);
  r.gauge("g").set(2.5);
  r.histogram("h").record(1.0);
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"c_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TelemetryExposition, WritePrometheusIsAtomicAndReadable) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "dicer_telemetry_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "metrics.prom").string();
  Registry r;
  r.counter("x_total").inc(1);
  write_prometheus(r, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, to_prometheus(r));
  // No temp droppings left next to the output.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
  // Unwritable directory reports, not corrupts.
  EXPECT_THROW(write_prometheus(r, "/nonexistent_dir_zz/m.prom"),
               std::runtime_error);
}

TEST(TelemetryTraceCounterSink, CountsEventsPerKind) {
  Registry r;
  trace::Tracer tracer;
  auto sink = std::make_shared<TraceCounterSink>(r);
  tracer.add_sink(sink);
  tracer.emit(trace::Kind::kAllocation, 0.0, {{"hp_ways", 10}});
  tracer.emit(trace::Kind::kAllocation, 0.1, {{"hp_ways", 11}});
  tracer.emit(trace::Kind::kMigration, 0.2, {});
  tracer.remove_sink(sink);
  EXPECT_EQ(r.counter("dicer_events_allocation_total").value(), 2u);
  EXPECT_EQ(r.counter("dicer_events_migration_total").value(), 1u);
  EXPECT_EQ(r.counter("dicer_events_placement_total").value(), 0u);
  // After removal the sink no longer counts.
  tracer.emit(trace::Kind::kAllocation, 0.3, {});
  EXPECT_EQ(r.counter("dicer_events_allocation_total").value(), 2u);
}

TEST(TelemetryTraceCounterSink, TimerEventsAreIgnored) {
  Registry r;
  TraceCounterSink sink(r);
  // kTimer carries wall-clock durations — nondeterministic, so the sink
  // must neither register nor count it.
  for (const auto& e : r.entries()) {
    EXPECT_EQ(e.name.find("timer"), std::string::npos) << e.name;
  }
  trace::Event ev;
  ev.kind = trace::Kind::kTimer;
  sink.write(ev);  // must not crash or count anything
  std::uint64_t total = 0;
  for (const auto& e : r.entries()) total += e.counter->value();
  EXPECT_EQ(total, 0u);
}

}  // namespace
}  // namespace dicer::telemetry
