// ThreadSanitizer-targeted test: many util::ThreadPool workers hammer one
// Registry — register-or-fetch, counter incs, gauge sets and histogram
// records all racing. CI runs this under TSan (the test-name regex there
// matches "Telemetry"); the assertions below additionally pin that
// integer state is exact under any interleaving.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_pool.hpp"

namespace dicer::telemetry {
namespace {

TEST(TelemetryConcurrency, RegistrySurvivesParallelHammering) {
  constexpr unsigned kWorkers = 8;
  constexpr std::uint64_t kPerWorker = 20'000;
  Registry registry;
  // Pre-register one shared set; workers also register their own names
  // concurrently to exercise the registration path itself.
  Counter& shared_ctr = registry.counter("shared_total");
  Histogram& shared_hist = registry.histogram("shared_dist");

  util::ThreadPool pool(kWorkers);
  std::vector<std::future<void>> futs;
  for (unsigned w = 0; w < kWorkers; ++w) {
    futs.push_back(pool.submit([&, w] {
      Counter& own =
          registry.counter("worker_" + std::to_string(w) + "_total");
      Gauge& gauge = registry.gauge("level");  // shared, last-write-wins
      for (std::uint64_t i = 0; i < kPerWorker; ++i) {
        shared_ctr.inc();
        own.inc();
        gauge.set(static_cast<double>(i));
        shared_hist.record(0.001 *
                           static_cast<double>((w * kPerWorker + i) % 3000));
        // Register-or-fetch on a hot name, mid-flight.
        registry.counter("shared_total").inc(0);
      }
    }));
  }
  for (auto& f : futs) f.get();

  // Integer state is exact regardless of interleaving.
  EXPECT_EQ(shared_ctr.value(), kWorkers * kPerWorker);
  for (unsigned w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(registry.counter("worker_" + std::to_string(w) + "_total")
                  .value(),
              kPerWorker);
  }
  EXPECT_EQ(shared_hist.count(), kWorkers * kPerWorker);
  std::uint64_t bucket_total = 0;
  for (unsigned i = 0; i <= shared_hist.num_buckets(); ++i) {
    bucket_total += shared_hist.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, kWorkers * kPerWorker);
  // entries() snapshots cleanly after the storm.
  EXPECT_EQ(registry.size(), 2u + kWorkers + 1u);
}

TEST(TelemetryConcurrency, HistogramMinMaxAreExactUnderRaces) {
  constexpr unsigned kWorkers = 8;
  Histogram hist;
  util::ThreadPool pool(kWorkers);
  std::vector<std::future<void>> futs;
  for (unsigned w = 0; w < kWorkers; ++w) {
    futs.push_back(pool.submit([&, w] {
      for (int i = 0; i < 10'000; ++i) {
        hist.record(0.01 + 0.001 * static_cast<double>(w) +
                    0.0001 * static_cast<double>(i % 100));
      }
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_DOUBLE_EQ(hist.min(), 0.01);
  EXPECT_DOUBLE_EQ(hist.max(), 0.01 + 0.001 * (kWorkers - 1) + 0.0001 * 99);
  EXPECT_EQ(hist.count(), kWorkers * 10'000u);
}

}  // namespace
}  // namespace dicer::telemetry
