#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dicer::metrics {
namespace {

TEST(Slowdown, Basics) {
  EXPECT_DOUBLE_EQ(slowdown(1.0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(slowdown(0.8, 0.8), 1.0);
  EXPECT_THROW(slowdown(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(slowdown(1.0, 0.0), std::invalid_argument);
}

TEST(NormalisedIpc, Basics) {
  EXPECT_DOUBLE_EQ(normalised_ipc(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(normalised_ipc(1.0, 1.0), 1.0);
  EXPECT_THROW(normalised_ipc(0.0, 1.0), std::invalid_argument);
}

TEST(SlowdownAndNorm, AreReciprocal) {
  EXPECT_DOUBLE_EQ(slowdown(1.3, 0.9) * normalised_ipc(1.3, 0.9), 1.0);
}

TEST(Efu, NoImpactGivesOne) {
  const std::vector<IpcPair> apps = {{1.0, 1.0}, {0.5, 0.5}, {2.0, 2.0}};
  EXPECT_DOUBLE_EQ(effective_utilisation(apps), 1.0);
}

TEST(Efu, Equation1HandExample) {
  // Two apps at half speed: EFU = 2 / (2 + 2) = 0.5.
  const std::vector<IpcPair> apps = {{1.0, 0.5}, {1.0, 0.5}};
  EXPECT_DOUBLE_EQ(effective_utilisation(apps), 0.5);
  // Mixed: one at full, one at half -> 2 / (1 + 2) = 2/3.
  const std::vector<IpcPair> mixed = {{1.0, 1.0}, {1.0, 0.5}};
  EXPECT_DOUBLE_EQ(effective_utilisation(mixed), 2.0 / 3.0);
}

TEST(Efu, HarmonicMeanPunishesStarvation) {
  // One starved app drags EFU down much harder than an arithmetic mean
  // would — the fairness property the paper picked Eq. 1 for.
  const std::vector<IpcPair> apps = {{1.0, 1.0}, {1.0, 1.0}, {1.0, 0.01}};
  EXPECT_LT(effective_utilisation(apps), 0.03 * 3);
}

TEST(Efu, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(effective_utilisation({}), 0.0);
  const std::vector<IpcPair> bad = {{1.0, 0.0}};
  EXPECT_DOUBLE_EQ(effective_utilisation(bad), 0.0);
}

TEST(Efu, BoundedByBestAndWorstRatio) {
  const std::vector<IpcPair> apps = {{1.0, 0.9}, {2.0, 1.0}, {0.5, 0.45}};
  const double efu = effective_utilisation(apps);
  EXPECT_GE(efu, 0.5);   // worst normalised IPC
  EXPECT_LE(efu, 0.9);   // best normalised IPC
}

TEST(Slo, AchievedAtBoundary) {
  EXPECT_TRUE(slo_achieved(1.0, 0.9, 0.9));
  EXPECT_FALSE(slo_achieved(1.0, 0.8999, 0.9));
  EXPECT_TRUE(slo_achieved(1.0, 1.2, 1.0));
}

TEST(Slo, Validation) {
  EXPECT_THROW(slo_achieved(0.0, 1.0, 0.9), std::invalid_argument);
  EXPECT_THROW(slo_achieved(1.0, 1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(slo_achieved(1.0, 1.0, -0.1), std::invalid_argument);
}

TEST(Suci, MissedSloZeroesIndex) {
  EXPECT_DOUBLE_EQ(suci(false, 0.9, 1.0), 0.0);
}

TEST(Suci, LambdaOneIsEfu) {
  EXPECT_DOUBLE_EQ(suci(true, 0.7, 1.0), 0.7);
}

TEST(Suci, LambdaWeighting) {
  // lambda > 1 punishes low utilisation harder; < 1 is more forgiving.
  EXPECT_LT(suci(true, 0.7, 2.0), suci(true, 0.7, 1.0));
  EXPECT_GT(suci(true, 0.7, 0.5), suci(true, 0.7, 1.0));
  EXPECT_DOUBLE_EQ(suci(true, 0.49, 0.5), 0.7);
}

TEST(Suci, Validation) {
  EXPECT_THROW(suci(true, -0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(suci(true, 0.5, 0.0), std::invalid_argument);
}

TEST(Suci, FromPairsUsesHpFirstConvention) {
  // HP at 95%: meets SLO 0.9, misses 0.99.
  const std::vector<IpcPair> apps = {{1.0, 0.95}, {1.0, 0.5}};
  EXPECT_GT(suci(apps, 0.90, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(suci(apps, 0.99, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(suci({}, 0.9, 1.0), 0.0);
}

TEST(SloConformance, CountsFraction) {
  const std::vector<double> norms = {0.95, 0.85, 0.91, 0.70};
  EXPECT_DOUBLE_EQ(slo_conformance(norms, 0.90), 0.5);
  EXPECT_DOUBLE_EQ(slo_conformance(norms, 0.50), 1.0);
}

struct SuciCase {
  double efu;
  double lambda;
};

class SuciProperty : public ::testing::TestWithParam<SuciCase> {};

TEST_P(SuciProperty, StaysInUnitInterval) {
  const auto [efu, lambda] = GetParam();
  const double v = suci(true, efu, lambda);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, SuciProperty,
                         ::testing::Values(SuciCase{0.0, 1.0},
                                           SuciCase{0.3, 0.5},
                                           SuciCase{0.5, 2.0},
                                           SuciCase{1.0, 0.5},
                                           SuciCase{1.0, 2.0}));

}  // namespace
}  // namespace dicer::metrics
