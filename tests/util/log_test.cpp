#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace dicer::util {
namespace {

/// Redirects the logger to a temp file for one test, restoring stderr and
/// the previous threshold afterwards.
struct CapturedLog {
  std::string path = ::testing::TempDir() + "/dicer_log_capture.txt";
  std::FILE* file = nullptr;
  LogLevel saved = log_threshold();

  CapturedLog() {
    file = std::fopen(path.c_str(), "w");
    set_log_file(file);
  }
  ~CapturedLog() {
    set_log_file(nullptr);
    std::fclose(file);
    std::remove(path.c_str());
    set_log_threshold(saved);
  }
  std::vector<std::string> lines() {
    std::fflush(file);
    std::ifstream in(path);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }
};

TEST(Log, ParseLevelCoversAllNamesAndDefaults) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kOff), LogLevel::kOff);
}

TEST(Log, ThresholdFiltersAndPrefixes) {
  CapturedLog cap;
  set_log_threshold(LogLevel::kWarn);
  log_line(LogLevel::kInfo, "dropped");
  log_line(LogLevel::kWarn, "kept");
  log_line(LogLevel::kError, "also kept");
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[warn ] kept");
  EXPECT_EQ(lines[1], "[error] also kept");
}

TEST(Log, StreamMacroAssemblesOneLine) {
  CapturedLog cap;
  set_log_threshold(LogLevel::kDebug);
  DICER_DEBUG << "ways " << 19 << " -> " << 18;
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[debug] ways 19 -> 18");
}

// The satellite guarantee: concurrent loggers never interleave partial
// lines. Each worker writes distinctive lines; every captured line must be
// exactly one worker's whole message. Run under TSan in CI.
TEST(Log, ConcurrentWritersNeverInterleave) {
  CapturedLog cap;
  set_log_threshold(LogLevel::kInfo);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 200;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futs;
    for (unsigned w = 0; w < kThreads; ++w) {
      futs.push_back(pool.submit([w] {
        const std::string body(20 + w, static_cast<char>('a' + w));
        for (unsigned i = 0; i < kPerThread; ++i) {
          log_line(LogLevel::kInfo, body);
        }
      }));
    }
    for (auto& f : futs) f.get();
  }
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), kThreads * kPerThread);
  for (const auto& line : lines) {
    ASSERT_GE(line.size(), 28u) << "torn line: " << line;
    const char c = line[8];
    ASSERT_GE(c, 'a');
    ASSERT_LE(c, 'd');
    const std::string expected =
        "[info ] " +
        std::string(20 + static_cast<unsigned>(c - 'a'), c);
    EXPECT_EQ(line, expected);
  }
}

}  // namespace
}  // namespace dicer::util
