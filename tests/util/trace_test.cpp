#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace dicer::trace {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(TraceKinds, NamesAreUniqueAndKnown) {
  std::vector<std::string> names;
  for (unsigned k = 0; k < static_cast<unsigned>(Kind::kCount); ++k) {
    const std::string n = kind_name(static_cast<Kind>(k));
    EXPECT_NE(n, "?") << "kind " << k << " missing from kind_name";
    for (const auto& prev : names) EXPECT_NE(n, prev);
    names.push_back(n);
  }
}

TEST(TraceKinds, DefaultMaskExcludesVerboseKinds) {
  EXPECT_EQ(kDefaultKinds & mask_of(Kind::kQuantum), 0u);
  EXPECT_EQ(kDefaultKinds & mask_of(Kind::kMonitorPoll), 0u);
  EXPECT_EQ(kDefaultKinds & mask_of(Kind::kTimer), 0u);
  EXPECT_NE(kDefaultKinds & mask_of(Kind::kPeriod), 0u);
  EXPECT_NE(kDefaultKinds & mask_of(Kind::kDonation), 0u);
  EXPECT_EQ(kDefaultKinds & ~kAllKinds, 0u);
}

TEST(TraceEvent, FieldLookupAndConversions) {
  Event e{Kind::kPeriod, 2.5,
          {{"ipc", 1.25},
           {"ways", 19u},
           {"delta", -3},
           {"sat", true},
           {"state", "steady"}}};
  EXPECT_NE(find_field(e, "ipc"), nullptr);
  EXPECT_EQ(find_field(e, "nope"), nullptr);
  EXPECT_DOUBLE_EQ(field_double(e, "ipc"), 1.25);
  EXPECT_DOUBLE_EQ(field_double(e, "ways"), 19.0);   // uint -> double
  EXPECT_DOUBLE_EQ(field_double(e, "delta"), -3.0);  // int -> double
  EXPECT_DOUBLE_EQ(field_double(e, "nope", 7.0), 7.0);
  EXPECT_EQ(field_uint(e, "ways"), 19u);
  EXPECT_EQ(field_uint(e, "delta", 42), 42u);  // negative -> default
  EXPECT_TRUE(field_bool(e, "sat"));
  EXPECT_FALSE(field_bool(e, "state", false));  // type mismatch -> default
  EXPECT_EQ(field_string(e, "state"), "steady");
  EXPECT_EQ(field_string(e, "ipc", "x"), "x");
}

TEST(TraceEvent, JsonlFormat) {
  Event e{Kind::kDonation, 5.0,
          {{"from", 19u}, {"to", 18u}, {"hp_ipc", 1.5}, {"ok", true}}};
  EXPECT_EQ(to_jsonl(e),
            "{\"t\":5,\"kind\":\"donation\",\"from\":19,\"to\":18,"
            "\"hp_ipc\":1.5,\"ok\":true}");
}

TEST(TraceEvent, JsonlEscapesStrings) {
  Event e{Kind::kSetup, 0.0, {{"name", "a\"b\\c\nd"}}};
  EXPECT_EQ(to_jsonl(e),
            "{\"t\":0,\"kind\":\"setup\",\"name\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(TraceEvent, CsvRowJoinsAndEscapesFields) {
  Event e{Kind::kAllocation, 1.25, {{"from", 19u}, {"to", 18u}}};
  // Field blob contains ';' but no CSV metacharacters -> unquoted.
  EXPECT_EQ(to_csv_row(e), "1.25,allocation,from=19;to=18");
  Event q{Kind::kSetup, 0.0, {{"plan", "19,17,15"}}};
  EXPECT_EQ(to_csv_row(q), "0,setup,\"plan=19,17,15\"");
}

TEST(TraceEvent, DoublesSerialiseDeterministically) {
  Event e{Kind::kPeriod, 1.0 / 3.0, {{"bw", 49.999999e9}}};
  const std::string a = to_jsonl(e);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(to_jsonl(e), a);
}

TEST(Tracer, DisabledWithoutSinks) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.enabled(Kind::kPeriod));
  t.emit(Kind::kPeriod, 0.0, {});  // must be a harmless no-op
}

TEST(Tracer, SinkAttachDetachTogglesEnabled) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.add_sink(sink);
  EXPECT_TRUE(t.enabled(Kind::kPeriod));
  EXPECT_FALSE(t.enabled(Kind::kQuantum)) << "verbose kind on by default";
  t.remove_sink(sink);
  EXPECT_FALSE(t.enabled());
  t.remove_sink(sink);  // removing twice is a no-op
}

TEST(Tracer, KindMaskFiltersAtEmitToo) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.add_sink(sink);
  t.set_kinds(mask_of(Kind::kDonation));
  EXPECT_TRUE(t.enabled(Kind::kDonation));
  EXPECT_FALSE(t.enabled(Kind::kPeriod));
  // Unconditional emits (no enabled() guard) must still be filtered.
  t.emit(Kind::kPeriod, 1.0, {});
  t.emit(Kind::kDonation, 2.0, {{"from", 19u}, {"to", 18u}});
  ASSERT_EQ(sink->events().size(), 1u);
  EXPECT_EQ(sink->events()[0].kind, Kind::kDonation);
}

TEST(Tracer, MultipleSinksEachReceiveEveryEvent) {
  Tracer t;
  auto a = std::make_shared<MemorySink>();
  auto b = std::make_shared<MemorySink>();
  t.add_sink(a);
  t.add_sink(b);
  t.emit(Kind::kSetup, 0.0, {{"policy", "DICER"}});
  t.emit(Kind::kPeriod, 1.0, {{"hp_ipc", 1.5}});
  ASSERT_EQ(a->events().size(), 2u);
  ASSERT_EQ(b->events().size(), 2u);
  EXPECT_EQ(field_string(a->events()[0], "policy"), "DICER");
  EXPECT_DOUBLE_EQ(field_double(b->events()[1], "hp_ipc"), 1.5);
}

TEST(Tracer, GlobalTracerHasNoSinksByDefault) {
  // The process-global tracer must stay disabled unless a test/bench
  // explicitly installs a sink — this is the near-zero-cost default path.
  EXPECT_FALSE(Tracer::global().enabled());
  EXPECT_EQ(&resolve(nullptr), &Tracer::global());
  Tracer local;
  EXPECT_EQ(&resolve(&local), &local);
}

TEST(TraceSinks, JsonlFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/trace_test.jsonl";
  std::remove(path.c_str());
  {
    Tracer t;
    t.add_sink(make_file_sink(path));
    t.emit(Kind::kSetup, 0.0, {{"policy", "DICER"}, {"hp_ways", 19u}});
    t.emit(Kind::kDonation, 3.0, {{"from", 19u}, {"to", 18u}});
    t.clear_sinks();  // flushes
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "{\"t\":0,\"kind\":\"setup\",\"policy\":\"DICER\","
            "\"hp_ways\":19}");
  EXPECT_EQ(lines[1],
            "{\"t\":3,\"kind\":\"donation\",\"from\":19,\"to\":18}");
  std::remove(path.c_str());
}

TEST(TraceSinks, MakeFileSinkDispatchesOnExtension) {
  const std::string csv_path = ::testing::TempDir() + "/trace_test.csv";
  std::remove(csv_path.c_str());
  {
    Tracer t;
    t.add_sink(make_file_sink(csv_path));
    t.emit(Kind::kAllocation, 1.25, {{"from", 19u}, {"to", 18u}});
    t.flush();
  }
  const auto lines = read_lines(csv_path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "t_sec,kind,fields");
  EXPECT_EQ(lines[1], "1.25,allocation,from=19;to=18");
  std::remove(csv_path.c_str());
}

TEST(TraceSinks, FileSinkThrowsOnUnwritablePath) {
  EXPECT_THROW(JsonlSink("/nonexistent-dir/x.jsonl"), std::runtime_error);
  EXPECT_THROW(make_file_sink("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(TraceSinks, MemorySinkTakeDrains) {
  MemorySink sink;
  sink.write(Event{Kind::kSetup, 0.0, {}});
  const auto taken = sink.take();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(sink.events().empty());
}

// The concurrency guarantee the parallel sweep relies on: many threads
// emitting into one tracer, every event delivered whole and none lost.
// Run under -DDICER_SANITIZE=thread in CI.
TEST(Tracer, ConcurrentEmitDeliversWholeEvents) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.add_sink(sink);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 250;
  {
    util::ThreadPool pool(kThreads);
    std::vector<std::future<void>> futs;
    for (unsigned w = 0; w < kThreads; ++w) {
      futs.push_back(pool.submit([&t, w] {
        for (unsigned i = 0; i < kPerThread; ++i) {
          t.emit(Kind::kPeriod, static_cast<double>(i),
                 {{"worker", w}, {"seq", i}, {"check", w * 1000u + i}});
        }
      }));
    }
    for (auto& f : futs) f.get();
  }
  t.remove_sink(sink);
  const auto events = sink->take();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::vector<unsigned> next_seq(kThreads, 0);
  for (const auto& e : events) {
    const auto w = field_uint(e, "worker");
    const auto seq = field_uint(e, "seq");
    ASSERT_LT(w, kThreads);
    // Whole-event delivery: the three fields belong to one emit call...
    EXPECT_EQ(field_uint(e, "check"), w * 1000 + seq);
    // ...and each thread's events arrive in its emission order.
    EXPECT_EQ(seq, next_seq[w]);
    next_seq[w] = static_cast<unsigned>(seq) + 1;
  }
}

}  // namespace
}  // namespace dicer::trace
