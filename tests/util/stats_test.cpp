#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dicer::util {
namespace {

const std::vector<double> kSimple = {1.0, 2.0, 4.0};

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean(kSimple), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, GmeanBasics) {
  EXPECT_DOUBLE_EQ(gmean(kSimple), 2.0);  // cbrt(8)
  EXPECT_DOUBLE_EQ(gmean({}), 0.0);
}

TEST(Stats, GmeanRejectsNonPositive) {
  EXPECT_DOUBLE_EQ(gmean(std::vector<double>{1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(gmean(std::vector<double>{1.0, -2.0}), 0.0);
}

TEST(Stats, HmeanBasics) {
  EXPECT_DOUBLE_EQ(hmean(std::vector<double>{1.0, 1.0}), 1.0);
  // hmean(1,2,4) = 3 / (1 + .5 + .25) = 12/7
  EXPECT_DOUBLE_EQ(hmean(kSimple), 12.0 / 7.0);
  EXPECT_DOUBLE_EQ(hmean({}), 0.0);
}

TEST(Stats, MeanInequalityChain) {
  // hmean <= gmean <= mean for positive samples.
  const std::vector<double> xs = {0.3, 1.7, 2.9, 0.8, 5.5};
  EXPECT_LE(hmean(xs), gmean(xs) + 1e-12);
  EXPECT_LE(gmean(xs), mean(xs) + 1e-12);
}

TEST(Stats, StddevBasics) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0, 5.0, 5.0}), 0.0);
  EXPECT_NEAR(stddev(std::vector<double>{1.0, 3.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min(kSimple), 1.0);
  EXPECT_DOUBLE_EQ(max(kSimple), 4.0);
  EXPECT_DOUBLE_EQ(min({}), 0.0);
  EXPECT_DOUBLE_EQ(max({}), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  EXPECT_DOUBLE_EQ(percentile(kSimple, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(kSimple, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(kSimple, 50.0), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Stats, PercentileClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(percentile(kSimple, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(kSimple, 200.0), 4.0);
}

TEST(Stats, MedianUnsortedInput) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{9.0, 1.0, 5.0}), 5.0);
}

TEST(Stats, EmpiricalCdfShape) {
  const auto cdf = empirical_cdf(std::vector<double>{3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Stats, CdfAtThresholds) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(cdf_at(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(xs, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf_at({}, 1.0), 0.0);
}

TEST(Stats, FractionAtLeast) {
  const std::vector<double> xs = {0.7, 0.8, 0.9, 1.0};
  EXPECT_DOUBLE_EQ(fraction_at_least(xs, 0.9), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_least(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_at_least({}, 0.5), 0.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  RunningStats a, b, all;
  for (double x : {1.0, 2.0, 3.0}) {
    a.add(x);
    all.add(x);
  }
  for (double x : {10.0, 20.0}) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats rs;
  rs.add(1.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
}

TEST(RecentWindow, KeepsOnlyRecent) {
  RecentWindow w(3);
  for (double x : {1.0, 2.0, 3.0, 4.0}) w.add(x);
  EXPECT_TRUE(w.full());
  // Window now holds {2, 3, 4}: gmean = cbrt(24).
  EXPECT_NEAR(w.gmean(), std::cbrt(24.0), 1e-12);
  EXPECT_NEAR(w.mean(), 3.0, 1e-12);
}

TEST(RecentWindow, NotFullUntilCapacity) {
  RecentWindow w(3);
  w.add(2.0);
  EXPECT_FALSE(w.full());
  EXPECT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.gmean(), 2.0);
}

TEST(RecentWindow, GmeanZeroOnNonPositive) {
  RecentWindow w(2);
  w.add(1.0);
  w.add(0.0);
  EXPECT_DOUBLE_EQ(w.gmean(), 0.0);
}

TEST(RecentWindow, ResetEmpties) {
  RecentWindow w(2);
  w.add(1.0);
  w.reset();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.gmean(), 0.0);
}

TEST(RecentWindow, ZeroCapacityClampedToOne) {
  RecentWindow w(0);
  w.add(3.0);
  w.add(5.0);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
}

// Paper Eq. 2 usage pattern: geometric mean of last three bandwidths.
TEST(RecentWindow, PhaseDetectorUsage) {
  RecentWindow w(3);
  for (double bw : {4.0e9, 5.0e9, 6.0e9}) w.add(bw);
  const double ref = w.gmean();
  EXPECT_GT(8.0e9, 1.3 * ref);   // 8 GB/s would trip a 30% threshold
  EXPECT_LT(6.0e9, 1.3 * ref);   // 6 GB/s would not
}

class CdfProperty : public ::testing::TestWithParam<int> {};

TEST_P(CdfProperty, MonotoneNondecreasing) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(std::fmod(static_cast<double>(i * GetParam() % 97), 13.0));
  }
  double prev = -1.0;
  for (double t = 0.0; t <= 13.0; t += 0.5) {
    const double c = cdf_at(xs, t);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(Shuffles, CdfProperty, ::testing::Values(3, 7, 11, 29));

}  // namespace
}  // namespace dicer::util
