#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dicer::util {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespected) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.0, 5.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Xoshiro256, UniformMeanNearOneHalf) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BelowStaysBelow) {
  Xoshiro256 rng(4);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NormalMomentsMatch) {
  Xoshiro256 rng(6);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Xoshiro256, NormalScaledMoments) {
  Xoshiro256 rng(7);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro256, LognormalMedianIsMedian) {
  Xoshiro256 rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal_median(4.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 4.0, 0.15);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, SplitProducesIndependentStream) {
  Xoshiro256 parent(11);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 2);
}

class XoshiroSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XoshiroSeedSweep, ReproducibleAndWellDistributed) {
  Xoshiro256 a(GetParam()), b(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = a.uniform();
    EXPECT_EQ(x, b.uniform());
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XoshiroSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 0xD1CE5EEDull,
                                           ~0ull));

}  // namespace
}  // namespace dicer::util
