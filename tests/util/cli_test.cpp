#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace dicer::util {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, KeyEqualsValue) {
  const auto a = make({"prog", "--hp=milc1"});
  EXPECT_EQ(a.get_or("hp", ""), "milc1");
}

TEST(CliArgs, KeySpaceValue) {
  const auto a = make({"prog", "--hp", "milc1"});
  EXPECT_EQ(a.get_or("hp", ""), "milc1");
}

TEST(CliArgs, BareFlag) {
  const auto a = make({"prog", "--recompute"});
  EXPECT_TRUE(a.has("recompute"));
  EXPECT_TRUE(a.get_bool("recompute", false));
}

TEST(CliArgs, BareFlagFollowedByFlag) {
  const auto a = make({"prog", "--recompute", "--cores", "5"});
  EXPECT_TRUE(a.get_bool("recompute", false));
  EXPECT_EQ(a.get_int("cores", 0), 5);
}

TEST(CliArgs, MissingKeyUsesDefault) {
  const auto a = make({"prog"});
  EXPECT_FALSE(a.has("x"));
  EXPECT_EQ(a.get_or("x", "d"), "d");
  EXPECT_EQ(a.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(a.get_double("x", 2.5), 2.5);
  EXPECT_TRUE(a.get_bool("x", true));
}

TEST(CliArgs, NumericParsing) {
  const auto a = make({"prog", "--n=12", "--f=0.75"});
  EXPECT_EQ(a.get_int("n", 0), 12);
  EXPECT_DOUBLE_EQ(a.get_double("f", 0.0), 0.75);
}

TEST(CliArgs, BoolSpellings) {
  EXPECT_TRUE(make({"p", "--b=true"}).get_bool("b", false));
  EXPECT_TRUE(make({"p", "--b=1"}).get_bool("b", false));
  EXPECT_TRUE(make({"p", "--b=yes"}).get_bool("b", false));
  EXPECT_TRUE(make({"p", "--b=on"}).get_bool("b", false));
  EXPECT_FALSE(make({"p", "--b=false"}).get_bool("b", true));
  EXPECT_FALSE(make({"p", "--b=0"}).get_bool("b", true));
}

TEST(CliArgs, PositionalArguments) {
  const auto a = make({"prog", "one", "--k=v", "two"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "one");
  EXPECT_EQ(a.positional()[1], "two");
}

TEST(CliArgs, ProgramName) {
  EXPECT_EQ(make({"myprog"}).program(), "myprog");
}

TEST(CliArgs, OptionalGet) {
  const auto a = make({"prog", "--k=v"});
  EXPECT_TRUE(a.get("k").has_value());
  EXPECT_FALSE(a.get("z").has_value());
}

}  // namespace
}  // namespace dicer::util
