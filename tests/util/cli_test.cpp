#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace dicer::util {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, KeyEqualsValue) {
  const auto a = make({"prog", "--hp=milc1"});
  EXPECT_EQ(a.get_or("hp", ""), "milc1");
}

TEST(CliArgs, KeySpaceValue) {
  const auto a = make({"prog", "--hp", "milc1"});
  EXPECT_EQ(a.get_or("hp", ""), "milc1");
}

TEST(CliArgs, BareFlag) {
  const auto a = make({"prog", "--recompute"});
  EXPECT_TRUE(a.has("recompute"));
  EXPECT_TRUE(a.get_bool("recompute", false));
}

TEST(CliArgs, BareFlagFollowedByFlag) {
  const auto a = make({"prog", "--recompute", "--cores", "5"});
  EXPECT_TRUE(a.get_bool("recompute", false));
  EXPECT_EQ(a.get_int("cores", 0), 5);
}

TEST(CliArgs, MissingKeyUsesDefault) {
  const auto a = make({"prog"});
  EXPECT_FALSE(a.has("x"));
  EXPECT_EQ(a.get_or("x", "d"), "d");
  EXPECT_EQ(a.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(a.get_double("x", 2.5), 2.5);
  EXPECT_TRUE(a.get_bool("x", true));
}

TEST(CliArgs, NumericParsing) {
  const auto a = make({"prog", "--n=12", "--f=0.75"});
  EXPECT_EQ(a.get_int("n", 0), 12);
  EXPECT_DOUBLE_EQ(a.get_double("f", 0.0), 0.75);
}

TEST(CliArgs, BoolSpellings) {
  EXPECT_TRUE(make({"p", "--b=true"}).get_bool("b", false));
  EXPECT_TRUE(make({"p", "--b=1"}).get_bool("b", false));
  EXPECT_TRUE(make({"p", "--b=yes"}).get_bool("b", false));
  EXPECT_TRUE(make({"p", "--b=on"}).get_bool("b", false));
  EXPECT_FALSE(make({"p", "--b=false"}).get_bool("b", true));
  EXPECT_FALSE(make({"p", "--b=0"}).get_bool("b", true));
}

TEST(CliArgs, PositionalArguments) {
  const auto a = make({"prog", "one", "--k=v", "two"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "one");
  EXPECT_EQ(a.positional()[1], "two");
}

TEST(CliArgs, ProgramName) {
  EXPECT_EQ(make({"myprog"}).program(), "myprog");
}

TEST(CliArgs, OptionalGet) {
  const auto a = make({"prog", "--k=v"});
  EXPECT_TRUE(a.get("k").has_value());
  EXPECT_FALSE(a.get("z").has_value());
}

// --- strict numeric parsing: no silent garbage -------------------------

TEST(CliArgs, IntRejectsTrailingJunk) {
  // The historical bug: strtol("4x") silently returned 4.
  EXPECT_THROW(make({"p", "--jobs=4x"}).get_int("jobs", 0), CliError);
  EXPECT_THROW(make({"p", "--jobs", "12 "}).get_int("jobs", 0), CliError);
}

TEST(CliArgs, IntRejectsNonNumeric) {
  // And strtol("abc") silently returned 0.
  EXPECT_THROW(make({"p", "--cores=abc"}).get_int("cores", 3), CliError);
}

TEST(CliArgs, IntRejectsOutOfRange) {
  EXPECT_THROW(
      make({"p", "--n=999999999999999999999999"}).get_int("n", 0), CliError);
}

TEST(CliArgs, IntAcceptsNegative) {
  EXPECT_EQ(make({"p", "--n=-3"}).get_int("n", 0), -3);
}

TEST(CliArgs, DoubleRejectsTrailingJunk) {
  EXPECT_THROW(make({"p", "--slo=0.9x"}).get_double("slo", 0.0), CliError);
  EXPECT_THROW(make({"p", "--slo=1.5.2"}).get_double("slo", 0.0), CliError);
  EXPECT_THROW(make({"p", "--slo=oops"}).get_double("slo", 0.0), CliError);
}

TEST(CliArgs, DoubleAcceptsScientific) {
  EXPECT_DOUBLE_EQ(make({"p", "--bw=6.83e10"}).get_double("bw", 0.0), 6.83e10);
}

TEST(CliArgs, BoolRejectsUnknownSpelling) {
  EXPECT_THROW(make({"p", "--b=maybe"}).get_bool("b", false), CliError);
}

TEST(CliArgs, ErrorMessageNamesFlagAndValue) {
  try {
    make({"p", "--jobs=4x"}).get_int("jobs", 0);
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--jobs"), std::string::npos) << what;
    EXPECT_NE(what.find("4x"), std::string::npos) << what;
    EXPECT_NE(what.find("expected"), std::string::npos) << what;
  }
}

TEST(CliMainGuard, TranslatesCliErrorToExitTwo) {
  const int rc = cli_main_guard(
      "prog", []() -> int { throw CliError("invalid value for --x"); });
  EXPECT_EQ(rc, 2);
}

TEST(CliMainGuard, TranslatesOtherExceptionsToExitOne) {
  const int rc = cli_main_guard(
      "prog", []() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(rc, 1);
}

TEST(CliMainGuard, PassesThroughReturnCode) {
  EXPECT_EQ(cli_main_guard("prog", [] { return 0; }), 0);
  EXPECT_EQ(cli_main_guard("prog", [] { return 3; }), 3);
}

}  // namespace
}  // namespace dicer::util
