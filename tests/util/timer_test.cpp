#include "util/timer.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace dicer::trace {
namespace {

TEST(TimerRegistry, AccumulatesPerLabel) {
  TimerRegistry reg;
  reg.record("load", 2.0);
  reg.record("load", 6.0);
  reg.record("save", 1.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);  // sorted by label
  EXPECT_EQ(snap[0].first, "load");
  EXPECT_EQ(snap[0].second.count, 2u);
  EXPECT_DOUBLE_EQ(snap[0].second.total_ms, 8.0);
  EXPECT_DOUBLE_EQ(snap[0].second.min_ms, 2.0);
  EXPECT_DOUBLE_EQ(snap[0].second.max_ms, 6.0);
  EXPECT_EQ(snap[1].first, "save");
  EXPECT_EQ(snap[1].second.count, 1u);
}

TEST(TimerRegistry, ResetClears) {
  TimerRegistry reg;
  reg.record("x", 1.0);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_EQ(reg.format(), "");
}

TEST(TimerRegistry, FormatMentionsEveryLabel) {
  TimerRegistry reg;
  reg.record("sweep.compute", 10.0);
  reg.record("sweep.load_cache", 0.5);
  const std::string table = reg.format();
  EXPECT_NE(table.find("sweep.compute"), std::string::npos);
  EXPECT_NE(table.find("sweep.load_cache"), std::string::npos);
}

TEST(TimerRegistry, ConcurrentRecordIsSafe) {
  TimerRegistry reg;
  {
    util::ThreadPool pool(4);
    std::vector<std::future<void>> futs;
    for (int w = 0; w < 4; ++w) {
      futs.push_back(pool.submit([&reg] {
        for (int i = 0; i < 200; ++i) reg.record("hot", 0.25);
      }));
    }
    for (auto& f : futs) f.get();
  }
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].second.count, 800u);
  EXPECT_DOUBLE_EQ(snap[0].second.total_ms, 200.0);
}

TEST(ScopedTimer, RecordsIntoRegistry) {
  TimerRegistry reg;
  { ScopedTimer timer("scope", nullptr, &reg); }
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "scope");
  EXPECT_EQ(snap[0].second.count, 1u);
  EXPECT_GE(snap[0].second.total_ms, 0.0);
}

TEST(ScopedTimer, ElapsedIsMonotonic) {
  TimerRegistry reg;
  ScopedTimer timer("scope", nullptr, &reg);
  const double a = timer.elapsed_ms();
  const double b = timer.elapsed_ms();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(ScopedTimer, NoTimerEventUnderDefaultMask) {
  // kTimer is outside kDefaultKinds: a traced run stays deterministic
  // unless profiling is explicitly requested.
  Tracer tracer;
  auto sink = std::make_shared<MemorySink>();
  tracer.add_sink(sink);
  TimerRegistry reg;
  { ScopedTimer timer("scope", &tracer, &reg); }
  EXPECT_TRUE(sink->events().empty());
}

TEST(ScopedTimer, EmitsTimerEventWhenOptedIn) {
  Tracer tracer;
  auto sink = std::make_shared<MemorySink>();
  tracer.add_sink(sink);
  tracer.set_kinds(kAllKinds);
  TimerRegistry reg;
  { ScopedTimer timer("sweep.compute", &tracer, &reg); }
  ASSERT_EQ(sink->events().size(), 1u);
  const auto& e = sink->events()[0];
  EXPECT_EQ(e.kind, Kind::kTimer);
  EXPECT_EQ(field_string(e, "label"), "sweep.compute");
  EXPECT_GE(field_double(e, "ms", -1.0), 0.0);
}

}  // namespace
}  // namespace dicer::trace
