#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace dicer::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ClampsWorkerCountToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  auto fut = pool.submit(
      []() -> int { throw std::runtime_error("task boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The worker that ran the throwing task must survive for later tasks.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, HardwareWorkersAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

// --- resolve_jobs: explicit > env > hardware, with strict env parsing --

namespace {

/// Scoped setenv/unsetenv so tests cannot leak state into each other.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

constexpr const char* kVar = "DICER_TEST_JOBS";

}  // namespace

TEST(ResolveJobs, ExplicitRequestWins) {
  EnvGuard env(kVar, "2");
  EXPECT_EQ(ThreadPool::resolve_jobs(3, kVar), 3u);
}

TEST(ResolveJobs, ReadsEnvWhenUnrequested) {
  // 2 is always under the clamp (4x hardware concurrency, >= 4).
  EnvGuard env(kVar, "2");
  EXPECT_EQ(ThreadPool::resolve_jobs(0, kVar), 2u);
}

TEST(ResolveJobs, UnsetEnvFallsBackToHardware) {
  EnvGuard env(kVar, nullptr);
  EXPECT_EQ(ThreadPool::resolve_jobs(0, kVar),
            ThreadPool::hardware_workers());
}

TEST(ResolveJobs, RejectsPartialParse) {
  // The historical bug: strtoul("4x") silently yielded 4 workers.
  EnvGuard env(kVar, "4x");
  EXPECT_EQ(ThreadPool::resolve_jobs(0, kVar),
            ThreadPool::hardware_workers());
}

TEST(ResolveJobs, RejectsNonNumeric) {
  EnvGuard env(kVar, "many");
  EXPECT_EQ(ThreadPool::resolve_jobs(0, kVar),
            ThreadPool::hardware_workers());
}

TEST(ResolveJobs, RejectsNegative) {
  // strtoul("-1") wraps to ULONG_MAX; the sign must be rejected outright.
  EnvGuard env(kVar, "-1");
  EXPECT_EQ(ThreadPool::resolve_jobs(0, kVar),
            ThreadPool::hardware_workers());
}

TEST(ResolveJobs, RejectsLeadingWhitespace) {
  EnvGuard env(kVar, " 4");
  EXPECT_EQ(ThreadPool::resolve_jobs(0, kVar),
            ThreadPool::hardware_workers());
}

TEST(ResolveJobs, DiagnosesZero) {
  EnvGuard env(kVar, "0");
  EXPECT_EQ(ThreadPool::resolve_jobs(0, kVar),
            ThreadPool::hardware_workers());
}

TEST(ResolveJobs, ClampsOversubscription) {
  EnvGuard env(kVar, "1000000");
  EXPECT_EQ(ThreadPool::resolve_jobs(0, kVar),
            4u * ThreadPool::hardware_workers());
}

TEST(ResolveJobs, AcceptsSaneValueAtCap) {
  const unsigned cap = 4u * ThreadPool::hardware_workers();
  EnvGuard env(kVar, std::to_string(cap).c_str());
  EXPECT_EQ(ThreadPool::resolve_jobs(0, kVar), cap);
}

TEST(ResolveJobs, NullEnvVarFallsBackToHardware) {
  EXPECT_EQ(ThreadPool::resolve_jobs(0, nullptr),
            ThreadPool::hardware_workers());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroIterations) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, RethrowsFirstExceptionAfterCompletion) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    parallel_for(pool, 100, [&completed](std::size_t i) {
      if (i == 13 || i == 57) throw std::invalid_argument("iteration boom");
      completed.fetch_add(1);
    });
    FAIL() << "expected exception";
  } catch (const std::invalid_argument&) {
  }
  // All non-throwing iterations ran despite the failures.
  EXPECT_EQ(completed.load(), 98);
}

}  // namespace
}  // namespace dicer::util
