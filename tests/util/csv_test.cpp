#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dicer::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST_F(CsvWriterTest, HeaderAndRows) {
  {
    CsvWriter w(path_);
    w.header({"x", "y"});
    w.row({"1", "2"});
    w.row_numeric({3.5, 4.25});
  }
  EXPECT_EQ(slurp(path_), "x,y\n1,2\n3.5,4.25\n");
}

TEST_F(CsvWriterTest, LabeledRow) {
  {
    CsvWriter w(path_);
    w.header({"name", "v"});
    w.row_labeled("UM", {0.5});
  }
  EXPECT_EQ(slurp(path_), "name,v\nUM,0.5\n");
}

TEST_F(CsvWriterTest, DoubleHeaderThrows) {
  CsvWriter w(path_);
  w.header({"a"});
  EXPECT_THROW(w.header({"b"}), std::logic_error);
}

TEST_F(CsvWriterTest, RowCountTracked) {
  CsvWriter w(path_);
  w.header({"a"});
  EXPECT_EQ(w.rows_written(), 0u);
  w.row({"1"});
  w.row({"2"});
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST_F(CsvWriterTest, EscapesInsideRows) {
  {
    CsvWriter w(path_);
    w.row({"a,b", "c"});
  }
  EXPECT_EQ(slurp(path_), "\"a,b\",c\n");
}

TEST(CsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/zzz/f.csv"), std::runtime_error);
}

TEST(Fmt, CompactDoubles) {
  EXPECT_EQ(fmt(1.0), "1");
  EXPECT_EQ(fmt(0.5), "0.5");
  EXPECT_EQ(fmt(1234567.0), "1.23457e+06");
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(1.0, 3), "1.000");
}

}  // namespace
}  // namespace dicer::util
