#include "util/table.hpp"

#include <gtest/gtest.h>

namespace dicer::util {
namespace {

TEST(TextTable, EmptyRendersNothing) {
  TextTable t;
  EXPECT_EQ(t.str(), "");
}

TEST(TextTable, HeaderSeparatorPresent) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTable, ColumnsPaddedToWidest) {
  TextTable t;
  t.set_header({"col", "x"});
  t.add_row({"longvalue", "1"});
  const auto s = t.str();
  // Header row and data row have the same length.
  const auto nl1 = s.find('\n');
  const auto nl2 = s.find('\n', nl1 + 1);
  const auto nl3 = s.find('\n', nl2 + 1);
  EXPECT_EQ(nl1, s.size() - (s.size() - nl1));  // trivial sanity
  const std::string header = s.substr(0, nl1);
  const std::string data = s.substr(nl2 + 1, nl3 - nl2 - 1);
  EXPECT_EQ(header.size(), data.size());
}

TEST(TextTable, NumericRowFormatsDecimals) {
  TextTable t;
  t.set_header({"k", "v"});
  t.add_row("pi", {3.14159}, 2);
  EXPECT_NE(t.str().find("3.14"), std::string::npos);
  EXPECT_EQ(t.str().find("3.142"), std::string::npos);
}

TEST(TextTable, FirstColumnLeftAlignedByDefault) {
  TextTable t;
  t.set_header({"name", "v"});
  t.add_row({"x", "1"});
  const auto s = t.str();
  const auto line = s.substr(s.rfind('\n', s.size() - 2) + 1);
  EXPECT_EQ(line.rfind("x", 0), 0u);  // "x" at the very start (left aligned)
}

TEST(TextTable, RuleInsertedBetweenRows) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const auto s = t.str();
  // Two rules: one under the header, one between rows.
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("-\n", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(TextTable, NumRows) {
  TextTable t;
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, RaggedRowsTolerated) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3"});
  EXPECT_NE(t.str().find("3"), std::string::npos);
}

TEST(Section, FormatsTitle) {
  EXPECT_EQ(section("Hello"), "\n== Hello ==\n");
}

}  // namespace
}  // namespace dicer::util
