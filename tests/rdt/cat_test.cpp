#include "rdt/cat.hpp"

#include <gtest/gtest.h>

namespace dicer::rdt {
namespace {

using sim::Machine;
using sim::MachineConfig;
using sim::WayMask;

struct CatFixture : ::testing::Test {
  Machine machine{MachineConfig{}};
  Capability cap = Capability::probe(machine);
  CatController cat{machine, cap};
};

TEST_F(CatFixture, ProbeReflectsMachine) {
  EXPECT_EQ(cap.cat_ways, 20u);
  EXPECT_EQ(cap.llc_size_bytes, 25ull * 1024 * 1024);
  EXPECT_TRUE(cap.cat_supported);
  EXPECT_TRUE(cap.cmt_supported);
  EXPECT_TRUE(cap.mbm_supported);
  EXPECT_FALSE(cap.mba_supported);  // the paper's server lacks MBA
}

TEST_F(CatFixture, ResetStateIsHardwareDefault) {
  for (unsigned core = 0; core < machine.num_cores(); ++core) {
    EXPECT_EQ(cat.clos_of(core), 0u);
    EXPECT_EQ(machine.fill_mask(core), WayMask::full(20));
  }
  for (unsigned clos = 0; clos < cat.num_clos(); ++clos) {
    EXPECT_EQ(cat.clos_mask(clos), WayMask::full(20));
  }
}

TEST_F(CatFixture, MaskAppliesToAssociatedCores) {
  cat.associate(3, 1);
  cat.set_clos_mask(1, WayMask::high(19, 20));
  EXPECT_EQ(machine.fill_mask(3), WayMask::high(19, 20));
  EXPECT_EQ(machine.fill_mask(2), WayMask::full(20));  // untouched
}

TEST_F(CatFixture, AssociationAppliesExistingMask) {
  cat.set_clos_mask(2, WayMask::low(1));
  cat.associate(5, 2);
  EXPECT_EQ(machine.fill_mask(5), WayMask::low(1));
}

TEST_F(CatFixture, RejectsEmptyMask) {
  EXPECT_THROW(cat.set_clos_mask(1, WayMask()), std::invalid_argument);
}

TEST_F(CatFixture, RejectsNonContiguousMask) {
  EXPECT_THROW(cat.set_clos_mask(1, WayMask(0b101)), std::invalid_argument);
}

TEST_F(CatFixture, RejectsMaskBeyondWays) {
  EXPECT_THROW(cat.set_clos_mask(1, WayMask::span(15, 10)),
               std::invalid_argument);
}

TEST_F(CatFixture, RejectsBadClosOrCore) {
  EXPECT_THROW(cat.set_clos_mask(16, WayMask::low(1)), std::out_of_range);
  EXPECT_THROW(cat.associate(0, 16), std::out_of_range);
  EXPECT_THROW(cat.associate(10, 0), std::out_of_range);
  EXPECT_THROW(cat.clos_of(10), std::out_of_range);
  EXPECT_THROW(cat.clos_mask(16), std::out_of_range);
}

TEST_F(CatFixture, MinWaysEnforced) {
  Capability strict = cap;
  strict.cat_min_ways = 2;
  CatController strict_cat(machine, strict);
  EXPECT_THROW(strict_cat.set_clos_mask(1, WayMask::low(1)),
               std::invalid_argument);
  EXPECT_NO_THROW(strict_cat.set_clos_mask(1, WayMask::low(2)));
}

TEST_F(CatFixture, ResetRestoresDefaults) {
  cat.associate(1, 3);
  cat.set_clos_mask(3, WayMask::low(2));
  cat.reset();
  EXPECT_EQ(cat.clos_of(1), 0u);
  EXPECT_EQ(machine.fill_mask(1), WayMask::full(20));
  EXPECT_EQ(cat.clos_mask(3), WayMask::full(20));
}

TEST_F(CatFixture, UpdatingMaskRetargetsAllMembers) {
  cat.associate(1, 4);
  cat.associate(2, 4);
  cat.set_clos_mask(4, WayMask::low(3));
  EXPECT_EQ(machine.fill_mask(1), WayMask::low(3));
  EXPECT_EQ(machine.fill_mask(2), WayMask::low(3));
  cat.set_clos_mask(4, WayMask::low(7));
  EXPECT_EQ(machine.fill_mask(1), WayMask::low(7));
  EXPECT_EQ(machine.fill_mask(2), WayMask::low(7));
}

TEST(CatController, MismatchedCapabilityThrows) {
  Machine machine{MachineConfig{}};
  Capability cap = Capability::probe(machine);
  cap.cat_ways = 11;
  EXPECT_THROW(CatController(machine, cap), std::invalid_argument);
  cap = Capability::probe(machine);
  cap.cat_supported = false;
  EXPECT_THROW(CatController(machine, cap), std::runtime_error);
}

}  // namespace
}  // namespace dicer::rdt
