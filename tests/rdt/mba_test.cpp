#include "rdt/mba.hpp"

#include <gtest/gtest.h>

namespace dicer::rdt {
namespace {

using sim::Machine;
using sim::MachineConfig;

struct MbaFixture : ::testing::Test {
  Machine machine{MachineConfig{}};
  Capability cap = Capability::probe(machine, /*enable_mba=*/true);
  MbaController mba{machine, cap};
};

TEST(MbaController, UnsupportedPlatformThrows) {
  Machine machine{MachineConfig{}};
  const auto cap = Capability::probe(machine);  // paper server: no MBA
  EXPECT_THROW(MbaController(machine, cap), std::runtime_error);
}

TEST_F(MbaFixture, DefaultsToFullBandwidth) {
  for (unsigned clos = 0; clos < cap.cat_num_clos; ++clos) {
    EXPECT_EQ(mba.clos_throttle(clos), 100u);
  }
  EXPECT_DOUBLE_EQ(machine.mem_throttle(0), 1.0);
}

TEST_F(MbaFixture, ThrottleAppliesToAssociatedCores) {
  mba.associate(2, 5);
  mba.set_clos_throttle(5, 40);
  EXPECT_DOUBLE_EQ(machine.mem_throttle(2), 0.4);
  EXPECT_DOUBLE_EQ(machine.mem_throttle(1), 1.0);
}

TEST_F(MbaFixture, QuantisationRoundsDown) {
  mba.set_clos_throttle(1, 37);
  EXPECT_EQ(mba.clos_throttle(1), 30u);
  mba.set_clos_throttle(1, 99);
  EXPECT_EQ(mba.clos_throttle(1), 90u);
  mba.set_clos_throttle(1, 100);
  EXPECT_EQ(mba.clos_throttle(1), 100u);
}

TEST_F(MbaFixture, ClampedToGranularityFloor) {
  mba.set_clos_throttle(1, 0);
  EXPECT_EQ(mba.clos_throttle(1), 10u);
  mba.set_clos_throttle(1, 250);
  EXPECT_EQ(mba.clos_throttle(1), 100u);
}

TEST_F(MbaFixture, OutOfRangeThrows) {
  EXPECT_THROW(mba.set_clos_throttle(16, 50), std::out_of_range);
  EXPECT_THROW(mba.associate(10, 0), std::out_of_range);
  EXPECT_THROW(mba.associate(0, 16), std::out_of_range);
  EXPECT_THROW(mba.clos_of(10), std::out_of_range);
  EXPECT_THROW(mba.clos_throttle(16), std::out_of_range);
}

TEST_F(MbaFixture, AssociationPicksUpThrottle) {
  mba.set_clos_throttle(7, 20);
  mba.associate(3, 7);
  EXPECT_EQ(mba.clos_of(3), 7u);
  EXPECT_DOUBLE_EQ(machine.mem_throttle(3), 0.2);
}

TEST_F(MbaFixture, ResetRestoresFullBandwidth) {
  mba.associate(3, 7);
  mba.set_clos_throttle(7, 20);
  mba.reset();
  EXPECT_EQ(mba.clos_of(3), 0u);
  EXPECT_DOUBLE_EQ(machine.mem_throttle(3), 1.0);
  EXPECT_EQ(mba.clos_throttle(7), 100u);
}

TEST(MbaController, BadGranularityRejected) {
  Machine machine{MachineConfig{}};
  auto cap = Capability::probe(machine, true);
  cap.mba_granularity_pct = 0;
  EXPECT_THROW(MbaController(machine, cap), std::invalid_argument);
  cap.mba_granularity_pct = 101;
  EXPECT_THROW(MbaController(machine, cap), std::invalid_argument);
}

}  // namespace
}  // namespace dicer::rdt
