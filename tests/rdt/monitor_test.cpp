#include "rdt/monitor.hpp"

#include <gtest/gtest.h>

#include "sim/core/catalog.hpp"

namespace dicer::rdt {
namespace {

using sim::Machine;
using sim::MachineConfig;

struct MonitorFixture : ::testing::Test {
  Machine machine{MachineConfig{}};
  Capability cap = Capability::probe(machine);
  Monitor monitor{machine, cap};

  const sim::AppProfile& app(const char* name) {
    return sim::default_catalog().by_name(name);
  }
};

TEST_F(MonitorFixture, TrackUntrack) {
  EXPECT_FALSE(monitor.tracked(0));
  monitor.track(0);
  EXPECT_TRUE(monitor.tracked(0));
  monitor.track(0);  // idempotent
  monitor.untrack(0);
  EXPECT_FALSE(monitor.tracked(0));
}

TEST_F(MonitorFixture, PollUntrackedThrows) {
  EXPECT_THROW(monitor.poll(0), std::logic_error);
}

TEST_F(MonitorFixture, OutOfRangeCoreThrows) {
  EXPECT_THROW(monitor.track(10), std::out_of_range);
  EXPECT_THROW(monitor.untrack(10), std::out_of_range);
  EXPECT_THROW(monitor.tracked(10), std::out_of_range);
}

TEST_F(MonitorFixture, DeltaSemantics) {
  machine.attach(0, &app("gcc_base3"));
  monitor.track(0);
  machine.run_for(1.0);
  const auto s1 = monitor.poll(0);
  EXPECT_NEAR(s1.interval_sec, 1.0, 1e-9);
  EXPECT_GT(s1.instructions, 0.0);
  EXPECT_GT(s1.ipc, 0.0);
  EXPECT_GT(s1.mbm_bytes, 0.0);
  EXPECT_NEAR(s1.mbm_bytes_per_sec, s1.mbm_bytes / s1.interval_sec, 1.0);

  // A second poll right away covers an empty interval.
  const auto s2 = monitor.poll(0);
  EXPECT_NEAR(s2.interval_sec, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s2.instructions, 0.0);

  // And after another period the counters are deltas, not totals.
  machine.run_for(1.0);
  const auto s3 = monitor.poll(0);
  EXPECT_NEAR(s3.instructions, s1.instructions, 0.2 * s1.instructions);
}

TEST_F(MonitorFixture, OccupancyIsInstantaneous) {
  machine.attach(0, &app("omnetpp1"));
  monitor.track(0);
  machine.run_for(0.5);
  const auto s = monitor.poll(0);
  EXPECT_GT(s.llc_occupancy_bytes, 0.0);
  EXPECT_LE(s.llc_occupancy_bytes, 25.0 * 1024 * 1024 * 1.001);
}

TEST_F(MonitorFixture, PollAllAggregatesBandwidth) {
  machine.attach(0, &app("milc1"));
  machine.attach(1, &app("lbm1"));
  monitor.track(0);
  monitor.track(1);
  machine.run_for(1.0);
  const auto all = monitor.poll_all();
  ASSERT_EQ(all.size(), 2u);
  double sum = 0.0;
  for (const auto& [core, s] : all) sum += s.mbm_bytes_per_sec;
  EXPECT_NEAR(monitor.last_total_mbm_bytes_per_sec(), sum, 1.0);
  EXPECT_GT(sum, 1e9);  // two streaming apps move real traffic
}

TEST_F(MonitorFixture, IdleCoreReportsZeroIpc) {
  monitor.track(4);  // nothing attached
  machine.run_for(1.0);
  const auto s = monitor.poll(4);
  EXPECT_DOUBLE_EQ(s.ipc, 0.0);
  EXPECT_DOUBLE_EQ(s.instructions, 0.0);
}

TEST_F(MonitorFixture, RmidExhaustion) {
  Capability small = cap;
  small.num_rmids = 2;
  Monitor tight(machine, small);
  tight.track(0);
  tight.track(1);
  EXPECT_THROW(tight.track(2), std::runtime_error);
  tight.untrack(0);
  EXPECT_NO_THROW(tight.track(2));
}

TEST(Monitor, RequiresCmtAndMbm) {
  Machine machine{MachineConfig{}};
  Capability cap = Capability::probe(machine);
  cap.cmt_supported = false;
  EXPECT_THROW(Monitor(machine, cap), std::runtime_error);
}

}  // namespace
}  // namespace dicer::rdt
