// End-to-end: the paper's headline DICER claims on a small but targeted
// workload set, exercised through the same harness path the figure benches
// use. These are the acceptance tests of the reproduction.
#include <gtest/gtest.h>

#include "harness/consolidation.hpp"
#include "harness/solo.hpp"
#include "metrics/metrics.hpp"
#include "policy/factory.hpp"
#include "sim/core/catalog.hpp"

namespace dicer {
namespace {

using harness::ConsolidationConfig;
using harness::run_consolidation;

struct Outcome {
  double hp_norm = 0.0;
  double be_norm = 0.0;
  double efu = 0.0;
};

Outcome run(const char* hp, const char* be, const char* policy,
            unsigned cores = 10) {
  const auto& catalog = sim::default_catalog();
  ConsolidationConfig cfg;
  cfg.cores_used = cores;
  const double hp_alone =
      harness::solo_steady_state(catalog.by_name(hp), 20, cfg.machine).ipc;
  const double be_alone =
      harness::solo_steady_state(catalog.by_name(be), 20, cfg.machine).ipc;
  const auto pol = policy::make_policy(policy);
  const auto res =
      run_consolidation(catalog.by_name(hp), catalog.by_name(be), *pol, cfg);
  return {res.hp_ipc / hp_alone, res.be_ipc_mean / be_alone,
          metrics::effective_utilisation(res.ipc_pairs(hp_alone, be_alone))};
}

// Fig 5, CT-F panel: DICER tracks CT for the HP (within a few percent) and
// beats CT for the BEs.
TEST(EndToEnd, DicerTracksCtOnCtFavouredWorkload) {
  const auto ct = run("omnetpp1", "gcc_base3", "CT");
  const auto dicer = run("omnetpp1", "gcc_base3", "DICER");
  EXPECT_GT(dicer.hp_norm, ct.hp_norm - 0.10);
  EXPECT_GT(dicer.be_norm, ct.be_norm);
}

// Fig 5, CT-T panel: DICER tracks UM for the HP and still beats CT's BEs.
TEST(EndToEnd, DicerTracksUmOnCtThwartedWorkload) {
  const auto um = run("milc1", "gcc_base3", "UM");
  const auto ct = run("milc1", "gcc_base3", "CT");
  const auto dicer = run("milc1", "gcc_base3", "DICER");
  EXPECT_GT(dicer.hp_norm, ct.hp_norm);
  EXPECT_GT(dicer.hp_norm, um.hp_norm - 0.05);
  EXPECT_GT(dicer.be_norm, ct.be_norm);
}

// Fig 6 ordering at full occupancy: UM >= DICER >= CT on utilisation, for
// a BE-heavy cache-sensitive mix where CT wastes the most.
TEST(EndToEnd, EfuOrderingUmDicerCt) {
  const auto um = run("povray1", "gcc_base3", "UM");
  const auto ct = run("povray1", "gcc_base3", "CT");
  const auto dicer = run("povray1", "gcc_base3", "DICER");
  EXPECT_GE(um.efu, dicer.efu - 0.02);
  EXPECT_GT(dicer.efu, ct.efu);
}

// Fig 7 intent: DICER keeps the HP inside an 80% SLO where UM fails, on a
// workload whose UM slowdown is deep.
TEST(EndToEnd, DicerRescuesSloThatUmMisses) {
  const auto um = run("omnetpp1", "gcc_base5", "UM");
  const auto dicer = run("omnetpp1", "gcc_base5", "DICER");
  EXPECT_LT(um.hp_norm, 0.80);
  EXPECT_GE(dicer.hp_norm, 0.80);
}

// SUCI (Fig 8): DICER's combined index beats both baselines on a mixed
// pair where neither extreme is right.
TEST(EndToEnd, SuciPrefersDicer) {
  const double slo = 0.80;
  auto suci_of = [&](const char* pol) {
    const auto o = run("Xalan1", "gcc_base7", pol);
    return metrics::suci(o.hp_norm >= slo, o.efu, 1.0);
  };
  const double dicer = suci_of("DICER");
  EXPECT_GE(dicer, suci_of("UM"));
  EXPECT_GE(dicer, suci_of("CT"));
}

// Scaling with core count: DICER's BE benefit over CT grows as more BEs
// pile into CT's single way (the Fig 6/7 trend).
TEST(EndToEnd, DicerBeAdvantageGrowsWithCores) {
  const auto few_ct = run("omnetpp1", "bzip22", "CT", 3);
  const auto few_dicer = run("omnetpp1", "bzip22", "DICER", 3);
  const auto many_ct = run("omnetpp1", "bzip22", "CT", 10);
  const auto many_dicer = run("omnetpp1", "bzip22", "DICER", 10);
  const double few_gain = few_dicer.be_norm - few_ct.be_norm;
  const double many_gain = many_dicer.be_norm - many_ct.be_norm;
  EXPECT_GT(many_gain, few_gain);
}

// The DICER-noBW ablation mirrors the related-work gap: without saturation
// detection the controller stays at a fat HP allocation on a CT-T workload
// and the HP ends up slower than with full DICER.
TEST(EndToEnd, BwDetectionMattersOnCtThwartedWorkload) {
  const auto full = run("milc1", "gcc_base3", "DICER");
  const auto nobw = run("milc1", "gcc_base3", "DICER-noBW");
  EXPECT_GE(full.hp_norm, nobw.hp_norm - 0.02);
}

}  // namespace
}  // namespace dicer
