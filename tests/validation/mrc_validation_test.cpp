// Cross-validation: the analytic MRC family against the trace-driven LRU
// cache. The whole-figure experiments run on the analytic model; these
// tests pin its shapes to true set-associative LRU behaviour.
#include <gtest/gtest.h>

#include "sim/cache/mrc.hpp"
#include "sim/cache/mrc_profiler.hpp"

namespace dicer::sim {
namespace {

MrcProfilerConfig small_cache() {
  MrcProfilerConfig cfg;
  cfg.geometry = {.size_bytes = 2 * 1024 * 1024, .ways = 16, .line_bytes = 64};
  cfg.warmup_accesses = 60'000;
  cfg.measure_accesses = 120'000;
  return cfg;
}

TEST(MrcValidation, WorkingSetStreamKneeAtWorkingSet) {
  // Random reuse over 1 MB in a 2 MB/16-way cache: miss ratio must be high
  // below ~1 MB of allocation and near zero above it.
  const auto cfg = small_cache();
  const std::uint64_t ws = 1 << 20;
  const auto mrc = profile_mrc(cfg, [&] {
    return std::make_unique<WorkingSetStream>(ws, 0, util::Xoshiro256(42));
  });
  ASSERT_EQ(mrc.size(), 16u);
  EXPECT_GT(mrc.at(128.0 * 1024), 0.5);
  EXPECT_LT(mrc.at(1.75 * 1024 * 1024), 0.05);
}

TEST(MrcValidation, WorkingSetMatchesLinearCoverageCurve) {
  // The analytic claim behind MrcComponent{shape=1}: for uniform random
  // reuse, miss ratio ~ 1 - resident_fraction. Check the empirical curve
  // tracks the analytic one within a loose band at every way count.
  const auto cfg = small_cache();
  const std::uint64_t ws = 1 << 20;
  const auto empirical = profile_mrc(cfg, [&] {
    return std::make_unique<WorkingSetStream>(ws, 0, util::Xoshiro256(7));
  });
  const auto analytic =
      MissRatioCurve::single_knee(1.0, static_cast<double>(ws), 0.0, 1.0);
  for (const auto& [bytes, miss] : empirical.points()) {
    EXPECT_NEAR(miss, analytic.at(bytes), 0.15)
        << "at " << bytes / 1024.0 << " KiB";
  }
}

TEST(MrcValidation, StreamingIsFlatAndHigh) {
  const auto cfg = small_cache();
  const auto mrc = profile_mrc(cfg, [&] {
    return std::make_unique<StreamingStream>(64ull << 20, 64, 0);
  });
  for (const auto& [bytes, miss] : mrc.points()) {
    EXPECT_GT(miss, 0.95) << "at " << bytes;
  }
  EXPECT_LT(mrc.monotonicity_violation(), 0.02);
}

TEST(MrcValidation, BimodalShowsTwoPlateaus) {
  const auto cfg = small_cache();
  const std::uint64_t hot = 256 << 10, cold = 4 << 20;
  const auto mrc = profile_mrc(cfg, [&] {
    return std::make_unique<BimodalStream>(hot, cold, 0.8, 0,
                                           util::Xoshiro256(3));
  });
  // Covering the hot set (~256 KiB) removes ~80% of misses.
  const double at_hot = mrc.at(512.0 * 1024);
  EXPECT_LT(at_hot, 0.35);
  EXPECT_GT(at_hot, 0.1);  // the cold 4 MB set still misses
}

TEST(MrcValidation, EmpiricalCurvesMonotone) {
  const auto cfg = small_cache();
  for (int seed : {1, 2}) {
    const auto mrc = profile_mrc(cfg, [&] {
      return std::make_unique<MixedStream>(1 << 20, 0.7, 0,
                                           util::Xoshiro256(
                                               static_cast<std::uint64_t>(seed)));
    });
    EXPECT_LT(mrc.monotonicity_violation(), 0.05);
  }
}

TEST(MrcValidation, PartitionedProfileSeesOnlyItsWays) {
  // Profiling with w ways in an n-way cache equals profiling a cache of
  // w/n capacity — way partitioning scales capacity linearly.
  MrcProfilerConfig big = small_cache();
  const auto mrc = profile_mrc(big, [&] {
    return std::make_unique<WorkingSetStream>(1 << 20, 0,
                                              util::Xoshiro256(11));
  });
  // 8 of 16 ways = 1 MB for a 1 MB working set: conflict misses make it
  // imperfect but most accesses should hit.
  EXPECT_LT(mrc.at(1024.0 * 1024), 0.45);
}

}  // namespace
}  // namespace dicer::sim
