// Cross-validation: the analytic MRC family against the trace-driven LRU
// cache. The whole-figure experiments run on the analytic model; these
// tests pin its shapes to true set-associative LRU behaviour.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/cache/mrc.hpp"
#include "sim/cache/mrc_profiler.hpp"

namespace dicer::sim {
namespace {

MrcProfilerConfig small_cache() {
  MrcProfilerConfig cfg;
  cfg.geometry = {.size_bytes = 2 * 1024 * 1024, .ways = 16, .line_bytes = 64};
  cfg.warmup_accesses = 60'000;
  cfg.measure_accesses = 120'000;
  return cfg;
}

TEST(MrcValidation, WorkingSetStreamKneeAtWorkingSet) {
  // Random reuse over 1 MB in a 2 MB/16-way cache: miss ratio must be high
  // below ~1 MB of allocation and near zero above it.
  const auto cfg = small_cache();
  const std::uint64_t ws = 1 << 20;
  const auto mrc = profile_mrc(cfg, [&] {
    return std::make_unique<WorkingSetStream>(ws, 0, util::Xoshiro256(42));
  });
  ASSERT_EQ(mrc.size(), 16u);
  EXPECT_GT(mrc.at(128.0 * 1024), 0.5);
  EXPECT_LT(mrc.at(1.75 * 1024 * 1024), 0.05);
}

TEST(MrcValidation, WorkingSetMatchesLinearCoverageCurve) {
  // The analytic claim behind MrcComponent{shape=1}: for uniform random
  // reuse, miss ratio ~ 1 - resident_fraction. Check the empirical curve
  // tracks the analytic one within a loose band at every way count.
  const auto cfg = small_cache();
  const std::uint64_t ws = 1 << 20;
  const auto empirical = profile_mrc(cfg, [&] {
    return std::make_unique<WorkingSetStream>(ws, 0, util::Xoshiro256(7));
  });
  const auto analytic =
      MissRatioCurve::single_knee(1.0, static_cast<double>(ws), 0.0, 1.0);
  for (const auto& [bytes, miss] : empirical.points()) {
    EXPECT_NEAR(miss, analytic.at(bytes), 0.15)
        << "at " << bytes / 1024.0 << " KiB";
  }
}

TEST(MrcValidation, StreamingIsFlatAndHigh) {
  const auto cfg = small_cache();
  const auto mrc = profile_mrc(cfg, [&] {
    return std::make_unique<StreamingStream>(64ull << 20, 64, 0);
  });
  for (const auto& [bytes, miss] : mrc.points()) {
    EXPECT_GT(miss, 0.95) << "at " << bytes;
  }
  EXPECT_LT(mrc.monotonicity_violation(), 0.02);
}

TEST(MrcValidation, BimodalShowsTwoPlateaus) {
  const auto cfg = small_cache();
  const std::uint64_t hot = 256 << 10, cold = 4 << 20;
  const auto mrc = profile_mrc(cfg, [&] {
    return std::make_unique<BimodalStream>(hot, cold, 0.8, 0,
                                           util::Xoshiro256(3));
  });
  // Covering the hot set (~256 KiB) removes ~80% of misses.
  const double at_hot = mrc.at(512.0 * 1024);
  EXPECT_LT(at_hot, 0.35);
  EXPECT_GT(at_hot, 0.1);  // the cold 4 MB set still misses
}

TEST(MrcValidation, EmpiricalCurvesMonotone) {
  const auto cfg = small_cache();
  for (int seed : {1, 2}) {
    const auto mrc = profile_mrc(cfg, [&] {
      return std::make_unique<MixedStream>(1 << 20, 0.7, 0,
                                           util::Xoshiro256(
                                               static_cast<std::uint64_t>(seed)));
    });
    EXPECT_LT(mrc.monotonicity_violation(), 0.05);
  }
}

// --- Single-pass profiler acceptance --------------------------------------
//
// The issue's acceptance bar for the reuse-distance profiler, enforced on
// the 20-way validation geometry (2.5 MB / 20-way / 64 B = 2048 sets)
// across every AddressStream family:
//  * kSinglePass is byte-identical to the exact replay oracle;
//  * kSampled stays within 0.02 absolute miss ratio of the oracle at
//    every way count, for both fixed-rate and fixed-size plans.

MrcProfilerConfig accept20() {
  MrcProfilerConfig cfg;
  cfg.geometry = {
      .size_bytes = 5ull * 1024 * 1024 / 2, .ways = 20, .line_bytes = 64};
  cfg.warmup_accesses = 100'000;
  cfg.measure_accesses = 200'000;
  return cfg;
}

using StreamFactory = std::function<std::unique_ptr<AddressStream>()>;

constexpr std::uint64_t MB = 1 << 20;

std::vector<std::pair<const char*, StreamFactory>> accept_families() {
  return {
      {"working_set",
       [] {
         return std::make_unique<WorkingSetStream>(MB, 0,
                                                   util::Xoshiro256(42));
       }},
      {"streaming",
       [] { return std::make_unique<StreamingStream>(64 * MB, 64, 0); }},
      {"bimodal",
       [] {
         return std::make_unique<BimodalStream>(MB / 4, 4 * MB, 0.8, 0,
                                                util::Xoshiro256(3));
       }},
      {"mixed",
       [] {
         return std::make_unique<MixedStream>(MB, 0.7, 0,
                                              util::Xoshiro256(7));
       }},
  };
}

TEST(MrcValidation, SinglePassIsByteIdenticalToOracleOnAllFamilies) {
  for (const auto& [name, make_stream] : accept_families()) {
    SCOPED_TRACE(name);
    auto exact_cfg = accept20();
    exact_cfg.mode = MrcProfilerMode::kExactReplay;
    auto fast_cfg = accept20();
    fast_cfg.mode = MrcProfilerMode::kSinglePass;
    const auto oracle = profile_mrc(exact_cfg, make_stream);
    const auto fast = profile_mrc(fast_cfg, make_stream);
    ASSERT_EQ(oracle.size(), 20u);
    ASSERT_EQ(fast.size(), 20u);
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(oracle.points()[i].first, fast.points()[i].first);
      EXPECT_EQ(oracle.points()[i].second, fast.points()[i].second)
          << "way count " << i + 1;
    }
  }
}

TEST(MrcValidation, SampledProfilerWithin2PercentOfOracleOnAllFamilies) {
  const std::vector<std::pair<const char*, ShardsConfig>> plans = {
      {"fixed_rate", {.mode = ShardsMode::kFixedRate, .rate = 0.125}},
      {"fixed_size",
       {.mode = ShardsMode::kFixedSize, .max_tracked_blocks = 8192}},
  };
  for (const auto& [fname, make_stream] : accept_families()) {
    auto oracle_cfg = accept20();
    oracle_cfg.mode = MrcProfilerMode::kExactReplay;
    const auto oracle = profile_mrc(oracle_cfg, make_stream);
    for (const auto& [pname, plan] : plans) {
      SCOPED_TRACE(std::string(fname) + "/" + pname);
      auto cfg = accept20();
      cfg.mode = MrcProfilerMode::kSampled;
      cfg.sampling = plan;
      const auto sampled = profile_mrc(cfg, make_stream);
      ASSERT_EQ(sampled.size(), oracle.size());
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_NEAR(sampled.points()[i].second, oracle.points()[i].second,
                    0.02)
            << "way count " << i + 1;
      }
    }
  }
}

TEST(MrcValidation, SinglePassIsMuchFasterThanSerialOracle) {
  // Speed canary, deliberately far below the benched ~20x so CI noise
  // cannot flake it: one pass must beat 20 serial replays by >= 4x.
  const auto make_stream = [] {
    return std::make_unique<WorkingSetStream>(1 << 20, 0,
                                              util::Xoshiro256(42));
  };
  auto exact_cfg = accept20();
  exact_cfg.mode = MrcProfilerMode::kExactReplay;
  exact_cfg.jobs = 1;
  auto fast_cfg = accept20();
  fast_cfg.mode = MrcProfilerMode::kSinglePass;
  // Warm both paths once (allocators, stream code), then time.
  profile_mrc(fast_cfg, make_stream);
  const auto t0 = std::chrono::steady_clock::now();
  profile_mrc(exact_cfg, make_stream);
  const auto t1 = std::chrono::steady_clock::now();
  profile_mrc(fast_cfg, make_stream);
  const auto t2 = std::chrono::steady_clock::now();
  const double exact_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double fast_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  EXPECT_GE(exact_ms / fast_ms, 4.0)
      << "exact " << exact_ms << " ms vs single-pass " << fast_ms << " ms";
}

TEST(MrcValidation, PartitionedProfileSeesOnlyItsWays) {
  // Profiling with w ways in an n-way cache equals profiling a cache of
  // w/n capacity — way partitioning scales capacity linearly.
  MrcProfilerConfig big = small_cache();
  const auto mrc = profile_mrc(big, [&] {
    return std::make_unique<WorkingSetStream>(1 << 20, 0,
                                              util::Xoshiro256(11));
  });
  // 8 of 16 ways = 1 MB for a 1 MB working set: conflict misses make it
  // imperfect but most accesses should hit.
  EXPECT_LT(mrc.at(1024.0 * 1024), 0.45);
}

}  // namespace
}  // namespace dicer::sim
