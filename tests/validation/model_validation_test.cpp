// Model-level validation: the machine's emergent behaviour reproduces the
// paper's three key observations (Section 2.3) and the occupancy claims.
#include <gtest/gtest.h>

#include "harness/consolidation.hpp"
#include "harness/solo.hpp"
#include "policy/baselines.hpp"
#include "sim/core/catalog.hpp"

namespace dicer {
namespace {

using harness::ConsolidationConfig;
using harness::run_consolidation;

const sim::AppProfile& app(const char* name) {
  return sim::default_catalog().by_name(name);
}

// Key Observation 1: most applications keep (almost) solo performance
// from a fraction of the LLC.
TEST(ModelValidation, MostAppsNeedFewWays) {
  const sim::MachineConfig mc;
  std::size_t within_six = 0;
  const auto& catalog = sim::default_catalog();
  for (const auto& a : catalog.profiles()) {
    if (harness::min_ways_for_fraction(a, 0.95, mc) <= 6) ++within_six;
  }
  EXPECT_GT(within_six, catalog.size() / 2);
}

// Key Observation 2: for a bandwidth-sensitive HP, CT's squeeze of the BEs
// saturates the link and hurts the HP relative to a small static partition
// (the Fig 3 U-shape).
TEST(ModelValidation, Fig3ShapeCtWorseThanSmallPartition) {
  ConsolidationConfig cfg;
  auto hp_ipc_at = [&](unsigned ways) {
    policy::StaticPartition pol(ways);
    return run_consolidation(app("milc1"), app("gcc_base3"), pol, cfg).hp_ipc;
  };
  const double small = hp_ipc_at(2);
  const double ct = hp_ipc_at(19);
  EXPECT_GT(small, ct * 1.05);
  // And the curve degrades monotonically-ish towards CT: 12 ways sits
  // between.
  const double mid = hp_ipc_at(12);
  EXPECT_GT(small, mid);
  EXPECT_GT(mid, ct);
}

// The paper's UM observation: milc left unmanaged holds roughly a quarter
// of the LLC against nine gcc BEs (they report ~26%).
TEST(ModelValidation, UnmanagedMilcHoldsModestShare) {
  sim::Machine machine{sim::MachineConfig{}};
  machine.attach(0, &app("milc1"));
  for (unsigned c = 1; c < 10; ++c) machine.attach(c, &app("gcc_base3"));
  machine.run_for(2.0);
  const double share = machine.telemetry(0).occupancy_bytes /
                       static_cast<double>(machine.config().llc.size_bytes);
  EXPECT_GT(share, 0.08);
  EXPECT_LT(share, 0.45);
}

// Key Observation 3 (Fig 4): UM gives better utilisation, CT protects the
// HP better, averaged over mixed workloads.
TEST(ModelValidation, UmUtilisationVsCtProtection) {
  ConsolidationConfig cfg;
  const struct {
    const char* hp;
    const char* be;
  } workloads[] = {{"omnetpp1", "gcc_base3"},
                   {"Xalan1", "bzip22"},
                   {"soplex1", "gcc_base7"},
                   {"mcf1", "dedup1"}};
  double um_efu_sum = 0.0, ct_efu_sum = 0.0;
  double um_hp_sum = 0.0, ct_hp_sum = 0.0;
  for (const auto& w : workloads) {
    const double hp_alone =
        harness::solo_steady_state(app(w.hp), 20, cfg.machine).ipc;
    const double be_alone =
        harness::solo_steady_state(app(w.be), 20, cfg.machine).ipc;
    policy::Unmanaged um;
    const auto um_res = run_consolidation(app(w.hp), app(w.be), um, cfg);
    policy::CacheTakeover ct;
    const auto ct_res = run_consolidation(app(w.hp), app(w.be), ct, cfg);
    um_efu_sum += metrics::effective_utilisation(
        um_res.ipc_pairs(hp_alone, be_alone));
    ct_efu_sum += metrics::effective_utilisation(
        ct_res.ipc_pairs(hp_alone, be_alone));
    um_hp_sum += um_res.hp_ipc / hp_alone;
    ct_hp_sum += ct_res.hp_ipc / hp_alone;
  }
  EXPECT_GT(um_efu_sum, ct_efu_sum);  // UM wins utilisation
  EXPECT_GT(ct_hp_sum, um_hp_sum);    // CT wins HP protection
}

// The link saturation detection point: nine streaming BEs push measured
// traffic beyond the paper's 50 Gbps threshold.
TEST(ModelValidation, StreamingBesTripSaturationThreshold) {
  sim::Machine machine{sim::MachineConfig{}};
  machine.attach(0, &app("namd1"));
  for (unsigned c = 1; c < 10; ++c) machine.attach(c, &app("lbm1"));
  machine.run_for(1.0);
  EXPECT_GT(machine.last_link_traffic(), 50e9 / 8.0);
}

// ...while a compute-bound ensemble stays far below it.
TEST(ModelValidation, ComputeEnsembleStaysBelowThreshold) {
  sim::Machine machine{sim::MachineConfig{}};
  for (unsigned c = 0; c < 10; ++c) machine.attach(c, &app("povray1"));
  machine.run_for(1.0);
  EXPECT_LT(machine.last_link_traffic(), 50e9 / 8.0);
}

// Squeezing BEs into one way must *increase* total memory traffic compared
// to leaving them unmanaged — the mechanism behind CT-Thwarted workloads.
TEST(ModelValidation, SqueezeMultipliesTraffic) {
  auto traffic = [&](bool squeezed) {
    sim::Machine machine{sim::MachineConfig{}};
    machine.attach(0, &app("milc1"));
    for (unsigned c = 1; c < 10; ++c) machine.attach(c, &app("gcc_base3"));
    if (squeezed) {
      machine.set_fill_mask(0, sim::WayMask::high(19, 20));
      for (unsigned c = 1; c < 10; ++c) {
        machine.set_fill_mask(c, sim::WayMask::low(1));
      }
    }
    machine.run_for(2.0);
    return machine.last_link_traffic();
  };
  EXPECT_GT(traffic(true), 1.3 * traffic(false));
}

}  // namespace
}  // namespace dicer
