#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on perf regressions.

CI archives ``BENCH_micro_sim.json`` on every run; this script diffs the
current file against the previous run's artifact and exits non-zero when
any pinned steady-state benchmark regressed by more than the allowed
fraction. The pinned set covers the convergence-aware solve paths that
PR "early-exit fixed point + steady-state replay" sped up — the ones a
careless change to the solver or the replay fingerprint would silently
slow down again.

Missing inputs are tolerated by design: the first run of a repository
(or a renamed bench) has no baseline to diff against, so absence of the
old file or of a pinned bench in it warns and exits 0. Absence of a
pinned bench in the *new* file is an error — the bench was deleted.

Usage:
    bench_compare.py OLD.json NEW.json [--max-regression 0.25]
                     [--bench NAME ...]
"""

from __future__ import annotations

import argparse
import json
import sys

# Steady-state machine-step and MRC-profiler benches guarded against
# regression. Keep in sync with bench/micro_sim.cpp and the README perf
# table.
DEFAULT_BENCHES = [
    "BM_MachineStepSteadyState",
    "BM_MachineStep10Apps",
    "BM_MachineStepPartitioned",
    "BM_MachineRunPeriod",
    # The batched-stepping pair: serial baseline and the MachineBatch fused
    # path over the same 8 machines; --speedup pins batched >= 2x faster.
    "BM_MachineStepSerial",
    "BM_MachineStepBatched",
    # The sweep's chunked workers through run_consolidation_batch.
    "BM_SweepBatched/real_time",
    "BM_ProfileMrcExact",
    "BM_ProfileMrcSinglePass",
    "BM_ProfileMrcSampled",
    # The single-worker fleet epoch (control plane + data plane + ordered
    # reduction); the multi-worker variant's name depends on the runner's
    # core count, so only the /1 shard is pinned.
    "BM_FleetEpoch/1/real_time",
    # Telemetry hot path and the fully-instrumented fleet epoch (registry
    # + trace-counter sink); --overhead pins the latter's cost relative to
    # the uninstrumented epoch.
    "BM_MetricsRecord",
    "BM_FleetEpochWithMetrics/1/real_time",
    # The control-plane placement pair: one MRC best-fit decision over a
    # churning 2000-machine fleet, full-scan vs PlacementIndex; --speedup
    # pins indexed >= 5x faster. The 10k-machine churn-heavy epoch guards
    # fleet_sim's wall clock at datacenter scale.
    "BM_FleetPlacementFullScan",
    "BM_FleetPlacementIndexed",
    "BM_FleetEpochChurn/real_time",
    # The optimistic arrival pipeline: one 32-tenant burst against a
    # 4000-machine index, sequential decide+commit vs speculative scoring
    # over 8 workers with in-order commits; --speedup pins the parallel
    # pipeline >= 2x faster on the multi-core CI runners.
    "BM_FleetArrivalBurstSerial/real_time",
    "BM_FleetArrivalBurstParallel/real_time",
]

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times_ns(path):
    """Map benchmark name -> real_time in ns, or None if unreadable."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        return None
    times = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = _UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None or "real_time" not in b or "name" not in b:
            continue
        times[b["name"]] = b["real_time"] * unit
    return times


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline benchmark JSON (previous run)")
    ap.add_argument("new", help="current benchmark JSON")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per bench (default 0.25 = +25%%)",
    )
    ap.add_argument(
        "--bench",
        action="append",
        default=None,
        metavar="NAME",
        help="pinned bench to compare (repeatable; default: the "
        "steady-state machine-step set)",
    )
    ap.add_argument(
        "--overhead",
        action="append",
        default=None,
        metavar="BASE:WITH:MAXFRAC",
        help="pin WITH <= (1 + MAXFRAC) * BASE within the *new* file "
        "(repeatable) — e.g. the metrics-on fleet epoch against the "
        "plain one",
    )
    ap.add_argument(
        "--speedup",
        action="append",
        default=None,
        metavar="BASE:FAST:MINRATIO",
        help="pin BASE >= MINRATIO * FAST within the *new* file "
        "(repeatable) — e.g. the batched machine step against its serial "
        "baseline",
    )
    args = ap.parse_args(argv)
    benches = args.bench if args.bench else DEFAULT_BENCHES

    old = load_times_ns(args.old)
    if old is None:
        print("bench_compare: no baseline — skipping (first run?)")
        return 0
    new = load_times_ns(args.new)
    if new is None:
        print("bench_compare: current results unreadable", file=sys.stderr)
        return 1

    failed = []
    width = max(len(b) for b in benches)
    print(f"{'benchmark':<{width}} {'old ns':>12} {'new ns':>12} {'ratio':>7}")
    for name in benches:
        if name not in new:
            print(f"{name:<{width}} {'-':>12} {'-':>12} {'gone':>7}")
            failed.append(f"{name}: missing from current results")
            continue
        if name not in old:
            print(f"{name:<{width}} {'-':>12} {new[name]:>12.1f} {'new':>7}")
            # Loud but non-fatal: a fresh baseline (new bench, renamed
            # bench, first run) is expected once — but a *silent* skip
            # would let a renamed bench drop out of regression coverage
            # forever.
            print(
                f"bench_compare: WARNING: {name} missing from baseline "
                f"{args.old} — no regression check this run",
                file=sys.stderr,
            )
            continue
        ratio = new[name] / old[name] if old[name] > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.max_regression:
            flag = "  << REGRESSION"
            failed.append(f"{name}: {ratio:.2f}x slower")
        print(
            f"{name:<{width}} {old[name]:>12.1f} {new[name]:>12.1f} "
            f"{ratio:>6.2f}x{flag}"
        )

    # Intra-file overhead pins: unlike the old-vs-new diff above, these
    # compare two benches of the *current* run, so they hold even on the
    # first run of a repository and are immune to runner-speed drift.
    for spec in args.overhead or []:
        parts = spec.rsplit(":", 2)
        if len(parts) != 3:
            print(
                f"bench_compare: bad --overhead '{spec}' "
                "(expected BASE:WITH:MAXFRAC)",
                file=sys.stderr,
            )
            return 2
        base_name, with_name, frac_s = parts
        try:
            max_frac = float(frac_s)
        except ValueError:
            print(
                f"bench_compare: bad --overhead fraction '{frac_s}'",
                file=sys.stderr,
            )
            return 2
        missing = [n for n in (base_name, with_name) if n not in new]
        if missing:
            failed.append(
                "overhead: missing from current results: " + ", ".join(missing)
            )
            continue
        ratio = (
            new[with_name] / new[base_name]
            if new[base_name] > 0
            else float("inf")
        )
        flag = ""
        if ratio > 1.0 + max_frac:
            flag = "  << OVERHEAD"
            failed.append(
                f"{with_name}: {ratio:.3f}x of {base_name} "
                f"(limit {1.0 + max_frac:.3f}x)"
            )
        print(
            f"overhead {with_name} / {base_name}: {ratio:.3f}x "
            f"(limit {1.0 + max_frac:.3f}x){flag}"
        )

    # Intra-file speedup pins: the optimised bench must stay at least
    # MINRATIO x faster than its serial baseline in the same run — the
    # forward-looking guarantee an optimisation PR ships with, independent
    # of any archived baseline.
    for spec in args.speedup or []:
        parts = spec.rsplit(":", 2)
        if len(parts) != 3:
            print(
                f"bench_compare: bad --speedup '{spec}' "
                "(expected BASE:FAST:MINRATIO)",
                file=sys.stderr,
            )
            return 2
        base_name, fast_name, ratio_s = parts
        try:
            min_ratio = float(ratio_s)
        except ValueError:
            print(
                f"bench_compare: bad --speedup ratio '{ratio_s}'",
                file=sys.stderr,
            )
            return 2
        missing = [n for n in (base_name, fast_name) if n not in new]
        if missing:
            failed.append(
                "speedup: missing from current results: " + ", ".join(missing)
            )
            continue
        ratio = (
            new[base_name] / new[fast_name]
            if new[fast_name] > 0
            else float("inf")
        )
        flag = ""
        if ratio < min_ratio:
            flag = "  << TOO SLOW"
            failed.append(
                f"{fast_name}: only {ratio:.2f}x faster than {base_name} "
                f"(needs >= {min_ratio:.2f}x)"
            )
        print(
            f"speedup {base_name} / {fast_name}: {ratio:.2f}x "
            f"(needs >= {min_ratio:.2f}x){flag}"
        )

    if failed:
        limit = 1.0 + args.max_regression
        print(
            f"bench_compare: FAIL (limit {limit:.2f}x): " + "; ".join(failed),
            file=sys.stderr,
        )
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
