// Figure 7: percentage of workloads whose HP achieves a given SLO
// (80 / 85 / 90 / 95 %) under UM / CT / DICER, versus employed cores.
//
// Paper shape targets: UM conformance collapses with more BEs; DICER
// matches or beats CT for SLOs up to 90 %, especially beyond half the
// cores; at 95 % DICER and CT are about equal. Headline: DICER meets an
// 80 % SLO for >90 % of workloads and a 90 % SLO for 74 % at 10 cores.
//
// The underlying sweep parallelises across --jobs workers (see
// bench_common.hpp); the rows are identical for any worker count.
#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "util/stats.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;
  bench::BenchEnv env(argc, argv);
  bench::print_header("Figure 7: HP SLO conformance vs employed cores");

  harness::ConsolidationConfig config;
  config.cores_used = 10;
  const auto study = env.study(config);
  const auto sample = env.sample(study);

  harness::SweepConfig sc;
  sc.base = config;
  const auto rows = env.sweep(sample, sc);

  util::CsvWriter csv(env.path("fig7_slo.csv"));
  csv.header({"slo", "cores", "um_pct", "ct_pct", "dicer_pct"});
  for (const double slo : {0.80, 0.85, 0.90, 0.95}) {
    std::cout << util::section("SLO = " + util::fmt(slo * 100) + "%");
    util::TextTable t;
    t.set_header({"cores", "UM (%)", "CT (%)", "DICER (%)"});
    for (unsigned cores : sc.cores) {
      std::vector<double> cells;
      for (const std::string pol : {"UM", "CT", "DICER"}) {
        std::vector<double> norms;
        for (const auto& r : harness::filter(rows, pol, cores)) {
          norms.push_back(r.hp_norm());
        }
        cells.push_back(100.0 * metrics::slo_conformance(norms, slo));
      }
      t.add_row(std::to_string(cores), cells, 1);
      csv.row_numeric({slo, static_cast<double>(cores), cells[0], cells[1],
                       cells[2]});
    }
    t.print();
  }

  // Headline numbers at full occupancy.
  auto conformance_at_10 = [&](double slo) {
    std::vector<double> norms;
    for (const auto& r : harness::filter(rows, "DICER", 10)) {
      norms.push_back(r.hp_norm());
    }
    return 100.0 * metrics::slo_conformance(norms, slo);
  };
  std::cout << "\nHeadline (10 cores): DICER meets SLO 80% for "
            << util::fmt_fixed(conformance_at_10(0.80), 1)
            << "% of workloads (paper >90%), SLO 90% for "
            << util::fmt_fixed(conformance_at_10(0.90), 1)
            << "% (paper 74%)\n";
  std::cout << "CSV: " << env.path("fig7_slo.csv") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
