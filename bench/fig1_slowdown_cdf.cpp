// Figure 1: cumulative distribution of HP slowdown when co-located with
// 9 BEs, under UM and CT, over all 59x59 = 3481 multiprogrammed workloads.
// Also prints the CT-F / CT-T classification split (§2.3.3: ~60% CT-T).
//
// Paper shape targets: under UM ~64% of workloads land around 1.1x, <5%
// are unaffected, ~29% fall in 1.1x-2x and ~2.5% exceed 2x; CT lifts the
// unaffected share to ~15% and shrinks the 1.1x-2x band to ~8%.
#include "bench_common.hpp"
#include "util/stats.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;
  bench::BenchEnv env(argc, argv);
  bench::print_header("Figure 1: CDF of HP slowdown with 9 BEs (UM vs CT)");

  harness::ConsolidationConfig config;
  config.cores_used = 10;
  const auto study = env.study(config);

  std::vector<double> um, ct;
  um.reserve(study.entries.size());
  ct.reserve(study.entries.size());
  for (const auto& e : study.entries) {
    um.push_back(e.um_slowdown());
    ct.push_back(e.ct_slowdown());
  }

  // The paper's x ticks.
  const std::vector<double> ticks = {1.0, 1.05, 1.1, 1.2, 1.3, 1.5,
                                     1.7, 2.0, 3.0, 4.0, 5.0};
  util::TextTable table;
  table.set_header({"slowdown <=", "UM (% wl)", "CT (% wl)"});
  util::CsvWriter csv(env.path("fig1_slowdown_cdf.csv"));
  csv.header({"slowdown", "um_cdf_pct", "ct_cdf_pct"});
  for (double t : ticks) {
    const double u = 100.0 * util::cdf_at(um, t);
    const double c = 100.0 * util::cdf_at(ct, t);
    table.add_row(util::fmt(t), {u, c}, 1);
    csv.row_numeric({t, u, c});
  }
  table.print();

  const double unaffected_um = 100.0 * util::cdf_at(um, 1.02);
  const double unaffected_ct = 100.0 * util::cdf_at(ct, 1.02);
  const double band_um =
      100.0 * (util::cdf_at(um, 2.0) - util::cdf_at(um, 1.1));
  const double band_ct =
      100.0 * (util::cdf_at(ct, 2.0) - util::cdf_at(ct, 1.1));
  const double tail_um = 100.0 * (1.0 - util::cdf_at(um, 2.0));

  std::cout << "\nHeadline shape vs paper (Section 2.3):\n";
  std::cout << "  unaffected (<=1.02x): UM " << util::fmt_fixed(unaffected_um, 1)
            << "% (paper <5%), CT " << util::fmt_fixed(unaffected_ct, 1)
            << "% (paper ~15%)\n";
  std::cout << "  1.1x..2x band: UM " << util::fmt_fixed(band_um, 1)
            << "% (paper ~29%), CT " << util::fmt_fixed(band_ct, 1)
            << "% (paper ~8%)\n";
  std::cout << "  >2x tail: UM " << util::fmt_fixed(tail_um, 1)
            << "% (paper ~2.5%)\n";
  std::cout << "  CT-Thwarted share: "
            << util::fmt_fixed(100.0 * study.fraction_ct_thwarted(), 1)
            << "% of 3481 workloads (paper ~60%)\n";
  std::cout << "\nCSV: " << env.path("fig1_slowdown_cdf.csv") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
