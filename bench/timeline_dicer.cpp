// Timeline: the paper's Fig 5-style per-period narrative for one workload.
//
// Runs a single HP + (N-1) BE consolidation under DICER with the trace
// subsystem capturing every controller event, then prints — and writes to
// timeline_dicer.csv — one row per monitoring period: what the controller
// measured (HP IPC, HP/total bandwidth), how it judged it (saturation,
// Eq. 2 phase verdict, Eq. 3 stability verdict), and what it did
// (donation, sampling, reset, rollback). This is the observable story
// behind "workload X lands CT-F / CT-T".
//
//   timeline_dicer [--hp GemsFDTD1] [--be gcc_base3] [--cores 10]
//                  [--seconds 40] [--trace out.jsonl] [--quanta]
//
// --trace additionally streams the raw typed events (JSONL, or CSV when
// the path ends in .csv); the stream is deterministic — byte-identical
// across runs of the same workload. --quanta widens the kind mask to
// include per-quantum machine counters and monitor polls (verbose).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "policy/dicer.hpp"
#include "rdt/capability.hpp"

namespace {

using namespace dicer;

/// Short action tag for the events a period produced.
std::string action_tag(const trace::Event& e) {
  switch (e.kind) {
    case trace::Kind::kDonation:
      return "donate->" + std::to_string(trace::field_uint(e, "to"));
    case trace::Kind::kSamplingStart: return "sample_start";
    case trace::Kind::kSamplingStep:
      return "sample@" + std::to_string(trace::field_uint(e, "ways"));
    case trace::Kind::kSamplingDone:
      return "sample_done->" +
             std::to_string(trace::field_uint(e, "optimal_ways"));
    case trace::Kind::kPhaseReset: return "phase_reset";
    case trace::Kind::kPerfReset: return "perf_reset";
    case trace::Kind::kResetValidate:
      return "validate:" + trace::field_string(e, "outcome");
    default: return "";
  }
}

}  // namespace

static int run(int argc, char** argv) {
  bench::BenchEnv env(argc, argv);
  bench::print_header("Timeline: DICER per-period controller narrative");

  const std::string hp_name = env.args.get_or("hp", "GemsFDTD1");
  const std::string be_name = env.args.get_or("be", "gcc_base3");
  const auto cores =
      static_cast<unsigned>(std::clamp(env.args.get_int("cores", 10), 2L, 10L));
  const double seconds = env.args.get_double("seconds", 40.0);

  auto& tracer = trace::Tracer::global();
  if (env.args.get_bool("quanta", false)) {
    tracer.set_kinds(trace::kAllKinds & ~trace::mask_of(trace::Kind::kTimer));
  }
  auto capture = std::make_shared<trace::MemorySink>();
  tracer.add_sink(capture);

  const auto& catalog = sim::default_catalog();
  sim::Machine machine{sim::MachineConfig{}};
  const auto cap = rdt::Capability::probe(machine);
  rdt::CatController cat(machine, cap);
  rdt::Monitor monitor(machine, cap);

  policy::PolicyContext ctx;
  ctx.machine = &machine;
  ctx.cat = &cat;
  ctx.monitor = &monitor;
  ctx.hp_core = 0;
  machine.attach(0, &catalog.by_name(hp_name));
  for (unsigned c = 1; c < cores; ++c) {
    ctx.be_cores.push_back(c);
    machine.attach(c, &catalog.by_name(be_name));
  }

  policy::Dicer dicer;
  dicer.setup(ctx);
  while (machine.time_sec() < seconds) {
    machine.run_for(dicer.interval_sec());
    dicer.act(ctx);
  }

  tracer.remove_sink(capture);
  const auto events = capture->take();

  std::cout << "HP=" << hp_name << " + " << (cores - 1) << "x " << be_name
            << ", " << seconds << " s, BW threshold "
            << dicer.config().membw_threshold_bytes_per_sec * 8 / 1e9
            << " Gbps\n\n";
  std::printf("%8s %6s %-14s %5s %5s %8s %9s %9s %4s %4s %4s  %s\n", "t(s)",
              "period", "state", "class", "ways", "HP IPC", "HP GB/s",
              "tot GB/s", "sat", "ph", "stbl", "actions");

  util::CsvWriter csv(env.path("timeline_dicer.csv"));
  csv.header({"t_sec", "period", "state", "class", "hp_ways", "hp_ipc",
              "hp_gbps", "total_gbps", "saturated", "phase_change",
              "ipc_stable", "actions"});

  // One timeline row per kPeriod event, annotated with the action events
  // the controller emitted before the next period.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (e.kind != trace::Kind::kPeriod) continue;
    std::string actions;
    for (std::size_t j = i + 1;
         j < events.size() && events[j].kind != trace::Kind::kPeriod; ++j) {
      const std::string tag = action_tag(events[j]);
      if (tag.empty()) continue;
      if (!actions.empty()) actions += ' ';
      actions += tag;
    }
    const std::string state = trace::field_string(e, "state");
    const std::string cls = trace::field_string(e, "class");
    const double hp_ipc = trace::field_double(e, "hp_ipc");
    const double hp_gbps = trace::field_double(e, "hp_bw_bps") / 1e9;
    const double tot_gbps = trace::field_double(e, "total_bw_bps") / 1e9;
    const bool sat = trace::field_bool(e, "saturated");
    const bool phase = trace::field_bool(e, "phase_change");
    const bool stable = trace::field_bool(e, "ipc_stable");
    const auto ways = trace::field_uint(e, "hp_ways");
    std::printf("%8.2f %6llu %-14s %5s %5llu %8.3f %9.2f %9.2f %4s %4s %4s  %s\n",
                e.t_sec,
                static_cast<unsigned long long>(
                    trace::field_uint(e, "period")),
                state.c_str(), cls.c_str(),
                static_cast<unsigned long long>(ways), hp_ipc, hp_gbps,
                tot_gbps, sat ? "yes" : ".", phase ? "yes" : ".",
                stable ? "yes" : ".", actions.c_str());
    csv.row({util::fmt(e.t_sec),
             std::to_string(trace::field_uint(e, "period")), state, cls,
             std::to_string(ways), util::fmt(hp_ipc), util::fmt(hp_gbps),
             util::fmt(tot_gbps), sat ? "1" : "0", phase ? "1" : "0",
             stable ? "1" : "0", actions});
  }

  const auto& st = dicer.stats();
  std::cout << "\nSummary: " << st.periods << " periods, " << st.samplings
            << " samplings (" << st.sampling_steps << " settle intervals), "
            << st.way_donations << " way donations, " << st.phase_resets
            << " phase resets, " << st.perf_resets << " perf resets, "
            << st.rollbacks << " rollbacks; final HP ways="
            << dicer.hp_ways() << " class="
            << (dicer.ct_favoured() ? "CT-F" : "CT-T") << ".\n";
  std::cout << "CSV: " << env.path("timeline_dicer.csv") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
