// Ablation: which parts of DICER matter?
//
//  - DICER-noBW: bandwidth-saturation detection removed (the DCP-QoS /
//    Cook-style controller the related work section criticises).
//  - DICER+MBA: the paper's future-work extension that throttles the BE
//    class with MBA when the link saturates.
//  - DICER-literal: resample_cooldown_periods = 0, the literal Listing 1
//    driver that resamples on every saturated period.
//  - DICER-noPhase: phase_threshold effectively infinite — no phase
//    detection, resets driven by IPC only.
//
// Reported per variant over the 120-workload sample at 10 cores: HP SLO
// conformance (80/90%), geomean EFU, geomean SUCI(SLO=90%, lambda=1), and
// controller activity counters. --stats widens the table with the full
// DicerStats breakdown (settle steps, phase vs perf resets, rollbacks)
// plus the simulator's convergence counters (replay hit rate, mean
// fixed-point rounds per solve) summed over the variant's runs.
#include <memory>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "policy/extensions.hpp"
#include "policy/factory.hpp"
#include "util/stats.hpp"

namespace {

using namespace dicer;

std::unique_ptr<policy::Dicer> make_variant(const std::string& name) {
  policy::DicerConfig cfg;
  if (name == "DICER") return std::make_unique<policy::Dicer>(cfg);
  if (name == "DICER-noBW") return std::make_unique<policy::DicerNoBw>(cfg);
  if (name == "DICER+MBA") return std::make_unique<policy::DicerMba>();
  if (name == "DICER-literal") {
    cfg.resample_cooldown_periods = 0;
    return std::make_unique<policy::Dicer>(cfg);
  }
  if (name == "DICER-noPhase") {
    cfg.phase_threshold = 1e9;
    return std::make_unique<policy::Dicer>(cfg);
  }
  throw std::invalid_argument("unknown variant " + name);
}

}  // namespace

static int run(int argc, char** argv) {
  bench::BenchEnv env(argc, argv);
  bench::print_header("Ablation: DICER variants (120 workloads, 10 cores)");

  harness::ConsolidationConfig config;
  config.cores_used = 10;
  config.enable_mba = true;  // platform exposes MBA for the +MBA variant
  const auto study = env.study(config);
  const auto sample = env.sample(study);

  const std::vector<std::string> variants = {
      "DICER", "DICER-noBW", "DICER+MBA", "DICER-literal", "DICER-noPhase"};

  // --stats appends the remaining DicerStats counters as extra columns;
  // the default layout (and the committed CSV schema) stays unchanged.
  const bool full_stats = env.args.get_bool("stats", false);

  std::vector<std::string> head = {"variant", "SLO80 (%)", "SLO90 (%)",
                                   "EFU gmean", "SUCI90 gmean", "samplings",
                                   "donations", "resets"};
  std::vector<std::string> csv_head = {"variant", "slo80", "slo90",
                                       "efu",     "suci90", "samplings",
                                       "donations", "resets"};
  if (full_stats) {
    for (const char* c : {"settle_steps", "phase_resets", "perf_resets",
                          "rollbacks", "replay_pct", "rounds_mean"}) {
      head.push_back(c);
      csv_head.push_back(c);
    }
  }
  util::TextTable t;
  t.set_header(head);
  util::CsvWriter csv(env.path("ablation_dicer.csv"));
  csv.header(csv_head);

  const auto& catalog = sim::default_catalog();
  for (const auto& vname : variants) {
    std::vector<double> norms, efus, sucis;
    policy::DicerStats sum;
    sim::SolverStats solver;
    for (const auto& e : sample) {
      auto pol = make_variant(vname);
      const auto res = harness::run_consolidation(
          catalog.by_name(e.spec.hp), catalog.by_name(e.spec.be), *pol,
          config);
      const double norm = res.hp_ipc / e.hp_alone_ipc;
      const double efu = metrics::effective_utilisation(
          res.ipc_pairs(e.hp_alone_ipc, e.be_alone_ipc));
      norms.push_back(norm);
      efus.push_back(efu);
      sucis.push_back(
          std::max(metrics::suci(norm >= 0.90, efu, 1.0), 1e-3));
      const auto& st = pol->stats();
      sum.periods += st.periods;
      sum.samplings += st.samplings;
      sum.sampling_steps += st.sampling_steps;
      sum.way_donations += st.way_donations;
      sum.phase_resets += st.phase_resets;
      sum.perf_resets += st.perf_resets;
      sum.rollbacks += st.rollbacks;
      solver.merge(res.solver);
    }
    const double slo80 = 100.0 * metrics::slo_conformance(norms, 0.80);
    const double slo90 = 100.0 * metrics::slo_conformance(norms, 0.90);
    const double efu_g = util::gmean(efus);
    const double suci_g = util::gmean(sucis);
    std::vector<double> cols = {
        slo80,
        slo90,
        efu_g,
        suci_g,
        static_cast<double>(sum.samplings),
        static_cast<double>(sum.way_donations),
        static_cast<double>(sum.phase_resets + sum.perf_resets)};
    if (full_stats) {
      cols.push_back(static_cast<double>(sum.sampling_steps));
      cols.push_back(static_cast<double>(sum.phase_resets));
      cols.push_back(static_cast<double>(sum.perf_resets));
      cols.push_back(static_cast<double>(sum.rollbacks));
      cols.push_back(solver.quanta
                         ? 100.0 * static_cast<double>(solver.replays) /
                               static_cast<double>(solver.quanta)
                         : 0.0);
      cols.push_back(solver.solves
                         ? static_cast<double>(solver.total_rounds()) /
                               static_cast<double>(solver.solves)
                         : 0.0);
    }
    t.add_row(vname, cols, -1);
    csv.row_labeled(vname, cols);
  }
  t.print();
  std::cout << "\nCSV: " << env.path("ablation_dicer.csv") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
