// Micro benchmarks (google-benchmark): throughput of the substrate pieces.
// These guard the "a 59x59 study finishes in about a minute" property the
// figure benches depend on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "fleet/cluster.hpp"
#include "harness/solo.hpp"
#include "harness/sweep.hpp"
#include "policy/dicer.hpp"
#include "rdt/capability.hpp"
#include "sim/cache/address_stream.hpp"
#include "sim/cache/mrc_profiler.hpp"
#include "sim/cache/occupancy_model.hpp"
#include "sim/cache/set_assoc_cache.hpp"
#include "sim/core/catalog.hpp"
#include "sim/machine.hpp"
#include "sim/machine_batch.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace_counter_sink.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

using namespace dicer;

void BM_MachineStep10Apps(benchmark::State& state) {
  sim::Machine machine{sim::MachineConfig{}};
  const auto& catalog = sim::default_catalog();
  for (unsigned c = 0; c < 10; ++c) {
    machine.attach(c, &catalog.at(c * 5));
  }
  for (auto _ : state) {
    machine.step();
    benchmark::DoNotOptimize(machine.telemetry(0).instructions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineStep10Apps);

void BM_MachineStepPartitioned(benchmark::State& state) {
  sim::Machine machine{sim::MachineConfig{}};
  const auto& catalog = sim::default_catalog();
  for (unsigned c = 0; c < 10; ++c) {
    machine.attach(c, &catalog.at(c * 5 + 1));
  }
  machine.set_fill_mask(0, sim::WayMask::high(19, 20));
  for (unsigned c = 1; c < 10; ++c) {
    machine.set_fill_mask(c, sim::WayMask::low(1));
  }
  for (auto _ : state) {
    machine.step();
    benchmark::DoNotOptimize(machine.telemetry(0).instructions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineStepPartitioned);

// Worst case for the cached region decomposition: every step is preceded
// by a repartition, so the cache misses each quantum and the full
// decompose + layout rebuild + cold bisection runs. The gap between this
// and BM_MachineStep10Apps is the price of one mask churn; a controller
// acting once per second amortises it over ~100 quanta.
void BM_MachineStepMaskChurn(benchmark::State& state) {
  sim::Machine machine{sim::MachineConfig{}};
  const auto& catalog = sim::default_catalog();
  for (unsigned c = 0; c < 10; ++c) {
    machine.attach(c, &catalog.at(c * 5));
  }
  unsigned flip = 0;
  for (auto _ : state) {
    const unsigned hp_ways = 10 + (flip++ & 7);
    machine.set_fill_mask(0, sim::WayMask::high(hp_ways, 20));
    for (unsigned c = 1; c < 10; ++c) {
      machine.set_fill_mask(c, sim::WayMask::low(20 - hp_ways));
    }
    machine.step();
    benchmark::DoNotOptimize(machine.telemetry(0).instructions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineStepMaskChurn);

// Ten single-phase apps: after the fixed point settles once, every
// quantum's solver inputs are unchanged, so the steady-state replay path
// carries the whole benchmark. This is the regime the policy sweep spends
// most of its time in (solo runs and settled consolidation stretches);
// BM_MachineStep10Apps, with its 50 phase schedules, bounds the other end
// where drift solves dominate.
void BM_MachineStepSteadyState(benchmark::State& state) {
  const auto& catalog = sim::default_catalog();
  static std::vector<sim::AppProfile> profiles = [&] {
    std::vector<sim::AppProfile> ps;
    for (unsigned c = 0; c < 10; ++c) {
      sim::AppProfile p = catalog.at(c * 5);
      p.phases.resize(1);
      ps.push_back(std::move(p));
    }
    return ps;
  }();
  sim::Machine machine{sim::MachineConfig{}};
  for (unsigned c = 0; c < 10; ++c) {
    machine.attach(c, &profiles[c]);
  }
  for (auto _ : state) {
    machine.step();
    benchmark::DoNotOptimize(machine.telemetry(0).instructions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  const auto& stats = machine.solver_stats();
  state.counters["replay_pct"] =
      100.0 * static_cast<double>(stats.replays) /
      static_cast<double>(std::max<std::uint64_t>(stats.quanta, 1));
}
BENCHMARK(BM_MachineStepSteadyState);

// The same single-phase workload with the convergence shortcuts disabled:
// the pure fixed-point solve path, i.e. what every step cost before replay
// existed. The gap to BM_MachineStepSteadyState is the price of one solve.
void BM_MachineStepNoShortcuts(benchmark::State& state) {
  const auto& catalog = sim::default_catalog();
  static std::vector<sim::AppProfile> profiles = [&] {
    std::vector<sim::AppProfile> ps;
    for (unsigned c = 0; c < 10; ++c) {
      sim::AppProfile p = catalog.at(c * 5);
      p.phases.resize(1);
      ps.push_back(std::move(p));
    }
    return ps;
  }();
  sim::MachineConfig config{};
  config.solver_shortcuts = false;
  sim::Machine machine{config};
  for (unsigned c = 0; c < 10; ++c) {
    machine.attach(c, &profiles[c]);
  }
  for (auto _ : state) {
    machine.step();
    benchmark::DoNotOptimize(machine.telemetry(0).instructions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineStepNoShortcuts);

// Fixture for the batched-stepping pair: single-phase apps keep every
// machine in steady-state replay, the regime MachineBatch accelerates.
std::vector<sim::AppProfile>& steady_profiles() {
  static std::vector<sim::AppProfile> profiles = [] {
    const auto& catalog = sim::default_catalog();
    std::vector<sim::AppProfile> ps;
    for (unsigned c = 0; c < 10; ++c) {
      sim::AppProfile p = catalog.at(c * 5);
      p.phases.resize(1);
      ps.push_back(std::move(p));
    }
    return ps;
  }();
  return profiles;
}

constexpr unsigned kBatchBenchMachines = 8;
// One policy control interval — the granularity both real consumers (the
// sweep's run_consolidation_batch, the fleet data plane) drive lanes at.
constexpr unsigned kBatchBenchQuanta = 10;

// Serial baseline for BM_MachineStepBatched: the same 8 machines x 10
// steady-state apps advanced one control interval (10 quanta) per machine
// per iteration through Machine::run_for — the exact call shape the sweep
// and fleet data planes use. Items are machine-quanta, so time-per-item
// compares directly against the batched run; bench_compare.py pins
// batched >= 2x faster than this.
void BM_MachineStepSerial(benchmark::State& state) {
  auto& profiles = steady_profiles();
  const double interval = sim::MachineConfig{}.quantum_sec * kBatchBenchQuanta;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  for (unsigned m = 0; m < kBatchBenchMachines; ++m) {
    machines.push_back(std::make_unique<sim::Machine>(sim::MachineConfig{}));
    for (unsigned c = 0; c < 10; ++c) machines[m]->attach(c, &profiles[c]);
  }
  for (auto _ : state) {
    for (auto& m : machines) m->run_for(interval);
    benchmark::DoNotOptimize(machines[0]->telemetry(0).instructions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kBatchBenchMachines * kBatchBenchQuanta);
}
BENCHMARK(BM_MachineStepSerial);

// The same 8 machines x 10 quanta through one MachineBatch: shared phase
// table, fused replay commits, whole intervals committed by the budgeted
// bulk path. fused_pct should sit near 100 — a low value means the lanes
// keep falling off the fast path and the comparison is measuring fallback
// steps, not the SoA engine.
void BM_MachineStepBatched(benchmark::State& state) {
  auto& profiles = steady_profiles();
  const double interval = sim::MachineConfig{}.quantum_sec * kBatchBenchQuanta;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  sim::MachineBatch batch;
  for (unsigned m = 0; m < kBatchBenchMachines; ++m) {
    machines.push_back(std::make_unique<sim::Machine>(sim::MachineConfig{}));
    for (unsigned c = 0; c < 10; ++c) machines[m]->attach(c, &profiles[c]);
    batch.add(*machines[m]);
  }
  for (auto _ : state) {
    for (unsigned m = 0; m < kBatchBenchMachines; ++m) batch.run_for(m, interval);
    benchmark::DoNotOptimize(machines[0]->telemetry(0).instructions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kBatchBenchMachines * kBatchBenchQuanta);
  const auto& bs = batch.stats();
  const auto total = bs.fused_quanta + bs.fallback_steps;
  state.counters["fused_pct"] =
      100.0 * static_cast<double>(bs.fused_quanta) /
      static_cast<double>(std::max<std::uint64_t>(total, 1));
  state.counters["shared_phases"] =
      static_cast<double>(batch.shared_phase_count());
}
BENCHMARK(BM_MachineStepBatched);

// A long consolidation-shaped run: 100 quanta (one 1 s control period)
// per iteration, crossing app phase boundaries and completions — the
// sustained-throughput number behind every figure bench, as opposed to
// the single-quantum steady-state probes above.
void BM_MachineRunPeriod(benchmark::State& state) {
  sim::Machine machine{sim::MachineConfig{}};
  const auto& catalog = sim::default_catalog();
  machine.attach(0, &catalog.by_name("omnetpp1"));
  for (unsigned c = 1; c < 10; ++c) {
    machine.attach(c, &catalog.by_name("gcc_base3"));
  }
  for (auto _ : state) {
    machine.run_for(1.0);
    benchmark::DoNotOptimize(machine.telemetry(0).instructions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
  state.counters["quanta_per_iter"] = 100;
}
BENCHMARK(BM_MachineRunPeriod)->Unit(benchmark::kMicrosecond);

void BM_OccupancySolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<sim::WayMask> masks(n, sim::WayMask::full(20));
  const auto regions = sim::decompose_regions(masks, 20, 1.25 * 1024 * 1024);
  std::vector<sim::CacheDemand> demand(n);
  for (std::size_t i = 0; i < n; ++i) {
    demand[i].reuse = {{0.5e9 + 0.1e9 * static_cast<double>(i),
                        3e6 * static_cast<double>(i + 1)},
                       {0.1e9, 20e6}};
    demand[i].stream_bytes_per_sec = 0.05e9;
  }
  for (auto _ : state) {
    auto occ = sim::solve_occupancy(regions, n, demand);
    benchmark::DoNotOptimize(occ.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OccupancySolver)->Arg(2)->Arg(10);

void BM_TraceCacheAccess(benchmark::State& state) {
  sim::CacheGeometry geom{1 << 20, 16, 64};  // 1 MB for hot loops
  sim::SetAssocCache cache(geom, 2);
  sim::WorkingSetStream stream(4 << 20, 0, util::Xoshiro256(1));
  const auto mask = sim::WayMask::full(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(stream.next(), 0, mask).hit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceCacheAccess);

// MRC profiling cost, three ways on the same 20-way validation geometry
// and stream. Exact replay (jobs=1) is the old cost: one full warmup +
// measure replay per way count. Single-pass profiles all 20 way counts in
// one stream traversal with byte-identical output; sampled adds SHARDS
// set-sampling on top (<= 0.02 abs error). The Exact/SinglePass ratio is
// the headline speedup the docs quote.
sim::MrcProfilerConfig profiler_bench_config() {
  sim::MrcProfilerConfig cfg;
  cfg.geometry = {
      .size_bytes = 5ull * 1024 * 1024 / 2, .ways = 20, .line_bytes = 64};
  cfg.warmup_accesses = 30'000;
  cfg.measure_accesses = 60'000;
  return cfg;
}

std::unique_ptr<sim::AddressStream> profiler_bench_stream() {
  return std::make_unique<sim::WorkingSetStream>(1 << 20, 0,
                                                 util::Xoshiro256(42));
}

void BM_ProfileMrcExact(benchmark::State& state) {
  auto cfg = profiler_bench_config();
  cfg.mode = sim::MrcProfilerMode::kExactReplay;
  cfg.jobs = 1;  // serial oracle: the pre-optimisation baseline
  for (auto _ : state) {
    const auto mrc = sim::profile_mrc(cfg, profiler_bench_stream);
    benchmark::DoNotOptimize(mrc.points().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfileMrcExact)->Unit(benchmark::kMillisecond);

void BM_ProfileMrcSinglePass(benchmark::State& state) {
  auto cfg = profiler_bench_config();
  cfg.mode = sim::MrcProfilerMode::kSinglePass;
  for (auto _ : state) {
    const auto mrc = sim::profile_mrc(cfg, profiler_bench_stream);
    benchmark::DoNotOptimize(mrc.points().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfileMrcSinglePass)->Unit(benchmark::kMillisecond);

void BM_ProfileMrcSampled(benchmark::State& state) {
  auto cfg = profiler_bench_config();
  cfg.mode = sim::MrcProfilerMode::kSampled;
  cfg.sampling = {.mode = sim::ShardsMode::kFixedRate, .rate = 0.125};
  for (auto _ : state) {
    const auto mrc = sim::profile_mrc(cfg, profiler_bench_stream);
    benchmark::DoNotOptimize(mrc.points().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfileMrcSampled)->Unit(benchmark::kMillisecond);

void BM_MrcEval(benchmark::State& state) {
  const auto mrc = sim::MissRatioCurve::double_knee(0.3, 3e6, 0.4, 2e7, 0.05);
  double x = 0.0;
  for (auto _ : state) {
    x += 1e5;
    if (x > 3e7) x = 0.0;
    benchmark::DoNotOptimize(mrc.at(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MrcEval);

void BM_SoloSteadyState(benchmark::State& state) {
  const sim::MachineConfig mc;
  const auto& app = sim::default_catalog().by_name("gcc_base3");
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::solo_steady_state(app, 20, mc).ipc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SoloSteadyState);

// Controller overhead: one full DICER monitoring decision (measure + state
// machine) on a live consolidation. The paper's controller runs once per
// second on a real server; here one act() costs microseconds.
void BM_DicerAct(benchmark::State& state) {
  sim::Machine machine{sim::MachineConfig{}};
  const auto& catalog = sim::default_catalog();
  machine.attach(0, &catalog.by_name("milc1"));
  for (unsigned c = 1; c < 10; ++c) {
    machine.attach(c, &catalog.by_name("gcc_base3"));
  }
  const auto cap = rdt::Capability::probe(machine);
  rdt::CatController cat(machine, cap);
  rdt::Monitor monitor(machine, cap);
  policy::PolicyContext ctx;
  ctx.machine = &machine;
  ctx.cat = &cat;
  ctx.monitor = &monitor;
  ctx.hp_core = 0;
  for (unsigned c = 1; c < 10; ++c) ctx.be_cores.push_back(c);
  policy::Dicer dicer;
  dicer.setup(ctx);
  machine.run_for(1.0);
  for (auto _ : state) {
    dicer.act(ctx);
    benchmark::DoNotOptimize(dicer.hp_ways());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DicerAct);

// Policy-sweep throughput: a reduced slice of the Fig 5-8 grid
// (workloads x cores x {UM, CT, DICER}) evaluated on 1, half and all
// hardware workers. This is the shared computation behind Figs 5-8
// (120 x 9 x 3 = 3240 cells), so cells/second here bounds every figure
// bench; the parallel executor must show near-linear scaling because
// cells are chunky and fully independent.
void BM_PolicySweep(benchmark::State& state) {
  const auto& catalog = sim::default_catalog();
  std::vector<harness::BaselineEntry> sample;
  for (std::size_t i = 0; i + 1 < catalog.size() && sample.size() < 6;
       i += 9) {
    harness::BaselineEntry e;
    e.spec = {catalog.at(i).name, catalog.at(i + 1).name};
    e.hp_alone_ipc = 3.0;
    e.be_alone_ipc = 3.0;
    e.um_hp_ipc = 2.7;
    e.ct_hp_ipc = 2.85;
    sample.push_back(e);
  }
  harness::SweepConfig sc;
  sc.cores = {3, 6, 10};
  sc.jobs = static_cast<unsigned>(state.range(0));
  const auto cells =
      sample.size() * sc.cores.size() * sc.policies.size();
  for (auto _ : state) {
    auto rows = harness::policy_sweep(catalog, sample, sc, /*cache_path=*/"");
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cells));
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["jobs"] = static_cast<double>(sc.jobs);
}
BENCHMARK(BM_PolicySweep)
    ->Apply([](benchmark::internal::Benchmark* b) {
      const unsigned hw = dicer::util::ThreadPool::hardware_workers();
      b->Arg(1);
      if (hw >= 4) b->Arg(std::max(2u, hw / 2));
      if (hw >= 2) b->Arg(hw);
    })
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The BM_PolicySweep grid on one worker with a fixed cell chunking —
// jobs held at 1 so the BM_SweepSerialCells / BM_SweepBatched delta
// isolates the MachineBatch engine from thread scaling (which
// BM_PolicySweep already covers). Rows are byte-identical either way.
std::vector<harness::BaselineEntry> sweep_bench_sample() {
  const auto& catalog = sim::default_catalog();
  std::vector<harness::BaselineEntry> sample;
  for (std::size_t i = 0; i + 1 < catalog.size() && sample.size() < 6;
       i += 9) {
    harness::BaselineEntry e;
    e.spec = {catalog.at(i).name, catalog.at(i + 1).name};
    e.hp_alone_ipc = 3.0;
    e.be_alone_ipc = 3.0;
    e.um_hp_ipc = 2.7;
    e.ct_hp_ipc = 2.85;
    sample.push_back(e);
  }
  return sample;
}

void sweep_cells_bench(benchmark::State& state, unsigned batch_cells) {
  const auto& catalog = sim::default_catalog();
  const auto sample = sweep_bench_sample();
  harness::SweepConfig sc;
  sc.cores = {3, 6, 10};
  sc.jobs = 1;
  sc.batch_cells = batch_cells;
  const auto cells = sample.size() * sc.cores.size() * sc.policies.size();
  for (auto _ : state) {
    auto rows = harness::policy_sweep(catalog, sample, sc, /*cache_path=*/"");
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(cells));
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["batch_cells"] = static_cast<double>(sc.batch_cells);
}

void BM_SweepSerialCells(benchmark::State& state) {
  sweep_cells_bench(state, /*batch_cells=*/1);
}
BENCHMARK(BM_SweepSerialCells)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_SweepBatched(benchmark::State& state) {
  sweep_cells_bench(state, /*batch_cells=*/8);
}
BENCHMARK(BM_SweepBatched)->UseRealTime()->Unit(benchmark::kMillisecond);

// One fleet epoch over 64 DICER machines under churn: the control plane
// (departures/migrations/placement), the sharded data-plane step and the
// ordered reduction together. Guards the "a 500-machine fleet runs in
// seconds, not minutes" property fleet_sim depends on.
void BM_FleetEpoch(benchmark::State& state) {
  fleet::FleetConfig fc;
  fc.num_machines = 64;
  fc.cores_used = 6;
  fc.churn.arrival_rate_per_sec = 20.0;
  fc.churn.mean_lifetime_sec = 6.0;
  fc.jobs = static_cast<unsigned>(state.range(0));
  fleet::Cluster cluster(fc, sim::default_catalog());
  for (auto _ : state) {
    const auto m = cluster.step_epoch();
    benchmark::DoNotOptimize(m.fleet_efu);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fc.num_machines));
  state.counters["machines"] = static_cast<double>(fc.num_machines);
  state.counters["jobs"] = static_cast<double>(fc.jobs);
}
BENCHMARK(BM_FleetEpoch)
    ->Apply([](benchmark::internal::Benchmark* b) {
      b->Arg(1);
      const unsigned hw = dicer::util::ThreadPool::hardware_workers();
      if (hw > 1) b->Arg(static_cast<int>(hw));
    })
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The raw telemetry hot path: one histogram record plus one counter inc
// per iteration — what a machine shard pays per observation. Nanoseconds
// here keep the <2% BM_FleetEpoch overhead budget honest.
void BM_MetricsRecord(benchmark::State& state) {
  telemetry::Registry registry;
  auto& hist = registry.histogram("bench_ratio");
  auto& ctr = registry.counter("bench_events_total");
  double v = 0.0;
  for (auto _ : state) {
    v += 0.001953125;  // exact in binary: walk the bucket range
    if (v > 2.0) v = 0.0;
    hist.record(v);
    ctr.inc();
    benchmark::DoNotOptimize(&hist);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsRecord);

// BM_FleetEpoch with the full observability stack on: a registry bound
// into the cluster and a TraceCounterSink counting every emitted event.
// bench_compare.py pins (this / BM_FleetEpoch) <= 1.02 — metrics must stay
// within a 2% overhead budget.
void BM_FleetEpochWithMetrics(benchmark::State& state) {
  trace::Tracer tracer;
  telemetry::Registry registry;
  auto sink = std::make_shared<telemetry::TraceCounterSink>(registry);
  tracer.add_sink(sink);
  fleet::FleetConfig fc;
  fc.num_machines = 64;
  fc.cores_used = 6;
  fc.churn.arrival_rate_per_sec = 20.0;
  fc.churn.mean_lifetime_sec = 6.0;
  fc.jobs = static_cast<unsigned>(state.range(0));
  fc.tracer = &tracer;
  fc.metrics = &registry;
  fleet::Cluster cluster(fc, sim::default_catalog());
  for (auto _ : state) {
    const auto m = cluster.step_epoch();
    benchmark::DoNotOptimize(m.fleet_efu);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fc.num_machines));
  state.counters["machines"] = static_cast<double>(fc.num_machines);
  state.counters["jobs"] = static_cast<double>(fc.jobs);
  state.counters["metrics"] = static_cast<double>(registry.size());
}
BENCHMARK(BM_FleetEpochWithMetrics)
    ->Apply([](benchmark::internal::Benchmark* b) {
      b->Arg(1);
      const unsigned hw = dicer::util::ThreadPool::hardware_workers();
      if (hw > 1) b->Arg(static_cast<int>(hw));
    })
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// One MRC best-fit placement decision over a 2000-machine fleet under
// steady churn, full-scan vs indexed. Both variants run the identical
// mutation + decision sequence (the paths are byte-equivalent, so the
// placed-tenant stream is too); the full scan pays the per-decision
// MachineView rebuild plus 2N predict() calls the historical control plane
// paid, the indexed path resolves off the PlacementIndex's dirty-score
// caches. bench_compare.py pins (full-scan / indexed) >= 5x.
void fleet_placement_bench(benchmark::State& state, bool indexed) {
  const auto& catalog = sim::default_catalog();
  const sim::MachineConfig mc;
  const fleet::AppDirectory dir(catalog, mc);
  constexpr unsigned kMachines = 2000;
  constexpr unsigned kBeSlots = 5;
  fleet::PlacementIndex index(dir, kBeSlots);
  util::Xoshiro256 rng(99);
  // ~60% BE-slot occupancy: busy enough that MRC scoring has real tenant
  // lists, open enough that every decision has thousands of candidates.
  for (unsigned m = 0; m < kMachines; ++m) {
    index.add_machine(&catalog.at(rng.below(catalog.size())));
    for (unsigned c = 1; c <= kBeSlots; ++c) {
      if (rng.below(100) < 60) {
        index.admit(m, c, &catalog.at(rng.below(catalog.size())));
      }
    }
  }
  fleet::MrcBestFitPlacement engine(dir);
  for (auto _ : state) {
    // Churn one tenant out (dirtying its machine's score caches), then
    // place and admit a fresh arrival — the steady-state epoch pattern.
    for (;;) {
      const auto m = static_cast<unsigned>(rng.below(kMachines));
      const unsigned c = 1 + static_cast<unsigned>(rng.below(kBeSlots));
      if (index.tenant(m, c)) {
        index.detach(m, c);
        break;
      }
    }
    const auto* app = &catalog.at(rng.below(catalog.size()));
    std::optional<unsigned> dest;
    if (indexed) {
      dest = engine.place_indexed(*app, index, std::nullopt);
    } else {
      auto views = fleet::index_views(index);
      dest = engine.place(*app, views);
    }
    benchmark::DoNotOptimize(dest);
    if (dest) {
      for (unsigned c = 1; c <= kBeSlots; ++c) {
        if (!index.tenant(*dest, c)) {
          index.admit(*dest, c, app);
          break;
        }
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["machines"] = static_cast<double>(kMachines);
}

void BM_FleetPlacementFullScan(benchmark::State& state) {
  fleet_placement_bench(state, /*indexed=*/false);
}
BENCHMARK(BM_FleetPlacementFullScan)->Unit(benchmark::kMillisecond);

void BM_FleetPlacementIndexed(benchmark::State& state) {
  fleet_placement_bench(state, /*indexed=*/true);
}
BENCHMARK(BM_FleetPlacementIndexed)->Unit(benchmark::kMillisecond);

// One epoch-sized arrival burst against a 4000-machine index: 32 tenants
// decided and committed through PlacementEngine::place_arrivals after 32
// random departures reopen slots (the steady-state churn shape). Serial
// runs the engine without a pool — the sequential decide-then-commit
// loop; Parallel shards the speculative scoring over 8 workers and
// commits in order. Decisions are byte-identical by construction (the
// ParallelCp suite pins them), so the Serial/Parallel ratio is pure
// pipeline speedup; bench_compare.py --speedup gates Parallel >= 2x
// Serial on the multi-core CI runners.
void fleet_arrival_burst_bench(benchmark::State& state, bool parallel) {
  const auto& catalog = sim::default_catalog();
  const sim::MachineConfig mc;
  const fleet::AppDirectory dir(catalog, mc);
  constexpr unsigned kMachines = 4000;
  constexpr unsigned kBeSlots = 5;
  constexpr std::size_t kBurst = 32;
  fleet::PlacementIndex index(dir, kBeSlots);
  util::Xoshiro256 rng(7);
  // ~60% BE-slot occupancy, as in fleet_placement_bench.
  for (unsigned m = 0; m < kMachines; ++m) {
    index.add_machine(&catalog.at(rng.below(catalog.size())));
    for (unsigned c = 1; c <= kBeSlots; ++c) {
      if (rng.below(100) < 60) {
        index.admit(m, c, &catalog.at(rng.below(catalog.size())));
      }
    }
  }
  fleet::MrcBestFitPlacement engine(dir);
  std::unique_ptr<util::ThreadPool> pool;
  if (parallel) {
    pool = std::make_unique<util::ThreadPool>(8);
    engine.set_parallel(pool.get(), 8);
  }
  std::vector<const sim::AppProfile*> apps;
  for (auto _ : state) {
    for (std::size_t d = 0; d < kBurst;) {
      const auto m = static_cast<unsigned>(rng.below(kMachines));
      const unsigned c = 1 + static_cast<unsigned>(rng.below(kBeSlots));
      if (index.tenant(m, c)) {
        index.detach(m, c);
        ++d;
      }
    }
    apps.clear();
    for (std::size_t j = 0; j < kBurst; ++j) {
      apps.push_back(&catalog.at(rng.below(catalog.size())));
    }
    engine.place_arrivals(
        apps, index, [&](std::size_t j, std::optional<unsigned> dest) {
          if (!dest) return;
          for (unsigned c = 1; c <= kBeSlots; ++c) {
            if (!index.tenant(*dest, c)) {
              index.admit(*dest, c, apps[j]);
              break;
            }
          }
        });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBurst));
  state.counters["machines"] = static_cast<double>(kMachines);
  state.counters["burst"] = static_cast<double>(kBurst);
}

void BM_FleetArrivalBurstSerial(benchmark::State& state) {
  fleet_arrival_burst_bench(state, /*parallel=*/false);
}
BENCHMARK(BM_FleetArrivalBurstSerial)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_FleetArrivalBurstParallel(benchmark::State& state) {
  fleet_arrival_burst_bench(state, /*parallel=*/true);
}
BENCHMARK(BM_FleetArrivalBurstParallel)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// A churn-heavy epoch at fleet scale: 10k machines, ~400 arrivals/sec into
// mrc placement. The cluster is built once and stepped across benchmark
// batches (tenant population reaches steady state after the first epochs),
// so each iteration is one production-shaped epoch: control plane +
// sharded data plane + ordered reduction.
void BM_FleetEpochChurn(benchmark::State& state) {
  static fleet::Cluster* cluster = [] {
    fleet::FleetConfig fc;
    fc.num_machines = 10000;
    fc.cores_used = 6;
    fc.churn.arrival_rate_per_sec = 400.0;
    fc.churn.mean_lifetime_sec = 8.0;
    fc.placement = "mrc";
    return new fleet::Cluster(fc, sim::default_catalog());
  }();
  for (auto _ : state) {
    const auto m = cluster->step_epoch();
    benchmark::DoNotOptimize(m.fleet_efu);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  state.counters["machines"] = 10000.0;
  state.counters["tenants"] =
      static_cast<double>(cluster->tenants_running());
}
BENCHMARK(BM_FleetEpochChurn)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
