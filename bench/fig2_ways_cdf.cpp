// Figure 2: cumulative distribution of the minimum LLC ways each
// application needs, when running alone, to reach 90% / 95% / 99% of the
// performance it achieves with all 20 ways.
//
// Paper shape targets: 50% of applications reach 99% of max performance
// with only 6 ways; 90% of applications reach 90% of max performance with
// only 5 ways.
#include "bench_common.hpp"
#include "harness/solo.hpp"
#include "util/stats.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;
  bench::BenchEnv env(argc, argv);
  bench::print_header(
      "Figure 2: CDF of LLC ways needed for 90/95/99% of solo performance");

  const sim::MachineConfig mc;
  const auto& catalog = sim::default_catalog();

  const std::vector<double> fractions = {0.90, 0.95, 0.99};
  std::vector<std::vector<double>> min_ways(fractions.size());
  for (const auto& app : catalog.profiles()) {
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      min_ways[f].push_back(static_cast<double>(
          harness::min_ways_for_fraction(app, fractions[f], mc)));
    }
  }

  util::TextTable t;
  t.set_header({"allocated ways", "90% (% apps)", "95% (% apps)",
                "99% (% apps)"});
  util::CsvWriter csv(env.path("fig2_ways_cdf.csv"));
  csv.header({"ways", "pct_apps_90", "pct_apps_95", "pct_apps_99"});
  for (unsigned w = 1; w <= mc.llc.ways; ++w) {
    std::vector<double> row;
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      row.push_back(100.0 *
                    util::cdf_at(min_ways[f], static_cast<double>(w)));
    }
    t.add_row(std::to_string(w), row, 1);
    csv.row_numeric({static_cast<double>(w), row[0], row[1], row[2]});
  }
  t.print();

  std::cout << "\nHeadline shape vs paper (Section 2.3.1):\n"
            << "  apps reaching 99% of max perf with <=6 ways: "
            << util::fmt_fixed(100.0 * util::cdf_at(min_ways[2], 6.0), 1)
            << "% (paper ~50%)\n"
            << "  apps reaching 90% of max perf with <=5 ways: "
            << util::fmt_fixed(100.0 * util::cdf_at(min_ways[0], 5.0), 1)
            << "% (paper ~90%)\n";
  std::cout << "\nCSV: " << env.path("fig2_ways_cdf.csv") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
