// Shared plumbing for the figure-reproduction benches: standard flags,
// cache/result file locations, and access to the baseline study and the
// 120-workload representative sample.
//
// Common flags (all benches):
//   --recompute        ignore on-disk caches and re-run the underlying study
//   --cache-dir DIR    where caches/CSVs live (default $DICER_CACHE_DIR or .)
//   --cores N          machine cores (default 10, the paper's Xeon)
//   --jobs N           parallel sweep workers (default $DICER_SWEEP_JOBS,
//                      else all hardware threads; results are identical
//                      for any worker count)
//   --log-level L      debug|info|warn|error|off (same as DICER_LOG; the
//                      flag wins over the env var)
//   --trace PATH       record structured trace events to PATH for the
//                      whole bench run — JSONL, or CSV when PATH ends in
//                      .csv (same as DICER_TRACE; the flag wins)
//   --profile          print the scoped-timer profile (sweep stages,
//                      per-consolidation cost) to stderr on exit
#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "harness/workloads.hpp"
#include "sim/core/catalog.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace dicer::bench {

struct BenchEnv {
  util::CliArgs args;
  std::string cache_dir;
  bool recompute = false;
  unsigned jobs = 0;  ///< sweep workers; 0 = auto (env, then hardware)
  bool profile = false;
  std::shared_ptr<trace::Sink> trace_sink;  ///< set iff --trace/DICER_TRACE
  std::string trace_path;

  explicit BenchEnv(int argc, char** argv) : args(argc, argv) {
    cache_dir = args.get_or("cache-dir", harness::default_cache_dir());
    std::filesystem::create_directories(cache_dir);
    recompute = args.get_bool("recompute", false);
    const long j = args.get_int("jobs", 0);
    jobs = j > 0 ? static_cast<unsigned>(j) : 0;
    profile = args.get_bool("profile", false);
    if (const auto level = args.get("log-level")) {
      util::set_log_threshold(util::parse_log_level(*level));
    }
    trace_path = args.get_or("trace", "");
    if (trace_path.empty()) {
      if (const char* env = std::getenv("DICER_TRACE")) trace_path = env;
    }
    if (!trace_path.empty()) {
      trace_sink = trace::make_file_sink(trace_path);
      trace::Tracer::global().add_sink(trace_sink);
    }
  }

  BenchEnv(const BenchEnv&) = delete;
  BenchEnv& operator=(const BenchEnv&) = delete;

  ~BenchEnv() {
    if (trace_sink) {
      trace::Tracer::global().remove_sink(trace_sink);  // flushes
      std::cerr << "trace: " << trace_path << "\n";
    }
    if (profile) {
      const std::string table = trace::TimerRegistry::global().format();
      if (!table.empty()) std::cerr << "\n" << table;
    }
  }

  std::string path(const std::string& filename) const {
    return (std::filesystem::path(cache_dir) / filename).string();
  }

  /// The full 59x59 UM/CT baseline study (cached).
  harness::BaselineStudy study(
      const harness::ConsolidationConfig& config) const {
    return harness::baseline_study(sim::default_catalog(), config,
                                   path("cache_baseline_study.csv"),
                                   recompute);
  }

  /// The paper's representative sample: 50 CT-F + 70 CT-T workloads.
  std::vector<harness::BaselineEntry> sample(
      const harness::BaselineStudy& st) const {
    return harness::representative_sample(st, 50, 70);
  }

  /// The UM/CT/DICER x cores sweep over the sample (cached). Runs on
  /// `--jobs` workers; rows are identical for any worker count.
  std::vector<harness::SweepRow> sweep(
      const std::vector<harness::BaselineEntry>& sample_entries,
      const harness::SweepConfig& config) const {
    harness::SweepConfig cfg = config;
    if (cfg.jobs == 0) cfg.jobs = jobs;
    return harness::policy_sweep(sim::default_catalog(), sample_entries, cfg,
                                 path("cache_policy_sweep.csv"), recompute);
  }
};

inline void print_header(const std::string& what) {
  std::cout << "=====================================================\n"
            << what << "\n"
            << "DICER reproduction (ICPP 2019) — simulated Xeon E5-2630 v4\n"
            << "=====================================================\n";
}

}  // namespace dicer::bench
