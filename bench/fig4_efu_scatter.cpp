// Figure 4: scatter of effective system utilisation (EFU, Eq. 1) against
// HP slowdown for the 120 representative workloads under UM and CT.
//
// Paper shape targets: UM reaches clearly higher EFU than CT across the
// board, but stretches to much larger HP slowdowns; CT clusters at low
// slowdown and low EFU.
#include <algorithm>

#include "bench_common.hpp"
#include "util/stats.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;
  bench::BenchEnv env(argc, argv);
  bench::print_header("Figure 4: EFU vs HP slowdown (120 workloads, UM & CT)");

  harness::ConsolidationConfig config;
  config.cores_used = 10;
  const auto study = env.study(config);
  const auto sample = env.sample(study);

  util::CsvWriter csv(env.path("fig4_efu_scatter.csv"));
  csv.header({"hp", "be", "class", "um_slowdown", "um_efu", "ct_slowdown",
              "ct_efu"});
  std::vector<double> um_sl, um_efu, ct_sl, ct_efu;
  for (const auto& e : sample) {
    um_sl.push_back(e.um_slowdown());
    um_efu.push_back(e.um_efu);
    ct_sl.push_back(e.ct_slowdown());
    ct_efu.push_back(e.ct_efu);
    csv.row({e.spec.hp, e.spec.be, e.ct_favoured() ? "CT-F" : "CT-T",
             util::fmt(e.um_slowdown()), util::fmt(e.um_efu),
             util::fmt(e.ct_slowdown()), util::fmt(e.ct_efu)});
  }

  util::TextTable t;
  t.set_header({"policy", "EFU p25", "EFU med", "EFU p75", "slowdown med",
                "slowdown p95", "slowdown max"});
  t.add_row("UM",
            {util::percentile(um_efu, 25), util::median(um_efu),
             util::percentile(um_efu, 75), util::median(um_sl),
             util::percentile(um_sl, 95), util::max(um_sl)},
            3);
  t.add_row("CT",
            {util::percentile(ct_efu, 25), util::median(ct_efu),
             util::percentile(ct_efu, 75), util::median(ct_sl),
             util::percentile(ct_sl, 95), util::max(ct_sl)},
            3);
  t.print();

  std::cout << "\nSample: " << sample.size() << " workloads ("
            << std::count_if(sample.begin(), sample.end(),
                             [](const auto& e) { return e.ct_favoured(); })
            << " CT-F, "
            << std::count_if(sample.begin(), sample.end(),
                             [](const auto& e) { return !e.ct_favoured(); })
            << " CT-T; paper: 50 + 70)\n";
  std::cout << "Scatter points: " << env.path("fig4_efu_scatter.csv") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
