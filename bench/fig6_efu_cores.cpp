// Figure 6: geometric mean of effective system utilisation (Eq. 1) for
// UM / CT / DICER as the number of employed cores grows from 2 to 10
// (1 HP + N-1 BEs), over the 120 representative workloads.
//
// Paper shape targets: UM highest; DICER close behind (~0.6 at 10 cores);
// CT collapsing as BEs multiply inside their single way.
//
// The underlying sweep parallelises across --jobs workers (see
// bench_common.hpp); the rows are identical for any worker count.
#include "bench_common.hpp"
#include "util/stats.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;
  bench::BenchEnv env(argc, argv);
  bench::print_header("Figure 6: geomean EFU vs employed cores");

  harness::ConsolidationConfig config;
  config.cores_used = 10;
  const auto study = env.study(config);
  const auto sample = env.sample(study);

  harness::SweepConfig sc;
  sc.base = config;
  const auto rows = env.sweep(sample, sc);

  util::TextTable t;
  t.set_header({"cores", "UM", "CT", "DICER"});
  util::CsvWriter csv(env.path("fig6_efu_cores.csv"));
  csv.header({"cores", "um_efu", "ct_efu", "dicer_efu"});
  for (unsigned cores : sc.cores) {
    std::vector<double> vals;
    std::vector<double> cells;
    for (const std::string pol : {"UM", "CT", "DICER"}) {
      vals.clear();
      for (const auto& r : harness::filter(rows, pol, cores)) {
        vals.push_back(r.efu);
      }
      cells.push_back(util::gmean(vals));
    }
    t.add_row(std::to_string(cores), cells, 3);
    csv.row_numeric(
        {static_cast<double>(cores), cells[0], cells[1], cells[2]});
  }
  t.print();

  std::cout << "\nExpected shape (paper Fig 6): UM > DICER >> CT at high core\n"
               "counts; DICER keeps EFU near 0.6 at 10 cores.\n";
  std::cout << "CSV: " << env.path("fig6_efu_cores.csv") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
