// Figure 8: geometric mean of SUCI — the SLO-Effective-Utilisation Combined
// Index (Eqs. 4-5) — for UM / CT / DICER vs employed cores, for SLOs
// {80, 85, 90, 95}% and lambda in {1, 0.5, 2}.
//
// SUCI = c_SLO * EFU^lambda with c_SLO in {0,1}; a missed SLO zeroes the
// index. Because a single zero zeroes a geometric mean, the paper-style
// aggregate uses the geometric mean over (SUCI + eps) shifted back, i.e.
// we report gmean over workloads of max(SUCI, eps) with eps = 1e-3 —
// printed alongside the arithmetic mean for transparency.
//
// Paper shape target: DICER clearly best for every SLO and lambda.
//
// The underlying sweep parallelises across --jobs workers (see
// bench_common.hpp); the rows are identical for any worker count.
#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "util/stats.hpp"

namespace {

constexpr double kEps = 1e-3;

double suci_gmean(const std::vector<dicer::harness::SweepRow>& rows,
                  double slo, double lambda) {
  std::vector<double> vals;
  for (const auto& r : rows) {
    const bool met = r.hp_norm() >= slo;
    vals.push_back(
        std::max(dicer::metrics::suci(met, r.efu, lambda), kEps));
  }
  return dicer::util::gmean(vals);
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace dicer;
  bench::BenchEnv env(argc, argv);
  bench::print_header("Figure 8: geomean SUCI vs employed cores");

  harness::ConsolidationConfig config;
  config.cores_used = 10;
  const auto study = env.study(config);
  const auto sample = env.sample(study);

  harness::SweepConfig sc;
  sc.base = config;
  const auto rows = env.sweep(sample, sc);

  util::CsvWriter csv(env.path("fig8_suci.csv"));
  csv.header({"lambda", "slo", "cores", "um", "ct", "dicer"});
  for (const double lambda : {1.0, 0.5, 2.0}) {
    for (const double slo : {0.80, 0.85, 0.90, 0.95}) {
      std::cout << util::section("lambda = " + util::fmt(lambda) +
                                 ", SLO = " + util::fmt(slo * 100) + "%");
      util::TextTable t;
      t.set_header({"cores", "UM", "CT", "DICER"});
      for (unsigned cores : sc.cores) {
        std::vector<double> cells;
        for (const std::string pol : {"UM", "CT", "DICER"}) {
          cells.push_back(
              suci_gmean(harness::filter(rows, pol, cores), slo, lambda));
        }
        t.add_row(std::to_string(cores), cells, 3);
        csv.row_numeric({lambda, slo, static_cast<double>(cores), cells[0],
                         cells[1], cells[2]});
      }
      t.print();
    }
  }

  std::cout << "\nExpected shape (paper Fig 8): DICER outperforms UM and CT\n"
               "for all SLOs and lambdas.\n";
  std::cout << "CSV: " << env.path("fig8_suci.csv") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
