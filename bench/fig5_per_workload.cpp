// Figure 5: per-workload HP (top) and BE (bottom) IPC normalised to solo
// execution, under UM / CT / DICER, with workloads split into CT-F and
// CT-T classes — the 10-core slice of the policy sweep.
//
// Paper shape targets: DICER tracks CT on CT-F workloads and UM on CT-T
// workloads for the HP, and improves BE performance over CT everywhere.
//
// The underlying sweep parallelises across --jobs workers (see
// bench_common.hpp); the rows are identical for any worker count.
#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

double gmean_of(const std::vector<dicer::harness::SweepRow>& rows,
                bool ctf, bool hp) {
  std::vector<double> vals;
  for (const auto& r : rows) {
    if (r.ct_favoured != ctf) continue;
    vals.push_back(hp ? r.hp_norm() : r.be_norm());
  }
  return dicer::util::gmean(vals);
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace dicer;
  bench::BenchEnv env(argc, argv);
  bench::print_header(
      "Figure 5: per-workload normalised HP/BE IPC (UM/CT/DICER, 10 cores)");

  harness::ConsolidationConfig config;
  config.cores_used = 10;
  const auto study = env.study(config);
  const auto sample = env.sample(study);

  harness::SweepConfig sc;
  sc.base = config;
  const auto rows = env.sweep(sample, sc);

  const auto um = harness::filter(rows, "UM", 10);
  const auto ct = harness::filter(rows, "CT", 10);
  const auto dicer_rows = harness::filter(rows, "DICER", 10);

  // Full per-workload series to CSV (the paper plots every workload).
  util::CsvWriter csv(env.path("fig5_per_workload.csv"));
  csv.header({"class", "hp", "be", "um_hp", "ct_hp", "dicer_hp", "um_be",
              "ct_be", "dicer_be"});
  for (std::size_t i = 0; i < um.size(); ++i) {
    csv.row({um[i].ct_favoured ? "CT-F" : "CT-T", um[i].hp, um[i].be,
             util::fmt(um[i].hp_norm()), util::fmt(ct[i].hp_norm()),
             util::fmt(dicer_rows[i].hp_norm()), util::fmt(um[i].be_norm()),
             util::fmt(ct[i].be_norm()), util::fmt(dicer_rows[i].be_norm())});
  }

  // Condensed per-class geometric means on stdout.
  util::TextTable t;
  t.set_header({"series", "UM", "CT", "DICER"});
  for (const bool ctf : {true, false}) {
    const std::string cls = ctf ? "CT-F" : "CT-T";
    t.add_row(cls + "  HP norm IPC (gmean)",
              {gmean_of(um, ctf, true), gmean_of(ct, ctf, true),
               gmean_of(dicer_rows, ctf, true)},
              3);
    t.add_row(cls + "  BE norm IPC (gmean)",
              {gmean_of(um, ctf, false), gmean_of(ct, ctf, false),
               gmean_of(dicer_rows, ctf, false)},
              3);
    t.add_rule();
  }
  t.print();

  std::cout << "\nExpected shape (paper Fig 5): DICER ~ CT on CT-F HPs,\n"
               "DICER ~ UM on CT-T HPs, DICER BE > CT BE everywhere.\n";
  std::cout << "Per-workload series: " << env.path("fig5_per_workload.csv")
            << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
