// Figure 3: HP slowdown for every static LLC partition, for the paper's
// example workload milc (HP) + 9x gcc (BEs). The x axis is the number of
// ways assigned to HP; the remaining ways go to the BEs. UM and the three
// co-location policies are shown for reference.
//
// Paper shape targets: HP performs best around 2 ways (~1.09x), stays near
// best for 3-6 ways, and degrades towards CT's 19 ways (~1.45x); UM sits
// close to the best static configuration.
#include "bench_common.hpp"
#include "harness/consolidation.hpp"
#include "harness/solo.hpp"
#include "policy/baselines.hpp"
#include "policy/factory.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;
  bench::BenchEnv env(argc, argv);
  const std::string hp_name = env.args.get_or("hp", "milc1");
  const std::string be_name = env.args.get_or("be", "gcc_base3");
  bench::print_header("Figure 3: static LLC sweeps for " + hp_name +
                      " (HP) + 9x " + be_name + " (BEs)");

  const auto& catalog = sim::default_catalog();
  const auto& hp = catalog.by_name(hp_name);
  const auto& be = catalog.by_name(be_name);

  harness::ConsolidationConfig config;
  config.cores_used = 10;
  const double hp_alone =
      harness::solo_steady_state(hp, config.machine.llc.ways, config.machine)
          .ipc;

  util::TextTable t;
  t.set_header({"HP ways", "HP slowdown", "HP norm IPC", "BE norm IPC",
                "link rho"});
  util::CsvWriter csv(env.path("fig3_static_sweep.csv"));
  csv.header({"hp_ways", "hp_slowdown", "hp_norm", "be_norm", "rho"});

  double best_slowdown = 1e9;
  unsigned best_ways = 0;
  const double be_alone =
      harness::solo_steady_state(be, config.machine.llc.ways, config.machine)
          .ipc;
  for (unsigned w = 1; w <= config.machine.llc.ways - 1; ++w) {
    policy::StaticPartition pol(w);
    const auto res = harness::run_consolidation(hp, be, pol, config);
    const double slowdown = hp_alone / res.hp_ipc;
    if (slowdown < best_slowdown) {
      best_slowdown = slowdown;
      best_ways = w;
    }
    t.add_row(std::to_string(w),
              {slowdown, res.hp_ipc / hp_alone, res.be_ipc_mean / be_alone,
               res.avg_link_utilisation},
              3);
    csv.row_numeric({static_cast<double>(w), slowdown, res.hp_ipc / hp_alone,
                     res.be_ipc_mean / be_alone, res.avg_link_utilisation});
  }
  t.add_rule();
  for (const std::string name : {"UM", "CT", "DICER"}) {
    const auto pol = policy::make_policy(name);
    const auto res = harness::run_consolidation(hp, be, *pol, config);
    t.add_row(name,
              {hp_alone / res.hp_ipc, res.hp_ipc / hp_alone,
               res.be_ipc_mean / be_alone, res.avg_link_utilisation},
              3);
  }
  t.print();

  std::cout << "\nBest static allocation: " << best_ways << " ways, slowdown "
            << util::fmt_fixed(best_slowdown, 3)
            << " (paper: 2 ways, ~1.09; CT at 19 ways ~1.45)\n";
  std::cout << "CSV: " << env.path("fig3_static_sweep.csv") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
