// Table 1: system configuration and DICER parameters, as probed from the
// simulated platform and the controller defaults.
#include "bench_common.hpp"
#include "policy/dicer.hpp"
#include "rdt/capability.hpp"
#include "sim/machine.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;
  bench::BenchEnv env(argc, argv);
  bench::print_header("Table 1: System configuration");

  const sim::MachineConfig mc;
  sim::Machine machine(mc);
  const auto cap = rdt::Capability::probe(machine);
  const policy::DicerConfig dc;

  util::TextTable t;
  t.set_header({"", "parameter", "value"});
  t.add_row({"System", "Processor",
             std::to_string(mc.num_cores) + " cores, " +
                 util::fmt(mc.freq_hz / 1e9) + " GHz, SMT disabled"});
  t.add_row({"", "LLC",
             util::fmt(static_cast<double>(mc.llc.size_bytes) / (1024 * 1024)) +
                 " MB, " + std::to_string(mc.llc.ways) +
                 "-way set associative"});
  t.add_row({"", "Memory bandwidth",
             util::fmt(mc.link.capacity_bytes_per_sec * 8.0 / 1e9) +
                 " Gbps per channel"});
  t.add_row({"", "CAT",
             std::string(cap.cat_supported ? "yes" : "no") + ", " +
                 std::to_string(cap.cat_num_clos) + " CLOS, " +
                 std::to_string(cap.cat_ways) + "-bit CBM"});
  t.add_row({"", "CMT/MBM",
             std::string(cap.cmt_supported && cap.mbm_supported ? "yes"
                                                                : "no") +
                 ", " + std::to_string(cap.num_rmids) + " RMIDs"});
  t.add_row({"", "MBA", cap.mba_supported ? "yes" : "no (as in the paper)"});
  t.add_rule();
  t.add_row({"DICER", "Monitoring period", "T = " + util::fmt(dc.period_sec) + " sec"});
  t.add_row({"", "BW saturation threshold",
             "MemBW_threshold = " +
                 util::fmt(dc.membw_threshold_bytes_per_sec * 8.0 / 1e9) +
                 " Gbps"});
  t.add_row({"", "Phase detection threshold",
             "phase_threshold = " + util::fmt(dc.phase_threshold * 100) +
                 "% (Equation 2)"});
  t.add_row({"", "IPC stability percentage",
             "a = " + util::fmt(dc.alpha * 100) + "% (Equation 3)"});
  t.add_row({"", "Sampling settle interval",
             util::fmt(dc.sample_interval_sec) + " sec, stride " +
                 std::to_string(dc.sample_stride) + " ways"});
  t.print();
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
