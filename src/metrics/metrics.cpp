#include "metrics/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace dicer::metrics {

double slowdown(double ipc_alone, double ipc_colocated) {
  if (ipc_alone <= 0.0 || ipc_colocated <= 0.0) {
    throw std::invalid_argument("slowdown: IPCs must be > 0");
  }
  return ipc_alone / ipc_colocated;
}

double normalised_ipc(double ipc_alone, double ipc_colocated) {
  if (ipc_alone <= 0.0 || ipc_colocated < 0.0) {
    throw std::invalid_argument("normalised_ipc: bad IPCs");
  }
  return ipc_colocated / ipc_alone;
}

double effective_utilisation(std::span<const IpcPair> apps) {
  if (apps.empty()) return 0.0;
  double denom = 0.0;
  for (const auto& a : apps) {
    if (a.alone <= 0.0 || a.colocated <= 0.0) return 0.0;
    denom += a.alone / a.colocated;
  }
  return static_cast<double>(apps.size()) / denom;
}

bool slo_achieved(double ipc_alone_hp, double ipc_hp, double slo) {
  if (ipc_alone_hp <= 0.0) {
    throw std::invalid_argument("slo_achieved: IPC_alone must be > 0");
  }
  if (slo < 0.0 || slo > 1.0) {
    throw std::invalid_argument("slo_achieved: SLO outside [0, 1]");
  }
  return ipc_hp >= slo * ipc_alone_hp;
}

double suci(bool slo_met, double efu, double lambda) {
  if (efu < 0.0) throw std::invalid_argument("suci: EFU must be >= 0");
  if (lambda <= 0.0) throw std::invalid_argument("suci: lambda must be > 0");
  if (!slo_met) return 0.0;
  return std::pow(efu, lambda);
}

double suci(std::span<const IpcPair> apps, double slo, double lambda) {
  if (apps.empty()) return 0.0;
  const bool met = slo_achieved(apps.front().alone, apps.front().colocated,
                                slo);
  return suci(met, effective_utilisation(apps), lambda);
}

double slo_conformance(std::span<const double> normalised_hp_ipcs,
                       double slo) {
  return util::fraction_at_least(normalised_hp_ipcs, slo);
}

}  // namespace dicer::metrics
