// Evaluation metrics, straight from the paper.
//
//  - Slowdown: HP execution-time (equivalently, for a fixed instruction
//    stream, inverse-IPC) ratio vs. running alone (§2.3, Fig 1).
//  - Normalised IPC: IPC_colocated / IPC_alone (Fig 5).
//  - Effective Utilisation, Eq. 1:
//        EFU = IPCnorm-hmean = n / sum_i (IPC_alone_i / IPC_i)
//    the harmonic mean of normalised IPCs over all n co-located apps —
//    balances performance and fairness, 1.0 == no co-location impact.
//  - SLO conformance (§4.1): the HP meets an SLO of s if
//    IPC_HP >= s * IPC_alone_HP.
//  - SUCI, Eqs. 4-5: SLO-Effective-Utilisation Combined Index,
//        SUCI = c_SLO * EFU^lambda
//    with c_SLO in {0, 1}; lambda > 1 weights utilisation, < 1 weights SLO
//    conformance.
#pragma once

#include <span>
#include <vector>

namespace dicer::metrics {

/// HP slowdown: time ratio vs. solo execution, >= ~1 under contention.
/// For fixed work this equals IPC_alone / IPC_colocated.
double slowdown(double ipc_alone, double ipc_colocated);

/// IPC normalised to solo execution, in (0, 1] under contention.
double normalised_ipc(double ipc_alone, double ipc_colocated);

/// One co-located application's IPC pair.
struct IpcPair {
  double alone = 0.0;      ///< IPC when running alone (full LLC)
  double colocated = 0.0;  ///< IPC in the consolidation
};

/// Effective Utilisation (Eq. 1) over all co-located applications
/// (HP first by convention, but EFU is symmetric). Returns 0 for empty
/// input or any non-positive IPC.
double effective_utilisation(std::span<const IpcPair> apps);

/// Whether the HP achieves `slo` (e.g. 0.9 for "SLO = 90%"), Eq. 5's c_SLO.
bool slo_achieved(double ipc_alone_hp, double ipc_hp, double slo);

/// SUCI (Eq. 4): c_SLO * EFU^lambda.
double suci(bool slo_met, double efu, double lambda);

/// Convenience: compute SUCI from raw inputs.
double suci(std::span<const IpcPair> apps, double slo, double lambda);

/// Fraction of workloads (given per-workload normalised HP IPC) that meet
/// an SLO — the quantity Fig 7 plots.
double slo_conformance(std::span<const double> normalised_hp_ipcs,
                       double slo);

}  // namespace dicer::metrics
