// Workload enumeration, CT-F/CT-T classification and the 120-workload
// representative sample (paper §2.3.3, §2.4, §4.1).
//
// The paper crosses all 59 applications as HP with all 59 as BE (3481
// multiprogrammed workloads), classifies each by whether CT improves HP's
// performance over UM (CT-Favoured) or not (CT-Thwarted), and evaluates
// DICER on a representative sample of 120 workloads: 50 CT-F + 70 CT-T.
//
// The full 59x59x{UM,CT} baseline study is the most expensive computation
// in the reproduction, so its results are cached in a CSV next to the
// binaries; every bench transparently reuses it (pass force_recompute to
// refresh after model changes — the cache key includes the catalog seed
// and machine geometry, so stale caches are detected automatically).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/consolidation.hpp"
#include "sim/core/catalog.hpp"

namespace dicer::harness {

/// One multiprogrammed workload: an HP app plus N-1 instances of a BE app.
struct WorkloadSpec {
  std::string hp;
  std::string be;

  std::string label() const { return hp + " " + be; }
};

/// Baseline (UM & CT) measurements for one workload at full core count.
struct BaselineEntry {
  WorkloadSpec spec;
  double hp_alone_ipc = 0.0;
  double be_alone_ipc = 0.0;
  double um_hp_ipc = 0.0;
  double um_be_ipc = 0.0;   ///< mean across BE instances
  double ct_hp_ipc = 0.0;
  double ct_be_ipc = 0.0;
  double um_efu = 0.0;
  double ct_efu = 0.0;

  double um_slowdown() const { return hp_alone_ipc / um_hp_ipc; }
  double ct_slowdown() const { return hp_alone_ipc / ct_hp_ipc; }
  /// CT-Favoured: CT improves HP's performance over UM (§2.3.3). "No
  /// improvement" counts as CT-Thwarted, so CT must beat UM by more than a
  /// hardware-noise-sized margin to qualify.
  bool ct_favoured() const {
    return ct_hp_ipc > um_hp_ipc * (1.0 + kClassificationMargin);
  }

  static constexpr double kClassificationMargin = 0.03;
};

/// The full 59x59 baseline study.
struct BaselineStudy {
  ConsolidationConfig config;
  std::vector<BaselineEntry> entries;

  std::size_t count_ct_favoured() const;
  double fraction_ct_thwarted() const;
};

/// All 59*59 workload pairs in catalog order.
std::vector<WorkloadSpec> all_pairs(const sim::AppCatalog& catalog);

/// Run (or load from `cache_path`) the UM/CT baseline study over all pairs.
/// An empty cache_path disables caching.
BaselineStudy baseline_study(const sim::AppCatalog& catalog,
                             const ConsolidationConfig& config,
                             const std::string& cache_path,
                             bool force_recompute = false);

/// Persist / restore a study (the cache layer under baseline_study,
/// exposed for tooling and tests). Loading returns nullopt when the file
/// is missing, keyed for a different catalog/machine configuration, or
/// malformed — short rows, non-numeric cells and trailing columns are
/// diagnosed with file/line/column in a warning instead of crashing.
void save_baseline_cache(const std::string& path, const BaselineStudy& study,
                         const sim::AppCatalog& catalog);
std::optional<BaselineStudy> load_baseline_cache(
    const std::string& path, const sim::AppCatalog& catalog,
    const ConsolidationConfig& config);

/// Deterministically pick the paper's representative sample from a study:
/// `n_ctf` CT-Favoured + `n_ctt` CT-Thwarted workloads (paper: 50 + 70),
/// spread across the slowdown range (stratified, not uniform-random, so
/// mild and severe workloads are both represented).
std::vector<BaselineEntry> representative_sample(const BaselineStudy& study,
                                                 std::size_t n_ctf = 50,
                                                 std::size_t n_ctt = 70,
                                                 std::uint64_t seed = 42);

/// Content hash of a catalog (names + calibration parameters); part of
/// every cache key so recalibration invalidates stale caches.
std::uint64_t catalog_fingerprint(const sim::AppCatalog& catalog);

/// Where benches put shared cache files: $DICER_CACHE_DIR or ".".
std::string default_cache_dir();

}  // namespace dicer::harness
