#include "harness/workloads.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "harness/solo.hpp"
#include "metrics/metrics.hpp"
#include "policy/baselines.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dicer::harness {

std::uint64_t catalog_fingerprint(const sim::AppCatalog& catalog) {
  // Content hash so recalibrated catalogs invalidate stale caches.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    h ^= bits;
    h *= 0x100000001b3ULL;
  };
  for (const auto& a : catalog.profiles()) {
    for (char c : a.name) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    mix(a.total_instructions());
    mix(a.mean_api());
    for (const auto& ph : a.phases) {
      mix(ph.cpi_core);
      mix(ph.mlp);
      mix(ph.mrc.floor());
      mix(ph.mrc.footprint_bytes());
    }
  }
  return h;
}

namespace {

/// Cache-file header key: invalidates the cache when the model geometry or
/// catalog changes.
std::string cache_key(const sim::AppCatalog& catalog,
                      const ConsolidationConfig& config) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "dicer-baseline-v4:%016llx:%u:%u:%llu:%g:%g:%g:%g",
                static_cast<unsigned long long>(catalog_fingerprint(catalog)),
                config.cores_used, config.machine.llc.ways,
                static_cast<unsigned long long>(config.machine.llc.size_bytes),
                config.machine.link.capacity_bytes_per_sec,
                config.machine.quantum_sec, config.min_window_sec,
                config.max_window_sec);
  return buf;
}

}  // namespace

std::optional<BaselineStudy> load_baseline_cache(
    const std::string& path, const sim::AppCatalog& catalog,
    const ConsolidationConfig& config) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "# " + cache_key(catalog, config)) {
    DICER_INFO << "baseline cache " << path << " is stale; recomputing";
    return std::nullopt;
  }
  std::getline(in, line);  // column header
  BaselineStudy study;
  study.config = config;
  // Per-row validation: field count and full numeric parses are checked
  // cell by cell, and any defect reports file, line and column before the
  // loader falls back to recomputing — a malformed row must never escape
  // as an uncaught std::stod exception or a silent garbage value.
  std::size_t lineno = 2;  // 1-based; key + header already consumed
  try {
    while (std::getline(in, line)) {
      ++lineno;
      std::istringstream ss(line);
      BaselineEntry e;
      std::string cell;
      unsigned column = 0;
      auto next = [&]() {
        ++column;
        if (!std::getline(ss, cell, ',')) {
          throw std::runtime_error(path + ":" + std::to_string(lineno) +
                                   ": truncated row (" +
                                   std::to_string(column - 1) +
                                   " of 10 fields)");
        }
        return cell;
      };
      auto next_double = [&]() {
        const std::string& c = next();
        std::size_t pos = 0;
        double v = 0.0;
        bool ok = true;
        try {
          v = std::stod(c, &pos);
        } catch (const std::exception&) {
          ok = false;
        }
        if (!ok || pos != c.size()) {
          throw std::runtime_error(path + ":" + std::to_string(lineno) +
                                   ": column " + std::to_string(column) +
                                   ": bad number '" + c + "'");
        }
        return v;
      };
      e.spec.hp = next();
      e.spec.be = next();
      e.hp_alone_ipc = next_double();
      e.be_alone_ipc = next_double();
      e.um_hp_ipc = next_double();
      e.um_be_ipc = next_double();
      e.ct_hp_ipc = next_double();
      e.ct_be_ipc = next_double();
      e.um_efu = next_double();
      e.ct_efu = next_double();
      if (std::getline(ss, cell, ',')) {
        throw std::runtime_error(path + ":" + std::to_string(lineno) +
                                 ": trailing columns after field 10");
      }
      study.entries.push_back(std::move(e));
    }
  } catch (const std::exception& e) {
    DICER_WARN << "baseline cache is malformed (" << e.what()
               << "); recomputing";
    return std::nullopt;
  }
  if (study.entries.size() != catalog.size() * catalog.size()) {
    DICER_WARN << "baseline cache " << path << " has wrong row count";
    return std::nullopt;
  }
  return study;
}

void save_baseline_cache(const std::string& path, const BaselineStudy& study,
                         const sim::AppCatalog& catalog) {
  std::ofstream out(path);
  if (!out) {
    DICER_WARN << "cannot write baseline cache " << path;
    return;
  }
  out << "# " << cache_key(catalog, study.config) << "\n";
  out << "hp,be,hp_alone,be_alone,um_hp,um_be,ct_hp,ct_be,um_efu,ct_efu\n";
  for (const auto& e : study.entries) {
    out << e.spec.hp << ',' << e.spec.be << ',' << util::fmt(e.hp_alone_ipc)
        << ',' << util::fmt(e.be_alone_ipc) << ',' << util::fmt(e.um_hp_ipc)
        << ',' << util::fmt(e.um_be_ipc) << ',' << util::fmt(e.ct_hp_ipc)
        << ',' << util::fmt(e.ct_be_ipc) << ',' << util::fmt(e.um_efu) << ','
        << util::fmt(e.ct_efu) << "\n";
  }
}

namespace {

double efu_of(double hp_alone, double hp, double be_alone, double be_mean,
              std::size_t n_bes) {
  std::vector<metrics::IpcPair> pairs;
  pairs.push_back({hp_alone, hp});
  for (std::size_t i = 0; i < n_bes; ++i) pairs.push_back({be_alone, be_mean});
  return metrics::effective_utilisation(pairs);
}

}  // namespace

std::size_t BaselineStudy::count_ct_favoured() const {
  std::size_t n = 0;
  for (const auto& e : entries) n += e.ct_favoured() ? 1u : 0u;
  return n;
}

double BaselineStudy::fraction_ct_thwarted() const {
  if (entries.empty()) return 0.0;
  return 1.0 - static_cast<double>(count_ct_favoured()) /
                   static_cast<double>(entries.size());
}

std::vector<WorkloadSpec> all_pairs(const sim::AppCatalog& catalog) {
  std::vector<WorkloadSpec> pairs;
  pairs.reserve(catalog.size() * catalog.size());
  for (const auto& hp : catalog.profiles()) {
    for (const auto& be : catalog.profiles()) {
      pairs.push_back({hp.name, be.name});
    }
  }
  return pairs;
}

BaselineStudy baseline_study(const sim::AppCatalog& catalog,
                             const ConsolidationConfig& config,
                             const std::string& cache_path,
                             bool force_recompute) {
  if (!cache_path.empty() && !force_recompute) {
    if (auto cached = load_baseline_cache(cache_path, catalog, config)) {
      return *std::move(cached);
    }
  }

  // Solo IPCs once per app.
  std::map<std::string, double> alone;
  for (const auto& p : catalog.profiles()) {
    alone[p.name] =
        solo_steady_state(p, config.machine.llc.ways, config.machine).ipc;
  }

  BaselineStudy study;
  study.config = config;
  study.entries.reserve(catalog.size() * catalog.size());
  const std::size_t n_bes = config.cores_used - 1;
  std::size_t done = 0;
  for (const auto& hp : catalog.profiles()) {
    for (const auto& be : catalog.profiles()) {
      BaselineEntry e;
      e.spec = {hp.name, be.name};
      e.hp_alone_ipc = alone[hp.name];
      e.be_alone_ipc = alone[be.name];

      policy::Unmanaged um;
      const auto um_res = run_consolidation(hp, be, um, config);
      e.um_hp_ipc = um_res.hp_ipc;
      e.um_be_ipc = um_res.be_ipc_mean;
      e.um_efu = efu_of(e.hp_alone_ipc, e.um_hp_ipc, e.be_alone_ipc,
                        e.um_be_ipc, n_bes);

      policy::CacheTakeover ct;
      const auto ct_res = run_consolidation(hp, be, ct, config);
      e.ct_hp_ipc = ct_res.hp_ipc;
      e.ct_be_ipc = ct_res.be_ipc_mean;
      e.ct_efu = efu_of(e.hp_alone_ipc, e.ct_hp_ipc, e.be_alone_ipc,
                        e.ct_be_ipc, n_bes);

      study.entries.push_back(std::move(e));
      if (++done % 500 == 0) {
        DICER_INFO << "baseline study: " << done << "/"
                   << catalog.size() * catalog.size();
      }
    }
  }

  if (!cache_path.empty()) save_baseline_cache(cache_path, study, catalog);
  return study;
}

std::vector<BaselineEntry> representative_sample(const BaselineStudy& study,
                                                 std::size_t n_ctf,
                                                 std::size_t n_ctt,
                                                 std::uint64_t seed) {
  std::vector<const BaselineEntry*> ctf, ctt;
  for (const auto& e : study.entries) {
    (e.ct_favoured() ? ctf : ctt).push_back(&e);
  }

  // Stratified pick: sort each class by UM slowdown and take evenly spaced
  // entries, with a seeded jitter inside each stratum so different seeds
  // give different (but still spread) samples.
  auto pick = [seed](std::vector<const BaselineEntry*>& pool,
                     std::size_t want) {
    std::vector<const BaselineEntry*> out;
    if (pool.empty() || want == 0) return out;
    std::sort(pool.begin(), pool.end(),
              [](const BaselineEntry* a, const BaselineEntry* b) {
                if (a->um_slowdown() != b->um_slowdown()) {
                  return a->um_slowdown() < b->um_slowdown();
                }
                return a->spec.label() < b->spec.label();
              });
    util::Xoshiro256 rng(seed ^ pool.size());
    const double stride =
        static_cast<double>(pool.size()) / static_cast<double>(want);
    for (std::size_t i = 0; i < want; ++i) {
      const double base = static_cast<double>(i) * stride;
      const double jitter = rng.uniform() * stride;
      const auto idx = std::min(
          static_cast<std::size_t>(base + jitter), pool.size() - 1);
      out.push_back(pool[idx]);
    }
    // De-duplicate (possible when want ~ pool size) keeping order.
    std::vector<const BaselineEntry*> uniq;
    for (const auto* e : out) {
      if (uniq.empty() || std::find(uniq.begin(), uniq.end(), e) == uniq.end()) {
        uniq.push_back(e);
      }
    }
    // Top up with unused neighbours if deduplication lost entries.
    for (const auto* e : pool) {
      if (uniq.size() >= want) break;
      if (std::find(uniq.begin(), uniq.end(), e) == uniq.end()) {
        uniq.push_back(e);
      }
    }
    return uniq;
  };

  std::vector<BaselineEntry> sample;
  for (const auto* e : pick(ctf, n_ctf)) sample.push_back(*e);
  for (const auto* e : pick(ctt, n_ctt)) sample.push_back(*e);
  return sample;
}

std::string default_cache_dir() {
  if (const char* dir = std::getenv("DICER_CACHE_DIR")) return dir;
  return ".";
}

}  // namespace dicer::harness
