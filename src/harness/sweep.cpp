#include "harness/sweep.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "policy/factory.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace dicer::harness {

namespace {

std::string sweep_key(const sim::AppCatalog& catalog,
                      const std::vector<BaselineEntry>& sample,
                      const SweepConfig& config) {
  // Order-sensitive FNV over the sample labels, policies and core counts,
  // plus the machine geometry fields that shape results.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const auto& e : sample) mix(e.spec.label());
  for (const auto& p : config.policies) mix(p);
  for (unsigned c : config.cores) mix(std::to_string(c));
  char buf[256];
  std::snprintf(buf, sizeof buf, "dicer-sweep-v4:%016llx:%016llx:%u:%g:%g:%g",
                static_cast<unsigned long long>(catalog_fingerprint(catalog)),
                static_cast<unsigned long long>(h),
                config.base.machine.llc.ways,
                config.base.machine.link.capacity_bytes_per_sec,
                config.base.machine.quantum_sec, config.base.max_window_sec);
  return buf;
}

std::vector<SweepRow> load_sweep(const std::string& path,
                                 const std::string& key) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  if (!std::getline(in, line) || line != "# " + key) {
    DICER_INFO << "sweep cache " << path << " is stale; recomputing";
    return {};
  }
  std::getline(in, line);  // header
  std::vector<SweepRow> rows;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    SweepRow r;
    std::string cell;
    auto next = [&]() {
      if (!std::getline(ss, cell, ',')) {
        throw std::runtime_error("sweep cache: truncated row in " + path);
      }
      return cell;
    };
    r.hp = next();
    r.be = next();
    r.policy = next();
    r.cores = static_cast<unsigned>(std::stoul(next()));
    r.ct_favoured = next() == "1";
    r.hp_alone = std::stod(next());
    r.be_alone = std::stod(next());
    r.hp_ipc = std::stod(next());
    r.be_ipc = std::stod(next());
    r.efu = std::stod(next());
    rows.push_back(std::move(r));
  }
  return rows;
}

void save_sweep(const std::string& path, const std::string& key,
                const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    DICER_WARN << "cannot write sweep cache " << path;
    return;
  }
  out << "# " << key << "\n";
  out << "hp,be,policy,cores,ctf,hp_alone,be_alone,hp_ipc,be_ipc,efu\n";
  for (const auto& r : rows) {
    out << r.hp << ',' << r.be << ',' << r.policy << ',' << r.cores << ','
        << (r.ct_favoured ? 1 : 0) << ',' << util::fmt(r.hp_alone) << ','
        << util::fmt(r.be_alone) << ',' << util::fmt(r.hp_ipc) << ','
        << util::fmt(r.be_ipc) << ',' << util::fmt(r.efu) << "\n";
  }
}

}  // namespace

std::vector<SweepRow> policy_sweep(const sim::AppCatalog& catalog,
                                   const std::vector<BaselineEntry>& sample,
                                   const SweepConfig& config,
                                   const std::string& cache_path,
                                   bool force_recompute) {
  const std::string key = sweep_key(catalog, sample, config);
  if (!cache_path.empty() && !force_recompute) {
    auto rows = load_sweep(cache_path, key);
    const std::size_t expected =
        sample.size() * config.policies.size() * config.cores.size();
    if (rows.size() == expected) return rows;
    if (!rows.empty()) {
      DICER_WARN << "sweep cache row count mismatch; recomputing";
    }
  }

  std::vector<SweepRow> rows;
  rows.reserve(sample.size() * config.policies.size() * config.cores.size());
  std::size_t done = 0;
  const std::size_t total =
      sample.size() * config.policies.size() * config.cores.size();
  for (const auto& entry : sample) {
    const auto& hp = catalog.by_name(entry.spec.hp);
    const auto& be = catalog.by_name(entry.spec.be);
    for (unsigned cores : config.cores) {
      ConsolidationConfig cc = config.base;
      cc.cores_used = cores;
      for (const auto& pname : config.policies) {
        const auto pol = policy::make_policy(pname);
        const auto res = run_consolidation(hp, be, *pol, cc);

        SweepRow r;
        r.hp = entry.spec.hp;
        r.be = entry.spec.be;
        r.policy = pname;
        r.cores = cores;
        r.ct_favoured = entry.ct_favoured();
        r.hp_alone = entry.hp_alone_ipc;
        r.be_alone = entry.be_alone_ipc;
        r.hp_ipc = res.hp_ipc;
        r.be_ipc = res.be_ipc_mean;
        r.efu = metrics::effective_utilisation(
            res.ipc_pairs(r.hp_alone, r.be_alone));
        rows.push_back(std::move(r));
        if (++done % 200 == 0) {
          DICER_INFO << "policy sweep: " << done << "/" << total;
        }
      }
    }
  }

  if (!cache_path.empty()) save_sweep(cache_path, key, rows);
  return rows;
}

std::vector<SweepRow> filter(const std::vector<SweepRow>& rows,
                             const std::string& policy, unsigned cores) {
  std::vector<SweepRow> out;
  for (const auto& r : rows) {
    if (r.policy == policy && r.cores == cores) out.push_back(r);
  }
  return out;
}

}  // namespace dicer::harness
