#include "harness/sweep.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "policy/factory.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dicer::harness {

namespace {

constexpr const char* kSweepHeader =
    "hp,be,policy,cores,ctf,hp_alone,be_alone,hp_ipc,be_ipc,efu";

std::string sweep_key(const sim::AppCatalog& catalog,
                      const std::vector<BaselineEntry>& sample,
                      const SweepConfig& config) {
  // Order-sensitive FNV over the sample labels, policies and core counts,
  // plus every config field that shapes results: machine geometry (cores,
  // frequency, LLC ways, link), the fixed-point solver knobs and the
  // consolidation window/MBA settings. Worker count, the solver shortcuts
  // and the batch-stepping knobs (batch_cells, machine.batch_stepping) are
  // deliberately excluded — none of them ever changes a row (shortcuts and
  // batched stepping are byte-identical by construction, and the
  // equivalence tests hold them to that), so flipping them must keep
  // serving the same cache file.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const auto& e : sample) mix(e.spec.label());
  for (const auto& p : config.policies) mix(p);
  for (unsigned c : config.cores) mix(std::to_string(c));
  const auto& m = config.base.machine;
  char buf[352];
  std::snprintf(buf, sizeof buf,
                "dicer-sweep-v6:%016llx:%016llx:%u:%u:%g:%g:%g:%u:%g:%g:%g:%d",
                static_cast<unsigned long long>(catalog_fingerprint(catalog)),
                static_cast<unsigned long long>(h), m.llc.ways, m.num_cores,
                m.freq_hz, m.link.capacity_bytes_per_sec, m.quantum_sec,
                m.fixed_point_rounds, m.fixed_point_damping,
                config.base.min_window_sec, config.base.max_window_sec,
                config.base.enable_mba ? 1 : 0);
  return buf;
}

// Strict cell parsers: reject empty cells, trailing garbage ("12abc") and
// out-of-range values so a corrupt cache is detected instead of silently
// feeding nonsense into figures.
unsigned parse_cell_unsigned(const std::string& cell) {
  std::size_t pos = 0;
  const unsigned long v = std::stoul(cell, &pos);
  if (pos != cell.size() || v > 0xffffffffUL) {
    throw std::invalid_argument("bad unsigned '" + cell + "'");
  }
  return static_cast<unsigned>(v);
}

double parse_cell_double(const std::string& cell) {
  std::size_t pos = 0;
  const double v = std::stod(cell, &pos);
  if (pos != cell.size()) {
    throw std::invalid_argument("bad number '" + cell + "'");
  }
  return v;
}

bool parse_cell_bool(const std::string& cell) {
  if (cell == "1") return true;
  if (cell == "0") return false;
  throw std::invalid_argument("bad bool '" + cell + "'");
}

/// Load cached rows for `key`. Any defect — missing/foreign key line,
/// wrong column header, truncated row, garbage cell, trailing columns —
/// logs and returns empty so the caller recomputes. Never throws.
std::vector<SweepRow> load_sweep(const std::string& path,
                                 const std::string& key) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  if (!std::getline(in, line) || line != "# " + key) {
    DICER_INFO << "sweep cache " << path << " is stale; recomputing";
    return {};
  }
  if (!std::getline(in, line) || line != kSweepHeader) {
    DICER_WARN << "sweep cache " << path
               << " has an unexpected column header; recomputing";
    return {};
  }
  std::vector<SweepRow> rows;
  try {
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream ss(line);
      SweepRow r;
      std::string cell;
      auto next = [&]() {
        if (!std::getline(ss, cell, ',')) {
          throw std::invalid_argument("truncated row");
        }
        return cell;
      };
      r.hp = next();
      r.be = next();
      r.policy = next();
      r.cores = parse_cell_unsigned(next());
      r.ct_favoured = parse_cell_bool(next());
      r.hp_alone = parse_cell_double(next());
      r.be_alone = parse_cell_double(next());
      r.hp_ipc = parse_cell_double(next());
      r.be_ipc = parse_cell_double(next());
      r.efu = parse_cell_double(next());
      if (std::getline(ss, cell, ',')) {
        throw std::invalid_argument("trailing columns");
      }
      rows.push_back(std::move(r));
    }
  } catch (const std::exception& e) {
    DICER_WARN << "sweep cache " << path << " is corrupt (" << e.what()
               << " at row " << rows.size() << "); recomputing";
    return {};
  }
  return rows;
}

/// Atomically (re)write the cache: stream into a temp file in the same
/// directory, then rename over `path`, so an interrupted bench never
/// leaves a truncated cache at the real location. The temp name carries
/// the pid and a process-wide counter: concurrent writers (two bench
/// processes sharing a cache dir, or two sweeps in one process) each get
/// their own temp file instead of interleaving into a shared one, and the
/// last rename wins with a complete file either way.
void save_sweep(const std::string& path, const std::string& key,
                const std::vector<SweepRow>& rows) {
  static std::atomic<std::uint64_t> save_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(save_counter.fetch_add(1, std::memory_order_relaxed));
  std::ofstream out(tmp, std::ios::trunc);
  if (!out) {
    DICER_WARN << "cannot write sweep cache " << tmp;
    return;
  }
  out << "# " << key << "\n";
  out << kSweepHeader << "\n";
  for (const auto& r : rows) {
    out << r.hp << ',' << r.be << ',' << r.policy << ',' << r.cores << ','
        << (r.ct_favoured ? 1 : 0) << ',' << util::fmt(r.hp_alone) << ','
        << util::fmt(r.be_alone) << ',' << util::fmt(r.hp_ipc) << ','
        << util::fmt(r.be_ipc) << ',' << util::fmt(r.efu) << "\n";
  }
  out.flush();
  if (!out) {
    DICER_WARN << "failed writing sweep cache " << tmp;
    out.close();
    std::remove(tmp.c_str());
    return;
  }
  out.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    DICER_WARN << "cannot rename sweep cache " << tmp << " -> " << path;
    std::remove(tmp.c_str());
  }
}

/// One (workload, cores, policy) cell of the sweep grid, in the fixed
/// enumeration order sample x cores x policies.
struct SweepCell {
  const BaselineEntry* entry = nullptr;
  unsigned cores = 0;
  const std::string* policy = nullptr;
};

/// Assemble a cell's row from its consolidation result — shared by the
/// per-cell and batched paths so they cannot diverge.
SweepRow make_row(const SweepCell& cell, const ConsolidationResult& res) {
  SweepRow r;
  r.hp = cell.entry->spec.hp;
  r.be = cell.entry->spec.be;
  r.policy = *cell.policy;
  r.cores = cell.cores;
  r.ct_favoured = cell.entry->ct_favoured();
  r.hp_alone = cell.entry->hp_alone_ipc;
  r.be_alone = cell.entry->be_alone_ipc;
  r.hp_ipc = res.hp_ipc;
  r.be_ipc = res.be_ipc_mean;
  r.efu =
      metrics::effective_utilisation(res.ipc_pairs(r.hp_alone, r.be_alone));
  return r;
}

SweepRow run_cell(const sim::AppCatalog& catalog, const SweepCell& cell,
                  const ConsolidationConfig& base) {
  const auto& hp = catalog.by_name(cell.entry->spec.hp);
  const auto& be = catalog.by_name(cell.entry->spec.be);
  ConsolidationConfig cc = base;
  cc.cores_used = cell.cores;
  const auto pol = policy::make_policy(*cell.policy);
  return make_row(cell, run_consolidation(hp, be, *pol, cc));
}

}  // namespace

unsigned resolve_sweep_jobs(unsigned requested) {
  return util::ThreadPool::resolve_jobs(requested, "DICER_SWEEP_JOBS");
}

std::vector<SweepRow> policy_sweep(const sim::AppCatalog& catalog,
                                   const std::vector<BaselineEntry>& sample,
                                   const SweepConfig& config,
                                   const std::string& cache_path,
                                   bool force_recompute) {
  const std::string key = sweep_key(catalog, sample, config);
  const std::size_t total =
      sample.size() * config.policies.size() * config.cores.size();
  if (!cache_path.empty() && !force_recompute) {
    trace::ScopedTimer timer("sweep.load_cache");
    auto rows = load_sweep(cache_path, key);
    if (rows.size() == total) return rows;
    if (!rows.empty()) {
      DICER_WARN << "sweep cache row count mismatch (" << rows.size()
                 << " != " << total << "); recomputing";
    }
  }

  // Enumerate every cell up front in the canonical order, then evaluate
  // them in parallel: cells are fully independent (each task builds its
  // own Policy, ConsolidationConfig and simulated machine) and each
  // writes into its own preallocated slot, so the result is byte-
  // identical to the serial sweep whatever the worker count.
  std::vector<SweepCell> cells;
  cells.reserve(total);
  for (const auto& entry : sample) {
    for (unsigned cores : config.cores) {
      for (const auto& pname : config.policies) {
        cells.push_back({&entry, cores, &pname});
      }
    }
  }

  std::vector<SweepRow> rows(cells.size());
  std::atomic<std::size_t> done{0};
  const unsigned jobs = resolve_sweep_jobs(config.jobs);
  // Each worker task evaluates a chunk of `batch` consecutive cells through
  // one MachineBatch (run_consolidation_batch). Chunking follows the
  // enumeration order, so a chunk's cells usually share a workload entry
  // and the batch's phase table dedups their PhaseConsts. batch == 1 keeps
  // the historical per-cell path; either way every row is byte-identical.
  const unsigned batch =
      sim::batch_stepping_enabled(config.base.machine)
          ? std::max(config.batch_cells != 0 ? config.batch_cells : 8u, 1u)
          : 1u;
  auto progress = [&](std::size_t n_done) {
    const std::size_t d =
        done.fetch_add(n_done, std::memory_order_relaxed) + n_done;
    if (d / 200 != (d - n_done) / 200 || d == cells.size()) {
      DICER_INFO << "policy sweep: " << d << "/" << cells.size() << " ("
                 << jobs << " jobs, batch " << batch << ")";
    }
  };
  const std::size_t n_tasks = (cells.size() + batch - 1) / batch;
  auto eval_chunk = [&](std::size_t t) {
    const std::size_t begin = t * batch;
    const std::size_t end = std::min(begin + batch, cells.size());
    if (end - begin == 1) {
      rows[begin] = run_cell(catalog, cells[begin], config.base);
      progress(1);
      return;
    }
    std::vector<std::unique_ptr<policy::Policy>> policies;
    std::vector<BatchConsolidationTask> tasks;
    policies.reserve(end - begin);
    tasks.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      policies.push_back(policy::make_policy(*cells[i].policy));
      BatchConsolidationTask task;
      task.hp = &catalog.by_name(cells[i].entry->spec.hp);
      task.be = &catalog.by_name(cells[i].entry->spec.be);
      task.policy = policies.back().get();
      task.cores_used = cells[i].cores;
      tasks.push_back(task);
    }
    const auto results = run_consolidation_batch(tasks, config.base);
    for (std::size_t i = begin; i < end; ++i) {
      rows[i] = make_row(cells[i], results[i - begin]);
    }
    progress(end - begin);
  };
  {
    trace::ScopedTimer timer("sweep.compute");
    if (jobs <= 1 || n_tasks <= 1) {
      for (std::size_t t = 0; t < n_tasks; ++t) eval_chunk(t);
    } else {
      util::ThreadPool pool(jobs);
      util::parallel_for(pool, n_tasks, eval_chunk);
    }
  }

  if (!cache_path.empty()) {
    trace::ScopedTimer timer("sweep.save_cache");
    save_sweep(cache_path, key, rows);
  }
  return rows;
}

std::vector<SweepRow> filter(const std::vector<SweepRow>& rows,
                             const std::string& policy, unsigned cores) {
  std::vector<SweepRow> out;
  for (const auto& r : rows) {
    if (r.policy == policy && r.cores == cores) out.push_back(r);
  }
  return out;
}

}  // namespace dicer::harness
