// Policy sweep: run a set of policies over the representative workload
// sample across core counts — the shared computation behind Figs 5-8.
//
// Figures 6, 7 and 8 all plot the same 120-workload x {2..10 cores} x
// {UM, CT, DICER} grid through different metrics, and Fig 5 is the
// 10-core slice of it; the sweep runs once and is cached on disk so each
// bench binary stays cheap and the figures stay mutually consistent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/workloads.hpp"

namespace dicer::harness {

struct SweepRow {
  std::string hp;
  std::string be;
  std::string policy;
  unsigned cores = 0;
  bool ct_favoured = false;   ///< class of the workload (from the study)
  double hp_alone = 0.0;
  double be_alone = 0.0;
  double hp_ipc = 0.0;
  double be_ipc = 0.0;        ///< mean across BE instances
  double efu = 0.0;

  double hp_norm() const { return hp_ipc / hp_alone; }
  double be_norm() const { return be_ipc / be_alone; }
};

struct SweepConfig {
  ConsolidationConfig base{};             ///< cores_used is overridden
  std::vector<std::string> policies{"UM", "CT", "DICER"};
  std::vector<unsigned> cores{2, 3, 4, 5, 6, 7, 8, 9, 10};
  /// Parallel workers for the sweep. 0 = auto: $DICER_SWEEP_JOBS if set,
  /// else all hardware threads. The worker count never changes results —
  /// every (workload, cores, policy) cell is independent and rows come
  /// back in the same deterministic order as the serial sweep.
  unsigned jobs = 0;
  /// Consecutive cells evaluated per worker task through one
  /// sim::MachineBatch (consecutive cells share a workload entry, so the
  /// batch's phase table dedups across lanes). 0 = auto: 8 when batched
  /// stepping is enabled, 1 (the plain per-cell path) otherwise. Like
  /// `jobs` and the solver shortcuts, this knob never changes a row and is
  /// excluded from the sweep cache key by construction.
  unsigned batch_cells = 0;
};

/// Resolve a requested worker count: 0 consults $DICER_SWEEP_JOBS, then
/// falls back to hardware concurrency; the result is always >= 1.
unsigned resolve_sweep_jobs(unsigned requested);

/// Run (or load from cache) the sweep over `sample`.
std::vector<SweepRow> policy_sweep(const sim::AppCatalog& catalog,
                                   const std::vector<BaselineEntry>& sample,
                                   const SweepConfig& config,
                                   const std::string& cache_path,
                                   bool force_recompute = false);

/// Rows matching a (policy, cores) cell.
std::vector<SweepRow> filter(const std::vector<SweepRow>& rows,
                             const std::string& policy, unsigned cores);

}  // namespace dicer::harness
