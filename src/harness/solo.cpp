#include "harness/solo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "harness/consolidation.hpp"
#include "sim/mem/memory_link.hpp"

namespace dicer::harness {

double steady_state_phase_ipc(const sim::AppPhase& phase, double cache_bytes,
                              const sim::MachineConfig& config) {
  const sim::MemoryLink link(config.link);
  const double freq = config.freq_hz;
  const double line = config.llc.line_bytes;
  const double m = phase.mrc.at(cache_bytes);

  double ips = freq / (phase.cpi_core + 1.0);
  for (unsigned iter = 0; iter < 40; ++iter) {
    const double demand = phase.api * m * ips * line * (1.0 + phase.wb_ratio);
    const double raw_rho = demand / config.link.capacity_bytes_per_sec;
    const double lat = link.latency_at(raw_rho);
    const double hit_latency =
        config.llc_hit_latency_cycles *
        (1.0 + config.uncore_contention_coeff *
                   std::sqrt(std::min(
                       phase.api * ips / config.uncore_access_ref_per_sec,
                       1.0)));
    const double floor_m = phase.mrc.floor();
    const double span_m = std::max(phase.mrc.ceiling() - floor_m, 1e-9);
    const double excess = std::clamp((m - floor_m) / span_m, 0.0, 1.0);
    const double mlp_eff =
        phase.mlp * (1.0 - config.mlp_squeeze * excess);
    const double cpi =
        phase.cpi_core +
        phase.api * ((1.0 - m) * hit_latency + m * lat / mlp_eff);
    const double target = freq / cpi;
    const double next = 0.5 * target + 0.5 * ips;
    if (std::fabs(next - ips) / std::max(ips, 1.0) < 1e-7) {
      ips = next;
      break;
    }
    ips = next;
  }
  return ips / freq;
}

SoloResult solo_steady_state(const sim::AppProfile& profile, unsigned ways,
                             const sim::MachineConfig& config) {
  if (ways < 1 || ways > config.llc.ways) {
    throw std::invalid_argument("solo_steady_state: bad way count");
  }
  const double bytes = config.way_bytes() * ways;
  const sim::MemoryLink link(config.link);
  const double line = config.llc.line_bytes;

  SoloResult out;
  double total_instr = 0.0;
  double total_time = 0.0;
  double total_bytes = 0.0;
  for (const auto& phase : profile.phases) {
    const double ipc = steady_state_phase_ipc(phase, bytes, config);
    const double ips = ipc * config.freq_hz;
    const double t = phase.instructions / ips;
    const double m = phase.mrc.at(bytes);
    double demand = phase.api * m * ips * line * (1.0 + phase.wb_ratio);
    demand = std::min(demand, config.link.capacity_bytes_per_sec);
    total_instr += phase.instructions;
    total_time += t;
    total_bytes += demand * t;
  }
  out.time_sec = total_time;
  out.ipc = total_instr / (total_time * config.freq_hz);
  out.mem_bw_bytes_per_sec = total_time > 0.0 ? total_bytes / total_time : 0.0;
  return out;
}

SoloResult solo_simulated(const sim::AppProfile& profile, unsigned ways,
                          const sim::MachineConfig& config) {
  sim::Machine machine(config);
  machine.attach(0, &profile);
  machine.set_fill_mask(0, sim::WayMask::low(ways));
  const double t0 = machine.time_sec();
  while (machine.telemetry(0).completions == 0) {
    machine.step();
    if (machine.time_sec() - t0 > 3600.0) {
      throw std::runtime_error("solo_simulated: run exceeded one hour");
    }
  }
  const auto& tel = machine.telemetry(0);
  SoloResult out;
  out.time_sec = machine.time_sec() - t0;
  out.ipc = tel.instructions / tel.active_cycles;
  out.mem_bw_bytes_per_sec = tel.mem_bytes / out.time_sec;
  // A solo run never changes masks or phases mid-steady-state, so nearly
  // every quantum replays; the counters make that visible under --profile.
  record_solver_counters(machine.solver_stats());
  return out;
}

unsigned min_ways_for_fraction(const sim::AppProfile& profile, double fraction,
                               const sim::MachineConfig& config) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("min_ways_for_fraction: bad fraction");
  }
  const double full = solo_steady_state(profile, config.llc.ways, config).ipc;
  for (unsigned w = 1; w <= config.llc.ways; ++w) {
    if (solo_steady_state(profile, w, config).ipc >= fraction * full) {
      return w;
    }
  }
  return config.llc.ways;
}

}  // namespace dicer::harness
