#include "harness/consolidation.hpp"

#include <algorithm>
#include <stdexcept>

#include "rdt/capability.hpp"
#include "sim/machine_batch.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace dicer::harness {

void record_solver_counters(const sim::SolverStats& stats) {
  auto& reg = trace::TimerRegistry::global();
  reg.add_count("solver.quanta", stats.quanta);
  reg.add_count("solver.replays", stats.replays);
  reg.add_count("solver.solves", stats.solves);
  reg.add_count("solver.solves_stable", stats.stable_solves);
  reg.add_count("solver.rounds", stats.total_rounds());
  reg.add_count("solver.invalidations.actuator", stats.invalidations_actuator);
  reg.add_count("solver.invalidations.fingerprint",
                stats.invalidations_fingerprint);
  for (std::size_t r = 0; r < stats.rounds_hist.size(); ++r) {
    if (stats.rounds_hist[r] != 0) {
      reg.add_count("solver.rounds_hist." + std::to_string(r + 1),
                    stats.rounds_hist[r]);
    }
  }
}

std::vector<metrics::IpcPair> ConsolidationResult::ipc_pairs(
    double hp_alone, double be_alone) const {
  std::vector<metrics::IpcPair> pairs;
  pairs.reserve(1 + be_ipcs.size());
  pairs.push_back({hp_alone, hp_ipc});
  for (double be : be_ipcs) pairs.push_back({be_alone, be});
  return pairs;
}

ConsolidationResult run_consolidation(const sim::AppProfile& hp,
                                      const sim::AppProfile& be,
                                      policy::Policy& policy,
                                      const ConsolidationConfig& config) {
  if (config.cores_used < 2 || config.cores_used > config.machine.num_cores) {
    throw std::invalid_argument(
        "run_consolidation: cores_used must be in [2, machine cores]");
  }

  trace::ScopedTimer run_timer("harness.run_consolidation", config.tracer);
  sim::MachineConfig machine_config = config.machine;
  if (!machine_config.tracer) machine_config.tracer = config.tracer;
  sim::Machine machine(machine_config);
  const auto cap = rdt::Capability::probe(machine, config.enable_mba);
  rdt::CatController cat(machine, cap);
  rdt::Monitor monitor(machine, cap, config.tracer);
  std::unique_ptr<rdt::MbaController> mba;
  if (config.enable_mba) {
    mba = std::make_unique<rdt::MbaController>(machine, cap);
  }

  policy::PolicyContext ctx;
  ctx.machine = &machine;
  ctx.cat = &cat;
  ctx.monitor = &monitor;
  ctx.mba = mba.get();
  ctx.hp_core = 0;
  ctx.tracer = config.tracer;
  for (unsigned c = 1; c < config.cores_used; ++c) ctx.be_cores.push_back(c);

  machine.attach(ctx.hp_core, &hp);
  for (unsigned c : ctx.be_cores) machine.attach(c, &be);

  auto& tr = trace::resolve(config.tracer);
  if (tr.enabled(trace::Kind::kRunBegin)) {
    tr.emit(trace::Kind::kRunBegin, machine.time_sec(),
            {{"policy", policy.name()},
             {"hp", hp.name},
             {"be", be.name},
             {"cores", config.cores_used}});
  }

  policy.setup(ctx);

  // Drive the policy's control loop until everyone has completed at least
  // one full run (paper §4.1) and the minimum window has elapsed, or the
  // safety cap trips.
  double rho_integral = 0.0;
  double t_prev = machine.time_sec();
  bool capped = false;
  for (;;) {
    const double interval =
        std::max(policy.interval_sec(), config.machine.quantum_sec);
    machine.run_for(interval);
    rho_integral +=
        std::min(machine.last_link_utilisation(), 1.0) *
        (machine.time_sec() - t_prev);
    t_prev = machine.time_sec();
    policy.act(ctx);

    const double t = machine.time_sec();
    bool everyone_done = machine.telemetry(ctx.hp_core).completions > 0;
    for (unsigned c : ctx.be_cores) {
      everyone_done = everyone_done && machine.telemetry(c).completions > 0;
    }
    if (everyone_done && t >= config.min_window_sec) break;
    if (t >= config.max_window_sec) {
      capped = true;
      break;
    }
  }
  policy.teardown(ctx);

  ConsolidationResult res;
  res.policy = policy.name();
  res.window_sec = machine.time_sec();
  res.window_capped = capped;
  const auto& hp_tel = machine.telemetry(ctx.hp_core);
  res.hp_ipc = hp_tel.instructions / hp_tel.active_cycles;
  res.hp_completions = hp_tel.completions;
  double be_sum = 0.0;
  for (unsigned c : ctx.be_cores) {
    const auto& tel = machine.telemetry(c);
    const double ipc = tel.instructions / tel.active_cycles;
    res.be_ipcs.push_back(ipc);
    be_sum += ipc;
    res.be_completions += tel.completions;
  }
  res.be_ipc_mean =
      res.be_ipcs.empty() ? 0.0
                          : be_sum / static_cast<double>(res.be_ipcs.size());
  res.avg_link_utilisation =
      res.window_sec > 0.0 ? rho_integral / res.window_sec : 0.0;
  res.solver = machine.solver_stats();
  record_solver_counters(res.solver);
  if (tr.enabled(trace::Kind::kRunEnd)) {
    tr.emit(trace::Kind::kRunEnd, machine.time_sec(),
            {{"policy", res.policy},
             {"hp", hp.name},
             {"be", be.name},
             {"cores", config.cores_used},
             {"window_sec", res.window_sec},
             {"hp_ipc", res.hp_ipc},
             {"be_ipc_mean", res.be_ipc_mean},
             {"hp_completions", res.hp_completions},
             {"be_completions", res.be_completions},
             {"avg_rho", res.avg_link_utilisation},
             {"capped", res.window_capped}});
  }
  return res;
}

std::vector<ConsolidationResult> run_consolidation_batch(
    const std::vector<BatchConsolidationTask>& tasks,
    const ConsolidationConfig& base) {
  struct LaneState {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rdt::CatController> cat;
    std::unique_ptr<rdt::Monitor> monitor;
    std::unique_ptr<rdt::MbaController> mba;
    policy::PolicyContext ctx;
    unsigned lane = 0;
  };
  // Lanes are declared before the batch so the batch (which unhooks its
  // shared phase table from every machine on destruction) dies first.
  std::vector<LaneState> lanes;
  sim::MachineBatch batch;
  lanes.reserve(tasks.size());

  // Phase 1 — build every lane exactly as run_consolidation does, in task
  // order: machine, RDT surface, context, attachments. Setup and stepping
  // happen in phase 2, per lane, so each lane's policy sees the same
  // pristine time-0 machine it would serially.
  for (const auto& t : tasks) {
    if (!t.hp || !t.be || !t.policy) {
      throw std::invalid_argument(
          "run_consolidation_batch: task missing hp/be/policy");
    }
    if (t.cores_used < 2 || t.cores_used > base.machine.num_cores) {
      throw std::invalid_argument(
          "run_consolidation_batch: cores_used must be in "
          "[2, machine cores]");
    }
    LaneState ls;
    sim::MachineConfig machine_config = base.machine;
    if (!machine_config.tracer) machine_config.tracer = base.tracer;
    ls.machine = std::make_unique<sim::Machine>(machine_config);
    const auto cap = rdt::Capability::probe(*ls.machine, base.enable_mba);
    ls.cat = std::make_unique<rdt::CatController>(*ls.machine, cap);
    ls.monitor =
        std::make_unique<rdt::Monitor>(*ls.machine, cap, base.tracer);
    if (base.enable_mba) {
      ls.mba = std::make_unique<rdt::MbaController>(*ls.machine, cap);
    }
    ls.ctx.machine = ls.machine.get();
    ls.ctx.cat = ls.cat.get();
    ls.ctx.monitor = ls.monitor.get();
    ls.ctx.mba = ls.mba.get();
    ls.ctx.hp_core = 0;
    ls.ctx.tracer = base.tracer;
    for (unsigned c = 1; c < t.cores_used; ++c) ls.ctx.be_cores.push_back(c);
    ls.machine->attach(ls.ctx.hp_core, t.hp);
    for (unsigned c : ls.ctx.be_cores) ls.machine->attach(c, t.be);
    ls.lane = batch.add(*ls.machine);
    lanes.push_back(std::move(ls));
  }

  // Phase 2 — run each lane's control loop to completion, lane-major. The
  // loop body mirrors run_consolidation statement for statement; the only
  // difference is that machine.run_for goes through the batch, whose
  // stepping is bit-equal by construction.
  std::vector<ConsolidationResult> out(tasks.size());
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    const BatchConsolidationTask& task = tasks[k];
    LaneState& ls = lanes[k];
    sim::Machine& machine = *ls.machine;
    policy::Policy& policy = *task.policy;

    trace::ScopedTimer run_timer("harness.run_consolidation", base.tracer);
    auto& tr = trace::resolve(base.tracer);
    if (tr.enabled(trace::Kind::kRunBegin)) {
      tr.emit(trace::Kind::kRunBegin, machine.time_sec(),
              {{"policy", policy.name()},
               {"hp", task.hp->name},
               {"be", task.be->name},
               {"cores", task.cores_used}});
    }

    policy.setup(ls.ctx);

    double rho_integral = 0.0;
    double t_prev = machine.time_sec();
    bool capped = false;
    for (;;) {
      const double interval =
          std::max(policy.interval_sec(), base.machine.quantum_sec);
      batch.run_for(ls.lane, interval);
      rho_integral +=
          std::min(machine.last_link_utilisation(), 1.0) *
          (machine.time_sec() - t_prev);
      t_prev = machine.time_sec();
      policy.act(ls.ctx);

      const double t = machine.time_sec();
      bool everyone_done = machine.telemetry(ls.ctx.hp_core).completions > 0;
      for (unsigned c : ls.ctx.be_cores) {
        everyone_done = everyone_done && machine.telemetry(c).completions > 0;
      }
      if (everyone_done && t >= base.min_window_sec) break;
      if (t >= base.max_window_sec) {
        capped = true;
        break;
      }
    }
    policy.teardown(ls.ctx);

    ConsolidationResult res;
    res.policy = policy.name();
    res.window_sec = machine.time_sec();
    res.window_capped = capped;
    const auto& hp_tel = machine.telemetry(ls.ctx.hp_core);
    res.hp_ipc = hp_tel.instructions / hp_tel.active_cycles;
    res.hp_completions = hp_tel.completions;
    double be_sum = 0.0;
    for (unsigned c : ls.ctx.be_cores) {
      const auto& tel = machine.telemetry(c);
      const double ipc = tel.instructions / tel.active_cycles;
      res.be_ipcs.push_back(ipc);
      be_sum += ipc;
      res.be_completions += tel.completions;
    }
    res.be_ipc_mean =
        res.be_ipcs.empty()
            ? 0.0
            : be_sum / static_cast<double>(res.be_ipcs.size());
    res.avg_link_utilisation =
        res.window_sec > 0.0 ? rho_integral / res.window_sec : 0.0;
    res.solver = machine.solver_stats();
    record_solver_counters(res.solver);
    if (tr.enabled(trace::Kind::kRunEnd)) {
      tr.emit(trace::Kind::kRunEnd, machine.time_sec(),
              {{"policy", res.policy},
               {"hp", task.hp->name},
               {"be", task.be->name},
               {"cores", task.cores_used},
               {"window_sec", res.window_sec},
               {"hp_ipc", res.hp_ipc},
               {"be_ipc_mean", res.be_ipc_mean},
               {"hp_completions", res.hp_completions},
               {"be_completions", res.be_completions},
               {"avg_rho", res.avg_link_utilisation},
               {"capped", res.window_capped}});
    }
    out[k] = std::move(res);
  }
  return out;
}

}  // namespace dicer::harness
