// Consolidation runner — one experiment in the paper's methodology (§4.1):
// the HP pinned to core 0, N-1 BE instances pinned to the remaining cores,
// everything started together, finished apps restarted "until all of them
// have executed at least once", a policy adjusting allocations throughout.
//
// QoS is measured as the paper measures it: average IPC over the
// consolidation window versus IPC_alone. (For a fixed instruction stream,
// the IPC ratio equals the execution-time slowdown.)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "policy/policy.hpp"
#include "sim/core/app_profile.hpp"
#include "sim/machine.hpp"

namespace dicer::harness {

struct ConsolidationConfig {
  sim::MachineConfig machine{};
  unsigned cores_used = 10;    ///< 1 HP + (cores_used - 1) BEs
  double min_window_sec = 20.0;
  double max_window_sec = 240.0;  ///< safety cap (starved BEs)
  bool enable_mba = false;        ///< expose an MBA controller to the policy
  /// Event sink for the run (null = process-global tracer). Propagated to
  /// the policy context, the monitor and — unless machine.tracer is
  /// already set — the simulated machine, and bracketed by
  /// run_begin/run_end events carrying the workload and the results.
  trace::Tracer* tracer = nullptr;
};

struct ConsolidationResult {
  std::string policy;
  double window_sec = 0.0;
  double hp_ipc = 0.0;
  double be_ipc_mean = 0.0;          ///< average across BE instances
  std::vector<double> be_ipcs;
  std::uint64_t hp_completions = 0;
  std::uint64_t be_completions = 0;  ///< summed over BEs
  double avg_link_utilisation = 0.0; ///< time-averaged rho
  bool window_capped = false;        ///< hit max_window before completions
  sim::SolverStats solver;           ///< quantum-solve convergence counters

  /// Pairs (HP first) ready for metrics::effective_utilisation, given the
  /// solo IPCs of HP and BE.
  std::vector<metrics::IpcPair> ipc_pairs(double hp_alone,
                                          double be_alone) const;
};

/// Run one consolidation of `hp` + (cores_used-1) x `be` under `policy`.
ConsolidationResult run_consolidation(const sim::AppProfile& hp,
                                      const sim::AppProfile& be,
                                      policy::Policy& policy,
                                      const ConsolidationConfig& config = {});

/// One lane of a batched consolidation run. `policy` is caller-owned and
/// must be a distinct instance per task (policies carry per-run state);
/// `cores_used` overrides base.cores_used for this lane.
struct BatchConsolidationTask {
  const sim::AppProfile* hp = nullptr;
  const sim::AppProfile* be = nullptr;
  policy::Policy* policy = nullptr;
  unsigned cores_used = 10;
};

/// Run every task's consolidation through one sim::MachineBatch: the lanes
/// share a deduplicated phase-constant table and each lane's steady-state
/// quanta take the batched fused-replay path. Every ConsolidationResult is
/// byte-identical to run_consolidation called with the same inputs —
/// batching changes the wall clock, never a result bit. The sweep's chunked
/// workers call this with a handful of consecutive grid cells per task
/// (consecutive cells share a workload, so the phase table dedups across
/// lanes); machines are stepped lane-major, one lane's control loop run to
/// completion before the next starts.
std::vector<ConsolidationResult> run_consolidation_batch(
    const std::vector<BatchConsolidationTask>& tasks,
    const ConsolidationConfig& base = {});

/// Accumulate a machine's convergence counters into the global
/// trace::TimerRegistry (the `--profile` output): quanta, replay hits,
/// solves by stability, fixed-point rounds (total and histogram) and
/// invalidation causes. Called by every harness that drives a Machine;
/// thread-safe, so parallel sweep workers merge into one profile.
void record_solver_counters(const sim::SolverStats& stats);

}  // namespace dicer::harness
