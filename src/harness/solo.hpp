// Solo execution: IPC_alone and per-way-count profiles.
//
// Every paper metric normalises against the application running alone on
// the machine with the full LLC (IPC_alone, §4.1), and Fig 2 needs each
// app's solo performance at every way count. Because the machine model is
// analytic and phase-wise stationary, solo IPC has a closed(ish) form: a
// per-phase fixed point between IPS, miss ratio and link latency, combined
// across phases by instruction-weighted harmonic mean. The steady-state
// evaluator computes that directly (microseconds); the simulated variant
// drives a real sim::Machine and exists to validate the fast path and to
// warm caches identically to consolidations.
#pragma once

#include <vector>

#include "sim/core/app_profile.hpp"
#include "sim/machine.hpp"

namespace dicer::harness {

struct SoloResult {
  double ipc = 0.0;       ///< whole-run average (instruction-weighted)
  double time_sec = 0.0;  ///< one complete execution
  double mem_bw_bytes_per_sec = 0.0;  ///< time-average achieved traffic
};

/// Steady-state solo IPC of one phase given `cache_bytes` of LLC.
double steady_state_phase_ipc(const sim::AppPhase& phase, double cache_bytes,
                              const sim::MachineConfig& config);

/// Steady-state solo result with `ways` LLC ways (whole run, all phases).
SoloResult solo_steady_state(const sim::AppProfile& profile, unsigned ways,
                             const sim::MachineConfig& config);

/// Simulated solo result (drives a Machine until one completion).
SoloResult solo_simulated(const sim::AppProfile& profile, unsigned ways,
                          const sim::MachineConfig& config);

/// Fig 2 helper: the minimum number of ways at which the app reaches
/// `fraction` of its full-LLC steady-state IPC. Returns ways in
/// [1, config.llc.ways]; by construction the answer exists at the top.
unsigned min_ways_for_fraction(const sim::AppProfile& profile, double fraction,
                               const sim::MachineConfig& config);

}  // namespace dicer::harness
