#include "telemetry/trace_counter_sink.hpp"

#include <string>

namespace dicer::telemetry {

TraceCounterSink::TraceCounterSink(Registry& registry) {
  for (std::size_t k = 0; k < counters_.size(); ++k) {
    const auto kind = static_cast<trace::Kind>(k);
    if (kind == trace::Kind::kTimer) continue;  // wall clock: never counted
    counters_[k] = &registry.counter(
        std::string("dicer_events_") + trace::kind_name(kind) + "_total",
        std::string("trace events of kind ") + trace::kind_name(kind));
  }
}

void TraceCounterSink::write(const trace::Event& event) {
  const auto k = static_cast<std::size_t>(event.kind);
  if (k < counters_.size() && counters_[k]) counters_[k]->inc();
}

}  // namespace dicer::telemetry
