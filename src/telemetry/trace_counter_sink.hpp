// Bridges the dicer::trace event stream into telemetry counters.
//
// Policies already narrate every actuation as typed trace events (mask
// writes land as kAllocation, CT-T reclassifications as kSampling*,
// donations/resets likewise), so fleet-scale actuation accounting needs no
// new emission sites: attach a TraceCounterSink to the tracer the policies
// use and every delivered event bumps a per-kind counter
// (`dicer_events_<kind>_total`).
//
// Determinism: counter increments are commutative integer adds, and each
// machine's policy emits a fixed event sequence regardless of how the data
// plane is sharded — so the totals are identical at any worker count even
// though emission order is not. kTimer events are ignored (they carry
// wall-clock durations and exist outside the deterministic contract).
#pragma once

#include <array>

#include "telemetry/registry.hpp"
#include "util/trace.hpp"

namespace dicer::telemetry {

class TraceCounterSink final : public trace::Sink {
 public:
  /// Registers one counter per event kind in `registry` (which must
  /// outlive the sink).
  explicit TraceCounterSink(Registry& registry);

  void write(const trace::Event& event) override;

 private:
  std::array<Counter*, static_cast<std::size_t>(trace::Kind::kCount)>
      counters_{};
};

}  // namespace dicer::telemetry
