// dicer::telemetry — the fleet-wide metrics registry.
//
// One Registry holds named counters (monotone uint64), gauges (last-set
// double) and log-scale histograms (telemetry/histogram.hpp). Components
// register metrics once (idempotent — re-registering the same name with
// the same type/spec returns the same handle) and record through stable
// references; exporters walk entries() sorted by name, so exposition is
// deterministic regardless of registration interleaving.
//
// Concurrency & determinism:
//  * inc()/set()/record() are lock-free — a registry may be hammered from
//    every util::ThreadPool worker at once (TSan-tested).
//  * Integer state (counters, histogram bucket counts) is exact under any
//    interleaving, so totals are identical at any worker count.
//  * Floating-point sums are order-sensitive; pipelines that promise
//    byte-identical exports (fleet::Cluster) therefore shard recording
//    per machine and fold shards in machine-index order — see
//    Registry::merge_from, which merges entry-by-entry in the caller's
//    order.
//
// Exposition lives in telemetry/exposition.hpp (Prometheus text + JSON).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/histogram.hpp"

namespace dicer::telemetry {

/// Monotone event counter (Prometheus convention: name it `*_total`).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default registry (for components without an explicit
  /// one; the fleet passes its own through FleetConfig::metrics).
  static Registry& global();

  /// Register-or-fetch. Names must match Prometheus' charset
  /// ([a-zA-Z_:][a-zA-Z0-9_:]*); a name already registered as a different
  /// metric type — or, for histograms, with a different spec — throws
  /// std::invalid_argument. Returned references stay valid for the
  /// registry's lifetime (metrics are never removed).
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name,
                       const HistogramSpec& spec = {},
                       const std::string& help = "");

  /// One registered metric; exactly one of the pointers is non-null.
  struct Entry {
    std::string name;
    std::string help;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  /// Every metric, sorted by name (pointers stay valid; values read
  /// through them are live, not snapshotted).
  std::vector<Entry> entries() const;
  std::size_t size() const;

  /// Fold `other` into this registry: counters add, gauges take the
  /// other's value, histograms merge; metrics missing here are created.
  /// Merging shards in a fixed order (e.g. machine-index order) keeps
  /// floating-point sums byte-stable.
  void merge_from(const Registry& other);

  /// Zero every value, keeping the registered schema.
  void reset();

 private:
  struct Metric {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& metric_slot(const std::string& name, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Metric> metrics_;
};

}  // namespace dicer::telemetry
