#include "telemetry/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dicer::telemetry {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Lock-free monotone update: fold `value` into `slot` under `better`
/// (e.g. std::less for a running min).
template <typename Cmp>
void atomic_fold(std::atomic<double>& slot, double value, Cmp better) {
  double cur = slot.load(std::memory_order_relaxed);
  while (better(value, cur) &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(const HistogramSpec& spec)
    : spec_(spec), counts_(spec.buckets + 1) {
  if (!spec.valid()) {
    throw std::invalid_argument(
        "Histogram: spec needs first_bound > 0, growth > 1, buckets in "
        "[1, 4096]");
  }
  bounds_.reserve(spec_.buckets);
  double bound = spec_.first_bound;
  for (unsigned i = 0; i < spec_.buckets; ++i) {
    bounds_.push_back(bound);
    bound *= spec_.growth;
  }
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

unsigned Histogram::bucket_index(double value) const noexcept {
  // First boundary >= value; NaN and sub-first_bound values land in
  // bucket 0, values above the last finite boundary in the +Inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<unsigned>(it - bounds_.begin());
}

void Histogram::record(double value) noexcept {
  counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_fold(min_, value, std::less<double>{});
  atomic_fold(max_, value, std::greater<double>{});
}

void Histogram::merge_from(const Histogram& other) {
  if (!(other.spec_ == spec_)) {
    throw std::invalid_argument("Histogram::merge_from: spec mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  atomic_fold(min_, other.min_.load(std::memory_order_relaxed),
              std::less<double>{});
  atomic_fold(max_, other.max_.load(std::memory_order_relaxed),
              std::greater<double>{});
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

double Histogram::upper_bound(unsigned i) const noexcept {
  return i < spec_.buckets ? bounds_[i] : kInf;
}

std::uint64_t Histogram::bucket_count(unsigned i) const noexcept {
  return i < counts_.size() ? counts_[i].load(std::memory_order_relaxed) : 0;
}

double Histogram::min() const noexcept {
  return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const noexcept {
  return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // util::stats::percentile's rank convention on the (virtual) sorted
  // sample: the target sits at fractional index p/100 * (n-1).
  const double rank = p / 100.0 * static_cast<double>(n - 1);

  const double lo_sample = min();
  const double hi_sample = max();
  std::uint64_t before = 0;  // samples in buckets below `b`
  for (unsigned b = 0; b < counts_.size(); ++b) {
    const std::uint64_t in_bucket =
        counts_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(before + in_bucket)) {
      // Interpolate linearly inside the bucket, clamped to the observed
      // sample range so single-bucket distributions report exact values.
      double lo = b == 0 ? lo_sample : upper_bound(b - 1);
      double hi = b < spec_.buckets ? upper_bound(b) : hi_sample;
      lo = std::max(lo, lo_sample);
      hi = std::min(hi, hi_sample);
      if (hi <= lo) return lo;
      const double frac = in_bucket == 1
                              ? 0.0
                              : (rank - static_cast<double>(before)) /
                                    static_cast<double>(in_bucket - 1);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    before += in_bucket;
  }
  return hi_sample;  // p == 100 lands past the last counted sample
}

}  // namespace dicer::telemetry
