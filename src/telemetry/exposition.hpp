// Exposition formats for a telemetry::Registry.
//
// Prometheus text exposition, version 0.0.4: `# HELP` / `# TYPE` preamble
// per metric, cumulative `_bucket{le="..."}` series plus `_sum`/`_count`
// for histograms. Deterministic by construction: metrics walk in name
// order, boundaries are pure functions of the histogram spec, and doubles
// render as %.17g — so a byte-compare of two exports is a semantic
// compare (the fleet's jobs-invariance tests rely on exactly this).
#pragma once

#include <string>

#include "telemetry/registry.hpp"

namespace dicer::telemetry {

/// The whole registry as Prometheus text exposition.
std::string to_prometheus(const Registry& registry);

/// One JSON object ({"name":value,...} scalars; histograms as
/// {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p95":..,"p99":..}),
/// keys in name order — a registry snapshot for JSONL time series.
std::string to_json(const Registry& registry);

/// Write `to_prometheus(registry)` to `path` atomically (temp file in the
/// same directory, then rename — the sweep-cache pattern), so a scraper
/// or interrupted run never sees a torn file. Throws std::runtime_error
/// when the file cannot be written.
void write_prometheus(const Registry& registry, const std::string& path);

}  // namespace dicer::telemetry
