// Fixed-boundary log-scale histograms for fleet-wide distributions.
//
// The paper's evaluation is distributional — slowdown CDFs (Fig 1), ways
// CDFs (Fig 2), SLO conformance (Fig 7) — and tail-sensitive consolidation
// work (LFOC, CBP) scores policies on max-slowdown/unfairness, so fleet
// telemetry must answer "what is p99 HP slowdown?" cheaply, not just report
// means. A Histogram holds geometrically growing bucket boundaries fixed at
// construction:
//
//   upper_bound(i) = first_bound * growth^i        (i in [0, buckets))
//
// plus one +Inf overflow bucket, and answers interpolated percentile
// queries (p50/p95/p99/max) from the bucket counts alone.
//
// Determinism contract: bucket boundaries are a pure function of the spec,
// bucket counts are integer sums (commutative — any recording or merge
// order yields the same counts), and percentile() is a pure function of
// the counts. The only order-sensitive state is the floating-point `sum`,
// which is why deterministic pipelines (fleet::Cluster) record and merge
// in machine-index order — the same contract every prior subsystem honors.
//
// Thread safety: record() is lock-free (relaxed atomics per bucket, CAS
// min/max), so many util::ThreadPool workers may hammer one histogram;
// concurrent recording keeps counts exact but lets `sum` rounding depend
// on interleaving. merge_from()/reset()/readers must not race a writer if
// byte-exact sums matter.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace dicer::telemetry {

/// Log-scale bucket layout. The defaults cover [1e-3, ~8e3] at ~19%
/// relative resolution — wide enough for normalised IPCs, slowdowns,
/// utilisations and period-denominated latencies alike.
struct HistogramSpec {
  double first_bound = 1e-3;  ///< upper bound of the first finite bucket
  double growth = 1.19;       ///< geometric boundary growth, > 1
  unsigned buckets = 96;      ///< finite buckets (an +Inf bucket is implicit)

  bool operator==(const HistogramSpec&) const = default;
  bool valid() const noexcept {
    return first_bound > 0.0 && growth > 1.0 && buckets >= 1 &&
           buckets <= 4096;
  }
};

class Histogram {
 public:
  /// Throws std::invalid_argument on an invalid spec.
  explicit Histogram(const HistogramSpec& spec = {});

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one sample (thread-safe, lock-free). Values at or below a
  /// boundary land in that boundary's bucket (Prometheus `le` semantics);
  /// values above the last finite boundary land in the +Inf bucket.
  void record(double value) noexcept;

  /// Accumulate `other` into this histogram. Specs must match (throws
  /// std::invalid_argument otherwise). Bucket counts add exactly in any
  /// merge order; call in a fixed order when the floating-point `sum`
  /// must be byte-stable. Not safe concurrently with writers to `other`.
  void merge_from(const Histogram& other);

  /// Zero every counter, keeping the boundaries.
  void reset() noexcept;

  const HistogramSpec& spec() const noexcept { return spec_; }
  /// Finite buckets (spec().buckets); bucket index spec().buckets is +Inf.
  unsigned num_buckets() const noexcept { return spec_.buckets; }
  /// Upper bound of bucket i; +infinity for i == num_buckets().
  double upper_bound(unsigned i) const noexcept;
  /// Samples in bucket i (non-cumulative), i in [0, num_buckets()].
  std::uint64_t bucket_count(unsigned i) const noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when empty.
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;

  /// Linear-interpolation percentile from the bucket counts, p in
  /// [0, 100]. Matches util::stats::percentile's rank convention
  /// (rank = p/100 * (count-1)) to within one bucket's width; exact
  /// min/max clamp the first and last buckets. Returns 0 when empty.
  double percentile(double p) const;

 private:
  unsigned bucket_index(double value) const noexcept;

  HistogramSpec spec_;
  std::vector<double> bounds_;  ///< finite upper bounds, size spec_.buckets
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< size buckets + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

}  // namespace dicer::telemetry
