#include "telemetry/exposition.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace dicer::telemetry {

namespace {

/// Full-precision deterministic double rendering (round-trips exactly,
/// matches the fleet CSV's %.17g convention).
std::string f17(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

void append_histogram(std::string& out, const Registry::Entry& e) {
  const Histogram& h = *e.histogram;
  std::uint64_t cumulative = 0;
  for (unsigned b = 0; b <= h.num_buckets(); ++b) {
    cumulative += h.bucket_count(b);
    const std::string le =
        b < h.num_buckets() ? f17(h.upper_bound(b)) : "+Inf";
    out += e.name + "_bucket{le=\"" + le + "\"} " +
           std::to_string(cumulative) + '\n';
  }
  out += e.name + "_sum " + f17(h.sum()) + '\n';
  out += e.name + "_count " + std::to_string(h.count()) + '\n';
}

}  // namespace

std::string to_prometheus(const Registry& registry) {
  std::string out;
  for (const auto& e : registry.entries()) {
    if (!e.help.empty()) out += "# HELP " + e.name + ' ' + e.help + '\n';
    if (e.counter) {
      out += "# TYPE " + e.name + " counter\n";
      out += e.name + ' ' + std::to_string(e.counter->value()) + '\n';
    } else if (e.gauge) {
      out += "# TYPE " + e.name + " gauge\n";
      out += e.name + ' ' + f17(e.gauge->value()) + '\n';
    } else if (e.histogram) {
      out += "# TYPE " + e.name + " histogram\n";
      append_histogram(out, e);
    }
  }
  return out;
}

std::string to_json(const Registry& registry) {
  std::string out = "{";
  bool first = true;
  for (const auto& e : registry.entries()) {
    if (!first) out += ',';
    first = false;
    out += '"' + e.name + "\":";
    if (e.counter) {
      out += std::to_string(e.counter->value());
    } else if (e.gauge) {
      out += f17(e.gauge->value());
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      out += "{\"count\":" + std::to_string(h.count()) +
             ",\"sum\":" + f17(h.sum()) + ",\"min\":" + f17(h.min()) +
             ",\"max\":" + f17(h.max()) +
             ",\"p50\":" + f17(h.percentile(50.0)) +
             ",\"p95\":" + f17(h.percentile(95.0)) +
             ",\"p99\":" + f17(h.percentile(99.0)) + '}';
    }
  }
  out += '}';
  return out;
}

void write_prometheus(const Registry& registry, const std::string& path) {
  // Unique temp in the target directory, then rename: concurrent writers
  // race to a *complete* file, and a crash leaves the old export intact.
  static std::atomic<unsigned> seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_prometheus: cannot open " + tmp);
    }
    out << to_prometheus(registry);
    if (!out.flush()) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write_prometheus: failed writing " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_prometheus: cannot rename " + tmp +
                             " -> " + path);
  }
}

}  // namespace dicer::telemetry
