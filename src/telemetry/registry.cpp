#include "telemetry/registry.hpp"

#include <stdexcept>

namespace dicer::telemetry {

namespace {

bool valid_metric_name(const std::string& name) noexcept {
  if (name.empty()) return false;
  const auto word = [](char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    return alpha || (!first && c >= '0' && c <= '9');
  };
  if (!word(name[0], true)) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!word(name[i], false)) return false;
  }
  return true;
}

}  // namespace

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Metric& Registry::metric_slot(const std::string& name,
                                        const std::string& help) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("Registry: invalid metric name '" + name +
                                "' (want [a-zA-Z_:][a-zA-Z0-9_:]*)");
  }
  Metric& m = metrics_[name];
  if (m.help.empty()) m.help = help;
  return m;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = metric_slot(name, help);
  if (m.gauge || m.histogram) {
    throw std::invalid_argument("Registry: '" + name +
                                "' is already registered as a non-counter");
  }
  if (!m.counter) m.counter = std::make_unique<Counter>();
  return *m.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = metric_slot(name, help);
  if (m.counter || m.histogram) {
    throw std::invalid_argument("Registry: '" + name +
                                "' is already registered as a non-gauge");
  }
  if (!m.gauge) m.gauge = std::make_unique<Gauge>();
  return *m.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const HistogramSpec& spec,
                               const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = metric_slot(name, help);
  if (m.counter || m.gauge) {
    throw std::invalid_argument("Registry: '" + name +
                                "' is already registered as a non-histogram");
  }
  if (m.histogram) {
    if (!(m.histogram->spec() == spec)) {
      throw std::invalid_argument("Registry: histogram '" + name +
                                  "' re-registered with a different spec");
    }
    return *m.histogram;
  }
  m.histogram = std::make_unique<Histogram>(spec);
  return *m.histogram;
}

std::vector<Registry::Entry> Registry::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(metrics_.size());
  for (const auto& [name, m] : metrics_) {  // std::map: sorted by name
    Entry e;
    e.name = name;
    e.help = m.help;
    e.counter = m.counter.get();
    e.gauge = m.gauge.get();
    e.histogram = m.histogram.get();
    out.push_back(std::move(e));
  }
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void Registry::merge_from(const Registry& other) {
  for (const auto& e : other.entries()) {
    if (e.counter) {
      counter(e.name, e.help).inc(e.counter->value());
    } else if (e.gauge) {
      gauge(e.name, e.help).set(e.gauge->value());
    } else if (e.histogram) {
      histogram(e.name, e.histogram->spec(), e.help)
          .merge_from(*e.histogram);
    }
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, m] : metrics_) {
    if (m.counter) m.counter->reset();
    if (m.gauge) m.gauge->reset();
    if (m.histogram) m.histogram->reset();
  }
}

}  // namespace dicer::telemetry
