#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace dicer::util {

namespace {

std::atomic<int>& threshold_storage() noexcept {
  static std::atomic<int> level{static_cast<int>(
      parse_log_level(std::getenv("DICER_LOG") ? std::getenv("DICER_LOG")
                                               : ""))};
  return level;
}

std::atomic<std::FILE*>& log_file_storage() noexcept {
  static std::atomic<std::FILE*> file{nullptr};
  return file;
}

const char* prefix(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "[debug]";
    case LogLevel::kInfo: return "[info ]";
    case LogLevel::kWarn: return "[warn ]";
    case LogLevel::kError: return "[error]";
    case LogLevel::kOff: return "[off  ]";
  }
  return "[?]";
}

}  // namespace

LogLevel parse_log_level(const std::string& text, LogLevel def) noexcept {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return def;
}

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_file(std::FILE* file) noexcept {
  log_file_storage().store(file, std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_threshold());
}

void log_line(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  // Assemble the whole line first, then write it in one call under the
  // mutex: stdio buffering gives no atomicity guarantee across the pieces
  // of an fprintf, so a multi-part write could interleave with another
  // thread's line on the same stream.
  std::string line;
  line.reserve(msg.size() + 9);
  line += prefix(level);
  line += ' ';
  line += msg;
  line += '\n';
  static std::mutex mu;
  std::FILE* out = log_file_storage().load(std::memory_order_relaxed);
  if (!out) out = stderr;
  std::lock_guard<std::mutex> lock(mu);
  std::fwrite(line.data(), 1, line.size(), out);
}

}  // namespace dicer::util
