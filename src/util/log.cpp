#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace dicer::util {

namespace {

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::kWarn;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& threshold_storage() noexcept {
  static std::atomic<int> level{
      static_cast<int>(parse_level(std::getenv("DICER_LOG")))};
  return level;
}

const char* prefix(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "[debug]";
    case LogLevel::kInfo: return "[info ]";
    case LogLevel::kWarn: return "[warn ]";
    case LogLevel::kError: return "[error]";
    case LogLevel::kOff: return "[off  ]";
  }
  return "[?]";
}

}  // namespace

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_threshold());
}

void log_line(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "%s %s\n", prefix(level), msg.c_str());
}

}  // namespace dicer::util
