#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <iostream>

namespace dicer::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";  // bare flag
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key,
                            const std::string& def) const {
  return get(key).value_or(def);
}

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  throw CliError("invalid value for --" + key + ": '" + value +
                 "' (expected " + expected + ")");
}

}  // namespace

long CliArgs::get_int(const std::string& key, long def) const {
  const auto v = get(key);
  if (!v || v->empty()) return def;
  errno = 0;
  char* end = nullptr;
  const long r = std::strtol(v->c_str(), &end, 10);
  // Full consumption: `end` must land on the terminator, having consumed
  // at least one character — "4x", "x4" and "" are all rejected.
  if (end == v->c_str() || *end != '\0') bad_value(key, *v, "integer");
  if (errno == ERANGE) bad_value(key, *v, "integer in range");
  return r;
}

double CliArgs::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v || v->empty()) return def;
  errno = 0;
  char* end = nullptr;
  const double r = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') bad_value(key, *v, "number");
  if (errno == ERANGE) bad_value(key, *v, "number in range");
  return r;
}

bool CliArgs::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  if (v->empty()) return true;  // bare --flag means true
  if (*v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  bad_value(key, *v, "boolean (true/false/1/0/yes/no/on/off)");
}

int cli_main_guard(const char* program, const std::function<int()>& body) {
  try {
    return body();
  } catch (const CliError& e) {
    std::cerr << program << ": error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << program << ": error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dicer::util
