#include "util/cli.hpp"

#include <cstdlib>

namespace dicer::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";  // bare flag
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key,
                            const std::string& def) const {
  return get(key).value_or(def);
}

long CliArgs::get_int(const std::string& key, long def) const {
  const auto v = get(key);
  if (!v || v->empty()) return def;
  return std::strtol(v->c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v || v->empty()) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  if (v->empty()) return true;  // bare --flag means true
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

}  // namespace dicer::util
