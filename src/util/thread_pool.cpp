#include "util/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <exception>

#include "util/log.hpp"

namespace dicer::util {

ThreadPool::ThreadPool(unsigned workers) {
  workers = std::max(1u, workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

unsigned ThreadPool::hardware_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned ThreadPool::resolve_jobs(unsigned requested, const char* env_var) {
  if (requested != 0) return requested;
  if (env_var != nullptr) {
    if (const char* env = std::getenv(env_var)) {
      // Strict parse: digits only. strtoul alone would accept leading
      // whitespace/signs ("-1" wraps to huge) and partial parses ("4x" -> 4).
      char* end = nullptr;
      errno = 0;
      const unsigned long v = std::strtoul(env, &end, 10);
      const bool digits_only =
          env[0] >= '0' && env[0] <= '9' && end && *end == '\0';
      if (!digits_only || errno == ERANGE) {
        DICER_WARN << "ignoring invalid " << env_var << "='" << env
                   << "' (expected an unsigned integer); using "
                   << hardware_workers() << " workers";
        return hardware_workers();
      }
      if (v == 0) {
        DICER_WARN << env_var << "=0 is not a worker count; using "
                   << hardware_workers() << " workers";
        return hardware_workers();
      }
      // More workers than 4x the hardware threads only adds contention;
      // clamp (loudly) instead of oversubscribing by orders of magnitude.
      const unsigned long cap = 4ul * hardware_workers();
      if (v > cap) {
        DICER_WARN << env_var << "=" << v << " exceeds 4x hardware "
                   << "concurrency; clamping to " << cap;
        return static_cast<unsigned>(cap);
      }
      return static_cast<unsigned>(v);
    }
  }
  return hardware_workers();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the future
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&body, i] { body(i); }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

std::vector<ShardRange> shard_ranges(std::size_t n, unsigned max_shards,
                                     std::size_t min_per_shard) {
  std::vector<ShardRange> out;
  if (n == 0) return out;
  const std::size_t by_min = min_per_shard > 0 ? n / min_per_shard : n;
  const std::size_t count =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   std::max(1u, max_shards), by_min));
  out.reserve(count);
  const std::size_t base = n / count;
  const std::size_t rem = n % count;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t size = base + (s < rem ? 1 : 0);
    out.push_back({begin, begin + size});
    begin += size;
  }
  return out;
}

void parallel_shards(ThreadPool& pool, const std::vector<ShardRange>& shards,
                     const std::function<void(std::size_t, ShardRange)>& body) {
  if (shards.size() <= 1) {
    if (!shards.empty()) body(0, shards[0]);
    return;
  }
  parallel_for(pool, shards.size(),
               [&](std::size_t s) { body(s, shards[s]); });
}

}  // namespace dicer::util
