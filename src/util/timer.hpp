// Scoped wall-clock timers for profiling pipeline stages (cache load,
// sweep compute, cache save, per-consolidation cost).
//
// A ScopedTimer measures its own lifetime and, on destruction,
//  * accumulates into a TimerRegistry (count / total / min / max per
//    label) — always, it is a couple of map operations per scope; and
//  * optionally emits a Kind::kTimer trace event, if a tracer was given
//    AND kTimer is in its mask. Timer events carry wall-clock durations,
//    which is why kTimer sits outside trace::kDefaultKinds: deterministic
//    traces stay deterministic unless a profile is explicitly requested.
//
// Benches print TimerRegistry::global().format() under --profile.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/trace.hpp"

namespace dicer::trace {

struct TimerStat {
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};

class TimerRegistry {
 public:
  TimerRegistry() = default;
  TimerRegistry(const TimerRegistry&) = delete;
  TimerRegistry& operator=(const TimerRegistry&) = delete;

  static TimerRegistry& global();

  void record(const std::string& label, double ms);
  /// Event counter (occurrence tallies with no duration — solver replay
  /// hits, fixed-point rounds, cache invalidations). Counters live in
  /// their own namespace and print as a separate block in format().
  void add_count(const std::string& label, std::uint64_t n);
  /// All stats, sorted by label (a snapshot — safe to use while others
  /// keep recording).
  std::vector<std::pair<std::string, TimerStat>> snapshot() const;
  /// All counters, sorted by label.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  void reset();
  /// Human-readable profile table ("" when nothing was recorded).
  std::string format() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TimerStat> stats_;
  std::map<std::string, std::uint64_t> counters_;
};

class ScopedTimer {
 public:
  /// Times from construction to destruction under `label`. Records into
  /// `registry` (default: the global one) and emits a kTimer event on
  /// `tracer` when that kind is enabled there.
  explicit ScopedTimer(std::string label, Tracer* tracer = nullptr,
                       TimerRegistry* registry = nullptr);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_ms() const;

 private:
  std::string label_;
  Tracer* tracer_;
  TimerRegistry* registry_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dicer::trace
