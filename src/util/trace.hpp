// dicer::trace — structured controller/machine telemetry.
//
// DICER's behaviour is a *timeline*: period measurements, way donations,
// samplings, phase/perf resets, rollbacks. DICER_LOG=debug shows that
// timeline as unstructured stderr text; this subsystem records it as typed
// events delivered to pluggable sinks (JSONL, CSV, in-memory), so benches
// can replay the paper's Fig 5-style narratives and tests can assert the
// controller's exact decision sequence.
//
// Design constraints:
//  * Near-zero cost when disabled: a Tracer with no sinks (the default)
//    answers enabled() with one relaxed atomic load; no event is built.
//    Emission sites follow `if (tr.enabled(kind)) tr.emit(...)`.
//  * Thread-safe: emit() serialises sink writes behind one mutex, so a
//    sink always sees whole events in a single call (the parallel policy
//    sweep emits from many workers into one file).
//  * Deterministic: events carry only simulated time and counters — never
//    wall-clock time or addresses — so a traced run serialises to byte-
//    identical output across repetitions. (Timer events, which do carry
//    wall time, are excluded from the default kind mask.)
//
// Components resolve a null Tracer* to the process-global tracer
// (`trace::resolve`), which has no sinks until a bench installs one via
// --trace / DICER_TRACE.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dicer::trace {

/// Every event type the system emits. Keep kind_name() in sync.
enum class Kind : unsigned {
  kSetup = 0,       ///< policy setup: initial allocation
  kPeriod,          ///< controller period snapshot (measurements + verdicts)
  kAllocation,      ///< HP way-count change actually applied
  kSamplingStart,   ///< Listing 1: CT-T reclassification, sampling plan
  kSamplingStep,    ///< one settle interval measured
  kSamplingDone,    ///< plan exhausted, optimum enforced
  kDonation,        ///< stable period donated one HP way to the BEs
  kPhaseReset,      ///< Eq. 2 fired
  kPerfReset,       ///< degraded IPC fired
  kResetValidate,   ///< Listing 3 validation outcome (incl. rollbacks)
  kRunBegin,        ///< harness consolidation started
  kRunEnd,          ///< harness consolidation finished (results)
  kPlacement,       ///< fleet tenant placement decision (incl. rejections)
  kMigration,       ///< fleet BE migration off an SLO-violating machine
  kFleetEpoch,      ///< fleet per-epoch aggregate metrics
  kMonitorPoll,     ///< rdt::Monitor poll_all snapshot (verbose)
  kQuantum,         ///< sim::Machine quantum counters (verbose)
  kTimer,           ///< scoped wall-clock timer (verbose, nondeterministic)
  kCount
};

const char* kind_name(Kind kind) noexcept;

using KindMask = std::uint32_t;

constexpr KindMask mask_of(Kind kind) noexcept {
  return KindMask{1} << static_cast<unsigned>(kind);
}

constexpr KindMask kAllKinds =
    (KindMask{1} << static_cast<unsigned>(Kind::kCount)) - 1;

/// Default mask: every controller-level event; the per-quantum machine
/// counters, monitor polls and wall-clock timers are opt-in (they are
/// high-volume and — for timers — nondeterministic).
constexpr KindMask kDefaultKinds =
    kAllKinds & ~(mask_of(Kind::kQuantum) | mask_of(Kind::kMonitorPoll) |
                  mask_of(Kind::kTimer));

/// One typed key/value pair. Constructors cover the integer widths the
/// call sites use so `{"hp_ways", hp_ways_}` just works.
struct Field {
  using Value =
      std::variant<bool, std::int64_t, std::uint64_t, double, std::string>;

  std::string key;
  Value value;

  Field(std::string k, bool v) : key(std::move(k)), value(v) {}
  Field(std::string k, int v)
      : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
  Field(std::string k, long v)
      : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
  Field(std::string k, long long v)
      : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
  Field(std::string k, unsigned v)
      : key(std::move(k)), value(static_cast<std::uint64_t>(v)) {}
  Field(std::string k, unsigned long v)
      : key(std::move(k)), value(static_cast<std::uint64_t>(v)) {}
  Field(std::string k, unsigned long long v)
      : key(std::move(k)), value(static_cast<std::uint64_t>(v)) {}
  Field(std::string k, double v) : key(std::move(k)), value(v) {}
  Field(std::string k, const char* v)
      : key(std::move(k)), value(std::string(v)) {}
  Field(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
};

struct Event {
  Kind kind = Kind::kSetup;
  double t_sec = 0.0;  ///< simulated time (0 for timeless events)
  std::vector<Field> fields;
};

/// Field lookup helpers (first match wins; defaults on absence/type
/// mismatch). Numeric getters convert between the numeric alternatives.
const Field* find_field(const Event& event, std::string_view key) noexcept;
double field_double(const Event& event, std::string_view key,
                    double def = 0.0) noexcept;
std::uint64_t field_uint(const Event& event, std::string_view key,
                         std::uint64_t def = 0) noexcept;
bool field_bool(const Event& event, std::string_view key,
                bool def = false) noexcept;
std::string field_string(const Event& event, std::string_view key,
                         std::string def = "");

/// One event as a single JSON object, fixed key order
/// ({"t":..,"kind":..,<fields in emission order>}), no trailing newline.
std::string to_jsonl(const Event& event);
/// One event as a CSV row `t,kind,k1=v1;k2=v2;...` (escaped if needed).
std::string to_csv_row(const Event& event);

/// Sink interface. write() is always called under the owning Tracer's
/// mutex — implementations need no locking of their own and always see
/// whole events, in emission order.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const Event& event) = 0;
  virtual void flush() {}
};

/// JSON-lines file sink. Throws std::runtime_error if the file cannot be
/// opened (truncates any existing file).
class JsonlSink final : public Sink {
 public:
  explicit JsonlSink(const std::string& path);
  void write(const Event& event) override;
  void flush() override;

 private:
  std::ofstream out_;
};

/// CSV file sink: header `t_sec,kind,fields` then one to_csv_row per event.
class CsvSink final : public Sink {
 public:
  explicit CsvSink(const std::string& path);
  void write(const Event& event) override;
  void flush() override;

 private:
  std::ofstream out_;
};

/// In-memory sink for tests and the timeline bench. Reading while another
/// thread still emits is the caller's race to avoid (detach the sink
/// first).
class MemorySink final : public Sink {
 public:
  void write(const Event& event) override { events_.push_back(event); }
  const std::vector<Event>& events() const noexcept { return events_; }
  std::vector<Event> take() { return std::move(events_); }

 private:
  std::vector<Event> events_;
};

/// JsonlSink unless `path` ends in ".csv".
std::shared_ptr<Sink> make_file_sink(const std::string& path);

/// The event router. enabled(kind) is the hot-path gate: it is true only
/// when at least one sink is attached AND the kind is in the mask, folded
/// into one atomic word so disabled tracing costs a single relaxed load.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide default tracer (no sinks until someone adds one).
  static Tracer& global();

  bool enabled(Kind kind) const noexcept {
    return (active_.load(std::memory_order_relaxed) & mask_of(kind)) != 0;
  }
  bool enabled() const noexcept {
    return active_.load(std::memory_order_relaxed) != 0;
  }

  /// Which kinds reach the sinks (default kDefaultKinds).
  void set_kinds(KindMask mask);
  KindMask kinds() const;

  void add_sink(std::shared_ptr<Sink> sink);
  /// Detach (and flush) one sink; no-op if it is not attached.
  void remove_sink(const std::shared_ptr<Sink>& sink);
  void clear_sinks();
  void flush();

  /// Deliver one event to every sink (thread-safe). Events whose kind is
  /// filtered out are dropped here too, so callers may emit untested.
  void emit(Event event);
  void emit(Kind kind, double t_sec, std::vector<Field> fields);

 private:
  void refresh_active_locked();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Sink>> sinks_;
  KindMask kinds_ = kDefaultKinds;
  std::atomic<KindMask> active_{0};
};

/// Components hold a Tracer* that is null by default; null means "the
/// process-global tracer".
inline Tracer& resolve(Tracer* tracer) noexcept {
  return tracer ? *tracer : Tracer::global();
}

}  // namespace dicer::trace
