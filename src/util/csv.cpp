#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace dicer::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::header(std::initializer_list<std::string_view> cols) {
  std::vector<std::string> v;
  v.reserve(cols.size());
  for (auto c : cols) v.emplace_back(c);
  header(v);
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  if (header_written_) {
    throw std::logic_error("CsvWriter: header written twice for " + path_);
  }
  write_cells(cols);
  header_written_ = true;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_cells(cells);
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double x : cells) s.push_back(fmt(x));
  row(s);
}

void CsvWriter::row_labeled(std::string_view label,
                            const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size() + 1);
  s.emplace_back(label);
  for (double x : cells) s.push_back(fmt(x));
  row(s);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out_ << ',';
    out_ << csv_escape(c);
    first = false;
  }
  out_ << '\n';
}

std::string fmt(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", x);
  return buf;
}

std::string fmt_fixed(double x, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, x);
  return buf;
}

}  // namespace dicer::util
