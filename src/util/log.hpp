// Tiny leveled logger. The simulator and policies log controller decisions
// (allocation changes, sampling, resets) at kDebug so experiments stay quiet
// by default but a single env var (DICER_LOG=debug) exposes the control flow.
#pragma once

#include <sstream>
#include <string>

namespace dicer::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; initialised from the DICER_LOG environment variable
/// (debug|info|warn|error|off) on first use, default kWarn.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

bool log_enabled(LogLevel level) noexcept;

/// Emit one line to stderr with a level prefix. No-op below the threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dicer::util

#define DICER_LOG(level)                                        \
  if (!::dicer::util::log_enabled(::dicer::util::LogLevel::level)) { \
  } else                                                        \
    ::dicer::util::detail::LogStream(::dicer::util::LogLevel::level)

#define DICER_DEBUG DICER_LOG(kDebug)
#define DICER_INFO DICER_LOG(kInfo)
#define DICER_WARN DICER_LOG(kWarn)
#define DICER_ERROR DICER_LOG(kError)
