// Tiny leveled logger. The simulator and policies log controller decisions
// (allocation changes, sampling, resets) at kDebug so experiments stay quiet
// by default but a single env var (DICER_LOG=debug) exposes the control flow.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace dicer::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; initialised from the DICER_LOG environment variable
/// (debug|info|warn|error|off) on first use, default kWarn.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

/// Parse "debug" | "info" | "warn" | "error" | "off"; `def` on anything
/// else. Backs both DICER_LOG and the benches' --log-level flag.
LogLevel parse_log_level(const std::string& text,
                         LogLevel def = LogLevel::kWarn) noexcept;

bool log_enabled(LogLevel level) noexcept;

/// Emit one line with a level prefix. No-op below the threshold.
/// Thread-safe: the prefixed line is assembled first and written to the
/// log stream as one mutex-guarded write, so concurrent loggers (e.g. the
/// parallel sweep's workers) can never interleave partial lines.
void log_line(LogLevel level, const std::string& msg);

/// Redirect log output (default stderr; nullptr restores stderr). The
/// stream is shared global state — meant for tests capturing output.
void set_log_file(std::FILE* file) noexcept;

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dicer::util

#define DICER_LOG(level)                                        \
  if (!::dicer::util::log_enabled(::dicer::util::LogLevel::level)) { \
  } else                                                        \
    ::dicer::util::detail::LogStream(::dicer::util::LogLevel::level)

#define DICER_DEBUG DICER_LOG(kDebug)
#define DICER_INFO DICER_LOG(kInfo)
#define DICER_WARN DICER_LOG(kWarn)
#define DICER_ERROR DICER_LOG(kError)
