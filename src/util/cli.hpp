// Small command-line flag parser shared by bench/example binaries.
// Supports --flag, --key=value and "--key value" forms.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dicer::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& def) const;
  long get_int(const std::string& key, long def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace dicer::util
