// Small command-line flag parser shared by bench/example binaries.
// Supports --flag, --key=value and "--key value" forms.
//
// Numeric getters are strict: the whole value must parse ("4x", "abc",
// "1.5.2" and out-of-range numbers all throw CliError), so a typo fails
// loudly instead of silently becoming 0. Front-ends catch CliError at the
// top of main (see cli_main_guard) and turn it into a one-line error plus
// a non-zero exit.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace dicer::util {

/// A malformed flag value (e.g. `--jobs=4x`). what() is a complete,
/// actionable one-liner: "invalid value for --jobs: '4x' (expected
/// integer)".
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& def) const;
  /// Strict integer flag: returns `def` when absent/empty, throws CliError
  /// on trailing junk, non-numeric text or out-of-range values.
  long get_int(const std::string& key, long def) const;
  /// Strict floating-point flag: same contract as get_int.
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

/// Run `body` and translate CliError (and std::exception generally) into a
/// one-line `program: error: ...` on stderr plus exit code 2 — the shared
/// epilogue of every example/bench main:
///
///   int main(int argc, char** argv) {
///     return util::cli_main_guard(argv[0], [&] { ...; return 0; });
///   }
int cli_main_guard(const char* program, const std::function<int()>& body);

}  // namespace dicer::util
