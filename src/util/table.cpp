#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/csv.hpp"

namespace dicer::util {

void TextTable::set_header(std::vector<std::string> cols) {
  header_ = std::move(cols);
}

void TextTable::set_alignment(std::vector<Align> aligns) {
  aligns_ = std::move(aligns);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& cells, int decimals) {
  std::vector<std::string> s;
  s.reserve(cells.size() + 1);
  s.push_back(label);
  for (double x : cells) {
    s.push_back(decimals < 0 ? fmt(x) : fmt_fixed(x, decimals));
  }
  add_row(std::move(s));
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::str() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  if (ncols == 0) return {};

  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    width[i] = std::max(width[i], header_[i].size());
  }
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      width[i] = std::max(width[i], r.cells[i].size());
    }
  }

  auto align_of = [&](std::size_t col) {
    if (col < aligns_.size()) return aligns_[col];
    return col == 0 ? Align::kLeft : Align::kRight;
  };

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      const auto pad = width[i] - cell.size();
      if (i) os << "  ";
      if (align_of(i) == Align::kRight) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
    }
    os << '\n';
  };

  std::size_t total = 0;
  for (std::size_t i = 0; i < ncols; ++i) total += width[i] + (i ? 2 : 0);
  const std::string rule(total, '-');

  std::ostringstream os;
  if (!header_.empty()) {
    emit_row(os, header_);
    os << rule << '\n';
  }
  for (const auto& r : rows_) {
    if (r.rule_before) os << rule << '\n';
    emit_row(os, r.cells);
  }
  return os.str();
}

void TextTable::print() const { std::cout << str(); }

std::string section(const std::string& title) {
  return "\n== " + title + " ==\n";
}

}  // namespace dicer::util
