#include "util/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/csv.hpp"

namespace dicer::trace {

namespace {

/// Deterministic double formatting: shortest %.12g rendering. Twelve
/// significant digits cover every quantity we trace (times are multiples
/// of the 10 ms quantum, IPCs/bandwidths are smooth model outputs) and the
/// rendering depends only on the value, never on locale or run order.
std::string fmt_double(double x) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", x);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string value_to_string(const Field::Value& v, bool json) {
  if (const bool* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v)) {
    return std::to_string(*u);
  }
  if (const double* d = std::get_if<double>(&v)) return fmt_double(*d);
  const std::string& s = std::get<std::string>(v);
  return json ? '"' + json_escape(s) + '"' : s;
}

}  // namespace

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kSetup: return "setup";
    case Kind::kPeriod: return "period";
    case Kind::kAllocation: return "allocation";
    case Kind::kSamplingStart: return "sampling_start";
    case Kind::kSamplingStep: return "sampling_step";
    case Kind::kSamplingDone: return "sampling_done";
    case Kind::kDonation: return "donation";
    case Kind::kPhaseReset: return "phase_reset";
    case Kind::kPerfReset: return "perf_reset";
    case Kind::kResetValidate: return "reset_validate";
    case Kind::kRunBegin: return "run_begin";
    case Kind::kRunEnd: return "run_end";
    case Kind::kPlacement: return "placement";
    case Kind::kMigration: return "migration";
    case Kind::kFleetEpoch: return "fleet_epoch";
    case Kind::kMonitorPoll: return "monitor_poll";
    case Kind::kQuantum: return "quantum";
    case Kind::kTimer: return "timer";
    case Kind::kCount: break;
  }
  return "?";
}

const Field* find_field(const Event& event, std::string_view key) noexcept {
  for (const auto& f : event.fields) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

double field_double(const Event& event, std::string_view key,
                    double def) noexcept {
  const Field* f = find_field(event, key);
  if (!f) return def;
  if (const double* d = std::get_if<double>(&f->value)) return *d;
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&f->value)) {
    return static_cast<double>(*u);
  }
  if (const std::int64_t* i = std::get_if<std::int64_t>(&f->value)) {
    return static_cast<double>(*i);
  }
  return def;
}

std::uint64_t field_uint(const Event& event, std::string_view key,
                         std::uint64_t def) noexcept {
  const Field* f = find_field(event, key);
  if (!f) return def;
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&f->value)) {
    return *u;
  }
  if (const std::int64_t* i = std::get_if<std::int64_t>(&f->value)) {
    return *i >= 0 ? static_cast<std::uint64_t>(*i) : def;
  }
  return def;
}

bool field_bool(const Event& event, std::string_view key, bool def) noexcept {
  const Field* f = find_field(event, key);
  if (!f) return def;
  if (const bool* b = std::get_if<bool>(&f->value)) return *b;
  return def;
}

std::string field_string(const Event& event, std::string_view key,
                         std::string def) {
  const Field* f = find_field(event, key);
  if (!f) return def;
  if (const std::string* s = std::get_if<std::string>(&f->value)) return *s;
  return def;
}

std::string to_jsonl(const Event& event) {
  std::string out = "{\"t\":" + fmt_double(event.t_sec) + ",\"kind\":\"" +
                    kind_name(event.kind) + '"';
  for (const auto& f : event.fields) {
    out += ",\"" + json_escape(f.key) + "\":" + value_to_string(f.value, true);
  }
  out += '}';
  return out;
}

std::string to_csv_row(const Event& event) {
  std::string fields;
  for (const auto& f : event.fields) {
    if (!fields.empty()) fields += ';';
    fields += f.key + '=' + value_to_string(f.value, false);
  }
  return fmt_double(event.t_sec) + ',' + kind_name(event.kind) + ',' +
         util::csv_escape(fields);
}

JsonlSink::JsonlSink(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("JsonlSink: cannot open " + path);
}

void JsonlSink::write(const Event& event) { out_ << to_jsonl(event) << '\n'; }

void JsonlSink::flush() { out_.flush(); }

CsvSink::CsvSink(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("CsvSink: cannot open " + path);
  out_ << "t_sec,kind,fields\n";
}

void CsvSink::write(const Event& event) { out_ << to_csv_row(event) << '\n'; }

void CsvSink::flush() { out_.flush(); }

std::shared_ptr<Sink> make_file_sink(const std::string& path) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    return std::make_shared<CsvSink>(path);
  }
  return std::make_shared<JsonlSink>(path);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::refresh_active_locked() {
  active_.store(sinks_.empty() ? 0 : kinds_, std::memory_order_relaxed);
}

void Tracer::set_kinds(KindMask mask) {
  std::lock_guard<std::mutex> lock(mu_);
  kinds_ = mask & kAllKinds;
  refresh_active_locked();
}

KindMask Tracer::kinds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kinds_;
}

void Tracer::add_sink(std::shared_ptr<Sink> sink) {
  if (!sink) return;
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
  refresh_active_locked();
}

void Tracer::remove_sink(const std::shared_ptr<Sink>& sink) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(sinks_.begin(), sinks_.end(), sink);
  if (it == sinks_.end()) return;
  (*it)->flush();
  sinks_.erase(it);
  refresh_active_locked();
}

void Tracer::clear_sinks() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : sinks_) s->flush();
  sinks_.clear();
  refresh_active_locked();
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : sinks_) s->flush();
}

void Tracer::emit(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  if ((kinds_ & mask_of(event.kind)) == 0) return;
  for (auto& s : sinks_) s->write(event);
}

void Tracer::emit(Kind kind, double t_sec, std::vector<Field> fields) {
  emit(Event{kind, t_sec, std::move(fields)});
}

}  // namespace dicer::trace
