// Fixed-size worker pool for embarrassingly parallel harness work (the
// policy sweep, future study fan-outs). Deliberately minimal: a mutex-
// guarded FIFO queue, submit() returning a std::future that propagates
// exceptions, and a parallel_for() convenience that fails fast with the
// first worker exception. Tasks must not submit to the pool they run on
// (no work stealing, so that can deadlock when all workers wait).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dicer::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to >= 1).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue `fn` and get a future for its result; an exception thrown by
  /// the task is rethrown from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// std::thread::hardware_concurrency(), never 0.
  static unsigned hardware_workers() noexcept;

  /// Resolve a requested worker count: non-zero requests win; 0 consults
  /// the environment variable `env_var` (when non-null), then falls back
  /// to hardware concurrency. The env value must be a plain unsigned
  /// integer — partial parses ("4x"), signs and whitespace are rejected
  /// with a warning; 0 is diagnosed and ignored; values above 4x the
  /// hardware thread count are clamped (with a warning) to that cap.
  /// The result is always >= 1.
  static unsigned resolve_jobs(unsigned requested,
                               const char* env_var = nullptr);

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Run body(i) for every i in [0, n) on `pool`, blocking until all
/// iterations finish. If any iteration throws, the first exception (in
/// index order) is rethrown after every iteration has completed.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// One contiguous half-open index range of a sharded scan.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive
  std::size_t size() const noexcept { return end - begin; }
};

/// Split [0, n) into at most `max_shards` contiguous ranges of at least
/// `min_per_shard` items each (sizes differ by at most one; earlier shards
/// take the remainder). A pure function of its arguments, so callers that
/// need a deterministic shard <- index mapping (the control plane's
/// leftmost-wins merges) get the same plan on every run. n == 0 yields no
/// shards; n < min_per_shard yields one.
std::vector<ShardRange> shard_ranges(std::size_t n, unsigned max_shards,
                                     std::size_t min_per_shard);

/// Run body(s, shards[s]) for every shard on `pool`, blocking until all
/// complete; the first exception (in shard order) is rethrown after every
/// shard has finished. Like parallel_for, this submits from the calling
/// thread and must not run *on* a pool worker (no work stealing — nested
/// submission can deadlock when all workers wait). The single-shard case
/// runs inline, so callers need no serial special case.
void parallel_shards(ThreadPool& pool, const std::vector<ShardRange>& shards,
                     const std::function<void(std::size_t, ShardRange)>& body);

}  // namespace dicer::util
