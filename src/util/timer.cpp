#include "util/timer.hpp"

#include <algorithm>
#include <cstdio>

namespace dicer::trace {

TimerRegistry& TimerRegistry::global() {
  static TimerRegistry registry;
  return registry;
}

void TimerRegistry::record(const std::string& label, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  TimerStat& s = stats_[label];
  if (s.count == 0) {
    s.min_ms = ms;
    s.max_ms = ms;
  } else {
    s.min_ms = std::min(s.min_ms, ms);
    s.max_ms = std::max(s.max_ms, ms);
  }
  ++s.count;
  s.total_ms += ms;
}

void TimerRegistry::add_count(const std::string& label, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[label] += n;
}

std::vector<std::pair<std::string, TimerStat>> TimerRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {stats_.begin(), stats_.end()};
}

std::vector<std::pair<std::string, std::uint64_t>> TimerRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

void TimerRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
  counters_.clear();
}

std::string TimerRegistry::format() const {
  const auto stats = snapshot();
  const auto counts = counters();
  if (stats.empty() && counts.empty()) return "";
  std::string out;
  if (!counts.empty()) {
    std::size_t cwidth = 7;
    for (const auto& [label, _] : counts) {
      cwidth = std::max(cwidth, label.size());
    }
    char cbuf[192];
    std::snprintf(cbuf, sizeof cbuf, "%-*s %16s\n",
                  static_cast<int>(cwidth), "counter", "count");
    out += cbuf;
    for (const auto& [label, n] : counts) {
      std::snprintf(cbuf, sizeof cbuf, "%-*s %16llu\n",
                    static_cast<int>(cwidth), label.c_str(),
                    static_cast<unsigned long long>(n));
      out += cbuf;
    }
  }
  if (stats.empty()) return out;
  if (!out.empty()) out += "\n";
  std::size_t width = 5;
  for (const auto& [label, _] : stats) width = std::max(width, label.size());
  char buf[192];
  std::snprintf(buf, sizeof buf, "%-*s %8s %12s %12s %12s %12s\n",
                static_cast<int>(width), "timer", "count", "total ms",
                "mean ms", "min ms", "max ms");
  out += buf;
  for (const auto& [label, s] : stats) {
    std::snprintf(buf, sizeof buf,
                  "%-*s %8llu %12.3f %12.3f %12.3f %12.3f\n",
                  static_cast<int>(width), label.c_str(),
                  static_cast<unsigned long long>(s.count), s.total_ms,
                  s.count ? s.total_ms / static_cast<double>(s.count) : 0.0,
                  s.min_ms, s.max_ms);
    out += buf;
  }
  return out;
}

ScopedTimer::ScopedTimer(std::string label, Tracer* tracer,
                         TimerRegistry* registry)
    : label_(std::move(label)),
      tracer_(tracer),
      registry_(registry ? registry : &TimerRegistry::global()),
      start_(std::chrono::steady_clock::now()) {}

double ScopedTimer::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

ScopedTimer::~ScopedTimer() {
  const double ms = elapsed_ms();
  registry_->record(label_, ms);
  if (tracer_ && tracer_->enabled(Kind::kTimer)) {
    tracer_->emit(Kind::kTimer, 0.0, {{"label", label_}, {"ms", ms}});
  }
}

}  // namespace dicer::trace
