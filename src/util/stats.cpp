#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dicer::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double gmean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double hmean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double recsum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    recsum += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / recsum;
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s2 = 0.0;
  for (double x : xs) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(xs.size()));
}

double min(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    cdf.push_back({v[i],
                   static_cast<double>(i + 1) / static_cast<double>(v.size())});
  }
  return cdf;
}

double cdf_at(std::span<const double> xs, double threshold) noexcept {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : xs) n += (x <= threshold) ? 1u : 0u;
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

double fraction_at_least(std::span<const double> xs,
                         double threshold) noexcept {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : xs) n += (x >= threshold) ? 1u : 0u;
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - m_;
  m_ += delta / static_cast<double>(n_);
  s2_ += delta * (x - m_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.m_ - m_;
  const double nt = na + nb;
  m_ += delta * nb / nt;
  s2_ += other.s2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::variance() const noexcept {
  return n_ ? s2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

RecentWindow::RecentWindow(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {
  data_.reserve(capacity_);
}

void RecentWindow::add(double x) {
  if (data_.size() < capacity_) {
    data_.push_back(x);
  } else {
    data_[head_] = x;
    head_ = (head_ + 1) % capacity_;
  }
}

void RecentWindow::reset() noexcept {
  data_.clear();
  head_ = 0;
}

double RecentWindow::gmean() const noexcept {
  return util::gmean(std::span<const double>(data_));
}

double RecentWindow::mean() const noexcept {
  return util::mean(std::span<const double>(data_));
}

}  // namespace dicer::util
