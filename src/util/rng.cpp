#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace dicer::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() noexcept {
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Xoshiro256::lognormal_median(double median, double sigma) noexcept {
  return median * std::exp(sigma * normal());
}

bool Xoshiro256::bernoulli(double p) noexcept { return uniform() < p; }

Xoshiro256 Xoshiro256::split() noexcept { return Xoshiro256(next()); }

}  // namespace dicer::util
