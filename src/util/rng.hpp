// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic element of the reproduction (catalog calibration jitter,
// workload sampling, synthetic address streams) draws from Xoshiro256**
// seeded through SplitMix64, so whole-figure experiments are reproducible
// bit-for-bit from a single seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dicer::util {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Also a fine standalone generator for hashing-style use.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality, 256-bit state PRNG.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0xD1CE5EEDULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;
  /// Standard normal via Box-Muller (no cached spare: stateless per call
  /// pair, slightly wasteful but branch-free across save/restore).
  double normal() noexcept;
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Log-normal such that the *median* of the distribution is `median`.
  double lognormal_median(double median, double sigma) noexcept;
  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Derive an independent child stream (for per-app streams).
  Xoshiro256 split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace dicer::util
