// Fixed-width ASCII table rendering for bench/example stdout output,
// mirroring the rows/series of the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace dicer::util {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders an aligned ASCII table with a
/// header separator. All rows are padded to the widest cell per column.
class TextTable {
 public:
  /// Set header labels; alignment defaults to right except the first column.
  void set_header(std::vector<std::string> cols);
  void set_alignment(std::vector<Align> aligns);

  void add_row(std::vector<std::string> cells);
  /// Leading label + %.6g-formatted numeric cells.
  void add_row(const std::string& label, const std::vector<double>& cells,
               int decimals = -1);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Render the table to a string (trailing newline included).
  std::string str() const;
  /// Render to stdout.
  void print() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// A titled section header ("== Figure 6: ... ==") for bench stdout.
std::string section(const std::string& title);

}  // namespace dicer::util
