// Minimal CSV emission. Every bench binary writes its figure/table data both
// to stdout (human-readable table) and to a CSV file next to the binary so
// the series can be re-plotted.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace dicer::util {

/// Quote a CSV field if needed (commas, quotes, newlines).
std::string csv_escape(std::string_view field);

/// Row-at-a-time CSV writer with RAII file handling.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row. Call at most once, before any data row.
  void header(std::initializer_list<std::string_view> cols);
  void header(const std::vector<std::string>& cols);

  /// Append one row of string cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: format doubles with full round-trip precision.
  void row_numeric(const std::vector<double>& cells);

  /// Mixed row: a leading label plus numeric cells.
  void row_labeled(std::string_view label, const std::vector<double>& cells);

  const std::string& path() const noexcept { return path_; }
  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Format a double compactly (%.6g) — for table cells.
std::string fmt(double x);
/// Format a double with fixed decimals.
std::string fmt_fixed(double x, int decimals);

}  // namespace dicer::util
