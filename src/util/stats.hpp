// Statistics used throughout the evaluation: the paper reports geometric
// means (Figs 6, 8), a harmonic-mean utilisation metric (Eq. 1), cumulative
// distributions (Figs 1, 2) and percentiles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dicer::util {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Geometric mean. All inputs must be > 0; returns 0 for an empty span.
double gmean(std::span<const double> xs) noexcept;

/// Harmonic mean. All inputs must be > 0; returns 0 for an empty span.
double hmean(std::span<const double> xs) noexcept;

/// Population standard deviation. Returns 0 for fewer than 2 samples.
double stddev(std::span<const double> xs) noexcept;

/// Sample minimum / maximum. Return 0 for an empty span.
double min(std::span<const double> xs) noexcept;
double max(std::span<const double> xs) noexcept;

/// Linear-interpolation percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;     ///< sample value
  double fraction = 0.0;  ///< fraction of samples <= value, in [0, 1]
};

/// Empirical CDF of the samples (sorted ascending, one point per sample).
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

/// Fraction of samples <= threshold (the quantity Figs 1-2 plot per x tick).
double cdf_at(std::span<const double> xs, double threshold) noexcept;

/// Fraction of samples satisfying >= threshold (SLO-style conformance).
double fraction_at_least(std::span<const double> xs,
                         double threshold) noexcept;

/// Streaming accumulator for scalar series (used by per-period telemetry).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Population variance / standard deviation (Welford).
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double m_ = 0.0;   // Welford running mean
  double s2_ = 0.0;  // Welford running sum of squared deviations
};

/// Fixed-capacity ring of the most recent N samples; the paper's phase
/// detector (Eq. 2) needs the geometric mean of the last three monitoring
/// periods' bandwidth.
class RecentWindow {
 public:
  explicit RecentWindow(std::size_t capacity);

  void add(double x);
  void reset() noexcept;

  std::size_t size() const noexcept { return data_.size(); }
  bool full() const noexcept { return data_.size() == capacity_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Geometric mean of the stored samples; 0 if empty or any sample <= 0.
  double gmean() const noexcept;
  double mean() const noexcept;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // insertion slot once full
  std::vector<double> data_;
};

}  // namespace dicer::util
