// RDT capability discovery — the emulated counterpart of
// pqos_cap_get() / pqos_l3ca_get() in intel-cmt-cat.
//
// The paper (§3.3) builds DICER on the Intel RDT Software Package v1.1.0 and
// uses CMT (occupancy monitoring), CAT (way allocation) and MBM (bandwidth
// monitoring); their server lacks MBA, so DICER proper never throttles
// bandwidth. The emulation reports the same feature set by default and the
// MBA bit can be switched on for the future-work extension policy.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"

namespace dicer::rdt {

struct Capability {
  // --- CAT (L3 Cache Allocation Technology) ---
  bool cat_supported = true;
  unsigned cat_ways = 20;          ///< capacity bitmask length
  unsigned cat_num_clos = 16;      ///< classes of service (Broadwell: 16)
  unsigned cat_min_ways = 1;       ///< minimum contiguous ways per mask

  // --- CMT (Cache Monitoring Technology) ---
  bool cmt_supported = true;
  std::uint64_t llc_size_bytes = 25ull * 1024 * 1024;
  unsigned num_rmids = 88;         ///< plenty for 10 cores

  // --- MBM (Memory Bandwidth Monitoring) ---
  bool mbm_supported = true;

  // --- MBA (Memory Bandwidth Allocation) ---
  bool mba_supported = false;      ///< matches the paper's server
  unsigned mba_granularity_pct = 10;

  /// Derive a capability record from a simulated machine (the analogue of
  /// probing CPUID on real hardware).
  static Capability probe(const sim::Machine& machine,
                          bool enable_mba = false) {
    Capability cap;
    cap.cat_ways = machine.num_ways();
    cap.llc_size_bytes = machine.config().llc.size_bytes;
    cap.mba_supported = enable_mba;
    return cap;
  }
};

}  // namespace dicer::rdt
