// MBA controller — emulated pqos_mba_set(). The paper's server lacks MBA
// (§3.3), so core DICER never uses this; it exists for the future-work
// extension (§6: "We are extending DICER to explicitly, dynamically control
// the memory bandwidth, using Intel's MBA") implemented in
// policy/dicer_mba.hpp.
//
// Real MBA exposes a per-CLOS throttle in coarse steps (10%..100%); we
// keep the CLOS indirection and granularity quantisation.
#pragma once

#include <vector>

#include "rdt/capability.hpp"
#include "sim/machine.hpp"

namespace dicer::rdt {

class MbaController {
 public:
  /// Throws std::runtime_error if the capability lacks MBA.
  MbaController(sim::Machine& machine, const Capability& capability);

  /// Set a CLOS throttle percentage (quantised down to the granularity,
  /// clamped to [granularity, 100]).
  void set_clos_throttle(unsigned clos, unsigned percent);
  unsigned clos_throttle(unsigned clos) const;

  /// Associate a core with a CLOS for MBA purposes (hardware shares the
  /// association with CAT; policies keep them in sync).
  void associate(unsigned core, unsigned clos);
  unsigned clos_of(unsigned core) const;

  void reset();

 private:
  void apply(unsigned core);

  sim::Machine& machine_;
  Capability cap_;
  std::vector<unsigned> throttle_pct_;  ///< per CLOS
  std::vector<unsigned> assoc_;         ///< core -> CLOS
};

}  // namespace dicer::rdt
