#include "rdt/mba.hpp"

#include <algorithm>
#include <stdexcept>

namespace dicer::rdt {

MbaController::MbaController(sim::Machine& machine,
                             const Capability& capability)
    : machine_(machine), cap_(capability) {
  if (!cap_.mba_supported) {
    throw std::runtime_error(
        "MbaController: MBA not supported by platform (the paper's server "
        "lacks it too; probe with enable_mba=true to emulate it)");
  }
  if (cap_.mba_granularity_pct == 0 || cap_.mba_granularity_pct > 100) {
    throw std::invalid_argument("MbaController: bad MBA granularity");
  }
  throttle_pct_.assign(cap_.cat_num_clos, 100);
  assoc_.assign(machine_.num_cores(), 0);
}

void MbaController::set_clos_throttle(unsigned clos, unsigned percent) {
  if (clos >= throttle_pct_.size()) {
    throw std::out_of_range("MbaController: CLOS out of range");
  }
  const unsigned gran = cap_.mba_granularity_pct;
  unsigned quantised = percent / gran * gran;  // hardware rounds down
  quantised = std::clamp(quantised, gran, 100u);
  throttle_pct_[clos] = quantised;
  for (unsigned core = 0; core < assoc_.size(); ++core) {
    if (assoc_[core] == clos) apply(core);
  }
}

unsigned MbaController::clos_throttle(unsigned clos) const {
  if (clos >= throttle_pct_.size()) {
    throw std::out_of_range("MbaController: CLOS out of range");
  }
  return throttle_pct_[clos];
}

void MbaController::associate(unsigned core, unsigned clos) {
  if (core >= assoc_.size()) {
    throw std::out_of_range("MbaController: core out of range");
  }
  if (clos >= throttle_pct_.size()) {
    throw std::out_of_range("MbaController: CLOS out of range");
  }
  assoc_[core] = clos;
  apply(core);
}

unsigned MbaController::clos_of(unsigned core) const {
  if (core >= assoc_.size()) {
    throw std::out_of_range("MbaController: core out of range");
  }
  return assoc_[core];
}

void MbaController::reset() {
  std::fill(throttle_pct_.begin(), throttle_pct_.end(), 100u);
  std::fill(assoc_.begin(), assoc_.end(), 0u);
  for (unsigned core = 0; core < assoc_.size(); ++core) apply(core);
}

void MbaController::apply(unsigned core) {
  machine_.set_mem_throttle(core,
                            static_cast<double>(throttle_pct_[assoc_[core]]) /
                                100.0);
}

}  // namespace dicer::rdt
