// CMT / MBM / IPC monitoring — the emulated counterpart of
// pqos_mon_start() / pqos_mon_poll() plus the perf IPC counters DICER
// reads each monitoring period.
//
// Real RDT tags traffic with a Resource Monitoring ID (RMID) per core and
// exposes, per RMID: LLC occupancy (CMT) and cumulative local memory
// traffic (MBM). DICER additionally samples instructions/cycles. This
// layer mirrors the poll/delta shape of pqos: counters are cumulative and
// each poll reports the delta since the previous poll of that group.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rdt/capability.hpp"
#include "sim/machine.hpp"

namespace dicer::trace {
class Tracer;
}

namespace dicer::rdt {

/// One poll's worth of data for one monitored core.
struct MonSample {
  double interval_sec = 0.0;        ///< wall (simulated) time since last poll
  double llc_occupancy_bytes = 0.0; ///< CMT: instantaneous occupancy
  double mbm_bytes = 0.0;           ///< MBM: memory traffic in the interval
  double mbm_bytes_per_sec = 0.0;   ///< MBM traffic rate
  double instructions = 0.0;        ///< perf: retired in the interval
  double cycles = 0.0;              ///< perf: active cycles in the interval
  double ipc = 0.0;                 ///< instructions / cycles (0 if idle)
};

class Monitor {
 public:
  /// `tracer` (null = process-global) receives one Kind::kMonitorPoll
  /// event per poll_all() — a verbose kind, off by default.
  Monitor(const sim::Machine& machine, const Capability& capability,
          trace::Tracer* tracer = nullptr);

  /// Start monitoring a core (allocates an RMID). Idempotent.
  void track(unsigned core);
  void untrack(unsigned core);
  bool tracked(unsigned core) const;

  /// Poll one core: returns the delta since this core's previous poll.
  /// The first poll after track() covers everything since track() time.
  MonSample poll(unsigned core);

  /// Poll all tracked cores at once (one coherent snapshot).
  std::vector<std::pair<unsigned, MonSample>> poll_all();

  /// Sum of mbm_bytes_per_sec across all tracked cores at the last
  /// poll_all() — DICER's "MemBW" in Listing 1.
  double last_total_mbm_bytes_per_sec() const noexcept { return last_total_; }

 private:
  struct Baseline {
    double time_sec = 0.0;
    double instructions = 0.0;
    double cycles = 0.0;
    double mem_bytes = 0.0;
  };

  MonSample sample_from(unsigned core, Baseline& base);

  const sim::Machine& machine_;
  Capability cap_;
  trace::Tracer* tracer_;
  std::vector<std::optional<Baseline>> baselines_;  ///< per core, if tracked
  double last_total_ = 0.0;
};

}  // namespace dicer::rdt
