// CAT controller — the emulated counterpart of pqos_l3ca_set() and
// pqos_alloc_assoc_set() in intel-cmt-cat.
//
// Allocation on real hardware is indirect: software programs a *capacity
// bitmask* per Class of Service (CLOS) and then associates each logical
// core with a CLOS. This layer reproduces that indirection plus the
// hardware's validation rules (non-empty, contiguous masks; bounded CLOS
// ids), and pushes the resolved per-core mask down into the simulated
// machine. DICER and all baseline policies actuate exclusively through
// this interface, so they would port to real pqos unchanged.
#pragma once

#include <vector>

#include "rdt/capability.hpp"
#include "sim/cache/way_mask.hpp"
#include "sim/machine.hpp"

namespace dicer::rdt {

class CatController {
 public:
  /// Binds to a machine. All CLOS start with the full mask and every core
  /// is associated with CLOS 0, like hardware after reset.
  CatController(sim::Machine& machine, const Capability& capability);

  const Capability& capability() const noexcept { return cap_; }

  /// Program a CLOS mask. Enforces CAT rules: CLOS id in range, mask
  /// non-empty, contiguous, within the cache's ways and at least
  /// cat_min_ways wide. Takes effect immediately on associated cores.
  void set_clos_mask(unsigned clos, sim::WayMask mask);
  sim::WayMask clos_mask(unsigned clos) const;

  /// Associate a core with a CLOS (pqos_alloc_assoc_set).
  void associate(unsigned core, unsigned clos);
  unsigned clos_of(unsigned core) const;

  /// Reset to hardware defaults: full masks, everything in CLOS 0.
  void reset();

  unsigned num_clos() const noexcept { return cap_.cat_num_clos; }
  unsigned num_ways() const noexcept { return cap_.cat_ways; }

 private:
  void apply(unsigned core);

  sim::Machine& machine_;
  Capability cap_;
  std::vector<sim::WayMask> clos_masks_;
  std::vector<unsigned> assoc_;  ///< core -> CLOS
};

}  // namespace dicer::rdt
