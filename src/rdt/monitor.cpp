#include "rdt/monitor.hpp"

#include <stdexcept>

#include "util/trace.hpp"

namespace dicer::rdt {

Monitor::Monitor(const sim::Machine& machine, const Capability& capability,
                 trace::Tracer* tracer)
    : machine_(machine), cap_(capability), tracer_(tracer),
      baselines_(machine.num_cores()) {
  if (!cap_.cmt_supported || !cap_.mbm_supported) {
    throw std::runtime_error("Monitor: CMT/MBM not supported by platform");
  }
}

void Monitor::track(unsigned core) {
  if (core >= baselines_.size()) {
    throw std::out_of_range("Monitor::track: core out of range");
  }
  if (baselines_[core]) return;
  std::size_t in_use = 0;
  for (const auto& b : baselines_) in_use += b.has_value() ? 1u : 0u;
  if (in_use >= cap_.num_rmids) {
    throw std::runtime_error("Monitor::track: out of RMIDs");
  }
  const auto& tel = machine_.telemetry(core);
  baselines_[core] = Baseline{machine_.time_sec(), tel.instructions,
                              tel.active_cycles, tel.mem_bytes};
}

void Monitor::untrack(unsigned core) {
  if (core >= baselines_.size()) {
    throw std::out_of_range("Monitor::untrack: core out of range");
  }
  baselines_[core].reset();
}

bool Monitor::tracked(unsigned core) const {
  if (core >= baselines_.size()) {
    throw std::out_of_range("Monitor::tracked: core out of range");
  }
  return baselines_[core].has_value();
}

MonSample Monitor::sample_from(unsigned core, Baseline& base) {
  const auto& tel = machine_.telemetry(core);
  MonSample s;
  s.interval_sec = machine_.time_sec() - base.time_sec;
  s.llc_occupancy_bytes = tel.occupancy_bytes;
  s.mbm_bytes = tel.mem_bytes - base.mem_bytes;
  s.mbm_bytes_per_sec =
      s.interval_sec > 0.0 ? s.mbm_bytes / s.interval_sec : 0.0;
  s.instructions = tel.instructions - base.instructions;
  s.cycles = tel.active_cycles - base.cycles;
  s.ipc = s.cycles > 0.0 ? s.instructions / s.cycles : 0.0;
  base = Baseline{machine_.time_sec(), tel.instructions, tel.active_cycles,
                  tel.mem_bytes};
  return s;
}

MonSample Monitor::poll(unsigned core) {
  if (core >= baselines_.size() || !baselines_[core]) {
    throw std::logic_error("Monitor::poll: core not tracked");
  }
  return sample_from(core, *baselines_[core]);
}

std::vector<std::pair<unsigned, MonSample>> Monitor::poll_all() {
  std::vector<std::pair<unsigned, MonSample>> out;
  last_total_ = 0.0;
  for (unsigned core = 0; core < baselines_.size(); ++core) {
    if (!baselines_[core]) continue;
    out.emplace_back(core, sample_from(core, *baselines_[core]));
    last_total_ += out.back().second.mbm_bytes_per_sec;
  }
  auto& tr = trace::resolve(tracer_);
  if (tr.enabled(trace::Kind::kMonitorPoll) && !out.empty()) {
    std::vector<trace::Field> fields;
    fields.reserve(2 + 2 * out.size());
    fields.emplace_back("cores", out.size());
    fields.emplace_back("total_bw_bps", last_total_);
    for (const auto& [core, mon] : out) {
      fields.emplace_back("ipc_c" + std::to_string(core), mon.ipc);
      fields.emplace_back("occ_c" + std::to_string(core),
                          mon.llc_occupancy_bytes);
    }
    tr.emit(trace::Kind::kMonitorPoll, machine_.time_sec(),
            std::move(fields));
  }
  return out;
}

}  // namespace dicer::rdt
