#include "rdt/cat.hpp"

#include <stdexcept>
#include <string>

#include "util/log.hpp"

namespace dicer::rdt {

CatController::CatController(sim::Machine& machine,
                             const Capability& capability)
    : machine_(machine), cap_(capability) {
  if (!cap_.cat_supported) {
    throw std::runtime_error("CatController: CAT not supported by platform");
  }
  if (cap_.cat_ways != machine_.num_ways()) {
    throw std::invalid_argument(
        "CatController: capability way count does not match machine");
  }
  clos_masks_.assign(cap_.cat_num_clos, sim::WayMask::full(cap_.cat_ways));
  assoc_.assign(machine_.num_cores(), 0);
  for (unsigned c = 0; c < machine_.num_cores(); ++c) apply(c);
}

void CatController::set_clos_mask(unsigned clos, sim::WayMask mask) {
  if (clos >= cap_.cat_num_clos) {
    throw std::out_of_range("CatController: CLOS " + std::to_string(clos) +
                            " out of range");
  }
  if (mask.empty()) {
    throw std::invalid_argument("CatController: empty capacity bitmask");
  }
  if (!mask.contiguous()) {
    throw std::invalid_argument(
        "CatController: CAT requires a contiguous capacity bitmask, got " +
        mask.to_string());
  }
  if (!sim::WayMask::full(cap_.cat_ways).contains(mask)) {
    throw std::invalid_argument(
        "CatController: mask exceeds the cache's ways: " + mask.to_string());
  }
  if (mask.count() < cap_.cat_min_ways) {
    throw std::invalid_argument("CatController: mask narrower than " +
                                std::to_string(cap_.cat_min_ways) + " ways");
  }
  clos_masks_[clos] = mask;
  DICER_DEBUG << "CAT: CLOS" << clos << " <- " << mask.to_string();
  for (unsigned core = 0; core < assoc_.size(); ++core) {
    if (assoc_[core] == clos) apply(core);
  }
}

sim::WayMask CatController::clos_mask(unsigned clos) const {
  if (clos >= cap_.cat_num_clos) {
    throw std::out_of_range("CatController: CLOS out of range");
  }
  return clos_masks_[clos];
}

void CatController::associate(unsigned core, unsigned clos) {
  if (core >= assoc_.size()) {
    throw std::out_of_range("CatController: core out of range");
  }
  if (clos >= cap_.cat_num_clos) {
    throw std::out_of_range("CatController: CLOS out of range");
  }
  assoc_[core] = clos;
  apply(core);
}

unsigned CatController::clos_of(unsigned core) const {
  if (core >= assoc_.size()) {
    throw std::out_of_range("CatController: core out of range");
  }
  return assoc_[core];
}

void CatController::reset() {
  for (auto& m : clos_masks_) m = sim::WayMask::full(cap_.cat_ways);
  for (auto& a : assoc_) a = 0;
  for (unsigned c = 0; c < assoc_.size(); ++c) apply(c);
}

void CatController::apply(unsigned core) {
  machine_.set_fill_mask(core, clos_masks_[assoc_[core]]);
}

}  // namespace dicer::rdt
