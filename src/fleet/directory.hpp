// Per-application placement signals.
//
// Placement needs to predict, cheaply and per candidate machine, how well
// a tenant would run with some slice of the LLC — exactly what a miss-ratio
// curve buys. The directory distils each catalog app's profile into an
// ipc-vs-ways table (solo steady state, the closed-form evaluator — a few
// microseconds per point) plus the footprint/bandwidth scalars the best-fit
// scorer combines. For trace-derived apps the underlying curves come from
// the single-pass sampled reuse-distance profiler
// (`MrcProfilerMode::kSampled`, ~0.9 ms/app, see sim/core/trace_apps.hpp),
// so a fleet over `trace_augmented_catalog()` places straight off sampled
// MRC profiles; the analytic catalog apps evaluate their calibrated MRCs
// directly. Built once per fleet, immutable afterwards, shared read-only
// across stepping shards.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/core/catalog.hpp"
#include "sim/machine.hpp"

namespace dicer::fleet {

/// What the placement engines know about one application.
struct AppSignal {
  const sim::AppProfile* profile = nullptr;
  /// Dense directory-local id in [0, AppDirectory::size()) — the key the
  /// PlacementIndex per-machine score caches are bucketed by.
  std::size_t id = 0;
  /// Solo steady-state IPC with w ways, at index w-1 (w in 1..llc.ways).
  std::vector<double> ipc_by_ways;
  /// Solo achieved memory bandwidth with w ways, at index w-1 (bytes/s).
  std::vector<double> bw_by_ways;
  double ipc_alone = 0.0;        ///< full-LLC solo IPC (the QoS reference)
  double footprint_bytes = 0.0;  ///< largest phase footprint (reuse mass)
  /// Ways at which the app reaches `hp_fraction` of its solo IPC — the
  /// partition an HP of this app effectively claims under DICER.
  unsigned ways_needed = 1;

  /// ipc_by_ways at a fractional way count (linear between points,
  /// clamped to [1, ways]).
  double ipc_at_ways(double ways) const noexcept;
};

class AppDirectory {
 public:
  /// Evaluates every catalog app against `machine` geometry. `hp_fraction`
  /// sets the ways_needed threshold (default 0.95 — DICER's "close to
  /// solo" operating point).
  AppDirectory(const sim::AppCatalog& catalog,
               const sim::MachineConfig& machine, double hp_fraction = 0.95);

  /// Throws std::out_of_range for an app the catalog did not contain.
  const AppSignal& signal(const std::string& name) const;

  const sim::MachineConfig& machine() const noexcept { return machine_; }
  std::size_t size() const noexcept { return signals_.size(); }

 private:
  sim::MachineConfig machine_;
  std::map<std::string, AppSignal> signals_;
};

}  // namespace dicer::fleet
