// fleet::Dashboard — renders a terminal "fleet top" frame from the
// per-epoch metrics stream.
//
// The dashboard is a pure fold over EpochMetrics rows: feed it one row per
// epoch (plus the per-machine stats for the worst-K table) and it returns a
// frame string. It keeps a sliding history for the sparklines and a burn
// window for SLO alerting, but touches no global state and does no I/O —
// examples/fleet_top owns the screen, tests just assert on frames.
//
// Burn-rate alerting follows the SRE error-budget idiom: with an SLO
// budget of `slo_budget` (the violation rate a healthy fleet is allowed),
//
//   burn = mean(slo_violation_rate_occupied over the last burn_window
//               epochs) / slo_budget
//
// and an ALERT line fires while burn >= burn_alert (e.g. 2x means the
// fleet is eating its error budget at twice the sustainable pace).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "fleet/cluster.hpp"

namespace dicer::fleet {

/// Unicode block-element sparkline of `values` scaled to [lo, hi]
/// (lo/hi from the data when equal). Empty input renders "".
std::string sparkline(std::span<const double> values);

struct DashboardConfig {
  unsigned top_k = 5;         ///< machines in the worst-by-slowdown table
  unsigned history = 48;      ///< sparkline length (epochs)
  unsigned burn_window = 5;   ///< epochs averaged for the burn rate
  double slo_budget = 0.05;   ///< tolerated occupied SLO-violation rate
  double burn_alert = 2.0;    ///< alert when burn >= this multiple
  bool ansi = false;          ///< colour + screen-clear escape codes
};

class Dashboard {
 public:
  explicit Dashboard(const DashboardConfig& config = {});

  /// Fold one epoch in and return the rendered frame. `stats` is the
  /// cluster's last_epoch_stats() (may be empty: the worst-K table is
  /// then omitted).
  std::string render(const EpochMetrics& m,
                     std::span<const MachineEpochStat> stats);

  /// Error-budget burn over the current window (0 until the first row).
  double burn_rate() const noexcept { return burn_; }
  /// Whether the ALERT line is currently firing.
  bool alert_active() const noexcept { return alert_active_; }
  /// Epochs (not edges) during which the alert fired so far.
  std::uint64_t alerts_fired() const noexcept { return alerts_fired_; }

  const DashboardConfig& config() const noexcept { return config_; }

 private:
  void push(std::deque<double>& series, double v);

  DashboardConfig config_;
  std::deque<double> efu_hist_;
  std::deque<double> slowdown_p99_hist_;
  std::deque<double> violation_hist_;  ///< occupied rate, burn_window long
  double burn_ = 0.0;
  bool alert_active_ = false;
  std::uint64_t alerts_fired_ = 0;
};

}  // namespace dicer::fleet
