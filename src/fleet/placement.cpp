#include "fleet/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace dicer::fleet {

std::vector<MachineView> index_views(const PlacementIndex& index) {
  std::vector<MachineView> out(index.size());
  for (unsigned m = 0; m < index.size(); ++m) {
    MachineView& v = out[m];
    v.index = m;
    v.hp = index.hp(m);
    for (unsigned c = 1; c <= index.be_slots(); ++c) {
      if (const auto* t = index.tenant(m, c)) v.tenants.push_back(t);
    }
    v.free_cores = index.free_cores(m);
  }
  return out;
}

std::optional<unsigned> PlacementEngine::place_indexed(
    const sim::AppProfile& app, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  // Generic fallback: materialise the views and run the full scan. Every
  // shipped engine overrides this with its incremental resolution.
  auto views = index_views(index);
  if (exclude && *exclude < views.size()) views[*exclude].free_cores = 0;
  return place(app, views);
}

std::optional<unsigned> RandomPlacement::place(
    const sim::AppProfile& /*app*/, const std::vector<MachineView>& views) {
  open_scratch_.clear();
  for (const auto& v : views) {
    if (v.free_cores > 0) open_scratch_.push_back(v.index);
  }
  if (open_scratch_.empty()) return std::nullopt;
  return open_scratch_[rng_.below(open_scratch_.size())];
}

std::optional<unsigned> RandomPlacement::place_indexed(
    const sim::AppProfile& /*app*/, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  // One below(open_count) draw resolved through the order-statistics tree:
  // the k-th open machine in index order is exactly open_scratch_[k] of the
  // full scan, and skipping an open excluded machine shifts ranks past it
  // by one — same candidate set, same single RNG draw.
  const bool excl_open =
      exclude && *exclude < index.size() && index.is_open(*exclude);
  const std::uint64_t count = index.open_count() - (excl_open ? 1 : 0);
  if (count == 0) return std::nullopt;
  std::uint64_t k = rng_.below(count);
  if (excl_open && k >= index.open_rank(*exclude)) ++k;
  return index.nth_open(k);
}

std::optional<unsigned> LeastLoadedPlacement::place(
    const sim::AppProfile& /*app*/, const std::vector<MachineView>& views) {
  std::optional<unsigned> best;
  std::size_t best_load = 0;
  for (const auto& v : views) {
    if (v.free_cores == 0) continue;
    if (!best || v.tenants.size() < best_load) {
      best = v.index;
      best_load = v.tenants.size();
    }
  }
  return best;
}

std::optional<unsigned> LeastLoadedPlacement::place_indexed(
    const sim::AppProfile& /*app*/, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  // Under uniform per-machine capacity, fewest tenants == most free cores,
  // and the full scan's first-strictly-better tie-break == lowest index —
  // the head of the highest non-empty free-core bucket.
  return index.least_loaded(exclude);
}

double MrcScoringBase::predict(
    const AppSignal& hp_sig, const std::vector<const AppSignal*>& bes) const {
  const auto& machine = dir_->machine();
  const auto total_ways = machine.llc.ways;

  // The HP holds the partition it needs to stay near solo IPC (DICER's
  // steady state); everything else is the BE pool.
  const unsigned hp_ways =
      std::clamp(hp_sig.ways_needed, 1u, total_ways - 1u);
  const double be_ways = static_cast<double>(total_ways - hp_ways);

  // The BE pool splits in proportion to MRC footprint: a streaming app
  // with no reuse mass takes (and gains from) almost nothing, a deep-knee
  // app claims most of the pool. Footprint-less mixes fall back to an
  // even split.
  double footprint_sum = 0.0;
  for (const auto* s : bes) footprint_sum += s->footprint_bytes;

  pairs_scratch_.clear();
  double demand = hp_sig.bw_by_ways[hp_ways - 1];
  pairs_scratch_.push_back({hp_sig.ipc_alone, hp_sig.ipc_at_ways(hp_ways)});
  for (const auto* s : bes) {
    const double share =
        footprint_sum > 0.0
            ? be_ways * (s->footprint_bytes / footprint_sum)
            : be_ways / static_cast<double>(bes.size());
    const double w = std::clamp(share, 1.0, be_ways);
    pairs_scratch_.push_back({s->ipc_alone, s->ipc_at_ways(w)});
    demand += s->bw_by_ways[static_cast<std::size_t>(w) - 1];
  }

  // Oversubscribing the memory link slows everyone proportionally —
  // a crude but monotone stand-in for the saturating-link model.
  const double capacity = machine.link.capacity_bytes_per_sec;
  const double link_factor =
      demand > capacity && demand > 0.0 ? capacity / demand : 1.0;
  for (auto& p : pairs_scratch_) p.colocated *= link_factor;

  return metrics::effective_utilisation(pairs_scratch_);
}

double MrcScoringBase::delta_for_view(const MachineView& view,
                                      const AppSignal& app_sig) const {
  const AppSignal& hp_sig = dir_->signal(view.hp->name);
  bes_scratch_.clear();
  for (const auto* t : view.tenants) {
    bes_scratch_.push_back(&dir_->signal(t->name));
  }
  const double before = predict(hp_sig, bes_scratch_);
  bes_scratch_.push_back(&app_sig);
  return predict(hp_sig, bes_scratch_) - before;
}

double MrcScoringBase::delta_indexed(PlacementIndex& index, unsigned machine,
                                     const AppSignal& app_sig) const {
  // Dirty-score protocol: a clean (machine, app) pair is a cached double
  // — bit-identical to recomputation because predict() is pure. A dirty
  // machine recomputes at most one "before" (shared by every app scored
  // against this tenant set) plus one "after" per distinct arriving app.
  if (index.has_delta(machine, app_sig.id)) {
    return index.delta(machine, app_sig.id);
  }
  const AppSignal& hp_sig = index.hp_signal(machine);
  index.tenant_signals(machine, bes_scratch_);
  double before;
  if (index.has_before(machine)) {
    before = index.before(machine);
  } else {
    before = predict(hp_sig, bes_scratch_);
    index.set_before(machine, before);
  }
  bes_scratch_.push_back(&app_sig);
  const double delta = predict(hp_sig, bes_scratch_) - before;
  index.set_delta(machine, app_sig.id, delta);
  return delta;
}

double MrcBestFitPlacement::score(const sim::AppProfile& app,
                                  const MachineView& view) const {
  bes_scratch_.clear();
  for (const auto* t : view.tenants) {
    bes_scratch_.push_back(&dir_->signal(t->name));
  }
  bes_scratch_.push_back(&dir_->signal(app.name));
  return predict(dir_->signal(view.hp->name), bes_scratch_);
}

std::optional<unsigned> MrcBestFitPlacement::place(
    const sim::AppProfile& app, const std::vector<MachineView>& views) {
  // Greedy on the *marginal* EFU: the fleet metric is the mean of
  // per-machine EFUs and placing on machine m changes only m's term, so
  // the fleet-optimal greedy picks the machine whose predicted EFU drops
  // least (or rises most) when the tenant joins. Maximising the absolute
  // post-placement score instead would chase machines that score well
  // regardless of the tenant.
  const AppSignal& app_sig = dir_->signal(app.name);
  std::optional<unsigned> best;
  double best_delta = 0.0;
  for (const auto& v : views) {
    if (v.free_cores == 0) continue;
    const double delta = delta_for_view(v, app_sig);
    if (!best || delta > best_delta) {
      best = v.index;
      best_delta = delta;
    }
  }
  return best;
}

std::optional<unsigned> MrcBestFitPlacement::place_indexed(
    const sim::AppProfile& app, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  const AppSignal& app_sig = dir_->signal(app.name);
  std::optional<unsigned> best;
  double best_delta = 0.0;
  for (unsigned m = 0; m < index.size(); ++m) {
    if (index.free_cores(m) == 0) continue;
    if (exclude && *exclude == m) continue;
    const double delta = delta_indexed(index, m, app_sig);
    if (!best || delta > best_delta) {
      best = m;
      best_delta = delta;
    }
  }
  return best;
}

template <typename DeltaFn>
std::optional<unsigned> MrcP2cPlacement::pick(
    const std::vector<unsigned>& draws, DeltaFn&& delta_of) {
  std::optional<unsigned> best;
  double best_delta = 0.0;
  for (std::size_t j = 0; j < draws.size(); ++j) {
    const unsigned m = draws[j];
    bool repeat = false;
    for (std::size_t i = 0; i < j; ++i) {
      if (draws[i] == m) {
        repeat = true;
        break;
      }
    }
    if (repeat) continue;
    const double delta = delta_of(m);
    if (!best || delta > best_delta) {
      best = m;
      best_delta = delta;
    }
  }
  return best;
}

std::optional<unsigned> MrcP2cPlacement::place(
    const sim::AppProfile& app, const std::vector<MachineView>& views) {
  const AppSignal& app_sig = dir_->signal(app.name);
  open_scratch_.clear();
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (views[i].free_cores > 0) {
      open_scratch_.push_back(static_cast<unsigned>(i));
    }
  }
  if (open_scratch_.empty()) return std::nullopt;
  draw_scratch_.clear();
  for (unsigned j = 0; j < choices_; ++j) {
    draw_scratch_.push_back(
        views[open_scratch_[rng_.below(open_scratch_.size())]].index);
  }
  // Candidates scored in draw order; with views in index order this is the
  // same draw -> machine mapping (and RNG consumption) as the indexed path.
  return pick(draw_scratch_, [&](unsigned m) {
    for (const auto& v : views) {
      if (v.index == m) return delta_for_view(v, app_sig);
    }
    throw std::logic_error("MrcP2cPlacement: drawn machine left the views");
  });
}

std::optional<unsigned> MrcP2cPlacement::place_indexed(
    const sim::AppProfile& app, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  const AppSignal& app_sig = dir_->signal(app.name);
  const bool excl_open =
      exclude && *exclude < index.size() && index.is_open(*exclude);
  const std::uint64_t count = index.open_count() - (excl_open ? 1 : 0);
  if (count == 0) return std::nullopt;
  draw_scratch_.clear();
  for (unsigned j = 0; j < choices_; ++j) {
    std::uint64_t k = rng_.below(count);
    if (excl_open && k >= index.open_rank(*exclude)) ++k;
    draw_scratch_.push_back(index.nth_open(k));
  }
  return pick(draw_scratch_, [&](unsigned m) {
    return delta_indexed(index, m, app_sig);
  });
}

std::unique_ptr<PlacementEngine> make_placement(const std::string& name,
                                                const AppDirectory& directory,
                                                std::uint64_t seed) {
  if (name == "random") return std::make_unique<RandomPlacement>(seed);
  if (name == "least-loaded") return std::make_unique<LeastLoadedPlacement>();
  if (name == "mrc") return std::make_unique<MrcBestFitPlacement>(directory);
  if (name == "mrc-p2c") {
    return std::make_unique<MrcP2cPlacement>(directory, seed);
  }
  throw std::invalid_argument("make_placement: unknown engine '" + name +
                              "' (try random, least-loaded, mrc, mrc-p2c)");
}

std::vector<std::string> known_placements() {
  return {"random", "least-loaded", "mrc", "mrc-p2c"};
}

}  // namespace dicer::fleet
