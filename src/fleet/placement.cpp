#include "fleet/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace dicer::fleet {

namespace {

/// Below this many machines per shard the scan is cheaper than the task
/// hand-off, so plan_shards collapses to one range (the serial path).
/// Small on purpose: modest test fleets must exercise the parallel
/// machinery, and over-sharding never changes a decision byte.
constexpr std::size_t kMinMachinesPerShard = 16;

}  // namespace

std::vector<MachineView> index_views(const PlacementIndex& index) {
  std::vector<MachineView> out(index.size());
  for (unsigned m = 0; m < index.size(); ++m) {
    MachineView& v = out[m];
    v.index = m;
    v.hp = index.hp(m);
    for (unsigned c = 1; c <= index.be_slots(); ++c) {
      if (const auto* t = index.tenant(m, c)) v.tenants.push_back(t);
    }
    v.free_cores = index.free_cores(m);
  }
  return out;
}

std::optional<unsigned> PlacementEngine::place_indexed(
    const sim::AppProfile& app, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  // Generic fallback: materialise the views and run the full scan. Every
  // shipped engine overrides this with its incremental resolution.
  auto views = index_views(index);
  if (exclude && *exclude < views.size()) views[*exclude].free_cores = 0;
  return place(app, views);
}

void PlacementEngine::place_arrivals(
    const std::vector<const sim::AppProfile*>& apps, PlacementIndex& index,
    const CommitFn& commit) {
  // The sequential reference semantics every override must reproduce byte
  // for byte: decide, commit, and only then look at the next arrival.
  for (std::size_t i = 0; i < apps.size(); ++i) {
    commit(i, place_indexed(*apps[i], index, std::nullopt));
  }
}

std::optional<unsigned> RandomPlacement::place(
    const sim::AppProfile& /*app*/, const std::vector<MachineView>& views) {
  open_scratch_.clear();
  for (const auto& v : views) {
    if (v.free_cores > 0) open_scratch_.push_back(v.index);
  }
  if (open_scratch_.empty()) return std::nullopt;
  return open_scratch_[rng_.below(open_scratch_.size())];
}

std::optional<unsigned> RandomPlacement::place_indexed(
    const sim::AppProfile& /*app*/, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  // One below(open_count) draw resolved through the order-statistics tree:
  // the k-th open machine in index order is exactly open_scratch_[k] of the
  // full scan, and skipping an open excluded machine shifts ranks past it
  // by one — same candidate set, same single RNG draw.
  const bool excl_open =
      exclude && *exclude < index.size() && index.is_open(*exclude);
  const std::uint64_t count = index.open_count() - (excl_open ? 1 : 0);
  if (count == 0) return std::nullopt;
  std::uint64_t k = rng_.below(count);
  if (excl_open && k >= index.open_rank(*exclude)) ++k;
  return index.nth_open(k);
}

std::optional<unsigned> LeastLoadedPlacement::place(
    const sim::AppProfile& /*app*/, const std::vector<MachineView>& views) {
  std::optional<unsigned> best;
  std::size_t best_load = 0;
  for (const auto& v : views) {
    if (v.free_cores == 0) continue;
    if (!best || v.tenants.size() < best_load) {
      best = v.index;
      best_load = v.tenants.size();
    }
  }
  return best;
}

std::optional<unsigned> LeastLoadedPlacement::place_indexed(
    const sim::AppProfile& /*app*/, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  // Under uniform per-machine capacity, fewest tenants == most free cores,
  // and the full scan's first-strictly-better tie-break == lowest index —
  // the head of the highest non-empty free-core bucket.
  return index.least_loaded(exclude);
}

double MrcScoringBase::predict(const AppSignal& hp_sig,
                               const std::vector<const AppSignal*>& bes,
                               Scratch& scratch) const {
  const auto& machine = dir_->machine();
  const auto total_ways = machine.llc.ways;

  // The HP holds the partition it needs to stay near solo IPC (DICER's
  // steady state); everything else is the BE pool.
  const unsigned hp_ways =
      std::clamp(hp_sig.ways_needed, 1u, total_ways - 1u);
  const double be_ways = static_cast<double>(total_ways - hp_ways);

  // The BE pool splits in proportion to MRC footprint: a streaming app
  // with no reuse mass takes (and gains from) almost nothing, a deep-knee
  // app claims most of the pool. Footprint-less mixes fall back to an
  // even split.
  double footprint_sum = 0.0;
  for (const auto* s : bes) footprint_sum += s->footprint_bytes;

  scratch.pairs.clear();
  double demand = hp_sig.bw_by_ways[hp_ways - 1];
  scratch.pairs.push_back({hp_sig.ipc_alone, hp_sig.ipc_at_ways(hp_ways)});
  for (const auto* s : bes) {
    const double share =
        footprint_sum > 0.0
            ? be_ways * (s->footprint_bytes / footprint_sum)
            : be_ways / static_cast<double>(bes.size());
    const double w = std::clamp(share, 1.0, be_ways);
    scratch.pairs.push_back({s->ipc_alone, s->ipc_at_ways(w)});
    demand += s->bw_by_ways[static_cast<std::size_t>(w) - 1];
  }

  // Oversubscribing the memory link slows everyone proportionally —
  // a crude but monotone stand-in for the saturating-link model.
  const double capacity = machine.link.capacity_bytes_per_sec;
  const double link_factor =
      demand > capacity && demand > 0.0 ? capacity / demand : 1.0;
  for (auto& p : scratch.pairs) p.colocated *= link_factor;

  return metrics::effective_utilisation(scratch.pairs);
}

double MrcScoringBase::delta_for_view(const MachineView& view,
                                      const AppSignal& app_sig,
                                      Scratch& scratch) const {
  const AppSignal& hp_sig = dir_->signal(view.hp->name);
  scratch.bes.clear();
  for (const auto* t : view.tenants) {
    scratch.bes.push_back(&dir_->signal(t->name));
  }
  const double before = predict(hp_sig, scratch.bes, scratch);
  scratch.bes.push_back(&app_sig);
  return predict(hp_sig, scratch.bes, scratch) - before;
}

double MrcScoringBase::delta_indexed(PlacementIndex& index, unsigned machine,
                                     const AppSignal& app_sig,
                                     Scratch& scratch) const {
  // Dirty-score protocol: a clean (machine, app) pair is a cached double
  // — bit-identical to recomputation because predict() is pure. A dirty
  // machine recomputes at most one "before" (shared by every app scored
  // against this tenant set) plus one "after" per distinct arriving app.
  if (index.has_delta(machine, app_sig.id)) {
    return index.delta(machine, app_sig.id);
  }
  const AppSignal& hp_sig = index.hp_signal(machine);
  index.tenant_signals(machine, scratch.bes);
  double before;
  if (index.has_before(machine)) {
    before = index.before(machine);
  } else {
    before = predict(hp_sig, scratch.bes, scratch);
    index.set_before(machine, before);
  }
  scratch.bes.push_back(&app_sig);
  const double delta = predict(hp_sig, scratch.bes, scratch) - before;
  index.set_delta(machine, app_sig.id, delta);
  return delta;
}

MrcScoringBase::ShardBest MrcScoringBase::scan_indexed(
    PlacementIndex& index, std::size_t begin, std::size_t end,
    const AppSignal& app_sig, std::optional<unsigned> exclude,
    Scratch& scratch) const {
  ShardBest best;
  for (std::size_t i = begin; i < end; ++i) {
    const auto m = static_cast<unsigned>(i);
    if (index.free_cores(m) == 0) continue;
    if (exclude && *exclude == m) continue;
    const double delta = delta_indexed(index, m, app_sig, scratch);
    if (!best.machine || delta > best.delta) {
      best.machine = m;
      best.delta = delta;
    }
  }
  return best;
}

MrcScoringBase::ShardBest MrcScoringBase::scan_views(
    const std::vector<MachineView>& views, std::size_t begin, std::size_t end,
    const AppSignal& app_sig, Scratch& scratch) const {
  ShardBest best;
  for (std::size_t i = begin; i < end; ++i) {
    const MachineView& v = views[i];
    if (v.free_cores == 0) continue;
    const double delta = delta_for_view(v, app_sig, scratch);
    if (!best.machine || delta > best.delta) {
      best.machine = v.index;
      best.delta = delta;
    }
  }
  return best;
}

MrcScoringBase::ShardBest MrcScoringBase::merge_shards(const ShardBest* bests,
                                                       std::size_t n) {
  ShardBest merged;
  for (std::size_t s = 0; s < n; ++s) {
    const ShardBest& b = bests[s];
    if (!b.machine) continue;
    if (!merged.machine || b.delta > merged.delta) merged = b;
  }
  return merged;
}

double MrcBestFitPlacement::score(const sim::AppProfile& app,
                                  const MachineView& view) const {
  scratch_.bes.clear();
  for (const auto* t : view.tenants) {
    scratch_.bes.push_back(&dir_->signal(t->name));
  }
  scratch_.bes.push_back(&dir_->signal(app.name));
  return predict(dir_->signal(view.hp->name), scratch_.bes, scratch_);
}

std::vector<util::ShardRange> MrcBestFitPlacement::plan_shards(
    std::size_t n) const {
  // Null pool (or shards_ == 1 via set_parallel) plans a single range — the
  // serial path. The plan is a pure function of (n, shards_), so the same
  // config shards the same way on every decision.
  return util::shard_ranges(n, pool_ != nullptr ? shards_ : 1,
                            pool_ != nullptr ? kMinMachinesPerShard : 0);
}

std::optional<unsigned> MrcBestFitPlacement::place(
    const sim::AppProfile& app, const std::vector<MachineView>& views) {
  // Greedy on the *marginal* EFU: the fleet metric is the mean of
  // per-machine EFUs and placing on machine m changes only m's term, so
  // the fleet-optimal greedy picks the machine whose predicted EFU drops
  // least (or rises most) when the tenant joins. Maximising the absolute
  // post-placement score instead would chase machines that score well
  // regardless of the tenant.
  const AppSignal& app_sig = dir_->signal(app.name);
  const auto shards = plan_shards(views.size());
  if (shards.size() <= 1) {
    return scan_views(views, 0, views.size(), app_sig, scratch_).machine;
  }
  shard_scratch_.resize(shards.size());
  spec_scratch_.assign(shards.size(), ShardBest{});
  util::parallel_shards(
      *pool_, shards, [&](std::size_t s, util::ShardRange r) {
        spec_scratch_[s] =
            scan_views(views, r.begin, r.end, app_sig, shard_scratch_[s]);
      });
  return merge_shards(spec_scratch_.data(), shards.size()).machine;
}

std::optional<unsigned> MrcBestFitPlacement::place_indexed(
    const sim::AppProfile& app, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  const AppSignal& app_sig = dir_->signal(app.name);
  const auto shards = plan_shards(index.size());
  if (shards.size() <= 1) {
    return scan_indexed(index, 0, index.size(), app_sig, exclude, scratch_)
        .machine;
  }
  // Shard workers write the dirty-score caches, but only for slots inside
  // their own contiguous machine range — per-slot single-writer, no locks.
  shard_scratch_.resize(shards.size());
  spec_scratch_.assign(shards.size(), ShardBest{});
  util::parallel_shards(
      *pool_, shards, [&](std::size_t s, util::ShardRange r) {
        spec_scratch_[s] = scan_indexed(index, r.begin, r.end, app_sig,
                                        exclude, shard_scratch_[s]);
      });
  return merge_shards(spec_scratch_.data(), shards.size()).machine;
}

void MrcBestFitPlacement::place_arrivals(
    const std::vector<const sim::AppProfile*>& apps, PlacementIndex& index,
    const CommitFn& commit) {
  const std::size_t n = apps.size();
  const auto shards = plan_shards(index.size());
  const std::size_t num_shards = shards.size();
  if (n <= 1 || num_shards <= 1 || pool_ == nullptr) {
    PlacementEngine::place_arrivals(apps, index, commit);
    return;
  }

  // Phase 1 — speculate: score every arrival's full candidate set against
  // the index as-of-now. One task per shard, each scanning its contiguous
  // machine range for *all* arrivals, so the (arrival x shard) local-best
  // table fills with disjoint writes and per-slot single-writer cache
  // updates.
  sig_scratch_.clear();
  sig_scratch_.reserve(n);
  for (const auto* app : apps) {
    sig_scratch_.push_back(&dir_->signal(app->name));
  }
  shard_scratch_.resize(num_shards);
  spec_scratch_.assign(n * num_shards, ShardBest{});
  util::parallel_shards(
      *pool_, shards, [&](std::size_t s, util::ShardRange r) {
        for (std::size_t j = 0; j < n; ++j) {
          spec_scratch_[j * num_shards + s] =
              scan_indexed(index, r.begin, r.end, *sig_scratch_[j],
                           std::nullopt, shard_scratch_[s]);
        }
      });

  // Phase 2 — commit strictly in arrival order. Each accepted commit
  // dirties exactly one machine m (audited below), so only the later
  // arrivals' local bests for m's shard can be stale; they are patched
  // through the version-stamped delta caches, preserving the invariant
  // that every stored ShardBest equals a fresh serial scan of its range
  // at the current index state. Machines never reopen during arrivals
  // (commits only admit), so "m open now" implies "m was open at the
  // snapshot" and a shard that saw no open machine stays empty.
  for (std::size_t i = 0; i < n; ++i) {
    const ShardBest best =
        merge_shards(&spec_scratch_[i * num_shards], num_shards);
    const std::uint64_t before = index.mutations();
    commit(i, best.machine);
    const std::uint64_t expected = before + (best.machine ? 1 : 0);
    if (index.mutations() != expected) {
      throw std::logic_error(
          "MrcBestFitPlacement::place_arrivals: commit callback broke the "
          "one-admit-per-acceptance contract (speculative scores would go "
          "stale undetected)");
    }
    if (!best.machine || i + 1 == n) continue;

    const unsigned m = *best.machine;
    std::size_t ms = 0;  // the shard whose range holds m (few shards: O(S))
    while (!(shards[ms].begin <= m && m < shards[ms].end)) ++ms;
    const bool closed = index.free_cores(m) == 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      ShardBest& sb = spec_scratch_[j * num_shards + ms];
      const bool was_winner = sb.machine && *sb.machine == m;
      if (closed) {
        // m left the candidate set; only a table that had it as the shard
        // winner needs a rescan (for the rest, the stored winner and every
        // other candidate are untouched).
        if (was_winner) {
          sb = scan_indexed(index, shards[ms].begin, shards[ms].end,
                            *sig_scratch_[j], std::nullopt, scratch_);
        }
        continue;
      }
      const double dm = delta_indexed(index, m, *sig_scratch_[j], scratch_);
      if (was_winner) {
        if (dm > sb.delta) {
          sb.delta = dm;  // still the winner, better score
        } else if (dm < sb.delta) {
          // The stored winner lost its edge and we kept no runner-up.
          sb = scan_indexed(index, shards[ms].begin, shards[ms].end,
                            *sig_scratch_[j], std::nullopt, scratch_);
        }
        // dm == sb.delta: the argmax is value-unchanged — keep.
      } else if (!sb.machine || dm > sb.delta ||
                 (dm == sb.delta && m < *sb.machine)) {
        // m displaces the stored winner exactly when the serial
        // first-strictly-better scan would now stop on it: strictly
        // better anywhere, or equal from the left (the stored winner is
        // the leftmost machine attaining the old max, so an equal m wins
        // iff it sits earlier in index order).
        sb.machine = m;
        sb.delta = dm;
      }
    }
  }
}

MrcP2cPlacement::MrcP2cPlacement(const AppDirectory& directory,
                                 std::uint64_t seed, unsigned choices)
    : MrcScoringBase(directory), rng_(seed), choices_(choices) {
  if (choices == 0) {
    throw std::invalid_argument(
        "MrcP2cPlacement: need at least one choice (d >= 1)");
  }
}

template <typename DeltaFn>
std::optional<unsigned> MrcP2cPlacement::pick(
    const std::vector<unsigned>& draws, DeltaFn&& delta_of) {
  std::optional<unsigned> best;
  double best_delta = 0.0;
  for (std::size_t j = 0; j < draws.size(); ++j) {
    const unsigned m = draws[j];
    bool repeat = false;
    for (std::size_t i = 0; i < j; ++i) {
      if (draws[i] == m) {
        repeat = true;
        break;
      }
    }
    if (repeat) continue;
    const double delta = delta_of(m);
    if (!best || delta > best_delta) {
      best = m;
      best_delta = delta;
    }
  }
  return best;
}

std::optional<unsigned> MrcP2cPlacement::place(
    const sim::AppProfile& app, const std::vector<MachineView>& views) {
  const AppSignal& app_sig = dir_->signal(app.name);
  open_scratch_.clear();
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (views[i].free_cores > 0) {
      open_scratch_.push_back(static_cast<unsigned>(i));
    }
  }
  if (open_scratch_.empty()) return std::nullopt;
  draw_scratch_.clear();
  for (unsigned j = 0; j < choices_; ++j) {
    draw_scratch_.push_back(
        views[open_scratch_[rng_.below(open_scratch_.size())]].index);
  }
  // Candidates scored in draw order; with views in index order this is the
  // same draw -> machine mapping (and RNG consumption) as the indexed path.
  return pick(draw_scratch_, [&](unsigned m) {
    for (const auto& v : views) {
      if (v.index == m) return delta_for_view(v, app_sig, scratch_);
    }
    throw std::logic_error("MrcP2cPlacement: drawn machine left the views");
  });
}

std::optional<unsigned> MrcP2cPlacement::place_indexed(
    const sim::AppProfile& app, PlacementIndex& index,
    std::optional<unsigned> exclude) {
  const AppSignal& app_sig = dir_->signal(app.name);
  const bool excl_open =
      exclude && *exclude < index.size() && index.is_open(*exclude);
  const std::uint64_t count = index.open_count() - (excl_open ? 1 : 0);
  if (count == 0) return std::nullopt;
  draw_scratch_.clear();
  for (unsigned j = 0; j < choices_; ++j) {
    std::uint64_t k = rng_.below(count);
    if (excl_open && k >= index.open_rank(*exclude)) ++k;
    draw_scratch_.push_back(index.nth_open(k));
  }
  return pick(draw_scratch_, [&](unsigned m) {
    return delta_indexed(index, m, app_sig, scratch_);
  });
}

std::unique_ptr<PlacementEngine> make_placement(const std::string& name,
                                                const AppDirectory& directory,
                                                std::uint64_t seed,
                                                unsigned p2c_choices) {
  if (name == "random") return std::make_unique<RandomPlacement>(seed);
  if (name == "least-loaded") return std::make_unique<LeastLoadedPlacement>();
  if (name == "mrc") return std::make_unique<MrcBestFitPlacement>(directory);
  if (name == "mrc-p2c") {
    return std::make_unique<MrcP2cPlacement>(directory, seed, p2c_choices);
  }
  throw std::invalid_argument("make_placement: unknown engine '" + name +
                              "' (try random, least-loaded, mrc, mrc-p2c)");
}

std::vector<std::string> known_placements() {
  return {"random", "least-loaded", "mrc", "mrc-p2c"};
}

}  // namespace dicer::fleet
