#include "fleet/placement.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/metrics.hpp"

namespace dicer::fleet {

std::optional<unsigned> RandomPlacement::place(
    const sim::AppProfile& /*app*/, const std::vector<MachineView>& views) {
  std::vector<unsigned> open;
  open.reserve(views.size());
  for (const auto& v : views) {
    if (v.free_cores > 0) open.push_back(v.index);
  }
  if (open.empty()) return std::nullopt;
  return open[rng_.below(open.size())];
}

std::optional<unsigned> LeastLoadedPlacement::place(
    const sim::AppProfile& /*app*/, const std::vector<MachineView>& views) {
  std::optional<unsigned> best;
  std::size_t best_load = 0;
  for (const auto& v : views) {
    if (v.free_cores == 0) continue;
    if (!best || v.tenants.size() < best_load) {
      best = v.index;
      best_load = v.tenants.size();
    }
  }
  return best;
}

double MrcBestFitPlacement::predict(
    const MachineView& view, const std::vector<const AppSignal*>& bes) const {
  const auto& machine = dir_->machine();
  const auto total_ways = machine.llc.ways;

  // The HP holds the partition it needs to stay near solo IPC (DICER's
  // steady state); everything else is the BE pool.
  const auto& hp_sig = dir_->signal(view.hp->name);
  const unsigned hp_ways =
      std::clamp(hp_sig.ways_needed, 1u, total_ways - 1u);
  const double be_ways = static_cast<double>(total_ways - hp_ways);

  // The BE pool splits in proportion to MRC footprint: a streaming app
  // with no reuse mass takes (and gains from) almost nothing, a deep-knee
  // app claims most of the pool. Footprint-less mixes fall back to an
  // even split.
  double footprint_sum = 0.0;
  for (const auto* s : bes) footprint_sum += s->footprint_bytes;

  std::vector<metrics::IpcPair> pairs;
  pairs.reserve(bes.size() + 1);
  double demand = hp_sig.bw_by_ways[hp_ways - 1];
  pairs.push_back({hp_sig.ipc_alone, hp_sig.ipc_at_ways(hp_ways)});
  for (const auto* s : bes) {
    const double share =
        footprint_sum > 0.0
            ? be_ways * (s->footprint_bytes / footprint_sum)
            : be_ways / static_cast<double>(bes.size());
    const double w = std::clamp(share, 1.0, be_ways);
    pairs.push_back({s->ipc_alone, s->ipc_at_ways(w)});
    demand += s->bw_by_ways[static_cast<std::size_t>(w) - 1];
  }

  // Oversubscribing the memory link slows everyone proportionally —
  // a crude but monotone stand-in for the saturating-link model.
  const double capacity = machine.link.capacity_bytes_per_sec;
  const double link_factor =
      demand > capacity && demand > 0.0 ? capacity / demand : 1.0;
  for (auto& p : pairs) p.colocated *= link_factor;

  return metrics::effective_utilisation(pairs);
}

double MrcBestFitPlacement::score(const sim::AppProfile& app,
                                  const MachineView& view) const {
  std::vector<const AppSignal*> bes;
  bes.reserve(view.tenants.size() + 1);
  for (const auto* t : view.tenants) bes.push_back(&dir_->signal(t->name));
  bes.push_back(&dir_->signal(app.name));
  return predict(view, bes);
}

std::optional<unsigned> MrcBestFitPlacement::place(
    const sim::AppProfile& app, const std::vector<MachineView>& views) {
  // Greedy on the *marginal* EFU: the fleet metric is the mean of
  // per-machine EFUs and placing on machine m changes only m's term, so
  // the fleet-optimal greedy picks the machine whose predicted EFU drops
  // least (or rises most) when the tenant joins. Maximising the absolute
  // post-placement score instead would chase machines that score well
  // regardless of the tenant.
  std::optional<unsigned> best;
  double best_delta = 0.0;
  for (const auto& v : views) {
    if (v.free_cores == 0) continue;
    std::vector<const AppSignal*> bes;
    bes.reserve(v.tenants.size() + 1);
    for (const auto* t : v.tenants) bes.push_back(&dir_->signal(t->name));
    const double before = predict(v, bes);
    bes.push_back(&dir_->signal(app.name));
    const double delta = predict(v, bes) - before;
    if (!best || delta > best_delta) {
      best = v.index;
      best_delta = delta;
    }
  }
  return best;
}

std::unique_ptr<PlacementEngine> make_placement(const std::string& name,
                                                const AppDirectory& directory,
                                                std::uint64_t seed) {
  if (name == "random") return std::make_unique<RandomPlacement>(seed);
  if (name == "least-loaded") return std::make_unique<LeastLoadedPlacement>();
  if (name == "mrc") return std::make_unique<MrcBestFitPlacement>(directory);
  throw std::invalid_argument("make_placement: unknown engine '" + name +
                              "' (try random, least-loaded, mrc)");
}

std::vector<std::string> known_placements() {
  return {"random", "least-loaded", "mrc"};
}

}  // namespace dicer::fleet
