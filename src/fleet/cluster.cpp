#include "fleet/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "policy/factory.hpp"
#include "rdt/capability.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace dicer::fleet {

namespace {

constexpr double kEps = 1e-9;

std::string f17(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

}  // namespace

std::string epoch_csv_header() {
  return "epoch,t_sec,tenants,occupied_machines,arrivals,departures,"
         "rejected,migrations,fleet_efu,hp_norm_mean,slo_violations,"
         "slo_violation_rate,link_rho_mean";
}

std::string epoch_csv_row(const EpochMetrics& m) {
  std::string row = std::to_string(m.epoch);
  row += ',' + f17(m.t_sec);
  row += ',' + std::to_string(m.tenants);
  row += ',' + std::to_string(m.occupied_machines);
  row += ',' + std::to_string(m.arrivals);
  row += ',' + std::to_string(m.departures);
  row += ',' + std::to_string(m.rejected);
  row += ',' + std::to_string(m.migrations);
  row += ',' + f17(m.fleet_efu);
  row += ',' + f17(m.hp_norm_mean);
  row += ',' + std::to_string(m.slo_violations);
  row += ',' + f17(m.slo_violation_rate);
  row += ',' + f17(m.link_rho_mean);
  return row;
}

Cluster::Cluster(const FleetConfig& config, const sim::AppCatalog& catalog)
    : config_(config),
      catalog_(&catalog),
      directory_(catalog, config.machine),
      churn_(config.churn, catalog) {
  if (config.num_machines == 0) {
    throw std::invalid_argument("Cluster: need at least one machine");
  }
  if (config.cores_used < 2 ||
      config.cores_used > config.machine.num_cores) {
    throw std::invalid_argument(
        "Cluster: cores_used must be in [2, machine cores]");
  }
  if (config.epoch_sec < config.machine.quantum_sec - kEps) {
    throw std::invalid_argument("Cluster: epoch shorter than one quantum");
  }

  placement_ =
      make_placement(config.placement, directory_, config.seed ^ 0x9e3779b9);

  jobs_ = util::ThreadPool::resolve_jobs(config.jobs, "DICER_FLEET_JOBS");
  if (jobs_ > 1) pool_ = std::make_unique<util::ThreadPool>(jobs_);

  // Boot every machine with a catalog-drawn HP. The draw consumes the rng
  // in machine-index order, so the fleet's HP mix is a pure function of
  // (seed, catalog) — placement engine and worker count never touch it.
  util::Xoshiro256 rng(config.seed);
  nodes_.resize(config.num_machines);
  for (auto& node : nodes_) {
    boot_node(node, &catalog.at(rng.below(catalog.size())));
  }
  DICER_INFO << "fleet: booted " << nodes_.size() << " machines ("
             << config.policy << " policy, " << placement_->name()
             << " placement, " << jobs_ << " jobs)";
}

Cluster::~Cluster() = default;

void Cluster::boot_node(Node& node, const sim::AppProfile* hp) {
  sim::MachineConfig mc = config_.machine;
  // Per-quantum tracing from hundreds of machines would swamp any sink;
  // fleet telemetry flows through the per-epoch events instead.
  mc.tracer = config_.tracer;
  node.machine = std::make_unique<sim::Machine>(mc);
  const auto cap = rdt::Capability::probe(*node.machine, /*enable_mba=*/false);
  node.cat = std::make_unique<rdt::CatController>(*node.machine, cap);
  node.monitor =
      std::make_unique<rdt::Monitor>(*node.machine, cap, config_.tracer);
  node.policy = policy::make_policy(config_.policy);
  node.hp = hp;
  node.tenants.assign(config_.cores_used, std::nullopt);
  node.instr_base.assign(config_.cores_used, 0.0);
  node.cycles_base.assign(config_.cores_used, 0.0);

  node.ctx.machine = node.machine.get();
  node.ctx.cat = node.cat.get();
  node.ctx.monitor = node.monitor.get();
  node.ctx.mba = nullptr;
  node.ctx.hp_core = 0;
  node.ctx.tracer = config_.tracer;
  for (unsigned c = 1; c < config_.cores_used; ++c) {
    node.ctx.be_cores.push_back(c);
  }

  node.machine->attach(0, hp);
  node.policy->setup(node.ctx);
}

unsigned Cluster::lowest_free_core(const Node& node) const {
  for (unsigned c = 1; c < config_.cores_used; ++c) {
    if (!node.tenants[c]) return c;
  }
  throw std::logic_error("Cluster: no free core on chosen machine");
}

void Cluster::admit(Node& node, unsigned core, const Tenant& tenant) {
  node.tenants[core] = tenant;
  node.machine->attach(core, tenant.app);
  // Machine::detach reverted this core to the full mask; re-associating
  // re-applies the BE CLOS mask the machine's policy currently runs.
  node.cat->associate(core, policy::kBeClos);
  node.monitor->track(core);
}

std::vector<MachineView> Cluster::views() const {
  std::vector<MachineView> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    MachineView v;
    v.index = static_cast<unsigned>(i);
    v.hp = n.hp;
    for (unsigned c = 1; c < config_.cores_used; ++c) {
      if (n.tenants[c]) v.tenants.push_back(n.tenants[c]->app);
    }
    v.free_cores = config_.cores_used - 1 -
                   static_cast<unsigned>(v.tenants.size());
    out.push_back(std::move(v));
  }
  return out;
}

std::uint64_t Cluster::tenants_running() const noexcept {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) {
    for (const auto& t : node.tenants) n += t.has_value() ? 1u : 0u;
  }
  return n;
}

const sim::AppProfile& Cluster::hp_of(unsigned machine) const {
  return *nodes_.at(machine).hp;
}

void Cluster::do_departures(double epoch_start, EpochMetrics& m) {
  for (auto& node : nodes_) {
    for (unsigned c = 1; c < config_.cores_used; ++c) {
      if (node.tenants[c] &&
          node.tenants[c]->depart_t_sec <= epoch_start + kEps) {
        node.machine->detach(c);
        node.tenants[c].reset();
        ++m.departures;
      }
    }
  }
}

void Cluster::do_migrations(EpochMetrics& m) {
  if (config_.migrate_after == 0) return;
  auto& tr = trace::resolve(config_.tracer);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& src = nodes_[i];
    if (src.slo_streak < config_.migrate_after) continue;
    // Evict the most cache-hungry tenant — the likeliest HP antagonist.
    unsigned victim_core = 0;
    double victim_footprint = -1.0;
    for (unsigned c = 1; c < config_.cores_used; ++c) {
      if (!src.tenants[c]) continue;
      const double f =
          directory_.signal(src.tenants[c]->app->name).footprint_bytes;
      if (f > victim_footprint) {
        victim_footprint = f;
        victim_core = c;
      }
    }
    // Streak handled either way: a machine with nothing to migrate, or no
    // destination, re-arms rather than retrying every epoch.
    src.slo_streak = 0;
    if (victim_core == 0) continue;

    auto vs = views();
    vs[i].free_cores = 0;  // never "migrate" onto the source
    const Tenant tenant = *src.tenants[victim_core];
    const auto dest = placement_->place(*tenant.app, vs);

    PlacementRecord rec;
    rec.tenant_id = tenant.id;
    rec.epoch = epoch_;
    rec.app = tenant.app->name;
    rec.migration = true;
    rec.accepted = dest.has_value();
    if (dest) {
      src.machine->detach(victim_core);
      src.tenants[victim_core].reset();
      Node& dst = nodes_[*dest];
      rec.machine = *dest;
      rec.core = lowest_free_core(dst);
      admit(dst, rec.core, tenant);
      ++m.migrations;
      if (tr.enabled(trace::Kind::kMigration)) {
        tr.emit(trace::Kind::kMigration,
                static_cast<double>(epoch_) * config_.epoch_sec,
                {{"tenant", tenant.id},
                 {"app", tenant.app->name},
                 {"from", static_cast<unsigned>(i)},
                 {"to", *dest}});
      }
    }
    placement_log_.push_back(std::move(rec));
  }
}

void Cluster::do_arrivals(double epoch_end, EpochMetrics& m) {
  auto& tr = trace::resolve(config_.tracer);
  for (const auto& a : churn_.drain_until(epoch_end)) {
    ++m.arrivals;
    const auto dest = placement_->place(*a.app, views());

    PlacementRecord rec;
    rec.tenant_id = a.id;
    rec.epoch = epoch_;
    rec.app = a.app->name;
    rec.accepted = dest.has_value();
    if (dest) {
      Node& dst = nodes_[*dest];
      rec.machine = *dest;
      rec.core = lowest_free_core(dst);
      admit(dst, rec.core, {a.id, a.app, a.t_sec + a.lifetime_sec});
    } else {
      ++m.rejected;
    }
    if (tr.enabled(trace::Kind::kPlacement)) {
      tr.emit(trace::Kind::kPlacement, a.t_sec,
              {{"tenant", a.id},
               {"app", a.app->name},
               {"accepted", rec.accepted},
               {"machine", rec.accepted ? rec.machine : 0u}});
    }
    placement_log_.push_back(std::move(rec));
  }
}

void Cluster::step_all(double epoch_end) {
  auto step_node = [&](std::size_t i) {
    Node& node = nodes_[i];
    sim::Machine& machine = *node.machine;
    // The single-machine control loop, clipped to the epoch boundary:
    // run to the next policy deadline (or the boundary, whichever is
    // first), then let the policy act. Pure function of the node's own
    // state — nothing here sees another machine.
    while (machine.time_sec() < epoch_end - kEps) {
      const double interval = std::max(node.policy->interval_sec(),
                                       config_.machine.quantum_sec);
      machine.run_until(std::min(machine.time_sec() + interval, epoch_end));
      node.policy->act(node.ctx);
    }
  };
  if (!pool_ || nodes_.size() <= 1) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) step_node(i);
  } else {
    util::parallel_for(*pool_, nodes_.size(), step_node);
  }
}

void Cluster::reduce(EpochMetrics& m) {
  double efu_sum = 0.0;
  double hp_norm_sum = 0.0;
  double rho_sum = 0.0;
  for (auto& node : nodes_) {
    std::vector<metrics::IpcPair> pairs;
    pairs.reserve(config_.cores_used);
    double hp_norm = 0.0;
    for (unsigned c = 0; c < config_.cores_used; ++c) {
      const auto& tel = node.machine->telemetry(c);
      const double d_instr = tel.instructions - node.instr_base[c];
      const double d_cycles = tel.active_cycles - node.cycles_base[c];
      node.instr_base[c] = tel.instructions;
      node.cycles_base[c] = tel.active_cycles;
      const bool occupied = c == 0 || node.tenants[c].has_value();
      if (!occupied || d_cycles <= 0.0) continue;
      const double ipc = d_instr / d_cycles;
      const double alone =
          c == 0 ? directory_.signal(node.hp->name).ipc_alone
                 : directory_.signal(node.tenants[c]->app->name).ipc_alone;
      pairs.push_back({alone, ipc});
      if (c == 0) hp_norm = alone > 0.0 ? ipc / alone : 0.0;
    }
    efu_sum += metrics::effective_utilisation(pairs);
    hp_norm_sum += hp_norm;
    rho_sum += std::min(node.machine->last_link_utilisation(), 1.0);
    if (hp_norm < config_.slo_norm) {
      ++m.slo_violations;
      ++node.slo_streak;
    } else {
      node.slo_streak = 0;
    }
    if (std::any_of(node.tenants.begin(), node.tenants.end(),
                    [](const auto& t) { return t.has_value(); })) {
      ++m.occupied_machines;
    }
  }
  const auto n = static_cast<double>(nodes_.size());
  m.tenants = tenants_running();
  m.fleet_efu = efu_sum / n;
  m.hp_norm_mean = hp_norm_sum / n;
  m.slo_violation_rate = static_cast<double>(m.slo_violations) / n;
  m.link_rho_mean = rho_sum / n;
}

EpochMetrics Cluster::step_epoch() {
  const double epoch_start = static_cast<double>(epoch_) * config_.epoch_sec;
  const double epoch_end = epoch_start + config_.epoch_sec;

  EpochMetrics m;
  m.epoch = epoch_;
  m.t_sec = epoch_end;

  do_departures(epoch_start, m);
  do_migrations(m);
  do_arrivals(epoch_end, m);
  step_all(epoch_end);
  reduce(m);

  auto& tr = trace::resolve(config_.tracer);
  if (tr.enabled(trace::Kind::kFleetEpoch)) {
    tr.emit(trace::Kind::kFleetEpoch, epoch_end,
            {{"epoch", m.epoch},
             {"tenants", m.tenants},
             {"arrivals", m.arrivals},
             {"departures", m.departures},
             {"rejected", m.rejected},
             {"migrations", m.migrations},
             {"fleet_efu", m.fleet_efu},
             {"hp_norm_mean", m.hp_norm_mean},
             {"slo_violations", m.slo_violations},
             {"link_rho_mean", m.link_rho_mean}});
  }
  ++epoch_;
  return m;
}

std::vector<EpochMetrics> Cluster::run(std::uint64_t n_epochs) {
  std::vector<EpochMetrics> rows;
  rows.reserve(n_epochs);
  for (std::uint64_t i = 0; i < n_epochs; ++i) rows.push_back(step_epoch());
  return rows;
}

double Cluster::mean_efu(const std::vector<EpochMetrics>& rows) {
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : rows) sum += r.fleet_efu;
  return sum / static_cast<double>(rows.size());
}

}  // namespace dicer::fleet
