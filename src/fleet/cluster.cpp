#include "fleet/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "policy/factory.hpp"
#include "sim/machine_batch.hpp"
#include "rdt/capability.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace dicer::fleet {

namespace {

constexpr double kEps = 1e-9;

/// Ratio-valued distributions (EFU, normalised IPC, slowdown, link rho):
/// ~6% relative resolution from 0.02 up past 6 — tight enough that the
/// interpolated p50/p95/p99 columns track the exact sample percentiles.
constexpr telemetry::HistogramSpec kRatioSpec{0.02, 1.06, 100};
/// Tenant footprints: 64 KiB .. ~2.3 GiB.
constexpr telemetry::HistogramSpec kBytesSpec{64.0 * 1024.0, 1.25, 48};
/// Latencies denominated in simulated periods (epochs).
constexpr telemetry::HistogramSpec kPeriodsSpec{0.25, 1.5, 24};

std::string f17(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

}  // namespace

std::string epoch_csv_header() {
  return "epoch,t_sec,tenants,occupied_machines,arrivals,departures,"
         "rejected,migrations,fleet_efu,hp_norm_mean,slo_violations,"
         "slo_violation_rate,link_rho_mean,efu_p50,efu_p95,efu_p99,"
         "hp_slowdown_p50,hp_slowdown_p95,hp_slowdown_p99,hp_slowdown_max,"
         "slo_violation_rate_occupied";
}

std::string epoch_csv_row(const EpochMetrics& m) {
  std::string row = std::to_string(m.epoch);
  row += ',' + f17(m.t_sec);
  row += ',' + std::to_string(m.tenants);
  row += ',' + std::to_string(m.occupied_machines);
  row += ',' + std::to_string(m.arrivals);
  row += ',' + std::to_string(m.departures);
  row += ',' + std::to_string(m.rejected);
  row += ',' + std::to_string(m.migrations);
  row += ',' + f17(m.fleet_efu);
  row += ',' + f17(m.hp_norm_mean);
  row += ',' + std::to_string(m.slo_violations);
  row += ',' + f17(m.slo_violation_rate);
  row += ',' + f17(m.link_rho_mean);
  row += ',' + f17(m.efu_p50);
  row += ',' + f17(m.efu_p95);
  row += ',' + f17(m.efu_p99);
  row += ',' + f17(m.hp_slowdown_p50);
  row += ',' + f17(m.hp_slowdown_p95);
  row += ',' + f17(m.hp_slowdown_p99);
  row += ',' + f17(m.hp_slowdown_max);
  row += ',' + f17(m.slo_violation_rate_occupied);
  return row;
}

std::string epoch_jsonl_row(const EpochMetrics& m) {
  std::string out = "{\"epoch\":" + std::to_string(m.epoch);
  out += ",\"t_sec\":" + f17(m.t_sec);
  out += ",\"tenants\":" + std::to_string(m.tenants);
  out += ",\"occupied_machines\":" + std::to_string(m.occupied_machines);
  out += ",\"arrivals\":" + std::to_string(m.arrivals);
  out += ",\"departures\":" + std::to_string(m.departures);
  out += ",\"rejected\":" + std::to_string(m.rejected);
  out += ",\"migrations\":" + std::to_string(m.migrations);
  out += ",\"fleet_efu\":" + f17(m.fleet_efu);
  out += ",\"hp_norm_mean\":" + f17(m.hp_norm_mean);
  out += ",\"slo_violations\":" + std::to_string(m.slo_violations);
  out += ",\"slo_violation_rate\":" + f17(m.slo_violation_rate);
  out += ",\"link_rho_mean\":" + f17(m.link_rho_mean);
  out += ",\"efu_p50\":" + f17(m.efu_p50);
  out += ",\"efu_p95\":" + f17(m.efu_p95);
  out += ",\"efu_p99\":" + f17(m.efu_p99);
  out += ",\"hp_slowdown_p50\":" + f17(m.hp_slowdown_p50);
  out += ",\"hp_slowdown_p95\":" + f17(m.hp_slowdown_p95);
  out += ",\"hp_slowdown_p99\":" + f17(m.hp_slowdown_p99);
  out += ",\"hp_slowdown_max\":" + f17(m.hp_slowdown_max);
  out += ",\"slo_violation_rate_occupied\":" +
         f17(m.slo_violation_rate_occupied);
  out += '}';
  return out;
}

Cluster::Cluster(const FleetConfig& config, const sim::AppCatalog& catalog)
    : config_(config),
      catalog_(&catalog),
      directory_(catalog, config.machine),
      churn_(config.churn, catalog),
      epoch_efu_hist_(kRatioSpec),
      epoch_slowdown_hist_(kRatioSpec) {
  if (config.num_machines == 0) {
    throw std::invalid_argument("Cluster: need at least one machine");
  }
  if (config.cores_used < 2 ||
      config.cores_used > config.machine.num_cores) {
    throw std::invalid_argument(
        "Cluster: cores_used must be in [2, machine cores]");
  }
  if (config.epoch_sec < config.machine.quantum_sec - kEps) {
    throw std::invalid_argument("Cluster: epoch shorter than one quantum");
  }

  jobs_ = util::ThreadPool::resolve_jobs(config.jobs, "DICER_FLEET_JOBS");
  // Control-plane scoring shards: follow the data plane unless pinned, and
  // collapse to serial when the feature (or its escape hatch) says so. One
  // pool serves both planes, sized for the wider of the two.
  const bool parallel_cp = config_.parallel_control_plane &&
                           !sim::env_disables("DICER_NO_PARALLEL_CP");
  cp_jobs_ = parallel_cp ? (config_.cp_jobs != 0 ? config_.cp_jobs : jobs_)
                         : 1;
  const unsigned pool_workers = std::max(jobs_, cp_jobs_);
  if (pool_workers > 1) {
    pool_ = std::make_unique<util::ThreadPool>(pool_workers);
  }

  placement_ = make_placement(config.placement, directory_,
                              config.seed ^ 0x9e3779b9, config.p2c_choices);
  if (cp_jobs_ > 1 && pool_) {
    placement_->set_parallel(pool_.get(), cp_jobs_);
  }

  // Boot every machine with a catalog-drawn HP. The draw consumes the rng
  // in machine-index order, so the fleet's HP mix is a pure function of
  // (seed, catalog) — placement engine and worker count never touch it.
  util::Xoshiro256 rng(config.seed);
  nodes_.resize(config.num_machines);
  for (auto& node : nodes_) {
    boot_node(node, &catalog.at(rng.below(catalog.size())));
  }
  // The persistent control-plane index: one slot per machine, kept in step
  // with the nodes' tenant arrays by admit/evict. A speed knob only —
  // place_tenant routes through it when live, and every decision matches
  // the full-scan path bit for bit (DICER_NO_PLACEMENT_INDEX=1 forces the
  // historical rebuild-per-arrival views() scan).
  if (config_.placement_index &&
      !sim::env_disables("DICER_NO_PLACEMENT_INDEX")) {
    index_ = std::make_unique<PlacementIndex>(directory_,
                                              config_.cores_used - 1);
    for (const auto& node : nodes_) index_->add_machine(node.hp);
  }
  epoch_stats_.reserve(nodes_.size());
  bind_metrics();

  // Carve the fleet into contiguous data-plane batches: each stepping task
  // advances one batch, whose lanes share a phase table and the fused
  // replay path. Build once at boot — machines never move between batches,
  // so mid-life snapshots stay valid across epochs.
  if (sim::batch_stepping_enabled(config_.machine)) {
    unsigned per = config_.batch_machines;
    if (per == 0) {
      // ~4 batches per worker keeps the shards load-balanced under uneven
      // policy intervals while amortising the shared table.
      per = std::clamp(config_.num_machines / (jobs_ * 4), 1u, 32u);
    }
    for (std::size_t start = 0; start < nodes_.size();
         start += static_cast<std::size_t>(per)) {
      auto batch = std::make_unique<sim::MachineBatch>();
      const std::size_t end =
          std::min(nodes_.size(), start + static_cast<std::size_t>(per));
      for (std::size_t i = start; i < end; ++i) {
        batch->add(*nodes_[i].machine);
      }
      batch_start_.push_back(start);
      batches_.push_back(std::move(batch));
    }
  }
  DICER_INFO << "fleet: booted " << nodes_.size() << " machines ("
             << config.policy << " policy, " << placement_->name()
             << " placement, " << jobs_ << " jobs, " << cp_jobs_
             << " cp jobs, " << batches_.size() << " step batches)";
}

Cluster::~Cluster() = default;

void Cluster::boot_node(Node& node, const sim::AppProfile* hp) {
  sim::MachineConfig mc = config_.machine;
  // Per-quantum tracing from hundreds of machines would swamp any sink;
  // fleet telemetry flows through the per-epoch events instead.
  mc.tracer = config_.tracer;
  node.machine = std::make_unique<sim::Machine>(mc);
  const auto cap = rdt::Capability::probe(*node.machine, /*enable_mba=*/false);
  node.cat = std::make_unique<rdt::CatController>(*node.machine, cap);
  node.monitor =
      std::make_unique<rdt::Monitor>(*node.machine, cap, config_.tracer);
  node.policy = policy::make_policy(config_.policy);
  node.hp = hp;
  node.tenants.assign(config_.cores_used, std::nullopt);
  node.instr_base.assign(config_.cores_used, 0.0);
  node.cycles_base.assign(config_.cores_used, 0.0);

  node.ctx.machine = node.machine.get();
  node.ctx.cat = node.cat.get();
  node.ctx.monitor = node.monitor.get();
  node.ctx.mba = nullptr;
  node.ctx.hp_core = 0;
  node.ctx.tracer = config_.tracer;
  for (unsigned c = 1; c < config_.cores_used; ++c) {
    node.ctx.be_cores.push_back(c);
  }

  node.machine->attach(0, hp);
  node.policy->setup(node.ctx);
}

void Cluster::bind_metrics() {
  telemetry::Registry* reg = config_.metrics;
  if (!reg) return;
  metrics_.efu = &reg->histogram("dicer_fleet_machine_efu", kRatioSpec,
                                 "per-machine EFU, one sample per epoch");
  metrics_.hp_norm =
      &reg->histogram("dicer_fleet_hp_norm", kRatioSpec,
                      "per-machine HP normalised IPC, one sample per epoch");
  metrics_.hp_slowdown =
      &reg->histogram("dicer_fleet_hp_slowdown", kRatioSpec,
                      "per-machine HP slowdown (IPC_alone / IPC)");
  metrics_.link_rho =
      &reg->histogram("dicer_fleet_link_rho", kRatioSpec,
                      "per-machine end-of-epoch memory link utilisation");
  metrics_.tenant_footprint = &reg->histogram(
      "dicer_fleet_tenant_footprint_bytes", kBytesSpec,
      "footprint of each running BE tenant, one sample per epoch");
  metrics_.placement_wait = &reg->histogram(
      "dicer_fleet_placement_wait_periods", kPeriodsSpec,
      "simulated periods between a tenant's arrival and its admission");
  metrics_.migration_streak = &reg->histogram(
      "dicer_fleet_migration_streak_periods", kPeriodsSpec,
      "SLO-violating periods an HP endured before a migration fired");
  metrics_.arrivals =
      &reg->counter("dicer_fleet_arrivals_total", "BE tenant arrivals");
  metrics_.departures =
      &reg->counter("dicer_fleet_departures_total", "BE tenant departures");
  metrics_.rejected = &reg->counter("dicer_fleet_rejected_total",
                                    "arrivals with no feasible machine");
  metrics_.migrations =
      &reg->counter("dicer_fleet_migrations_total", "accepted BE migrations");
  metrics_.slo_violations = &reg->counter(
      "dicer_fleet_slo_violations_total", "machine-epochs under the HP SLO");
  metrics_.epochs =
      &reg->counter("dicer_fleet_epochs_total", "completed fleet epochs");
  metrics_.tenants =
      &reg->gauge("dicer_fleet_tenants_running", "BE tenants running now");
  metrics_.occupied = &reg->gauge("dicer_fleet_occupied_machines",
                                  "machines hosting >= 1 BE tenant");
  metrics_.t_sec =
      &reg->gauge("dicer_fleet_time_seconds", "simulated time at epoch end");
  metrics_.solver_quanta = &reg->counter(
      "dicer_solver_quanta_total", "machine quanta stepped fleet-wide");
  metrics_.solver_replays = &reg->counter(
      "dicer_solver_replays_total", "quanta served by steady-state replay");
  metrics_.solver_solves = &reg->counter("dicer_solver_solves_total",
                                         "quanta that ran the fixed point");
  metrics_.solver_stable = &reg->counter(
      "dicer_solver_stable_solves_total", "solves that exited bit-stable");
  metrics_.solver_rounds = &reg->counter("dicer_solver_rounds_total",
                                         "fixed-point rounds executed");
  metrics_.solver_inv_actuator =
      &reg->counter("dicer_solver_invalidations_actuator_total",
                    "replay caches dropped by attach/detach/mask/throttle");
  metrics_.solver_inv_fingerprint =
      &reg->counter("dicer_solver_invalidations_fingerprint_total",
                    "replay caches dropped by phase / active-set drift");
}

unsigned Cluster::lowest_free_core(const Node& node) const {
  for (unsigned c = 1; c < config_.cores_used; ++c) {
    if (!node.tenants[c]) return c;
  }
  throw std::logic_error("Cluster: no free core on chosen machine");
}

void Cluster::admit(std::size_t m, unsigned core, const Tenant& tenant) {
  Node& node = nodes_[m];
  node.tenants[core] = tenant;
  node.machine->attach(core, tenant.app);
  // Machine::detach reverted this core to the full mask; re-associating
  // re-applies the BE CLOS mask the machine's policy currently runs.
  node.cat->associate(core, policy::kBeClos);
  node.monitor->track(core);
  ++tenants_count_;
  if (index_) index_->admit(static_cast<unsigned>(m), core, tenant.app);
}

void Cluster::evict(std::size_t m, unsigned core) {
  Node& node = nodes_[m];
  node.machine->detach(core);
  node.tenants[core].reset();
  --tenants_count_;
  if (index_) index_->detach(static_cast<unsigned>(m), core);
}

std::optional<unsigned> Cluster::place_tenant(const sim::AppProfile& app,
                                              std::optional<unsigned> exclude) {
  if (index_) return placement_->place_indexed(app, *index_, exclude);
  auto vs = views();
  if (exclude) vs[*exclude].free_cores = 0;  // never place onto the source
  return placement_->place(app, vs);
}

std::vector<MachineView> Cluster::views() const {
  std::vector<MachineView> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    MachineView v;
    v.index = static_cast<unsigned>(i);
    v.hp = n.hp;
    for (unsigned c = 1; c < config_.cores_used; ++c) {
      if (n.tenants[c]) v.tenants.push_back(n.tenants[c]->app);
    }
    v.free_cores = config_.cores_used - 1 -
                   static_cast<unsigned>(v.tenants.size());
    out.push_back(std::move(v));
  }
  return out;
}

const sim::AppProfile& Cluster::hp_of(unsigned machine) const {
  return *nodes_.at(machine).hp;
}

void Cluster::do_departures(double epoch_start, EpochMetrics& m) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (unsigned c = 1; c < config_.cores_used; ++c) {
      if (nodes_[i].tenants[c] &&
          nodes_[i].tenants[c]->depart_t_sec <= epoch_start + kEps) {
        evict(i, c);
        ++m.departures;
      }
    }
  }
}

void Cluster::do_migrations(EpochMetrics& m) {
  if (config_.migrate_after == 0) return;
  auto& tr = trace::resolve(config_.tracer);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& src = nodes_[i];
    if (src.slo_streak < config_.migrate_after) continue;
    // Evict the most cache-hungry tenant — the likeliest HP antagonist.
    unsigned victim_core = 0;
    double victim_footprint = -1.0;
    for (unsigned c = 1; c < config_.cores_used; ++c) {
      if (!src.tenants[c]) continue;
      const double f =
          directory_.signal(src.tenants[c]->app->name).footprint_bytes;
      if (f > victim_footprint) {
        victim_footprint = f;
        victim_core = c;
      }
    }
    // Streak handled either way: a machine with nothing to migrate, or no
    // destination, re-arms rather than retrying every epoch.
    const unsigned streak = src.slo_streak;
    src.slo_streak = 0;
    if (victim_core == 0) continue;

    const Tenant tenant = *src.tenants[victim_core];
    const auto dest =
        place_tenant(*tenant.app, static_cast<unsigned>(i));

    PlacementRecord rec;
    rec.tenant_id = tenant.id;
    rec.epoch = epoch_;
    rec.app = tenant.app->name;
    rec.migration = true;
    rec.accepted = dest.has_value();
    if (dest) {
      evict(i, victim_core);
      rec.machine = *dest;
      rec.core = lowest_free_core(nodes_[*dest]);
      admit(*dest, rec.core, tenant);
      ++m.migrations;
      if (metrics_.migration_streak) {
        metrics_.migration_streak->record(static_cast<double>(streak));
      }
      if (tr.enabled(trace::Kind::kMigration)) {
        tr.emit(trace::Kind::kMigration,
                static_cast<double>(epoch_) * config_.epoch_sec,
                {{"tenant", tenant.id},
                 {"app", tenant.app->name},
                 {"from", static_cast<unsigned>(i)},
                 {"to", *dest}});
      }
    }
    placement_log_.push_back(std::move(rec));
  }
}

void Cluster::do_arrivals(double epoch_end, EpochMetrics& m) {
  auto& tr = trace::resolve(config_.tracer);
  const auto arrivals = churn_.drain_until(epoch_end);

  // The per-arrival commit body, shared by both routes below. Called
  // strictly in arrival order either way, so counters, admissions,
  // metrics, trace events and the placement log keep the exact sequence
  // the historical per-arrival loop produced. Its only index mutation is
  // the admit — the contract PlacementEngine::CommitFn requires.
  auto commit = [&](std::size_t i, std::optional<unsigned> dest) {
    const auto& a = arrivals[i];
    ++m.arrivals;

    PlacementRecord rec;
    rec.tenant_id = a.id;
    rec.epoch = epoch_;
    rec.app = a.app->name;
    rec.accepted = dest.has_value();
    if (dest) {
      rec.machine = *dest;
      rec.core = lowest_free_core(nodes_[*dest]);
      admit(*dest, rec.core, {a.id, a.app, a.t_sec + a.lifetime_sec});
      if (metrics_.placement_wait) {
        // Arrivals drain at the epoch boundary, so a tenant waits from its
        // arrival instant to the end of the epoch it lands in.
        metrics_.placement_wait->record((epoch_end - a.t_sec) /
                                        config_.epoch_sec);
      }
    } else {
      ++m.rejected;
    }
    if (tr.enabled(trace::Kind::kPlacement)) {
      tr.emit(trace::Kind::kPlacement, a.t_sec,
              {{"tenant", a.id},
               {"app", a.app->name},
               {"accepted", rec.accepted},
               {"machine", rec.accepted ? rec.machine : 0u}});
    }
    placement_log_.push_back(std::move(rec));
  };

  if (index_) {
    // The engine owns the decide-and-commit loop over the whole queue —
    // sequential by default, `mrc` speculates the queue's scoring across
    // the pool and commits in order (byte-identical by DESIGN.md §5j).
    arrival_apps_.clear();
    arrival_apps_.reserve(arrivals.size());
    for (const auto& a : arrivals) arrival_apps_.push_back(a.app);
    placement_->place_arrivals(arrival_apps_, *index_, commit);
  } else {
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      commit(i, place_tenant(*arrivals[i].app, std::nullopt));
    }
  }
}

void Cluster::step_all(double epoch_end) {
  epoch_stats_.resize(nodes_.size());
  // Batched data plane: task b advances one MachineBatch's machine slice,
  // each lane run through the same control loop as the per-machine path.
  // Batch stepping is bit-equal to Machine::run_until by construction and
  // the reduction stays index-ordered, so CSV/metrics exports are
  // byte-identical at any (jobs, batch_machines) — and to the unbatched
  // plane below.
  if (!batches_.empty()) {
    auto step_batch = [&](std::size_t b) {
      sim::MachineBatch& batch = *batches_[b];
      const std::size_t start = batch_start_[b];
      for (unsigned k = 0; k < batch.size(); ++k) {
        const std::size_t i = start + k;
        Node& node = nodes_[i];
        sim::Machine& machine = *node.machine;
        while (machine.time_sec() < epoch_end - kEps) {
          const double interval = std::max(node.policy->interval_sec(),
                                           config_.machine.quantum_sec);
          batch.run_until(k,
                          std::min(machine.time_sec() + interval, epoch_end));
          node.policy->act(node.ctx);
        }
        fill_epoch_stat(i);
      }
    };
    // jobs_ gates the data plane on its own — the shared pool may exist
    // purely for control-plane scoring (cp_jobs > 1, jobs == 1).
    if (!pool_ || jobs_ <= 1 || batches_.size() <= 1) {
      for (std::size_t b = 0; b < batches_.size(); ++b) step_batch(b);
    } else {
      util::parallel_for(*pool_, batches_.size(), step_batch);
    }
    return;
  }
  auto step_node = [&](std::size_t i) {
    Node& node = nodes_[i];
    sim::Machine& machine = *node.machine;
    // The single-machine control loop, clipped to the epoch boundary:
    // run to the next policy deadline (or the boundary, whichever is
    // first), then let the policy act. Pure function of the node's own
    // state — nothing here sees another machine.
    while (machine.time_sec() < epoch_end - kEps) {
      const double interval = std::max(node.policy->interval_sec(),
                                       config_.machine.quantum_sec);
      machine.run_until(std::min(machine.time_sec() + interval, epoch_end));
      node.policy->act(node.ctx);
    }
    fill_epoch_stat(i);
  };
  if (!pool_ || jobs_ <= 1 || nodes_.size() <= 1) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) step_node(i);
  } else {
    util::parallel_for(*pool_, nodes_.size(), step_node);
  }
}

void Cluster::fill_epoch_stat(std::size_t i) {
  Node& node = nodes_[i];
  MachineEpochStat st;
  st.machine = static_cast<unsigned>(i);
  st.hp = node.hp;
  std::vector<metrics::IpcPair> pairs;
  pairs.reserve(config_.cores_used);
  for (unsigned c = 0; c < config_.cores_used; ++c) {
    const auto& tel = node.machine->telemetry(c);
    const double d_instr = tel.instructions - node.instr_base[c];
    const double d_cycles = tel.active_cycles - node.cycles_base[c];
    node.instr_base[c] = tel.instructions;
    node.cycles_base[c] = tel.active_cycles;
    const bool occupied = c == 0 || node.tenants[c].has_value();
    if (c != 0 && node.tenants[c].has_value()) ++st.tenants;
    if (!occupied || d_cycles <= 0.0) continue;
    const double ipc = d_instr / d_cycles;
    const double alone =
        c == 0 ? directory_.signal(node.hp->name).ipc_alone
               : directory_.signal(node.tenants[c]->app->name).ipc_alone;
    pairs.push_back({alone, ipc});
    if (c == 0 && alone > 0.0) {
      st.hp_norm = ipc / alone;
      st.hp_slowdown = ipc > 0.0 ? alone / ipc : 0.0;
    }
  }
  st.efu = metrics::effective_utilisation(pairs);
  st.link_rho = std::min(node.machine->last_link_utilisation(), 1.0);
  st.slo_violated = st.hp_norm < config_.slo_norm;
  epoch_stats_[i] = st;
}

void Cluster::reduce(EpochMetrics& m) {
  double efu_sum = 0.0;
  double hp_norm_sum = 0.0;
  double rho_sum = 0.0;
  std::uint64_t occupied_violations = 0;
  epoch_efu_hist_.reset();
  epoch_slowdown_hist_.reset();
  // Single-threaded fold over the shard outputs, strictly in machine-index
  // order — sums and histogram `sum`s see one fixed operand order, so the
  // row and every metrics export replay bit-for-bit at any worker count.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    const MachineEpochStat& st = epoch_stats_[i];
    efu_sum += st.efu;
    hp_norm_sum += st.hp_norm;
    rho_sum += st.link_rho;
    epoch_efu_hist_.record(st.efu);
    if (st.hp_slowdown > 0.0) epoch_slowdown_hist_.record(st.hp_slowdown);
    if (st.slo_violated) {
      ++m.slo_violations;
      ++node.slo_streak;
      if (st.tenants > 0) ++occupied_violations;
    } else {
      node.slo_streak = 0;
    }
    if (st.tenants > 0) ++m.occupied_machines;
    if (config_.metrics) {
      metrics_.efu->record(st.efu);
      metrics_.hp_norm->record(st.hp_norm);
      if (st.hp_slowdown > 0.0) {
        metrics_.hp_slowdown->record(st.hp_slowdown);
      }
      metrics_.link_rho->record(st.link_rho);
      for (unsigned c = 1; c < config_.cores_used; ++c) {
        if (node.tenants[c]) {
          metrics_.tenant_footprint->record(
              directory_.signal(node.tenants[c]->app->name).footprint_bytes);
        }
      }
      const sim::SolverStats& ss = node.machine->solver_stats();
      metrics_.solver_quanta->inc(ss.quanta - node.solver_base.quanta);
      metrics_.solver_replays->inc(ss.replays - node.solver_base.replays);
      metrics_.solver_solves->inc(ss.solves - node.solver_base.solves);
      metrics_.solver_stable->inc(ss.stable_solves -
                                  node.solver_base.stable_solves);
      metrics_.solver_rounds->inc(ss.total_rounds() -
                                  node.solver_base.total_rounds());
      metrics_.solver_inv_actuator->inc(
          ss.invalidations_actuator -
          node.solver_base.invalidations_actuator);
      metrics_.solver_inv_fingerprint->inc(
          ss.invalidations_fingerprint -
          node.solver_base.invalidations_fingerprint);
      node.solver_base = ss;
    }
  }
  const auto n = static_cast<double>(nodes_.size());
  m.tenants = tenants_running();
  m.fleet_efu = efu_sum / n;
  m.hp_norm_mean = hp_norm_sum / n;
  m.slo_violation_rate = static_cast<double>(m.slo_violations) / n;
  m.link_rho_mean = rho_sum / n;
  m.efu_p50 = epoch_efu_hist_.percentile(50.0);
  m.efu_p95 = epoch_efu_hist_.percentile(95.0);
  m.efu_p99 = epoch_efu_hist_.percentile(99.0);
  m.hp_slowdown_p50 = epoch_slowdown_hist_.percentile(50.0);
  m.hp_slowdown_p95 = epoch_slowdown_hist_.percentile(95.0);
  m.hp_slowdown_p99 = epoch_slowdown_hist_.percentile(99.0);
  m.hp_slowdown_max = epoch_slowdown_hist_.max();
  m.slo_violation_rate_occupied =
      m.occupied_machines
          ? static_cast<double>(occupied_violations) /
                static_cast<double>(m.occupied_machines)
          : 0.0;
  if (config_.metrics) {
    metrics_.arrivals->inc(m.arrivals);
    metrics_.departures->inc(m.departures);
    metrics_.rejected->inc(m.rejected);
    metrics_.migrations->inc(m.migrations);
    metrics_.slo_violations->inc(m.slo_violations);
    metrics_.epochs->inc();
    metrics_.tenants->set(static_cast<double>(m.tenants));
    metrics_.occupied->set(static_cast<double>(m.occupied_machines));
    metrics_.t_sec->set(m.t_sec);
  }
}

EpochMetrics Cluster::step_epoch() {
  const double epoch_start = static_cast<double>(epoch_) * config_.epoch_sec;
  const double epoch_end = epoch_start + config_.epoch_sec;

  EpochMetrics m;
  m.epoch = epoch_;
  m.t_sec = epoch_end;

  // Wall-clock scopes land in TimerRegistry::global() (printed under
  // --profile); kTimer trace emission stays mask-gated, so default traces
  // and all exports remain deterministic.
  auto* tr_timers = &trace::resolve(config_.tracer);
  trace::ScopedTimer epoch_timer("fleet.epoch", tr_timers);
  {
    // The parent scope keeps the historical all-in "control plane" number
    // comparable across versions; the child scopes split it into the three
    // phases so a profile shows *which* one dominates (arrivals, usually).
    trace::ScopedTimer t("fleet.placement", tr_timers);
    {
      trace::ScopedTimer td("fleet.departures", tr_timers);
      do_departures(epoch_start, m);
    }
    {
      trace::ScopedTimer tm("fleet.migrations", tr_timers);
      do_migrations(m);
    }
    {
      trace::ScopedTimer ta("fleet.arrivals", tr_timers);
      do_arrivals(epoch_end, m);
    }
  }
  {
    trace::ScopedTimer t("fleet.step", tr_timers);
    step_all(epoch_end);
  }
  {
    trace::ScopedTimer t("fleet.reduce", tr_timers);
    reduce(m);
  }

  auto& tr = trace::resolve(config_.tracer);
  if (tr.enabled(trace::Kind::kFleetEpoch)) {
    tr.emit(trace::Kind::kFleetEpoch, epoch_end,
            {{"epoch", m.epoch},
             {"tenants", m.tenants},
             {"arrivals", m.arrivals},
             {"departures", m.departures},
             {"rejected", m.rejected},
             {"migrations", m.migrations},
             {"fleet_efu", m.fleet_efu},
             {"hp_norm_mean", m.hp_norm_mean},
             {"slo_violations", m.slo_violations},
             {"link_rho_mean", m.link_rho_mean}});
  }
  ++epoch_;
  return m;
}

std::vector<EpochMetrics> Cluster::run(std::uint64_t n_epochs) {
  std::vector<EpochMetrics> rows;
  rows.reserve(n_epochs);
  for (std::uint64_t i = 0; i < n_epochs; ++i) rows.push_back(step_epoch());
  return rows;
}

double Cluster::mean_efu(const std::vector<EpochMetrics>& rows) {
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : rows) sum += r.fleet_efu;
  return sum / static_cast<double>(rows.size());
}

}  // namespace dicer::fleet
