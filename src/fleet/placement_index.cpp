#include "fleet/placement_index.hpp"

#include <stdexcept>

namespace dicer::fleet {

// --- OpenBits -------------------------------------------------------------

void PlacementIndex::OpenBits::push_back(bool open) {
  if (tree_.empty()) tree_.push_back(0);  // 1-based sentinel
  // Appending index j (1-based): tree_[j] covers (j - lowbit(j), j], all of
  // which is already summable from existing entries plus the new bit.
  const std::size_t j = tree_.size();
  const std::size_t lowbit = j & (~j + 1);
  const std::uint64_t v = open ? 1 : 0;
  tree_.push_back(v + prefix(j - 1) - prefix(j - lowbit));
  bits_.push_back(open);
  total_ += v;
}

void PlacementIndex::OpenBits::set(std::size_t i, bool open) {
  if (bits_[i] == open) return;
  const std::int64_t d = open ? 1 : -1;
  bits_[i] = open;
  total_ += d;
  for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
    tree_[j] += static_cast<std::uint64_t>(d);
  }
}

std::uint64_t PlacementIndex::OpenBits::prefix(std::size_t n) const {
  std::uint64_t sum = 0;
  for (std::size_t j = n; j > 0; j -= j & (~j + 1)) sum += tree_[j];
  return sum;
}

std::size_t PlacementIndex::OpenBits::select(std::uint64_t k) const {
  if (k >= total_) {
    throw std::out_of_range("PlacementIndex: open-machine rank past end");
  }
  // Binary-lifting descent: find the largest prefix holding <= k set bits;
  // the answer is the next index.
  std::size_t pos = 0;
  std::size_t step = 1;
  const std::size_t n = bits_.size();
  while ((step << 1) <= n) step <<= 1;
  std::uint64_t remaining = k + 1;
  for (; step > 0; step >>= 1) {
    const std::size_t next = pos + step;
    if (next <= n && tree_[next] < remaining) {
      pos = next;
      remaining -= tree_[next];
    }
  }
  return pos;  // prefix(pos) == k, bits_[pos] is the k-th open machine
}

// --- PlacementIndex -------------------------------------------------------

PlacementIndex::PlacementIndex(const AppDirectory& dir, unsigned be_slots)
    : dir_(&dir), be_slots_(be_slots), by_free_(be_slots + 1) {
  if (be_slots == 0) {
    throw std::invalid_argument("PlacementIndex: need at least one BE slot");
  }
}

unsigned PlacementIndex::add_machine(const sim::AppProfile* hp) {
  const auto index = static_cast<unsigned>(slots_.size());
  Slot slot;
  slot.hp = hp;
  slot.hp_sig = &dir_->signal(hp->name);
  slot.sig_by_core.assign(be_slots_ + 1, nullptr);
  slot.app_by_core.assign(be_slots_ + 1, nullptr);
  slot.free_cores = be_slots_;
  slots_.push_back(std::move(slot));
  open_.push_back(true);
  by_free_[be_slots_].insert(index);
  return index;
}

const PlacementIndex::Slot& PlacementIndex::at(unsigned machine) const {
  if (machine >= slots_.size()) {
    throw std::out_of_range("PlacementIndex: machine index out of range");
  }
  return slots_[machine];
}

PlacementIndex::Slot& PlacementIndex::at(unsigned machine) {
  if (machine >= slots_.size()) {
    throw std::out_of_range("PlacementIndex: machine index out of range");
  }
  return slots_[machine];
}

void PlacementIndex::rebucket(unsigned machine, unsigned from, unsigned to) {
  if (from > 0) by_free_[from].erase(machine);
  if (to > 0) by_free_[to].insert(machine);
  if ((from > 0) != (to > 0)) open_.set(machine, to > 0);
}

void PlacementIndex::admit(unsigned machine, unsigned core,
                           const sim::AppProfile* app) {
  Slot& slot = at(machine);
  if (core == 0 || core > be_slots_ || slot.sig_by_core[core] != nullptr) {
    throw std::logic_error("PlacementIndex: admit to an invalid/busy core");
  }
  slot.sig_by_core[core] = &dir_->signal(app->name);
  slot.app_by_core[core] = app;
  rebucket(machine, slot.free_cores, slot.free_cores - 1);
  --slot.free_cores;
  ++slot.version;
  ++mutations_;
}

void PlacementIndex::detach(unsigned machine, unsigned core) {
  Slot& slot = at(machine);
  if (core == 0 || core > be_slots_ || slot.sig_by_core[core] == nullptr) {
    throw std::logic_error("PlacementIndex: detach from an invalid/free core");
  }
  slot.sig_by_core[core] = nullptr;
  slot.app_by_core[core] = nullptr;
  rebucket(machine, slot.free_cores, slot.free_cores + 1);
  ++slot.free_cores;
  ++slot.version;
  ++mutations_;
}

const sim::AppProfile* PlacementIndex::hp(unsigned machine) const {
  return at(machine).hp;
}

const AppSignal& PlacementIndex::hp_signal(unsigned machine) const {
  return *at(machine).hp_sig;
}

unsigned PlacementIndex::free_cores(unsigned machine) const {
  return at(machine).free_cores;
}

const sim::AppProfile* PlacementIndex::tenant(unsigned machine,
                                              unsigned core) const {
  const Slot& slot = at(machine);
  if (core == 0 || core > be_slots_) {
    throw std::out_of_range("PlacementIndex: core out of range");
  }
  return slot.app_by_core[core];
}

void PlacementIndex::tenant_signals(
    unsigned machine, std::vector<const AppSignal*>& out) const {
  const Slot& slot = at(machine);
  out.clear();
  for (unsigned c = 1; c <= be_slots_; ++c) {
    if (slot.sig_by_core[c]) out.push_back(slot.sig_by_core[c]);
  }
}

std::uint64_t PlacementIndex::open_count() const noexcept {
  return open_.total();
}

unsigned PlacementIndex::nth_open(std::uint64_t k) const {
  return static_cast<unsigned>(open_.select(k));
}

std::uint64_t PlacementIndex::open_rank(unsigned machine) const {
  return open_.prefix(machine);
}

std::optional<unsigned> PlacementIndex::least_loaded(
    std::optional<unsigned> exclude) const {
  for (unsigned f = be_slots_; f >= 1; --f) {
    for (const unsigned m : by_free_[f]) {
      if (exclude && *exclude == m) continue;
      return m;
    }
  }
  return std::nullopt;
}

std::uint64_t PlacementIndex::version(unsigned machine) const {
  return at(machine).version;
}

bool PlacementIndex::has_before(unsigned machine) const {
  const Slot& slot = at(machine);
  return slot.before_version == slot.version;
}

double PlacementIndex::before(unsigned machine) const {
  return at(machine).before;
}

void PlacementIndex::set_before(unsigned machine, double score) {
  Slot& slot = at(machine);
  slot.before = score;
  slot.before_version = slot.version;
}

bool PlacementIndex::has_delta(unsigned machine, std::size_t app_id) const {
  const Slot& slot = at(machine);
  return app_id < slot.delta_version.size() &&
         slot.delta_version[app_id] == slot.version;
}

double PlacementIndex::delta(unsigned machine, std::size_t app_id) const {
  return at(machine).delta[app_id];
}

void PlacementIndex::set_delta(unsigned machine, std::size_t app_id,
                               double delta) {
  Slot& slot = at(machine);
  if (slot.delta.empty()) {
    slot.delta.assign(dir_->size(), 0.0);
    slot.delta_version.assign(dir_->size(), 0);
  }
  slot.delta[app_id] = delta;
  slot.delta_version[app_id] = slot.version;
}

}  // namespace dicer::fleet
