// fleet::Cluster — a datacenter of sim::Machine instances under tenant
// churn.
//
// Every machine hosts one long-running HP service (drawn deterministically
// from the catalog at boot) on core 0 and up to cores_used-1 best-effort
// tenants, each machine governed by its own policy instance
// (policy::factory — DICER by default, so the fleet is ~N independent
// copies of the paper's single-machine loop). Time advances in epochs:
//
//   1. control plane (decisions committed single-threaded, machine-index
//      order): departures -> SLO-triggered migrations -> arrivals via the
//      PlacementEngine. With parallel_control_plane the *inside* of the
//      MRC decisions fans out over the pool (sharded candidate scoring,
//      and for `mrc` an optimistic speculate/commit arrival pipeline) —
//      a speed knob whose decisions stay byte-identical (DESIGN.md §5j)
//   2. data plane: every machine steps to the epoch boundary, sharded
//      across a util::ThreadPool — machine i is task i, machines never
//      interact mid-epoch, so any worker count replays the serial fleet
//      bit-for-bit
//   3. reduction (single-threaded, machine-index order): each shard left a
//      MachineEpochStat (EFU / HP QoS / link rho from telemetry deltas) in
//      its machine's slot; the fold walks them in index order into one
//      EpochMetrics row, the per-epoch percentile histograms and — when
//      FleetConfig::metrics is set — the telemetry::Registry
//
// The determinism contract matches the sweep's: same (config, seed) =>
// byte-identical per-epoch CSV, placement log and metrics exports
// (Prometheus text, epoch JSONL) at any `jobs`.
// Placement decisions, migrations and per-epoch aggregates are also
// emitted as trace events (kPlacement / kMigration / kFleetEpoch) through
// the dicer::trace sinks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/churn.hpp"
#include "fleet/directory.hpp"
#include "fleet/placement.hpp"
#include "fleet/placement_index.hpp"
#include "policy/policy.hpp"
#include "rdt/cat.hpp"
#include "rdt/monitor.hpp"
#include "sim/core/catalog.hpp"
#include "sim/machine.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_pool.hpp"

namespace dicer::fleet {

struct FleetConfig {
  unsigned num_machines = 100;
  /// Cores used per machine: core 0 is the HP, the rest are BE slots.
  unsigned cores_used = 10;
  sim::MachineConfig machine{};
  std::string policy = "DICER";     ///< per-machine policy (policy::factory)
  std::string placement = "mrc";  ///< random | least-loaded | mrc | mrc-p2c
  double epoch_sec = 1.0;
  double slo_norm = 0.90;           ///< HP SLO: normalised IPC >= slo_norm
  /// Migrate one BE off a machine whose HP violated its SLO for this many
  /// consecutive epochs (0 disables migration).
  unsigned migrate_after = 3;
  ChurnConfig churn{};
  std::uint64_t seed = 42;          ///< HP assignment + random placement
  unsigned jobs = 0;                ///< stepping shards; 0 = auto
  /// Maintain the persistent fleet::PlacementIndex and route every
  /// placement decision through PlacementEngine::place_indexed instead of
  /// rebuilding MachineViews per arrival. Like batching, a speed knob that
  /// never changes a result byte: decisions, placement log, CSV and every
  /// metrics export are byte-identical either way (test- and CI-pinned).
  /// The DICER_NO_PLACEMENT_INDEX env override (any value but "" or "0")
  /// forces the historical full-scan path regardless of this flag.
  bool placement_index = true;
  /// Parallelise the control plane's placement scoring: candidate scans
  /// shard over the worker pool and `mrc` pipelines each epoch's arrival
  /// queue through speculative scoring + in-order commits. Decisions,
  /// placement log and every export stay byte-identical at any worker
  /// count (test- and CI-pinned). The DICER_NO_PARALLEL_CP env override
  /// (any value but "" or "0") forces serial scoring regardless.
  bool parallel_control_plane = true;
  /// Control-plane scoring shards; 0 = follow the resolved `jobs`. The
  /// worker pool is sized max(jobs, cp_jobs), so the control plane can
  /// fan wider than the data plane (or vice versa) without a second pool.
  unsigned cp_jobs = 0;
  /// mrc-p2c fan-out d: candidates drawn per decision (>= 1; ignored by
  /// the other engines). d = 1 is seeded-random placement, large d
  /// approaches full best-fit at d scores per decision.
  unsigned p2c_choices = MrcP2cPlacement::kChoices;
  /// Machines per data-plane batch: each stepping task advances one
  /// sim::MachineBatch (a contiguous machine slice sharing a phase table
  /// and the fused replay path) instead of a single machine. 0 = auto,
  /// balancing batch locality against worker load (~4 batches per worker,
  /// clamped to [1, 32]). Like `jobs`, this knob never changes a result
  /// byte; sim::MachineConfig::batch_stepping / DICER_NO_BATCH=1 fall back
  /// to the historical machine-per-task data plane.
  unsigned batch_machines = 0;
  /// Event sink (null = process-global tracer).
  trace::Tracer* tracer = nullptr;
  /// Metrics registry for fleet-wide distributions, actuation counters and
  /// per-machine solver stats (null = no metric recording). Per-machine
  /// samples are produced by the stepping shards and folded into the
  /// registry in machine-index order, so exports are byte-identical at any
  /// `jobs` count.
  telemetry::Registry* metrics = nullptr;
};

/// One epoch's fleet-level telemetry.
struct EpochMetrics {
  std::uint64_t epoch = 0;     ///< 0-based
  double t_sec = 0.0;          ///< simulated time at epoch end
  std::uint64_t tenants = 0;   ///< BE tenants running at epoch end
  std::uint64_t occupied_machines = 0;  ///< machines with >= 1 BE tenant
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t rejected = 0;    ///< arrivals with no feasible machine
  std::uint64_t migrations = 0;
  double fleet_efu = 0.0;        ///< mean per-machine EFU over the epoch
  double hp_norm_mean = 0.0;     ///< mean normalised HP IPC
  std::uint64_t slo_violations = 0;  ///< machines under slo_norm this epoch
  double slo_violation_rate = 0.0;   ///< slo_violations / num_machines
  double link_rho_mean = 0.0;    ///< mean end-of-epoch link utilisation
  /// Tail statistics from the per-epoch histograms: a fleet can hold a
  /// healthy *mean* EFU while a tail of machines burns their HP's SLO, so
  /// the row carries the distribution, not just its first moment.
  double efu_p50 = 0.0;
  double efu_p95 = 0.0;
  double efu_p99 = 0.0;
  /// HP slowdown (IPC_alone / IPC, >= ~1 under contention) percentiles
  /// over machines whose HP executed this epoch.
  double hp_slowdown_p50 = 0.0;
  double hp_slowdown_p95 = 0.0;
  double hp_slowdown_p99 = 0.0;
  double hp_slowdown_max = 0.0;
  /// SLO violations among *occupied* machines / occupied machines — the
  /// honest denominator (an idle machine cannot meaningfully violate).
  /// `slo_violation_rate` keeps the historical all-machines denominator
  /// for comparability with pre-existing CSVs.
  double slo_violation_rate_occupied = 0.0;
};

/// Shared CSV shape for the per-epoch fleet metrics (full %.17g precision,
/// so the jobs-invariance tests pin every bit).
std::string epoch_csv_header();
std::string epoch_csv_row(const EpochMetrics& m);
/// The same row as one JSON object (fixed key order = CSV column order,
/// %.17g doubles) — the per-epoch JSONL time series for offline plotting.
std::string epoch_jsonl_row(const EpochMetrics& m);

/// One machine's contribution to an epoch, computed by its stepping shard
/// and folded fleet-wide in machine-index order. `fleet_top` ranks its
/// worst-K table from these.
struct MachineEpochStat {
  unsigned machine = 0;
  const sim::AppProfile* hp = nullptr;  ///< the machine's HP app
  double efu = 0.0;          ///< per-machine EFU over the epoch
  double hp_norm = 0.0;      ///< HP normalised IPC (0 if unmeasurable)
  double hp_slowdown = 0.0;  ///< 1 / hp_norm (0 if unmeasurable)
  double link_rho = 0.0;     ///< end-of-epoch link utilisation, capped at 1
  unsigned tenants = 0;      ///< BE tenants at epoch end
  bool slo_violated = false; ///< hp_norm < slo_norm
};

/// One placement-engine decision, in decision order (arrivals and
/// migrations interleaved as they happened).
struct PlacementRecord {
  std::uint64_t tenant_id = 0;
  std::uint64_t epoch = 0;
  std::string app;
  bool accepted = false;
  bool migration = false;  ///< re-placement off an SLO-violating machine
  unsigned machine = 0;    ///< valid iff accepted
  unsigned core = 0;       ///< valid iff accepted
};

class Cluster {
 public:
  /// Builds num_machines booted machines (HP attached, policy set up).
  /// `catalog` must outlive the cluster. Throws std::invalid_argument on
  /// a nonsensical config (no machines, cores out of range, epoch shorter
  /// than a quantum).
  Cluster(const FleetConfig& config, const sim::AppCatalog& catalog);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Advance the whole fleet by one epoch and return its metrics row.
  EpochMetrics step_epoch();
  /// step_epoch() n times.
  std::vector<EpochMetrics> run(std::uint64_t n_epochs);

  const FleetConfig& config() const noexcept { return config_; }
  const AppDirectory& directory() const noexcept { return directory_; }
  unsigned num_machines() const noexcept {
    return static_cast<unsigned>(nodes_.size());
  }
  std::uint64_t epochs_done() const noexcept { return epoch_; }
  /// BE tenants currently running fleet-wide (an O(1) counter maintained
  /// by admit/departure/migration, pinned equal to the per-core scan by
  /// the randomized-churn tests).
  std::uint64_t tenants_running() const noexcept { return tenants_count_; }
  /// The HP app hosted on `machine`.
  const sim::AppProfile& hp_of(unsigned machine) const;
  /// Current placement-relevant state of every machine, in index order.
  std::vector<MachineView> views() const;
  /// The live placement index, or null when the full-scan path is active
  /// (FleetConfig::placement_index false or DICER_NO_PLACEMENT_INDEX set).
  const PlacementIndex* placement_index() const noexcept {
    return index_.get();
  }
  /// Every placement decision so far, in decision order.
  const std::vector<PlacementRecord>& placement_log() const noexcept {
    return placement_log_;
  }
  /// Per-machine stats of the most recent epoch, in machine-index order
  /// (empty until the first step_epoch()).
  const std::vector<MachineEpochStat>& last_epoch_stats() const noexcept {
    return epoch_stats_;
  }

  /// Mean fleet EFU over a run's rows (0 for an empty run).
  static double mean_efu(const std::vector<EpochMetrics>& rows);

 private:
  struct Tenant {
    std::uint64_t id = 0;
    const sim::AppProfile* app = nullptr;
    double depart_t_sec = 0.0;
  };

  /// One machine plus its whole single-machine control plane. Pointer
  /// members keep PolicyContext's raw pointers stable if nodes_ moves.
  struct Node {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rdt::CatController> cat;
    std::unique_ptr<rdt::Monitor> monitor;
    std::unique_ptr<policy::Policy> policy;
    policy::PolicyContext ctx;
    const sim::AppProfile* hp = nullptr;
    std::vector<std::optional<Tenant>> tenants;  ///< indexed by core
    unsigned slo_streak = 0;  ///< consecutive SLO-violating epochs
    /// Telemetry baselines for epoch deltas, indexed by core.
    std::vector<double> instr_base;
    std::vector<double> cycles_base;
    /// SolverStats scalars at the last registry fold (per-epoch deltas).
    sim::SolverStats solver_base;
  };

  /// Registry handles resolved once at boot (all null when
  /// config.metrics == nullptr).
  struct MetricSet {
    telemetry::Histogram* efu = nullptr;
    telemetry::Histogram* hp_norm = nullptr;
    telemetry::Histogram* hp_slowdown = nullptr;
    telemetry::Histogram* link_rho = nullptr;
    telemetry::Histogram* tenant_footprint = nullptr;
    telemetry::Histogram* placement_wait = nullptr;
    telemetry::Histogram* migration_streak = nullptr;
    telemetry::Counter* arrivals = nullptr;
    telemetry::Counter* departures = nullptr;
    telemetry::Counter* rejected = nullptr;
    telemetry::Counter* migrations = nullptr;
    telemetry::Counter* slo_violations = nullptr;
    telemetry::Counter* epochs = nullptr;
    telemetry::Gauge* tenants = nullptr;
    telemetry::Gauge* occupied = nullptr;
    telemetry::Gauge* t_sec = nullptr;
    telemetry::Counter* solver_quanta = nullptr;
    telemetry::Counter* solver_replays = nullptr;
    telemetry::Counter* solver_solves = nullptr;
    telemetry::Counter* solver_stable = nullptr;
    telemetry::Counter* solver_rounds = nullptr;
    telemetry::Counter* solver_inv_actuator = nullptr;
    telemetry::Counter* solver_inv_fingerprint = nullptr;
  };

  void boot_node(Node& node, const sim::AppProfile* hp);
  void bind_metrics();
  /// Attach `tenant` to `core` of machine `m` (mask re-associated to the
  /// BE CLOS — Machine::detach reverts cores to the full mask), keeping
  /// the tenant counter and the placement index in step.
  void admit(std::size_t m, unsigned core, const Tenant& tenant);
  /// Detach whatever runs on `core` of machine `m`, keeping the tenant
  /// counter and the placement index in step.
  void evict(std::size_t m, unsigned core);
  /// One placement decision: the indexed fast path when the index is live,
  /// the historical views() full scan otherwise. `exclude` closes one
  /// machine (migration sources).
  std::optional<unsigned> place_tenant(const sim::AppProfile& app,
                                       std::optional<unsigned> exclude);
  unsigned lowest_free_core(const Node& node) const;
  void do_departures(double epoch_start, EpochMetrics& m);
  void do_migrations(EpochMetrics& m);
  void do_arrivals(double epoch_end, EpochMetrics& m);
  void step_all(double epoch_end);
  /// Shard-local epoch stat for machine i (pure function of the node's own
  /// state — runs on whichever worker stepped the machine).
  void fill_epoch_stat(std::size_t i);
  void reduce(EpochMetrics& m);

  FleetConfig config_;
  const sim::AppCatalog* catalog_;
  AppDirectory directory_;
  ChurnGenerator churn_;
  std::unique_ptr<PlacementEngine> placement_;
  /// Incremental placement view (null when disabled): slots mirror the
  /// nodes' tenant arrays, updated by admit/evict, consulted by
  /// place_tenant. Declared after directory_ (it holds signal pointers
  /// into it).
  std::unique_ptr<PlacementIndex> index_;
  /// BE tenants running now — admit/evict keep it equal to the per-core
  /// scan without the O(machines x cores) walk each epoch paid.
  std::uint64_t tenants_count_ = 0;
  std::vector<Node> nodes_;
  /// Shared worker pool for the data plane and the control plane's shard
  /// scoring; null when max(jobs_, cp_jobs_) == 1.
  std::unique_ptr<util::ThreadPool> pool_;
  unsigned jobs_ = 1;     ///< data-plane stepping shards
  unsigned cp_jobs_ = 1;  ///< control-plane scoring shards (1 = serial)
  /// Arrival-queue scratch for place_arrivals (reused every epoch).
  std::vector<const sim::AppProfile*> arrival_apps_;
  std::uint64_t epoch_ = 0;
  std::vector<PlacementRecord> placement_log_;
  /// Shard outputs, indexed by machine: each worker writes only its
  /// machine's slot, the reduction reads them in index order.
  std::vector<MachineEpochStat> epoch_stats_;
  MetricSet metrics_;
  /// Per-epoch distribution scratch behind the percentile CSV columns
  /// (reset every reduction; independent of config.metrics).
  telemetry::Histogram epoch_efu_hist_;
  telemetry::Histogram epoch_slowdown_hist_;
  /// Persistent data-plane batches over contiguous machine ranges; batch b
  /// covers machines [batch_start_[b], batch_start_[b] + batches_[b]->size())
  /// and lane k of batch b is machine batch_start_[b] + k. Empty when
  /// batched stepping is disabled (step_all falls back to machine-per-task).
  /// Declared after nodes_ so the batches are destroyed first and can
  /// unhook their shared phase tables from the machines.
  std::vector<std::unique_ptr<sim::MachineBatch>> batches_;
  std::vector<std::size_t> batch_start_;
};

}  // namespace dicer::fleet
