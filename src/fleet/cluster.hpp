// fleet::Cluster — a datacenter of sim::Machine instances under tenant
// churn.
//
// Every machine hosts one long-running HP service (drawn deterministically
// from the catalog at boot) on core 0 and up to cores_used-1 best-effort
// tenants, each machine governed by its own policy instance
// (policy::factory — DICER by default, so the fleet is ~N independent
// copies of the paper's single-machine loop). Time advances in epochs:
//
//   1. control plane (single-threaded, machine-index order):
//      departures -> SLO-triggered migrations -> arrivals via the
//      PlacementEngine
//   2. data plane: every machine steps to the epoch boundary, sharded
//      across a util::ThreadPool — machine i is task i, machines never
//      interact mid-epoch, so any worker count replays the serial fleet
//      bit-for-bit
//   3. reduction (single-threaded, machine-index order): per-machine
//      epoch EFU / HP QoS from telemetry deltas, folded into one
//      EpochMetrics row
//
// The determinism contract matches the sweep's: same (config, seed) =>
// byte-identical per-epoch CSV and placement log at any `jobs`.
// Placement decisions, migrations and per-epoch aggregates are also
// emitted as trace events (kPlacement / kMigration / kFleetEpoch) through
// the dicer::trace sinks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/churn.hpp"
#include "fleet/directory.hpp"
#include "fleet/placement.hpp"
#include "policy/policy.hpp"
#include "rdt/cat.hpp"
#include "rdt/monitor.hpp"
#include "sim/core/catalog.hpp"
#include "sim/machine.hpp"
#include "util/thread_pool.hpp"

namespace dicer::fleet {

struct FleetConfig {
  unsigned num_machines = 100;
  /// Cores used per machine: core 0 is the HP, the rest are BE slots.
  unsigned cores_used = 10;
  sim::MachineConfig machine{};
  std::string policy = "DICER";     ///< per-machine policy (policy::factory)
  std::string placement = "mrc";    ///< random | least-loaded | mrc
  double epoch_sec = 1.0;
  double slo_norm = 0.90;           ///< HP SLO: normalised IPC >= slo_norm
  /// Migrate one BE off a machine whose HP violated its SLO for this many
  /// consecutive epochs (0 disables migration).
  unsigned migrate_after = 3;
  ChurnConfig churn{};
  std::uint64_t seed = 42;          ///< HP assignment + random placement
  unsigned jobs = 0;                ///< stepping shards; 0 = auto
  /// Event sink (null = process-global tracer).
  trace::Tracer* tracer = nullptr;
};

/// One epoch's fleet-level telemetry.
struct EpochMetrics {
  std::uint64_t epoch = 0;     ///< 0-based
  double t_sec = 0.0;          ///< simulated time at epoch end
  std::uint64_t tenants = 0;   ///< BE tenants running at epoch end
  std::uint64_t occupied_machines = 0;  ///< machines with >= 1 BE tenant
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t rejected = 0;    ///< arrivals with no feasible machine
  std::uint64_t migrations = 0;
  double fleet_efu = 0.0;        ///< mean per-machine EFU over the epoch
  double hp_norm_mean = 0.0;     ///< mean normalised HP IPC
  std::uint64_t slo_violations = 0;  ///< machines under slo_norm this epoch
  double slo_violation_rate = 0.0;   ///< slo_violations / num_machines
  double link_rho_mean = 0.0;    ///< mean end-of-epoch link utilisation
};

/// Shared CSV shape for the per-epoch fleet metrics (full %.17g precision,
/// so the jobs-invariance tests pin every bit).
std::string epoch_csv_header();
std::string epoch_csv_row(const EpochMetrics& m);

/// One placement-engine decision, in decision order (arrivals and
/// migrations interleaved as they happened).
struct PlacementRecord {
  std::uint64_t tenant_id = 0;
  std::uint64_t epoch = 0;
  std::string app;
  bool accepted = false;
  bool migration = false;  ///< re-placement off an SLO-violating machine
  unsigned machine = 0;    ///< valid iff accepted
  unsigned core = 0;       ///< valid iff accepted
};

class Cluster {
 public:
  /// Builds num_machines booted machines (HP attached, policy set up).
  /// `catalog` must outlive the cluster. Throws std::invalid_argument on
  /// a nonsensical config (no machines, cores out of range, epoch shorter
  /// than a quantum).
  Cluster(const FleetConfig& config, const sim::AppCatalog& catalog);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Advance the whole fleet by one epoch and return its metrics row.
  EpochMetrics step_epoch();
  /// step_epoch() n times.
  std::vector<EpochMetrics> run(std::uint64_t n_epochs);

  const FleetConfig& config() const noexcept { return config_; }
  const AppDirectory& directory() const noexcept { return directory_; }
  unsigned num_machines() const noexcept {
    return static_cast<unsigned>(nodes_.size());
  }
  std::uint64_t epochs_done() const noexcept { return epoch_; }
  /// BE tenants currently running fleet-wide.
  std::uint64_t tenants_running() const noexcept;
  /// The HP app hosted on `machine`.
  const sim::AppProfile& hp_of(unsigned machine) const;
  /// Current placement-relevant state of every machine, in index order.
  std::vector<MachineView> views() const;
  /// Every placement decision so far, in decision order.
  const std::vector<PlacementRecord>& placement_log() const noexcept {
    return placement_log_;
  }

  /// Mean fleet EFU over a run's rows (0 for an empty run).
  static double mean_efu(const std::vector<EpochMetrics>& rows);

 private:
  struct Tenant {
    std::uint64_t id = 0;
    const sim::AppProfile* app = nullptr;
    double depart_t_sec = 0.0;
  };

  /// One machine plus its whole single-machine control plane. Pointer
  /// members keep PolicyContext's raw pointers stable if nodes_ moves.
  struct Node {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rdt::CatController> cat;
    std::unique_ptr<rdt::Monitor> monitor;
    std::unique_ptr<policy::Policy> policy;
    policy::PolicyContext ctx;
    const sim::AppProfile* hp = nullptr;
    std::vector<std::optional<Tenant>> tenants;  ///< indexed by core
    unsigned slo_streak = 0;  ///< consecutive SLO-violating epochs
    /// Telemetry baselines for epoch deltas, indexed by core.
    std::vector<double> instr_base;
    std::vector<double> cycles_base;
  };

  void boot_node(Node& node, const sim::AppProfile* hp);
  /// Attach `tenant` to `core` of `node` (mask re-associated to the BE
  /// CLOS — Machine::detach reverts cores to the full mask).
  void admit(Node& node, unsigned core, const Tenant& tenant);
  unsigned lowest_free_core(const Node& node) const;
  void do_departures(double epoch_start, EpochMetrics& m);
  void do_migrations(EpochMetrics& m);
  void do_arrivals(double epoch_end, EpochMetrics& m);
  void step_all(double epoch_end);
  void reduce(EpochMetrics& m);

  FleetConfig config_;
  const sim::AppCatalog* catalog_;
  AppDirectory directory_;
  ChurnGenerator churn_;
  std::unique_ptr<PlacementEngine> placement_;
  std::vector<Node> nodes_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when jobs == 1
  unsigned jobs_ = 1;
  std::uint64_t epoch_ = 0;
  std::vector<PlacementRecord> placement_log_;
};

}  // namespace dicer::fleet
