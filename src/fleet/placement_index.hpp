// fleet::PlacementIndex — a persistent, incrementally-maintained view of
// the fleet for placement decisions.
//
// The historical control plane materialised a fresh MachineView vector
// over *all* machines for every arrival (`Cluster::views()`), then let the
// engine rescan it — O(arrivals x machines x tenants) per epoch, the term
// that dominates a churn-heavy 10k-machine fleet. The index replaces the
// rebuild with per-machine slots updated in O(log N) on admit/detach:
//
//   - slot state: the HP signal, the core-indexed BE signal list (core
//     order is load-bearing — the MRC scorer's floating-point sums walk
//     tenants in core order, and byte-identical scores need the identical
//     operand order), and the free-core count;
//   - an order-statistics tree (Fenwick over 0/1 "has a free core" bits)
//     so `random` can draw the k-th open machine — same single
//     rng.below(open_count) the full scan consumed — without touching the
//     other N-1 machines;
//   - free-core buckets (one ordered set per free-core count) so
//     `least-loaded` resolves as "lowest index in the highest non-empty
//     bucket" instead of a full scan;
//   - a dirty-score protocol for the MRC engines: every tenant-set
//     mutation bumps the slot's version; the cached "before" predict()
//     and the per-app marginal-EFU deltas each carry the version they
//     were computed at, so a stale entry is never read and a clean
//     machine is never re-scored. predict() is a pure function of
//     (HP, tenant list, app), so a cache hit returns the bit-identical
//     double the full scan would recompute.
//
// The index stores facts, not policy: engines drive the score cache via
// has_/set_ accessors and keep the prediction math (placement.cpp), which
// is how the indexed and full-scan paths stay provably byte-identical —
// they share one predict() and one tie-break, and differ only in how many
// times predict() runs.
//
// Single-threaded like the rest of the control plane; `const` reads are
// safe from anywhere, mutations are not.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "fleet/directory.hpp"

namespace dicer::fleet {

class PlacementIndex {
 public:
  /// `dir` must outlive the index. `be_slots` is the number of BE cores
  /// per machine (cores_used - 1); every machine has the same capacity.
  /// Throws std::invalid_argument when be_slots == 0.
  PlacementIndex(const AppDirectory& dir, unsigned be_slots);

  /// Register the next machine (indices are assigned 0, 1, ... in call
  /// order) hosting `hp` and no tenants. Returns its index.
  unsigned add_machine(const sim::AppProfile* hp);

  /// Tenant `app` lands on `machine`'s `core` (1..be_slots). O(log N).
  void admit(unsigned machine, unsigned core, const sim::AppProfile* app);
  /// The tenant on `machine`'s `core` leaves. O(log N).
  void detach(unsigned machine, unsigned core);

  std::size_t size() const noexcept { return slots_.size(); }
  unsigned be_slots() const noexcept { return be_slots_; }
  const AppDirectory& directory() const noexcept { return *dir_; }

  const sim::AppProfile* hp(unsigned machine) const;
  const AppSignal& hp_signal(unsigned machine) const;
  unsigned free_cores(unsigned machine) const;
  bool is_open(unsigned machine) const { return free_cores(machine) > 0; }
  /// The BE tenant on `core` of `machine` (null when the core is free).
  const sim::AppProfile* tenant(unsigned machine, unsigned core) const;

  /// Core-ordered signal list of `machine`'s running BEs — the exact
  /// operand order Cluster::views() produced — written into `out`.
  void tenant_signals(unsigned machine,
                      std::vector<const AppSignal*>& out) const;

  // --- open-set order statistics (machines with >= 1 free core) ---
  std::uint64_t open_count() const noexcept;
  /// The k-th open machine in increasing index order (k in
  /// [0, open_count())). Throws std::out_of_range past the end.
  unsigned nth_open(std::uint64_t k) const;
  /// Open machines with index < `machine`.
  std::uint64_t open_rank(unsigned machine) const;

  /// Lowest-index machine with the maximum free-core count, skipping
  /// `exclude` — the least-loaded winner under uniform capacity (fewest
  /// tenants == most free cores, first-strictly-better == lowest index).
  std::optional<unsigned> least_loaded(
      std::optional<unsigned> exclude = std::nullopt) const;

  /// Monotone index-wide mutation counter: every admit/detach, on any
  /// machine, bumps it by exactly one. The optimistic arrival pipeline
  /// uses it to audit its commit contract — a commit callback must mutate
  /// the index exactly once (the admit onto the decided machine) or not
  /// at all (a rejection), and any other interleaved mutation would
  /// silently invalidate the pipeline's speculative scores.
  std::uint64_t mutations() const noexcept { return mutations_; }

  // --- dirty-score protocol (driven by the MRC engines) ---
  /// Monotone per-machine mutation counter; every admit/detach bumps it.
  std::uint64_t version(unsigned machine) const;
  /// Whether the cached "before" predict() matches the current version.
  bool has_before(unsigned machine) const;
  double before(unsigned machine) const;
  void set_before(unsigned machine, double score);
  /// Whether the cached marginal-EFU of app `app_id` joining `machine`
  /// matches the current version.
  bool has_delta(unsigned machine, std::size_t app_id) const;
  double delta(unsigned machine, std::size_t app_id) const;
  void set_delta(unsigned machine, std::size_t app_id, double delta);

 private:
  struct Slot {
    const sim::AppProfile* hp = nullptr;
    const AppSignal* hp_sig = nullptr;
    /// Indexed by core (0 unused — core 0 is the HP); null = free slot.
    std::vector<const AppSignal*> sig_by_core;
    std::vector<const sim::AppProfile*> app_by_core;
    unsigned free_cores = 0;
    /// Bumped on every tenant-set mutation; score caches stamped with the
    /// version they were computed at are valid iff the stamps match.
    std::uint64_t version = 1;
    std::uint64_t before_version = 0;  ///< 0 = never computed
    double before = 0.0;
    /// Per-app marginal-EFU cache, indexed by AppSignal::id (allocated on
    /// first use — engines that never score a machine pay nothing).
    std::vector<double> delta;
    std::vector<std::uint64_t> delta_version;
  };

  /// Fenwick tree over the 0/1 "machine is open" bits: point update,
  /// prefix count and k-th-set-bit select, all O(log N). Grows by
  /// appending (machines are only ever added).
  class OpenBits {
   public:
    void push_back(bool open);
    void set(std::size_t i, bool open);
    std::uint64_t total() const noexcept { return total_; }
    std::uint64_t prefix(std::size_t n) const;  ///< open bits in [0, n)
    std::size_t select(std::uint64_t k) const;  ///< index of k-th open bit

   private:
    std::vector<std::uint64_t> tree_;  ///< 1-based; tree_[0] unused
    std::vector<bool> bits_;
    std::uint64_t total_ = 0;
  };

  const Slot& at(unsigned machine) const;
  Slot& at(unsigned machine);
  /// Move `machine` between free-core buckets and the open-bits tree when
  /// its free count changes from `from` to `to`.
  void rebucket(unsigned machine, unsigned from, unsigned to);

  const AppDirectory* dir_;
  unsigned be_slots_;
  std::uint64_t mutations_ = 0;
  std::vector<Slot> slots_;
  OpenBits open_;
  /// by_free_[f] = machines with exactly f free cores, f in [1, be_slots]
  /// (fully-busy machines are tracked by free_cores == 0 alone — no
  /// placement path enumerates them).
  std::vector<std::set<unsigned>> by_free_;
};

}  // namespace dicer::fleet
