#include "fleet/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace dicer::fleet {
namespace {

// Eight block elements, U+2581..U+2588.
const char* const kBlocks[] = {"▁", "▂", "▃", "▄",
                               "▅", "▆", "▇", "█"};

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

std::string sparkline(std::span<const double> values) {
  if (values.empty()) return "";
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  out.reserve(values.size() * 3);
  const double span = hi - lo;
  for (double v : values) {
    int idx = 0;
    if (span > 0.0) {
      idx = static_cast<int>((v - lo) / span * 7.0 + 0.5);
      idx = std::clamp(idx, 0, 7);
    }
    out += kBlocks[idx];
  }
  return out;
}

Dashboard::Dashboard(const DashboardConfig& config) : config_(config) {
  if (config_.top_k == 0) config_.top_k = 1;
  if (config_.history == 0) config_.history = 1;
  if (config_.burn_window == 0) config_.burn_window = 1;
  if (config_.slo_budget <= 0.0) config_.slo_budget = 0.05;
}

void Dashboard::push(std::deque<double>& series, double v) {
  series.push_back(v);
  while (series.size() > config_.history) series.pop_front();
}

std::string Dashboard::render(const EpochMetrics& m,
                              std::span<const MachineEpochStat> stats) {
  push(efu_hist_, m.fleet_efu);
  push(slowdown_p99_hist_, m.hp_slowdown_p99);

  violation_hist_.push_back(m.slo_violation_rate_occupied);
  while (violation_hist_.size() > config_.burn_window) {
    violation_hist_.pop_front();
  }
  double window_sum = 0.0;
  for (double v : violation_hist_) window_sum += v;
  burn_ = window_sum / static_cast<double>(violation_hist_.size()) /
          config_.slo_budget;
  alert_active_ = burn_ >= config_.burn_alert;
  if (alert_active_) ++alerts_fired_;

  const char* bold = config_.ansi ? "\x1b[1m" : "";
  const char* red = config_.ansi ? "\x1b[31m" : "";
  const char* reset = config_.ansi ? "\x1b[0m" : "";

  std::string out;
  out.reserve(1024);
  out += bold;
  out += "fleet_top  epoch " + std::to_string(m.epoch) +
         fmt("  t=%.1fs", m.t_sec) + "  tenants " +
         std::to_string(m.tenants) + "  occupied " +
         std::to_string(m.occupied_machines) + "\n";
  out += reset;

  std::vector<double> efu_vec(efu_hist_.begin(), efu_hist_.end());
  std::vector<double> sd_vec(slowdown_p99_hist_.begin(),
                             slowdown_p99_hist_.end());
  out += "  EFU  mean " + fmt("%.3f", m.fleet_efu) + "  p50 " +
         fmt("%.3f", m.efu_p50) + "  p95 " + fmt("%.3f", m.efu_p95) +
         "  p99 " + fmt("%.3f", m.efu_p99) + "  " + sparkline(efu_vec) +
         "\n";
  out += "  HP slowdown  p50 " + fmt("%.3f", m.hp_slowdown_p50) + "  p95 " +
         fmt("%.3f", m.hp_slowdown_p95) + "  p99 " +
         fmt("%.3f", m.hp_slowdown_p99) + "  max " +
         fmt("%.3f", m.hp_slowdown_max) + "  " + sparkline(sd_vec) + "\n";
  out += "  SLO  violations " + std::to_string(m.slo_violations) +
         "  rate(occupied) " + fmt("%.3f", m.slo_violation_rate_occupied) +
         "  burn " + fmt("%.2f", burn_) + "x of " +
         fmt("%.0f%%", config_.slo_budget * 100.0) + " budget\n";
  out += "  churn  +" + std::to_string(m.arrivals) + " -" +
         std::to_string(m.departures) + "  rejected " +
         std::to_string(m.rejected) + "  migrations " +
         std::to_string(m.migrations) + "\n";

  if (alert_active_) {
    out += red;
    out += "  ALERT: SLO burn " + fmt("%.2f", burn_) + "x >= " +
           fmt("%.2f", config_.burn_alert) +
           "x alert threshold over last " +
           std::to_string(violation_hist_.size()) + " epoch(s)\n";
    out += reset;
  }

  if (!stats.empty()) {
    // Worst machines by HP slowdown; index breaks ties so the frame is
    // deterministic.
    std::vector<const MachineEpochStat*> worst;
    worst.reserve(stats.size());
    for (const auto& s : stats) worst.push_back(&s);
    std::sort(worst.begin(), worst.end(),
              [](const MachineEpochStat* a, const MachineEpochStat* b) {
                if (a->hp_slowdown != b->hp_slowdown) {
                  return a->hp_slowdown > b->hp_slowdown;
                }
                return a->machine < b->machine;
              });
    const std::size_t k =
        std::min<std::size_t>(config_.top_k, worst.size());
    out += "  worst machines (by HP slowdown):\n";
    out += "    machine  hp            slowdown  efu    rho    tenants\n";
    for (std::size_t i = 0; i < k; ++i) {
      const MachineEpochStat& s = *worst[i];
      char line[160];
      std::snprintf(line, sizeof(line),
                    "    %-8u %-13s %-9.3f %-6.3f %-6.3f %u%s\n",
                    s.machine, s.hp ? s.hp->name.c_str() : "?",
                    s.hp_slowdown, s.efu, s.link_rho, s.tenants,
                    s.slo_violated ? "  [SLO]" : "");
      out += line;
    }
  }
  return out;
}

}  // namespace dicer::fleet
