#include "fleet/churn.hpp"

#include <cmath>
#include <stdexcept>

namespace dicer::fleet {

ChurnGenerator::ChurnGenerator(const ChurnConfig& config,
                               const sim::AppCatalog& catalog)
    : config_(config), catalog_(&catalog), rng_(config.seed) {
  if (config.arrival_rate_per_sec <= 0.0) {
    throw std::invalid_argument("ChurnGenerator: arrival rate must be > 0");
  }
  if (config.mean_lifetime_sec <= 0.0) {
    throw std::invalid_argument("ChurnGenerator: mean lifetime must be > 0");
  }
  if (catalog.size() == 0) {
    throw std::invalid_argument("ChurnGenerator: empty catalog");
  }
}

TenantArrival ChurnGenerator::generate() {
  // Inverse-CDF exponential draws; uniform() < 1 so the logs are finite.
  const double gap =
      -std::log(1.0 - rng_.uniform()) / config_.arrival_rate_per_sec;
  t_ += gap;
  TenantArrival a;
  a.id = next_id_++;
  a.t_sec = t_;
  a.lifetime_sec = std::max(
      config_.min_lifetime_sec,
      -std::log(1.0 - rng_.uniform()) * config_.mean_lifetime_sec);
  a.app = &catalog_->at(rng_.below(catalog_->size()));
  return a;
}

const TenantArrival& ChurnGenerator::peek() {
  if (!pending_) pending_ = generate();
  return *pending_;
}

TenantArrival ChurnGenerator::next() {
  peek();
  TenantArrival a = *pending_;
  pending_.reset();
  return a;
}

std::vector<TenantArrival> ChurnGenerator::drain_until(double t_end) {
  std::vector<TenantArrival> out;
  while (peek().t_sec < t_end) out.push_back(next());
  return out;
}

}  // namespace dicer::fleet
