// Pluggable tenant placement.
//
// When a tenant arrives, the cluster asks a PlacementEngine which machine
// it should land on. Three engines ship:
//
//   random        uniform over machines with a free BE core (seeded —
//                 deterministic — baseline for "does placement matter?")
//   least-loaded  fewest running BE tenants, ties to the lowest index
//   mrc           MRC-aware best-fit: scores every candidate machine by
//                 the EFU it would have *after* the tenant lands —
//                 HP keeps its ways_needed partition, the BEs split the
//                 remainder in proportion to their MRC footprints, each
//                 app's IPC is read off its ipc-vs-ways curve, and the
//                 whole machine is discounted when predicted bandwidth
//                 demand oversubscribes the memory link. Picks the
//                 highest post-placement EFU (Com-CAS-style footprint
//                 packing driven by the sampled-MRC app directory).
//
// Engines are called from the single-threaded control plane only; they
// may keep internal state (the random engine's RNG) and stay deterministic
// for a (seed, call sequence) pair.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/directory.hpp"
#include "util/rng.hpp"

namespace dicer::fleet {

/// One machine's placement-relevant state, refreshed before every decision.
struct MachineView {
  unsigned index = 0;
  const sim::AppProfile* hp = nullptr;
  std::vector<const sim::AppProfile*> tenants;  ///< running BEs
  unsigned free_cores = 0;                      ///< open BE slots
};

class PlacementEngine {
 public:
  virtual ~PlacementEngine() = default;
  virtual std::string name() const = 0;
  /// The machine index `app` should land on, or nullopt to reject.
  /// Only views with free_cores > 0 are eligible.
  virtual std::optional<unsigned> place(
      const sim::AppProfile& app, const std::vector<MachineView>& views) = 0;
};

class RandomPlacement final : public PlacementEngine {
 public:
  explicit RandomPlacement(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;

 private:
  util::Xoshiro256 rng_;
};

class LeastLoadedPlacement final : public PlacementEngine {
 public:
  std::string name() const override { return "least-loaded"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;
};

class MrcBestFitPlacement final : public PlacementEngine {
 public:
  /// `directory` must outlive the engine.
  explicit MrcBestFitPlacement(const AppDirectory& directory)
      : dir_(&directory) {}
  std::string name() const override { return "mrc"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;

  /// Predicted machine EFU if `app` joined `view` (exposed for tests;
  /// place() maximises the *delta* of this against the machine as-is).
  double score(const sim::AppProfile& app, const MachineView& view) const;

 private:
  /// Predicted machine EFU for `view`'s HP plus the given BE set.
  double predict(const MachineView& view,
                 const std::vector<const AppSignal*>& bes) const;

  const AppDirectory* dir_;
};

/// Engine by name: "random", "least-loaded" or "mrc". `seed` feeds the
/// random engine; `directory` the MRC one. Throws std::invalid_argument
/// for unknown names.
std::unique_ptr<PlacementEngine> make_placement(const std::string& name,
                                                const AppDirectory& directory,
                                                std::uint64_t seed);
std::vector<std::string> known_placements();

}  // namespace dicer::fleet
