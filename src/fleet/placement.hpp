// Pluggable tenant placement.
//
// When a tenant arrives, the cluster asks a PlacementEngine which machine
// it should land on. Four engines ship:
//
//   random        uniform over machines with a free BE core (seeded —
//                 deterministic — baseline for "does placement matter?")
//   least-loaded  fewest running BE tenants, ties to the lowest index
//   mrc           MRC-aware best-fit: scores every candidate machine by
//                 the EFU it would have *after* the tenant lands —
//                 HP keeps its ways_needed partition, the BEs split the
//                 remainder in proportion to their MRC footprints, each
//                 app's IPC is read off its ipc-vs-ways curve, and the
//                 whole machine is discounted when predicted bandwidth
//                 demand oversubscribes the memory link. Picks the
//                 highest post-placement EFU (Com-CAS-style footprint
//                 packing driven by the sampled-MRC app directory).
//   mrc-p2c       power-of-d-choices over the same scorer: draws d = 5
//                 candidates uniformly from the open set via the engine's
//                 seeded RNG and scores only those — the documented
//                 O(d) approximation for very large fleets, deterministic
//                 for a (seed, call sequence) pair like `random`.
//
// Every engine has two entry points with identical decisions, identical
// tie-breaks and identical RNG consumption:
//
//   place(app, views)            the historical full scan over a
//                                materialised MachineView vector;
//   place_indexed(app, index,    the O(log N) / cached path over the
//                 exclude)       persistent fleet::PlacementIndex —
//                                `exclude` closes one machine (migration
//                                sources never receive their own evictee).
//
// The pair is byte-equivalent by construction: both paths share one
// predict() implementation (a pure function of machine state and app), one
// first-strictly-better tie-break walking machines in index order, and —
// for the seeded engines — the same below(open_count) draw sequence. The
// index only changes how many times predict() runs, never its operands.
//
// Engines are called from the control plane's decision thread only; they
// may keep internal state (RNGs, reusable scoring scratch) and stay
// deterministic for a (seed, call sequence) pair. With set_parallel() the
// MRC engines additionally fan the *inside* of a decision out over a
// util::ThreadPool — contiguous machine-index shards each compute a local
// first-strictly-better best, merged leftmost-wins in range order, so the
// winner is bit-identical to the serial scan at any shard count — and
// `mrc` pipelines whole arrival queues through place_arrivals():
// speculative scoring against the current index snapshot, then strictly
// in-order commits with version-stamped cache patching (DESIGN.md §5j).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/directory.hpp"
#include "fleet/placement_index.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dicer::fleet {

/// One machine's placement-relevant state, refreshed before every decision
/// on the full-scan path (the indexed path keeps it incrementally).
struct MachineView {
  unsigned index = 0;
  const sim::AppProfile* hp = nullptr;
  std::vector<const sim::AppProfile*> tenants;  ///< running BEs, core order
  unsigned free_cores = 0;                      ///< open BE slots
};

/// Materialise the index as MachineViews (tests, default place_indexed).
std::vector<MachineView> index_views(const PlacementIndex& index);

class PlacementEngine {
 public:
  /// Per-arrival commit callback for place_arrivals: invoked exactly once
  /// per arrival, strictly in arrival order, with the decision (nullopt =
  /// rejected). Contract: before returning, the callee admits the tenant
  /// onto the decided machine — exactly one index mutation — or, for a
  /// rejection, leaves the index untouched. The optimistic pipeline
  /// audits this via PlacementIndex::mutations() and throws
  /// std::logic_error on a violation (any other mutation would silently
  /// invalidate its speculative scores).
  using CommitFn = std::function<void(std::size_t, std::optional<unsigned>)>;

  virtual ~PlacementEngine() = default;
  virtual std::string name() const = 0;
  /// The machine index `app` should land on, or nullopt to reject.
  /// Only views with free_cores > 0 are eligible.
  virtual std::optional<unsigned> place(
      const sim::AppProfile& app, const std::vector<MachineView>& views) = 0;
  /// The same decision off the persistent index, skipping `exclude` (as if
  /// its free_cores were 0). Must match place() on equivalent views bit for
  /// bit — decisions, tie-breaks and RNG consumption. The default
  /// materialises views and delegates; engines override with their O(1) /
  /// cached resolution.
  virtual std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude = std::nullopt);
  /// Decide-and-commit one epoch's whole arrival queue against the index.
  /// Commits happen strictly in arrival order, so the committed sequence —
  /// decisions, admissions, RNG consumption — is identical to calling
  /// place_indexed + commit per arrival in a loop (which is exactly what
  /// this base implementation does). `mrc` overrides it with the
  /// optimistic speculate/commit pipeline; the seeded engines (`random`,
  /// `mrc-p2c`) must stay on the sequential path, because their RNG draws
  /// range over open_count *at commit time* — speculating against the
  /// snapshot would consume a different draw sequence.
  virtual void place_arrivals(const std::vector<const sim::AppProfile*>& apps,
                              PlacementIndex& index, const CommitFn& commit);

  /// Enable deterministic parallel scoring: candidate scans shard over
  /// `pool` into at most `shards` contiguous machine-index ranges (and
  /// `mrc` speculates arrival queues the same way). A pure speed knob —
  /// decisions are byte-identical at any (pool, shards). Null pool or
  /// shards <= 1 keeps every engine on the serial scan. The pool must not
  /// be the thread the engine is called from (no nested submission).
  void set_parallel(util::ThreadPool* pool, unsigned shards) noexcept {
    pool_ = shards > 1 ? pool : nullptr;
    shards_ = pool_ != nullptr ? shards : 1;
  }

 protected:
  util::ThreadPool* pool_ = nullptr;  ///< not owned; null = serial scoring
  unsigned shards_ = 1;
};

class RandomPlacement final : public PlacementEngine {
 public:
  explicit RandomPlacement(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;
  std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude) override;

 private:
  util::Xoshiro256 rng_;
  std::vector<unsigned> open_scratch_;  ///< full-scan candidate list
};

class LeastLoadedPlacement final : public PlacementEngine {
 public:
  std::string name() const override { return "least-loaded"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;
  std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude) override;
};

/// Shared MRC scoring core: the predict() model plus the reusable scratch
/// both MRC engines (best-fit and p2c) drive, on views or on the index.
/// Scratch is explicit so parallel shard workers can score concurrently
/// without sharing buffers: every worker gets its own Scratch, and shard
/// workers only ever touch index slots inside their own contiguous
/// machine range (so the dirty-score cache writes are per-slot
/// single-writer). The serial entry points use the member scratch_;
/// `mutable` is safe there because engines are driven from one decision
/// thread at a time.
class MrcScoringBase {
 protected:
  /// Reusable per-worker scoring buffers (allocation-free after warm-up).
  struct Scratch {
    std::vector<const AppSignal*> bes;
    std::vector<metrics::IpcPair> pairs;
  };
  /// One contiguous shard's scan result: the leftmost machine attaining
  /// the maximum marginal EFU within the shard's index range — i.e. the
  /// serial scan's first-strictly-better winner restricted to the range.
  struct ShardBest {
    std::optional<unsigned> machine;
    double delta = 0.0;
  };

  explicit MrcScoringBase(const AppDirectory& directory) : dir_(&directory) {}

  /// Predicted machine EFU for `hp_sig`'s machine with the given BE set.
  double predict(const AppSignal& hp_sig,
                 const std::vector<const AppSignal*>& bes,
                 Scratch& scratch) const;
  /// Marginal EFU of `app_sig` joining `view` — predict(after) minus
  /// predict(before), both computed fresh (the full-scan path).
  double delta_for_view(const MachineView& view, const AppSignal& app_sig,
                        Scratch& scratch) const;
  /// The same marginal EFU off the index's dirty-score caches: reuses the
  /// cached "before" and per-app delta when the machine is clean, computes
  /// and stores them when dirty. Bit-identical to delta_for_view by
  /// predict()'s purity.
  double delta_indexed(PlacementIndex& index, unsigned machine,
                       const AppSignal& app_sig, Scratch& scratch) const;

  /// The serial argmax loop over index machines [begin, end): skip closed
  /// machines and `exclude`, keep the first strictly-better delta.
  ShardBest scan_indexed(PlacementIndex& index, std::size_t begin,
                         std::size_t end, const AppSignal& app_sig,
                         std::optional<unsigned> exclude,
                         Scratch& scratch) const;
  /// The same loop over materialised views (the full-scan path; views are
  /// in index order, so shard s covers views [begin, end)).
  ShardBest scan_views(const std::vector<MachineView>& views,
                       std::size_t begin, std::size_t end,
                       const AppSignal& app_sig, Scratch& scratch) const;
  /// Leftmost-wins merge of per-shard bests in range order: a later shard
  /// only displaces the running winner with a strictly greater delta —
  /// exactly the serial scan's first-strictly-better rule crossing a shard
  /// boundary — so the merged winner equals the single serial scan's.
  static ShardBest merge_shards(const ShardBest* bests, std::size_t n);

  const AppDirectory* dir_;
  mutable Scratch scratch_;                     ///< serial / commit-phase
  mutable std::vector<Scratch> shard_scratch_;  ///< one per shard worker
};

class MrcBestFitPlacement final : public PlacementEngine,
                                  private MrcScoringBase {
 public:
  /// `directory` must outlive the engine.
  explicit MrcBestFitPlacement(const AppDirectory& directory)
      : MrcScoringBase(directory) {}
  std::string name() const override { return "mrc"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;
  std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude) override;
  /// The optimistic multi-arrival pipeline (DESIGN.md §5j): speculatively
  /// score every arrival's full candidate set concurrently against the
  /// index as-of-now, then commit strictly in arrival order; each commit
  /// dirties exactly one machine, whose speculative scores are patched
  /// through the version-stamped delta caches and re-merged, so every
  /// committed decision equals the sequential place_indexed + commit loop
  /// bit for bit. Falls back to that loop when parallel scoring is off,
  /// the queue is trivial, or the fleet is too small to shard.
  void place_arrivals(const std::vector<const sim::AppProfile*>& apps,
                      PlacementIndex& index, const CommitFn& commit) override;

  /// Predicted machine EFU if `app` joined `view` (exposed for tests;
  /// place() maximises the *delta* of this against the machine as-is).
  double score(const sim::AppProfile& app, const MachineView& view) const;

 private:
  /// The shard plan for an N-machine scan under the current set_parallel
  /// settings (one shard = the serial path).
  std::vector<util::ShardRange> plan_shards(std::size_t n) const;

  /// Pipeline scratch (persistent so steady-state epochs allocate
  /// nothing): per-arrival resolved signals and the (arrival x shard)
  /// speculative local-best table. Single-decision parallel scans reuse
  /// spec_scratch_ as their (1 x shard) row.
  std::vector<const AppSignal*> sig_scratch_;
  std::vector<ShardBest> spec_scratch_;
};

/// Power-of-d-choices over the MRC scorer: d seeded uniform draws from the
/// open set (with replacement; repeats are scored once), best marginal EFU
/// wins with the same first-strictly-better tie-break — in draw order —
/// as `mrc` uses in index order. Decision quality degrades gracefully with
/// d while the per-arrival cost drops from O(N) to O(d); the classic
/// balls-into-bins result is that d = 2 already collapses the max-load
/// tail, and d = 5 tracks full best-fit closely on fleet EFU. The fan-out
/// is configurable (FleetConfig::p2c_choices / fleet_sim --p2c-d); d = 1
/// degenerates to seeded-random placement, large d approaches full
/// best-fit at d scores per decision.
class MrcP2cPlacement final : public PlacementEngine, private MrcScoringBase {
 public:
  /// The shipped default fan-out.
  static constexpr unsigned kChoices = 5;

  /// Throws std::invalid_argument when choices == 0 (a zero-draw engine
  /// could never place anything).
  MrcP2cPlacement(const AppDirectory& directory, std::uint64_t seed,
                  unsigned choices = kChoices);
  std::string name() const override { return "mrc-p2c"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;
  std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude) override;

 private:
  /// Score the drawn candidate machines (draw order, repeats skipped) and
  /// return the first-strictly-better argmax of `delta_of`.
  template <typename DeltaFn>
  std::optional<unsigned> pick(const std::vector<unsigned>& draws,
                               DeltaFn&& delta_of);

  util::Xoshiro256 rng_;
  unsigned choices_;
  std::vector<unsigned> open_scratch_;   ///< full-scan candidate list
  std::vector<unsigned> draw_scratch_;   ///< sampled machine indices
};

/// Engine by name: "random", "least-loaded", "mrc" or "mrc-p2c". `seed`
/// feeds the seeded engines; `directory` the MRC ones; `p2c_choices` is
/// mrc-p2c's fan-out d (ignored by the other engines). Throws
/// std::invalid_argument for unknown names, or p2c_choices == 0 when the
/// engine is mrc-p2c.
std::unique_ptr<PlacementEngine> make_placement(
    const std::string& name, const AppDirectory& directory,
    std::uint64_t seed, unsigned p2c_choices = MrcP2cPlacement::kChoices);
std::vector<std::string> known_placements();

}  // namespace dicer::fleet
