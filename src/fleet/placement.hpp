// Pluggable tenant placement.
//
// When a tenant arrives, the cluster asks a PlacementEngine which machine
// it should land on. Four engines ship:
//
//   random        uniform over machines with a free BE core (seeded —
//                 deterministic — baseline for "does placement matter?")
//   least-loaded  fewest running BE tenants, ties to the lowest index
//   mrc           MRC-aware best-fit: scores every candidate machine by
//                 the EFU it would have *after* the tenant lands —
//                 HP keeps its ways_needed partition, the BEs split the
//                 remainder in proportion to their MRC footprints, each
//                 app's IPC is read off its ipc-vs-ways curve, and the
//                 whole machine is discounted when predicted bandwidth
//                 demand oversubscribes the memory link. Picks the
//                 highest post-placement EFU (Com-CAS-style footprint
//                 packing driven by the sampled-MRC app directory).
//   mrc-p2c       power-of-d-choices over the same scorer: draws d = 5
//                 candidates uniformly from the open set via the engine's
//                 seeded RNG and scores only those — the documented
//                 O(d) approximation for very large fleets, deterministic
//                 for a (seed, call sequence) pair like `random`.
//
// Every engine has two entry points with identical decisions, identical
// tie-breaks and identical RNG consumption:
//
//   place(app, views)            the historical full scan over a
//                                materialised MachineView vector;
//   place_indexed(app, index,    the O(log N) / cached path over the
//                 exclude)       persistent fleet::PlacementIndex —
//                                `exclude` closes one machine (migration
//                                sources never receive their own evictee).
//
// The pair is byte-equivalent by construction: both paths share one
// predict() implementation (a pure function of machine state and app), one
// first-strictly-better tie-break walking machines in index order, and —
// for the seeded engines — the same below(open_count) draw sequence. The
// index only changes how many times predict() runs, never its operands.
//
// Engines are called from the single-threaded control plane only; they
// may keep internal state (RNGs, reusable scoring scratch) and stay
// deterministic for a (seed, call sequence) pair.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/directory.hpp"
#include "fleet/placement_index.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"

namespace dicer::fleet {

/// One machine's placement-relevant state, refreshed before every decision
/// on the full-scan path (the indexed path keeps it incrementally).
struct MachineView {
  unsigned index = 0;
  const sim::AppProfile* hp = nullptr;
  std::vector<const sim::AppProfile*> tenants;  ///< running BEs, core order
  unsigned free_cores = 0;                      ///< open BE slots
};

/// Materialise the index as MachineViews (tests, default place_indexed).
std::vector<MachineView> index_views(const PlacementIndex& index);

class PlacementEngine {
 public:
  virtual ~PlacementEngine() = default;
  virtual std::string name() const = 0;
  /// The machine index `app` should land on, or nullopt to reject.
  /// Only views with free_cores > 0 are eligible.
  virtual std::optional<unsigned> place(
      const sim::AppProfile& app, const std::vector<MachineView>& views) = 0;
  /// The same decision off the persistent index, skipping `exclude` (as if
  /// its free_cores were 0). Must match place() on equivalent views bit for
  /// bit — decisions, tie-breaks and RNG consumption. The default
  /// materialises views and delegates; engines override with their O(1) /
  /// cached resolution.
  virtual std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude = std::nullopt);
};

class RandomPlacement final : public PlacementEngine {
 public:
  explicit RandomPlacement(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;
  std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude) override;

 private:
  util::Xoshiro256 rng_;
  std::vector<unsigned> open_scratch_;  ///< full-scan candidate list
};

class LeastLoadedPlacement final : public PlacementEngine {
 public:
  std::string name() const override { return "least-loaded"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;
  std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude) override;
};

/// Shared MRC scoring core: the predict() model plus the reusable scratch
/// both MRC engines (best-fit and p2c) drive, on views or on the index.
/// Scratch members make scoring allocation-free after warm-up; the engines
/// run on the single-threaded control plane, so `mutable` scratch in const
/// scoring methods is safe.
class MrcScoringBase {
 protected:
  explicit MrcScoringBase(const AppDirectory& directory) : dir_(&directory) {}

  /// Predicted machine EFU for `hp_sig`'s machine with the given BE set.
  double predict(const AppSignal& hp_sig,
                 const std::vector<const AppSignal*>& bes) const;
  /// Marginal EFU of `app_sig` joining `view` — predict(after) minus
  /// predict(before), both computed fresh (the full-scan path).
  double delta_for_view(const MachineView& view,
                        const AppSignal& app_sig) const;
  /// The same marginal EFU off the index's dirty-score caches: reuses the
  /// cached "before" and per-app delta when the machine is clean, computes
  /// and stores them when dirty. Bit-identical to delta_for_view by
  /// predict()'s purity.
  double delta_indexed(PlacementIndex& index, unsigned machine,
                       const AppSignal& app_sig) const;

  const AppDirectory* dir_;
  mutable std::vector<const AppSignal*> bes_scratch_;
  mutable std::vector<metrics::IpcPair> pairs_scratch_;
};

class MrcBestFitPlacement final : public PlacementEngine,
                                  private MrcScoringBase {
 public:
  /// `directory` must outlive the engine.
  explicit MrcBestFitPlacement(const AppDirectory& directory)
      : MrcScoringBase(directory) {}
  std::string name() const override { return "mrc"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;
  std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude) override;

  /// Predicted machine EFU if `app` joined `view` (exposed for tests;
  /// place() maximises the *delta* of this against the machine as-is).
  double score(const sim::AppProfile& app, const MachineView& view) const;
};

/// Power-of-d-choices over the MRC scorer: d seeded uniform draws from the
/// open set (with replacement; repeats are scored once), best marginal EFU
/// wins with the same first-strictly-better tie-break — in draw order —
/// as `mrc` uses in index order. Decision quality degrades gracefully with
/// d while the per-arrival cost drops from O(N) to O(d); the classic
/// balls-into-bins result is that d = 2 already collapses the max-load
/// tail, and d = 5 tracks full best-fit closely on fleet EFU.
class MrcP2cPlacement final : public PlacementEngine, private MrcScoringBase {
 public:
  static constexpr unsigned kChoices = 5;

  MrcP2cPlacement(const AppDirectory& directory, std::uint64_t seed,
                  unsigned choices = kChoices)
      : MrcScoringBase(directory), rng_(seed), choices_(choices) {}
  std::string name() const override { return "mrc-p2c"; }
  std::optional<unsigned> place(const sim::AppProfile& app,
                                const std::vector<MachineView>& views) override;
  std::optional<unsigned> place_indexed(
      const sim::AppProfile& app, PlacementIndex& index,
      std::optional<unsigned> exclude) override;

 private:
  /// Score the drawn candidate machines (draw order, repeats skipped) and
  /// return the first-strictly-better argmax of `delta_of`.
  template <typename DeltaFn>
  std::optional<unsigned> pick(const std::vector<unsigned>& draws,
                               DeltaFn&& delta_of);

  util::Xoshiro256 rng_;
  unsigned choices_;
  std::vector<unsigned> open_scratch_;   ///< full-scan candidate list
  std::vector<unsigned> draw_scratch_;   ///< sampled machine indices
};

/// Engine by name: "random", "least-loaded", "mrc" or "mrc-p2c". `seed`
/// feeds the seeded engines; `directory` the MRC ones. Throws
/// std::invalid_argument for unknown names.
std::unique_ptr<PlacementEngine> make_placement(const std::string& name,
                                                const AppDirectory& directory,
                                                std::uint64_t seed);
std::vector<std::string> known_placements();

}  // namespace dicer::fleet
