// Deterministic tenant arrival/departure churn.
//
// Best-effort tenants arrive as a Poisson process (exponential
// inter-arrival gaps at `arrival_rate_per_sec`), each drawing an
// application uniformly from the catalog and an exponential service
// lifetime. Everything derives from one seeded `util::Xoshiro256`, so a
// churn trace replays bit-for-bit from (seed, catalog) — the fleet's
// determinism contract starts here: the arrival stream never depends on
// placement decisions or on how many workers step the machines.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/core/catalog.hpp"
#include "util/rng.hpp"

namespace dicer::fleet {

struct ChurnConfig {
  double arrival_rate_per_sec = 2.0;  ///< Poisson arrival intensity
  double mean_lifetime_sec = 30.0;    ///< exponential service time
  double min_lifetime_sec = 2.0;      ///< floor under the exponential draw
  std::uint64_t seed = 1;
};

/// One tenant asking to be placed.
struct TenantArrival {
  std::uint64_t id = 0;       ///< dense, in arrival order
  double t_sec = 0.0;         ///< arrival time (strictly increasing)
  double lifetime_sec = 0.0;  ///< service time once running
  const sim::AppProfile* app = nullptr;
};

class ChurnGenerator {
 public:
  /// Throws std::invalid_argument on a non-positive rate/lifetime or an
  /// empty catalog.
  ChurnGenerator(const ChurnConfig& config, const sim::AppCatalog& catalog);

  /// The next arrival without consuming it.
  const TenantArrival& peek();
  /// Consume and return the next arrival.
  TenantArrival next();
  /// Every arrival with t_sec < t_end, in order (possibly empty).
  std::vector<TenantArrival> drain_until(double t_end);

 private:
  TenantArrival generate();

  ChurnConfig config_;
  const sim::AppCatalog* catalog_;
  util::Xoshiro256 rng_;
  double t_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::optional<TenantArrival> pending_;
};

}  // namespace dicer::fleet
