#include "fleet/directory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "harness/solo.hpp"

namespace dicer::fleet {

double AppSignal::ipc_at_ways(double ways) const noexcept {
  if (ipc_by_ways.empty()) return 0.0;
  const double max_w = static_cast<double>(ipc_by_ways.size());
  const double w = std::clamp(ways, 1.0, max_w);
  const auto lo = static_cast<std::size_t>(std::floor(w)) - 1;
  const auto hi = std::min(lo + 1, ipc_by_ways.size() - 1);
  const double frac = w - std::floor(w);
  return ipc_by_ways[lo] + frac * (ipc_by_ways[hi] - ipc_by_ways[lo]);
}

AppDirectory::AppDirectory(const sim::AppCatalog& catalog,
                           const sim::MachineConfig& machine,
                           double hp_fraction)
    : machine_(machine) {
  const unsigned ways = machine.llc.ways;
  for (const auto& app : catalog.profiles()) {
    AppSignal s;
    s.profile = &app;
    s.id = signals_.size();
    s.ipc_by_ways.reserve(ways);
    s.bw_by_ways.reserve(ways);
    for (unsigned w = 1; w <= ways; ++w) {
      const auto solo = harness::solo_steady_state(app, w, machine);
      s.ipc_by_ways.push_back(solo.ipc);
      s.bw_by_ways.push_back(solo.mem_bw_bytes_per_sec);
    }
    s.ipc_alone = s.ipc_by_ways.back();
    for (const auto& ph : app.phases) {
      s.footprint_bytes = std::max(s.footprint_bytes, ph.mrc.footprint_bytes());
    }
    s.ways_needed = harness::min_ways_for_fraction(app, hp_fraction, machine);
    signals_.emplace(app.name, std::move(s));
  }
}

const AppSignal& AppDirectory::signal(const std::string& name) const {
  const auto it = signals_.find(name);
  if (it == signals_.end()) {
    throw std::out_of_range("AppDirectory: unknown app '" + name + "'");
  }
  return it->second;
}

}  // namespace dicer::fleet
