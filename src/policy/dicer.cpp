#include "policy/dicer.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"
#include "util/trace.hpp"

namespace dicer::policy {

namespace {

const char* state_label(int state) noexcept {
  switch (state) {
    case 0: return "warmup";
    case 1: return "steady";
    case 2: return "sampling";
    case 3: return "reset_validate";
  }
  return "?";
}

}  // namespace

Dicer::Dicer(const DicerConfig& config)
    : config_(config), hp_bw_history_(config.bw_history_periods) {
  if (config_.period_sec <= 0.0 || config_.sample_interval_sec <= 0.0) {
    throw std::invalid_argument("Dicer: intervals must be > 0");
  }
  if (config_.alpha <= 0.0 || config_.alpha >= 1.0) {
    throw std::invalid_argument("Dicer: alpha outside (0, 1)");
  }
  if (config_.phase_threshold <= 0.0) {
    throw std::invalid_argument("Dicer: phase_threshold must be > 0");
  }
  if (config_.sample_stride == 0) {
    throw std::invalid_argument("Dicer: sample_stride must be >= 1");
  }
  if (config_.min_hp_ways < 1 || config_.min_be_ways < 1) {
    throw std::invalid_argument("Dicer: minimum partitions are 1 way");
  }
}

void Dicer::setup(PolicyContext& ctx) {
  associate_and_track(ctx);
  total_ways_ = ctx.cat->num_ways();
  if (config_.min_hp_ways + config_.min_be_ways > total_ways_) {
    throw std::invalid_argument("Dicer: min ways exceed the cache");
  }
  // Listing 1 prologue: start like CT, presuming a CT-Favoured workload.
  hp_ways_ = total_ways_ - config_.min_be_ways;
  optimal_hp_ways_ = hp_ways_;
  rollback_hp_ways_ = hp_ways_;
  ct_favoured_ = true;
  apply_split(ctx, hp_ways_);
  state_ = State::kWarmup;
  hp_bw_history_.reset();
  // Establish monitor baselines at t0 so the first period's deltas are
  // exactly one period wide.
  ctx.monitor->poll_all();
  auto& tr = trace::resolve(ctx.tracer);
  if (tr.enabled(trace::Kind::kSetup)) {
    tr.emit(trace::Kind::kSetup, ctx.machine->time_sec(),
            {{"policy", name()},
             {"hp_ways", hp_ways_},
             {"total_ways", total_ways_},
             {"period_sec", config_.period_sec},
             {"membw_threshold_bps", config_.membw_threshold_bytes_per_sec}});
  }
}

double Dicer::interval_sec() const {
  return state_ == State::kSampling ? config_.sample_interval_sec
                                    : config_.period_sec;
}

Dicer::PeriodSample Dicer::measure(PolicyContext& ctx) {
  PeriodSample s;
  for (const auto& [core, mon] : ctx.monitor->poll_all()) {
    if (core == ctx.hp_core) {
      s.hp_ipc = mon.ipc;
      s.hp_bw = mon.mbm_bytes_per_sec;
    }
  }
  s.total_bw = ctx.monitor->last_total_mbm_bytes_per_sec();
  return s;
}

bool Dicer::bw_saturated(const PeriodSample& s) const {
  return config_.bw_detection &&
         s.total_bw > config_.membw_threshold_bytes_per_sec;
}

bool Dicer::phase_change(double hp_bw) const {
  // Eq. 2: MemBW_t > (1 + phase_threshold) * gmean(MemBW_{t-3..t-1}).
  if (!hp_bw_history_.full()) return false;
  const double ref = hp_bw_history_.gmean();
  if (ref <= 0.0) return false;
  return hp_bw > (1.0 + config_.phase_threshold) * ref;
}

bool Dicer::performance_stable(double ipc) const {
  // Eq. 3: (1-a) * IPC_{t-1} <= IPC_t <= (1+a) * IPC_{t-1}.
  return ipc >= (1.0 - config_.alpha) * prev_ipc_ &&
         ipc <= (1.0 + config_.alpha) * prev_ipc_;
}

bool Dicer::performance_better(double ipc, double reference) const {
  return ipc > (1.0 + config_.alpha) * reference;
}

void Dicer::set_hp_ways(PolicyContext& ctx, unsigned hp_ways) {
  hp_ways =
      std::clamp(hp_ways, config_.min_hp_ways, total_ways_ - config_.min_be_ways);
  if (hp_ways != hp_ways_) {
    DICER_DEBUG << "DICER: HP ways " << hp_ways_ << " -> " << hp_ways
                << " at t=" << ctx.machine->time_sec();
    auto& tr = trace::resolve(ctx.tracer);
    if (tr.enabled(trace::Kind::kAllocation)) {
      tr.emit(trace::Kind::kAllocation, ctx.machine->time_sec(),
              {{"from", hp_ways_}, {"to", hp_ways}});
    }
  }
  hp_ways_ = hp_ways;
  apply_split(ctx, hp_ways_);
}

void Dicer::start_sampling(PolicyContext& ctx) {
  // Listing 1, allocation_sampling(): the workload is CT-Thwarted; find
  // the HP allocation with the highest IPC by applying decreasing sizes.
  ct_favoured_ = false;
  ++stats_.samplings;
  sample_plan_.clear();
  const unsigned hi = total_ways_ - config_.min_be_ways;
  for (unsigned w = hi;; ) {
    sample_plan_.push_back(w);
    if (w <= config_.min_hp_ways) break;
    w = w > config_.sample_stride + config_.min_hp_ways - 1
            ? w - config_.sample_stride
            : config_.min_hp_ways;
  }
  sample_index_ = 0;
  best_sample_ways_ = sample_plan_.front();
  best_sample_ipc_ = -1.0;
  auto& tr = trace::resolve(ctx.tracer);
  if (tr.enabled(trace::Kind::kSamplingStart)) {
    std::string plan;
    for (unsigned w : sample_plan_) {
      if (!plan.empty()) plan += ' ';
      plan += std::to_string(w);
    }
    tr.emit(trace::Kind::kSamplingStart, ctx.machine->time_sec(),
            {{"sampling", stats_.samplings},
             {"plan", plan},
             {"settle_sec", config_.sample_interval_sec}});
  }
  set_hp_ways(ctx, sample_plan_.front());
  // Fresh baselines so the first sample interval measures only itself.
  ctx.monitor->poll_all();
  state_ = State::kSampling;
}

void Dicer::sampling_step(PolicyContext& ctx, const PeriodSample& s) {
  ++stats_.sampling_steps;
  if (s.hp_ipc > best_sample_ipc_) {
    best_sample_ipc_ = s.hp_ipc;
    best_sample_ways_ = sample_plan_[sample_index_];
  }
  auto& tr = trace::resolve(ctx.tracer);
  if (tr.enabled(trace::Kind::kSamplingStep)) {
    tr.emit(trace::Kind::kSamplingStep, ctx.machine->time_sec(),
            {{"step", stats_.sampling_steps},
             {"ways", sample_plan_[sample_index_]},
             {"hp_ipc", s.hp_ipc},
             {"best_ways", best_sample_ways_},
             {"best_ipc", best_sample_ipc_}});
  }
  ++sample_index_;
  if (sample_index_ < sample_plan_.size()) {
    set_hp_ways(ctx, sample_plan_[sample_index_]);
    return;
  }
  // Plan exhausted: enforce the optimum and return to steady operation.
  optimal_hp_ways_ = best_sample_ways_;
  ipc_opt_ = best_sample_ipc_;
  set_hp_ways(ctx, optimal_hp_ways_);
  prev_ipc_ = ipc_opt_;
  hp_bw_history_.reset();
  // Cooldown counts steady monitoring periods after sampling finishes
  // (sampling's own settle intervals must not consume it).
  last_sampling_period_ = stats_.periods;
  state_ = State::kSteady;
  DICER_DEBUG << "DICER: sampling done, optimal HP ways=" << optimal_hp_ways_
              << " IPC_opt=" << ipc_opt_;
  if (tr.enabled(trace::Kind::kSamplingDone)) {
    tr.emit(trace::Kind::kSamplingDone, ctx.machine->time_sec(),
            {{"optimal_ways", optimal_hp_ways_}, {"ipc_opt", ipc_opt_}});
  }
}

void Dicer::allocation_reset(PolicyContext& ctx, double trigger_ipc) {
  // Listing 3 entry: enforce the best-known allocation, then validate it
  // after one monitoring period.
  trigger_ipc_ = trigger_ipc;
  if (ct_favoured_) {
    reset_kind_ = ResetKind::kCtFavoured;
    rollback_hp_ways_ = hp_ways_;
    set_hp_ways(ctx, total_ways_ - config_.min_be_ways);
  } else {
    reset_kind_ = ResetKind::kCtThwarted;
    set_hp_ways(ctx, optimal_hp_ways_);
  }
  state_ = State::kResetValidate;
}

void Dicer::reset_validate_step(PolicyContext& ctx, const PeriodSample& s) {
  auto& tr = trace::resolve(ctx.tracer);
  const char* reset_class =
      reset_kind_ == ResetKind::kCtFavoured ? "CT-F" : "CT-T";
  auto note_outcome = [&](const char* outcome) {
    if (tr.enabled(trace::Kind::kResetValidate)) {
      tr.emit(trace::Kind::kResetValidate, ctx.machine->time_sec(),
              {{"reset_class", reset_class},
               {"outcome", outcome},
               {"hp_ipc", s.hp_ipc},
               {"trigger_ipc", trigger_ipc_}});
    }
  };
  if (bw_saturated(s)) {
    // Validation case (i) for both classes: the link saturated — sample.
    note_outcome("saturated_resample");
    start_sampling(ctx);
    return;
  }
  if (reset_kind_ == ResetKind::kCtFavoured) {
    if (performance_better(s.hp_ipc, trigger_ipc_)) {
      // (ii) the reset was right; optimisation proceeds from here.
      note_outcome("confirmed");
      prev_ipc_ = s.hp_ipc;
    } else {
      // (iii) the lower IPC was a phase effect, not an allocation effect:
      // revert to the allocation that triggered the reset.
      ++stats_.rollbacks;
      note_outcome("rollback");
      set_hp_ways(ctx, rollback_hp_ways_);
      prev_ipc_ = s.hp_ipc;
    }
    state_ = State::kSteady;
    return;
  }
  // CT-Thwarted validation: is IPC close to IPC_opt?
  if (s.hp_ipc >= (1.0 - config_.alpha) * ipc_opt_) {
    note_outcome("confirmed");
    prev_ipc_ = s.hp_ipc;
    state_ = State::kSteady;
    return;
  }
  // (iii) the optimum has moved: sample again.
  note_outcome("resample");
  start_sampling(ctx);
}

void Dicer::steady_step(PolicyContext& ctx, const PeriodSample& s) {
  // Listing 1 driver body.
  if (bw_saturated(s)) {
    const bool cooled =
        stats_.periods - last_sampling_period_ >=
        config_.resample_cooldown_periods;
    if (cooled) {
      start_sampling(ctx);
      return;
    }
    // Saturated but inside the cooldown: hold the current allocation.
    prev_ipc_ = s.hp_ipc;
    hp_bw_history_.add(s.hp_bw);
    return;
  }

  // Listing 2, allocation_optimisation().
  auto& tr = trace::resolve(ctx.tracer);
  if (phase_change(s.hp_bw)) {
    ++stats_.phase_resets;
    if (tr.enabled(trace::Kind::kPhaseReset)) {
      tr.emit(trace::Kind::kPhaseReset, ctx.machine->time_sec(),
              {{"hp_bw_bps", s.hp_bw},
               {"gmean_bps", hp_bw_history_.gmean()},
               {"hp_ipc", s.hp_ipc}});
    }
    hp_bw_history_.add(s.hp_bw);
    allocation_reset(ctx, s.hp_ipc);
    return;
  }
  if (performance_stable(s.hp_ipc)) {
    // Stable: presume head-room and donate one way to the BEs.
    if (hp_ways_ > config_.min_hp_ways) {
      ++stats_.way_donations;
      if (tr.enabled(trace::Kind::kDonation)) {
        tr.emit(trace::Kind::kDonation, ctx.machine->time_sec(),
                {{"from", hp_ways_},
                 {"to", hp_ways_ - 1},
                 {"hp_ipc", s.hp_ipc}});
      }
      set_hp_ways(ctx, hp_ways_ - 1);
    }
  } else if (performance_better(s.hp_ipc, prev_ipc_)) {
    // Higher-IPC phase with the same cache needs: hold the allocation.
  } else {
    // Worse: allocation harmed HP (or a lower-IPC phase began) — reset.
    ++stats_.perf_resets;
    if (tr.enabled(trace::Kind::kPerfReset)) {
      tr.emit(trace::Kind::kPerfReset, ctx.machine->time_sec(),
              {{"hp_ipc", s.hp_ipc}, {"prev_ipc", prev_ipc_}});
    }
    hp_bw_history_.add(s.hp_bw);
    allocation_reset(ctx, s.hp_ipc);
    return;
  }
  prev_ipc_ = s.hp_ipc;
  hp_bw_history_.add(s.hp_bw);
}

void Dicer::on_period(PolicyContext&, double, double, double) {}

void Dicer::act(PolicyContext& ctx) {
  const PeriodSample s = measure(ctx);
  ++stats_.periods;
  auto& tr = trace::resolve(ctx.tracer);
  if (tr.enabled(trace::Kind::kPeriod)) {
    // Snapshot of what the controller saw, with the Eq. 2 / Eq. 3
    // verdicts evaluated against the pre-transition references. `state`
    // is the state this measurement is interpreted in.
    tr.emit(trace::Kind::kPeriod, ctx.machine->time_sec(),
            {{"period", stats_.periods},
             {"state", state_label(static_cast<int>(state_))},
             {"class", ct_favoured_ ? "CT-F" : "CT-T"},
             {"hp_ways", hp_ways_},
             {"hp_ipc", s.hp_ipc},
             {"hp_bw_bps", s.hp_bw},
             {"total_bw_bps", s.total_bw},
             {"saturated", bw_saturated(s)},
             {"phase_change", phase_change(s.hp_bw)},
             {"ipc_stable", performance_stable(s.hp_ipc)}});
  }
  on_period(ctx, s.hp_ipc, s.hp_bw, s.total_bw);

  switch (state_) {
    case State::kWarmup:
      // First period under the CT-like start: establish references.
      prev_ipc_ = s.hp_ipc;
      hp_bw_history_.add(s.hp_bw);
      state_ = State::kSteady;
      if (bw_saturated(s)) {
        // First-time saturation: the workload is CT-Thwarted (§3.2.1).
        start_sampling(ctx);
      }
      return;
    case State::kSteady:
      steady_step(ctx, s);
      return;
    case State::kSampling:
      sampling_step(ctx, s);
      return;
    case State::kResetValidate:
      reset_validate_step(ctx, s);
      return;
  }
}

}  // namespace dicer::policy
