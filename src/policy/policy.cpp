#include "policy/policy.hpp"

#include <stdexcept>

namespace dicer::policy {

void associate_and_track(PolicyContext& ctx) {
  if (!ctx.machine || !ctx.cat || !ctx.monitor) {
    throw std::invalid_argument("PolicyContext: machine/cat/monitor required");
  }
  ctx.cat->associate(ctx.hp_core, kHpClos);
  for (unsigned be : ctx.be_cores) ctx.cat->associate(be, kBeClos);
  ctx.monitor->track(ctx.hp_core);
  for (unsigned be : ctx.be_cores) ctx.monitor->track(be);
  if (ctx.mba) {
    ctx.mba->associate(ctx.hp_core, kHpClos);
    for (unsigned be : ctx.be_cores) ctx.mba->associate(be, kBeClos);
  }
}

void apply_split(PolicyContext& ctx, unsigned hp_ways) {
  const unsigned total = ctx.cat->num_ways();
  if (hp_ways < 1 || hp_ways >= total) {
    throw std::invalid_argument("apply_split: hp_ways must be in [1, ways-1]");
  }
  const unsigned be_ways = total - hp_ways;
  ctx.cat->set_clos_mask(kBeClos, sim::WayMask::low(be_ways));
  ctx.cat->set_clos_mask(kHpClos, sim::WayMask::high(hp_ways, total));
}

}  // namespace dicer::policy
