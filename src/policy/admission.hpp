// DICER+ADM — dynamic BE admission control, the paper's second future-work
// item (§6: "we intend to extend DICER to dynamically manage the number of
// co-located BEs").
//
// Cache partitioning alone cannot save the HP when the memory link stays
// saturated at *every* allocation (the SxS corner of the workload space).
// This extension parks BE cores — stops scheduling their application —
// when repeated samplings end with the link still saturated, and
// re-admits one parked BE after a sustained quiet spell. Parking goes
// through the machine's attach/detach, i.e. it models descheduling the
// BE process, exactly what a userspace consolidation manager would do.
//
// Still application-transparent: decisions use only MBM totals and the
// DICER state machine's own signals; no IPC_alone or SLO target is known.
#pragma once

#include <vector>

#include "policy/dicer.hpp"

namespace dicer::policy {

struct AdmissionConfig {
  DicerConfig dicer{};
  /// Park one BE when this many consecutive monitoring periods end
  /// saturated even though a sampling already ran.
  unsigned park_after_saturated_periods = 4;
  /// Re-admit one BE after this many consecutive periods below
  /// readmit_fraction * MemBW_threshold.
  unsigned readmit_after_quiet_periods = 6;
  double readmit_fraction = 0.60;
  /// Never park below this many running BEs.
  unsigned min_running_bes = 1;
};

class DicerAdmission final : public Dicer {
 public:
  explicit DicerAdmission(const AdmissionConfig& config = {});

  std::string name() const override { return "DICER+ADM"; }
  void setup(PolicyContext& ctx) override;

  unsigned running_bes() const noexcept {
    return static_cast<unsigned>(running_.size());
  }
  unsigned parked_bes() const noexcept {
    return static_cast<unsigned>(parked_.size());
  }
  std::uint64_t parks() const noexcept { return parks_; }
  std::uint64_t readmissions() const noexcept { return readmissions_; }

 protected:
  void on_period(PolicyContext& ctx, double hp_ipc, double hp_bw,
                 double total_bw) override;

 private:
  void park_one(PolicyContext& ctx);
  void readmit_one(PolicyContext& ctx);

  AdmissionConfig adm_;
  std::vector<unsigned> running_;  ///< BE cores currently executing
  std::vector<unsigned> parked_;   ///< BE cores with their app descheduled
  const sim::AppProfile* be_profile_ = nullptr;
  unsigned saturated_streak_ = 0;
  unsigned quiet_streak_ = 0;
  std::uint64_t parks_ = 0;
  std::uint64_t readmissions_ = 0;
};

}  // namespace dicer::policy
