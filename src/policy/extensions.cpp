#include "policy/extensions.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace dicer::policy {

DicerMba::DicerMba(const DicerMbaConfig& config)
    : Dicer(config.dicer), mba_config_(config) {
  if (mba_config_.release_fraction <= 0.0 ||
      mba_config_.release_fraction >= 1.0) {
    throw std::invalid_argument("DicerMba: release_fraction outside (0,1)");
  }
}

void DicerMba::setup(PolicyContext& ctx) {
  if (!ctx.mba) {
    throw std::invalid_argument(
        "DicerMba: platform has no MBA controller (probe the capability "
        "with enable_mba=true)");
  }
  Dicer::setup(ctx);
  be_throttle_pct_ = 100;
  ctx.mba->set_clos_throttle(kBeClos, be_throttle_pct_);
}

void DicerMba::on_period(PolicyContext& ctx, double /*hp_ipc*/,
                         double /*hp_bw*/, double total_bw) {
  const double threshold = config().membw_threshold_bytes_per_sec;
  const unsigned gran = 10;
  unsigned next = be_throttle_pct_;
  if (total_bw > threshold && be_throttle_pct_ > mba_config_.min_throttle_pct) {
    next = be_throttle_pct_ - gran;
  } else if (total_bw < mba_config_.release_fraction * threshold &&
             be_throttle_pct_ < 100) {
    next = be_throttle_pct_ + gran;
  }
  if (next != be_throttle_pct_) {
    be_throttle_pct_ = next;
    ctx.mba->set_clos_throttle(kBeClos, be_throttle_pct_);
    DICER_DEBUG << "DICER+MBA: BE throttle -> " << be_throttle_pct_ << "%";
  }
}

}  // namespace dicer::policy
