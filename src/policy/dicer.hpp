// DICER — Diligent Cache Partitioning (§3, Listings 1-3).
//
// A dynamic cache-partitioning controller for one HP + N BEs:
//
//  * starts like CT (HP := ways-1, BEs := 1), assuming a CT-Favoured
//    workload;
//  * every monitoring period T it reads HP IPC, HP memory bandwidth and
//    total memory bandwidth (CMT/MBM/perf via rdt::Monitor);
//  * on memory-link saturation (total BW > MemBW_threshold) it
//    reclassifies the workload CT-Thwarted and *samples* decreasing HP
//    allocations, each held for a settle interval, keeping the one with
//    the highest HP IPC (allocation_sampling, Listing 1);
//  * otherwise it optimises: a phase change (Eq. 2 — HP bandwidth above
//    (1+phase_threshold) x geomean of the last three periods) resets the
//    allocation; stable IPC (Eq. 3, +-a) donates one HP way to the BEs;
//    improved IPC holds; degraded IPC resets (Listing 2);
//  * a reset returns to CT for CT-F workloads or to the last sampled
//    optimum for CT-T, then validates that choice after one period
//    (Listing 3).
//
// Paper parameter values (Table 1) are the defaults in DicerConfig.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/policy.hpp"
#include "util/stats.hpp"

namespace dicer::policy {

struct DicerConfig {
  double period_sec = 1.0;            ///< monitoring period T (Table 1)
  double membw_threshold_bytes_per_sec = 50e9 / 8.0;  ///< 50 Gbps (Table 1)
  double phase_threshold = 0.30;      ///< Eq. 2 (Table 1)
  double alpha = 0.05;                ///< Eq. 3 IPC stability band (Table 1)
  unsigned bw_history_periods = 3;    ///< Eq. 2 geomean window

  double sample_interval_sec = 0.25;  ///< settle time per sampled allocation
  unsigned sample_stride = 2;         ///< ways step between samples
  unsigned min_hp_ways = 1;
  unsigned min_be_ways = 1;

  /// Minimum periods between two samplings triggered purely by persistent
  /// saturation (the paper's Listing 1 would resample every period while
  /// the link stays saturated; a short cooldown keeps that from thrashing
  /// when BEs saturate the link at *any* allocation). 0 restores the
  /// literal listing; the ablation bench measures the difference.
  unsigned resample_cooldown_periods = 5;

  /// Disable the bandwidth-saturation detection path entirely (never
  /// sample, always treat the workload as CT-Favoured). This degrades
  /// DICER into a DCP-QoS/Cook-style controller — the related-work systems
  /// the paper criticises for "lacking support for identifying and
  /// mitigating memory bandwidth saturation" (§5). Ablation only.
  bool bw_detection = true;
};

/// Counters describing what the controller did (for ablation benches and
/// the controller-behaviour tests).
struct DicerStats {
  std::uint64_t periods = 0;
  std::uint64_t samplings = 0;
  std::uint64_t sampling_steps = 0;
  std::uint64_t way_donations = 0;   ///< stable periods that shrank HP
  std::uint64_t phase_resets = 0;
  std::uint64_t perf_resets = 0;
  std::uint64_t rollbacks = 0;       ///< CT-F validations that reverted
};

class Dicer : public Policy {
 public:
  explicit Dicer(const DicerConfig& config = {});

  std::string name() const override { return "DICER"; }
  void setup(PolicyContext& ctx) override;
  double interval_sec() const override;
  void act(PolicyContext& ctx) override;

  const DicerConfig& config() const noexcept { return config_; }
  const DicerStats& stats() const noexcept { return stats_; }

  /// Current HP allocation in ways (observable for tests/telemetry).
  unsigned hp_ways() const noexcept { return hp_ways_; }
  bool ct_favoured() const noexcept { return ct_favoured_; }

 protected:
  /// Hook for extensions: called once per monitoring period with the fresh
  /// measurements, before the DICER state machine acts. Default: no-op.
  virtual void on_period(PolicyContext& ctx, double hp_ipc,
                         double hp_bw_bytes_per_sec,
                         double total_bw_bytes_per_sec);

 private:
  enum class State { kWarmup, kSteady, kSampling, kResetValidate };
  enum class ResetKind { kCtFavoured, kCtThwarted };

  struct PeriodSample {
    double hp_ipc = 0.0;
    double hp_bw = 0.0;
    double total_bw = 0.0;
  };

  PeriodSample measure(PolicyContext& ctx);
  bool bw_saturated(const PeriodSample& s) const;
  bool phase_change(double hp_bw) const;      // Eq. 2
  bool performance_stable(double ipc) const;  // Eq. 3
  bool performance_better(double ipc, double reference) const;

  void set_hp_ways(PolicyContext& ctx, unsigned hp_ways);
  void start_sampling(PolicyContext& ctx);
  void sampling_step(PolicyContext& ctx, const PeriodSample& s);
  void steady_step(PolicyContext& ctx, const PeriodSample& s);
  void allocation_reset(PolicyContext& ctx, double trigger_ipc);
  void reset_validate_step(PolicyContext& ctx, const PeriodSample& s);

  DicerConfig config_;
  DicerStats stats_;

  State state_ = State::kWarmup;
  unsigned total_ways_ = 20;
  unsigned hp_ways_ = 19;

  bool ct_favoured_ = true;
  unsigned optimal_hp_ways_ = 19;
  double ipc_opt_ = 0.0;

  double prev_ipc_ = 0.0;
  util::RecentWindow hp_bw_history_;

  // Sampling state.
  std::vector<unsigned> sample_plan_;
  std::size_t sample_index_ = 0;
  unsigned best_sample_ways_ = 0;
  double best_sample_ipc_ = -1.0;
  std::uint64_t last_sampling_period_ = 0;

  // Reset-validation state.
  ResetKind reset_kind_ = ResetKind::kCtFavoured;
  unsigned rollback_hp_ways_ = 19;
  double trigger_ipc_ = 0.0;
};

}  // namespace dicer::policy
