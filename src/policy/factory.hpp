// Policy factory for benches, examples and CLI front-ends.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "policy/policy.hpp"

namespace dicer::policy {

/// Create a policy by name: "UM", "CT", "DICER", "DICER-noBW",
/// "DICER+MBA", or "Static(N)" for any valid N.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Policy> make_policy(const std::string& name);

/// The names make_policy accepts (Static is listed as "Static(N)").
std::vector<std::string> known_policies();

}  // namespace dicer::policy
