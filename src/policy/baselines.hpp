// The paper's two baseline co-location policies (§2.2) plus the static
// partition used by the Fig 2/3 sweeps.
#pragma once

#include "policy/policy.hpp"

namespace dicer::policy {

/// Unmanaged (UM): "all applications are executed in a typical fashion,
/// i.e., there is no control on sharing resources or any QoS enforcement."
/// HP and BEs contend freely for the whole LLC and the memory link.
class Unmanaged final : public Policy {
 public:
  std::string name() const override { return "UM"; }
  void setup(PolicyContext& ctx) override;
  double interval_sec() const override { return 5.0; }
  void act(PolicyContext& ctx) override;
};

/// Cache-Takeover (CT): "conservatively allocates the maximum possible
/// isolated portion of the LLC to HP, leaving the minimum possible LLC
/// portion for all the BEs" — 19 of 20 ways to HP, 1 way shared by all BEs.
class CacheTakeover final : public Policy {
 public:
  std::string name() const override { return "CT"; }
  void setup(PolicyContext& ctx) override;
  double interval_sec() const override { return 5.0; }
  void act(PolicyContext& ctx) override;
};

/// Fixed split: `hp_ways` isolated ways to HP, the rest to the BEs.
/// The Fig 3 sweep instantiates one of these per x-axis point; CT is the
/// special case hp_ways == ways-1 and is kept separate for reporting.
class StaticPartition final : public Policy {
 public:
  explicit StaticPartition(unsigned hp_ways) : hp_ways_(hp_ways) {}

  std::string name() const override {
    return "Static(" + std::to_string(hp_ways_) + ")";
  }
  void setup(PolicyContext& ctx) override;
  double interval_sec() const override { return 5.0; }
  void act(PolicyContext& ctx) override;

  unsigned hp_ways() const noexcept { return hp_ways_; }

 private:
  unsigned hp_ways_;
};

}  // namespace dicer::policy
