// DICER variants beyond the paper's core mechanism.
//
//  - DicerNoBw: DICER with the bandwidth-saturation path disabled — a
//    stand-in for DCP-QoS [35] / Cook et al. [9], the dynamic partitioners
//    the related-work section faults for ignoring the memory link. Used by
//    the ablation bench to quantify how much of DICER's win comes from
//    saturation handling.
//
//  - DicerMba: the paper's first future-work item (§6): "extending DICER
//    to explicitly, dynamically control the memory bandwidth, using
//    Intel's MBA". On top of the unmodified DICER state machine, a simple
//    feedback loop throttles the BE class when the link saturates and
//    releases the throttle when there is headroom, so BE miss storms stop
//    reaching the HP through the memory system at all.
#pragma once

#include "policy/dicer.hpp"

namespace dicer::policy {

class DicerNoBw final : public Dicer {
 public:
  explicit DicerNoBw(DicerConfig config = {}) : Dicer(disable_bw(config)) {}

  std::string name() const override { return "DICER-noBW"; }

 private:
  static DicerConfig disable_bw(DicerConfig c) {
    c.bw_detection = false;
    return c;
  }
};

struct DicerMbaConfig {
  DicerConfig dicer{};
  /// Release the BE throttle one step when total traffic falls below this
  /// fraction of the saturation threshold.
  double release_fraction = 0.70;
  unsigned min_throttle_pct = 10;  ///< MBA floor for the BE class
};

class DicerMba final : public Dicer {
 public:
  explicit DicerMba(const DicerMbaConfig& config = {});

  std::string name() const override { return "DICER+MBA"; }
  void setup(PolicyContext& ctx) override;

  unsigned be_throttle_pct() const noexcept { return be_throttle_pct_; }

 protected:
  void on_period(PolicyContext& ctx, double hp_ipc, double hp_bw,
                 double total_bw) override;

 private:
  DicerMbaConfig mba_config_;
  unsigned be_throttle_pct_ = 100;
};

}  // namespace dicer::policy
