#include "policy/baselines.hpp"

namespace dicer::policy {

void Unmanaged::setup(PolicyContext& ctx) {
  associate_and_track(ctx);
  const auto full = sim::WayMask::full(ctx.cat->num_ways());
  ctx.cat->set_clos_mask(kHpClos, full);
  ctx.cat->set_clos_mask(kBeClos, full);
}

void Unmanaged::act(PolicyContext& ctx) {
  // Contention-unaware: never reacts; keep monitor baselines fresh so
  // post-run statistics stay windowed sensibly.
  ctx.monitor->poll_all();
}

void CacheTakeover::setup(PolicyContext& ctx) {
  associate_and_track(ctx);
  apply_split(ctx, ctx.cat->num_ways() - 1);
}

void CacheTakeover::act(PolicyContext& ctx) { ctx.monitor->poll_all(); }

void StaticPartition::setup(PolicyContext& ctx) {
  associate_and_track(ctx);
  apply_split(ctx, hp_ways_);
}

void StaticPartition::act(PolicyContext& ctx) { ctx.monitor->poll_all(); }

}  // namespace dicer::policy
