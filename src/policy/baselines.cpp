#include "policy/baselines.hpp"

#include "util/trace.hpp"

namespace dicer::policy {

namespace {

/// Static policies have one decision — their initial allocation; record
/// it so a mixed-policy trace (e.g. a sweep) shows what each run applied.
void trace_setup(PolicyContext& ctx, const std::string& policy,
                 unsigned hp_ways, unsigned total_ways) {
  auto& tr = trace::resolve(ctx.tracer);
  if (tr.enabled(trace::Kind::kSetup)) {
    tr.emit(trace::Kind::kSetup, ctx.machine->time_sec(),
            {{"policy", policy},
             {"hp_ways", hp_ways},
             {"total_ways", total_ways}});
  }
}

}  // namespace

void Unmanaged::setup(PolicyContext& ctx) {
  associate_and_track(ctx);
  const auto full = sim::WayMask::full(ctx.cat->num_ways());
  ctx.cat->set_clos_mask(kHpClos, full);
  ctx.cat->set_clos_mask(kBeClos, full);
  // UM shares every way; report the full cache as HP-visible.
  trace_setup(ctx, name(), ctx.cat->num_ways(), ctx.cat->num_ways());
}

void Unmanaged::act(PolicyContext& ctx) {
  // Contention-unaware: never reacts; keep monitor baselines fresh so
  // post-run statistics stay windowed sensibly.
  ctx.monitor->poll_all();
}

void CacheTakeover::setup(PolicyContext& ctx) {
  associate_and_track(ctx);
  apply_split(ctx, ctx.cat->num_ways() - 1);
  trace_setup(ctx, name(), ctx.cat->num_ways() - 1, ctx.cat->num_ways());
}

void CacheTakeover::act(PolicyContext& ctx) { ctx.monitor->poll_all(); }

void StaticPartition::setup(PolicyContext& ctx) {
  associate_and_track(ctx);
  apply_split(ctx, hp_ways_);
  trace_setup(ctx, name(), hp_ways_, ctx.cat->num_ways());
}

void StaticPartition::act(PolicyContext& ctx) { ctx.monitor->poll_all(); }

}  // namespace dicer::policy
