// Co-location policy interface.
//
// A policy owns the resource-allocation decisions for one consolidation:
// one High-Priority (HP) app on one core, Best-Effort (BE) apps on the
// others (§2.1). It actuates exclusively through the rdt:: layer (CAT
// masks, optionally MBA throttles) and observes exclusively through
// rdt::Monitor — exactly the interface the real DICER has on a Xeon.
//
// The harness drives the policy as a timed loop:
//
//     policy->setup(ctx);
//     while (running) {
//       machine.run_for(policy->interval_sec());
//       policy->act(ctx);
//     }
//
// so a policy chooses its own control cadence: DICER returns its
// monitoring period T (1 s) in steady state and its sample-settle
// interval while sampling; static policies return a long interval and do
// nothing in act().
#pragma once

#include <string>
#include <vector>

#include "rdt/cat.hpp"
#include "rdt/mba.hpp"
#include "rdt/monitor.hpp"
#include "sim/machine.hpp"

namespace dicer::trace {
class Tracer;
}

namespace dicer::policy {

/// Everything a policy may touch. The harness wires this up per run.
struct PolicyContext {
  sim::Machine* machine = nullptr;
  rdt::CatController* cat = nullptr;
  rdt::Monitor* monitor = nullptr;
  rdt::MbaController* mba = nullptr;  ///< null when the platform lacks MBA
  unsigned hp_core = 0;
  std::vector<unsigned> be_cores;
  /// Event sink for controller decisions (null = the process-global
  /// tracer, which is silent until a sink is attached).
  trace::Tracer* tracer = nullptr;
};

/// CLOS assignment convention shared by all policies: CLOS 1 holds the HP
/// core, CLOS 2 holds every BE core. CLOS 0 keeps the hardware-default
/// full mask for anything else.
inline constexpr unsigned kHpClos = 1;
inline constexpr unsigned kBeClos = 2;

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Called once before the consolidation starts; applies the initial
  /// allocation and starts monitoring.
  virtual void setup(PolicyContext& ctx) = 0;

  /// Simulated seconds until the next act() call.
  virtual double interval_sec() const = 0;

  /// One control action (monitor, decide, actuate).
  virtual void act(PolicyContext& ctx) = 0;

  /// Optional end-of-run hook (e.g. to flush controller statistics).
  virtual void teardown(PolicyContext& /*ctx*/) {}
};

/// Associate HP/BE cores with their CLOS and start monitoring them —
/// the shared prologue of every policy's setup().
void associate_and_track(PolicyContext& ctx);

/// Partition the LLC with BEs in the low `be_ways` ways and HP in the rest
/// (non-overlapping, §3.3). Validates 1 <= be_ways < total.
void apply_split(PolicyContext& ctx, unsigned hp_ways);

}  // namespace dicer::policy
