#include "policy/admission.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace dicer::policy {

DicerAdmission::DicerAdmission(const AdmissionConfig& config)
    : Dicer(config.dicer), adm_(config) {
  if (adm_.park_after_saturated_periods == 0 ||
      adm_.readmit_after_quiet_periods == 0) {
    throw std::invalid_argument("DicerAdmission: streak lengths must be > 0");
  }
  if (adm_.readmit_fraction <= 0.0 || adm_.readmit_fraction >= 1.0) {
    throw std::invalid_argument(
        "DicerAdmission: readmit_fraction outside (0, 1)");
  }
}

void DicerAdmission::setup(PolicyContext& ctx) {
  Dicer::setup(ctx);
  running_ = ctx.be_cores;
  parked_.clear();
  saturated_streak_ = 0;
  quiet_streak_ = 0;
  parks_ = 0;
  readmissions_ = 0;
  be_profile_ = nullptr;
  if (!ctx.be_cores.empty() && ctx.machine->occupied(ctx.be_cores.front())) {
    be_profile_ = &ctx.machine->runtime(ctx.be_cores.front()).profile();
  }
}

void DicerAdmission::park_one(PolicyContext& ctx) {
  if (running_.size() <= adm_.min_running_bes) return;
  const unsigned core = running_.back();
  running_.pop_back();
  parked_.push_back(core);
  ctx.machine->detach(core);
  ++parks_;
  saturated_streak_ = 0;
  DICER_DEBUG << "DICER+ADM: parked BE core " << core << " ("
              << running_.size() << " still running)";
}

void DicerAdmission::readmit_one(PolicyContext& ctx) {
  if (parked_.empty() || !be_profile_) return;
  const unsigned core = parked_.back();
  parked_.pop_back();
  running_.push_back(core);
  ctx.machine->attach(core, be_profile_);
  ++readmissions_;
  quiet_streak_ = 0;
  DICER_DEBUG << "DICER+ADM: re-admitted BE core " << core;
}

void DicerAdmission::on_period(PolicyContext& ctx, double /*hp_ipc*/,
                               double /*hp_bw*/, double total_bw) {
  const double threshold = config().membw_threshold_bytes_per_sec;
  if (total_bw > threshold) {
    ++saturated_streak_;
    quiet_streak_ = 0;
    // Give cache partitioning the first shot (Dicer samples on the first
    // saturated period); only park once saturation has survived a full
    // sampling plus a few steady periods.
    if (stats().samplings > 0 &&
        saturated_streak_ >= adm_.park_after_saturated_periods) {
      park_one(ctx);
    }
  } else if (total_bw < adm_.readmit_fraction * threshold) {
    ++quiet_streak_;
    saturated_streak_ = 0;
    if (quiet_streak_ >= adm_.readmit_after_quiet_periods) {
      readmit_one(ctx);
    }
  } else {
    saturated_streak_ = 0;
    quiet_streak_ = 0;
  }
}

}  // namespace dicer::policy
