#include "policy/factory.hpp"

#include <stdexcept>

#include "policy/baselines.hpp"
#include "policy/admission.hpp"
#include "policy/extensions.hpp"

namespace dicer::policy {

std::unique_ptr<Policy> make_policy(const std::string& name) {
  if (name == "UM") return std::make_unique<Unmanaged>();
  if (name == "CT") return std::make_unique<CacheTakeover>();
  if (name == "DICER") return std::make_unique<Dicer>();
  if (name == "DICER-noBW") return std::make_unique<DicerNoBw>();
  if (name == "DICER+MBA") return std::make_unique<DicerMba>();
  if (name == "DICER+ADM") return std::make_unique<DicerAdmission>();
  if (name.rfind("Static(", 0) == 0 && name.back() == ')') {
    const std::string arg = name.substr(7, name.size() - 8);
    // Full-consumption parse: "Static(4x)" must not silently become
    // Static(4).
    std::size_t pos = 0;
    int ways = 0;
    try {
      ways = std::stoi(arg, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != arg.size() || arg.empty()) {
      throw std::invalid_argument("make_policy: bad Static way count '" +
                                  arg + "'");
    }
    if (ways < 1) {
      throw std::invalid_argument("make_policy: Static needs ways >= 1");
    }
    return std::make_unique<StaticPartition>(static_cast<unsigned>(ways));
  }
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

std::vector<std::string> known_policies() {
  return {"UM", "CT", "DICER", "DICER-noBW", "DICER+MBA", "DICER+ADM",
          "Static(N)"};
}

}  // namespace dicer::policy
