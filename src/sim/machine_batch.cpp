#include "sim/machine_batch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/trace.hpp"

namespace dicer::sim {

MachineBatch::~MachineBatch() {
  // The shared table dies with the batch; machines fall back to their
  // per-core PhaseConst slots (values rebuild on demand, bit-identically).
  for (auto& lane : lanes_) lane.m->shared_phases_ = nullptr;
}

unsigned MachineBatch::add(Machine& machine) {
  if (machine.shared_phases_ != nullptr) {
    throw std::logic_error("MachineBatch::add: machine already in a batch");
  }
  Lane lane;
  lane.m = &machine;
  lane.tracer = &trace::resolve(machine.config_.tracer);
  lane.offset = slot_rt_.size();
  lane.dt = machine.config_.quantum_sec;
  lane.cycles_per_quantum =
      machine.config_.freq_hz * machine.config_.quantum_sec;
  const std::size_t cap = machine.config_.num_cores;
  slot_rt_.resize(slot_rt_.size() + cap, nullptr);
  slot_tel_.resize(slot_tel_.size() + cap, nullptr);
  slot_phase_idx_.resize(slot_phase_idx_.size() + cap, 0);
  slot_instr_.resize(slot_instr_.size() + cap, 0.0);
  slot_dbytes_.resize(slot_dbytes_.size() + cap, 0.0);
  machine.shared_phases_ = &phases_;
  lanes_.push_back(lane);
  // A machine enrolled mid-life may already hold an armed solve: fuse it
  // right away so the first batch step can take the fast path.
  if (machine.solve_cache_.armed && machine.config_.batch_stepping) {
    try_snapshot(lanes_.back(), machine);
  }
  return static_cast<unsigned>(lanes_.size() - 1);
}

// Fused eligibility — everything a serial step's fingerprint compare
// establishes, maintained incrementally:
//   armed          actuators (attach/detach/mask/throttle) disarm, so an
//                  armed cache means no actuator touched the machine
//   expect_quanta  any step taken outside the batch advances the quantum
//                  counter, exposing externally-driven progress
//   phases         verified at snapshot time, then re-checked slot-by-
//                  slot after each boundary-checking fused advance (drift
//                  unfuses); within-budget commits cannot drift
//   tracer         a kQuantum subscriber needs the full event; delegate
//                  to Machine::step, which emits it bit-identically off
//                  the unchanged replay state
bool MachineBatch::fused_ready(const Lane& lane, const Machine& m) const {
  return lane.fused && m.solve_cache_.armed &&
         m.stats_.quanta == lane.expect_quanta &&
         !lane.tracer->enabled(trace::Kind::kQuantum);
}

void MachineBatch::step(unsigned lane_idx) {
  Lane& lane = lanes_[lane_idx];
  Machine& m = *lane.m;
  if (fused_ready(lane, m)) {
    fused_step(lane, m);
    return;
  }
  lane.fused = false;
  m.step();
  ++stats_.fallback_steps;
  lane.expect_quanta = m.stats_.quanta;
  if (m.solve_cache_.armed && m.config_.batch_stepping) {
    try_snapshot(lane, m);
  }
}

void MachineBatch::fused_step(Lane& lane, Machine& m) {
  // The serial replay path commits: time, the quantum/replay counters, and
  // per active core the app advance plus four telemetry accumulations. Its
  // remaining writes (occupancy_bytes, last_quantum_ipc, ips_seed) rewrite
  // values that are unchanged while the solve cache is armed, so skipping
  // them leaves every byte of machine state identical.
  m.time_sec_ += lane.dt;
  ++m.stats_.quanta;
  ++m.stats_.replays;
  ++lane.expect_quanta;
  ++stats_.fused_quanta;
  const std::size_t off = lane.offset;
  const std::size_t n = lane.slots;
  const double cyc = lane.cycles_per_quantum;
  if (lane.budget == 0) refill_budget(lane);
  if (lane.budget > 0) {
    // Budgeted quanta provably stay inside every slot's phase: the commit
    // is the advance() fast path's two additions per slot, with the
    // boundary predicate and drift check statically discharged at snapshot
    // time (completions stays untouched — a within-phase advance returns
    // zero, and adding zero is not an observable write).
    --lane.budget;
    for (std::size_t i = 0; i < n; ++i) {
      const double instr = slot_instr_[off + i];
      slot_rt_[off + i]->advance_within_phase(instr);
      CoreTelemetry& tel = *slot_tel_[off + i];
      tel.instructions += instr;
      tel.active_cycles += cyc;
      tel.mem_bytes += slot_dbytes_[off + i];
    }
    return;
  }
  bool drift = false;
  for (std::size_t i = 0; i < n; ++i) {
    AppRuntime& rt = *slot_rt_[off + i];
    const double instr = slot_instr_[off + i];
    const unsigned completed = rt.advance(instr);
    CoreTelemetry& tel = *slot_tel_[off + i];
    tel.instructions += instr;
    tel.active_cycles += cyc;
    tel.mem_bytes += slot_dbytes_[off + i];
    tel.completions += completed;
    // Phase drift during this commit (boundary crossing into a different
    // phase) is exactly what the serial fingerprint compare would catch at
    // the *next* step — this quantum's values were solved before the
    // crossing either way. A whole-run restart into the same phase keeps
    // the same phase index (hence pointer) and stays fused, like serial
    // replay does.
    if (rt.phase_index() != slot_phase_idx_[off + i]) drift = true;
  }
  if (drift) lane.fused = false;
}

void MachineBatch::fused_run(Lane& lane, Machine& m, std::uint64_t quanta) {
  // A bulk commit is `quanta` fused_step budget commits with the loops
  // interchanged: per accumulator we perform the identical sequence of
  // individual additions (never a multiply — FP addition does not
  // distribute), but the running values live in registers and touch
  // memory once per slot instead of once per quantum. Strict FP semantics
  // forbid the compiler from reassociating the chains, so every committed
  // byte matches the single-step path exactly.
  double t = m.time_sec_;
  for (std::uint64_t q = 0; q < quanta; ++q) t += lane.dt;
  m.time_sec_ = t;
  m.stats_.quanta += quanta;
  m.stats_.replays += quanta;
  lane.expect_quanta += quanta;
  stats_.fused_quanta += quanta;
  lane.budget -= quanta;
  const std::size_t off = lane.offset;
  const std::size_t n = lane.slots;
  const double cyc = lane.cycles_per_quantum;
  for (std::size_t i = 0; i < n; ++i) {
    AppRuntime& rt = *slot_rt_[off + i];
    CoreTelemetry& tel = *slot_tel_[off + i];
    const double instr = slot_instr_[off + i];
    const double dbytes = slot_dbytes_[off + i];
    double retired = rt.retired_total_;
    double into = rt.into_phase_;
    double t_instr = tel.instructions;
    double t_cyc = tel.active_cycles;
    double t_mem = tel.mem_bytes;
    for (std::uint64_t q = 0; q < quanta; ++q) {
      retired += instr;
      into += instr;
      t_instr += instr;
      t_cyc += cyc;
      t_mem += dbytes;
    }
    rt.retired_total_ = retired;
    rt.into_phase_ = into;
    tel.instructions = t_instr;
    tel.active_cycles = t_cyc;
    tel.mem_bytes = t_mem;
  }
}

void MachineBatch::try_snapshot(Lane& lane, Machine& m) {
  const auto& cache = m.solve_cache_;
  const auto& s = m.scratch_;
  const std::size_t n = cache.active.size();
  // The arming step's own commit may have crossed a phase boundary after
  // the solve; fusing then would replay values for a phase set that no
  // longer holds. Refuse, and let the next fallback step re-solve.
  for (std::size_t i = 0; i < n; ++i) {
    if (&m.apps_[cache.active[i]]->current_phase() != cache.phase[i]) {
      return;
    }
  }
  const std::size_t off = lane.offset;
  const double dt = lane.dt;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned core = cache.active[i];
    slot_rt_[off + i] = &*m.apps_[core];
    slot_tel_[off + i] = &m.telemetry_[core];
    // Verified equal to cache.phase[i]'s index just above.
    slot_phase_idx_[off + i] = m.apps_[core]->phase_index();
    // While armed, scratch still holds the arming solve's state indexed by
    // cache.active, so these are the exact products a serial replayed
    // commit would form each quantum.
    slot_instr_[off + i] = s.ips[i] * dt;
    slot_dbytes_[off + i] = s.arb.achieved_bytes_per_sec[i] * dt;
  }
  lane.slots = n;
  lane.fused = true;
  lane.expect_quanta = m.stats_.quanta;
  refill_budget(lane);
  ++stats_.snapshots;
}

std::uint64_t MachineBatch::refill_budget(Lane& lane) {
  // Quanta that provably stay inside every slot's phase: per slot,
  // floor(phase_remaining / instr) minus a 2-quantum margin; the lane
  // budget is the min across slots. The margin dominates accumulated
  // rounding (k additions of `instr` drift by ~k ulps, many orders of
  // magnitude below one quantum's worth), so within-budget commits can
  // skip the boundary predicate and drift check without changing any
  // result bit.
  const std::size_t off = lane.offset;
  const std::size_t n = lane.slots;
  std::uint64_t budget = UINT64_MAX;
  for (std::size_t i = 0; i < n; ++i) {
    const double instr = slot_instr_[off + i];
    const double remaining = slot_rt_[off + i]->phase_remaining();
    std::uint64_t safe_quanta = 0;
    if (instr > 0.0 && remaining > instr) {
      const double safe = std::floor(remaining / instr) - 2.0;
      if (safe > 0.0) safe_quanta = static_cast<std::uint64_t>(safe);
    }
    budget = std::min(budget, safe_quanta);
  }
  lane.budget = (n > 0) ? budget : 0;
  return lane.budget;
}

void MachineBatch::run_for(unsigned lane_idx, double seconds) {
  Lane& lane = lanes_[lane_idx];
  const double dt = lane.dt;
  const auto quanta = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(seconds / dt - 1e-9)), 1);
  std::uint64_t done = 0;
  while (done < quanta) {
    Machine& m = *lane.m;
    // The quantum count is exact, so a within-budget chunk can be committed
    // in one fused_run; quanta past the budget (or off the fast path) go
    // through the boundary-checking single-step machinery.
    if (lane.budget > 0 && fused_ready(lane, m)) {
      const std::uint64_t k = std::min(lane.budget, quanta - done);
      fused_run(lane, m, k);
      done += k;
      continue;
    }
    step(lane_idx);
    ++done;
  }
}

void MachineBatch::run_until(unsigned lane_idx, double t_sec) {
  Lane& lane = lanes_[lane_idx];
  Machine& m = *lane.m;
  while (m.time_sec_ < t_sec - 1e-9) {
    if (lane.budget > 0 && fused_ready(lane, m)) {
      // Estimate the quanta left to the boundary with the same 2-quantum
      // safety margin the budget carries: undershooting is harmless (the
      // loop single-steps the tail against the exact serial condition),
      // while the margin makes overshooting impossible despite the
      // rounding accumulated in time_sec_.
      const double est = std::floor((t_sec - 1e-9 - m.time_sec_) / lane.dt);
      if (est > 2.0) {
        const auto k = std::min(lane.budget,
                                static_cast<std::uint64_t>(est - 2.0));
        fused_run(lane, m, k);
        continue;
      }
    }
    step(lane_idx);
  }
}

}  // namespace dicer::sim
