#include "sim/cache/mrc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dicer::sim {

MissRatioCurve::MissRatioCurve(double floor,
                               std::vector<MrcComponent> components)
    : floor_(floor), components_(std::move(components)) {
  if (floor < 0.0 || floor > 1.0) {
    throw std::invalid_argument("MissRatioCurve: floor outside [0,1]");
  }
  double total = floor;
  for (const auto& c : components_) {
    if (c.weight < 0.0) {
      throw std::invalid_argument("MissRatioCurve: negative component weight");
    }
    if (c.ws_bytes <= 0.0) {
      throw std::invalid_argument("MissRatioCurve: working set must be > 0");
    }
    if (c.shape <= 0.0) {
      throw std::invalid_argument("MissRatioCurve: shape must be > 0");
    }
    total += c.weight;
  }
  if (total > 1.0 + 1e-9) {
    throw std::invalid_argument(
        "MissRatioCurve: floor + component weights exceed 1");
  }
}

double MissRatioCurve::at(double bytes) const noexcept {
  const double x = std::max(bytes, 0.0);
  double m = floor_;
  for (const auto& c : components_) {
    const double coverage = std::min(x / c.ws_bytes, 1.0);
    if (coverage >= 1.0) continue;  // fully resident: contributes ~0
    m += c.weight * std::pow(1.0 - coverage, c.shape);
  }
  return std::min(m, 1.0);
}

double MissRatioCurve::ceiling() const noexcept {
  double m = floor_;
  for (const auto& c : components_) m += c.weight;
  return std::min(m, 1.0);
}

double MissRatioCurve::bytes_for_miss_ratio(double target,
                                            double limit_bytes) const {
  if (at(0.0) <= target) return 0.0;
  if (at(limit_bytes) > target) return limit_bytes;
  double lo = 0.0, hi = limit_bytes;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (at(mid) <= target) hi = mid;
    else lo = mid;
  }
  return hi;
}

double MissRatioCurve::footprint_bytes() const noexcept {
  double fp = 0.0;
  for (const auto& c : components_) fp += c.ws_bytes;
  return fp;
}

double MissRatioCurve::stream_fraction() const noexcept {
  const double c = ceiling();
  return c > 0.0 ? floor_ / c : 0.0;
}

MissRatioCurve MissRatioCurve::streaming(double intensity_floor) {
  // A streaming app misses regardless of allocation: the floor carries
  // almost all the mass, with a token small reuse component so the curve
  // is not perfectly flat.
  return MissRatioCurve(
      intensity_floor,
      {{std::min(0.05, 1.0 - intensity_floor), 512.0 * 1024.0, 2.0}});
}

MissRatioCurve MissRatioCurve::single_knee(double miss_mass, double ws_bytes,
                                           double floor, double shape) {
  return MissRatioCurve(floor, {{miss_mass, ws_bytes, shape}});
}

MissRatioCurve MissRatioCurve::double_knee(double mass1, double ws1,
                                           double mass2, double ws2,
                                           double floor) {
  return MissRatioCurve(floor, {{mass1, ws1, 1.5}, {mass2, ws2, 1.5}});
}

EmpiricalMrc::EmpiricalMrc(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first < points_[i - 1].first) {
      throw std::invalid_argument("EmpiricalMrc: points not sorted by bytes");
    }
  }
  for (const auto& [bytes, miss] : points_) {
    if (bytes < 0.0 || miss < 0.0 || miss > 1.0) {
      throw std::invalid_argument("EmpiricalMrc: point out of range");
    }
  }
}

double EmpiricalMrc::at(double bytes) const noexcept {
  if (points_.empty()) return 1.0;
  if (bytes <= points_.front().first) return points_.front().second;
  if (bytes >= points_.back().first) return points_.back().second;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), bytes,
      [](const auto& p, double b) { return p.first < b; });
  const auto& [x1, y1] = *it;
  const auto& [x0, y0] = *(it - 1);
  if (x1 == x0) return y1;
  const double f = (bytes - x0) / (x1 - x0);
  return y0 + f * (y1 - y0);
}

double EmpiricalMrc::monotonicity_violation() const noexcept {
  double worst = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    worst = std::max(worst, points_[i].second - points_[i - 1].second);
  }
  return worst;
}

}  // namespace dicer::sim
