// MRC profiler: measures an empirical miss-ratio curve for an address
// stream, one point per way count from 1..geometry.ways.
//
// Three modes:
//  * kSinglePass (default) — the set-aware reuse-distance profiler
//    (`ReuseProfiler`): ONE pass over the stream yields every way count at
//    once, byte-identical to the exact replay oracle.
//  * kSampled — single pass plus SHARDS set sampling (`config.sampling`),
//    trading a bounded miss-ratio error (validated at <= 0.02) for only
//    profiling a hash fraction of the sets.
//  * kExactReplay — the original oracle: replay the stream through the
//    trace-driven `SetAssocCache` once per way count. Kept as ground
//    truth; the replays are independent, so they run in parallel on a
//    `util::ThreadPool` with byte-identical output at any worker count.
//
// All modes time themselves into trace::TimerRegistry::global()
// ("mrc.profile.*") and tally a "profiler.*" counter group (accesses,
// sampled accesses, distinct blocks, sample rate) surfaced by the bench
// harness under --profile.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/cache/address_stream.hpp"
#include "sim/cache/mrc.hpp"
#include "sim/cache/reuse_profiler.hpp"
#include "sim/cache/set_assoc_cache.hpp"

namespace dicer::sim {

enum class MrcProfilerMode {
  kExactReplay,  ///< per-way replay oracle (parallel, byte-identical)
  kSinglePass,   ///< one-pass reuse-distance profile, exact
  kSampled,      ///< one-pass with SHARDS set sampling
};

struct MrcProfilerConfig {
  CacheGeometry geometry{};
  std::uint64_t warmup_accesses = 200'000;   ///< discarded (state only)
  std::uint64_t measure_accesses = 400'000;  ///< counted
  MrcProfilerMode mode = MrcProfilerMode::kSinglePass;
  /// kExactReplay worker threads; 0 = $DICER_SWEEP_JOBS, then hardware
  /// concurrency. Output is byte-identical whatever the value.
  unsigned jobs = 0;
  /// kSampled sampling plan (ignored by the other modes).
  ShardsConfig sampling{.mode = ShardsMode::kFixedRate, .rate = 0.125};
};

/// Profile `make_stream` (a factory so each replay gets a fresh,
/// identically-seeded stream; the one-pass modes call it exactly once)
/// into an empirical MRC with one point per way count 1..geometry.ways.
EmpiricalMrc profile_mrc(
    const MrcProfilerConfig& config,
    const std::function<std::unique_ptr<AddressStream>()>& make_stream);

}  // namespace dicer::sim
