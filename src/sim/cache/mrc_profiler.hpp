// MRC profiler: measures an empirical miss-ratio curve by replaying an
// address stream through the trace-driven cache at every way count.
// Used by validation tests and the micro benches to cross-check the
// analytic hill-curve MRCs against true LRU behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/cache/address_stream.hpp"
#include "sim/cache/mrc.hpp"
#include "sim/cache/set_assoc_cache.hpp"

namespace dicer::sim {

struct MrcProfilerConfig {
  CacheGeometry geometry{};
  std::uint64_t warmup_accesses = 200'000;   ///< discarded per way count
  std::uint64_t measure_accesses = 400'000;  ///< counted per way count
};

/// Profile `make_stream` (a factory so each way count replays a fresh,
/// identically-seeded stream) into an empirical MRC with one point per way
/// count from 1..geometry.ways.
EmpiricalMrc profile_mrc(
    const MrcProfilerConfig& config,
    const std::function<std::unique_ptr<AddressStream>()>& make_stream);

}  // namespace dicer::sim
