#include "sim/cache/way_mask.hpp"

#include <bit>
#include <cstdio>
#include <stdexcept>

namespace dicer::sim {

WayMask WayMask::span(unsigned first, unsigned count) {
  if (count == 0) return WayMask(0);
  if (first + count > kMaxWays) {
    throw std::out_of_range("WayMask::span: ways " + std::to_string(first) +
                            "+" + std::to_string(count) + " exceed " +
                            std::to_string(kMaxWays));
  }
  const std::uint32_t ones =
      count >= 32 ? 0xffffffffu : ((1u << count) - 1u);
  return WayMask(ones << first);
}

WayMask WayMask::high(unsigned count, unsigned total_ways) {
  if (count > total_ways) {
    throw std::out_of_range("WayMask::high: count exceeds total ways");
  }
  return span(total_ways - count, count);
}

unsigned WayMask::count() const noexcept {
  return static_cast<unsigned>(std::popcount(bits_));
}

bool WayMask::contiguous() const noexcept {
  if (bits_ == 0) return false;
  const std::uint32_t shifted = bits_ >> std::countr_zero(bits_);
  return (shifted & (shifted + 1)) == 0;
}

bool WayMask::test(unsigned way) const noexcept {
  return way < kMaxWays && (bits_ >> way) & 1u;
}

unsigned WayMask::lowest() const noexcept {
  return static_cast<unsigned>(std::countr_zero(bits_));
}

unsigned WayMask::highest() const noexcept {
  return bits_ ? 31u - static_cast<unsigned>(std::countl_zero(bits_)) : 0u;
}

std::string WayMask::to_string() const {
  char buf[96];
  if (bits_ == 0) {
    return "0x0 (empty)";
  }
  if (contiguous()) {
    std::snprintf(buf, sizeof buf, "0x%x (ways %u-%u, %u ways)", bits_,
                  lowest(), highest(), count());
  } else {
    std::snprintf(buf, sizeof buf, "0x%x (%u ways, non-contiguous)", bits_,
                  count());
  }
  return buf;
}

}  // namespace dicer::sim
