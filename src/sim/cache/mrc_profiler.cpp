#include "sim/cache/mrc_profiler.hpp"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dicer::sim {

namespace {

/// One point of the exact oracle: replay a fresh stream against a
/// cache restricted to the `ways` lowest ways.
std::pair<double, double> replay_one_way(
    const MrcProfilerConfig& config, unsigned ways,
    const std::function<std::unique_ptr<AddressStream>()>& make_stream) {
  SetAssocCache cache(config.geometry, /*num_owners=*/1);
  const WayMask mask = WayMask::low(ways);
  auto stream = make_stream();
  for (std::uint64_t i = 0; i < config.warmup_accesses; ++i) {
    cache.access(stream->next(), 0, mask);
  }
  cache.reset_stats();
  for (std::uint64_t i = 0; i < config.measure_accesses; ++i) {
    cache.access(stream->next(), 0, mask);
  }
  const double bytes = static_cast<double>(config.geometry.way_bytes()) * ways;
  return {bytes, cache.stats(0).miss_ratio()};
}

EmpiricalMrc profile_exact(
    const MrcProfilerConfig& config,
    const std::function<std::unique_ptr<AddressStream>()>& make_stream) {
  trace::ScopedTimer timer("mrc.profile.exact");
  const unsigned ways = config.geometry.ways;
  std::vector<std::pair<double, double>> points(ways);
  // Each way count replays its own identically-seeded stream into its own
  // cache and writes its own slot, so the curve is byte-identical to the
  // serial loop at any worker count.
  const unsigned jobs = std::min(
      ways, util::ThreadPool::resolve_jobs(config.jobs, "DICER_SWEEP_JOBS"));
  auto eval = [&](std::size_t i) {
    points[i] =
        replay_one_way(config, static_cast<unsigned>(i) + 1, make_stream);
  };
  if (jobs <= 1 || ways <= 1) {
    for (std::size_t i = 0; i < ways; ++i) eval(i);
  } else {
    util::ThreadPool pool(jobs);
    util::parallel_for(pool, ways, eval);
  }
  auto& reg = trace::TimerRegistry::global();
  reg.add_count("profiler.runs", 1);
  reg.add_count("profiler.accesses",
                static_cast<std::uint64_t>(ways) *
                    (config.warmup_accesses + config.measure_accesses));
  reg.add_count("profiler.exact_replays", ways);
  return EmpiricalMrc(std::move(points));
}

EmpiricalMrc profile_single_pass(
    const MrcProfilerConfig& config,
    const std::function<std::unique_ptr<AddressStream>()>& make_stream) {
  const bool sampled = config.mode == MrcProfilerMode::kSampled;
  trace::ScopedTimer timer(sampled ? "mrc.profile.sampled"
                                   : "mrc.profile.single_pass");
  ReuseProfiler profiler(config.geometry,
                         sampled ? config.sampling : ShardsConfig{});
  auto stream = make_stream();
  for (std::uint64_t i = 0; i < config.warmup_accesses; ++i) {
    profiler.access(stream->next());
  }
  profiler.begin_measurement();
  for (std::uint64_t i = 0; i < config.measure_accesses; ++i) {
    profiler.access(stream->next());
  }
  const ReuseProfilerStats st = profiler.stats();
  auto& reg = trace::TimerRegistry::global();
  reg.add_count("profiler.runs", 1);
  reg.add_count("profiler.accesses", st.accesses);
  reg.add_count("profiler.sampled_accesses", st.sampled);
  reg.add_count("profiler.distinct_blocks", st.distinct_blocks);
  reg.add_count("profiler.sets", st.sets);
  reg.add_count("profiler.sampled_sets", st.sampled_sets);
  // Parts-per-million, summed over runs; divide by profiler.runs for the
  // mean rate.
  reg.add_count("profiler.sample_rate_ppm",
                static_cast<std::uint64_t>(st.sample_rate * 1e6 + 0.5));
  return profiler.mrc();
}

}  // namespace

EmpiricalMrc profile_mrc(
    const MrcProfilerConfig& config,
    const std::function<std::unique_ptr<AddressStream>()>& make_stream) {
  switch (config.mode) {
    case MrcProfilerMode::kExactReplay:
      return profile_exact(config, make_stream);
    case MrcProfilerMode::kSinglePass:
    case MrcProfilerMode::kSampled:
      break;
  }
  return profile_single_pass(config, make_stream);
}

}  // namespace dicer::sim
