#include "sim/cache/mrc_profiler.hpp"

#include <memory>
#include <utility>
#include <vector>

namespace dicer::sim {

EmpiricalMrc profile_mrc(
    const MrcProfilerConfig& config,
    const std::function<std::unique_ptr<AddressStream>()>& make_stream) {
  std::vector<std::pair<double, double>> points;
  points.reserve(config.geometry.ways);
  for (unsigned ways = 1; ways <= config.geometry.ways; ++ways) {
    SetAssocCache cache(config.geometry, /*num_owners=*/1);
    const WayMask mask = WayMask::low(ways);
    auto stream = make_stream();
    for (std::uint64_t i = 0; i < config.warmup_accesses; ++i) {
      cache.access(stream->next(), 0, mask);
    }
    cache.reset_stats();
    for (std::uint64_t i = 0; i < config.measure_accesses; ++i) {
      cache.access(stream->next(), 0, mask);
    }
    const double bytes =
        static_cast<double>(config.geometry.way_bytes()) * ways;
    points.emplace_back(bytes, cache.stats(0).miss_ratio());
  }
  return EmpiricalMrc(std::move(points));
}

}  // namespace dicer::sim
