// Trace-driven, way-partitioned, set-associative LLC simulator.
//
// This is the "ground truth" cache used to validate the analytic
// occupancy/MRC model and to exercise the CAT semantics the paper relies on:
//  - way-granular partitioning via per-CLOS capacity bitmasks,
//  - allocation changes leave resident lines untouched (paper §3.3: "the
//    contents of the LLC are not affected; they remain intact until they
//    are evicted by future LLC misses"),
//  - true LRU replacement restricted to the requester's allowed ways.
//
// It is deliberately simple (no inclusion games, no prefetchers): the paper's
// controller never observes anything finer than occupancy and miss counts.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cache/way_mask.hpp"

namespace dicer::sim {

/// Geometry of a set-associative cache.
struct CacheGeometry {
  std::uint64_t size_bytes = 25ull * 1024 * 1024;  ///< total capacity
  unsigned ways = 20;                              ///< associativity
  unsigned line_bytes = 64;                        ///< cache line size

  std::uint64_t num_sets() const noexcept {
    return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  }
  std::uint64_t way_bytes() const noexcept { return size_bytes / ways; }
};

/// Result of a single access.
struct AccessResult {
  bool hit = false;
  bool evicted = false;          ///< a valid line was evicted
  std::uint16_t victim_owner = 0;  ///< owner id of the evicted line (if any)
};

/// Per-owner counters. "Owner" is an RMID-like small integer tag attached to
/// every line so the simulator can report CMT-style occupancy.
struct OwnerStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions_suffered = 0;  ///< lines of this owner evicted
  std::uint64_t lines_resident = 0;      ///< current occupancy in lines

  double miss_ratio() const noexcept {
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  std::uint64_t occupancy_bytes(unsigned line_bytes) const noexcept {
    return lines_resident * line_bytes;
  }
};

/// The cache. Owners access with a WayMask constraining which ways they may
/// *allocate into*; hits are honoured in any way (CAT semantics: the mask
/// restricts fills, not lookups).
class SetAssocCache {
 public:
  /// Throws std::invalid_argument for degenerate geometry (0 sets, >kMaxWays).
  explicit SetAssocCache(const CacheGeometry& geometry,
                         std::uint16_t num_owners = 16);

  const CacheGeometry& geometry() const noexcept { return geom_; }

  /// Access `address` on behalf of `owner`, allowed to fill into
  /// `alloc_mask`. Empty masks are rejected (throws std::invalid_argument).
  AccessResult access(std::uint64_t address, std::uint16_t owner,
                      WayMask alloc_mask);

  /// CMT-style occupancy (bytes) currently held by `owner`.
  std::uint64_t occupancy_bytes(std::uint16_t owner) const;

  const OwnerStats& stats(std::uint16_t owner) const;
  void reset_stats();
  /// Invalidate all lines (does not clear counters).
  void flush();

  /// Total valid lines (for invariants in tests).
  std::uint64_t valid_lines() const noexcept { return valid_lines_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< access stamp; smaller == older
    std::uint16_t owner = 0;
    bool valid = false;
  };

  Line& line_at(std::uint64_t set, unsigned way) noexcept {
    return lines_[set * geom_.ways + way];
  }
  const Line& line_at(std::uint64_t set, unsigned way) const noexcept {
    return lines_[set * geom_.ways + way];
  }

  CacheGeometry geom_;
  std::uint64_t set_mask_ = 0;
  unsigned set_bits_ = 0;  ///< popcount(set_mask_), hoisted out of access()
  unsigned line_shift_ = 0;
  std::uint64_t stamp_ = 0;
  std::uint64_t valid_lines_ = 0;
  std::vector<Line> lines_;
  std::vector<OwnerStats> stats_;
};

}  // namespace dicer::sim
