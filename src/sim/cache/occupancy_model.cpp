#include "sim/cache/occupancy_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace dicer::sim {

std::vector<CacheRegion> decompose_regions(const std::vector<WayMask>& masks,
                                           unsigned total_ways,
                                           double way_bytes) {
  // Group ways by the exact set of apps eligible to fill them. Encode the
  // sharer set as a bitmask over apps (supports up to 64 apps; the machine
  // has at most 10 cores).
  if (masks.size() > 64) {
    throw std::invalid_argument("decompose_regions: more than 64 apps");
  }
  std::map<std::uint64_t, unsigned> ways_by_sharerset;
  for (unsigned w = 0; w < total_ways; ++w) {
    std::uint64_t sharers = 0;
    for (std::size_t a = 0; a < masks.size(); ++a) {
      if (masks[a].test(w)) sharers |= (1ull << a);
    }
    if (sharers) ++ways_by_sharerset[sharers];
  }

  std::vector<CacheRegion> regions;
  regions.reserve(ways_by_sharerset.size());
  for (const auto& [sharerset, ways] : ways_by_sharerset) {
    CacheRegion r;
    r.capacity_bytes = way_bytes * ways;
    for (std::size_t a = 0; a < masks.size(); ++a) {
      if (sharerset & (1ull << a)) r.sharers.push_back(a);
    }
    regions.push_back(std::move(r));
  }
  return regions;
}

namespace {

/// Occupancy of one app inside one region at characteristic time `t`,
/// with its demand scaled by `fraction` (its share of rates directed at
/// this region).
double occupancy_at(const CacheDemand& d, double fraction, double t) noexcept {
  double occ = d.stream_bytes_per_sec * fraction * t;
  for (const auto& c : d.reuse) {
    occ += std::min(c.rate_bytes_per_sec * fraction * t,
                    c.footprint_bytes * fraction);
  }
  return occ;
}

}  // namespace

std::vector<double> solve_occupancy(const std::vector<CacheRegion>& regions,
                                    std::size_t num_apps,
                                    const std::vector<CacheDemand>& demand,
                                    const OccupancySolverConfig& config) {
  if (demand.size() != num_apps) {
    throw std::invalid_argument("solve_occupancy: demand size mismatch");
  }
  std::vector<double> occ(num_apps, 0.0);

  // An app eligible for several regions splits its rates proportionally to
  // region capacity.
  std::vector<double> avail(num_apps, 0.0);
  for (const auto& r : regions) {
    for (std::size_t a : r.sharers) avail[a] += r.capacity_bytes;
  }

  for (const auto& r : regions) {
    if (r.sharers.empty() || r.capacity_bytes <= 0.0) continue;

    // Demand fractions for this region.
    std::vector<double> frac(r.sharers.size(), 0.0);
    for (std::size_t k = 0; k < r.sharers.size(); ++k) {
      const std::size_t a = r.sharers[k];
      frac[k] = avail[a] > 0.0 ? r.capacity_bytes / avail[a] : 0.0;
    }

    auto total_at = [&](double t) {
      double sum = 0.0;
      for (std::size_t k = 0; k < r.sharers.size(); ++k) {
        sum += occupancy_at(demand[r.sharers[k]], frac[k], t);
      }
      return sum;
    };

    const double t_max = config.max_characteristic_time_sec;
    double t_c;
    if (total_at(t_max) <= r.capacity_bytes) {
      // The region never fills: every sharer keeps its full (scaled)
      // footprint plus its entire streaming window.
      t_c = t_max;
    } else {
      double lo = 0.0, hi = t_max;
      for (unsigned i = 0; i < config.bisection_steps; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (total_at(mid) < r.capacity_bytes) lo = mid;
        else hi = mid;
      }
      t_c = 0.5 * (lo + hi);
    }

    for (std::size_t k = 0; k < r.sharers.size(); ++k) {
      occ[r.sharers[k]] += occupancy_at(demand[r.sharers[k]], frac[k], t_c);
    }
  }
  return occ;
}

}  // namespace dicer::sim
