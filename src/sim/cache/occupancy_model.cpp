#include "sim/cache/occupancy_model.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace dicer::sim {

std::vector<CacheRegion> decompose_regions(const std::vector<WayMask>& masks,
                                           unsigned total_ways,
                                           double way_bytes) {
  // Group ways by the exact set of apps eligible to fill them. Encode the
  // sharer set as a bitmask over apps (supports up to 64 apps; the machine
  // has at most 10 cores). Regions come back ordered by ascending sharer
  // set — callers (and the sweep's determinism invariant) rely on that.
  if (masks.size() > 64) {
    throw std::invalid_argument("decompose_regions: more than 64 apps");
  }
  if (total_ways > kMaxWays) {
    throw std::invalid_argument("decompose_regions: more ways than kMaxWays");
  }
  std::array<std::uint64_t, kMaxWays> sharers_of_way{};
  for (std::size_t a = 0; a < masks.size(); ++a) {
    std::uint32_t bits = masks[a].bits();
    while (bits != 0) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      if (w < total_ways) sharers_of_way[w] |= (1ull << a);
    }
  }

  // Sort the per-way sharer sets; each run of equal values is one region.
  std::array<std::uint64_t, kMaxWays> sets;
  unsigned n = 0;
  for (unsigned w = 0; w < total_ways; ++w) {
    if (sharers_of_way[w] != 0) sets[n++] = sharers_of_way[w];
  }
  std::sort(sets.begin(), sets.begin() + n);

  std::vector<CacheRegion> regions;
  for (unsigned i = 0; i < n;) {
    unsigned j = i;
    while (j < n && sets[j] == sets[i]) ++j;
    CacheRegion r;
    r.capacity_bytes = way_bytes * (j - i);
    for (std::size_t a = 0; a < masks.size(); ++a) {
      if (sets[i] & (1ull << a)) r.sharers.push_back(a);
    }
    regions.push_back(std::move(r));
    i = j;
  }
  return regions;
}

void solve_occupancy(const std::vector<CacheRegion>& regions,
                     const std::vector<CacheDemand>& demand,
                     const OccupancySolverConfig& config,
                     OccupancyScratch& scratch, std::vector<double>& occ) {
  const std::size_t num_apps = demand.size();
  occ.assign(num_apps, 0.0);

  if (!scratch.layout_valid || scratch.avail.size() != num_apps ||
      scratch.regions.size() != regions.size()) {
    // An app eligible for several regions splits its rates proportionally
    // to region capacity; both the per-app totals and the resulting
    // per-region fractions depend only on the layout, so they are computed
    // once per decomposition, not once per solve.
    scratch.avail.assign(num_apps, 0.0);
    for (const auto& r : regions) {
      for (std::size_t a : r.sharers) scratch.avail[a] += r.capacity_bytes;
    }
    scratch.regions.resize(regions.size());
    for (std::size_t ri = 0; ri < regions.size(); ++ri) {
      const auto& r = regions[ri];
      auto& rs = scratch.regions[ri];
      rs.memo_valid = false;
      rs.inputs.clear();
      rs.frac.assign(r.sharers.size(), 0.0);
      for (std::size_t k = 0; k < r.sharers.size(); ++k) {
        const std::size_t a = r.sharers[k];
        rs.frac[k] =
            scratch.avail[a] > 0.0 ? r.capacity_bytes / scratch.avail[a] : 0.0;
      }
    }
    scratch.layout_valid = true;
  }

  for (std::size_t ri = 0; ri < regions.size(); ++ri) {
    const auto& r = regions[ri];
    if (r.sharers.empty() || r.capacity_bytes <= 0.0) continue;
    auto& rs = scratch.regions[ri];

    // Flatten this region's inputs (per sharer: stream rate, then each
    // reuse component) to detect a bit-identical re-solve.
    auto& cur = scratch.flat;
    cur.clear();
    for (std::size_t a : r.sharers) {
      const auto& d = demand[a];
      cur.push_back(d.stream_bytes_per_sec);
      for (const auto& c : d.reuse) {
        cur.push_back(c.rate_bytes_per_sec);
        cur.push_back(c.footprint_bytes);
      }
    }

    if (rs.memo_valid && rs.inputs == cur) {
      // Warm start: identical inputs reach the identical fixed point, so
      // the stored solution is reused verbatim and the bisection skipped.
      for (std::size_t k = 0; k < r.sharers.size(); ++k) {
        occ[r.sharers[k]] += rs.contrib[k];
      }
      continue;
    }
    rs.memo_valid = false;
    rs.inputs = cur;
    const std::size_t num_sharers = r.sharers.size();
    // Total occupancy the region would hold at characteristic time t,
    // reading straight from the nested demand vectors. `*` is
    // left-associative, so stream*frac*t groups as (stream*frac)*t —
    // bit-identical to the hoisted form used by the bisection below.
    auto total_at_inline = [&](double t) {
      double sum = 0.0;
      for (std::size_t k = 0; k < num_sharers; ++k) {
        const auto& d = demand[r.sharers[k]];
        const double f = rs.frac[k];
        double app_occ = d.stream_bytes_per_sec * f * t;
        for (const auto& c : d.reuse) {
          app_occ +=
              std::min(c.rate_bytes_per_sec * f * t, c.footprint_bytes * f);
        }
        sum += app_occ;
      }
      return sum;
    };
    double t_c;
    const double t_max = config.max_characteristic_time_sec;
    if (total_at_inline(t_max) <= r.capacity_bytes) {
      // The region never fills: every sharer keeps its full (scaled)
      // footprint plus its entire streaming window. One evaluation, no
      // bisection — and no point paying for the hoisted arrays below.
      t_c = t_max;
    } else {
      // Hoist the frac products out of the t-sweep: the bisection is a
      // latency chain of ~50 sequential evaluations, and each used to
      // re-derive rate*frac / footprint*frac from the nested demand
      // vectors. The raw inputs are already saved in rs.inputs, so the
      // flattening buffer is scaled in place — no extra allocation. Same
      // operand pairs, same rounding, same summation order as the inline
      // evaluation — byte-identical t_c and contributions.
      auto& h = cur;
      auto& he = scratch.flat_end;
      std::size_t s = 0;
      for (std::size_t k = 0; k < num_sharers; ++k) {
        const double f = rs.frac[k];
        h[s++] *= f;
        const std::size_t comps = demand[r.sharers[k]].reuse.size();
        for (std::size_t c = 0; c < comps; ++c) {
          h[s++] *= f;
          h[s++] *= f;
        }
        he[k] = s;
      }
      auto total_at = [&](double t) {
        double sum = 0.0;
        std::size_t j = 0;
        for (std::size_t k = 0; k < num_sharers; ++k) {
          double app_occ = h[j++] * t;
          const std::size_t end = he[k];
          for (; j < end; j += 2) {
            app_occ += std::min(h[j] * t, h[j + 1]);
          }
          sum += app_occ;
        }
        return sum;
      };
      double lo = 0.0, hi = t_max;
      for (unsigned i = 0; i < config.bisection_steps; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (total_at(mid) < r.capacity_bytes) lo = mid;
        else hi = mid;
      }
      t_c = 0.5 * (lo + hi);
    }
    rs.t_c = t_c;
    rs.memo_valid = true;

    rs.contrib.resize(num_sharers);
    for (std::size_t k = 0; k < num_sharers; ++k) {
      const auto& d = demand[r.sharers[k]];
      const double f = rs.frac[k];
      double app_occ = d.stream_bytes_per_sec * f * t_c;
      for (const auto& c : d.reuse) {
        app_occ +=
            std::min(c.rate_bytes_per_sec * f * t_c, c.footprint_bytes * f);
      }
      rs.contrib[k] = app_occ;
      occ[r.sharers[k]] += app_occ;
    }
  }
}

std::vector<double> solve_occupancy(const std::vector<CacheRegion>& regions,
                                    std::size_t num_apps,
                                    const std::vector<CacheDemand>& demand,
                                    const OccupancySolverConfig& config) {
  if (demand.size() != num_apps) {
    throw std::invalid_argument("solve_occupancy: demand size mismatch");
  }
  OccupancyScratch scratch;
  std::vector<double> occ;
  solve_occupancy(regions, demand, config, scratch, occ);
  return occ;
}

}  // namespace dicer::sim
