// Miss-ratio curves (MRCs).
//
// The analytic model drives each application's LLC behaviour through an MRC
// m(x): miss ratio as a function of the effective cache space x (bytes) the
// application holds. We model an MRC as a floor (compulsory / streaming
// misses) plus a sum of "working set" components, each a coverage curve:
// holding fraction c = min(x / ws_j, 1) of working set j converts that
// component's misses into hits as
//
//   m(x) = floor + sum_j weight_j * (1 - c)^shape_j
//
// shape = 1 models uniform reuse over the working set (hit rate equals the
// resident fraction — the classic random-reuse result); shape > 1 models
// skewed reuse (a hot subset, so the first bytes of residency buy the most
// hits); shape < 1 models scan-like reuse where only near-total residency
// helps. Partial residency MUST give partial hits: an app holding 60 % of
// its set hits well over half the time under real LRU, and the paper's
// classification physics (CT rescuing partially-squeezed HPs by only a
// little) depends on that.
//
// Properties (enforced and unit-tested): m is monotonically non-increasing,
// m(0) = floor + sum weight_j <= 1, m(inf) = floor >= 0.
//
// The same header provides an empirical, table-based MRC (built by the
// trace-driven cache simulator) so tests can cross-validate the analytic
// curves against true LRU behaviour.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dicer::sim {

/// One working-set component of an analytic MRC.
struct MrcComponent {
  double weight = 0.0;    ///< miss-ratio mass released once covered
  double ws_bytes = 0.0;  ///< working-set size (bytes)
  double shape = 1.5;     ///< reuse skew; 1 = uniform, > 1 = hot-subset
};

/// Analytic miss-ratio curve (sum of hill components over a floor).
class MissRatioCurve {
 public:
  MissRatioCurve() = default;
  /// Throws std::invalid_argument unless 0 <= floor, weights >= 0,
  /// floor + sum(weights) <= 1, ws_bytes > 0 and steepness > 0.
  MissRatioCurve(double floor, std::vector<MrcComponent> components);

  /// Miss ratio for an effective allocation of `bytes` (>= 0).
  double at(double bytes) const noexcept;

  /// Asymptotic miss ratio with unbounded cache.
  double floor() const noexcept { return floor_; }
  /// Miss ratio with zero cache space.
  double ceiling() const noexcept;

  const std::vector<MrcComponent>& components() const noexcept {
    return components_;
  }

  /// Smallest allocation (bytes) whose miss ratio is <= target. Binary
  /// search over [0, limit]; returns limit if unreachable.
  double bytes_for_miss_ratio(double target, double limit_bytes) const;

  /// Total re-usable footprint: the sum of component working sets. The
  /// occupancy model caps an app's re-used residency at this.
  double footprint_bytes() const noexcept;

  /// Fraction of LLC traffic that is compulsory/streaming (never re-used):
  /// floor / ceiling. 0 when the curve is all-reuse, ~1 for pure streams.
  double stream_fraction() const noexcept;

  /// Convenience constructors for the three behaviour classes used by the
  /// application catalog (see sim/core/catalog.cpp).
  static MissRatioCurve streaming(double intensity_floor);
  static MissRatioCurve single_knee(double miss_mass, double ws_bytes,
                                    double floor = 0.005,
                                    double shape = 1.5);
  static MissRatioCurve double_knee(double mass1, double ws1, double mass2,
                                    double ws2, double floor = 0.005);

 private:
  double floor_ = 0.0;
  std::vector<MrcComponent> components_;
};

/// Empirical MRC: a piecewise-linear table of (bytes, miss-ratio) samples,
/// typically produced by profiling an address stream through the
/// trace-driven LRU simulator at each way count.
class EmpiricalMrc {
 public:
  EmpiricalMrc() = default;
  /// Points must be sorted by bytes ascending; miss ratios in [0, 1].
  explicit EmpiricalMrc(std::vector<std::pair<double, double>> points);

  bool empty() const noexcept { return points_.empty(); }
  std::size_t size() const noexcept { return points_.size(); }

  /// Linear interpolation, clamped to the end points.
  double at(double bytes) const noexcept;

  /// Largest upward violation of monotonicity across the table (0 for a
  /// perfectly non-increasing curve). Used by validation tests.
  double monotonicity_violation() const noexcept;

  const std::vector<std::pair<double, double>>& points() const noexcept {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace dicer::sim
