#include "sim/cache/address_stream.hpp"

#include <stdexcept>

namespace dicer::sim {

namespace {
constexpr std::uint64_t kLine = 64;
}

WorkingSetStream::WorkingSetStream(std::uint64_t ws_bytes, std::uint64_t base,
                                   util::Xoshiro256 rng)
    : ws_bytes_(ws_bytes), base_(base), rng_(rng) {
  if (ws_bytes_ < kLine) {
    throw std::invalid_argument("WorkingSetStream: working set < one line");
  }
}

std::uint64_t WorkingSetStream::next() {
  const std::uint64_t lines = ws_bytes_ / kLine;
  return base_ + rng_.below(lines) * kLine;
}

StreamingStream::StreamingStream(std::uint64_t region_bytes,
                                 std::uint64_t stride, std::uint64_t base)
    : region_bytes_(region_bytes), stride_(stride), base_(base) {
  if (region_bytes_ < stride_ || stride_ == 0) {
    throw std::invalid_argument("StreamingStream: bad region/stride");
  }
}

std::uint64_t StreamingStream::next() {
  const std::uint64_t addr = base_ + pos_;
  pos_ += stride_;
  if (pos_ >= region_bytes_) pos_ = 0;
  return addr;
}

BimodalStream::BimodalStream(std::uint64_t hot_bytes, std::uint64_t cold_bytes,
                             double hot_fraction, std::uint64_t base,
                             util::Xoshiro256 rng)
    : hot_(hot_bytes, base, rng.split()),
      cold_(cold_bytes, base + (1ull << 40), rng.split()),
      hot_fraction_(hot_fraction),
      rng_(rng) {}

std::uint64_t BimodalStream::next() {
  return rng_.bernoulli(hot_fraction_) ? hot_.next() : cold_.next();
}

MixedStream::MixedStream(std::uint64_t ws_bytes, double reuse_fraction,
                         std::uint64_t base, util::Xoshiro256 rng)
    : reuse_(ws_bytes, base, rng.split()),
      stream_(1ull << 32, kLine, base + (1ull << 41)),
      reuse_fraction_(reuse_fraction),
      rng_(rng) {}

std::uint64_t MixedStream::next() {
  return rng_.bernoulli(reuse_fraction_) ? reuse_.next() : stream_.next();
}

}  // namespace dicer::sim
