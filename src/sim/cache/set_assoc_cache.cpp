#include "sim/cache/set_assoc_cache.hpp"

#include <bit>
#include <stdexcept>

namespace dicer::sim {

SetAssocCache::SetAssocCache(const CacheGeometry& geometry,
                             std::uint16_t num_owners)
    : geom_(geometry) {
  if (geom_.ways == 0 || geom_.ways > kMaxWays) {
    throw std::invalid_argument("SetAssocCache: unsupported way count");
  }
  if (geom_.line_bytes == 0 || !std::has_single_bit(geom_.line_bytes)) {
    throw std::invalid_argument("SetAssocCache: line size must be 2^k > 0");
  }
  const std::uint64_t sets = geom_.num_sets();
  if (sets == 0 || !std::has_single_bit(sets)) {
    throw std::invalid_argument(
        "SetAssocCache: set count must be a power of two > 0");
  }
  set_mask_ = sets - 1;
  set_bits_ = static_cast<unsigned>(std::popcount(set_mask_));
  line_shift_ = static_cast<unsigned>(std::countr_zero(geom_.line_bytes));
  lines_.resize(sets * geom_.ways);
  stats_.resize(num_owners);
}

AccessResult SetAssocCache::access(std::uint64_t address, std::uint16_t owner,
                                   WayMask alloc_mask) {
  if (alloc_mask.empty()) {
    throw std::invalid_argument("SetAssocCache::access: empty alloc mask");
  }
  if (owner >= stats_.size()) {
    throw std::out_of_range("SetAssocCache::access: owner id out of range");
  }
  const std::uint64_t block = address >> line_shift_;
  const std::uint64_t set = block & set_mask_;
  const std::uint64_t tag = block >> set_bits_;

  auto& st = stats_[owner];
  ++st.accesses;
  ++stamp_;

  // One combined pass over the set: the lookup spans *all* ways (CAT
  // restricts fills, not hits) while the victim candidate is tracked among
  // the allowed ways as we go. An invalid allowed way wins outright (and
  // freezes the victim, matching the old scan's early break); otherwise the
  // first way with the oldest stamp does.
  unsigned victim = kMaxWays;
  std::uint64_t oldest = ~0ull;
  bool victim_invalid = false;
  for (unsigned w = 0; w < geom_.ways; ++w) {
    Line& ln = line_at(set, w);
    if (ln.valid && ln.tag == tag) {
      ln.lru = stamp_;
      // A hit migrates ownership of the line for occupancy accounting,
      // mirroring CMT's RMID-tagging of the last toucher.
      if (ln.owner != owner) {
        --stats_[ln.owner].lines_resident;
        ++st.lines_resident;
        ln.owner = owner;
      }
      return {.hit = true, .evicted = false, .victim_owner = 0};
    }
    if (victim_invalid || !alloc_mask.test(w)) continue;
    if (!ln.valid) {
      victim = w;
      victim_invalid = true;
    } else if (ln.lru < oldest) {
      oldest = ln.lru;
      victim = w;
    }
  }

  ++st.misses;
  if (victim == kMaxWays) {
    // alloc_mask had no bit below geom_.ways.
    throw std::invalid_argument(
        "SetAssocCache::access: alloc mask selects no way of this cache");
  }

  Line& ln = line_at(set, victim);
  AccessResult res{.hit = false, .evicted = false, .victim_owner = 0};
  if (ln.valid) {
    res.evicted = true;
    res.victim_owner = ln.owner;
    --stats_[ln.owner].lines_resident;
    ++stats_[ln.owner].evictions_suffered;
  } else {
    ++valid_lines_;
  }
  ln.valid = true;
  ln.tag = tag;
  ln.lru = stamp_;
  ln.owner = owner;
  ++st.lines_resident;
  return res;
}

std::uint64_t SetAssocCache::occupancy_bytes(std::uint16_t owner) const {
  return stats(owner).occupancy_bytes(geom_.line_bytes);
}

const OwnerStats& SetAssocCache::stats(std::uint16_t owner) const {
  if (owner >= stats_.size()) {
    throw std::out_of_range("SetAssocCache::stats: owner id out of range");
  }
  return stats_[owner];
}

void SetAssocCache::reset_stats() {
  for (auto& st : stats_) {
    const std::uint64_t resident = st.lines_resident;
    st = OwnerStats{};
    st.lines_resident = resident;  // occupancy is state, not a counter
  }
}

void SetAssocCache::flush() {
  for (auto& ln : lines_) ln.valid = false;
  for (auto& st : stats_) st.lines_resident = 0;
  valid_lines_ = 0;
}

}  // namespace dicer::sim
