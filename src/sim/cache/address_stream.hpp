// Synthetic address streams for exercising the trace-driven cache.
//
// The reproduction uses the analytic MRC model for whole-figure experiments;
// these streams exist to *validate* that model: a working-set stream of W
// bytes should show the same knee at W that the hill-curve MRC encodes, and
// a streaming pattern should miss regardless of allocation. They also feed
// the MRC profiler (mrc_profiler.hpp).
#pragma once

#include <cstdint>
#include <memory>

#include "util/rng.hpp"

namespace dicer::sim {

/// Interface: an infinite stream of byte addresses.
class AddressStream {
 public:
  virtual ~AddressStream() = default;
  virtual std::uint64_t next() = 0;
};

/// Uniform random accesses over a fixed working set — the classic model for
/// an app whose reuse fits in `ws_bytes`.
class WorkingSetStream final : public AddressStream {
 public:
  WorkingSetStream(std::uint64_t ws_bytes, std::uint64_t base,
                   util::Xoshiro256 rng);
  std::uint64_t next() override;

 private:
  std::uint64_t ws_bytes_;
  std::uint64_t base_;
  util::Xoshiro256 rng_;
};

/// Sequential scan over a region far larger than any LLC: every access to a
/// new line misses (streaming / no temporal reuse).
class StreamingStream final : public AddressStream {
 public:
  StreamingStream(std::uint64_t region_bytes, std::uint64_t stride,
                  std::uint64_t base);
  std::uint64_t next() override;

 private:
  std::uint64_t region_bytes_;
  std::uint64_t stride_;
  std::uint64_t base_;
  std::uint64_t pos_ = 0;
};

/// Two working sets touched with complementary probabilities — produces a
/// double-knee MRC.
class BimodalStream final : public AddressStream {
 public:
  BimodalStream(std::uint64_t hot_bytes, std::uint64_t cold_bytes,
                double hot_fraction, std::uint64_t base,
                util::Xoshiro256 rng);
  std::uint64_t next() override;

 private:
  WorkingSetStream hot_;
  WorkingSetStream cold_;
  double hot_fraction_;
  util::Xoshiro256 rng_;
};

/// Mixes a working-set component with a streaming component, the generic
/// shape for SPEC-like apps (some reuse + some traffic that never fits).
class MixedStream final : public AddressStream {
 public:
  MixedStream(std::uint64_t ws_bytes, double reuse_fraction,
              std::uint64_t base, util::Xoshiro256 rng);
  std::uint64_t next() override;

 private:
  WorkingSetStream reuse_;
  StreamingStream stream_;
  double reuse_fraction_;
  util::Xoshiro256 rng_;
};

}  // namespace dicer::sim
