// Way bitmask arithmetic for CAT-style LLC partitioning.
//
// Intel CAT expresses an LLC allocation as a *capacity bitmask* (CBM) over
// the cache ways; hardware requires the set bits to be contiguous and
// non-empty. DICER only ever uses contiguous masks (Section 3.3), so this
// type enforces the same constraints the real hardware does.
#pragma once

#include <cstdint>
#include <string>

namespace dicer::sim {

/// Maximum number of LLC ways any supported machine can have.
inline constexpr unsigned kMaxWays = 32;

/// A CAT capacity bitmask over LLC ways. Bit i set == way i usable.
class WayMask {
 public:
  constexpr WayMask() noexcept = default;
  explicit constexpr WayMask(std::uint32_t bits) noexcept : bits_(bits) {}

  /// Mask of `count` ways starting at `first` (e.g. span(1, 19) = ways 1..19).
  static WayMask span(unsigned first, unsigned count);
  /// Mask of the `count` lowest ways.
  static WayMask low(unsigned count) { return span(0, count); }
  /// Mask of the `count` highest ways of an n-way cache.
  static WayMask high(unsigned count, unsigned total_ways);
  /// Full mask for an n-way cache.
  static WayMask full(unsigned total_ways) { return span(0, total_ways); }

  constexpr std::uint32_t bits() const noexcept { return bits_; }
  constexpr bool empty() const noexcept { return bits_ == 0; }
  unsigned count() const noexcept;             ///< number of ways set
  bool contiguous() const noexcept;            ///< CAT hardware requirement
  bool test(unsigned way) const noexcept;      ///< is way i usable
  unsigned lowest() const noexcept;            ///< index of lowest set way
  unsigned highest() const noexcept;           ///< index of highest set way

  constexpr WayMask operator&(WayMask o) const noexcept {
    return WayMask(bits_ & o.bits_);
  }
  constexpr WayMask operator|(WayMask o) const noexcept {
    return WayMask(bits_ | o.bits_);
  }
  constexpr WayMask operator~() const noexcept { return WayMask(~bits_); }
  constexpr bool operator==(const WayMask&) const noexcept = default;

  bool overlaps(WayMask o) const noexcept { return (bits_ & o.bits_) != 0; }
  bool contains(WayMask o) const noexcept {
    return (bits_ & o.bits_) == o.bits_;
  }

  /// "0x7fffe (ways 1-19, 19 ways)" — for logs and error messages.
  std::string to_string() const;

 private:
  std::uint32_t bits_ = 0;
};

}  // namespace dicer::sim
