// Single-pass reuse-distance MRC profiling.
//
// profile_mrc's exact oracle replays the whole address stream once per way
// count (20 warmup+measure replays on the paper geometry). This header
// turns that into ONE pass:
//
//  * `ReuseProfiler` — a set-aware Mattson stack profiler. Every cache set
//    keeps its blocks in LRU order; an access at per-set stack distance d
//    hits a w-way partition iff d < w (the LRU inclusion property, applied
//    per set exactly as `SetAssocCache` evicts). One pass therefore yields
//    the miss count of *every* way count simultaneously — and, unsampled,
//    the resulting EmpiricalMrc is byte-identical to the exact per-way
//    replay oracle. Distances saturate at the associativity (deeper is a
//    miss at every way count), so the stack walk is O(min(d, ways)).
//
//  * SHARDS-style spatial hash sampling over SETS (fixed-rate and
//    fixed-size adaptive): a set is profiled iff hash(set) < threshold, so
//    the sample is chosen spatially, never by behaviour. The fixed-size
//    mode keeps the tracked-block budget by evicting the sampled set with
//    the largest hash and lowering the threshold to it (the SHARDS
//    eviction rule, with sets as the sampling unit); the estimate then
//    uses only sets sampled at the final rate. The standard sampled-count
//    correction (SHARDS-adj) shifts the difference between expected and
//    actual sampled references into the distance-0 bucket.
//
//  * `FullyAssociativeProfiler` — the textbook Mattson algorithm (hash map
//    of last-access times + a Fenwick order-statistic tree over time,
//    O(N log M)) with classic per-block SHARDS sampling. Set-blind: its
//    curve ignores conflict misses, which is exactly why the per-way MRC
//    above profiles per set — near the knee a set-associative cache misses
//    substantially more than the fully-associative stack predicts. Kept as
//    the canonical reference and for arbitrary-capacity curves.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/cache/mrc.hpp"
#include "sim/cache/set_assoc_cache.hpp"

namespace dicer::sim {

/// Spatial hash sampling plan (SHARDS).
enum class ShardsMode {
  kOff,        ///< profile everything (exact)
  kFixedRate,  ///< profile a fixed hash fraction of the space
  kFixedSize,  ///< adapt the rate to a tracked-block budget
};

struct ShardsConfig {
  ShardsMode mode = ShardsMode::kOff;
  /// kFixedRate: fraction of sets (ReuseProfiler) / blocks
  /// (FullyAssociativeProfiler) profiled. Must be in (0, 1].
  double rate = 0.125;
  /// kFixedSize: adaptive budget on tracked blocks (stack entries / map
  /// size). Must be >= 1.
  std::uint64_t max_tracked_blocks = 32 * 1024;
  /// Seed of the spatial hash. Same seed -> same sample, deterministically.
  std::uint64_t seed = 0x5348415244ULL;
  /// Apply the SHARDS-adj sampled-count correction to the estimate.
  bool count_correction = true;
};

struct ReuseProfilerStats {
  std::uint64_t accesses = 0;        ///< stream accesses consumed in total
  std::uint64_t measured = 0;        ///< accesses inside the measure window
  std::uint64_t sampled = 0;         ///< measured accesses in surviving sampled sets
  std::uint64_t distinct_blocks = 0; ///< tracked blocks (stack entries) at the end
  std::uint64_t sets = 0;            ///< total sets of the geometry
  std::uint64_t sampled_sets = 0;    ///< sets eligible at the final threshold
  std::uint64_t evicted_sets = 0;    ///< kFixedSize: sets dropped for the budget
  double sample_rate = 1.0;          ///< sampled_sets / sets
  double correction = 0.0;           ///< count correction applied to bucket 0
};

/// Set-aware single-pass reuse-distance profiler (see file comment).
class ReuseProfiler {
 public:
  /// Throws std::invalid_argument for geometry `SetAssocCache` rejects,
  /// and for a sampling rate outside (0, 1] or a zero block budget.
  explicit ReuseProfiler(const CacheGeometry& geometry,
                         const ShardsConfig& sampling = {});

  /// Feed one byte address.
  void access(std::uint64_t address);

  /// End the warmup window: accesses so far only warmed the stacks; from
  /// now on distances are recorded.
  void begin_measurement() noexcept { measuring_ = true; }

  /// Empirical MRC with one point per way count 1..geometry.ways.
  /// Unsampled, byte-identical to the exact per-way replay oracle.
  EmpiricalMrc mrc() const;

  /// Sampled-count-corrected distance histogram: bucket d < ways holds
  /// measured accesses at per-set stack distance d; bucket [ways] holds
  /// deeper-or-cold accesses (a miss at every way count).
  std::vector<double> histogram() const;

  ReuseProfilerStats stats() const;

  const CacheGeometry& geometry() const noexcept { return geom_; }

 private:
  static constexpr std::int32_t kUntouched = -1;  ///< sampled, no slot yet
  static constexpr std::int32_t kUnsampled = -2;  ///< hash >= threshold
  static constexpr std::int32_t kEvicted = -3;    ///< dropped for the budget

  bool eligible(std::uint64_t set) const;
  std::int32_t touch_set(std::uint64_t set);
  void evict_largest_hash();
  /// Raw (uncorrected) histogram plus its total, from surviving sets.
  void raw_histogram(std::vector<std::uint64_t>& hist,
                     std::uint64_t& total) const;
  double final_rate() const;

  CacheGeometry geom_;
  ShardsConfig sampling_;
  std::uint64_t set_mask_ = 0;
  unsigned set_bits_ = 0;
  unsigned line_shift_ = 0;
  unsigned ways_ = 0;
  bool measuring_ = false;

  std::uint64_t threshold_ = ~0ull;   ///< sampled iff hash(set) < threshold
  std::int64_t forced_set_ = -1;      ///< sampled regardless (rate floor)
  std::uint64_t accesses_ = 0;
  std::uint64_t measured_ = 0;
  std::uint64_t tracked_blocks_ = 0;
  std::uint64_t evicted_sets_ = 0;

  std::vector<std::uint64_t> set_hash_;   ///< per set, precomputed
  std::vector<std::int32_t> set_slot_;    ///< per set: slot or a k* marker
  std::vector<std::uint64_t> stack_;      ///< slot-major, `ways_` blocks each
  std::vector<std::uint8_t> depth_;       ///< per slot
  std::vector<std::uint64_t> hist_;       ///< per slot, ways_+1 buckets
  std::vector<std::uint64_t> slot_set_;   ///< slot -> owning set
  std::vector<std::int32_t> free_slots_;
  /// kFixedSize: touched sampled sets by descending hash.
  std::priority_queue<std::pair<std::uint64_t, std::uint64_t>> by_hash_;
};

/// The textbook Mattson stack algorithm: a hash map of last-access times
/// and a Fenwick order-statistic tree over (sampled) time, giving exact
/// fully-associative LRU stack distances in O(log M) per access, with
/// classic per-block SHARDS sampling on top. `capacities_bytes` fixes the
/// evaluation grid of the resulting curve (ascending).
class FullyAssociativeProfiler {
 public:
  /// Throws std::invalid_argument for a non-power-of-two line size, an
  /// empty/unsorted capacity grid, or a bad sampling config.
  FullyAssociativeProfiler(unsigned line_bytes,
                           std::vector<double> capacities_bytes,
                           const ShardsConfig& sampling = {});

  void access(std::uint64_t address);
  void begin_measurement() noexcept { measuring_ = true; }

  /// Miss-ratio point per capacity in the evaluation grid.
  EmpiricalMrc mrc() const;

  std::uint64_t accesses() const noexcept { return accesses_; }
  std::uint64_t sampled() const noexcept { return sampled_; }
  std::uint64_t distinct_blocks() const noexcept {
    return static_cast<std::uint64_t>(last_time_.size());
  }
  double sample_rate() const noexcept;

 private:
  void fenwick_add(std::size_t pos, std::int64_t delta);
  std::uint64_t fenwick_prefix(std::size_t pos) const;
  void grow_tree();
  void evict_largest_hash();
  void record(double distance_blocks, double weight);

  unsigned line_shift_ = 0;
  std::vector<double> capacities_bytes_;
  std::vector<double> capacities_blocks_;
  ShardsConfig sampling_;
  bool measuring_ = false;

  std::uint64_t threshold_ = ~0ull;
  std::uint64_t accesses_ = 0;
  std::uint64_t measured_ = 0;
  std::uint64_t sampled_ = 0;  ///< measured accesses that were sampled

  std::uint64_t clock_ = 0;  ///< one tick per sampled access
  std::unordered_map<std::uint64_t, std::uint64_t> last_time_;
  std::vector<std::uint64_t> tree_;   ///< Fenwick over sampled time
  std::vector<std::uint8_t> marker_;  ///< 1 iff some block's last access
  std::vector<double> bucket_;       ///< per capacity, + deep bucket at end
  double cold_weight_ = 0.0;
  double total_weight_ = 0.0;
  std::priority_queue<std::pair<std::uint64_t, std::uint64_t>> by_hash_;
};

}  // namespace dicer::sim
