#include "sim/cache/reuse_profiler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace dicer::sim {

namespace {

constexpr double kTwoPow64 = 18446744073709551616.0;

/// SplitMix64 finalizer: the spatial hash behind SHARDS sampling. The
/// sample is a pure function of (seed, set/block id) — never of access
/// order — which is what makes hash sampling unbiased for reuse.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t spatial_hash(std::uint64_t seed, std::uint64_t id) {
  return mix64(seed ^ mix64(id));
}

std::uint64_t rate_threshold(double rate) {
  const double scaled = rate * kTwoPow64;
  return scaled >= kTwoPow64 - 1.0 ? ~0ull
                                   : static_cast<std::uint64_t>(scaled);
}

void validate_sampling(const ShardsConfig& sampling) {
  if (sampling.mode == ShardsMode::kFixedRate &&
      !(sampling.rate > 0.0 && sampling.rate <= 1.0)) {
    throw std::invalid_argument("ShardsConfig: rate must be in (0, 1]");
  }
  if (sampling.mode == ShardsMode::kFixedSize &&
      sampling.max_tracked_blocks == 0) {
    throw std::invalid_argument(
        "ShardsConfig: max_tracked_blocks must be >= 1");
  }
}

}  // namespace

ReuseProfiler::ReuseProfiler(const CacheGeometry& geometry,
                             const ShardsConfig& sampling)
    : geom_(geometry), sampling_(sampling) {
  if (geom_.ways == 0 || geom_.ways > kMaxWays) {
    throw std::invalid_argument("ReuseProfiler: unsupported way count");
  }
  if (geom_.line_bytes == 0 || !std::has_single_bit(geom_.line_bytes)) {
    throw std::invalid_argument("ReuseProfiler: line size must be 2^k > 0");
  }
  const std::uint64_t sets = geom_.num_sets();
  if (sets == 0 || !std::has_single_bit(sets)) {
    throw std::invalid_argument(
        "ReuseProfiler: set count must be a power of two > 0");
  }
  validate_sampling(sampling_);
  set_mask_ = sets - 1;
  set_bits_ = static_cast<unsigned>(std::popcount(set_mask_));
  line_shift_ = static_cast<unsigned>(std::countr_zero(geom_.line_bytes));
  ways_ = geom_.ways;

  set_hash_.resize(sets);
  for (std::uint64_t s = 0; s < sets; ++s) {
    set_hash_[s] = spatial_hash(sampling_.seed, s);
  }
  set_slot_.assign(sets, kUntouched);

  switch (sampling_.mode) {
    case ShardsMode::kOff:
      threshold_ = ~0ull;  // unused: eligible() short-circuits on kOff
      break;
    case ShardsMode::kFixedRate: {
      threshold_ = rate_threshold(sampling_.rate);
      // Guarantee at least one sampled set, however small the rate: force
      // the set with the smallest hash into the sample.
      std::uint64_t min_hash = ~0ull;
      std::uint64_t argmin = 0;
      bool any = false;
      for (std::uint64_t s = 0; s < sets; ++s) {
        if (set_hash_[s] < threshold_) {
          any = true;
          break;
        }
        if (set_hash_[s] < min_hash) {
          min_hash = set_hash_[s];
          argmin = s;
        }
      }
      if (!any) forced_set_ = static_cast<std::int64_t>(argmin);
      break;
    }
    case ShardsMode::kFixedSize:
      threshold_ = ~0ull;  // start exact; evictions lower it adaptively
      break;
  }
}

bool ReuseProfiler::eligible(std::uint64_t set) const {
  if (sampling_.mode == ShardsMode::kOff) return true;
  return set_hash_[set] < threshold_ ||
         static_cast<std::int64_t>(set) == forced_set_;
}

std::int32_t ReuseProfiler::touch_set(std::uint64_t set) {
  if (!eligible(set)) {
    // Threshold only ever drops, so this verdict can be cached for good.
    set_slot_[set] = kUnsampled;
    return kUnsampled;
  }
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    depth_[static_cast<std::size_t>(slot)] = 0;
    std::fill_n(hist_.begin() + static_cast<std::size_t>(slot) * (ways_ + 1),
                ways_ + 1, std::uint64_t{0});
  } else {
    slot = static_cast<std::int32_t>(depth_.size());
    depth_.push_back(0);
    stack_.resize(stack_.size() + ways_);
    hist_.resize(hist_.size() + ways_ + 1, 0);
    slot_set_.push_back(set);
  }
  slot_set_[static_cast<std::size_t>(slot)] = set;
  set_slot_[set] = slot;
  if (sampling_.mode == ShardsMode::kFixedSize) {
    by_hash_.emplace(set_hash_[set], set);
  }
  return slot;
}

void ReuseProfiler::evict_largest_hash() {
  const auto [hash, set] = by_hash_.top();
  by_hash_.pop();
  // SHARDS eviction rule: the evicted member's hash becomes the new
  // threshold, so every set that would hash at or above it is out of the
  // sample from now on — the survivors are exactly a lower-rate sample.
  threshold_ = hash;
  const std::int32_t slot = set_slot_[set];
  tracked_blocks_ -= depth_[static_cast<std::size_t>(slot)];
  set_slot_[set] = kEvicted;
  free_slots_.push_back(slot);
  ++evicted_sets_;
}

void ReuseProfiler::access(std::uint64_t address) {
  ++accesses_;
  if (measuring_) ++measured_;
  const std::uint64_t block = address >> line_shift_;
  const std::uint64_t set = block & set_mask_;
  std::int32_t slot = set_slot_[set];
  if (slot < 0) {
    if (slot != kUntouched) return;  // kUnsampled / kEvicted
    slot = touch_set(set);
    if (slot < 0) return;
  }
  std::uint64_t* st = stack_.data() + static_cast<std::size_t>(slot) * ways_;
  const unsigned depth = depth_[static_cast<std::size_t>(slot)];
  unsigned d = 0;
  while (d < depth && st[d] != block) ++d;
  if (d < depth) {
    // Hit at per-set stack distance d: hits every partition of > d ways.
    for (unsigned i = d; i > 0; --i) st[i] = st[i - 1];
    st[0] = block;
    if (measuring_) {
      ++hist_[static_cast<std::size_t>(slot) * (ways_ + 1) + d];
    }
    return;
  }
  // Cold (or fallen off the ways_-deep stack): a miss at every way count.
  if (measuring_) {
    ++hist_[static_cast<std::size_t>(slot) * (ways_ + 1) + ways_];
  }
  unsigned shift = depth;
  if (depth == ways_) {
    shift = ways_ - 1;  // the LRU block falls off the tracked stack
  } else {
    depth_[static_cast<std::size_t>(slot)] =
        static_cast<std::uint8_t>(depth + 1);
    ++tracked_blocks_;
  }
  for (unsigned i = shift; i > 0; --i) st[i] = st[i - 1];
  st[0] = block;
  if (sampling_.mode == ShardsMode::kFixedSize) {
    while (tracked_blocks_ > sampling_.max_tracked_blocks &&
           by_hash_.size() > 1) {
      evict_largest_hash();
    }
  }
}

void ReuseProfiler::raw_histogram(std::vector<std::uint64_t>& hist,
                                  std::uint64_t& total) const {
  hist.assign(ways_ + 1, 0);
  total = 0;
  const std::size_t slots = depth_.size();
  for (std::size_t slot = 0; slot < slots; ++slot) {
    if (set_slot_[slot_set_[slot]] != static_cast<std::int32_t>(slot)) {
      continue;  // freed slot (its set was evicted)
    }
    const std::uint64_t* h = hist_.data() + slot * (ways_ + 1);
    for (unsigned d = 0; d <= ways_; ++d) {
      hist[d] += h[d];
      total += h[d];
    }
  }
}

double ReuseProfiler::final_rate() const {
  if (sampling_.mode == ShardsMode::kOff) return 1.0;
  const std::uint64_t sets = set_mask_ + 1;
  std::uint64_t count = 0;
  for (std::uint64_t s = 0; s < sets; ++s) {
    const std::int32_t slot = set_slot_[s];
    if (slot >= 0 || (slot == kUntouched && eligible(s))) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(sets);
}

std::vector<double> ReuseProfiler::histogram() const {
  std::vector<std::uint64_t> raw;
  std::uint64_t total = 0;
  raw_histogram(raw, total);
  std::vector<double> out(raw.begin(), raw.end());
  if (sampling_.mode != ShardsMode::kOff && sampling_.count_correction) {
    const double expected =
        static_cast<double>(measured_) * final_rate();
    const double diff = expected - static_cast<double>(total);
    out[0] = std::max(out[0] + diff, 0.0);
  }
  return out;
}

EmpiricalMrc ReuseProfiler::mrc() const {
  std::vector<std::pair<double, double>> points;
  points.reserve(ways_);
  const double way_bytes = static_cast<double>(geom_.way_bytes());

  if (sampling_.mode == ShardsMode::kOff) {
    // Unsampled: integer counts cover every measured access, so each
    // point reproduces the exact replay oracle bit for bit — same uint64
    // miss count, same single double division.
    std::vector<std::uint64_t> hist;
    std::uint64_t total = 0;
    raw_histogram(hist, total);
    std::uint64_t hits = 0;
    for (unsigned w = 1; w <= ways_; ++w) {
      hits += hist[w - 1];
      const std::uint64_t misses = measured_ - hits;
      const double ratio = measured_ ? static_cast<double>(misses) /
                                           static_cast<double>(measured_)
                                     : 0.0;
      points.emplace_back(way_bytes * w, ratio);
    }
    return EmpiricalMrc(std::move(points));
  }

  const std::vector<double> hist = histogram();
  double total = 0.0;
  for (double h : hist) total += h;
  double hits = 0.0;
  for (unsigned w = 1; w <= ways_; ++w) {
    hits += hist[w - 1];
    double ratio = 1.0;
    if (total > 0.0) {
      ratio = std::clamp((total - hits) / total, 0.0, 1.0);
    }
    points.emplace_back(way_bytes * w, ratio);
  }
  return EmpiricalMrc(std::move(points));
}

ReuseProfilerStats ReuseProfiler::stats() const {
  ReuseProfilerStats st;
  st.accesses = accesses_;
  st.measured = measured_;
  std::vector<std::uint64_t> hist;
  raw_histogram(hist, st.sampled);
  st.distinct_blocks = tracked_blocks_;
  st.sets = set_mask_ + 1;
  st.sample_rate = final_rate();
  st.sampled_sets = static_cast<std::uint64_t>(
      st.sample_rate * static_cast<double>(st.sets) + 0.5);
  st.evicted_sets = evicted_sets_;
  if (sampling_.mode != ShardsMode::kOff && sampling_.count_correction) {
    const double expected =
        static_cast<double>(st.measured) * st.sample_rate;
    const double raw0 = static_cast<double>(hist.empty() ? 0 : hist[0]);
    const double corrected0 =
        std::max(raw0 + (expected - static_cast<double>(st.sampled)), 0.0);
    st.correction = corrected0 - raw0;
  }
  return st;
}

// ---------------------------------------------------------------------------
// FullyAssociativeProfiler
// ---------------------------------------------------------------------------

FullyAssociativeProfiler::FullyAssociativeProfiler(
    unsigned line_bytes, std::vector<double> capacities_bytes,
    const ShardsConfig& sampling)
    : capacities_bytes_(std::move(capacities_bytes)), sampling_(sampling) {
  if (line_bytes == 0 || !std::has_single_bit(line_bytes)) {
    throw std::invalid_argument(
        "FullyAssociativeProfiler: line size must be 2^k > 0");
  }
  if (capacities_bytes_.empty()) {
    throw std::invalid_argument(
        "FullyAssociativeProfiler: capacity grid is empty");
  }
  for (std::size_t i = 0; i < capacities_bytes_.size(); ++i) {
    if (!(capacities_bytes_[i] > 0.0) ||
        (i > 0 && capacities_bytes_[i] < capacities_bytes_[i - 1])) {
      throw std::invalid_argument(
          "FullyAssociativeProfiler: capacity grid must be ascending > 0");
    }
  }
  validate_sampling(sampling_);
  line_shift_ = static_cast<unsigned>(std::countr_zero(line_bytes));
  capacities_blocks_.reserve(capacities_bytes_.size());
  for (double c : capacities_bytes_) {
    capacities_blocks_.push_back(c / static_cast<double>(line_bytes));
  }
  bucket_.assign(capacities_blocks_.size() + 1, 0.0);
  threshold_ = sampling_.mode == ShardsMode::kFixedRate
                   ? rate_threshold(sampling_.rate)
                   : ~0ull;
  marker_.assign(1, 0);  // position 0 is the Fenwick dummy
  tree_.assign(1, 0);
}

double FullyAssociativeProfiler::sample_rate() const noexcept {
  if (sampling_.mode == ShardsMode::kOff) return 1.0;
  return static_cast<double>(threshold_) / kTwoPow64;
}

void FullyAssociativeProfiler::fenwick_add(std::size_t pos,
                                           std::int64_t delta) {
  for (; pos < tree_.size(); pos += pos & (~pos + 1)) {
    tree_[pos] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(tree_[pos]) + delta);
  }
}

std::uint64_t FullyAssociativeProfiler::fenwick_prefix(
    std::size_t pos) const {
  std::uint64_t sum = 0;
  for (; pos > 0; pos -= pos & (~pos + 1)) sum += tree_[pos];
  return sum;
}

void FullyAssociativeProfiler::grow_tree() {
  tree_.assign(std::max<std::size_t>(2 * tree_.size(), 1024), 0);
  // O(n) Fenwick rebuild from the marker bitmap.
  const std::size_t n = std::min(marker_.size(), tree_.size());
  for (std::size_t i = 1; i < n; ++i) {
    tree_[i] += marker_[i];
    const std::size_t j = i + (i & (~i + 1));
    if (j < tree_.size()) tree_[j] += tree_[i];
  }
}

void FullyAssociativeProfiler::record(double distance_blocks, double weight) {
  const std::size_t idx = static_cast<std::size_t>(
      std::upper_bound(capacities_blocks_.begin(), capacities_blocks_.end(),
                       distance_blocks) -
      capacities_blocks_.begin());
  bucket_[idx] += weight;
  total_weight_ += weight;
}

void FullyAssociativeProfiler::evict_largest_hash() {
  const auto [hash, block] = by_hash_.top();
  by_hash_.pop();
  threshold_ = hash;
  const auto it = last_time_.find(block);
  fenwick_add(it->second, -1);
  marker_[it->second] = 0;
  last_time_.erase(it);
}

void FullyAssociativeProfiler::access(std::uint64_t address) {
  ++accesses_;
  if (measuring_) ++measured_;
  const std::uint64_t block = address >> line_shift_;
  if (sampling_.mode != ShardsMode::kOff &&
      spatial_hash(sampling_.seed, block) >= threshold_) {
    return;
  }
  const double rate = sample_rate();
  ++clock_;
  // The new marker is set only alongside its fenwick_add below, so a
  // grow_tree() rebuild in between cannot double-count it.
  marker_.push_back(0);
  if (clock_ >= tree_.size()) grow_tree();

  const auto it = last_time_.find(block);
  if (it != last_time_.end()) {
    // Distinct sampled blocks touched strictly after the previous access:
    // every such block's last-access marker sits after t_old, and the
    // block's own marker sits at t_old.
    const std::uint64_t newer = static_cast<std::uint64_t>(
        last_time_.size() - fenwick_prefix(it->second));
    if (measuring_) {
      ++sampled_;
      record(static_cast<double>(newer) / rate, 1.0 / rate);
    }
    fenwick_add(it->second, -1);
    marker_[it->second] = 0;
    it->second = clock_;
    fenwick_add(clock_, +1);
    marker_[clock_] = 1;
    return;
  }
  if (measuring_) {
    ++sampled_;
    cold_weight_ += 1.0 / rate;  // compulsory: a miss at every capacity
    total_weight_ += 1.0 / rate;
  }
  last_time_.emplace(block, clock_);
  fenwick_add(clock_, +1);
  marker_[clock_] = 1;
  if (sampling_.mode == ShardsMode::kFixedSize) {
    by_hash_.emplace(spatial_hash(sampling_.seed, block), block);
    while (last_time_.size() > sampling_.max_tracked_blocks &&
           last_time_.size() > 1) {
      evict_largest_hash();
    }
  }
}

EmpiricalMrc FullyAssociativeProfiler::mrc() const {
  std::vector<double> bucket = bucket_;
  double total = total_weight_;
  if (sampling_.mode != ShardsMode::kOff && sampling_.count_correction) {
    // SHARDS-adj: the shortfall between the expected and the actual
    // (rate-scaled) sampled mass is treated as shortest-distance hits.
    const double diff = static_cast<double>(measured_) - total;
    const double corrected0 = std::max(bucket[0] + diff, 0.0);
    total += corrected0 - bucket[0];
    bucket[0] = corrected0;
  }
  std::vector<std::pair<double, double>> points;
  points.reserve(capacities_bytes_.size());
  // miss(c_k) = mass at distances >= c_k, i.e. buckets k+1.. plus cold.
  double tail = cold_weight_;
  for (std::size_t j = bucket.size(); j-- > 1;) tail += bucket[j];
  for (std::size_t k = 0; k < capacities_bytes_.size(); ++k) {
    double ratio = 1.0;
    if (total > 0.0) ratio = std::clamp(tail / total, 0.0, 1.0);
    points.emplace_back(capacities_bytes_[k], ratio);
    tail -= bucket[k + 1];
  }
  return EmpiricalMrc(std::move(points));
}

}  // namespace dicer::sim
