// Analytic shared-cache occupancy model (Che's approximation).
//
// Within a set of ways that several applications may fill (a "region"),
// steady-state LRU occupancy is well described by the characteristic-time
// approximation [Che et al.]: a cache line survives iff it is re-referenced
// within the cache's characteristic time T_c, so application i occupies the
// unique bytes it touches within T_c:
//
//     occ_i(T) = min(reuse_rate_i * T, footprint_i) + stream_rate_i * T
//
// where reuse_rate is the touch rate of its re-used data (capped by its
// working-set footprint — a hot 1 MB set never holds more than 1 MB, and
// conversely is fully resident once T_c covers it, which is why an
// L2-resident app keeps its data even next to nine miss-storming
// neighbours), and stream_rate is compulsory/streaming traffic whose
// lines are unique forever. T_c solves sum_i occ_i(T_c) = capacity and is
// found by bisection (occ_i is monotonically non-decreasing in T).
//
// This reproduces the paper's UM observations (milc left unmanaged "gains
// control of around 26% of the LLC" against nine gcc BEs) and the crucial
// classification physics: isolating a small-footprint HP with CAT buys it
// nothing (CT-Thwarted), while isolating a cache-hungry HP against
// cache-aggressive BEs buys a lot (CT-Favoured).
//
// CAT masks generalise the model: ways are decomposed into maximal regions
// whose eligible-sharer sets are identical (an isolated partition is a
// region with one sharer), each region solves its own T_c, and an app
// eligible for several regions splits its rates across them in proportion
// to region capacity.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "sim/cache/way_mask.hpp"

namespace dicer::sim {

/// One re-used working set of an application, as seen by the occupancy
/// model: a touch rate and the footprint it covers. Splitting an app's
/// reuse into components matters because coverage is rate-proportional —
/// a hot 1 MB set touched constantly is fully resident long before a
/// lukewarm 20 MB tail gets anywhere, so the tail cannot dilute the hot
/// set's stickiness.
struct ReuseComponent {
  double rate_bytes_per_sec = 0.0;
  double footprint_bytes = 0.0;
};

/// Per-application cache demand for one solver call.
struct CacheDemand {
  std::vector<ReuseComponent> reuse;  ///< re-used working sets
  double stream_bytes_per_sec = 0.0;  ///< compulsory/streaming fill rate
};

/// A contiguous-capacity region of the LLC and the apps eligible to fill it.
struct CacheRegion {
  double capacity_bytes = 0.0;
  std::vector<std::size_t> sharers;  ///< app indices, ascending
};

/// Decompose per-app way masks into maximal regions with identical sharer
/// sets. Ways eligible to no app are dropped (their capacity is unused).
std::vector<CacheRegion> decompose_regions(const std::vector<WayMask>& masks,
                                           unsigned total_ways,
                                           double way_bytes);

struct OccupancySolverConfig {
  unsigned bisection_steps = 48;
  /// Upper bound on the characteristic time (seconds). Past this the cache
  /// is considered not filling (all footprints resident, spare unused).
  double max_characteristic_time_sec = 1e3;
};

/// Reusable buffers + cross-call memoisation for solve_occupancy. Owned by
/// the caller, one per solver stream (e.g. one per sim::Machine) and one per
/// solver config: the layout-derived state (per-app eligible capacity,
/// per-region capacity fractions) is rebuilt after invalidate() or when the
/// region/app counts change, and each region remembers the characteristic
/// time of its last solve together with the exact inputs that produced it —
/// when a region's demand is bit-identical to the previous call the
/// bisection is skipped and the stored t_c reused verbatim. In the
/// machine's steady state (converged fixed point, unchanged masks) that
/// turns the per-quantum solve into a handful of comparisons. Results are
/// byte-identical with or without scratch reuse.
struct OccupancyScratch {
  struct RegionState {
    double t_c = 0.0;            ///< characteristic time of the last solve
    bool memo_valid = false;     ///< t_c/inputs describe a completed solve
    std::vector<double> frac;    ///< capacity fraction per sharer (layout)
    std::vector<double> inputs;  ///< flattened demand behind the stored t_c
    std::vector<double> contrib; ///< per-sharer occupancy at the stored t_c
  };
  std::vector<double> avail;        ///< per-app total eligible capacity
  std::vector<RegionState> regions; ///< parallel to the region vector
  /// Per-call flattening buffer. Doubles as the bisection's hoisted-constant
  /// store: once the raw values are saved into the region's `inputs` memo,
  /// each entry is scaled in place by its sharer's capacity fraction so the
  /// ~50-evaluation t-sweep walks one flat array instead of re-deriving
  /// rate*frac / footprint*frac from the nested demand vectors every step.
  std::vector<double> flat;
  /// Per-sharer end offsets into `flat` for the bisection's t-sweep (a
  /// region has at most 64 sharers — decompose_regions enforces it). Fixed
  /// storage keeps the convenience wrapper's cold path allocation-free.
  std::array<std::size_t, 64> flat_end{};
  bool layout_valid = false;

  /// Must be called whenever the region decomposition changes shape or
  /// content (mask change, app attach/detach). Equal-sized but different
  /// layouts are NOT auto-detected.
  void invalidate() noexcept { layout_valid = false; }
};

/// Solve the characteristic-time fixed point. Returns per-app effective
/// cache bytes; an app sharing no region gets 0.
std::vector<double> solve_occupancy(const std::vector<CacheRegion>& regions,
                                    std::size_t num_apps,
                                    const std::vector<CacheDemand>& demand,
                                    const OccupancySolverConfig& config = {});

/// Allocation-free variant: byte-identical results, but reuses `scratch`
/// (buffers + warm-start memo) and writes into `occ`, resized to
/// demand.size(). The steady-state path performs no heap allocation.
void solve_occupancy(const std::vector<CacheRegion>& regions,
                     const std::vector<CacheDemand>& demand,
                     const OccupancySolverConfig& config,
                     OccupancyScratch& scratch, std::vector<double>& occ);

}  // namespace dicer::sim
