#include "sim/mem/memory_link.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dicer::sim {

MemoryLink::MemoryLink(const MemoryLinkConfig& config) : config_(config) {
  if (config_.capacity_bytes_per_sec <= 0.0) {
    throw std::invalid_argument("MemoryLink: capacity must be > 0");
  }
  if (config_.base_latency_cycles <= 0.0) {
    throw std::invalid_argument("MemoryLink: base latency must be > 0");
  }
  if (config_.congestion_amplitude < 0.0 ||
      config_.congestion_exponent <= 0.0 || config_.congestion_linear < 0.0) {
    throw std::invalid_argument("MemoryLink: bad congestion parameters");
  }
}

double MemoryLink::latency_at(double raw_utilisation) const noexcept {
  const double rho = std::clamp(raw_utilisation, 0.0, 1.0);
  const double congestion =
      1.0 + config_.congestion_linear * rho +
      config_.congestion_amplitude *
          std::pow(rho, config_.congestion_exponent);
  const double oversubscription = std::max(raw_utilisation, 1.0);
  return config_.base_latency_cycles * congestion * oversubscription;
}

LinkArbitration MemoryLink::arbitrate(
    std::span<const double> demand_bytes_per_sec) const {
  LinkArbitration out;
  arbitrate_into(demand_bytes_per_sec, out);
  return out;
}

void MemoryLink::arbitrate_into(std::span<const double> demand_bytes_per_sec,
                                LinkArbitration& out) const {
  double total = 0.0;
  for (double d : demand_bytes_per_sec) {
    if (d < 0.0) throw std::invalid_argument("MemoryLink: negative demand");
    total += d;
  }
  out.raw_utilisation = total / config_.capacity_bytes_per_sec;
  out.utilisation = std::min(out.raw_utilisation, 1.0);
  out.throttle = out.raw_utilisation > 1.0 ? 1.0 / out.raw_utilisation : 1.0;
  out.effective_latency_cycles = latency_at(out.raw_utilisation);
  out.achieved_bytes_per_sec.clear();
  out.achieved_bytes_per_sec.reserve(demand_bytes_per_sec.size());
  out.total_achieved_bytes_per_sec = 0.0;
  for (double d : demand_bytes_per_sec) {
    const double achieved = d * out.throttle;
    out.achieved_bytes_per_sec.push_back(achieved);
    out.total_achieved_bytes_per_sec += achieved;
  }
}

}  // namespace dicer::sim
