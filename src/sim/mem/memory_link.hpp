// Bandwidth-arbitrated memory link with congestion latency.
//
// The paper's Key Observation 2 hinges on this mechanism: when CT squeezes
// nine BEs into one LLC way, their miss storm saturates the memory link and
// a bandwidth-sensitive HP slows down even though it owns 19/20 of the
// cache. The model:
//
//  - each requester declares a demanded bandwidth (bytes/s) for the
//    quantum, derived from its miss rate and instruction rate;
//  - a congestion curve inflates effective memory latency with utilisation
//    rho:  f(rho) = 1 + c1 * rho + A * rho^p  — a gradual queueing rise from
//    the first request onward (real DDR latency climbs well before
//    saturation, which is why the paper's Fig 1 shows almost every UM
//    co-location costing the HP ~10 %) topped by a sharp knee near
//    saturation (what makes the paper's 50 Gbps threshold — 73 % of the
//    68.3 Gbps link — a sensible trip point);
//  - when raw demand exceeds capacity (raw_rho > 1) the queue grows and
//    every memory access additionally stretches by raw_rho:
//        lat_eff = lat_base * f(min(rho,1)) * max(raw_rho, 1)
//    Memory-bound requesters slow down until total demand settles near
//    capacity (the machine's fixed point finds that equilibrium), while
//    compute-bound requesters are barely touched — matching real servers,
//    where a busy link hurts you in proportion to how often you miss.
//  - for accounting, achieved bandwidth is demand scaled by
//    min(capacity/total_demand, 1) so reported traffic never exceeds the
//    link (MBM-style telemetry).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dicer::sim {

struct MemoryLinkConfig {
  double capacity_bytes_per_sec = 68.3e9 / 8.0;  ///< 68.3 Gbps (Table 1)
  double base_latency_cycles = 220.0;            ///< uncontended DRAM access
  double congestion_linear = 0.45;               ///< gradual queueing rise
  double congestion_amplitude = 1.8;             ///< A: f(1) = 1 + lin + A
  double congestion_exponent = 8.0;              ///< p: knee sharpness
};

/// Outcome of arbitrating one quantum's demands.
struct LinkArbitration {
  double utilisation = 0.0;              ///< rho = min(demand/capacity, 1)
  double raw_utilisation = 0.0;          ///< demand/capacity, may exceed 1
  double effective_latency_cycles = 0.0; ///< shared by all requesters
  double throttle = 1.0;                 ///< achieved/demanded, in (0, 1]
  std::vector<double> achieved_bytes_per_sec;  ///< per requester
  /// Sum of achieved_bytes_per_sec, accumulated in requester order while
  /// arbitrating (bit-identical to the caller summing the vector itself).
  double total_achieved_bytes_per_sec = 0.0;
};

class MemoryLink {
 public:
  explicit MemoryLink(const MemoryLinkConfig& config = {});

  const MemoryLinkConfig& config() const noexcept { return config_; }

  /// Arbitrate the given per-requester demands (bytes/s, >= 0).
  LinkArbitration arbitrate(std::span<const double> demand_bytes_per_sec) const;

  /// Arbitrate into a caller-provided result, reusing its buffers (the
  /// achieved-bandwidth vector is cleared and refilled, keeping its
  /// capacity). Byte-identical to arbitrate(); this is the machine's
  /// allocation-free per-quantum path.
  void arbitrate_into(std::span<const double> demand_bytes_per_sec,
                      LinkArbitration& out) const;

  /// Congestion latency for a *raw* utilisation (may exceed 1); exposed for
  /// tests and the link-model micro bench.
  double latency_at(double raw_utilisation) const noexcept;

 private:
  MemoryLinkConfig config_;
};

}  // namespace dicer::sim
