#include "sim/core/app_profile.hpp"

#include <stdexcept>

namespace dicer::sim {

const char* to_string(AppClass c) noexcept {
  switch (c) {
    case AppClass::kComputeBound: return "compute-bound";
    case AppClass::kCacheFriendly: return "cache-friendly";
    case AppClass::kCacheHungry: return "cache-hungry";
    case AppClass::kStreaming: return "streaming";
  }
  return "?";
}

double AppProfile::total_instructions() const noexcept {
  double total = 0.0;
  for (const auto& p : phases) total += p.instructions;
  return total;
}

double AppProfile::mean_api() const noexcept {
  const double total = total_instructions();
  if (total <= 0.0) return 0.0;
  double weighted = 0.0;
  for (const auto& p : phases) weighted += p.api * p.instructions;
  return weighted / total;
}

AppRuntime::AppRuntime(const AppProfile* profile) : profile_(profile) {
  if (!profile_ || profile_->phases.empty()) {
    throw std::invalid_argument("AppRuntime: profile must have phases");
  }
  for (const auto& p : profile_->phases) {
    if (p.instructions <= 0.0) {
      throw std::invalid_argument("AppRuntime: phase with <= 0 instructions");
    }
  }
}

const AppPhase& AppRuntime::current_phase() const noexcept {
  return profile_->phases[phase_];
}

unsigned AppRuntime::advance_slow(double instructions) {
  unsigned completed = 0;
  retired_total_ += instructions;
  while (instructions > 0.0) {
    const AppPhase& ph = profile_->phases[phase_];
    const double left = ph.instructions - into_phase_;
    if (instructions < left) {
      into_phase_ += instructions;
      break;
    }
    instructions -= left;
    into_phase_ = 0.0;
    ++phase_;
    if (phase_ == profile_->phases.size()) {
      phase_ = 0;
      ++completions_;
      ++completed;
    }
  }
  return completed;
}

double AppRuntime::run_progress() const noexcept {
  double done = into_phase_;
  for (std::size_t i = 0; i < phase_; ++i) {
    done += profile_->phases[i].instructions;
  }
  return done / profile_->total_instructions();
}

void AppRuntime::reset() {
  phase_ = 0;
  into_phase_ = 0.0;
  retired_total_ = 0.0;
  completions_ = 0;
}

}  // namespace dicer::sim
