#include "sim/core/trace_apps.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace dicer::sim {

namespace {

constexpr const char* kTraceHeader = "app,bytes,miss_ratio";

std::string profile_key(const std::vector<TraceAppSpec>& specs,
                        const MrcProfilerConfig& config) {
  // Versioned key over everything that shapes the cached tables: the
  // profiling geometry/windows/mode/sampling plan plus every stream-
  // shaping spec field. Phase parameters (cpi, api, ...) are applied
  // after loading, so they are deliberately excluded.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const auto& s : specs) {
    mix(s.name);
    mix(to_string(s.pattern));
    char buf[192];
    std::snprintf(buf, sizeof buf, "%llu:%llu:%g:%g:%llu:%llu",
                  static_cast<unsigned long long>(s.ws_bytes),
                  static_cast<unsigned long long>(s.cold_bytes),
                  s.hot_fraction, s.reuse_fraction,
                  static_cast<unsigned long long>(s.stream_seed),
                  static_cast<unsigned long long>(s.base));
    mix(buf);
  }
  const auto& g = config.geometry;
  const auto& sh = config.sampling;
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "dicer-trace-mrc-v1:%016llx:%llu:%u:%u:%llu:%llu:%d:%d:%g:%llu:%llu:%d",
      static_cast<unsigned long long>(h),
      static_cast<unsigned long long>(g.size_bytes), g.ways, g.line_bytes,
      static_cast<unsigned long long>(config.warmup_accesses),
      static_cast<unsigned long long>(config.measure_accesses),
      static_cast<int>(config.mode), static_cast<int>(sh.mode), sh.rate,
      static_cast<unsigned long long>(sh.max_tracked_blocks),
      static_cast<unsigned long long>(sh.seed), sh.count_correction ? 1 : 0);
  return buf;
}

/// Full-precision double formatting (%.17g round-trips exactly), so a
/// cache-served catalog is byte-identical to a freshly profiled one.
std::string fmt17(double x) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

double parse_cell_double(const std::string& cell) {
  std::size_t pos = 0;
  const double v = std::stod(cell, &pos);
  if (pos != cell.size()) {
    throw std::invalid_argument("bad number '" + cell + "'");
  }
  return v;
}

using PointTable = std::map<std::string, std::vector<std::pair<double, double>>>;

/// Load cached per-app MRC tables for `key`. Any defect logs and returns
/// empty so the caller reprofiles. Never throws.
PointTable load_tables(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  if (!std::getline(in, line) || line != "# " + key) {
    DICER_INFO << "trace profile cache " << path << " is stale; reprofiling";
    return {};
  }
  if (!std::getline(in, line) || line != kTraceHeader) {
    DICER_WARN << "trace profile cache " << path
               << " has an unexpected column header; reprofiling";
    return {};
  }
  PointTable tables;
  std::size_t rows = 0;
  try {
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream ss(line);
      std::string cell;
      auto next = [&]() {
        if (!std::getline(ss, cell, ',')) {
          throw std::invalid_argument("truncated row");
        }
        return cell;
      };
      const std::string app = next();
      const double bytes = parse_cell_double(next());
      const double ratio = parse_cell_double(next());
      if (app.empty() || !(bytes > 0.0) || ratio < 0.0 || ratio > 1.0) {
        throw std::invalid_argument("out-of-range row");
      }
      if (std::getline(ss, cell, ',')) {
        throw std::invalid_argument("trailing columns");
      }
      auto& points = tables[app];
      if (!points.empty() && bytes <= points.back().first) {
        throw std::invalid_argument("unsorted points");
      }
      points.emplace_back(bytes, ratio);
      ++rows;
    }
  } catch (const std::exception& e) {
    DICER_WARN << "trace profile cache " << path << " is corrupt (" << e.what()
               << " at row " << rows << "); reprofiling";
    return {};
  }
  return tables;
}

void save_tables(const std::string& path, const std::string& key,
                 const PointTable& tables) {
  static std::atomic<std::uint64_t> save_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(save_counter.fetch_add(1, std::memory_order_relaxed));
  std::ofstream out(tmp, std::ios::trunc);
  if (!out) {
    DICER_WARN << "cannot write trace profile cache " << tmp;
    return;
  }
  out << "# " << key << "\n";
  out << kTraceHeader << "\n";
  for (const auto& [app, points] : tables) {
    for (const auto& [bytes, ratio] : points) {
      out << app << ',' << fmt17(bytes) << ',' << fmt17(ratio) << "\n";
    }
  }
  out.flush();
  if (!out) {
    DICER_WARN << "failed writing trace profile cache " << tmp;
    out.close();
    std::remove(tmp.c_str());
    return;
  }
  out.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    DICER_WARN << "cannot rename trace profile cache " << tmp << " -> "
               << path;
    std::remove(tmp.c_str());
  }
}

AppProfile make_profile(const TraceAppSpec& spec, const EmpiricalMrc& table) {
  AppPhase phase;
  phase.name = "trace";
  phase.instructions = spec.instructions;
  phase.cpi_core = spec.cpi_core;
  phase.api = spec.api;
  phase.mrc = fit_mrc(table);
  phase.wb_ratio = spec.wb_ratio;
  phase.mlp = spec.mlp;
  AppProfile profile;
  profile.name = spec.name;
  profile.suite = "TRACE";
  profile.app_class = spec.app_class;
  profile.phases.push_back(std::move(phase));
  return profile;
}

}  // namespace

const char* to_string(TracePattern p) noexcept {
  switch (p) {
    case TracePattern::kStreaming:
      return "streaming";
    case TracePattern::kWorkingSet:
      return "working_set";
    case TracePattern::kBimodal:
      return "bimodal";
    case TracePattern::kMixed:
      return "mixed";
  }
  return "?";
}

std::vector<TraceAppSpec> default_trace_apps() {
  std::vector<TraceAppSpec> specs;
  {
    TraceAppSpec s;
    s.name = "trace_stream1";
    s.pattern = TracePattern::kStreaming;
    s.app_class = AppClass::kStreaming;
    s.stream_seed = 101;
    s.instructions = 30e9;
    s.cpi_core = 0.7;
    s.api = 0.010;
    s.wb_ratio = 0.6;
    s.mlp = 4.0;
    specs.push_back(s);
  }
  {
    TraceAppSpec s;
    s.name = "trace_wset1";
    s.pattern = TracePattern::kWorkingSet;
    s.app_class = AppClass::kCacheHungry;
    s.ws_bytes = 12ull << 20;
    s.stream_seed = 102;
    s.instructions = 45e9;
    s.cpi_core = 0.55;
    s.api = 0.006;
    s.wb_ratio = 0.35;
    s.mlp = 1.6;
    specs.push_back(s);
  }
  {
    TraceAppSpec s;
    s.name = "trace_bimodal1";
    s.pattern = TracePattern::kBimodal;
    s.app_class = AppClass::kCacheHungry;
    s.ws_bytes = 2ull << 20;  // hot set
    s.cold_bytes = 16ull << 20;
    s.hot_fraction = 0.8;
    s.stream_seed = 103;
    s.instructions = 42e9;
    s.cpi_core = 0.6;
    s.api = 0.005;
    s.wb_ratio = 0.3;
    s.mlp = 1.8;
    specs.push_back(s);
  }
  {
    TraceAppSpec s;
    s.name = "trace_mix1";
    s.pattern = TracePattern::kMixed;
    s.app_class = AppClass::kCacheFriendly;
    s.ws_bytes = 4ull << 20;
    s.reuse_fraction = 0.7;
    s.stream_seed = 104;
    s.instructions = 50e9;
    s.cpi_core = 0.5;
    s.api = 0.0035;
    s.wb_ratio = 0.25;
    s.mlp = 2.2;
    specs.push_back(s);
  }
  return specs;
}

std::unique_ptr<AddressStream> make_trace_stream(const TraceAppSpec& spec) {
  util::Xoshiro256 rng(spec.stream_seed);
  switch (spec.pattern) {
    case TracePattern::kStreaming:
      return std::make_unique<StreamingStream>(/*region_bytes=*/256ull << 20,
                                               /*stride=*/64, spec.base);
    case TracePattern::kWorkingSet:
      return std::make_unique<WorkingSetStream>(spec.ws_bytes, spec.base,
                                                rng);
    case TracePattern::kBimodal:
      return std::make_unique<BimodalStream>(spec.ws_bytes, spec.cold_bytes,
                                             spec.hot_fraction, spec.base,
                                             rng);
    case TracePattern::kMixed:
      return std::make_unique<MixedStream>(spec.ws_bytes, spec.reuse_fraction,
                                           spec.base, rng);
  }
  throw std::invalid_argument("make_trace_stream: unknown pattern");
}

MissRatioCurve fit_mrc(const EmpiricalMrc& table) {
  if (table.empty()) {
    throw std::invalid_argument("fit_mrc: empty table");
  }
  const auto& pts = table.points();
  const std::size_t n = pts.size();

  // Monotonise from the tail so the table is non-increasing (profiling
  // noise can leave tiny upward bumps).
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = pts[i].first;
    y[i] = std::clamp(pts[i].second, 0.0, 1.0);
  }
  for (std::size_t i = n - 1; i-- > 0;) y[i] = std::max(y[i], y[i + 1]);

  const double floor = y[n - 1];
  // Extrapolate the zero-allocation miss ratio from the first segment (a
  // flat or single-point table just holds its first value).
  double y0 = y[0];
  if (n >= 2 && x[1] > x[0]) {
    y0 = std::min(1.0, y[0] + (y[0] - y[1]) / (x[1] - x[0]) * x[0]);
  }

  // Segment k spans (x_{k-1}, x_k] with x_0 := 0. A shape-1 component of
  // working set x_k adds slope -w_k/x_k everywhere left of x_k, so
  // matching the interpolant slope G_k of every segment gives
  //   w_k = x_k * (G_k - G_{k+1}).
  // Convexifying G (running max from the tail) keeps every weight >= 0;
  // on convex tables the fit passes through every point exactly.
  std::vector<double> g(n + 1, 0.0);  // g[k]: downhill slope of segment k
  g[0] = x[0] > 0.0 ? (y0 - y[0]) / x[0] : 0.0;
  for (std::size_t k = 1; k < n; ++k) {
    g[k] = x[k] > x[k - 1] ? (y[k - 1] - y[k]) / (x[k] - x[k - 1]) : 0.0;
  }
  // g indexing above: g[k] is the segment ENDING at x[k] (0-based), and
  // g[n] = 0 terminates the recursion.
  for (std::size_t k = n; k-- > 0;) g[k] = std::max(g[k], g[k + 1]);

  std::vector<MrcComponent> components;
  double weight_sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double w = x[k] * (g[k] - g[k + 1]);
    if (w > 1e-12) {
      components.push_back({.weight = w, .ws_bytes = x[k], .shape = 1.0});
      weight_sum += w;
    }
  }
  // Convexification can only steepen, so the implied ceiling may exceed
  // what a miss *ratio* allows; rescale into the budget.
  if (weight_sum > 0.0 && floor + weight_sum > 1.0) {
    const double scale = (1.0 - floor) / weight_sum;
    for (auto& c : components) c.weight *= scale;
  }
  return MissRatioCurve(floor, std::move(components));
}

MrcProfilerConfig default_trace_profile_config() {
  MrcProfilerConfig config;
  // Nearest trace-cacheable geometry to the paper LLC (25 MB, 20-way,
  // 64 B would give 20480 sets): the set-indexed cache and profiler
  // need a power-of-two set count, so profile at 20 MB / 20-way / 64 B
  // = 16384 sets.
  config.geometry = {
      .size_bytes = 20ull * 1024 * 1024, .ways = 20, .line_bytes = 64};
  config.warmup_accesses = 400'000;
  config.measure_accesses = 800'000;
  config.mode = MrcProfilerMode::kSampled;
  config.sampling = {.mode = ShardsMode::kFixedRate, .rate = 0.25};
  return config;
}

AppProfile profile_trace_app(const TraceAppSpec& spec,
                             const MrcProfilerConfig& config) {
  const EmpiricalMrc table =
      profile_mrc(config, [&spec] { return make_trace_stream(spec); });
  return make_profile(spec, table);
}

AppCatalog trace_augmented_catalog(const std::string& cache_path,
                                   const std::vector<TraceAppSpec>& specs,
                                   const MrcProfilerConfig& config) {
  trace::ScopedTimer timer("trace_apps.build_catalog");
  AppCatalog catalog;
  if (specs.empty()) return catalog;

  const std::string key = profile_key(specs, config);
  PointTable tables;
  if (!cache_path.empty()) {
    tables = load_tables(cache_path, key);
    // Every spec must be present with one point per way count; anything
    // else is a stale or foreign cache.
    bool complete = tables.size() == specs.size();
    for (const auto& spec : specs) {
      const auto it = tables.find(spec.name);
      if (it == tables.end() || it->second.size() != config.geometry.ways) {
        complete = false;
        break;
      }
    }
    if (!complete && !tables.empty()) {
      DICER_WARN << "trace profile cache " << cache_path
                 << " does not cover the requested specs; reprofiling";
    }
    if (!complete) tables.clear();
  }

  if (tables.empty()) {
    for (const auto& spec : specs) {
      const EmpiricalMrc table =
          profile_mrc(config, [&spec] { return make_trace_stream(spec); });
      tables[spec.name] = table.points();
    }
    if (!cache_path.empty()) save_tables(cache_path, key, tables);
  }

  for (const auto& spec : specs) {
    catalog.add(make_profile(spec, EmpiricalMrc(tables[spec.name])));
  }
  return catalog;
}

}  // namespace dicer::sim
