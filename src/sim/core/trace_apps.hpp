// Trace-derived catalog workloads.
//
// The 59-entry catalog is hand-calibrated from published behaviour
// classes. This header grows it with workloads whose MRCs are *measured*:
// each TraceAppSpec names a synthetic address stream (the same families
// the validation suite replays against the trace-driven cache), the
// single-pass reuse profiler turns the stream into an empirical per-way
// MRC in one pass, and `fit_mrc` converts that table into the analytic
// `MissRatioCurve` form the machine model consumes (a floor plus shape-1
// coverage components — exact on convex tables, least-upper-bound
// steepening on bumpy ones).
//
// Profiling results are cached on disk in the same deterministic style as
// the policy-sweep cache: a versioned "# key" line mixing every
// result-shaping knob, strict row parsing, corruption handled by
// recomputing (never by crashing), atomic tmp+rename saves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache/address_stream.hpp"
#include "sim/cache/mrc.hpp"
#include "sim/cache/mrc_profiler.hpp"
#include "sim/core/catalog.hpp"

namespace dicer::sim {

/// Stream family of a trace-derived workload.
enum class TracePattern { kStreaming, kWorkingSet, kBimodal, kMixed };

const char* to_string(TracePattern p) noexcept;

struct TraceAppSpec {
  std::string name;  ///< catalog workload name, e.g. "trace_wset1"
  TracePattern pattern = TracePattern::kWorkingSet;
  AppClass app_class = AppClass::kCacheFriendly;

  // Stream parameters (which ones apply depends on the pattern).
  std::uint64_t ws_bytes = 4ull << 20;    ///< working-set / hot-set size
  std::uint64_t cold_bytes = 16ull << 20; ///< kBimodal cold-set size
  double hot_fraction = 0.8;              ///< kBimodal hot-access share
  double reuse_fraction = 0.7;            ///< kMixed reuse share
  std::uint64_t stream_seed = 1;          ///< RNG seed of the stream
  std::uint64_t base = 0;                 ///< base address of the region

  // Phase parameters of the resulting AppProfile.
  double instructions = 40e9;
  double cpi_core = 0.6;
  double api = 0.004;
  double wb_ratio = 0.3;
  double mlp = 2.0;
};

/// The default trace-derived workload set: one spec per stream family.
std::vector<TraceAppSpec> default_trace_apps();

/// Fresh, identically-seeded stream for a spec.
std::unique_ptr<AddressStream> make_trace_stream(const TraceAppSpec& spec);

/// Fit an analytic MRC to an empirical per-way table by slope
/// decomposition into shape-1 components: floor = the final point,
/// one component per table breakpoint, weights from the (monotonised,
/// convexified) segment slopes. Exact on convex non-increasing tables.
/// Throws std::invalid_argument on an empty table.
MissRatioCurve fit_mrc(const EmpiricalMrc& table);

/// Default profiling configuration for trace apps: the nearest
/// power-of-two-sets geometry to the paper LLC (20 MB / 20-way / 64 B),
/// SHARDS-sampled single pass.
MrcProfilerConfig default_trace_profile_config();

/// Profile one spec into a single-phase AppProfile (suite "TRACE").
AppProfile profile_trace_app(const TraceAppSpec& spec,
                             const MrcProfilerConfig& config);

/// The 59-entry default catalog plus every spec in `specs`, with the
/// empirical MRC tables served from the deterministic profile cache at
/// `cache_path` ("" profiles unconditionally; a stale/corrupt cache is
/// recomputed and rewritten).
AppCatalog trace_augmented_catalog(
    const std::string& cache_path = "",
    const std::vector<TraceAppSpec>& specs = default_trace_apps(),
    const MrcProfilerConfig& config = default_trace_profile_config());

}  // namespace dicer::sim
