// Application profiles: the analytic stand-ins for SPEC CPU 2006 / PARSEC
// 3.0 binaries.
//
// A profile is a sequence of *phases* (the paper's phase-change detector,
// Eq. 2, exists precisely because real applications move between phases
// with different cache appetites [Sherwood et al.]). Each phase pins down
// everything the machine model needs:
//
//   cpi_core   cycles/instruction spent outside the LLC/memory system
//   api        LLC accesses per instruction (post-L2 filter)
//   mrc        miss ratio vs. effective LLC bytes held
//   wb_ratio   extra write-back traffic per miss (0.0 .. ~1.0)
//
// One full execution retires the sum of phase instruction counts; the
// harness restarts finished apps per the paper's methodology (§4.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache/mrc.hpp"

namespace dicer::sim {

struct AppPhase {
  std::string name;               ///< e.g. "init", "stream", "solve"
  double instructions = 1e9;      ///< retired instructions in this phase
  double cpi_core = 0.6;          ///< non-memory CPI component
  double api = 0.002;             ///< LLC accesses per instruction
  MissRatioCurve mrc;             ///< miss ratio vs. occupancy bytes
  double wb_ratio = 0.3;          ///< write-back bytes per miss byte
  double mlp = 2.0;               ///< memory-level parallelism: overlapped
                                  ///< misses divide exposed memory latency
};

/// Broad behaviour class — used for catalog construction and reporting.
enum class AppClass {
  kComputeBound,   ///< low api: povray, namd, gromacs, swaptions...
  kCacheFriendly,  ///< knee within a few ways: gcc, bzip2, astar...
  kCacheHungry,    ///< knee near/beyond the LLC: mcf, omnetpp, xalan...
  kStreaming,      ///< little reuse, high bandwidth: lbm, libquantum, milc...
};

const char* to_string(AppClass c) noexcept;

class MachineBatch;

struct AppProfile {
  std::string name;      ///< paper workload name, e.g. "milc1", "gcc_base3"
  std::string suite;     ///< "SPEC CPU 2006" or "PARSEC 3.0"
  AppClass app_class = AppClass::kCacheFriendly;
  std::vector<AppPhase> phases;

  double total_instructions() const noexcept;
  /// Average LLC accesses/instruction weighted by phase length.
  double mean_api() const noexcept;
};

/// Executes an AppProfile: tracks phase position, retired instructions and
/// completions; restarts from phase 0 when a run finishes.
class AppRuntime {
 public:
  explicit AppRuntime(const AppProfile* profile);

  const AppProfile& profile() const noexcept { return *profile_; }
  const AppPhase& current_phase() const noexcept;
  std::size_t phase_index() const noexcept { return phase_; }

  /// Retire `instructions`; crosses phase boundaries and whole-run restarts
  /// as needed. Returns the number of runs completed during this advance.
  /// The stay-within-phase case — every quantum of a settled stretch — is
  /// inlined so the steady-state replay and batched-stepping commit loops
  /// pay a compare and two adds; boundary crossings take the out-of-line
  /// slow path. The fast-path predicate and additions are exactly the ones
  /// advance_slow's loop performs, so splitting changes no result bit.
  unsigned advance(double instructions) {
    const AppPhase& ph = profile_->phases[phase_];
    if (instructions > 0.0 && instructions < ph.instructions - into_phase_) {
      retired_total_ += instructions;
      into_phase_ += instructions;
      return 0;
    }
    return advance_slow(instructions);
  }

  /// The stay-within-phase half of advance(), for callers that have
  /// already proven `instructions` cannot reach the phase boundary (the
  /// batched stepping engine budgets whole quanta against
  /// phase_remaining() with a safety margin). Performs exactly the writes
  /// advance()'s fast path performs — same two additions, zero
  /// completions — so using it changes no result bit.
  void advance_within_phase(double instructions) {
    retired_total_ += instructions;
    into_phase_ += instructions;
  }

  /// Instructions left before the current phase's boundary.
  double phase_remaining() const noexcept {
    return profile_->phases[phase_].instructions - into_phase_;
  }

  std::uint64_t completions() const noexcept { return completions_; }

  double instructions_retired_total() const noexcept { return retired_total_; }
  /// Progress through the current run, in [0, 1).
  double run_progress() const noexcept;

  void reset();

 private:
  /// The batched stepping engine's bulk commit (MachineBatch::fused_run)
  /// performs the same within-phase additions as advance_within_phase but
  /// holds the running values in registers across a whole quanta chunk,
  /// which needs direct access to the two accumulators.
  friend class MachineBatch;

  /// The full phase-walking advance (boundary crossings and restarts).
  unsigned advance_slow(double instructions);

  const AppProfile* profile_;
  std::size_t phase_ = 0;
  double into_phase_ = 0.0;  ///< instructions retired within current phase
  double retired_total_ = 0.0;
  std::uint64_t completions_ = 0;
};

}  // namespace dicer::sim
