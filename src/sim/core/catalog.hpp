// The 59-workload application catalog.
//
// The paper evaluates 59 workloads: 25 SPEC CPU 2006 applications (8 of
// them with multiple reference inputs, 50 workloads total) plus 9 serial
// PARSEC 3.0 applications. We cannot run those binaries here, so the
// catalog provides analytic stand-ins carrying the paper's workload names
// and calibrated to each application's published memory behaviour class:
//
//   streaming      lbm, libquantum, milc, leslie3d, bwaves, GemsFDTD,
//                  streamcluster           — bandwidth-hungry, flat MRC
//   cache-hungry   mcf, omnetpp, Xalan, soplex, canneal, zeusmp, sphinx
//                  astar(BigLakes)         — deep MRC knees, latency bound
//   cache-friendly gcc*, bzip2*, dedup, fluidanimate, astar(rivers), ferret
//                  — knees within a few ways
//   compute-bound  namd, povray, gromacs, calculix, tonto, sjeng, gobmk*,
//                  hmmer*, h264ref*, perlbench*, blackscholes, swaptions,
//                  bodytrack, freqmine     — tiny api, insensitive
//
// Multi-input applications get deterministic per-input parameter jitter, so
// gcc_base1..gcc_base9 are distinct workloads like the paper's inputs are.
// What matters for the figures is the catalog's *distributions* (see
// DESIGN.md §2): the Fig-2 knee distribution, the Fig-1 slowdown CDF and
// the ~60/40 CT-T/CT-F split all emerge from these classes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/core/app_profile.hpp"

namespace dicer::sim {

class AppCatalog {
 public:
  /// Builds the full 59-entry catalog. `seed` controls only the
  /// deterministic per-input jitter (default matches the shipped figures).
  explicit AppCatalog(std::uint64_t seed = 7);

  /// Append an extra workload (e.g. a trace-derived app profiled by the
  /// reuse profiler, see sim/core/trace_apps.hpp). Throws
  /// std::invalid_argument on a duplicate name or an empty profile.
  void add(AppProfile profile);

  std::size_t size() const noexcept { return profiles_.size(); }
  const std::vector<AppProfile>& profiles() const noexcept {
    return profiles_;
  }
  const AppProfile& at(std::size_t i) const { return profiles_.at(i); }

  /// Lookup by paper workload name ("milc1", "gcc_base3", ...).
  /// Throws std::out_of_range if absent.
  const AppProfile& by_name(const std::string& name) const;
  bool contains(const std::string& name) const noexcept;

  std::vector<std::string> names() const;
  /// All profiles of a behaviour class.
  std::vector<const AppProfile*> of_class(AppClass c) const;

 private:
  std::vector<AppProfile> profiles_;
};

/// Shared default catalog instance (built once, immutable).
const AppCatalog& default_catalog();

}  // namespace dicer::sim
