#include "sim/core/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace dicer::sim {

namespace {

constexpr double MB = 1024.0 * 1024.0;
constexpr double G = 1e9;

/// Deterministic per-input jitter: multiplies a base value by
/// exp(sigma * N(0,1)) drawn from a stream keyed on (seed, name).
class Jitter {
 public:
  Jitter(std::uint64_t seed, const std::string& name) : rng_(derive(seed, name)) {}

  double scale(double base, double sigma) { return base * std::exp(sigma * rng_.normal()); }

 private:
  static std::uint64_t derive(std::uint64_t seed, const std::string& name) {
    util::SplitMix64 sm(seed);
    std::uint64_t h = sm.next();
    for (char c : name) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    return h;
  }
  util::Xoshiro256 rng_;
};

AppPhase phase(std::string name, double instructions, double cpi_core,
               double api, MissRatioCurve mrc, double wb, double mlp) {
  AppPhase p;
  p.name = std::move(name);
  p.instructions = instructions;
  p.cpi_core = cpi_core;
  p.api = api;
  // Long-tail reuse: real SPEC/PARSEC codes keep improving slightly all
  // the way to the full LLC (the paper's Fig 2 has half the applications
  // needing more than 6 ways for the last percent of performance). Give
  // every non-streaming curve a thin far component so the last few ways
  // still buy something.
  if (api >= 0.005 && mrc.floor() < 0.3 && mrc.ceiling() <= 0.93) {
    auto components = mrc.components();
    components.push_back({0.11, 20.0 * MB, 2.5});
    p.mrc = MissRatioCurve(mrc.floor(), std::move(components));
  } else {
    p.mrc = std::move(mrc);
  }
  p.wb_ratio = wb;
  p.mlp = mlp;
  return p;
}

// ---------------------------------------------------------------------------
// Streaming applications: bandwidth-hungry, MRC dominated by the floor.
// ---------------------------------------------------------------------------

AppProfile make_lbm() {
  AppProfile a{.name = "lbm1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kStreaming, .phases = {}};
  a.phases = {
      phase("init", 2e9, 0.55, 0.010, MissRatioCurve::streaming(0.80), 0.5, 5.0),
      phase("collide-stream", 26e9, 0.50, 0.030,
            MissRatioCurve::streaming(0.92), 0.62, 6.0),
  };
  return a;
}

AppProfile make_libquantum() {
  AppProfile a{.name = "libquantum1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kStreaming, .phases = {}};
  a.phases = {
      phase("gates", 30e9, 0.45, 0.022, MissRatioCurve::streaming(0.94), 0.30,
            7.0),
      phase("toffoli", 12e9, 0.48, 0.026, MissRatioCurve::streaming(0.95),
            0.32, 7.0),
  };
  return a;
}

AppProfile make_milc() {
  AppProfile a{.name = "milc1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kStreaming, .phases = {}};
  // milc keeps a small su3 working set but sweeps lattices much larger than
  // the LLC: a thin knee below one way plus a high floor. This is the Fig-3
  // HP: extra ways beyond ~2 buy it nothing, while its bandwidth appetite
  // makes it suffer when BEs saturate the link.
  a.phases = {
      phase("warm", 3e9, 0.60, 0.014,
            MissRatioCurve::single_knee(0.18, 0.9 * MB, 0.72, 1.5), 0.42, 4.0),
      phase("cg-sweep", 24e9, 0.58, 0.020,
            MissRatioCurve::single_knee(0.14, 1.0 * MB, 0.80, 1.5), 0.45, 4.5),
  };
  return a;
}

AppProfile make_leslie3d() {
  AppProfile a{.name = "leslie3d1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kStreaming, .phases = {}};
  a.phases = {
      phase("solve", 28e9, 0.52, 0.018,
            MissRatioCurve::single_knee(0.15, 2.0 * MB, 0.74, 1.5), 0.5, 4.5),
      phase("boundary", 6e9, 0.55, 0.012,
            MissRatioCurve::single_knee(0.20, 1.5 * MB, 0.60, 1.5), 0.45, 4.0),
  };
  return a;
}

AppProfile make_bwaves() {
  AppProfile a{.name = "bwaves1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kStreaming, .phases = {}};
  a.phases = {
      phase("mgrid", 30e9, 0.50, 0.019,
            MissRatioCurve::single_knee(0.12, 2.5 * MB, 0.78, 1.5), 0.42, 5.0),
  };
  return a;
}

AppProfile make_gemsfdtd() {
  AppProfile a{.name = "GemsFDTD1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kStreaming, .phases = {}};
  // A real init/solve phase structure: the solver is much more
  // bandwidth-hungry than setup — exercises DICER's phase detector.
  a.phases = {
      phase("setup", 5e9, 0.70, 0.006,
            MissRatioCurve::single_knee(0.30, 3.0 * MB, 0.25, 1.5), 0.35, 3.0),
      phase("update-H", 14e9, 0.55, 0.020,
            MissRatioCurve::single_knee(0.10, 2.0 * MB, 0.78, 1.5), 0.5, 4.0),
      phase("update-E", 14e9, 0.55, 0.022,
            MissRatioCurve::single_knee(0.10, 2.0 * MB, 0.80, 1.5), 0.5, 4.0),
  };
  return a;
}

AppProfile make_streamcluster() {
  AppProfile a{.name = "streamcluster1", .suite = "PARSEC 3.0",
               .app_class = AppClass::kStreaming, .phases = {}};
  a.phases = {
      phase("kmedian", 22e9, 0.60, 0.019,
            MissRatioCurve::single_knee(0.18, 1.2 * MB, 0.70, 1.5), 0.2, 4.0),
      phase("recluster", 8e9, 0.62, 0.021,
            MissRatioCurve::single_knee(0.15, 1.0 * MB, 0.75, 1.5), 0.2, 4.0),
  };
  return a;
}

// ---------------------------------------------------------------------------
// Cache-hungry applications: deep knees, often latency-bound (low MLP).
// ---------------------------------------------------------------------------

AppProfile make_mcf() {
  AppProfile a{.name = "mcf1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kCacheHungry, .phases = {}};
  // Pointer chasing over a network simplex structure far larger than the
  // LLC; a mid-size knee plus a very large one that never fully fits.
  a.phases = {
      phase("simplex", 16e9, 0.80, 0.024,
            MissRatioCurve::double_knee(0.28, 3.5 * MB, 0.42, 48.0 * MB, 0.02),
            0.30, 1.7),
      phase("pricing", 8e9, 0.75, 0.028,
            MissRatioCurve::double_knee(0.25, 2.5 * MB, 0.45, 40.0 * MB, 0.02),
            0.30, 1.6),
  };
  return a;
}

AppProfile make_omnetpp() {
  AppProfile a{.name = "omnetpp1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kCacheHungry, .phases = {}};
  a.phases = {
      phase("events", 30e9, 0.75, 0.014,
            MissRatioCurve::double_knee(0.45, 6.0 * MB, 0.25, 30.0 * MB, 0.03),
            0.30, 1.6),
  };
  return a;
}

AppProfile make_xalan() {
  AppProfile a{.name = "Xalan1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kCacheHungry, .phases = {}};
  a.phases = {
      phase("transform", 34e9, 0.65, 0.012,
            MissRatioCurve::double_knee(0.50, 4.0 * MB, 0.22, 16.0 * MB, 0.03),
            0.25, 1.9),
  };
  return a;
}

AppProfile make_canneal() {
  AppProfile a{.name = "canneal1", .suite = "PARSEC 3.0",
               .app_class = AppClass::kCacheHungry, .phases = {}};
  a.phases = {
      phase("anneal", 24e9, 0.70, 0.015,
            MissRatioCurve::double_knee(0.20, 2.0 * MB, 0.45, 64.0 * MB, 0.08),
            0.25, 1.5),
  };
  return a;
}

AppProfile make_zeusmp() {
  AppProfile a{.name = "zeusmp1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kCacheHungry, .phases = {}};
  a.phases = {
      phase("hydro", 30e9, 0.58, 0.011,
            MissRatioCurve::double_knee(0.35, 3.0 * MB, 0.35, 12.0 * MB, 0.05),
            0.40, 3.0),
  };
  return a;
}

AppProfile make_sphinx() {
  AppProfile a{.name = "sphinx1", .suite = "SPEC CPU 2006",
               .app_class = AppClass::kCacheHungry, .phases = {}};
  a.phases = {
      phase("gmm", 26e9, 0.60, 0.010,
            MissRatioCurve::double_knee(0.40, 2.5 * MB, 0.35, 10.0 * MB, 0.04),
            0.20, 2.5),
      phase("search", 8e9, 0.68, 0.005,
            MissRatioCurve::single_knee(0.55, 3.0 * MB, 0.04, 1.5), 0.20, 2.0),
  };
  return a;
}

// ---------------------------------------------------------------------------
// Cache-friendly families (multi-input) and singles.
// ---------------------------------------------------------------------------

AppProfile make_gcc(int input, std::uint64_t seed) {
  const std::string name = "gcc_base" + std::to_string(input);
  Jitter j(seed, name);
  AppProfile a{.name = name, .suite = "SPEC CPU 2006",
               .app_class = AppClass::kCacheFriendly, .phases = {}};
  // Distinct reference inputs stress different pass mixes: working sets
  // from ~1.5 MB (small units) to ~7 MB (big translation units).
  const double ws = j.scale(1.5 * MB + 0.6 * MB * input, 0.10);
  const double api = j.scale(0.0090, 0.12);
  const double instr = j.scale(34e9, 0.10);
  a.phases = {
      phase("parse", instr * 0.3, 0.62, api * 0.8,
            MissRatioCurve::single_knee(0.55, ws * 0.6, 0.03, 1.5), 0.30, 2.4),
      phase("optimize", instr * 0.5, 0.58, api,
            MissRatioCurve::single_knee(0.60, ws, 0.035, 1.5), 0.30, 2.4),
      phase("emit", instr * 0.2, 0.60, api * 1.15,
            MissRatioCurve::single_knee(0.58, ws * 0.8, 0.03, 1.5), 0.35, 2.4),
  };
  return a;
}

AppProfile make_bzip2(int input, std::uint64_t seed) {
  const std::string name = "bzip2" + std::to_string(input);
  Jitter j(seed, name);
  AppProfile a{.name = name, .suite = "SPEC CPU 2006",
               .app_class = AppClass::kCacheFriendly, .phases = {}};
  const double ws = j.scale(1.2 * MB + 0.4 * MB * input, 0.10);
  const double api = j.scale(0.0070, 0.12);
  const double instr = j.scale(30e9, 0.10);
  // Compress / decompress alternation: the decompress phase has a smaller
  // working set and lower api.
  a.phases = {
      phase("compress", instr * 0.6, 0.66, api,
            MissRatioCurve::single_knee(0.50, ws, 0.04, 1.5), 0.30, 2.2),
      phase("decompress", instr * 0.4, 0.60, api * 0.7,
            MissRatioCurve::single_knee(0.45, ws * 0.5, 0.03, 1.5), 0.30, 2.2),
  };
  return a;
}

AppProfile make_soplex(int input, std::uint64_t seed) {
  const std::string name = "soplex" + std::to_string(input);
  Jitter j(seed, name);
  AppProfile a{.name = name, .suite = "SPEC CPU 2006",
               .app_class = AppClass::kCacheHungry, .phases = {}};
  const double ws = j.scale(input == 1 ? 5.0 * MB : 9.0 * MB, 0.10);
  const double api = j.scale(0.013, 0.10);
  a.phases = {
      phase("factor", 12e9, 0.62, api,
            MissRatioCurve::double_knee(0.35, ws * 0.4, 0.30, ws, 0.06), 0.35,
            2.6),
      phase("iterate", 16e9, 0.60, api * 1.1,
            MissRatioCurve::double_knee(0.30, ws * 0.4, 0.35, ws, 0.06), 0.35,
            2.6),
  };
  return a;
}

AppProfile make_astar(int input, std::uint64_t seed) {
  const std::string name = "astar" + std::to_string(input);
  Jitter j(seed, name);
  // input 1 (rivers) is cache-friendly; inputs 2-3 (BigLakes-like) hungrier.
  const bool big = input >= 2;
  AppProfile a{.name = name, .suite = "SPEC CPU 2006",
               .app_class = big ? AppClass::kCacheHungry
                                : AppClass::kCacheFriendly,
               .phases = {}};
  const double ws = j.scale(big ? 8.0 * MB : 2.2 * MB, 0.10);
  const double api = j.scale(big ? 0.011 : 0.007, 0.10);
  a.phases = {
      phase("pathfind", 26e9, 0.72, api,
            MissRatioCurve::double_knee(0.35, ws * 0.5, 0.30, ws, 0.04), 0.25,
            1.9),
  };
  return a;
}

AppProfile make_dedup() {
  AppProfile a{.name = "dedup1", .suite = "PARSEC 3.0",
               .app_class = AppClass::kCacheFriendly, .phases = {}};
  a.phases = {
      phase("chunk", 10e9, 0.60, 0.008,
            MissRatioCurve::single_knee(0.55, 3.0 * MB, 0.05, 1.5), 0.30, 2.5),
      phase("compress", 14e9, 0.62, 0.006,
            MissRatioCurve::single_knee(0.50, 2.0 * MB, 0.04, 1.5), 0.30, 2.5),
  };
  return a;
}

AppProfile make_fluidanimate() {
  AppProfile a{.name = "fluidanimate1", .suite = "PARSEC 3.0",
               .app_class = AppClass::kCacheFriendly, .phases = {}};
  a.phases = {
      phase("forces", 24e9, 0.58, 0.0060,
            MissRatioCurve::single_knee(0.52, 2.8 * MB, 0.05, 1.5), 0.35, 2.8),
  };
  return a;
}

AppProfile make_ferret() {
  AppProfile a{.name = "ferret1", .suite = "PARSEC 3.0",
               .app_class = AppClass::kCacheFriendly, .phases = {}};
  a.phases = {
      phase("rank", 26e9, 0.64, 0.0070,
            MissRatioCurve::double_knee(0.40, 2.0 * MB, 0.18, 6.0 * MB, 0.04),
            0.25, 2.3),
  };
  return a;
}

// ---------------------------------------------------------------------------
// Compute-bound families and singles: tiny api, insensitive to the LLC.
// ---------------------------------------------------------------------------

AppProfile compute_bound(std::string name, std::string suite, double cpi,
                         double api, double ws, double instr,
                         double floor = 0.03) {
  AppProfile a{.name = std::move(name), .suite = std::move(suite),
               .app_class = AppClass::kComputeBound, .phases = {}};
  a.phases = {
      phase("main", instr, cpi, api,
            MissRatioCurve::single_knee(std::max(0.0, 0.8 - floor), ws, floor,
                                        2.0),
            0.2, 2.0),
  };
  return a;
}

AppProfile make_gobmk(int input, std::uint64_t seed) {
  const std::string name = "gobmk" + std::to_string(input);
  Jitter j(seed, name);
  auto a = compute_bound(name, "SPEC CPU 2006", j.scale(0.66, 0.06),
                         j.scale(0.0030, 0.12), j.scale(2.2 * MB, 0.10),
                         j.scale(40e9, 0.10));
  return a;
}

AppProfile make_hmmer(int input, std::uint64_t seed) {
  const std::string name = "hmmer" + std::to_string(input);
  Jitter j(seed, name);
  return compute_bound(name, "SPEC CPU 2006", j.scale(0.45, 0.05),
                       j.scale(0.0016, 0.12), j.scale(1.4 * MB, 0.10),
                       j.scale(52e9, 0.10));
}

AppProfile make_h264ref(int input, std::uint64_t seed) {
  const std::string name = "h264ref" + std::to_string(input);
  Jitter j(seed, name);
  AppProfile a{.name = name, .suite = "SPEC CPU 2006",
               .app_class = AppClass::kComputeBound, .phases = {}};
  const double api = j.scale(0.0032, 0.12);
  const double ws = j.scale(2.4 * MB, 0.10);
  a.phases = {
      phase("me", j.scale(28e9, 0.08), 0.52, api,
            MissRatioCurve::single_knee(0.70, ws, 0.015, 1.5), 0.25, 2.2),
      phase("deblock", j.scale(12e9, 0.08), 0.55, api * 1.3,
            MissRatioCurve::single_knee(0.65, ws * 1.3, 0.02, 1.5), 0.25, 2.2),
  };
  return a;
}

AppProfile make_perlbench(int input, std::uint64_t seed) {
  const std::string name = "perlbench" + std::to_string(input);
  Jitter j(seed, name);
  return compute_bound(name, "SPEC CPU 2006", j.scale(0.58, 0.05),
                       j.scale(0.0040, 0.12), j.scale(3.0 * MB, 0.12),
                       j.scale(42e9, 0.10), 0.015);
}

}  // namespace

AppCatalog::AppCatalog(std::uint64_t seed) {
  profiles_.reserve(59);

  // --- SPEC CPU 2006: 8 multi-input applications (33 workloads) ---
  for (int i = 1; i <= 9; ++i) profiles_.push_back(make_gcc(i, seed));
  for (int i = 1; i <= 6; ++i) profiles_.push_back(make_bzip2(i, seed));
  for (int i = 1; i <= 5; ++i) profiles_.push_back(make_gobmk(i, seed));
  for (int i = 1; i <= 3; ++i) profiles_.push_back(make_h264ref(i, seed));
  for (int i = 1; i <= 3; ++i) profiles_.push_back(make_perlbench(i, seed));
  for (int i = 1; i <= 2; ++i) profiles_.push_back(make_hmmer(i, seed));
  for (int i = 1; i <= 2; ++i) profiles_.push_back(make_soplex(i, seed));
  for (int i = 1; i <= 3; ++i) profiles_.push_back(make_astar(i, seed));

  // --- SPEC CPU 2006: 17 single-input applications ---
  profiles_.push_back(make_mcf());
  profiles_.push_back(make_milc());
  profiles_.push_back(make_libquantum());
  profiles_.push_back(make_lbm());
  profiles_.push_back(make_leslie3d());
  profiles_.push_back(make_bwaves());
  profiles_.push_back(make_gemsfdtd());
  profiles_.push_back(make_omnetpp());
  profiles_.push_back(make_xalan());
  profiles_.push_back(make_zeusmp());
  profiles_.push_back(make_sphinx());
  // tonto/namd/povray/gromacs/calculix/sjeng: classic SPEC compute kernels.
  profiles_.push_back(compute_bound("tonto1", "SPEC CPU 2006", 0.60, 0.0034,
                                    2.6 * MB, 40e9));
  profiles_.push_back(compute_bound("namd1", "SPEC CPU 2006", 0.44, 0.0014,
                                    1.6 * MB, 56e9));
  profiles_.push_back(compute_bound("povray1", "SPEC CPU 2006", 0.50, 0.0010,
                                    1.2 * MB, 50e9));
  profiles_.push_back(compute_bound("gromacs1", "SPEC CPU 2006", 0.52, 0.0018,
                                    1.8 * MB, 48e9));
  profiles_.push_back(compute_bound("calculix1", "SPEC CPU 2006", 0.55, 0.0024,
                                    2.2 * MB, 46e9));
  profiles_.push_back(compute_bound("sjeng1", "SPEC CPU 2006", 0.68, 0.0030,
                                    2.6 * MB, 38e9));

  // --- PARSEC 3.0: 9 serial applications ---
  profiles_.push_back(make_streamcluster());
  profiles_.push_back(make_canneal());
  profiles_.push_back(make_dedup());
  profiles_.push_back(make_fluidanimate());
  profiles_.push_back(make_ferret());
  profiles_.push_back(compute_bound("blackscholes1", "PARSEC 3.0", 0.48,
                                    0.0008, 1.0 * MB, 50e9));
  profiles_.push_back(compute_bound("swaptions1", "PARSEC 3.0", 0.52, 0.0007,
                                    0.9 * MB, 48e9));
  profiles_.push_back(compute_bound("bodytrack1", "PARSEC 3.0", 0.56, 0.0026,
                                    2.4 * MB, 42e9));
  profiles_.push_back(compute_bound("freqmine1", "PARSEC 3.0", 0.60, 0.0044,
                                    3.2 * MB, 40e9, 0.04));

  if (profiles_.size() != 59) {
    throw std::logic_error("AppCatalog: expected 59 workloads, got " +
                           std::to_string(profiles_.size()));
  }
  // Guard against duplicate names (lookup relies on uniqueness).
  auto sorted = names();
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::logic_error("AppCatalog: duplicate workload name");
  }
}

void AppCatalog::add(AppProfile profile) {
  if (profile.name.empty() || profile.phases.empty()) {
    throw std::invalid_argument("AppCatalog::add: empty profile");
  }
  if (contains(profile.name)) {
    throw std::invalid_argument("AppCatalog::add: duplicate workload name " +
                                profile.name);
  }
  profiles_.push_back(std::move(profile));
}

const AppProfile& AppCatalog::by_name(const std::string& name) const {
  for (const auto& p : profiles_) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("AppCatalog: no workload named " + name);
}

bool AppCatalog::contains(const std::string& name) const noexcept {
  for (const auto& p : profiles_) {
    if (p.name == name) return true;
  }
  return false;
}

std::vector<std::string> AppCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& p : profiles_) out.push_back(p.name);
  return out;
}

std::vector<const AppProfile*> AppCatalog::of_class(AppClass c) const {
  std::vector<const AppProfile*> out;
  for (const auto& p : profiles_) {
    if (p.app_class == c) out.push_back(&p);
  }
  return out;
}

const AppCatalog& default_catalog() {
  static const AppCatalog catalog;
  return catalog;
}

}  // namespace dicer::sim
