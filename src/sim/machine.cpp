#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/log.hpp"
#include "util/trace.hpp"

namespace dicer::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      apps_(config.num_cores),
      masks_(config.num_cores, WayMask::full(config.llc.ways)),
      mem_throttle_(config.num_cores, 1.0),
      telemetry_(config.num_cores),
      ips_seed_(config.num_cores, 0.0),
      link_(config.link) {
  if (config_.num_cores == 0 || config_.num_cores > 64) {
    throw std::invalid_argument("Machine: core count outside 1..64");
  }
  if (config_.llc.ways == 0 || config_.llc.ways > kMaxWays) {
    throw std::invalid_argument("Machine: unsupported LLC way count");
  }
  if (config_.quantum_sec <= 0.0) {
    throw std::invalid_argument("Machine: quantum must be > 0");
  }
  if (config_.freq_hz <= 0.0) {
    throw std::invalid_argument("Machine: frequency must be > 0");
  }
}

void Machine::check_core(unsigned core) const {
  if (core >= config_.num_cores) {
    throw std::out_of_range("Machine: core " + std::to_string(core) +
                            " out of range");
  }
}

void Machine::attach(unsigned core, const AppProfile* profile) {
  check_core(core);
  if (apps_[core].has_value()) {
    throw std::logic_error("Machine::attach: core already occupied");
  }
  apps_[core].emplace(profile);
  ips_seed_[core] = 0.0;
}

void Machine::detach(unsigned core) {
  check_core(core);
  apps_[core].reset();
  telemetry_[core].occupancy_bytes = 0.0;
  telemetry_[core].last_quantum_ipc = 0.0;
  ips_seed_[core] = 0.0;
}

bool Machine::occupied(unsigned core) const {
  check_core(core);
  return apps_[core].has_value();
}

const AppRuntime& Machine::runtime(unsigned core) const {
  check_core(core);
  if (!apps_[core]) throw std::logic_error("Machine::runtime: core is idle");
  return *apps_[core];
}

AppRuntime& Machine::runtime(unsigned core) {
  check_core(core);
  if (!apps_[core]) throw std::logic_error("Machine::runtime: core is idle");
  return *apps_[core];
}

void Machine::set_fill_mask(unsigned core, WayMask mask) {
  check_core(core);
  if (mask.empty()) {
    throw std::invalid_argument("Machine::set_fill_mask: empty mask");
  }
  if (!WayMask::full(config_.llc.ways).contains(mask)) {
    throw std::invalid_argument(
        "Machine::set_fill_mask: mask exceeds cache ways: " +
        mask.to_string());
  }
  masks_[core] = mask;
}

WayMask Machine::fill_mask(unsigned core) const {
  check_core(core);
  return masks_[core];
}

void Machine::set_mem_throttle(unsigned core, double fraction) {
  check_core(core);
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument(
        "Machine::set_mem_throttle: fraction outside (0, 1]");
  }
  mem_throttle_[core] = fraction;
}

double Machine::mem_throttle(unsigned core) const {
  check_core(core);
  return mem_throttle_[core];
}

const CoreTelemetry& Machine::telemetry(unsigned core) const {
  check_core(core);
  return telemetry_[core];
}

void Machine::step() {
  const double dt = config_.quantum_sec;
  const double freq = config_.freq_hz;

  // Collect active cores.
  std::vector<unsigned> active;
  active.reserve(config_.num_cores);
  for (unsigned c = 0; c < config_.num_cores; ++c) {
    if (apps_[c]) active.push_back(c);
  }
  time_sec_ += dt;
  if (active.empty()) return;

  const std::size_t n = active.size();
  std::vector<WayMask> masks(n);
  std::vector<const AppPhase*> phase(n);
  for (std::size_t i = 0; i < n; ++i) {
    masks[i] = masks_[active[i]];
    phase[i] = &apps_[active[i]]->current_phase();
  }
  const auto regions =
      decompose_regions(masks, config_.llc.ways, config_.way_bytes());

  // Warm-started state.
  std::vector<double> ips(n), occ(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double seed = ips_seed_[active[i]];
    ips[i] = seed > 0.0 ? seed : freq / (phase[i]->cpi_core + 1.0);
  }

  std::vector<double> miss(n, 1.0), demand(n, 0.0);
  std::vector<CacheDemand> cache_demand(n);
  LinkArbitration arb;
  const double line = config_.llc.line_bytes;

  for (unsigned round = 0; round < config_.fixed_point_rounds; ++round) {
    // 1. Occupancy under current IPS estimates (Che working-set model).
    //    Each MRC component becomes a reuse component whose touch rate is
    //    proportional to its miss-mass weight.
    for (std::size_t i = 0; i < n; ++i) {
      const double touch = phase[i]->api * ips[i] * line;
      const double sf = phase[i]->mrc.stream_fraction();
      const auto& comps = phase[i]->mrc.components();
      double wsum = 0.0;
      for (const auto& c : comps) wsum += c.weight;
      cache_demand[i].reuse.clear();
      if (wsum > 0.0) {
        for (const auto& c : comps) {
          cache_demand[i].reuse.push_back(
              {touch * (1.0 - sf) * (c.weight / wsum), c.ws_bytes});
        }
      }
      cache_demand[i].stream_bytes_per_sec = touch * sf;
    }
    occ = solve_occupancy(regions, n, cache_demand, config_.occupancy);

    // 2. Miss ratios and bandwidth demand.
    for (std::size_t i = 0; i < n; ++i) {
      miss[i] = phase[i]->mrc.at(occ[i]);
      demand[i] =
          phase[i]->api * miss[i] * ips[i] * line * (1.0 + phase[i]->wb_ratio);
    }
    arb = link_.arbitrate(demand);

    // 3. New IPC estimates under the arbitrated latency; bandwidth cap when
    //    the link is oversubscribed. The LLC hit path is shared too: ring /
    //    LLC-port pressure from everyone's access rate inflates it.
    double total_accesses = 0.0;
    for (std::size_t i = 0; i < n; ++i) total_accesses += phase[i]->api * ips[i];
    const double hit_latency =
        config_.llc_hit_latency_cycles *
        (1.0 +
         config_.uncore_contention_coeff *
             std::sqrt(std::min(
                 total_accesses / config_.uncore_access_ref_per_sec, 1.0)));
    double worst_rel = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Cache starvation serialises reuse misses: degrade MLP with the
      // excess miss ratio above the app's best case.
      const double floor_m = phase[i]->mrc.floor();
      const double span_m = std::max(phase[i]->mrc.ceiling() - floor_m, 1e-9);
      const double excess = std::clamp((miss[i] - floor_m) / span_m, 0.0, 1.0);
      const double mlp_eff =
          phase[i]->mlp *
          (1.0 - config_.mlp_squeeze * excess);
      // An MBA throttle delays a core's memory requests: its exposed memory
      // latency stretches by 1/throttle, and its demand falls as its IPS
      // falls — the same route real MBA takes effect through.
      const double cpi =
          phase[i]->cpi_core +
          phase[i]->api *
              ((1.0 - miss[i]) * hit_latency +
               miss[i] * arb.effective_latency_cycles /
                   (mlp_eff * mem_throttle_[active[i]]));
      const double target = freq / cpi;
      const double next =
          config_.fixed_point_damping * target +
          (1.0 - config_.fixed_point_damping) * ips[i];
      worst_rel = std::max(worst_rel, std::fabs(next - ips[i]) /
                                          std::max(ips[i], 1.0));
      ips[i] = next;
    }
    if (worst_rel < 1e-4) break;
  }

  last_rho_ = arb.raw_utilisation;
  last_traffic_ = 0.0;
  for (double a : arb.achieved_bytes_per_sec) last_traffic_ += a;

  // Commit the quantum.
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned core = active[i];
    auto& tel = telemetry_[core];
    const double instructions = ips[i] * dt;
    const unsigned completed = apps_[core]->advance(instructions);
    tel.instructions += instructions;
    tel.active_cycles += freq * dt;
    tel.mem_bytes += arb.achieved_bytes_per_sec[i] * dt;
    tel.occupancy_bytes = occ[i];
    tel.completions += completed;
    tel.last_quantum_ipc = ips[i] / freq;
    ips_seed_[core] = ips[i];
  }

  auto& tr = trace::resolve(config_.tracer);
  if (tr.enabled(trace::Kind::kQuantum)) {
    std::vector<trace::Field> fields;
    fields.reserve(2 + 2 * n);
    fields.emplace_back("rho", last_rho_);
    fields.emplace_back("traffic_bps", last_traffic_);
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned core = active[i];
      fields.emplace_back("ipc_c" + std::to_string(core),
                          telemetry_[core].last_quantum_ipc);
      fields.emplace_back("occ_c" + std::to_string(core), occ[i]);
    }
    tr.emit(trace::Kind::kQuantum, time_sec_, std::move(fields));
  }
}

void Machine::run_for(double seconds) {
  const auto quanta = static_cast<std::uint64_t>(
      std::ceil(seconds / config_.quantum_sec - 1e-9));
  for (std::uint64_t q = 0; q < std::max<std::uint64_t>(quanta, 1); ++q) {
    step();
  }
}

}  // namespace dicer::sim
