#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "util/log.hpp"
#include "util/trace.hpp"

namespace dicer::sim {

bool env_disables(const char* name) noexcept {
  if (const char* env = std::getenv(name)) {
    return std::string_view(env) != "" && std::string_view(env) != "0";
  }
  return false;
}

namespace {

/// (Re)build the pure-function-of-phase fields of `pc` for `ph` and reset
/// the memo. One implementation serves both the per-core slots and the
/// batch-shared PhaseConstTable, so the two storage schemes cannot drift.
void build_phase_const(PhaseConst& pc, const AppPhase* ph) {
  pc.phase = ph;
  pc.sf = ph->mrc.stream_fraction();
  pc.one_minus_sf = 1.0 - pc.sf;
  pc.floor_m = ph->mrc.floor();
  pc.span_m = std::max(ph->mrc.ceiling() - pc.floor_m, 1e-9);
  const auto& comps = ph->mrc.components();
  double wsum = 0.0;
  for (const auto& c : comps) wsum += c.weight;
  pc.wfrac.clear();
  pc.ws.clear();
  if (wsum > 0.0) {
    pc.wfrac.reserve(comps.size());
    pc.ws.reserve(comps.size());
    for (const auto& c : comps) {
      pc.wfrac.push_back(c.weight / wsum);
      pc.ws.push_back(c.ws_bytes);
    }
  }
  pc.memo_occ = -1.0;
}

/// The damped fixed point over one lane's active set, operating on the
/// lane's flat scratch arrays in place. Pure code motion from
/// Machine::solve_quantum (identical operations in identical order, so the
/// floating-point results are bit-for-bit unchanged), parameterised on the
/// lane state so a lone machine and a batch lane share one implementation.
/// Returns true iff the final round reproduced every IPS bit-exactly;
/// `rounds_used` reports how many rounds ran.
bool solve_fixed_point(const MachineConfig& config,
                       const std::vector<CacheRegion>& regions,
                       MemoryLink& link,
                       const std::vector<double>& mem_throttle,
                       StepScratch& s, unsigned& rounds_used) {
  const std::size_t n = s.active.size();
  const double freq = config.freq_hz;
  const double line = config.llc.line_bytes;

  rounds_used = 0;
  bool stable = false;
  for (unsigned round = 0; round < config.fixed_point_rounds; ++round) {
    // 1. Occupancy under current IPS estimates (Che working-set model).
    //    Each MRC component becomes a reuse component whose touch rate is
    //    proportional to its miss-mass weight.
    for (std::size_t i = 0; i < n; ++i) {
      const AppPhase& ph = *s.phase[i];
      const PhaseConst& pc = *s.pc[i];
      const double touch = ph.api * s.ips[i] * line;
      auto& cd = s.cache_demand[i];
      const std::size_t comps = pc.wfrac.size();
      cd.reuse.resize(comps);
      for (std::size_t j = 0; j < comps; ++j) {
        cd.reuse[j].rate_bytes_per_sec =
            touch * pc.one_minus_sf * pc.wfrac[j];
        cd.reuse[j].footprint_bytes = pc.ws[j];
      }
      cd.stream_bytes_per_sec = touch * pc.sf;
    }
    solve_occupancy(regions, s.cache_demand, config.occupancy, s.occupancy,
                    s.occ);

    // 2. Miss ratios and bandwidth demand. Occupancies repeat across
    //    rounds/quanta in steady state, so each core memoises its last
    //    (occupancy, miss) evaluation.
    for (std::size_t i = 0; i < n; ++i) {
      PhaseConst& pc = *s.pc[i];
      if (s.occ[i] != pc.memo_occ) {
        pc.memo_occ = s.occ[i];
        pc.memo_miss = s.phase[i]->mrc.at(s.occ[i]);
      }
      s.miss[i] = pc.memo_miss;
      s.demand[i] = s.phase[i]->api * s.miss[i] * s.ips[i] * line *
                    (1.0 + s.phase[i]->wb_ratio);
    }
    link.arbitrate_into(s.demand, s.arb);

    // 3. New IPC estimates under the arbitrated latency; bandwidth cap when
    //    the link is oversubscribed. The LLC hit path is shared too: ring /
    //    LLC-port pressure from everyone's access rate inflates it.
    double total_accesses = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total_accesses += s.phase[i]->api * s.ips[i];
    }
    const double hit_latency =
        config.llc_hit_latency_cycles *
        (1.0 +
         config.uncore_contention_coeff *
             std::sqrt(std::min(
                 total_accesses / config.uncore_access_ref_per_sec, 1.0)));
    double worst_rel = 0.0;
    bool round_stable = true;
    for (std::size_t i = 0; i < n; ++i) {
      const AppPhase& ph = *s.phase[i];
      const PhaseConst& pc = *s.pc[i];
      // Cache starvation serialises reuse misses: degrade MLP with the
      // excess miss ratio above the app's best case.
      const double excess =
          std::clamp((s.miss[i] - pc.floor_m) / pc.span_m, 0.0, 1.0);
      const double mlp_eff =
          ph.mlp *
          (1.0 - config.mlp_squeeze * excess);
      // An MBA throttle delays a core's memory requests: its exposed memory
      // latency stretches by 1/throttle, and its demand falls as its IPS
      // falls — the same route real MBA takes effect through.
      const double cpi =
          ph.cpi_core +
          ph.api *
              ((1.0 - s.miss[i]) * hit_latency +
               s.miss[i] * s.arb.effective_latency_cycles /
                   (mlp_eff * mem_throttle[s.active[i]]));
      const double target = freq / cpi;
      const double next =
          config.fixed_point_damping * target +
          (1.0 - config.fixed_point_damping) * s.ips[i];
      if (next != s.ips[i]) round_stable = false;
      worst_rel = std::max(worst_rel, std::fabs(next - s.ips[i]) /
                                          std::max(s.ips[i], 1.0));
      s.ips[i] = next;
    }
    ++rounds_used;
    if (worst_rel < 1e-4) {
      // The damped update is idempotent once a round reproduces every IPS
      // bit-exactly (round_stable, i.e. worst_rel == 0): the remaining
      // rounds are provably no-ops. The looser tolerance break subsumes
      // that exit, so this preserves the exact historical exit round;
      // round_stable's job is to license cross-quantum replay.
      stable = round_stable;
      break;
    }
  }
  return stable;
}

}  // namespace

PhaseConst& PhaseConstTable::get(const AppPhase* phase) {
  const auto [it, inserted] = map_.try_emplace(phase);
  if (inserted) build_phase_const(it->second, phase);
  return it->second;
}

bool batch_stepping_enabled(const MachineConfig& config) noexcept {
  return config.batch_stepping && !env_disables("DICER_NO_BATCH");
}

void SolverStats::merge(const SolverStats& other) {
  quanta += other.quanta;
  replays += other.replays;
  solves += other.solves;
  stable_solves += other.stable_solves;
  unstable_solves += other.unstable_solves;
  invalidations_actuator += other.invalidations_actuator;
  invalidations_fingerprint += other.invalidations_fingerprint;
  if (rounds_hist.size() < other.rounds_hist.size()) {
    rounds_hist.resize(other.rounds_hist.size(), 0);
  }
  for (std::size_t r = 0; r < other.rounds_hist.size(); ++r) {
    rounds_hist[r] += other.rounds_hist[r];
  }
}

std::uint64_t SolverStats::total_rounds() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < rounds_hist.size(); ++r) {
    total += rounds_hist[r] * (r + 1);
  }
  return total;
}

Machine::Machine(const MachineConfig& config)
    : config_(config),
      apps_(config.num_cores),
      masks_(config.num_cores, WayMask::full(config.llc.ways)),
      mem_throttle_(config.num_cores, 1.0),
      telemetry_(config.num_cores),
      ips_seed_(config.num_cores, 0.0),
      link_(config.link),
      phase_const_(config.num_cores) {
  if (config_.num_cores == 0 || config_.num_cores > 64) {
    throw std::invalid_argument("Machine: core count outside 1..64");
  }
  if (config_.llc.ways == 0 || config_.llc.ways > kMaxWays) {
    throw std::invalid_argument("Machine: unsupported LLC way count");
  }
  if (config_.quantum_sec <= 0.0) {
    throw std::invalid_argument("Machine: quantum must be > 0");
  }
  if (config_.freq_hz <= 0.0) {
    throw std::invalid_argument("Machine: frequency must be > 0");
  }
  if (env_disables("DICER_NO_SOLVER_SHORTCUTS")) {
    config_.solver_shortcuts = false;
  }
  config_.batch_stepping = batch_stepping_enabled(config_);
  stats_.rounds_hist.assign(std::max(config_.fixed_point_rounds, 1u), 0);
}

void Machine::check_core(unsigned core) const {
  if (core >= config_.num_cores) {
    throw std::out_of_range("Machine: core " + std::to_string(core) +
                            " out of range");
  }
}

void Machine::invalidate_regions() noexcept {
  regions_valid_ = false;
  scratch_.occupancy.invalidate();
  invalidate_solve();
}

void Machine::invalidate_solve() noexcept {
  if (solve_cache_.armed) {
    solve_cache_.armed = false;
    ++stats_.invalidations_actuator;
  }
}

void Machine::refresh_regions() {
  if (regions_valid_) return;
  scratch_.active_masks.clear();
  for (unsigned c = 0; c < config_.num_cores; ++c) {
    if (apps_[c]) scratch_.active_masks.push_back(masks_[c]);
  }
  regions_ = decompose_regions(scratch_.active_masks, config_.llc.ways,
                               config_.way_bytes());
  regions_valid_ = true;
}

const std::vector<CacheRegion>& Machine::current_regions() {
  refresh_regions();
  return regions_;
}

void Machine::attach(unsigned core, const AppProfile* profile) {
  check_core(core);
  if (apps_[core].has_value()) {
    throw std::logic_error("Machine::attach: core already occupied");
  }
  apps_[core].emplace(profile);
  ips_seed_[core] = 0.0;
  phase_const_[core].phase = nullptr;
  invalidate_regions();
}

void Machine::detach(unsigned core) {
  check_core(core);
  apps_[core].reset();
  telemetry_[core].occupancy_bytes = 0.0;
  telemetry_[core].last_quantum_ipc = 0.0;
  ips_seed_[core] = 0.0;
  // The departing tenant's actuator state must not leak to the next one:
  // reclaiming a core resets its partition and throttle to the defaults,
  // like an orchestrator returning the core's CLOS to CLOS0.
  masks_[core] = WayMask::full(config_.llc.ways);
  mem_throttle_[core] = 1.0;
  phase_const_[core].phase = nullptr;
  invalidate_regions();
}

bool Machine::occupied(unsigned core) const {
  check_core(core);
  return apps_[core].has_value();
}

const AppRuntime& Machine::runtime(unsigned core) const {
  check_core(core);
  if (!apps_[core]) throw std::logic_error("Machine::runtime: core is idle");
  return *apps_[core];
}

AppRuntime& Machine::runtime(unsigned core) {
  check_core(core);
  if (!apps_[core]) throw std::logic_error("Machine::runtime: core is idle");
  return *apps_[core];
}

void Machine::set_fill_mask(unsigned core, WayMask mask) {
  check_core(core);
  if (mask.empty()) {
    throw std::invalid_argument("Machine::set_fill_mask: empty mask");
  }
  if (!WayMask::full(config_.llc.ways).contains(mask)) {
    throw std::invalid_argument(
        "Machine::set_fill_mask: mask exceeds cache ways: " +
        mask.to_string());
  }
  if (masks_[core] != mask) {
    masks_[core] = mask;
    invalidate_regions();
  }
}

WayMask Machine::fill_mask(unsigned core) const {
  check_core(core);
  return masks_[core];
}

void Machine::set_mem_throttle(unsigned core, double fraction) {
  check_core(core);
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument(
        "Machine::set_mem_throttle: fraction outside (0, 1]");
  }
  if (mem_throttle_[core] != fraction) {
    mem_throttle_[core] = fraction;
    invalidate_solve();
  }
}

double Machine::mem_throttle(unsigned core) const {
  check_core(core);
  return mem_throttle_[core];
}

const CoreTelemetry& Machine::telemetry(unsigned core) const {
  check_core(core);
  return telemetry_[core];
}

void Machine::step() {
  const double dt = config_.quantum_sec;
  const double freq = config_.freq_hz;
  auto& s = scratch_;

  // Collect active cores.
  s.active.clear();
  for (unsigned c = 0; c < config_.num_cores; ++c) {
    if (apps_[c]) s.active.push_back(c);
  }
  time_sec_ += dt;
  if (s.active.empty()) return;

  const std::size_t n = s.active.size();
  ++stats_.quanta;

  // Current phase per active core — both the replay fingerprint and the
  // solve key off it. (An app that completed and restarted into the same
  // phase is the same solver input: the solve depends on the phase, not on
  // the position within it.)
  s.phase.clear();
  for (std::size_t i = 0; i < n; ++i) {
    s.phase.push_back(&apps_[s.active[i]]->current_phase());
  }

  bool replayed = false;
  if (solve_cache_.armed) {
    if (s.active == solve_cache_.active && s.phase == solve_cache_.phase) {
      // Identical inputs, and the previous solve ended on a round that
      // reproduced every IPS bit-exactly: re-running the fixed point would
      // retrace that round and change nothing, so the scratch state
      // (ips/occ/arbitration) and last_rho_/last_traffic_ already hold this
      // quantum's exact solution. Only progress and telemetry move.
      replayed = true;
      ++stats_.replays;
    } else {
      solve_cache_.armed = false;
      ++stats_.invalidations_fingerprint;
    }
  }

  if (!replayed) {
    const bool stable = solve_quantum();
    last_rho_ = s.arb.raw_utilisation;
    last_traffic_ = s.arb.total_achieved_bytes_per_sec;
    if (stable && config_.solver_shortcuts) {
      solve_cache_.armed = true;
      solve_cache_.active = s.active;
      solve_cache_.phase = s.phase;
    }
  }

  // Commit the quantum.
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned core = s.active[i];
    auto& tel = telemetry_[core];
    const double instructions = s.ips[i] * dt;
    const unsigned completed = apps_[core]->advance(instructions);
    tel.instructions += instructions;
    tel.active_cycles += freq * dt;
    tel.mem_bytes += s.arb.achieved_bytes_per_sec[i] * dt;
    tel.occupancy_bytes = s.occ[i];
    tel.completions += completed;
    tel.last_quantum_ipc = s.ips[i] / freq;
    ips_seed_[core] = s.ips[i];
  }

  auto& tr = trace::resolve(config_.tracer);
  if (tr.enabled(trace::Kind::kQuantum)) {
    std::vector<trace::Field> fields;
    fields.reserve(2 + 2 * n);
    fields.emplace_back("rho", last_rho_);
    fields.emplace_back("traffic_bps", last_traffic_);
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned core = s.active[i];
      fields.emplace_back("ipc_c" + std::to_string(core),
                          telemetry_[core].last_quantum_ipc);
      fields.emplace_back("occ_c" + std::to_string(core), s.occ[i]);
    }
    tr.emit(trace::Kind::kQuantum, time_sec_, std::move(fields));
  }
}

bool Machine::solve_quantum() {
  auto& s = scratch_;
  const std::size_t n = s.active.size();
  const double freq = config_.freq_hz;
  refresh_regions();

  s.pc.clear();
  s.ips.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned core = s.active[i];
    const AppPhase* ph = s.phase[i];
    PhaseConst* pc;
    if (shared_phases_) {
      // Batched: one PhaseConst per distinct phase across every lane of the
      // batch. Same values as the per-core slot (both are built by
      // build_phase_const and the memo is value-pure), one copy instead of
      // cores x machines.
      pc = &shared_phases_->get(ph);
    } else {
      pc = &phase_const_[core];
      if (pc->phase != ph) build_phase_const(*pc, ph);
    }
    s.pc.push_back(pc);

    // Warm-started state.
    const double seed = ips_seed_[core];
    s.ips[i] = seed > 0.0 ? seed : freq / (ph->cpi_core + 1.0);
  }

  s.occ.assign(n, 0.0);
  s.miss.assign(n, 1.0);
  s.demand.assign(n, 0.0);
  s.cache_demand.resize(n);

  unsigned rounds_used = 0;
  const bool stable =
      solve_fixed_point(config_, regions_, link_, mem_throttle_, s,
                        rounds_used);

  ++stats_.solves;
  if (rounds_used > 0) {
    const std::size_t slot =
        std::min<std::size_t>(rounds_used, stats_.rounds_hist.size()) - 1;
    ++stats_.rounds_hist[slot];
  }
  if (stable) {
    ++stats_.stable_solves;
  } else {
    ++stats_.unstable_solves;
  }
  return stable;
}

void Machine::run_for(double seconds) {
  const auto quanta = static_cast<std::uint64_t>(
      std::ceil(seconds / config_.quantum_sec - 1e-9));
  for (std::uint64_t q = 0; q < std::max<std::uint64_t>(quanta, 1); ++q) {
    step();
  }
}

void Machine::run_until(double t_sec) {
  while (time_sec_ < t_sec - 1e-9) step();
}

}  // namespace dicer::sim
