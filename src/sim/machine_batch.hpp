// sim::MachineBatch — batched quantum stepping over a group of machines
// sharing one catalog of app profiles.
//
// A batch holds N independent machines ("lanes") in structure-of-arrays
// layout: flat lane-major slot arenas (one slot per active core) for the
// per-quantum commit state — app-runtime and telemetry pointers, the phase
// each slot was solved for, and the precomputed per-quantum instruction
// and memory-byte increments — plus one deduplicated PhaseConstTable every
// lane's solves resolve through (one PhaseConst per distinct phase across
// the batch, instead of one per core per machine).
//
// The speed comes from *fusing* the steady-state replay path of PR 4.
// A serial replayed Machine::step still rebuilds the active-core and phase
// vectors, compares them against the solve-cache fingerprint, and walks
// the commit loop through scattered per-machine state. A fused lane has
// already proven the fingerprint holds (the snapshot verified every slot's
// phase, and nothing that could change the answer has happened since —
// actuators disarm the solve cache, external steps bump the quantum
// counter, phase drift is caught slot-by-slot as it happens), so a fused
// step is just the commit: advance each slot by its precomputed
// instruction count and bump its telemetry from the flat arrays. Every
// value written is bit-identical to what the serial replay path writes —
// the same products of the same operands — and writes the replay path
// would make with unchanged values (occupancy, last-quantum IPC, the IPS
// seed) are skipped, which no observer can distinguish. Lanes whose
// machines never arm (solver shortcuts off, churn-heavy phases) simply
// fall back to Machine::step every quantum and are byte-identical by
// construction.
//
// Guarantees and contract:
//   - Results are byte-identical to stepping each machine serially, for
//     every observable: telemetry, solver stats, trace events, link state.
//     Equivalence tests pin this under randomized actuator churn.
//   - MachineConfig::batch_stepping (and the DICER_NO_BATCH env override)
//     is the escape hatch: with it off, lanes never fuse.
//   - Machines must outlive the batch; a machine can be in at most one
//     batch at a time. Actuating a lane's machine (attach/detach/masks/
//     throttles) between steps is fully supported — that is how the sweep
//     and fleet consumers drive their policies. Mutating a lane's
//     AppRuntime objects directly (reset()) while the batch is live is
//     not.
//   - A batch is driven by one thread at a time (consumers shard work as
//     one batch per task); distinct batches are fully independent.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace dicer::trace {
class Tracer;
}

namespace dicer::sim {

class MachineBatch {
 public:
  /// Fast-path accounting (diagnostics only — never part of results).
  struct Stats {
    std::uint64_t fused_quanta = 0;    ///< quanta committed by the fused path
    std::uint64_t fallback_steps = 0;  ///< quanta delegated to Machine::step
    std::uint64_t snapshots = 0;       ///< lane snapshots (re)taken
  };

  MachineBatch() = default;
  ~MachineBatch();

  MachineBatch(const MachineBatch&) = delete;
  MachineBatch& operator=(const MachineBatch&) = delete;

  /// Enroll `machine` as a new lane and return its lane index. Installs the
  /// batch's shared PhaseConstTable on the machine (cleared again by the
  /// batch destructor). Throws std::logic_error if the machine is already
  /// in a batch.
  unsigned add(Machine& machine);

  std::size_t size() const noexcept { return lanes_.size(); }
  Machine& machine(unsigned lane) { return *lanes_.at(lane).m; }
  const Machine& machine(unsigned lane) const { return *lanes_.at(lane).m; }

  /// Advance lane by one quantum — bit-equal to lane's Machine::step().
  void step(unsigned lane);
  /// Advance lane by `seconds` in whole quanta — bit-equal to
  /// Machine::run_for (same rounding, >= 1 quantum).
  void run_for(unsigned lane, double seconds);
  /// Advance lane until its time_sec() >= t_sec — bit-equal to
  /// Machine::run_until (never overshoots the boundary).
  void run_until(unsigned lane, double t_sec);

  const Stats& stats() const noexcept { return stats_; }
  /// Distinct phases the batch has solved for (table occupancy).
  std::size_t shared_phase_count() const noexcept { return phases_.size(); }

 private:
  struct Lane {
    Machine* m = nullptr;
    trace::Tracer* tracer = nullptr;  ///< resolved once at add()
    std::size_t offset = 0;  ///< this lane's base slot in the arenas
    std::size_t slots = 0;   ///< active slots while fused
    bool fused = false;
    /// The machine's quantum counter as of the last batch-driven step:
    /// a mismatch at step entry means someone stepped the machine outside
    /// the batch, so the snapshot may be stale and the lane unfuses.
    std::uint64_t expect_quanta = 0;
    /// Quanta every slot can provably advance without reaching its phase
    /// boundary: min over slots of floor(phase_remaining / instr) with a
    /// 2-quantum margin for accumulated rounding, computed at snapshot
    /// time. While the budget lasts a fused commit needs no phase loads,
    /// no boundary predicate and no drift check — and run_for/run_until
    /// commit whole within-budget chunks slot-major with the accumulators
    /// held in registers (fused_run). Once spent, quanta fall back to the
    /// boundary-checking single-step path until the next snapshot refills
    /// it.
    std::uint64_t budget = 0;
    double dt = 0.0;                  ///< config.quantum_sec
    double cycles_per_quantum = 0.0;  ///< freq_hz * quantum_sec
  };

  /// Everything a serial step's fingerprint compare establishes, checked
  /// incrementally (see step() for the per-condition rationale).
  bool fused_ready(const Lane& lane, const Machine& m) const;

  /// Commit one replayed quantum for a fused lane straight from the slot
  /// arenas (the serial replay path minus the redundant work).
  void fused_step(Lane& lane, Machine& m);
  /// Commit `quanta` replayed quanta at once for a fused lane whose budget
  /// covers them — slot-major, accumulators in registers. Performs exactly
  /// the per-quantum additions fused_step would, in the same order per
  /// accumulator chain, so the result is bit-identical to `quanta` single
  /// steps.
  void fused_run(Lane& lane, Machine& m, std::uint64_t quanta);
  /// Capture the lane's post-solve state into the slot arenas if the
  /// machine's solve cache is armed and no slot's phase drifted during the
  /// arming step's own commit.
  void try_snapshot(Lane& lane, Machine& m);
  /// Recompute the lane budget from every slot's current phase_remaining().
  /// Valid whenever the lane is fused (each slot is then still inside its
  /// snapshot phase, and the per-quantum increments are unchanged while the
  /// solve cache is armed) — so a lane that stays fused across a whole-run
  /// restart into the same phase re-earns a budget without a snapshot.
  /// Returns the new budget.
  std::uint64_t refill_budget(Lane& lane);

  PhaseConstTable phases_;
  std::vector<Lane> lanes_;
  /// SoA slot arenas, lane-major: lane k owns slots
  /// [lanes_[k].offset, lanes_[k].offset + machine cores). Parallel arrays
  /// so the fused commit loop streams through flat memory.
  std::vector<AppRuntime*> slot_rt_;
  std::vector<CoreTelemetry*> slot_tel_;
  /// Phase *index* each slot was solved for. A slot's solved phase pointer
  /// is &profile->phases[idx] with both profile and vector fixed for an
  /// attached app, so an index compare is exactly the pointer compare the
  /// serial fingerprint makes — without the out-of-line current_phase()
  /// call in the commit loop.
  std::vector<std::size_t> slot_phase_idx_;
  std::vector<double> slot_instr_;   ///< ips * dt, the exact serial product
  std::vector<double> slot_dbytes_;  ///< achieved_bytes_per_sec * dt
  Stats stats_;
};

}  // namespace dicer::sim
