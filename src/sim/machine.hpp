// The simulated server: N cores, a way-partitioned LLC, one memory link.
//
// Geometry defaults mirror the paper's testbed (Table 1): Intel Xeon
// E5-2630 v4, 10 cores at 2.2 GHz, 25 MB 20-way LLC, 68.3 Gbps memory link.
//
// Time advances in quanta (default 10 ms — 100 model steps per 1 s
// monitoring period). Each quantum solves a coupled fixed point between
// three sub-models:
//
//   occupancy  <- competitive sharing of each way-region given miss pressure
//   bandwidth  <- per-app demand = api * miss_ratio * IPS * line * (1 + wb)
//   IPC        <- CPI = cpi_core + api * ((1-m)*lat_llc + m*lat_mem(rho)),
//                 capped by the app's achieved bandwidth share when the
//                 link is oversubscribed
//
// because occupancy depends on IPS (pressure), IPS depends on latency,
// and latency depends on everyone's bandwidth, which depends on IPS.
// The loop warm-starts from the previous quantum and converges in a few
// damped rounds.
//
// The Machine knows nothing about policies or priorities: it exposes
// exactly the actuator CAT has (a fill mask per core) and the observables
// CMT/MBM/perf have (occupancy, memory traffic, instructions, cycles).
// The rdt:: layer adapts those to a pqos-like API.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/cache/occupancy_model.hpp"
#include "sim/cache/set_assoc_cache.hpp"
#include "sim/cache/way_mask.hpp"
#include "sim/core/app_profile.hpp"
#include "sim/mem/memory_link.hpp"

namespace dicer::trace {
class Tracer;
}

namespace dicer::sim {

struct MachineConfig {
  unsigned num_cores = 10;
  /// Convergence shortcuts for the quantum solve: once a fixed-point round
  /// reproduces every per-core IPS bit-exactly, the solve is at a
  /// floating-point fixed point, and a later quantum whose inputs
  /// (active set, per-core phase, fill masks, MBA throttles) are unchanged
  /// replays the cached solution instead of re-running the rounds. Results
  /// are byte-identical either way — the flag (and the
  /// DICER_NO_SOLVER_SHORTCUTS env override, any value but "" or "0")
  /// exists so equivalence tests can pit the two paths against each other.
  bool solver_shortcuts = true;
  /// Allow a sim::MachineBatch to drive this machine's steady-state quanta
  /// through the batched fused-replay path. Like the solver shortcuts, the
  /// batched path is byte-identical to serial Machine::step by construction
  /// — the flag (and the DICER_NO_BATCH env override, any value but "" or
  /// "0") exists as an escape hatch and so equivalence tests can pit the
  /// two paths against each other. Consumers that choose a chunking before
  /// any machine exists consult batch_stepping_enabled().
  bool batch_stepping = true;
  double freq_hz = 2.2e9;
  CacheGeometry llc{};                   ///< 25 MB, 20-way, 64 B lines
  MemoryLinkConfig link{};               ///< 68.3 Gbps
  double llc_hit_latency_cycles = 42.0;  ///< L2-miss-LLC-hit round trip
  /// Uncore (ring / LLC port) contention: the hit latency every core sees
  /// inflates with the aggregate LLC access rate,
  ///   lat_hit_eff = lat_hit * (1 + coeff * sqrt(min(total_accesses/ref, 1)))
  /// (concave: even a few busy neighbours queue on the ring, then the
  /// effect saturates).
  /// This is interference CAT cannot remove (partitioning does not reduce
  /// how often neighbours *access* the LLC) and it is the main reason the
  /// paper finds CT offering "no improvement" for ~60 % of workloads.
  double uncore_contention_coeff = 0.28;
  double uncore_access_ref_per_sec = 1.3e8;
  /// MLP collapse under cache starvation: misses to *re-used* data carry
  /// dependencies, so when an app is squeezed far above its best-case miss
  /// ratio its memory-level parallelism degrades towards serial,
  ///   mlp_eff = mlp * (1 - mlp_squeeze * excess),
  /// excess = (m - floor) / (ceiling - floor) in [0, 1]. Streaming apps
  /// (m ~ floor always) are unaffected — their overlap is by construction.
  /// This is what makes CT's one-way BEs collapse the way the paper's
  /// Fig 5/6 BE series do.
  double mlp_squeeze = 0.5;
  double quantum_sec = 0.010;
  unsigned fixed_point_rounds = 8;
  double fixed_point_damping = 0.5;
  OccupancySolverConfig occupancy{};
  /// Event sink for per-quantum counters (trace::Kind::kQuantum: rho,
  /// achieved traffic, per-core IPC and LLC occupancy). Null resolves to
  /// the process-global tracer; the kind is outside the default mask, so
  /// quanta are only recorded when a consumer opts in (the timeline bench
  /// does) — the steady-state cost is one relaxed atomic load per step.
  trace::Tracer* tracer = nullptr;

  double way_bytes() const noexcept {
    return static_cast<double>(llc.way_bytes());
  }
};

/// Counters for the convergence-aware quantum solve. `quanta` splits into
/// `replays` (served from the steady-state cache) and `solves` (ran the
/// fixed point); solves split into bit-stable and unstable exits; the
/// histogram records how many rounds each solve used. Invalidation causes
/// count only drops of an *armed* replay cache, by who dropped it.
struct SolverStats {
  std::uint64_t quanta = 0;   ///< step() calls with >= 1 active core
  std::uint64_t replays = 0;  ///< quanta replayed without solving
  std::uint64_t solves = 0;   ///< quanta that ran the fixed point
  std::uint64_t stable_solves = 0;    ///< last round reproduced IPS bit-exactly
  std::uint64_t unstable_solves = 0;  ///< exited above bit-stability
  std::uint64_t invalidations_actuator = 0;    ///< attach/detach/mask/throttle
  std::uint64_t invalidations_fingerprint = 0; ///< phase / active-set drift
  std::vector<std::uint64_t> rounds_hist;  ///< rounds used per solve, at r-1

  /// Accumulate `other` into this (histograms are size-matched by growth).
  void merge(const SolverStats& other);
  /// Sum of rounds over all solves (the histogram's first moment).
  std::uint64_t total_rounds() const noexcept;
};

/// Cumulative per-core counters, in hardware-counter style: monitors take
/// deltas, the machine never resets them.
struct CoreTelemetry {
  double instructions = 0.0;     ///< retired
  double active_cycles = 0.0;    ///< cycles with an app attached
  double mem_bytes = 0.0;        ///< achieved memory traffic
  double occupancy_bytes = 0.0;  ///< current LLC holding (state, not counter)
  std::uint64_t completions = 0; ///< whole-app runs finished
  double last_quantum_ipc = 0.0; ///< diagnostic convenience
};

/// Per-phase constants hoisted out of the fixed-point rounds: they only
/// change when the app on the core enters a new phase (or the core is
/// re-attached), not once per round of every quantum. `phase` is the
/// identity key; all fields but the memo pair are pure functions of that
/// phase, which is what lets a MachineBatch share one PhaseConst per
/// distinct phase across every lane.
struct PhaseConst {
  const AppPhase* phase = nullptr;
  double sf = 0.0;            ///< mrc.stream_fraction()
  double one_minus_sf = 1.0;  ///< 1 - sf, as the demand split computes it
  double floor_m = 0.0;       ///< mrc.floor()
  double span_m = 1e-9;       ///< max(mrc.ceiling() - floor, 1e-9)
  std::vector<double> wfrac;  ///< weight_j / sum(weights); empty if sum<=0
  std::vector<double> ws;     ///< component working-set bytes (with wfrac)
  double memo_occ = -1.0;     ///< last mrc.at() argument on this core
  double memo_miss = 1.0;     ///< and its value (occupancies repeat in
                              ///< steady state; at() is pow-heavy)
};

/// Deduplicated PhaseConst storage keyed by phase identity: machines in a
/// MachineBatch share one table, so N lanes running the same app build (and
/// keep hot) one PhaseConst per distinct phase instead of one per core per
/// machine. The memo pair is value-safe to share — mrc.at() is pure, so a
/// memo refresh from any lane reproduces the exact value every lane would
/// compute. Node-based map: references stay stable across inserts.
/// Not thread-safe; a batch (and thus its table) is driven by one thread
/// at a time.
class PhaseConstTable {
 public:
  /// The shared PhaseConst for `phase`, built on first use.
  PhaseConst& get(const AppPhase* phase);
  std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<const AppPhase*, PhaseConst> map_;
};

/// Buffers reused across quanta so the steady-state step() performs no
/// heap allocation. Sized to the active-app count each step; one lane's
/// arrays are the flat per-slot state the fixed point iterates over.
struct StepScratch {
  std::vector<unsigned> active;
  std::vector<WayMask> active_masks;
  std::vector<const AppPhase*> phase;
  std::vector<PhaseConst*> pc;
  std::vector<double> ips;
  std::vector<double> occ;
  std::vector<double> miss;
  std::vector<double> demand;
  std::vector<CacheDemand> cache_demand;
  LinkArbitration arb;
  OccupancyScratch occupancy;
};

/// True when the env var `name` is set to anything but "" or "0" — the
/// shared shape of every DICER_NO_* escape hatch (DICER_NO_BATCH,
/// DICER_NO_SOLVER_SHORTCUTS, DICER_NO_PLACEMENT_INDEX).
bool env_disables(const char* name) noexcept;

/// Whether batched stepping is in force for machines built from `config`:
/// the config flag, unless the DICER_NO_BATCH env override (any value but
/// "" or "0") vetoes it. Consumers (sweep chunking, fleet sharding) call
/// this before any Machine exists; Machine's constructor resolves the same
/// answer into config().batch_stepping.
bool batch_stepping_enabled(const MachineConfig& config) noexcept;

class MachineBatch;

class Machine {
 public:
  explicit Machine(const MachineConfig& config = {});

  const MachineConfig& config() const noexcept { return config_; }
  unsigned num_cores() const noexcept { return config_.num_cores; }
  unsigned num_ways() const noexcept { return config_.llc.ways; }
  double time_sec() const noexcept { return time_sec_; }

  /// Attach an application to a core (throws if occupied / out of range).
  void attach(unsigned core, const AppProfile* profile);
  /// Detach (idempotent). Telemetry counters are preserved, but the core's
  /// actuator state — fill mask and memory throttle — reverts to the
  /// defaults (full mask, no throttle) so the next tenant does not inherit
  /// the previous one's partition.
  void detach(unsigned core);
  bool occupied(unsigned core) const;
  /// The runtime of the app on `core`; throws if none.
  const AppRuntime& runtime(unsigned core) const;
  AppRuntime& runtime(unsigned core);

  /// CAT actuator: set the fill mask for a core. Must be non-empty and
  /// within the cache's ways. (Contiguity is enforced by rdt::CatController,
  /// like real hardware does at the CLOS level, not here.)
  void set_fill_mask(unsigned core, WayMask mask);
  WayMask fill_mask(unsigned core) const;

  /// MBA actuator: cap a core's memory request rate to `fraction` of its
  /// demand (MBA-style delay throttling), fraction in (0, 1].
  void set_mem_throttle(unsigned core, double fraction);
  double mem_throttle(unsigned core) const;

  /// Advance one quantum (config().quantum_sec).
  void step();
  /// Advance by `seconds` in whole quanta (rounds up to >= 1 quantum).
  void run_for(double seconds);
  /// Advance until time_sec() >= t_sec (no-op if already there). Unlike
  /// run_for, never overshoots by a whole interval — the fleet layer uses
  /// it to land every machine exactly on an epoch boundary.
  void run_until(double t_sec);

  const CoreTelemetry& telemetry(unsigned core) const;

  /// Link utilisation of the last quantum (rho, possibly > 1 pre-throttle).
  double last_link_utilisation() const noexcept { return last_rho_; }
  /// Total achieved memory traffic rate of the last quantum (bytes/s).
  double last_link_traffic() const noexcept { return last_traffic_; }

  /// The way-region decomposition the next step() will use, rebuilt on
  /// demand. The decomposition is cached across quanta — fill masks change
  /// at most once per control period, not once per 10 ms quantum — and
  /// invalidated by set_fill_mask / attach / detach. Exposed so tests can
  /// assert the cache tracks every actuator path.
  const std::vector<CacheRegion>& current_regions();

  /// Convergence/replay counters since construction (never reset).
  const SolverStats& solver_stats() const noexcept { return stats_; }

 private:
  /// Fingerprint of the inputs behind the last bit-stable solve. While
  /// armed, a quantum whose active-core list and per-core phase pointers
  /// match replays the scratch state (ips/occ/arbitration) verbatim —
  /// exact, because a bit-stable solve is a floating-point fixed point and
  /// re-running it on the same inputs reproduces every bit. Masks and MBA
  /// throttles need no per-step compare: their actuators disarm the cache
  /// on any real change.
  struct SolveCache {
    bool armed = false;
    std::vector<unsigned> active;
    std::vector<const AppPhase*> phase;
  };

  void check_core(unsigned core) const;
  void refresh_regions();
  void invalidate_regions() noexcept;
  void invalidate_solve() noexcept;
  /// Run the fixed point for the current quantum (scratch holds the
  /// result); returns true iff the final round reproduced every IPS
  /// bit-exactly.
  bool solve_quantum();

  /// MachineBatch snapshots the scratch/solve-cache state to fuse replayed
  /// quanta and installs shared_phases_; everything it reads or writes is
  /// exactly what a serial replayed step() would.
  friend class MachineBatch;

  MachineConfig config_;
  double time_sec_ = 0.0;
  std::vector<std::optional<AppRuntime>> apps_;
  std::vector<WayMask> masks_;
  std::vector<double> mem_throttle_;
  std::vector<CoreTelemetry> telemetry_;
  std::vector<double> ips_seed_;  ///< warm start for the fixed point
  MemoryLink link_;
  double last_rho_ = 0.0;
  double last_traffic_ = 0.0;
  std::vector<PhaseConst> phase_const_;  ///< per core (unbatched machines)
  /// Batch-shared PhaseConst storage: set by MachineBatch::add, cleared by
  /// the batch's destructor. While set, solve_quantum resolves PhaseConsts
  /// through the table instead of the per-core slots — same values either
  /// way, one copy per distinct phase across the whole batch.
  PhaseConstTable* shared_phases_ = nullptr;
  std::vector<CacheRegion> regions_;     ///< cached decomposition
  bool regions_valid_ = false;
  StepScratch scratch_;
  SolveCache solve_cache_;
  SolverStats stats_;
};

}  // namespace dicer::sim
