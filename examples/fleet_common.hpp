// Shared plumbing for the fleet front-ends (fleet_sim, fleet_top): the
// common --machines/--cores/... -> FleetConfig mapping plus the standard
// observability flags, matching bench_common.hpp:
//
//   --log-level L      debug|info|warn|error|off (same as DICER_LOG; the
//                      flag wins over the env var)
//   --trace PATH       record structured trace events to PATH — JSONL, or
//                      CSV when PATH ends in .csv (same as DICER_TRACE)
//   --profile          print the scoped-timer profile (fleet.epoch /
//                      fleet.placement / fleet.step / fleet.reduce) to
//                      stderr on exit
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "fleet/cluster.hpp"
#include "sim/core/trace_apps.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace dicer::examples {

/// The fleet-shape flags shared by every fleet front-end. Defaults match
/// fleet_sim's documented ones; callers override per-binary defaults by
/// passing them through `args`.
inline fleet::FleetConfig fleet_config_from(const util::CliArgs& args) {
  fleet::FleetConfig fc;
  fc.num_machines = static_cast<unsigned>(args.get_int("machines", 500));
  fc.cores_used = static_cast<unsigned>(args.get_int("cores", 10));
  fc.policy = args.get_or("policy", "DICER");
  fc.placement = args.get_or("placement", "mrc");
  fc.epoch_sec = args.get_double("epoch", 1.0);
  fc.slo_norm = args.get_double("slo", 0.90);
  fc.migrate_after =
      static_cast<unsigned>(args.get_int("migrate-after", 3));
  fc.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  fc.jobs = static_cast<unsigned>(args.get_int("jobs", 0));
  fc.cp_jobs = static_cast<unsigned>(args.get_int("cp-jobs", 0));
  fc.parallel_control_plane = args.get_bool("parallel-cp", true);
  const long p2c_d =
      args.get_int("p2c-d", fleet::MrcP2cPlacement::kChoices);
  if (p2c_d < 1) {
    throw util::CliError("invalid value for --p2c-d: '" +
                         std::to_string(p2c_d) +
                         "' (expected an integer >= 1)");
  }
  fc.p2c_choices = static_cast<unsigned>(p2c_d);
  // Default churn: ~40 arrivals/s across the fleet with ~8 s lifetimes
  // holds a 500-machine fleet around 320 concurrent tenants — busy enough
  // that placement quality shows, loose enough that nothing is rejected
  // wholesale.
  fc.churn.arrival_rate_per_sec = args.get_double("arrival-rate", 40.0);
  fc.churn.mean_lifetime_sec = args.get_double("mean-lifetime", 8.0);
  fc.churn.seed = fc.seed + 1;
  return fc;
}

/// The app catalog behind --catalog default|trace (throws CliError on
/// anything else).
inline sim::AppCatalog catalog_from(const util::CliArgs& args) {
  const std::string name = args.get_or("catalog", "default");
  if (name != "default" && name != "trace") {
    throw util::CliError("invalid value for --catalog: '" + name +
                         "' (expected default or trace)");
  }
  return name == "trace" ? sim::trace_augmented_catalog()
                         : sim::AppCatalog();
}

/// RAII for the observability flags: applies --log-level, attaches a
/// --trace/DICER_TRACE file sink to the global tracer, and prints the
/// scoped-timer profile on destruction under --profile.
struct FleetEnv {
  bool profile = false;
  std::shared_ptr<trace::Sink> trace_sink;
  std::string trace_path;

  explicit FleetEnv(const util::CliArgs& args) {
    profile = args.get_bool("profile", false);
    if (const auto level = args.get("log-level")) {
      util::set_log_threshold(util::parse_log_level(*level));
    }
    trace_path = args.get_or("trace", "");
    if (trace_path.empty()) {
      if (const char* env = std::getenv("DICER_TRACE")) trace_path = env;
    }
    if (!trace_path.empty()) {
      trace_sink = trace::make_file_sink(trace_path);
      trace::Tracer::global().add_sink(trace_sink);
    }
  }

  FleetEnv(const FleetEnv&) = delete;
  FleetEnv& operator=(const FleetEnv&) = delete;

  ~FleetEnv() {
    if (trace_sink) {
      trace::Tracer::global().remove_sink(trace_sink);  // flushes
      std::cerr << "trace: " << trace_path << "\n";
    }
    if (profile) {
      const std::string table = trace::TimerRegistry::global().format();
      if (!table.empty()) std::cerr << "\n" << table;
    }
  }
};

}  // namespace dicer::examples
